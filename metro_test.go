package femtocr_test

import (
	"reflect"
	"testing"

	"femtocr"
)

// TestDeprecatedConstructorsWrapNewNetwork pins the facade redesign: the
// legacy constructors must build byte-identical networks to the NewNetwork
// specs they now wrap.
func TestDeprecatedConstructorsWrapNewNetwork(t *testing.T) {
	cfg := femtocr.DefaultConfig()

	oldSingle, err := femtocr.SingleFBSNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newSingle, err := femtocr.NewNetwork(cfg, femtocr.PaperSingleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldSingle, newSingle) {
		t.Fatal("SingleFBSNetwork differs from NewNetwork(PaperSingleSpec)")
	}

	oldPath, err := femtocr.InterferingNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newPath, err := femtocr.NewNetwork(cfg, femtocr.PaperInterferingSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldPath, newPath) {
		t.Fatal("InterferingNetwork differs from NewNetwork(PaperInterferingSpec)")
	}

	seqs := femtocr.Sequences()
	groups := [][]femtocr.Sequence{seqs[:2], seqs[2:4]}
	oldNon, err := femtocr.NonInterferingNetwork(cfg, groups)
	if err != nil {
		t.Fatal(err)
	}
	newNon, err := femtocr.NewNetwork(cfg, femtocr.NonInterferingSpec(groups))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldNon, newNon) {
		t.Fatal("NonInterferingNetwork differs from NewNetwork(NonInterferingSpec)")
	}
}

// TestFacadeMetroSharded exercises the metro path end to end through the
// facade: generate a city, run the sharded engine, and check the
// decomposition and determinism contracts.
func TestFacadeMetroSharded(t *testing.T) {
	cfg := femtocr.DefaultConfig()
	net, err := femtocr.NewNetwork(cfg, femtocr.MetroGridSpec(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	opts := femtocr.SimOptions{Seed: 7, GOPs: 2,
		Parallel: femtocr.Parallelism{Workers: 4}}
	res, err := femtocr.SimulateSharded(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || res.FBSs != 12 || res.Users != 24 {
		t.Fatalf("decomposition: shards=%d FBSs=%d users=%d, want 4/12/24", res.Shards, res.FBSs, res.Users)
	}
	if res.MeanPSNR <= 0 || res.MinUserPSNR <= 0 {
		t.Fatalf("degenerate quality: mean=%v min=%v", res.MeanPSNR, res.MinUserPSNR)
	}
	if res.Timing == nil || len(res.Timing.TaskNS) != res.Groups || res.Timing.IdealSpeedup() <= 0 {
		t.Fatalf("missing per-task ns accounting: %+v", res.Timing)
	}

	// Different worker/shard settings must not change anything but Timing.
	opts2 := opts
	opts2.Parallel = femtocr.Parallelism{Workers: 1, Shards: 2}
	res2, err := femtocr.SimulateSharded(net, opts2)
	if err != nil {
		t.Fatal(err)
	}
	res.Timing, res2.Timing = nil, nil
	res.Groups, res2.Groups = 0, 0
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("sharded result depends on the Parallelism setting")
	}
}
