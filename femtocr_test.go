package femtocr

import (
	"math"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	net, err := SingleFBSNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(net, SimOptions{Seed: 1, GOPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSNR < 25 || res.MeanPSNR > 45 {
		t.Fatalf("mean PSNR %v implausible", res.MeanPSNR)
	}
}

func TestFacadeSchemes(t *testing.T) {
	net, err := SingleFBSNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]bool)
	for _, sch := range []Scheme{Proposed, Heuristic1, Heuristic2} {
		res, err := Simulate(net, SimOptions{Seed: 1, GOPs: 5, Scheme: sch})
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		seen[res.MeanPSNR] = true
	}
	if len(seen) < 2 {
		t.Fatal("schemes produced identical results; dispatch looks broken")
	}
}

func TestFacadeSequences(t *testing.T) {
	seqs := Sequences()
	if len(seqs) < 3 {
		t.Fatalf("%d sequences", len(seqs))
	}
	bus, err := SequenceByName("Bus")
	if err != nil {
		t.Fatal(err)
	}
	if bus.Name != "Bus" {
		t.Fatal("lookup broken")
	}
	if _, err := SequenceByName("nope"); err == nil {
		t.Fatal("unknown sequence accepted")
	}
}

func TestFacadeCustomNetwork(t *testing.T) {
	bus, _ := SequenceByName("Bus")
	foreman, _ := SequenceByName("Foreman")
	net, err := CustomSingleFBSNetwork(DefaultConfig(), []Sequence{bus, foreman})
	if err != nil {
		t.Fatal(err)
	}
	if net.K() != 2 {
		t.Fatalf("K = %d", net.K())
	}
	net2, err := NonInterferingNetwork(DefaultConfig(), [][]Sequence{{bus}, {foreman}})
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumFBS != 2 || net2.Graph.NumEdges() != 0 {
		t.Fatal("non-interfering network malformed")
	}
}

func TestFacadeInterfering(t *testing.T) {
	net, err := InterferingNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(net, SimOptions{Seed: 1, GOPs: 2, TrackBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundPSNR < res.MeanPSNR {
		t.Fatalf("bound %v below mean %v", res.BoundPSNR, res.MeanPSNR)
	}
}

func TestFacadeFigureRunner(t *testing.T) {
	fig, err := Figure3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("%d curves", len(fig.Curves))
	}
	if fig.CSV() == "" || fig.Render() == "" {
		t.Fatal("empty rendering")
	}
}

func TestFacadeFigure4a(t *testing.T) {
	fig, trace, err := Figure4a(QuickScale(), 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 50 || len(fig.Curves) != 2 {
		t.Fatalf("trace %d rows, %d curves", len(trace), len(fig.Curves))
	}
	for _, row := range trace {
		for _, v := range row {
			if math.IsNaN(v) {
				t.Fatal("NaN in dual trace")
			}
		}
	}
}

func TestPaperScaleValues(t *testing.T) {
	p := PaperScale()
	if p.Runs != 10 || p.GOPs != 20 {
		t.Fatalf("paper scale %d x %d", p.Runs, p.GOPs)
	}
}
