package femtocr

import (
	"femtocr/internal/experiments"
	"femtocr/internal/packetsim"
)

// Extensions beyond the paper's figures, exposed through the facade:
// packet-level simulation, ablations, and the scalability/gamma studies.

// PacketOptions configures a packet-level simulation run.
type PacketOptions = packetsim.Options

// PacketResult is the outcome of a packet-level run.
type PacketResult = packetsim.Result

// SimulatePackets runs the packet-level engine: explicit NAL-unit queues,
// significance-ordered transmission, ARQ retransmissions, and deadline
// discards (§III-E), instead of the rate-based expected-quality accounting.
func SimulatePackets(net *Network, opts PacketOptions) (*PacketResult, error) {
	return packetsim.Run(net, opts)
}

// AblationBelief compares the stationary fusion prior with the Bayesian
// occupancy filter across channel-mixing speeds.
func AblationBelief(p ExperimentParams) (*Figure, error) {
	return experiments.AblationBelief(p)
}

// AblationSensorPolicy compares sensor-to-channel assignment policies.
func AblationSensorPolicy(p ExperimentParams) (*Figure, error) {
	return experiments.AblationSensorPolicy(p)
}

// SolverComparison is the result of AblationSolver.
type SolverComparison = experiments.SolverComparison

// AblationSolver compares the distributed dual solver with the
// price-equilibrium solver on identical workloads.
func AblationSolver(p ExperimentParams) (*SolverComparison, error) {
	return experiments.AblationSolver(p)
}

// GammaTradeoff sweeps the collision budget gamma, reporting quality and
// realized primary-user collision rates.
func GammaTradeoff(p ExperimentParams) (*Figure, error) {
	return experiments.GammaTradeoff(p)
}

// EngineComparison cross-validates the rate-based and packet-level engines
// per scheme.
func EngineComparison(p ExperimentParams) (*Figure, error) {
	return experiments.EngineComparison(p)
}

// UserCapacity sweeps the user population of a single femtocell and reports
// mean and worst-user quality per size (nil sizes uses 1,2,3,4,6,8).
func UserCapacity(p ExperimentParams, sizes []int) (*Figure, error) {
	return experiments.UserCapacity(p, sizes)
}

// ScalePoint is one deployment size of the scalability study.
type ScalePoint = experiments.ScalePoint

// Scalability grows the interfering deployment and measures per-scheme
// quality, the eq. (23) bound gap, and wall time.
func Scalability(p ExperimentParams, sizes []int) ([]ScalePoint, error) {
	return experiments.Scalability(p, sizes)
}
