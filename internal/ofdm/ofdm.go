// Package ofdm models the multicarrier physical layer the paper assumes
// ("Since OFDM is adopted, the total data rate is the number of available
// channels G^t times the bandwidth of each channel", §IV-A): each licensed
// channel carries S subcarriers whose fading is frequency selective —
// correlated Rayleigh across subcarriers, independent across slots — and a
// coded packet spanning the channel succeeds according to its *effective*
// SINR, computed with the standard exponential effective-SINR mapping
// (EESM):
//
//	SINR_eff = -beta * ln( (1/S) * sum_s exp(-SINR_s / beta) ).
//
// Frequency diversity makes the effective SINR far less variable than a
// flat Rayleigh channel at the same mean, which is why OFDM links see
// fewer deep outages. GainModel packages that behavior as a
// fading.Model so OFDM links drop into the rest of the system unchanged.
package ofdm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"femtocr/internal/fading"
	"femtocr/internal/rng"
)

// ErrBadChannel is returned for invalid OFDM parameters.
var ErrBadChannel = errors.New("ofdm: invalid channel parameters")

// Channel describes one OFDM licensed channel.
type Channel struct {
	subcarriers int
	corr        float64 // adjacent-subcarrier amplitude correlation in [0, 1)
	beta        float64 //femtovet:unit linear -- EESM calibration factor
}

// NewChannel builds a channel with S subcarriers, adjacent-subcarrier
// correlation corr (0 = independent, near 1 = flat), and the EESM beta in
// dB (a per-modulation calibration constant; ~5 dB suits QPSK-class
// coding).
func NewChannel(subcarriers int, corr, betaDB float64) (*Channel, error) {
	if subcarriers < 1 {
		return nil, fmt.Errorf("%w: %d subcarriers", ErrBadChannel, subcarriers)
	}
	if corr < 0 || corr >= 1 || math.IsNaN(corr) {
		return nil, fmt.Errorf("%w: correlation %v", ErrBadChannel, corr)
	}
	if math.IsNaN(betaDB) || math.IsInf(betaDB, 0) {
		return nil, fmt.Errorf("%w: beta %v dB", ErrBadChannel, betaDB)
	}
	return &Channel{
		subcarriers: subcarriers,
		corr:        corr,
		beta:        fading.FromDB(betaDB),
	}, nil
}

// Subcarriers returns S.
func (c *Channel) Subcarriers() int { return c.subcarriers }

// SampleGains draws one slot's per-subcarrier power gains: the squared
// magnitude of a first-order autoregressive complex-Gaussian frequency
// response, giving unit-mean Rayleigh power per subcarrier with amplitude
// correlation corr between neighbors.
func (c *Channel) SampleGains(s *rng.Stream) []float64 {
	gains := make([]float64, c.subcarriers)
	c.SampleGainsInto(gains, s)
	return gains
}

// SampleGainsInto is SampleGains writing into a caller-owned buffer of
// length Subcarriers(), for hot loops that reuse one gains slice.
//
//femtovet:hotpath
//femtovet:borrows gains, s
func (c *Channel) SampleGainsInto(gains []float64, s *rng.Stream) {
	// Complex Gaussian with E|h|^2 = 1: each quadrature N(0, 1/2).
	const sigma = 0.7071067811865476
	re := s.Normal(0, sigma)
	im := s.Normal(0, sigma)
	gains[0] = re*re + im*im
	rho := c.corr
	innov := math.Sqrt(1 - rho*rho)
	for i := 1; i < c.subcarriers; i++ {
		re = rho*re + innov*s.Normal(0, sigma)
		im = rho*im + innov*s.Normal(0, sigma)
		gains[i] = re*re + im*im
	}
}

// EffectiveSINR maps per-subcarrier SINRs (linear) to the EESM effective
// SINR (linear). The sum is evaluated with the log-sum-exp shift so small
// beta values (where exp(-SINR/beta) underflows) stay exact: the worst
// subcarrier dominates, as EESM prescribes.
//
//femtovet:unit linear
func (c *Channel) EffectiveSINR(sinrs []float64) float64 {
	if len(sinrs) == 0 {
		return 0
	}
	min := sinrs[0]
	for _, g := range sinrs[1:] {
		if g < min {
			min = g
		}
	}
	sum := 0.0
	for _, g := range sinrs {
		sum += math.Exp(-(g - min) / c.beta)
	}
	return min - c.beta*math.Log(sum/float64(len(sinrs)))
}

// SpectralEfficiency returns the Shannon spectral efficiency of the slot in
// bits/s/Hz, averaged over subcarriers: (1/S) * sum log2(1 + SINR_s).
func SpectralEfficiency(sinrs []float64) float64 {
	if len(sinrs) == 0 {
		return 0
	}
	sum := 0.0
	for _, g := range sinrs {
		sum += math.Log2(1 + g)
	}
	return sum / float64(len(sinrs))
}

// GainModel adapts the OFDM channel to the fading.Model interface: the
// per-slot "power gain" is the normalized effective SINR
// EESM(meanSINR * gains) / meanSINR, so fading.Link's outage test
// SINR_eff <= H is exact. The outage CDF is an empirical table sampled at
// construction (EESM has no closed form).
type GainModel struct {
	ch       *Channel
	meanSINR float64 //femtovet:unit linear -- mean per-subcarrier SINR the model is built for
	stream   *rng.Stream
	table    []float64 // sorted normalized effective gains
}

var _ fading.Model = (*GainModel)(nil)

// NewGainModel builds the model for links operating near meanSINRdB. The
// empirical outage table uses the given number of Monte-Carlo samples
// (minimum 1000) drawn from stream.
func NewGainModel(ch *Channel, meanSINRdB float64, samples int, stream *rng.Stream) (*GainModel, error) {
	if ch == nil {
		return nil, fmt.Errorf("%w: nil channel", ErrBadChannel)
	}
	if math.IsNaN(meanSINRdB) || math.IsInf(meanSINRdB, 0) {
		return nil, fmt.Errorf("%w: mean SINR %v dB", ErrBadChannel, meanSINRdB)
	}
	if samples < 1000 {
		samples = 1000
	}
	m := &GainModel{
		ch:       ch,
		meanSINR: fading.FromDB(meanSINRdB),
		stream:   stream.Split("ofdm/model"),
	}
	tableStream := stream.Split("ofdm/table")
	m.table = make([]float64, samples)
	for i := range m.table {
		m.table[i] = m.draw(tableStream)
	}
	sort.Float64s(m.table)
	return m, nil
}

// draw samples one normalized effective gain. The gains buffer lives on the
// stack (for realistic subcarrier counts) rather than on the model: a
// GainModel is shared by every link of a network, including across
// concurrently simulated runs, so it must hold no mutable scratch.
func (m *GainModel) draw(s *rng.Stream) float64 {
	var buf [64]float64
	var gains []float64
	if m.ch.subcarriers <= len(buf) {
		gains = buf[:m.ch.subcarriers]
	} else {
		gains = make([]float64, m.ch.subcarriers)
	}
	m.ch.SampleGainsInto(gains, s)
	for i := range gains {
		gains[i] *= m.meanSINR
	}
	return m.ch.EffectiveSINR(gains) / m.meanSINR
}

// PowerGain samples the slot's normalized effective gain.
func (m *GainModel) PowerGain(s *rng.Stream) float64 {
	if s == nil {
		s = m.stream
	}
	return m.draw(s)
}

// OutageCDF returns the empirical Pr{normalized effective gain <= x}.
func (m *GainModel) OutageCDF(x float64) float64 {
	idx := sort.SearchFloat64s(m.table, x)
	return float64(idx) / float64(len(m.table))
}

// Name identifies the model.
func (m *GainModel) Name() string {
	return fmt.Sprintf("ofdm-%d@%.2f", m.ch.subcarriers, m.ch.corr)
}
