package ofdm

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/fading"
	"femtocr/internal/rng"
)

func mustChannel(t *testing.T, s int, corr, betaDB float64) *Channel {
	t.Helper()
	c, err := NewChannel(s, corr, betaDB)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewChannelValidation(t *testing.T) {
	cases := []struct {
		s    int
		corr float64
		beta float64
	}{
		{0, 0.5, 5},
		{-1, 0.5, 5},
		{16, -0.1, 5},
		{16, 1.0, 5},
		{16, 0.5, math.NaN()},
		{16, math.NaN(), 5},
	}
	for _, c := range cases {
		if _, err := NewChannel(c.s, c.corr, c.beta); !errors.Is(err, ErrBadChannel) {
			t.Errorf("NewChannel(%d, %v, %v) accepted", c.s, c.corr, c.beta)
		}
	}
	ch := mustChannel(t, 16, 0.5, 5)
	if ch.Subcarriers() != 16 {
		t.Fatal("subcarrier count")
	}
}

// TestSampleGainsUnitMean: each subcarrier's power gain is unit-mean
// Rayleigh regardless of the correlation.
func TestSampleGainsUnitMean(t *testing.T) {
	for _, corr := range []float64{0, 0.7, 0.95} {
		ch := mustChannel(t, 8, corr, 5)
		s := rng.New(uint64(1 + corr*100))
		sum := 0.0
		const trials = 30000
		for i := 0; i < trials; i++ {
			for _, g := range ch.SampleGains(s) {
				sum += g
			}
		}
		mean := sum / float64(trials*8)
		if math.Abs(mean-1) > 0.03 {
			t.Fatalf("corr %v: mean gain %v, want ~1", corr, mean)
		}
	}
}

// TestSampleGainsCorrelation: adjacent subcarriers correlate as configured
// (power correlation = amplitude correlation squared for Rayleigh).
func TestSampleGainsCorrelation(t *testing.T) {
	ch := mustChannel(t, 2, 0.8, 5)
	s := rng.New(7)
	var sumX, sumY, sumXY, sumX2, sumY2 float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		g := ch.SampleGains(s)
		sumX += g[0]
		sumY += g[1]
		sumXY += g[0] * g[1]
		sumX2 += g[0] * g[0]
		sumY2 += g[1] * g[1]
	}
	n := float64(trials)
	cov := sumXY/n - (sumX/n)*(sumY/n)
	varX := sumX2/n - (sumX/n)*(sumX/n)
	varY := sumY2/n - (sumY/n)*(sumY/n)
	corr := cov / math.Sqrt(varX*varY)
	want := 0.8 * 0.8 // power correlation = |rho|^2
	if math.Abs(corr-want) > 0.02 {
		t.Fatalf("power correlation %v, want ~%v", corr, want)
	}
}

// TestEESMLimits: the effective SINR lies between the min and the
// arithmetic mean of the per-subcarrier SINRs, equals the common value on a
// flat channel, and approaches the mean as beta grows.
func TestEESMLimits(t *testing.T) {
	ch := mustChannel(t, 4, 0, 5)
	sinrs := []float64{1, 2, 4, 8}
	eff := ch.EffectiveSINR(sinrs)
	min, mean := 1.0, (1.0+2+4+8)/4
	if eff < min || eff > mean {
		t.Fatalf("EESM %v outside [min %v, mean %v]", eff, min, mean)
	}
	flat := []float64{3, 3, 3, 3}
	if got := ch.EffectiveSINR(flat); math.Abs(got-3) > 1e-9 {
		t.Fatalf("flat-channel EESM %v, want 3", got)
	}
	bigBeta := mustChannel(t, 4, 0, 60) // beta -> inf: arithmetic mean
	if got := bigBeta.EffectiveSINR(sinrs); math.Abs(got-mean) > 0.05 {
		t.Fatalf("large-beta EESM %v, want ~mean %v", got, mean)
	}
	smallBeta := mustChannel(t, 4, 0, -30) // beta -> 0: worst subcarrier
	if got := smallBeta.EffectiveSINR(sinrs); math.Abs(got-min) > 0.05 {
		t.Fatalf("small-beta EESM %v, want ~min %v", got, min)
	}
	if ch.EffectiveSINR(nil) != 0 {
		t.Fatal("empty SINR vector")
	}
}

func TestSpectralEfficiency(t *testing.T) {
	if SpectralEfficiency(nil) != 0 {
		t.Fatal("empty")
	}
	if got := SpectralEfficiency([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("efficiency %v, want 1.5 (log2(2)=1, log2(4)=2)", got)
	}
}

// TestFrequencyDiversityReducesOutage: at the same mean SINR, the
// frequency-selective OFDM link has fewer deep outages than flat Rayleigh —
// the diversity payoff that motivates multicarrier transmission.
func TestFrequencyDiversityReducesOutage(t *testing.T) {
	ch := mustChannel(t, 16, 0.3, 5)
	model, err := NewGainModel(ch, 10, 20000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	flat := fading.Rayleigh{}
	// Outage at 10 dB below the mean: flat Rayleigh ~ 1-exp(-0.1) ~ 0.095.
	const x = 0.1
	if of, fl := model.OutageCDF(x), flat.OutageCDF(x); of >= fl/2 {
		t.Fatalf("OFDM outage %v not well below flat %v", of, fl)
	}
	// But the diversity-averaged gain concentrates below 1 (Jensen), so
	// outage above the mean crosses over.
	if model.OutageCDF(2.0) <= flat.OutageCDF(2.0) {
		t.Fatal("no crossover above the mean: EESM should concentrate")
	}
}

// TestGainModelPluggable: the model satisfies fading.Model and drives a
// fading.Link whose loss probability matches its own realization.
func TestGainModelPluggable(t *testing.T) {
	ch := mustChannel(t, 16, 0.3, 5)
	model, err := NewGainModel(ch, 12, 20000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	link, err := fading.NewLink(12, 5, model)
	if err != nil {
		t.Fatal(err)
	}
	analytic := link.LossProbability()
	s := rng.New(5)
	lost := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if link.Lost(s) {
			lost++
		}
	}
	emp := float64(lost) / trials
	if math.Abs(emp-analytic) > 0.015 {
		t.Fatalf("empirical loss %v vs table %v", emp, analytic)
	}
}

func TestGainModelValidation(t *testing.T) {
	ch := mustChannel(t, 8, 0.3, 5)
	if _, err := NewGainModel(nil, 10, 1000, rng.New(1)); !errors.Is(err, ErrBadChannel) {
		t.Fatal("nil channel accepted")
	}
	if _, err := NewGainModel(ch, math.NaN(), 1000, rng.New(1)); !errors.Is(err, ErrBadChannel) {
		t.Fatal("NaN SINR accepted")
	}
	m, err := NewGainModel(ch, 10, 10, rng.New(1)) // below minimum: raised to 1000
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() == "" {
		t.Fatal("empty name")
	}
	if m.PowerGain(nil) <= 0 {
		t.Fatal("nil-stream draw failed")
	}
}
