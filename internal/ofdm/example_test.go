package ofdm_test

import (
	"fmt"

	"femtocr/internal/ofdm"
)

// The exponential effective-SINR mapping: the effective SINR of a
// frequency-selective slot lies between the worst subcarrier and the
// arithmetic mean, weighting deep fades heavily.
func ExampleChannel_EffectiveSINR() {
	ch, err := ofdm.NewChannel(4, 0.3, 5)
	if err != nil {
		panic(err)
	}
	selective := []float64{0.5, 2, 4, 9} // one faded subcarrier
	flat := []float64{3.875, 3.875, 3.875, 3.875}
	fmt.Printf("selective EESM: %.2f (mean %.2f)\n", ch.EffectiveSINR(selective), 3.875)
	fmt.Printf("flat EESM:      %.2f\n", ch.EffectiveSINR(flat))
	fmt.Printf("efficiency:     %.2f bits/s/Hz\n", ofdm.SpectralEfficiency(selective))
	// Output:
	// selective EESM: 2.66 (mean 3.88)
	// flat EESM:      3.88
	// efficiency:     1.95 bits/s/Hz
}
