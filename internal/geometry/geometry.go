// Package geometry provides the 2-D spatial substrate for deployment
// scenarios: positions of base stations and users, coverage disks, and the
// overlap tests from which interference graphs are derived (paper Fig. 1,
// Fig. 2, and Fig. 5).
package geometry

import (
	"errors"
	"fmt"
	"math"

	"femtocr/internal/rng"
)

// ErrBadRadius is returned for non-positive coverage radii.
var ErrBadRadius = errors.New("geometry: radius must be positive")

// Point is a location in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// String formats the point.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Disk is a coverage area: a femtocell's service region.
type Disk struct {
	Center Point
	Radius float64
}

// NewDisk validates and builds a Disk.
func NewDisk(center Point, radius float64) (Disk, error) {
	if radius <= 0 || math.IsNaN(radius) {
		return Disk{}, fmt.Errorf("%w: %v", ErrBadRadius, radius)
	}
	return Disk{Center: center, Radius: radius}, nil
}

// Contains reports whether q lies inside the disk (boundary inclusive).
func (d Disk) Contains(q Point) bool {
	return d.Center.Dist(q) <= d.Radius
}

// Overlaps reports whether two coverage disks intersect. Two FBSs with
// overlapping coverage interfere and become adjacent in the interference
// graph (paper Definition 1 and Lemma 4).
func (d Disk) Overlaps(o Disk) bool {
	return d.Center.Dist(o.Center) < d.Radius+o.Radius
}

// RandomInside draws a point uniformly inside the disk.
func (d Disk) RandomInside(s *rng.Stream) Point {
	// Uniform over the disk via sqrt-radius sampling.
	r := d.Radius * math.Sqrt(s.Float64())
	theta := 2 * math.Pi * s.Float64()
	return Point{
		X: d.Center.X + r*math.Cos(theta),
		Y: d.Center.Y + r*math.Sin(theta),
	}
}

// LineDeployment places n disks of the given radius with centers spacing
// meters apart along the x-axis starting at origin. With spacing < 2*radius
// neighbouring femtocells overlap — the paper's interfering scenario (FBS 1
// overlaps FBS 2 overlaps FBS 3, but FBS 1 and 3 do not).
func LineDeployment(origin Point, n int, spacing, radius float64) ([]Disk, error) {
	if n < 0 {
		return nil, fmt.Errorf("geometry: negative deployment size %d", n)
	}
	disks := make([]Disk, 0, n)
	for i := 0; i < n; i++ {
		d, err := NewDisk(Point{X: origin.X + float64(i)*spacing, Y: origin.Y}, radius)
		if err != nil {
			return nil, err
		}
		disks = append(disks, d)
	}
	return disks, nil
}

// GridDeployment places disks on a rows x cols grid with the given spacing.
func GridDeployment(origin Point, rows, cols int, spacing, radius float64) ([]Disk, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("geometry: negative grid %dx%d", rows, cols)
	}
	disks := make([]Disk, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			d, err := NewDisk(Point{
				X: origin.X + float64(c)*spacing,
				Y: origin.Y + float64(r)*spacing,
			}, radius)
			if err != nil {
				return nil, err
			}
			disks = append(disks, d)
		}
	}
	return disks, nil
}

// ScatterUsers draws k user positions uniformly inside each disk and returns
// them grouped per disk.
func ScatterUsers(disks []Disk, perDisk int, s *rng.Stream) [][]Point {
	out := make([][]Point, len(disks))
	for i, d := range disks {
		stream := s.SplitIndex("geometry/users", i)
		pts := make([]Point, perDisk)
		for j := range pts {
			pts[j] = d.RandomInside(stream)
		}
		out[i] = pts
	}
	return out
}
