package geometry

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/rng"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.q.Dist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist not symmetric for %v, %v", c.p, c.q)
		}
	}
}

func TestPointAddString(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, -1})
	if p != (Point{4, 1}) {
		t.Fatalf("Add = %v", p)
	}
	if p.String() != "(4.0, 1.0)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestNewDiskValidation(t *testing.T) {
	if _, err := NewDisk(Point{}, 0); !errors.Is(err, ErrBadRadius) {
		t.Fatal("zero radius accepted")
	}
	if _, err := NewDisk(Point{}, -1); !errors.Is(err, ErrBadRadius) {
		t.Fatal("negative radius accepted")
	}
	if _, err := NewDisk(Point{}, math.NaN()); !errors.Is(err, ErrBadRadius) {
		t.Fatal("NaN radius accepted")
	}
	if _, err := NewDisk(Point{}, 10); err != nil {
		t.Fatal(err)
	}
}

func TestDiskContains(t *testing.T) {
	d, _ := NewDisk(Point{0, 0}, 5)
	if !d.Contains(Point{3, 4}) {
		t.Fatal("boundary point should be contained")
	}
	if !d.Contains(Point{0, 0}) {
		t.Fatal("center should be contained")
	}
	if d.Contains(Point{3.1, 4}) {
		t.Fatal("outside point should not be contained")
	}
}

func TestDiskOverlaps(t *testing.T) {
	a, _ := NewDisk(Point{0, 0}, 5)
	b, _ := NewDisk(Point{8, 0}, 5)  // centers 8 apart, radii sum 10
	c, _ := NewDisk(Point{10, 0}, 5) // tangent: not overlapping (open)
	d, _ := NewDisk(Point{20, 0}, 5)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b must overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("tangent disks must not count as overlapping")
	}
	if a.Overlaps(d) {
		t.Fatal("distant disks must not overlap")
	}
}

func TestRandomInsideStaysInside(t *testing.T) {
	d, _ := NewDisk(Point{10, -5}, 7)
	s := rng.New(3)
	for i := 0; i < 10000; i++ {
		p := d.RandomInside(s)
		if !d.Contains(p) {
			t.Fatalf("RandomInside produced %v outside disk", p)
		}
	}
}

func TestRandomInsideUniform(t *testing.T) {
	// The inner disk of half radius must receive ~1/4 of the points.
	d, _ := NewDisk(Point{0, 0}, 10)
	inner, _ := NewDisk(Point{0, 0}, 5)
	s := rng.New(4)
	const n = 100000
	in := 0
	for i := 0; i < n; i++ {
		if inner.Contains(d.RandomInside(s)) {
			in++
		}
	}
	got := float64(in) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("inner-disk fraction %v, want ~0.25 (uniformity)", got)
	}
}

func TestLineDeploymentOverlapStructure(t *testing.T) {
	// Spacing 15 with radius 10: adjacent overlap (15 < 20), second
	// neighbours do not (30 >= 20). This is the paper's Fig. 5 topology.
	disks, err := LineDeployment(Point{}, 3, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(disks) != 3 {
		t.Fatalf("got %d disks", len(disks))
	}
	if !disks[0].Overlaps(disks[1]) || !disks[1].Overlaps(disks[2]) {
		t.Fatal("adjacent femtocells must overlap")
	}
	if disks[0].Overlaps(disks[2]) {
		t.Fatal("FBS 1 and 3 must not overlap")
	}
}

func TestLineDeploymentErrors(t *testing.T) {
	if _, err := LineDeployment(Point{}, -1, 10, 5); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := LineDeployment(Point{}, 2, 10, 0); !errors.Is(err, ErrBadRadius) {
		t.Fatal("bad radius accepted")
	}
	disks, err := LineDeployment(Point{}, 0, 10, 5)
	if err != nil || len(disks) != 0 {
		t.Fatalf("empty deployment: %v, %v", disks, err)
	}
}

func TestGridDeployment(t *testing.T) {
	disks, err := GridDeployment(Point{1, 2}, 2, 3, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(disks) != 6 {
		t.Fatalf("got %d disks, want 6", len(disks))
	}
	// Last disk center at origin + (2*10, 1*10).
	want := Point{21, 12}
	if disks[5].Center != want {
		t.Fatalf("last center %v, want %v", disks[5].Center, want)
	}
	if _, err := GridDeployment(Point{}, -1, 2, 10, 4); err == nil {
		t.Fatal("negative rows accepted")
	}
}

func TestScatterUsers(t *testing.T) {
	disks, _ := LineDeployment(Point{}, 3, 30, 10)
	users := ScatterUsers(disks, 4, rng.New(5))
	if len(users) != 3 {
		t.Fatalf("groups = %d", len(users))
	}
	for i, grp := range users {
		if len(grp) != 4 {
			t.Fatalf("disk %d has %d users", i, len(grp))
		}
		for _, p := range grp {
			if !disks[i].Contains(p) {
				t.Fatalf("user %v outside its femtocell %d", p, i)
			}
		}
	}
}

func TestScatterUsersDeterministicPerDisk(t *testing.T) {
	disks, _ := LineDeployment(Point{}, 2, 30, 10)
	u1 := ScatterUsers(disks, 3, rng.New(9))
	u2 := ScatterUsers(disks[:1], 3, rng.New(9))
	for j := range u2[0] {
		if u1[0][j] != u2[0][j] {
			t.Fatal("first disk's users changed when a disk was removed; streams must be split per disk")
		}
	}
}

func TestDistTriangleInequality(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
