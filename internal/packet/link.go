package packet

// Transmitter drains a queue within a per-slot byte budget, modelling the
// transmission and acknowledgment phases of one time slot. NAL units larger
// than one slot's budget are fragmented at the byte level (as a MAC layer
// would); a unit is delivered once all of its bytes have been acknowledged.
// Under block fading the whole slot fades together, so a lost slot wastes
// the attempt and the same fragment is retransmitted in the next slot.

// SlotReport accounts one user's slot.
type SlotReport struct {
	// Sent counts fragment transmissions this slot.
	Sent int
	// Delivered counts packets fully acknowledged this slot.
	Delivered int
	// DeliveredBytes is the payload acknowledged this slot.
	DeliveredBytes int
	// Retransmissions counts fragment sends that repeat data whose previous
	// transmission was lost.
	Retransmissions int
}

// TransmitSlot sends bytes from q in significance order until the budget is
// exhausted, returning the report and the packets completed this slot.
// lost reports the slot-level erasure: the first fragment attempt is wasted
// and nothing progresses (block fading erases the entire slot, so sending
// more would waste energy for no progress).
func TransmitSlot(q *Queue, budgetBytes int, lost bool) (SlotReport, []*Packet, error) {
	var rep SlotReport
	if budgetBytes <= 0 || q.Len() == 0 {
		return rep, nil, nil
	}
	if lost {
		head := q.Peek()
		head.Attempts++
		head.retry = true
		rep.Sent++
		return rep, nil, nil
	}
	var delivered []*Packet
	remaining := budgetBytes
	for remaining > 0 {
		head := q.Peek()
		if head == nil {
			break
		}
		need := head.Unit.SizeBytes - head.SentBytes
		if need > 0 {
			tx := need
			if tx > remaining {
				tx = remaining
			}
			head.Attempts++
			if head.retry {
				rep.Retransmissions++
				head.retry = false
			}
			rep.Sent++
			head.SentBytes += tx
			remaining -= tx
			if head.SentBytes < head.Unit.SizeBytes {
				break // budget exhausted mid-packet; resume next slot
			}
		}
		// Fully transferred (or zero-size unit): acknowledge and deliver.
		p := q.Pop()
		rep.Delivered++
		rep.DeliveredBytes += p.Unit.SizeBytes
		delivered = append(delivered, p)
	}
	return rep, delivered, nil
}
