package packet

import (
	"femtocr/internal/video"
)

// Receiver reconstructs per-GOP video quality from delivered packets: the
// decoder counterpart of the transmission queue. Units decode in layer
// dependency order, so the reconstructed quality of a GOP is driven by the
// delivered fraction of its encoded rate, capped at the encoding ceiling
// (eq. 9 applied to the received rate).
type Receiver struct {
	seq video.Sequence

	current      int // GOP index being received
	totalBytes   int // encoded size of the current GOP
	gotBytes     int
	gopRateMbps  float64
	completed    int
	sum          float64
	lastPSNR     float64
	receivedPkts int
}

// NewReceiver tracks one user's stream.
func NewReceiver(seq video.Sequence) *Receiver {
	return &Receiver{seq: seq, current: -1, lastPSNR: seq.RD.Alpha}
}

// StartGOP announces the GOP about to be streamed, with its encoded layout.
func (r *Receiver) StartGOP(index int, g video.GOP) {
	r.current = index
	r.totalBytes = g.TotalBytes()
	r.gotBytes = 0
	r.gopRateMbps = g.RateMbps()
}

// Accept records delivered packets; packets of other GOPs (late stragglers)
// are ignored.
func (r *Receiver) Accept(pkts []*Packet) {
	for _, p := range pkts {
		if p.GOP != r.current {
			continue
		}
		r.gotBytes += p.Unit.SizeBytes
		r.receivedPkts++
	}
}

// EndGOP closes the current GOP: the reconstructed quality is W(received
// rate) per eq. (9), recorded into the running average. Returns the GOP's
// final PSNR.
func (r *Receiver) EndGOP() float64 {
	psnr := r.seq.RD.Alpha
	if r.totalBytes > 0 {
		frac := float64(r.gotBytes) / float64(r.totalBytes)
		if frac > 1 {
			frac = 1
		}
		psnr = r.seq.RD.PSNR(r.gopRateMbps * frac)
		if max := r.seq.MaxPSNR(); psnr > max {
			psnr = max
		}
	}
	r.completed++
	r.sum += psnr
	r.lastPSNR = psnr
	r.current = -1
	return psnr
}

// CurrentPSNR returns the quality the user would decode if the GOP ended
// now — the W^t the optimizer consumes mid-GOP.
func (r *Receiver) CurrentPSNR() float64 {
	if r.current < 0 || r.totalBytes == 0 {
		return r.lastPSNR
	}
	frac := float64(r.gotBytes) / float64(r.totalBytes)
	if frac > 1 {
		frac = 1
	}
	psnr := r.seq.RD.PSNR(r.gopRateMbps * frac)
	if max := r.seq.MaxPSNR(); psnr > max {
		return max
	}
	return psnr
}

// CompletedGOPs returns the number of closed GOPs.
func (r *Receiver) CompletedGOPs() int { return r.completed }

// MeanPSNR averages the final quality over closed GOPs (alpha when none).
func (r *Receiver) MeanPSNR() float64 {
	if r.completed == 0 {
		return r.seq.RD.Alpha
	}
	return r.sum / float64(r.completed)
}

// ReceivedPackets returns the total accepted packet count.
func (r *Receiver) ReceivedPackets() int { return r.receivedPkts }
