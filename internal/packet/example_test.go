package packet_test

import (
	"fmt"

	"femtocr/internal/packet"
	"femtocr/internal/video"
)

// One GOP through the §III-E delivery discipline: packetize, transmit
// significance-first under a tight byte budget, discard what outlives the
// deadline, and decode what arrived.
func ExampleQueue() {
	seq, err := video.SequenceByName("Bus")
	if err != nil {
		panic(err)
	}
	g, err := video.BuildGOP(seq, 16, 2, 0.5)
	if err != nil {
		panic(err)
	}
	var q packet.Queue
	if err := q.EnqueueGOP(0, 0, g, 9); err != nil { // deadline: slot 9
		panic(err)
	}
	rx := packet.NewReceiver(seq)
	rx.StartGOP(0, g)
	for slot := 0; slot < 10; slot++ {
		// 1500 bytes per slot, every 4th slot faded away entirely.
		lost := slot%4 == 3
		_, delivered, err := packet.TransmitSlot(&q, 1500, lost)
		if err != nil {
			panic(err)
		}
		rx.Accept(delivered)
	}
	dropped := len(q.DropOverdue(10))
	final := rx.EndGOP()
	fmt.Printf("reconstructed: %.1f dB (base layer %.1f dB)\n", final, seq.RD.Alpha)
	fmt.Printf("overdue units discarded: %v\n", dropped > 0)
	// Output:
	// reconstructed: 31.4 dB (base layer 28.6 dB)
	// overdue units discarded: true
}
