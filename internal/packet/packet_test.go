package packet

import (
	"errors"
	"testing"
	"testing/quick"

	"femtocr/internal/rng"
	"femtocr/internal/video"
)

func testGOP(t *testing.T) video.GOP {
	t.Helper()
	seq, err := video.SequenceByName("Bus")
	if err != nil {
		t.Fatal(err)
	}
	g, err := video.BuildGOP(seq, 16, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPacketValidate(t *testing.T) {
	if err := (&Packet{User: 0}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Packet{User: -1}).Validate(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("negative user accepted")
	}
	bad := &Packet{User: 0}
	bad.Unit.SizeBytes = -1
	if err := bad.Validate(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("negative size accepted")
	}
	var nilP *Packet
	if err := nilP.Validate(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("nil accepted")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	sig := []float64{0.2, 0.9, 0.5, 0.9, 0.1}
	for i, s := range sig {
		p := &Packet{User: 0, GOP: i}
		p.Unit.Significance = s
		p.Unit.SizeBytes = 10
		if err := q.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 5 || q.Bytes() != 50 {
		t.Fatalf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
	// Pops come out in decreasing significance; ties by GOP ascending.
	prev := 2.0
	prevGOP := -1
	for q.Len() > 0 {
		p := q.Pop()
		if p.Unit.Significance > prev {
			t.Fatalf("significance order violated: %v after %v", p.Unit.Significance, prev)
		}
		if p.Unit.Significance == prev && p.GOP < prevGOP {
			t.Fatalf("tie-break violated: GOP %d after %d", p.GOP, prevGOP)
		}
		prev = p.Unit.Significance
		prevGOP = p.GOP
	}
	if q.Pop() != nil || q.Peek() != nil {
		t.Fatal("empty queue must return nil")
	}
}

func TestQueueOrderingProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint8) bool {
		s := rng.New(seed)
		var q Queue
		for i := 0; i < int(n%50)+1; i++ {
			p := &Packet{User: 0, GOP: s.IntN(5)}
			p.Unit.Significance = s.Float64()
			p.Unit.SizeBytes = s.IntN(100)
			if err := q.Push(p); err != nil {
				return false
			}
		}
		prev := 2.0
		for q.Len() > 0 {
			p := q.Pop()
			if p.Unit.Significance > prev+1e-15 {
				return false
			}
			prev = p.Unit.Significance
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnqueueGOPMatchesTransmissionOrder(t *testing.T) {
	g := testGOP(t)
	var q Queue
	if err := q.EnqueueGOP(3, 0, g, 9); err != nil {
		t.Fatal(err)
	}
	if q.Len() != len(g.Units) {
		t.Fatalf("queued %d units, want %d", q.Len(), len(g.Units))
	}
	want := g.TransmissionOrder()
	for i := 0; q.Len() > 0; i++ {
		p := q.Pop()
		if p.Unit != want[i] {
			t.Fatalf("position %d: queue order deviates from TransmissionOrder", i)
		}
		if p.User != 3 || p.Deadline != 9 {
			t.Fatalf("packet metadata wrong: %+v", p)
		}
	}
}

func TestDropOverdue(t *testing.T) {
	var q Queue
	for i := 0; i < 6; i++ {
		p := &Packet{User: 0, GOP: 0, Deadline: i}
		p.Unit.SizeBytes = 10
		p.Unit.Significance = 0.5
		if err := q.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	overdue := q.DropOverdue(3) // deadlines 0,1,2 are overdue
	if len(overdue) != 3 {
		t.Fatalf("dropped %d, want 3", len(overdue))
	}
	if q.Len() != 3 || q.Dropped() != 3 || q.Bytes() != 30 {
		t.Fatalf("Len=%d Dropped=%d Bytes=%d", q.Len(), q.Dropped(), q.Bytes())
	}
	for _, p := range overdue {
		if p.Deadline >= 3 {
			t.Fatalf("packet with deadline %d dropped at slot 3", p.Deadline)
		}
	}
	if more := q.DropOverdue(0); len(more) != 0 {
		t.Fatal("nothing should be overdue at slot 0")
	}
}

func TestTransmitSlotDelivery(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		p := &Packet{User: 0, GOP: 0, Deadline: 99}
		p.Unit.SizeBytes = 100
		p.Unit.Significance = 1 - float64(i)*0.1
		if err := q.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	rep, delivered, err := TransmitSlot(&q, 250, false)
	if err != nil {
		t.Fatal(err)
	}
	// 100+100 delivered whole; the remaining 50 bytes go out as a fragment
	// of the third packet, which stays queued until complete.
	if rep.Sent != 3 || rep.Delivered != 2 || rep.DeliveredBytes != 200 {
		t.Fatalf("report %+v, want 3 sent / 2 delivered / 200 bytes", rep)
	}
	if len(delivered) != 2 {
		t.Fatalf("delivered %d packets", len(delivered))
	}
	if q.Len() != 3 {
		t.Fatalf("queue has %d left, want 3", q.Len())
	}
	if head := q.Peek(); head.SentBytes != 50 {
		t.Fatalf("head fragment progress %d, want 50", head.SentBytes)
	}
	// The next slot finishes the fragmented head within its budget.
	rep, delivered, err = TransmitSlot(&q, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 || rep.DeliveredBytes != 100 || len(delivered) != 1 {
		t.Fatalf("fragment completion report %+v", rep)
	}
}

// TestTransmitSlotRateConservation: acknowledged bytes never exceed the sum
// of slot budgets — fragmentation must not create capacity.
func TestTransmitSlotRateConservation(t *testing.T) {
	g := testGOP(t)
	var q Queue
	if err := q.EnqueueGOP(0, 0, g, 1<<30); err != nil {
		t.Fatal(err)
	}
	const budget = 700
	total := 0
	slots := 0
	for q.Len() > 0 && slots < 10000 {
		rep, _, err := TransmitSlot(&q, budget, false)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.DeliveredBytes
		slots++
	}
	if total > budget*slots {
		t.Fatalf("delivered %d bytes over %d slots of %d budget", total, slots, budget)
	}
	if total != g.TotalBytes() {
		t.Fatalf("delivered %d, GOP holds %d", total, g.TotalBytes())
	}
}

func TestTransmitSlotLossRequeues(t *testing.T) {
	var q Queue
	p := &Packet{User: 0, GOP: 0, Deadline: 99}
	p.Unit.SizeBytes = 80
	p.Unit.Significance = 0.9
	if err := q.Push(p); err != nil {
		t.Fatal(err)
	}
	rep, delivered, err := TransmitSlot(&q, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 1 || rep.Delivered != 0 || len(delivered) != 0 {
		t.Fatalf("loss slot report %+v", rep)
	}
	if q.Len() != 1 {
		t.Fatal("lost packet left the queue")
	}
	if q.Peek().SentBytes != 0 {
		t.Fatal("lost slot must not make progress")
	}
	// Second attempt counts as a retransmission.
	rep, _, err = TransmitSlot(&q, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retransmissions != 1 {
		t.Fatalf("retransmissions = %d, want 1", rep.Retransmissions)
	}
	if q.Peek() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestTransmitSlotOversizedHeadFragments(t *testing.T) {
	var q Queue
	p := &Packet{User: 0, GOP: 0, Deadline: 99}
	p.Unit.SizeBytes = 1000 // larger than any slot budget
	p.Unit.Significance = 0.9
	if err := q.Push(p); err != nil {
		t.Fatal(err)
	}
	// Ten slots of 100 bytes each deliver it exactly once.
	deliveredTotal := 0
	for slot := 0; slot < 10; slot++ {
		rep, delivered, err := TransmitSlot(&q, 100, false)
		if err != nil {
			t.Fatal(err)
		}
		deliveredTotal += len(delivered)
		if slot < 9 && rep.Delivered != 0 {
			t.Fatalf("slot %d delivered early", slot)
		}
	}
	if deliveredTotal != 1 || q.Len() != 0 {
		t.Fatalf("delivered %d, queue %d", deliveredTotal, q.Len())
	}
	if p.Attempts != 10 {
		t.Fatalf("attempts = %d, want 10 fragments", p.Attempts)
	}
}

func TestTransmitSlotZeroBudget(t *testing.T) {
	var q Queue
	p := &Packet{User: 0}
	p.Unit.SizeBytes = 10
	if err := q.Push(p); err != nil {
		t.Fatal(err)
	}
	rep, delivered, err := TransmitSlot(&q, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 0 || delivered != nil || q.Len() != 1 {
		t.Fatal("zero budget must send nothing")
	}
}

func TestReceiverLifecycle(t *testing.T) {
	g := testGOP(t)
	r := NewReceiver(g.Sequence)
	if r.CurrentPSNR() != g.Sequence.RD.Alpha {
		t.Fatal("initial PSNR must be alpha")
	}
	r.StartGOP(0, g)
	// Deliver the first half of the units.
	order := g.TransmissionOrder()
	var pkts []*Packet
	half := 0
	for i := 0; i < len(order)/2; i++ {
		p := &Packet{User: 0, GOP: 0, Unit: order[i]}
		pkts = append(pkts, p)
		half += order[i].SizeBytes
	}
	r.Accept(pkts)
	mid := r.CurrentPSNR()
	if mid <= g.Sequence.RD.Alpha {
		t.Fatalf("mid-GOP PSNR %v not above alpha", mid)
	}
	final := r.EndGOP()
	if final != mid {
		t.Fatalf("final %v != last current %v", final, mid)
	}
	if r.CompletedGOPs() != 1 || r.ReceivedPackets() != len(pkts) {
		t.Fatalf("accounting: GOPs=%d pkts=%d", r.CompletedGOPs(), r.ReceivedPackets())
	}
	wantRate := g.RateMbps() * float64(half) / float64(g.TotalBytes())
	if want := g.Sequence.RD.PSNR(wantRate); final != want {
		t.Fatalf("final PSNR %v, want %v", final, want)
	}
}

func TestReceiverIgnoresWrongGOP(t *testing.T) {
	g := testGOP(t)
	r := NewReceiver(g.Sequence)
	r.StartGOP(1, g)
	p := &Packet{User: 0, GOP: 0, Unit: g.Units[0]} // straggler from GOP 0
	r.Accept([]*Packet{p})
	if r.ReceivedPackets() != 0 {
		t.Fatal("straggler accepted")
	}
}

func TestReceiverFullDeliveryCapped(t *testing.T) {
	g := testGOP(t)
	r := NewReceiver(g.Sequence)
	r.StartGOP(0, g)
	var pkts []*Packet
	for _, u := range g.Units {
		pkts = append(pkts, &Packet{User: 0, GOP: 0, Unit: u})
	}
	r.Accept(pkts)
	final := r.EndGOP()
	if final > g.Sequence.MaxPSNR() {
		t.Fatalf("PSNR %v above ceiling", final)
	}
	if final < g.Sequence.RD.PSNR(g.RateMbps())-0.5 {
		t.Fatalf("full delivery PSNR %v too low", final)
	}
}

func TestReceiverMeanOverGOPs(t *testing.T) {
	g := testGOP(t)
	r := NewReceiver(g.Sequence)
	r.StartGOP(0, g)
	r.EndGOP() // nothing delivered: alpha
	r.StartGOP(1, g)
	var pkts []*Packet
	for _, u := range g.Units {
		pkts = append(pkts, &Packet{User: 0, GOP: 1, Unit: u})
	}
	r.Accept(pkts)
	full := r.EndGOP()
	want := (g.Sequence.RD.Alpha + full) / 2
	if got := r.MeanPSNR(); got != want {
		t.Fatalf("mean %v, want %v", got, want)
	}
}

// TestInterleavedGOPs: when a new GOP is enqueued while remnants of the old
// one are still queued, base-layer units of the old GOP outrank enhancement
// units of the new one (same significance scale), and equal-significance
// ties resolve to the older GOP.
func TestInterleavedGOPs(t *testing.T) {
	g := testGOP(t)
	var q Queue
	if err := q.EnqueueGOP(0, 0, g, 9); err != nil {
		t.Fatal(err)
	}
	// Drain half of GOP 0, then enqueue GOP 1.
	for i := 0; i < len(g.Units)/2; i++ {
		q.Pop()
	}
	if err := q.EnqueueGOP(0, 1, g, 19); err != nil {
		t.Fatal(err)
	}
	prevSig := 2.0
	prevGOP := -1
	for q.Len() > 0 {
		p := q.Pop()
		if p.Unit.Significance > prevSig+1e-15 {
			t.Fatal("significance order broken across GOPs")
		}
		if p.Unit.Significance == prevSig && p.GOP < prevGOP {
			t.Fatalf("tie at significance %v served GOP %d after GOP %d",
				prevSig, p.GOP, prevGOP)
		}
		prevSig = p.Unit.Significance
		prevGOP = p.GOP
	}
}

// TestQueueStress: push/pop/drop cycles at scale keep the byte accounting
// exact.
func TestQueueStress(t *testing.T) {
	g := testGOP(t)
	var q Queue
	expectBytes := 0
	for gop := 0; gop < 50; gop++ {
		if err := q.EnqueueGOP(0, gop, g, gop*10+9); err != nil {
			t.Fatal(err)
		}
		expectBytes += g.TotalBytes()
		// Drain a third.
		for i := 0; i < len(g.Units)/3; i++ {
			if p := q.Pop(); p != nil {
				expectBytes -= p.Unit.SizeBytes
			}
		}
		// Expire everything older than two GOPs.
		for _, p := range q.DropOverdue(gop*10 - 10) {
			expectBytes -= p.Unit.SizeBytes
		}
		if q.Bytes() != expectBytes {
			t.Fatalf("gop %d: queue bytes %d, expected %d", gop, q.Bytes(), expectBytes)
		}
	}
}
