// Package packet implements the paper's packet-level delivery discipline
// (§III-E): video NAL units are transmitted in decreasing order of their
// significance to the reconstructed quality, lost packets are retransmitted
// (ARQ with per-slot acknowledgments), and packets that outlive their GOP's
// delivery deadline are discarded.
package packet

import (
	"errors"
	"fmt"

	"femtocr/internal/video"
)

// ErrBadPacket is returned for malformed packets.
var ErrBadPacket = errors.New("packet: invalid packet")

// Packet is one in-flight video NAL unit.
type Packet struct {
	// User is the destination CR user (global 0-based index).
	User int
	// GOP is the index of the GOP the unit belongs to.
	GOP int
	// Unit is the video payload.
	Unit video.NALUnit
	// Deadline is the last slot index (inclusive) in which delivery still
	// counts; after it the packet is overdue and must be discarded.
	Deadline int
	// Attempts counts the slots in which (part of) the packet was
	// transmitted, for retransmission statistics.
	Attempts int
	// SentBytes tracks byte-level fragmentation progress: how much of the
	// unit has been acknowledged so far.
	SentBytes int

	// retry marks that the last transmission attempt was lost, so the next
	// send counts as a retransmission.
	retry bool
}

// Validate checks packet sanity.
func (p *Packet) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil", ErrBadPacket)
	}
	if p.User < 0 {
		return fmt.Errorf("%w: user %d", ErrBadPacket, p.User)
	}
	if p.Unit.SizeBytes < 0 {
		return fmt.Errorf("%w: size %d", ErrBadPacket, p.Unit.SizeBytes)
	}
	return nil
}

// Queue is a per-user transmission queue ordered by decreasing
// significance, then GOP, then frame — the order the paper transmits in.
// The zero value is an empty queue.
type Queue struct {
	packets []*Packet
	dropped int
	bytes   int
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.packets) }

// Bytes returns the queued payload size.
func (q *Queue) Bytes() int { return q.bytes }

// Dropped returns the number of packets discarded as overdue so far.
func (q *Queue) Dropped() int { return q.dropped }

// Push inserts a packet in significance order (stable for equal
// significance: earlier GOPs first).
func (q *Queue) Push(p *Packet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	// Binary search for the insertion point: significance descending,
	// then GOP ascending.
	lo, hi := 0, len(q.packets)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(q.packets[mid], p) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.packets = append(q.packets, nil)
	copy(q.packets[lo+1:], q.packets[lo:])
	q.packets[lo] = p
	q.bytes += p.Unit.SizeBytes
	return nil
}

// less reports whether a should come after b (i.e. b outranks a).
func less(a, b *Packet) bool {
	// Exact comparison is required here: a tolerance would make the strict
	// weak ordering intransitive and corrupt the priority queue.
	if a.Unit.Significance != b.Unit.Significance { //femtovet:ignore floateq -- exact compare keeps the heap ordering a strict weak order
		return a.Unit.Significance < b.Unit.Significance
	}
	if a.GOP != b.GOP {
		return a.GOP > b.GOP
	}
	return a.Unit.Frame > b.Unit.Frame
}

// Peek returns the head packet without removing it, or nil.
func (q *Queue) Peek() *Packet {
	if len(q.packets) == 0 {
		return nil
	}
	return q.packets[0]
}

// Pop removes and returns the head packet, or nil.
func (q *Queue) Pop() *Packet {
	if len(q.packets) == 0 {
		return nil
	}
	p := q.packets[0]
	copy(q.packets, q.packets[1:])
	q.packets = q.packets[:len(q.packets)-1]
	q.bytes -= p.Unit.SizeBytes
	return p
}

// DropOverdue discards every packet whose deadline precedes slot and
// returns them (for accounting).
func (q *Queue) DropOverdue(slot int) []*Packet {
	var overdue []*Packet
	kept := q.packets[:0]
	for _, p := range q.packets {
		if p.Deadline < slot {
			overdue = append(overdue, p)
			q.dropped++
			q.bytes -= p.Unit.SizeBytes
		} else {
			kept = append(kept, p)
		}
	}
	// Zero the tail so dropped packets do not pin memory.
	for i := len(kept); i < len(q.packets); i++ {
		q.packets[i] = nil
	}
	q.packets = kept
	return overdue
}

// EnqueueGOP packetizes one GOP for a user: every NAL unit becomes a packet
// with the GOP's delivery deadline.
func (q *Queue) EnqueueGOP(user, gopIndex int, g video.GOP, deadline int) error {
	for _, u := range g.Units {
		if err := q.Push(&Packet{
			User:     user,
			GOP:      gopIndex,
			Unit:     u,
			Deadline: deadline,
		}); err != nil {
			return err
		}
	}
	return nil
}
