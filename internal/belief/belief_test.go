package belief

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
	"femtocr/internal/spectrum"
)

func testBand(t *testing.T) *spectrum.Band {
	t.Helper()
	chain, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	band, err := spectrum.NewBand(4, 0.3, 0.3, chain)
	if err != nil {
		t.Fatal(err)
	}
	return band
}

func TestTrackerStartsStationary(t *testing.T) {
	tr := NewTracker(testBand(t))
	for ch := 1; ch <= 4; ch++ {
		b, err := tr.PriorBusy(ch)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b-0.4/0.7) > 1e-12 {
			t.Fatalf("channel %d prior %v, want stationary", ch, b)
		}
	}
}

func TestPredictFixedPointIsStationary(t *testing.T) {
	tr := NewTracker(testBand(t))
	// The stationary distribution is invariant under Predict.
	for i := 0; i < 50; i++ {
		tr.Predict()
	}
	b, err := tr.PriorBusy(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.4/0.7) > 1e-12 {
		t.Fatalf("prior drifted to %v", b)
	}
}

func TestObserveThenPredictMovesTowardStationary(t *testing.T) {
	tr := NewTracker(testBand(t))
	if err := tr.Observe(1, 1.0); err != nil { // certainly idle now
		t.Fatal(err)
	}
	b, _ := tr.PriorBusy(1)
	if b != 0 {
		t.Fatalf("post-observation busy = %v, want 0", b)
	}
	tr.Predict()
	b, _ = tr.PriorBusy(1)
	if math.Abs(b-0.4) > 1e-12 { // idle -> busy with P01
		t.Fatalf("after one slot busy = %v, want P01 = 0.4", b)
	}
	// Repeated prediction converges back to stationarity.
	for i := 0; i < 200; i++ {
		tr.Predict()
	}
	b, _ = tr.PriorBusy(1)
	if math.Abs(b-0.4/0.7) > 1e-9 {
		t.Fatalf("prior %v did not converge to stationary", b)
	}
}

func TestObserveClampsAndValidates(t *testing.T) {
	tr := NewTracker(testBand(t))
	if err := tr.Observe(0, 0.5); !errors.Is(err, ErrBadChannel) {
		t.Fatal("channel 0 accepted")
	}
	if err := tr.Observe(5, 0.5); !errors.Is(err, ErrBadChannel) {
		t.Fatal("channel 5 accepted")
	}
	if _, err := tr.PriorBusy(9); !errors.Is(err, ErrBadChannel) {
		t.Fatal("PriorBusy(9) accepted")
	}
	if err := tr.Observe(1, 1.7); err != nil {
		t.Fatal(err)
	}
	if b, _ := tr.PriorBusy(1); b != 0 {
		t.Fatalf("availability above 1 should clamp busy to 0, got %v", b)
	}
	if err := tr.Observe(1, -0.3); err != nil {
		t.Fatal(err)
	}
	if b, _ := tr.PriorBusy(1); b != 1 {
		t.Fatalf("availability below 0 should clamp busy to 1, got %v", b)
	}
}

// TestFilterBeatsStationaryPrior: against a simulated channel, the filtered
// prior predicts the true state strictly better (lower Brier score) than
// the stationary prior, because occupancy is temporally correlated.
func TestFilterBeatsStationaryPrior(t *testing.T) {
	band := testBand(t)
	tr := NewTracker(band)
	det, err := sensing.NewDetector(0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(42)
	sim := spectrum.NewSimulator(band, root.Split("occ"))
	senseStream := root.Split("sense")

	var brierFiltered, brierStationary float64
	const slots = 20000
	eta := band.Utilization(1)
	for s := 0; s < slots; s++ {
		truth := sim.Step()
		tr.Predict()
		for ch := 1; ch <= band.M(); ch++ {
			prior, err := tr.PriorBusy(ch)
			if err != nil {
				t.Fatal(err)
			}
			y := 0.0
			if truth[ch-1] == markov.Busy {
				y = 1
			}
			brierFiltered += (prior - y) * (prior - y)
			brierStationary += (eta - y) * (eta - y)

			// Sense and close the loop.
			fu, err := sensing.NewFuser(prior)
			if err != nil {
				t.Fatal(err)
			}
			fu.Update(det.Sense(truth[ch-1], senseStream))
			fu.Update(det.Sense(truth[ch-1], senseStream))
			if err := tr.Observe(ch, fu.Posterior()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if brierFiltered >= brierStationary {
		t.Fatalf("filtered Brier %v not better than stationary %v",
			brierFiltered/slots, brierStationary/slots)
	}
	improvement := 1 - brierFiltered/brierStationary
	if improvement < 0.02 {
		t.Fatalf("filter improvement %.3f suspiciously small", improvement)
	}
	t.Logf("Brier improvement from belief filtering: %.1f%%", improvement*100)
}

// TestFilterStaysCalibrated: predicted busy probabilities match realized
// busy frequencies bucket by bucket.
func TestFilterStaysCalibrated(t *testing.T) {
	band := testBand(t)
	tr := NewTracker(band)
	det, err := sensing.NewDetector(0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(7)
	sim := spectrum.NewSimulator(band, root.Split("occ"))
	senseStream := root.Split("sense")
	type bucket struct{ sum, busy, n float64 }
	buckets := make(map[int]*bucket)
	for s := 0; s < 50000; s++ {
		truth := sim.Step()
		tr.Predict()
		for ch := 1; ch <= band.M(); ch++ {
			prior, _ := tr.PriorBusy(ch)
			k := int(prior * 10)
			b := buckets[k]
			if b == nil {
				b = &bucket{}
				buckets[k] = b
			}
			b.sum += prior
			b.n++
			if truth[ch-1] == markov.Busy {
				b.busy++
			}
			fu, err := sensing.NewFuser(prior)
			if err != nil {
				t.Fatal(err)
			}
			fu.Update(det.Sense(truth[ch-1], senseStream))
			if err := tr.Observe(ch, fu.Posterior()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k, b := range buckets {
		if b.n < 4000 {
			continue
		}
		predicted := b.sum / b.n
		actual := b.busy / b.n
		if math.Abs(predicted-actual) > 0.02 {
			t.Errorf("bucket %d: predicted busy %.3f, realized %.3f", k, predicted, actual)
		}
	}
}
