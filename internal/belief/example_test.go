package belief_test

import (
	"fmt"

	"femtocr/internal/belief"
	"femtocr/internal/markov"
	"femtocr/internal/spectrum"
)

// The occupancy filter: observing a channel certainly idle, the belief
// relaxes back toward the stationary utilization through the Markov kernel
// — one P01 step at a time.
func ExampleTracker() {
	chain, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		panic(err)
	}
	band, err := spectrum.NewBand(1, 0.3, 0.3, chain)
	if err != nil {
		panic(err)
	}
	tr := belief.NewTracker(band)
	if err := tr.Observe(1, 1.0); err != nil { // certainly idle now
		panic(err)
	}
	for slot := 0; slot < 3; slot++ {
		tr.Predict()
		busy, err := tr.PriorBusy(1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("slot +%d: Pr{busy} = %.3f\n", slot+1, busy)
	}
	fmt.Printf("stationary: %.3f\n", chain.Utilization())
	// Output:
	// slot +1: Pr{busy} = 0.400
	// slot +2: Pr{busy} = 0.520
	// slot +3: Pr{busy} = 0.556
	// stationary: 0.571
}
