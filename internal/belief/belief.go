// Package belief implements a per-channel occupancy belief filter, an
// extension of the paper's sensing model: instead of resetting the fusion
// prior to the stationary utilization eta every slot (eq. (2)), the filter
// propagates the previous slot's posterior through the channel's Markov
// transition kernel, yielding the exact conditional busy probability given
// the whole sensing history.
//
// Prediction step (between slots):
//
//	Pr{busy_t} = Pr{busy_{t-1}|history} * (1 - P10) + Pr{idle_{t-1}|history} * P01
//
// The sharper priors raise the availability posteriors on genuinely idle
// channels, which lets the access rule of eq. (7) admit more transmissions
// at the same collision budget. The ablation experiments quantify the gain.
package belief

import (
	"errors"
	"fmt"

	"femtocr/internal/spectrum"
)

// ErrBadChannel is returned for out-of-range channel indices.
var ErrBadChannel = errors.New("belief: channel out of range")

// Tracker filters the occupancy belief of every licensed channel.
type Tracker struct {
	band *spectrum.Band
	busy []float64 // Pr{busy} per channel, before the current slot's sensing
}

// NewTracker starts at the stationary distribution, matching the paper's
// prior on the first slot.
func NewTracker(band *spectrum.Band) *Tracker {
	t := &Tracker{
		band: band,
		busy: make([]float64, band.M()),
	}
	for ch := 1; ch <= band.M(); ch++ {
		t.busy[ch-1] = band.Utilization(ch)
	}
	return t
}

// Predict advances every channel's belief one slot through its transition
// kernel. Call once at the start of each slot, before sensing.
func (t *Tracker) Predict() {
	for ch := 1; ch <= t.band.M(); ch++ {
		c := t.band.Chain(ch)
		b := t.busy[ch-1]
		t.busy[ch-1] = b*(1-c.P10()) + (1-b)*c.P01()
	}
}

// PriorBusy returns the pre-sensing busy probability of channel ch
// (1-based) — the eta to hand the fusion of eqs. (2)-(4) this slot.
func (t *Tracker) PriorBusy(ch int) (float64, error) {
	if ch < 1 || ch > len(t.busy) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadChannel, ch, len(t.busy))
	}
	return t.busy[ch-1], nil
}

// Observe stores the post-sensing availability posterior P_A of channel ch,
// closing the filter loop for the next Predict.
func (t *Tracker) Observe(ch int, availability float64) error {
	if ch < 1 || ch > len(t.busy) {
		return fmt.Errorf("%w: %d of %d", ErrBadChannel, ch, len(t.busy))
	}
	if availability < 0 {
		availability = 0
	}
	if availability > 1 {
		availability = 1
	}
	t.busy[ch-1] = 1 - availability
	return nil
}
