// Package profiling wires the standard runtime/pprof file profiles into
// the command-line tools. Both cmd/figures and cmd/femtosim expose
// -cpuprofile and -memprofile flags backed by Start, so a hot-path
// regression can be pinned down with
//
//	go run ./cmd/femtosim -scenario interfering -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// without touching the benchmark harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file names:
// a CPU profile streamed to cpuFile and a heap profile written to memFile
// when the returned stop function runs. Call stop exactly once on every
// exit path — it finishes the CPU profile, forces a GC so the heap profile
// reflects the final live set, and reports the first write error.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			_ = cpu.Close() // the StartCPUProfile failure is the error to report
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		var first error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				first = fmt.Errorf("profiling: %w", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("profiling: %w", err)
				}
				return first
			}
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("profiling: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiling: %w", err)
			}
		}
		return first
	}, nil
}
