package igraph

import (
	"errors"
	"reflect"
	"testing"
)

func TestSubgraphInducesComponent(t *testing.T) {
	// Two components: path 0-1-2 and edge 4-5, with 3 isolated.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {4, 5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	comps := g.Components()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components %v, want %v", comps, want)
	}

	sub, err := g.Subgraph(comps[0])
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("component 0 subgraph: n=%d edges=%d", sub.N(), sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatalf("component 0 subgraph is not the path: edges %v", sub.Edges())
	}
	if got := sub.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1)=%v on the induced path", got)
	}

	iso, err := g.Subgraph(comps[1])
	if err != nil {
		t.Fatal(err)
	}
	if iso.N() != 1 || iso.NumEdges() != 0 {
		t.Fatalf("isolated subgraph: n=%d edges=%d", iso.N(), iso.NumEdges())
	}
}

func TestSubgraphDropsCrossEdges(t *testing.T) {
	g := Complete(4)
	sub, err := g.Subgraph([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 || sub.NumEdges() != 1 || !sub.HasEdge(0, 1) {
		t.Fatalf("induced K2: n=%d edges=%v", sub.N(), sub.Edges())
	}
}

func TestSubgraphRejectsBadVertexLists(t *testing.T) {
	g := Path(4)
	for _, vs := range [][]int{{-1, 0}, {0, 4}, {2, 1}, {1, 1}} {
		if _, err := g.Subgraph(vs); !errors.Is(err, ErrBadVertex) {
			t.Errorf("Subgraph(%v): err=%v, want ErrBadVertex", vs, err)
		}
	}
	// The empty induced subgraph is fine.
	sub, err := g.Subgraph(nil)
	if err != nil || sub.N() != 0 {
		t.Fatalf("empty subgraph: %v, n=%d", err, sub.N())
	}
}

func TestCloneKeepsNeighborLists(t *testing.T) {
	g := Path(5)
	c := g.Clone()
	for u := 0; u < g.N(); u++ {
		if !reflect.DeepEqual(c.Neighbors(u), g.Neighbors(u)) {
			t.Fatalf("clone Neighbors(%d)=%v, want %v", u, c.Neighbors(u), g.Neighbors(u))
		}
	}
	if !reflect.DeepEqual(c.Components(), g.Components()) {
		t.Fatalf("clone components %v, want %v", c.Components(), g.Components())
	}
}
