// Package igraph implements the interference graph of the paper's
// Definition 1: an undirected graph whose vertices are FBSs and whose edges
// connect FBSs with overlapping coverage. Adjacent FBSs cannot use the same
// licensed channel simultaneously (Lemma 4); the maximum vertex degree Dmax
// drives the greedy algorithm's performance bound (Theorem 2).
package igraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"femtocr/internal/geometry"
)

// ErrBadVertex is returned for out-of-range vertex indices.
var ErrBadVertex = errors.New("igraph: vertex out of range")

// ErrSelfLoop is returned when adding an edge from a vertex to itself.
var ErrSelfLoop = errors.New("igraph: self loops not allowed")

// Graph is an undirected interference graph over vertices 0..N-1 (vertex i
// is FBS i+1 in the paper's numbering).
type Graph struct {
	n   int
	adj []map[int]bool
	// nbr mirrors adj as sorted neighbor lists, maintained incrementally at
	// edge insertion so Neighbors is an allocation-free lookup on the greedy
	// allocator's per-slot path instead of a per-call build-and-sort.
	nbr [][]int
}

// New creates an edgeless graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Graph{n: n, adj: adj, nbr: make([][]int, n)}
}

// FromCoverage derives the interference graph of a deployment: vertices are
// the disks (FBS coverage areas) and edges connect overlapping disks.
func FromCoverage(disks []geometry.Disk) *Graph {
	g := New(len(disks))
	for i := 0; i < len(disks); i++ {
		for j := i + 1; j < len(disks); j++ {
			if disks[i].Overlaps(disks[j]) {
				g.link(i, j)
			}
		}
	}
	return g
}

// Path returns the path graph 0-1-2-...-n-1, the topology of the paper's
// simulated interfering scenario (Fig. 5: FBS1-FBS2-FBS3).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		// Adjacent vertices always differ, so AddEdge cannot fail here.
		_ = g.AddEdge(i, i+1)
	}
	return g
}

// Complete returns the complete graph on n vertices (all FBSs mutually
// interfering).
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_ = g.AddEdge(i, j)
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge (u, v).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: (%d, %d) with n=%d", ErrBadVertex, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: %d", ErrSelfLoop, u)
	}
	g.link(u, v)
	return nil
}

// link records the validated undirected edge (u, v) in both the adjacency
// maps and the sorted neighbor lists. Duplicate edges are ignored.
func (g *Graph) link(u, v int) {
	if g.adj[u][v] {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	g.nbr[u] = insertSorted(g.nbr[u], v)
	g.nbr[v] = insertSorted(g.nbr[v], u)
}

// insertSorted inserts v into the ascending slice s, keeping it sorted.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether u and v interfere. Out-of-range vertices never
// interfere.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	return g.adj[u][v]
}

// Neighbors returns R(u): the sorted vertices adjacent to u. The returned
// slice is the graph's own cached list — callers must treat it as read-only.
func (g *Graph) Neighbors(u int) []int {
	if u < 0 || u >= g.n {
		return nil
	}
	return g.nbr[u]
}

// Degree returns the number of neighbors of u, or 0 for invalid vertices.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// MaxDegree returns Dmax, the largest vertex degree; 0 for an empty or
// edgeless graph. Theorem 2 guarantees the greedy allocation achieves at
// least 1/(1+Dmax) of the optimum.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
	}
	return total / 2
}

// Edges returns all undirected edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Components returns the connected components, each a sorted vertex list,
// ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for start := 0; start < g.n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Subgraph returns the induced subgraph on the given vertices, which must
// be valid, strictly ascending, and duplicate-free. Vertex i of the result
// stands for vertices[i]; an edge is present exactly when both endpoints
// are in the set and adjacent in g. Partitioning a deployment by
// Components and inducing each component yields standalone interference
// graphs for the sharded simulation engine.
func (g *Graph) Subgraph(vertices []int) (*Graph, error) {
	pos := make([]int, g.n)
	for i := range pos {
		pos[i] = -1
	}
	prev := -1
	for i, u := range vertices {
		if u < 0 || u >= g.n {
			return nil, fmt.Errorf("%w: %d with n=%d", ErrBadVertex, u, g.n)
		}
		if u <= prev {
			return nil, fmt.Errorf("%w: vertices must be strictly ascending, got %d after %d", ErrBadVertex, u, prev)
		}
		prev = u
		pos[u] = i
	}
	sub := New(len(vertices))
	for i, u := range vertices {
		for _, v := range g.Neighbors(u) {
			j := pos[v]
			if j > i { // each edge linked once, from its lower endpoint
				sub.link(i, j)
			}
		}
	}
	return sub, nil
}

// IsIndependent reports whether no two vertices in set are adjacent, i.e.
// the set of FBSs may share a channel.
func (g *Graph) IsIndependent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// Density returns the edge density: edges present over edges possible
// (0 for graphs with fewer than two vertices).
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	possible := g.n * (g.n - 1) / 2
	return float64(g.NumEdges()) / float64(possible)
}

// IsConnected reports whether the graph has a single connected component
// (an empty graph counts as connected).
func (g *Graph) IsConnected() bool {
	return g.n == 0 || len(g.Components()) == 1
}

// GreedyColoring colors vertices with the smallest available color in index
// order and returns the per-vertex colors (0-based) and the number of colors
// used. The count never exceeds Dmax+1, a classical bound mirroring the
// paper's Theorem 2 structure.
func (g *Graph) GreedyColoring() ([]int, int) {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	maxColor := 0
	for u := 0; u < g.n; u++ {
		used := make(map[int]bool)
		for v := range g.adj[u] {
			if colors[v] >= 0 {
				used[colors[v]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[u] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return colors, maxColor
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		// link maintains both adj and the sorted neighbor lists (writing
		// adj directly would leave Neighbors empty on the copy); it is
		// insensitive to the map's iteration order.
		for v := range g.adj[u] {
			if u < v {
				c.link(u, v)
			}
		}
	}
	return c
}

// String renders the graph as one "u -- v" line per edge (FBS numbering,
// 1-based, matching the paper's figures).
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "interference graph: %d FBS, %d edges\n", g.n, g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  FBS %d -- FBS %d\n", e[0]+1, e[1]+1)
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) == 0 {
			fmt.Fprintf(&b, "  FBS %d (isolated)\n", u+1)
		}
	}
	return b.String()
}

// DOT renders the graph in Graphviz DOT format.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for u := 0; u < g.n; u++ {
		fmt.Fprintf(&b, "  fbs%d;\n", u+1)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  fbs%d -- fbs%d;\n", e[0]+1, e[1]+1)
	}
	b.WriteString("}\n")
	return b.String()
}
