package igraph

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"femtocr/internal/geometry"
	"femtocr/internal/rng"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph: N=%d edges=%d", g.N(), g.NumEdges())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil { // duplicate, reversed
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge counted: %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge must be undirected")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("phantom edge")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("out of range err = %v", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("negative err = %v", err)
	}
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop err = %v", err)
	}
}

func TestNegativeSizeGraph(t *testing.T) {
	g := New(-5)
	if g.N() != 0 {
		t.Fatalf("N = %d, want 0", g.N())
	}
}

// TestPaperFigure2 reproduces the interference graph of Fig. 2: four FBSs
// where 1 and 2 are isolated and 3-4 share an edge.
func TestPaperFigure2(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(2, 3); err != nil { // FBS 3 -- FBS 4
		t.Fatal(err)
	}
	if g.Degree(0) != 0 || g.Degree(1) != 0 {
		t.Fatal("FBS 1 and 2 must be isolated")
	}
	if g.MaxDegree() != 1 {
		t.Fatalf("Dmax = %d, want 1 (paper: bound is half of optimum)", g.MaxDegree())
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3", comps)
	}
}

// TestPaperFigure5 reproduces Fig. 5: a path FBS1-FBS2-FBS3.
func TestPaperFigure5(t *testing.T) {
	g := Path(3)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("path structure wrong")
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("Dmax = %d, want 2", g.MaxDegree())
	}
	// FBS 1 and FBS 3 may share a channel: they form an independent set.
	if !g.IsIndependent([]int{0, 2}) {
		t.Fatal("{FBS1, FBS3} must be independent")
	}
	if g.IsIndependent([]int{0, 1}) {
		t.Fatal("{FBS1, FBS2} must not be independent")
	}
}

func TestFromCoverageMatchesOverlaps(t *testing.T) {
	// Line deployment with adjacent overlap only: expect the path graph.
	disks, err := geometry.LineDeployment(geometry.Point{}, 3, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := FromCoverage(disks)
	want := Path(3)
	if g.NumEdges() != want.NumEdges() {
		t.Fatalf("edges = %v, want path", g.Edges())
	}
	for _, e := range want.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 10 {
		t.Fatalf("K5 edges = %d, want 10", g.NumEdges())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("K5 Dmax = %d, want 4", g.MaxDegree())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	for _, v := range []int{4, 1, 3} {
		if err := g.AddEdge(2, v); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(2)
	if len(nb) != 3 || nb[0] != 1 || nb[1] != 3 || nb[2] != 4 {
		t.Fatalf("Neighbors = %v, want [1 3 4]", nb)
	}
	if g.Neighbors(-1) != nil || g.Neighbors(9) != nil {
		t.Fatal("invalid vertex neighbors must be nil")
	}
	if g.Degree(-1) != 0 {
		t.Fatal("invalid vertex degree must be 0")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(2, 3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 3)
	e := g.Edges()
	want := [][2]int{{0, 1}, {0, 3}, {2, 3}}
	if len(e) != len(want) {
		t.Fatalf("Edges = %v", e)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", e, want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("second component = %v", comps[1])
	}
}

// TestGreedyColoringProperty: the coloring is proper and uses at most
// Dmax + 1 colors, on random graphs.
func TestGreedyColoringProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%15) + 1
		s := rng.New(seed)
		g := New(n)
		edges := int(mRaw) % (n * 2)
		for i := 0; i < edges; i++ {
			u, v := s.IntN(n), s.IntN(n)
			if u != v {
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		colors, used := g.GreedyColoring()
		if used > g.MaxDegree()+1 {
			return false
		}
		for _, e := range g.Edges() {
			if colors[e[0]] == colors[e[1]] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGreedyColoringEdgeless(t *testing.T) {
	g := New(4)
	colors, used := g.GreedyColoring()
	if used != 1 {
		t.Fatalf("edgeless graph used %d colors", used)
	}
	for _, c := range colors {
		if c != 0 {
			t.Fatalf("colors = %v", colors)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(3)
	c := g.Clone()
	if err := c.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("mutating clone affected original")
	}
}

func TestStringAndDOT(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	s := g.String()
	for _, want := range []string{"FBS 1 -- FBS 2", "FBS 3 (isolated)", "3 FBS, 1 edges"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	d := g.DOT("fig2")
	for _, want := range []string{"graph fig2 {", "fbs1 -- fbs2;", "fbs3;"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q:\n%s", want, d)
		}
	}
}

func TestIsIndependentEmptyAndSingleton(t *testing.T) {
	g := Complete(4)
	if !g.IsIndependent(nil) {
		t.Fatal("empty set must be independent")
	}
	if !g.IsIndependent([]int{2}) {
		t.Fatal("singleton must be independent")
	}
}

func TestDensityAndConnectivity(t *testing.T) {
	if got := Complete(4).Density(); got != 1 {
		t.Fatalf("K4 density %v", got)
	}
	if got := New(4).Density(); got != 0 {
		t.Fatalf("edgeless density %v", got)
	}
	if got := Path(4).Density(); got != 0.5 {
		t.Fatalf("P4 density %v, want 3/6", got)
	}
	if New(1).Density() != 0 {
		t.Fatal("singleton density")
	}
	if !Path(5).IsConnected() {
		t.Fatal("path not connected")
	}
	if New(3).IsConnected() {
		t.Fatal("edgeless graph connected")
	}
	if !New(0).IsConnected() || !New(1).IsConnected() {
		t.Fatal("trivial graphs must count as connected")
	}
}
