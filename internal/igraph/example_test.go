package igraph_test

import (
	"fmt"

	"femtocr/internal/geometry"
	"femtocr/internal/igraph"
)

// Deriving the paper's Fig. 5 interference graph from femtocell geometry:
// three coverage disks on a line, adjacent ones overlapping.
func ExampleFromCoverage() {
	disks, err := geometry.LineDeployment(geometry.Point{}, 3, 18, 12)
	if err != nil {
		panic(err)
	}
	g := igraph.FromCoverage(disks)
	fmt.Printf("Dmax = %d\n", g.MaxDegree())
	fmt.Printf("FBS1-FBS3 may share a channel: %v\n", g.IsIndependent([]int{0, 2}))
	fmt.Printf("Theorem 2 guarantee: 1/%d of the optimum\n", 1+g.MaxDegree())
	// Output:
	// Dmax = 2
	// FBS1-FBS3 may share a channel: true
	// Theorem 2 guarantee: 1/3 of the optimum
}
