package spectrum

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

func paperChain(t *testing.T) markov.Chain {
	t.Helper()
	c, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewBandValidation(t *testing.T) {
	c := paperChain(t)
	cases := []struct {
		name    string
		m       int
		b0, b1  float64
		wantErr bool
	}{
		{"ok", 8, 0.3, 0.3, false},
		{"zero channels", 0, 0.3, 0.3, true},
		{"negative channels", -1, 0.3, 0.3, true},
		{"zero B0", 8, 0, 0.3, true},
		{"negative B1", 8, 0.3, -0.1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewBand(tc.m, tc.b0, tc.b1, c)
			if tc.wantErr && !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestBandAccessors(t *testing.T) {
	c := paperChain(t)
	b, err := NewBand(8, 0.5, 0.3, c)
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 8 || b.B0() != 0.5 || b.B1() != 0.3 {
		t.Fatalf("accessors: M=%d B0=%v B1=%v", b.M(), b.B0(), b.B1())
	}
	for m := 1; m <= 8; m++ {
		if got := b.Utilization(m); math.Abs(got-0.4/0.7) > 1e-12 {
			t.Fatalf("Utilization(%d) = %v", m, got)
		}
	}
	want := 8 * (1 - 0.4/0.7)
	if got := b.MeanAvailableChannels(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanAvailableChannels = %v, want %v", got, want)
	}
}

func TestHeterogeneousBand(t *testing.T) {
	c1, _ := markov.NewChain(0.2, 0.8) // eta = 0.2
	c2, _ := markov.NewChain(0.8, 0.2) // eta = 0.8
	b, err := NewHeterogeneousBand(0.3, 0.3, []markov.Chain{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 2 {
		t.Fatalf("M = %d, want 2", b.M())
	}
	if math.Abs(b.Utilization(1)-0.2) > 1e-12 || math.Abs(b.Utilization(2)-0.8) > 1e-12 {
		t.Fatalf("utilizations = %v, %v", b.Utilization(1), b.Utilization(2))
	}
	if got := b.MeanAvailableChannels(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("MeanAvailableChannels = %v, want 1", got)
	}
	if _, err := NewHeterogeneousBand(0.3, 0.3, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty chains err = %v", err)
	}
}

func TestHeterogeneousBandCopiesInput(t *testing.T) {
	c1, _ := markov.NewChain(0.2, 0.8)
	chains := []markov.Chain{c1}
	b, err := NewHeterogeneousBand(0.3, 0.3, chains)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := markov.NewChain(0.9, 0.1)
	chains[0] = c2 // must not affect the band
	if got := b.Utilization(1); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("band aliases caller slice: utilization = %v", got)
	}
}

func TestOccupancyHelpers(t *testing.T) {
	o := Occupancy{markov.Idle, markov.Busy, markov.Idle}
	if !o.Idle(1) || o.Idle(2) || !o.Idle(3) {
		t.Fatal("Idle() indexing wrong (must be 1-based)")
	}
	if o.NumIdle() != 2 {
		t.Fatalf("NumIdle = %d, want 2", o.NumIdle())
	}
	cp := o.Clone()
	cp[0] = markov.Busy
	if o[0] != markov.Idle {
		t.Fatal("Clone did not copy")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	c := paperChain(t)
	b, _ := NewBand(8, 0.3, 0.3, c)
	s1 := NewSimulator(b, rng.New(42))
	s2 := NewSimulator(b, rng.New(42))
	for i := 0; i < 200; i++ {
		o1, o2 := s1.Step(), s2.Step()
		for m := range o1 {
			if o1[m] != o2[m] {
				t.Fatalf("slot %d channel %d diverged", i, m+1)
			}
		}
	}
	if s1.Slot() != 200 {
		t.Fatalf("Slot = %d, want 200", s1.Slot())
	}
}

func TestSimulatorLongRunUtilization(t *testing.T) {
	c := paperChain(t)
	b, _ := NewBand(4, 0.3, 0.3, c)
	sim := NewSimulator(b, rng.New(7))
	busy := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		o := sim.Step()
		for m := range o {
			if o[m] == markov.Busy {
				busy[m]++
			}
		}
	}
	want := 0.4 / 0.7
	for m, cnt := range busy {
		got := float64(cnt) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("channel %d empirical utilization %v, want ~%v", m+1, got, want)
		}
	}
}

func TestSimulatorOccupancyIsCopy(t *testing.T) {
	c := paperChain(t)
	b, _ := NewBand(3, 0.3, 0.3, c)
	sim := NewSimulator(b, rng.New(1))
	o := sim.Occupancy()
	o[0] = markov.Busy
	o2 := sim.Occupancy()
	// The simulator's internal state must not have been modified through the
	// returned slice, whatever the state is: check aliasing directly.
	o2[0] = markov.Idle
	o3 := sim.Occupancy()
	if &o2[0] == &o3[0] {
		t.Fatal("Occupancy returns aliased storage")
	}
}

func TestSimulatorChannelsIndependent(t *testing.T) {
	// Adding a channel must not perturb the trajectory of channel 1,
	// thanks to per-channel split streams.
	c := paperChain(t)
	b4, _ := NewBand(4, 0.3, 0.3, c)
	b8, _ := NewBand(8, 0.3, 0.3, c)
	s4 := NewSimulator(b4, rng.New(99))
	s8 := NewSimulator(b8, rng.New(99))
	for i := 0; i < 100; i++ {
		o4, o8 := s4.Step(), s8.Step()
		for m := 0; m < 4; m++ {
			if o4[m] != o8[m] {
				t.Fatalf("slot %d: channel %d trajectory changed when band grew", i, m+1)
			}
		}
	}
}
