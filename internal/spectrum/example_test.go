package spectrum_test

import (
	"fmt"

	"femtocr/internal/markov"
	"femtocr/internal/spectrum"
)

// The paper's licensed band: M = 8 channels at 0.3 Mbps each on the
// P01 = 0.4 / P10 = 0.3 occupancy chain, plus the 0.3 Mbps common channel.
func ExampleNewBand() {
	chain, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		panic(err)
	}
	band, err := spectrum.NewBand(8, 0.3, 0.3, chain)
	if err != nil {
		panic(err)
	}
	fmt.Printf("licensed channels: %d\n", band.M())
	fmt.Printf("utilization eta: %.4f\n", band.Utilization(1))
	fmt.Printf("mean idle channels: %.3f\n", band.MeanAvailableChannels())
	// Output:
	// licensed channels: 8
	// utilization eta: 0.5714
	// mean idle channels: 3.429
}
