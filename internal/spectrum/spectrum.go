// Package spectrum models the licensed band of the paper's primary network:
// M licensed channels of capacity B1 each plus one common unlicensed channel
// of capacity B0 (paper §III-A). Occupancy of each licensed channel evolves
// as an independent two-state Markov chain; the common channel is always
// available to the CR network.
package spectrum

import (
	"errors"
	"fmt"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

// CommonChannel is the index of the common (unlicensed) channel. Licensed
// channels are indexed 1..M, matching the paper's numbering.
const CommonChannel = 0

// ErrBadConfig is returned for non-positive channel counts or capacities.
var ErrBadConfig = errors.New("spectrum: invalid configuration")

// Band describes the spectrum: M licensed channels plus the common channel.
type Band struct {
	m      int            //femtovet:index channel
	b0     float64        //femtovet:unit bps -- common-channel capacity, Mbps
	b1     float64        //femtovet:unit bps -- per-licensed-channel capacity, Mbps
	chains []markov.Chain //femtovet:index channel
}

// NewBand builds a band with M licensed channels, all following the same
// occupancy chain. B0 and B1 are channel capacities in Mbps.
func NewBand(m int, b0, b1 float64, chain markov.Chain) (*Band, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: M=%d licensed channels", ErrBadConfig, m)
	}
	if b0 <= 0 || b1 <= 0 {
		return nil, fmt.Errorf("%w: B0=%v B1=%v Mbps", ErrBadConfig, b0, b1)
	}
	chains := make([]markov.Chain, m)
	for i := range chains {
		chains[i] = chain
	}
	return &Band{m: m, b0: b0, b1: b1, chains: chains}, nil
}

// NewHeterogeneousBand builds a band where each licensed channel has its own
// occupancy chain; len(chains) defines M.
func NewHeterogeneousBand(b0, b1 float64, chains []markov.Chain) (*Band, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("%w: no licensed channels", ErrBadConfig)
	}
	if b0 <= 0 || b1 <= 0 {
		return nil, fmt.Errorf("%w: B0=%v B1=%v Mbps", ErrBadConfig, b0, b1)
	}
	cp := make([]markov.Chain, len(chains))
	copy(cp, chains)
	return &Band{m: len(cp), b0: b0, b1: b1, chains: cp}, nil
}

// M returns the number of licensed channels.
//
//femtovet:index channel
func (b *Band) M() int { return b.m }

// B0 returns the common-channel capacity in Mbps.
func (b *Band) B0() float64 { return b.b0 }

// B1 returns the per-licensed-channel capacity in Mbps.
func (b *Band) B1() float64 { return b.b1 }

// Chain returns the occupancy chain of licensed channel m (1-based).
func (b *Band) Chain(m int) markov.Chain { return b.chains[m-1] }

// Utilization returns the stationary utilization eta of licensed channel m
// (1-based), per eq. (1).
func (b *Band) Utilization(m int) float64 { return b.chains[m-1].Utilization() }

// MeanAvailableChannels returns the expected number of idle licensed
// channels in steady state, sum over m of (1 - eta_m).
func (b *Band) MeanAvailableChannels() float64 {
	sum := 0.0
	for _, c := range b.chains {
		sum += 1 - c.Utilization()
	}
	return sum
}

// Occupancy is the true state vector S(t) of the licensed channels;
// Occupancy[m-1] is the state of channel m.
type Occupancy []markov.State

// Idle reports whether licensed channel m (1-based) is idle.
func (o Occupancy) Idle(m int) bool { return o[m-1] == markov.Idle }

// NumIdle returns the number of idle licensed channels.
func (o Occupancy) NumIdle() int {
	n := 0
	for _, s := range o {
		if s == markov.Idle {
			n++
		}
	}
	return n
}

// Clone returns a copy of the occupancy vector.
func (o Occupancy) Clone() Occupancy {
	cp := make(Occupancy, len(o))
	copy(cp, o)
	return cp
}

// Simulator advances the occupancy of a band slot by slot. Each channel
// draws from its own random stream so trajectories are stable when channels
// are added or removed.
type Simulator struct {
	band    *Band
	state   Occupancy     //femtovet:index channel
	streams []*rng.Stream //femtovet:index channel
	slot    int
}

// NewSimulator creates a simulator with the initial occupancy drawn from
// each channel's stationary distribution.
func NewSimulator(band *Band, stream *rng.Stream) *Simulator {
	streams := make([]*rng.Stream, band.m)
	state := make(Occupancy, band.m)
	for i := 0; i < band.m; i++ {
		streams[i] = stream.SplitIndex("spectrum/channel", i+1)
		state[i] = band.chains[i].SampleStationary(streams[i])
	}
	return &Simulator{band: band, state: state, streams: streams}
}

// Band returns the simulated band.
func (s *Simulator) Band() *Band { return s.band }

// Slot returns the index of the current slot (0-based; incremented by Step).
func (s *Simulator) Slot() int { return s.slot }

// Occupancy returns the current true channel states. The returned slice is a
// copy; mutating it does not affect the simulator.
func (s *Simulator) Occupancy() Occupancy { return s.state.Clone() }

// Step advances every channel one slot and returns the new occupancy. The
// returned slice is a copy the caller may keep.
func (s *Simulator) Step() Occupancy {
	return s.StepInPlace().Clone()
}

// StepInPlace is Step returning the simulator's own state vector, valid only
// until the next Step; per-slot loops use it to avoid the per-call copy.
//
//femtovet:hotpath
func (s *Simulator) StepInPlace() Occupancy {
	for i := range s.state {
		s.state[i] = s.band.chains[i].Next(s.state[i], s.streams[i])
	}
	s.slot++
	return s.state
}
