package sensing_test

import (
	"fmt"

	"femtocr/internal/sensing"
)

// Fusing sensing results with eq. (2): two idle reports and one busy report
// from detectors with the paper's error rates epsilon = delta = 0.3, on a
// channel with utilization 0.571.
func ExamplePosterior() {
	det, err := sensing.NewDetector(0.3, 0.3)
	if err != nil {
		panic(err)
	}
	obs := []sensing.Observation{
		{Busy: false, Detector: det},
		{Busy: false, Detector: det},
		{Busy: true, Detector: det},
	}
	pa, err := sensing.Posterior(0.571, obs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P_A = %.4f\n", pa)
	// Output:
	// P_A = 0.6368
}

// The iterative decomposition of eqs. (3)-(4): results arrive one at a time
// over the common channel and the posterior is updated incrementally.
func ExampleFuser() {
	det, _ := sensing.NewDetector(0.3, 0.3)
	f, err := sensing.NewFuser(0.571)
	if err != nil {
		panic(err)
	}
	fmt.Printf("prior:        %.4f\n", f.Posterior())
	f.Update(sensing.Observation{Busy: false, Detector: det})
	fmt.Printf("after idle:   %.4f\n", f.Posterior())
	f.Update(sensing.Observation{Busy: false, Detector: det})
	fmt.Printf("after idle:   %.4f\n", f.Posterior())
	// Output:
	// prior:        0.4290
	// after idle:   0.6368
	// after idle:   0.8036
}
