package sensing

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"femtocr/internal/rng"
)

// AssignmentPolicy selects which licensed channel each single-transceiver CR
// user senses in a slot (paper §III-B: "Each CR user chooses one channel to
// sense in a time slot, since it only has one transceiver"). FBSs have M
// antennas and sense every channel, so policies apply to users only.
type AssignmentPolicy int

// Supported policies.
const (
	// RoundRobin rotates users across channels with the slot index so every
	// channel is sensed equally often over time.
	RoundRobin AssignmentPolicy = iota + 1
	// RandomAssign draws each user's channel uniformly at random per slot.
	RandomAssign
	// Stratified spreads users as evenly as possible across channels within
	// each single slot, randomizing only the channel order.
	Stratified
	// UncertaintyDriven targets the channels whose occupancy is least
	// certain. It needs per-channel busy beliefs (see AssignByUncertainty);
	// the generic Assign falls back to round-robin for it.
	UncertaintyDriven
)

// String names the policy.
func (p AssignmentPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case RandomAssign:
		return "random"
	case Stratified:
		return "stratified"
	case UncertaintyDriven:
		return "uncertainty-driven"
	default:
		return fmt.Sprintf("AssignmentPolicy(%d)", int(p))
	}
}

// ErrBadAssignment is returned for invalid sensor counts, channel counts, or
// unknown policies.
var ErrBadAssignment = errors.New("sensing: invalid assignment request")

// Assign maps each of numSensors user-sensors to one licensed channel
// (1-based). slot rotates deterministic policies over time; s supplies
// randomness for the stochastic policies and may be nil for RoundRobin.
func Assign(policy AssignmentPolicy, numSensors, m, slot int, s *rng.Stream) ([]int, error) {
	if numSensors < 0 || m <= 0 {
		return nil, fmt.Errorf("%w: numSensors=%d M=%d", ErrBadAssignment, numSensors, m)
	}
	out := make([]int, numSensors)
	if err := AssignInto(out, policy, m, slot, s); err != nil {
		return nil, err
	}
	return out, nil
}

// permBuf is a pooled permutation buffer for the stratified policy, so the
// per-slot AssignInto stays allocation-free once the pool is warm.
type permBuf struct{ p []int }

var permPool = sync.Pool{New: func() any { return new(permBuf) }}

// growInt returns an int slice of length n, reusing buf's backing array when
// it is large enough. Contents are unspecified.
func growInt(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

// AssignInto is Assign writing into a caller-owned buffer whose length gives
// the sensor count, for per-slot loops that reuse one assignment slice.
//
//femtovet:hotpath
//femtovet:borrows out, s
func AssignInto(out []int, policy AssignmentPolicy, m, slot int, s *rng.Stream) error {
	if m <= 0 {
		return fmt.Errorf("%w: numSensors=%d M=%d", ErrBadAssignment, len(out), m)
	}
	switch policy {
	case RoundRobin, UncertaintyDriven:
		// UncertaintyDriven needs beliefs; without them (this generic entry
		// point) it degrades to round-robin.
		for i := range out {
			out[i] = (i+slot)%m + 1
		}
	case RandomAssign:
		if s == nil {
			return fmt.Errorf("%w: random policy needs a stream", ErrBadAssignment)
		}
		for i := range out {
			out[i] = s.IntN(m) + 1
		}
	case Stratified:
		if s == nil {
			return fmt.Errorf("%w: stratified policy needs a stream", ErrBadAssignment)
		}
		buf := permPool.Get().(*permBuf)
		defer permPool.Put(buf)
		buf.p = growInt(buf.p, m)
		s.PermInto(buf.p)
		for i := range out {
			out[i] = buf.p[i%m] + 1
		}
	default:
		return fmt.Errorf("%w: unknown policy %d", ErrBadAssignment, int(policy))
	}
	return nil
}

// AssignByUncertainty assigns sensors to the channels with the most
// uncertain occupancy: channels are ranked by |Pr{busy} - 1/2| ascending
// (binary entropy is maximized at 1/2), and sensors are spread round-robin
// over that ranking. A sensing result is worth the most exactly where the
// belief is least decided.
func AssignByUncertainty(numSensors int, busyProbs []float64) ([]int, error) {
	m := len(busyProbs)
	if numSensors < 0 || m == 0 {
		return nil, fmt.Errorf("%w: numSensors=%d M=%d", ErrBadAssignment, numSensors, m)
	}
	out := make([]int, numSensors)
	order := make([]int, m)
	if err := AssignByUncertaintyInto(out, order, busyProbs); err != nil {
		return nil, err
	}
	return out, nil
}

// AssignByUncertaintyInto is AssignByUncertainty writing into caller-owned
// buffers: out receives the per-sensor channel choices and order, of length
// len(busyProbs), is the ranking scratch (left holding the channel indices
// sorted by ascending |Pr{busy} - 1/2|). The ranking is a stable insertion
// sort, so ties keep their ascending channel order — the exact ordering the
// sort.SliceStable in AssignByUncertainty produces.
//
//femtovet:hotpath
//femtovet:borrows out, order, busyProbs
func AssignByUncertaintyInto(out, order []int, busyProbs []float64) error {
	m := len(busyProbs)
	if m == 0 || len(order) != m {
		return fmt.Errorf("%w: order has %d entries for M=%d", ErrBadAssignment, len(order), m)
	}
	for i := range order {
		order[i] = i
	}
	for i := 1; i < m; i++ {
		j := order[i]
		dj := math.Abs(busyProbs[j] - 0.5)
		p := i - 1
		for p >= 0 && math.Abs(busyProbs[order[p]]-0.5) > dj {
			order[p+1] = order[p]
			p--
		}
		order[p+1] = j
	}
	for i := range out {
		out[i] = order[i%m] + 1
	}
	return nil
}

// PerChannel inverts an assignment: index m-1 lists the sensors assigned to
// channel m.
func PerChannel(assignment []int, m int) [][]int {
	out := make([][]int, m)
	for sensor, ch := range assignment {
		out[ch-1] = append(out[ch-1], sensor)
	}
	return out
}
