// Package sensing implements spectrum sensing with detection errors and the
// Bayesian fusion of sensing results from the paper's §III-B.
//
// Each sensor observes a licensed channel through a binary hypothesis test
// with false-alarm probability epsilon (idle reported busy, an opportunity
// wasted) and miss-detection probability delta (busy reported idle, a
// potential collision with primary users). Given L sensing results
// Theta_1..Theta_L on a channel with utilization eta, the conditional
// probability that the channel is available is eq. (2); eqs. (3)-(4) give
// the equivalent iterative update used when results arrive one at a time
// over the common channel.
package sensing

import (
	"errors"
	"fmt"
	"math"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

// ErrBadDetector is returned when detector error probabilities lie outside
// [0, 1).
var ErrBadDetector = errors.New("sensing: detector error probabilities must be in [0, 1)")

// ErrBadPrior is returned when channel utilization lies outside [0, 1).
var ErrBadPrior = errors.New("sensing: utilization prior must be in [0, 1)")

// Detector models one spectrum sensor: Pr{report busy | idle} = FalseAlarm
// and Pr{report idle | busy} = MissDetect.
type Detector struct {
	falseAlarm float64 //femtovet:unit prob
	missDetect float64 //femtovet:unit prob
}

// NewDetector validates and builds a Detector. Both error probabilities must
// lie in [0, 1); exactly-one would make the likelihood ratios degenerate
// (a sensor that is always wrong).
func NewDetector(falseAlarm, missDetect float64) (Detector, error) {
	if falseAlarm < 0 || falseAlarm >= 1 || missDetect < 0 || missDetect >= 1 {
		return Detector{}, fmt.Errorf("%w: epsilon=%v delta=%v", ErrBadDetector, falseAlarm, missDetect)
	}
	return Detector{falseAlarm: falseAlarm, missDetect: missDetect}, nil
}

// FalseAlarm returns epsilon, the probability an idle channel is reported
// busy.
func (d Detector) FalseAlarm() float64 { return d.falseAlarm }

// MissDetect returns delta, the probability a busy channel is reported idle.
func (d Detector) MissDetect() float64 { return d.missDetect }

// Sense produces one observation of a channel whose true state is truth.
func (d Detector) Sense(truth markov.State, s *rng.Stream) Observation {
	var busy bool
	if truth == markov.Idle {
		busy = s.Bernoulli(d.falseAlarm) // false alarm
	} else {
		busy = !s.Bernoulli(d.missDetect) // correct detection unless missed
	}
	return Observation{Busy: busy, Detector: d}
}

// Observation is one sensing result Theta together with the error
// characteristics of the detector that produced it, which the fusion rule
// needs to weight the result.
type Observation struct {
	Busy     bool // Theta = 1 when the sensor reports busy
	Detector Detector
}

// likelihoodRatio returns P(Theta | H1-busy) / P(Theta | H0-idle), the factor
// each observation contributes to the busy-vs-idle odds in eqs. (2)-(4).
func (o Observation) likelihoodRatio() float64 {
	d := o.Detector
	if o.Busy {
		// Reported busy: P(busy report|busy)/P(busy report|idle).
		return (1 - d.missDetect) / d.falseAlarm
	}
	// Reported idle: P(idle report|busy)/P(idle report|idle).
	return d.missDetect / (1 - d.falseAlarm)
}

// Posterior computes P_A(Theta_1..Theta_L) of eq. (2): the probability the
// channel is idle given utilization prior eta and the observations. With no
// observations it returns the prior idle probability 1-eta.
func Posterior(eta float64, obs []Observation) (float64, error) {
	f, err := NewFuser(eta)
	if err != nil {
		return 0, err
	}
	for _, o := range obs {
		f.Update(o)
	}
	return f.Posterior(), nil
}

// Fuser accumulates sensing results into the availability posterior using
// the iterative decomposition of eqs. (3)-(4). The state kept between
// updates is the busy-vs-idle odds; Posterior converts it back to P_A.
type Fuser struct {
	oddsBusy float64 // (1 - P_A) / P_A
	count    int
}

// NewFuser starts a fusion with the utilization prior eta, so the initial
// posterior equals the stationary idle probability 1-eta.
func NewFuser(eta float64) (*Fuser, error) {
	if eta < 0 || eta >= 1 {
		return nil, fmt.Errorf("%w: eta=%v", ErrBadPrior, eta)
	}
	return &Fuser{oddsBusy: eta / (1 - eta)}, nil
}

// Reset restarts the fusion with a new utilization prior, reusing the Fuser.
// It is the allocation-free equivalent of NewFuser for per-slot loops that
// keep one Fuser per channel.
func (f *Fuser) Reset(eta float64) error {
	if eta < 0 || eta >= 1 {
		return fmt.Errorf("%w: eta=%v", ErrBadPrior, eta)
	}
	f.oddsBusy = eta / (1 - eta)
	f.count = 0
	return nil
}

// Update folds one observation into the posterior; this is one application
// of eq. (4) (or eq. (3) for the first observation). Certainty is
// absorbing: once the odds are exactly 0 (certainly idle) or infinite
// (certainly busy), later observations cannot move them — this also guards
// the 0 * Inf = NaN that contradictory certainties (a zero prior meeting a
// perfect detector's opposite report) would otherwise produce.
func (f *Fuser) Update(o Observation) {
	f.count++
	if f.oddsBusy == 0 || math.IsInf(f.oddsBusy, 1) {
		return
	}
	f.oddsBusy *= o.likelihoodRatio()
}

// Count returns the number of observations fused so far.
func (f *Fuser) Count() int { return f.count }

// Posterior returns the current availability probability
// P_A = 1 / (1 + oddsBusy).
func (f *Fuser) Posterior() float64 {
	return 1 / (1 + f.oddsBusy)
}
