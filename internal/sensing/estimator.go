package sensing

import (
	"errors"
	"fmt"
)

// The fusion rule of eqs. (2)-(4) takes the channel utilization eta as a
// known prior. In a deployed system eta must be learned from the sensing
// results themselves — which are biased by the detector's errors: an idle
// channel is reported busy with probability epsilon and a busy one idle
// with probability delta, so the raw busy-report fraction observes
//
//	Pr{report busy} = eta*(1-delta) + (1-eta)*epsilon.
//
// UtilizationEstimator inverts that relation by the method of moments:
//
//	eta_hat = (busyFraction - epsilon) / (1 - epsilon - delta),
//
// clamped to [0, 1]. The estimator is consistent whenever the detector is
// informative (epsilon + delta < 1).

// ErrUninformativeDetector is returned when epsilon + delta >= 1, where the
// busy-report rate carries no information about the utilization.
var ErrUninformativeDetector = errors.New("sensing: detector too noisy to estimate utilization")

// ErrNoObservations is returned when an estimate is requested before any
// observation was recorded.
var ErrNoObservations = errors.New("sensing: no observations")

// UtilizationEstimator learns a channel's utilization online from its own
// noisy sensing reports.
type UtilizationEstimator struct {
	det   Detector
	busy  int
	total int
}

// NewUtilizationEstimator builds an estimator for results produced by det.
func NewUtilizationEstimator(det Detector) (*UtilizationEstimator, error) {
	if det.FalseAlarm()+det.MissDetect() >= 1 {
		return nil, fmt.Errorf("%w: epsilon=%v delta=%v",
			ErrUninformativeDetector, det.FalseAlarm(), det.MissDetect())
	}
	return &UtilizationEstimator{det: det}, nil
}

// Record folds one sensing report in.
func (e *UtilizationEstimator) Record(o Observation) {
	e.total++
	if o.Busy {
		e.busy++
	}
}

// Observations returns the number of recorded reports.
func (e *UtilizationEstimator) Observations() int { return e.total }

// Estimate returns the bias-corrected utilization estimate eta_hat.
func (e *UtilizationEstimator) Estimate() (float64, error) {
	if e.total == 0 {
		return 0, ErrNoObservations
	}
	frac := float64(e.busy) / float64(e.total)
	eta := (frac - e.det.FalseAlarm()) / (1 - e.det.FalseAlarm() - e.det.MissDetect())
	if eta < 0 {
		eta = 0
	}
	if eta > 1 {
		eta = 1
	}
	return eta, nil
}

// RawBusyFraction returns the uncorrected busy-report rate, useful to
// demonstrate the detector bias the correction removes.
func (e *UtilizationEstimator) RawBusyFraction() (float64, error) {
	if e.total == 0 {
		return 0, ErrNoObservations
	}
	return float64(e.busy) / float64(e.total), nil
}
