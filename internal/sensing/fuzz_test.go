package sensing

import (
	"math"
	"testing"
)

// FuzzPosterior hunts for detector/prior/observation combinations where the
// fused availability leaves [0, 1] or produces NaN.
func FuzzPosterior(f *testing.F) {
	f.Add(0.571, 0.3, 0.3, uint8(0b1010), uint8(4))
	f.Add(0.0, 0.0, 0.0, uint8(0b1), uint8(1))
	f.Add(0.99, 0.98, 0.0, uint8(0xFF), uint8(8))
	f.Fuzz(func(t *testing.T, eta, eps, delta float64, bits, n uint8) {
		if math.IsNaN(eta) || eta < 0 || eta >= 1 {
			return
		}
		if math.IsNaN(eps) || eps < 0 || eps >= 1 || math.IsNaN(delta) || delta < 0 || delta >= 1 {
			return
		}
		det, err := NewDetector(eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		count := int(n % 9)
		obs := make([]Observation, count)
		for i := range obs {
			obs[i] = Observation{Busy: bits&(1<<i) != 0, Detector: det}
		}
		p, err := Posterior(eta, obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("posterior %v for eta=%v eps=%v delta=%v obs=%08b", p, eta, eps, delta, bits)
		}
	})
}
