package sensing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

func det(t *testing.T, eps, delta float64) Detector {
	t.Helper()
	d, err := NewDetector(eps, delta)
	if err != nil {
		t.Fatalf("NewDetector(%v, %v): %v", eps, delta, err)
	}
	return d
}

func TestNewDetectorValidation(t *testing.T) {
	cases := []struct {
		eps, delta float64
		ok         bool
	}{
		{0.3, 0.3, true},
		{0, 0, true},
		{0.99, 0.99, true},
		{1, 0.3, false},
		{0.3, 1, false},
		{-0.1, 0.3, false},
		{0.3, -0.1, false},
	}
	for _, c := range cases {
		_, err := NewDetector(c.eps, c.delta)
		if c.ok && err != nil {
			t.Errorf("NewDetector(%v,%v) unexpected err %v", c.eps, c.delta, err)
		}
		if !c.ok && !errors.Is(err, ErrBadDetector) {
			t.Errorf("NewDetector(%v,%v) err = %v, want ErrBadDetector", c.eps, c.delta, err)
		}
	}
}

func TestSenseErrorRates(t *testing.T) {
	d := det(t, 0.3, 0.2)
	s := rng.New(1)
	const n = 200000
	falseAlarms, misses := 0, 0
	for i := 0; i < n; i++ {
		if d.Sense(markov.Idle, s).Busy {
			falseAlarms++
		}
		if !d.Sense(markov.Busy, s).Busy {
			misses++
		}
	}
	if got := float64(falseAlarms) / n; math.Abs(got-0.3) > 0.01 {
		t.Fatalf("false alarm rate %v, want ~0.3", got)
	}
	if got := float64(misses) / n; math.Abs(got-0.2) > 0.01 {
		t.Fatalf("miss rate %v, want ~0.2", got)
	}
}

func TestPosteriorNoObservationsIsPrior(t *testing.T) {
	for _, eta := range []float64{0, 0.3, 0.7, 0.99} {
		got, err := Posterior(eta, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-(1-eta)) > 1e-12 {
			t.Fatalf("eta=%v: posterior %v, want prior %v", eta, got, 1-eta)
		}
	}
}

func TestPosteriorBadPrior(t *testing.T) {
	if _, err := Posterior(1.0, nil); !errors.Is(err, ErrBadPrior) {
		t.Fatalf("eta=1 err = %v, want ErrBadPrior", err)
	}
	if _, err := Posterior(-0.1, nil); !errors.Is(err, ErrBadPrior) {
		t.Fatalf("eta=-0.1 err = %v, want ErrBadPrior", err)
	}
}

// TestPosteriorMatchesEquation2 checks the batch posterior against a direct
// transcription of eq. (2) for several observation vectors.
func TestPosteriorMatchesEquation2(t *testing.T) {
	eta := 0.4
	d1 := det(t, 0.3, 0.3)
	d2 := det(t, 0.2, 0.48)
	obsSets := [][]Observation{
		{{Busy: false, Detector: d1}},
		{{Busy: true, Detector: d1}},
		{{Busy: false, Detector: d1}, {Busy: true, Detector: d2}},
		{{Busy: true, Detector: d1}, {Busy: true, Detector: d2}, {Busy: false, Detector: d1}},
	}
	for _, obs := range obsSets {
		prod := 1.0
		for _, o := range obs {
			eps, delta := o.Detector.FalseAlarm(), o.Detector.MissDetect()
			theta := 0.0
			if o.Busy {
				theta = 1
			}
			num := math.Pow(delta, 1-theta) * math.Pow(1-delta, theta)
			den := math.Pow(eps, theta) * math.Pow(1-eps, 1-theta)
			prod *= num / den
		}
		want := 1 / (1 + eta/(1-eta)*prod)
		got, err := Posterior(eta, obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("obs %v: posterior %v, want %v (eq. 2)", obs, got, want)
		}
	}
}

// TestIterativeMatchesBatch verifies eqs. (3)-(4) agree with eq. (2): fusing
// one result at a time gives the same posterior as the batch formula.
func TestIterativeMatchesBatch(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint8, etaPct, epsPct, deltaPct uint8) bool {
		eta := float64(etaPct%99) / 100
		eps := float64(epsPct%99) / 100
		delta := float64(deltaPct%99) / 100
		d, err := NewDetector(eps, delta)
		if err != nil {
			return false
		}
		s := rng.New(seed)
		obs := make([]Observation, int(n%16))
		for i := range obs {
			obs[i] = Observation{Busy: s.Bernoulli(0.5), Detector: d}
		}
		batch, err := Posterior(eta, obs)
		if err != nil {
			return false
		}
		f, err := NewFuser(eta)
		if err != nil {
			return false
		}
		for _, o := range obs {
			f.Update(o)
		}
		return math.Abs(batch-f.Posterior()) < 1e-12 && f.Count() == len(obs)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPosteriorOrderInvariant: the fusion of eq. (2) is a product, so the
// posterior must not depend on the order in which results arrive.
func TestPosteriorOrderInvariant(t *testing.T) {
	d1 := det(t, 0.3, 0.3)
	d2 := det(t, 0.1, 0.4)
	obs := []Observation{
		{Busy: true, Detector: d1},
		{Busy: false, Detector: d2},
		{Busy: true, Detector: d2},
		{Busy: false, Detector: d1},
	}
	ref, err := Posterior(0.5, obs)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]Observation, len(obs))
	for i, o := range obs {
		rev[len(obs)-1-i] = o
	}
	got, err := Posterior(0.5, rev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ref) > 1e-12 {
		t.Fatalf("posterior order-dependent: %v vs %v", got, ref)
	}
}

// TestPosteriorDirection: an idle report must raise the availability
// posterior and a busy report must lower it, for any informative detector
// (epsilon + delta < 1).
func TestPosteriorDirection(t *testing.T) {
	err := quick.Check(func(etaPct, epsPct, deltaPct uint8) bool {
		eta := float64(etaPct%80+10) / 100 // (0.1 .. 0.9)
		eps := float64(epsPct%50) / 100    // < 0.5
		delta := float64(deltaPct%50) / 100
		if eps+delta >= 1 {
			return true
		}
		d, err := NewDetector(eps, delta)
		if err != nil {
			return false
		}
		prior := 1 - eta
		idlePost, err := Posterior(eta, []Observation{{Busy: false, Detector: d}})
		if err != nil {
			return false
		}
		busyPost, err := Posterior(eta, []Observation{{Busy: true, Detector: d}})
		if err != nil {
			return false
		}
		return idlePost >= prior-1e-12 && busyPost <= prior+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPosteriorBounds: P_A always lies in [0, 1].
func TestPosteriorBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, etaPct, epsPct, deltaPct, n uint8) bool {
		eta := float64(etaPct%99) / 100
		d, err := NewDetector(float64(epsPct%99)/100, float64(deltaPct%99)/100)
		if err != nil {
			return false
		}
		s := rng.New(seed)
		obs := make([]Observation, int(n%32))
		for i := range obs {
			obs[i] = Observation{Busy: s.Bernoulli(0.5), Detector: d}
		}
		p, err := Posterior(eta, obs)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerfectDetectorPosterior(t *testing.T) {
	d := det(t, 0, 0) // never wrong
	idle, err := Posterior(0.5, []Observation{{Busy: false, Detector: d}})
	if err != nil {
		t.Fatal(err)
	}
	if idle != 1 {
		t.Fatalf("perfect detector idle report: posterior %v, want 1", idle)
	}
	busy, err := Posterior(0.5, []Observation{{Busy: true, Detector: d}})
	if err != nil {
		t.Fatal(err)
	}
	if busy != 0 {
		t.Fatalf("perfect detector busy report: posterior %v, want 0", busy)
	}
}

// TestPosteriorConsistency: with informative detectors and many observations
// of the true state, the posterior should converge toward the truth.
func TestPosteriorConsistency(t *testing.T) {
	d := det(t, 0.3, 0.3)
	s := rng.New(4)
	f, err := NewFuser(0.571)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		f.Update(d.Sense(markov.Idle, s))
	}
	if p := f.Posterior(); p < 0.999 {
		t.Fatalf("posterior after 200 idle observations = %v, want ~1", p)
	}
}

// TestPosteriorCalibration: empirically, among channels with fused posterior
// near p, about fraction p should truly be idle. This validates Sense and
// the fusion jointly as a well-calibrated Bayesian pipeline.
func TestPosteriorCalibration(t *testing.T) {
	const eta = 0.4
	d := det(t, 0.3, 0.3)
	s := rng.New(9)
	type bucket struct{ sum, idle, n float64 }
	buckets := make(map[int]*bucket)
	for trial := 0; trial < 200000; trial++ {
		truth := markov.Idle
		if s.Bernoulli(eta) {
			truth = markov.Busy
		}
		obs := []Observation{d.Sense(truth, s), d.Sense(truth, s)}
		p, err := Posterior(eta, obs)
		if err != nil {
			t.Fatal(err)
		}
		k := int(p * 10)
		b := buckets[k]
		if b == nil {
			b = &bucket{}
			buckets[k] = b
		}
		b.sum += p
		b.n++
		if truth == markov.Idle {
			b.idle++
		}
	}
	for k, b := range buckets {
		if b.n < 5000 {
			continue
		}
		predicted := b.sum / b.n
		actual := b.idle / b.n
		if math.Abs(predicted-actual) > 0.02 {
			t.Errorf("bucket %d: predicted availability %.3f, actual %.3f", k, predicted, actual)
		}
	}
}
