package sensing

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

func TestEstimatorRejectsUninformativeDetector(t *testing.T) {
	d, err := NewDetector(0.6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUtilizationEstimator(d); !errors.Is(err, ErrUninformativeDetector) {
		t.Fatalf("err = %v, want ErrUninformativeDetector", err)
	}
}

func TestEstimatorNeedsObservations(t *testing.T) {
	d, _ := NewDetector(0.3, 0.3)
	e, err := NewUtilizationEstimator(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(); !errors.Is(err, ErrNoObservations) {
		t.Fatalf("err = %v, want ErrNoObservations", err)
	}
	if _, err := e.RawBusyFraction(); !errors.Is(err, ErrNoObservations) {
		t.Fatalf("raw err = %v", err)
	}
}

// TestEstimatorConsistency: with the paper's noisy detector
// (epsilon = delta = 0.3) the corrected estimate converges to the true
// utilization while the raw busy fraction stays biased toward 1/2.
func TestEstimatorConsistency(t *testing.T) {
	chain, err := markov.NewChain(0.4, 0.3) // eta = 0.5714
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDetector(0.3, 0.3)
	e, err := NewUtilizationEstimator(d)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	state := chain.SampleStationary(s)
	for i := 0; i < 200000; i++ {
		state = chain.Next(state, s)
		e.Record(d.Sense(state, s))
	}
	eta := chain.Utilization()
	est, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-eta) > 0.01 {
		t.Fatalf("corrected estimate %v, true %v", est, eta)
	}
	raw, err := e.RawBusyFraction()
	if err != nil {
		t.Fatal(err)
	}
	// Raw rate = eta*(1-delta) + (1-eta)*eps = 0.5714*0.7 + 0.4286*0.3 = 0.5286.
	wantRaw := eta*0.7 + (1-eta)*0.3
	if math.Abs(raw-wantRaw) > 0.01 {
		t.Fatalf("raw fraction %v, want ~%v", raw, wantRaw)
	}
	if math.Abs(raw-eta) < math.Abs(est-eta) {
		t.Fatalf("raw %v closer to truth than corrected %v", raw, est)
	}
}

// TestEstimatorClamping: extreme samples cannot push the estimate outside
// [0, 1].
func TestEstimatorClamping(t *testing.T) {
	d, _ := NewDetector(0.3, 0.3)
	e, err := NewUtilizationEstimator(d)
	if err != nil {
		t.Fatal(err)
	}
	// All-idle reports: frac = 0 < epsilon, so the raw inversion would be
	// negative; the estimate clamps to 0.
	for i := 0; i < 50; i++ {
		e.Record(Observation{Busy: false, Detector: d})
	}
	est, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Fatalf("estimate %v, want clamped 0", est)
	}
	// All-busy reports clamp to 1.
	e2, _ := NewUtilizationEstimator(d)
	for i := 0; i < 50; i++ {
		e2.Record(Observation{Busy: true, Detector: d})
	}
	est, err = e2.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Fatalf("estimate %v, want clamped 1", est)
	}
	if e2.Observations() != 50 {
		t.Fatalf("observations %d", e2.Observations())
	}
}

// TestEstimatorPerfectDetector: with no sensing errors the corrected and
// raw estimates coincide.
func TestEstimatorPerfectDetector(t *testing.T) {
	d, _ := NewDetector(0, 0)
	e, err := NewUtilizationEstimator(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Record(Observation{Busy: i%2 == 0, Detector: d})
	}
	est, _ := e.Estimate()
	raw, _ := e.RawBusyFraction()
	if est != raw || est != 0.5 {
		t.Fatalf("perfect detector: est %v raw %v", est, raw)
	}
}
