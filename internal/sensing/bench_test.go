package sensing

// Ablation benchmarks for the fusion strategies of DESIGN.md: batch eq. (2)
// versus the iterative eqs. (3)-(4) update.

import (
	"testing"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

func benchObservations(b *testing.B, n int) []Observation {
	b.Helper()
	d, err := NewDetector(0.3, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(1)
	obs := make([]Observation, n)
	for i := range obs {
		obs[i] = d.Sense(markov.Idle, s)
	}
	return obs
}

func BenchmarkFusionBatch(b *testing.B) {
	obs := benchObservations(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Posterior(0.571, obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusionIterative(b *testing.B) {
	obs := benchObservations(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := NewFuser(0.571)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range obs {
			f.Update(o)
		}
		_ = f.Posterior()
	}
}

func BenchmarkSense(b *testing.B) {
	d, err := NewDetector(0.3, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sense(markov.Busy, s)
	}
}

func BenchmarkAssignRoundRobin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Assign(RoundRobin, 9, 8, i, nil); err != nil {
			b.Fatal(err)
		}
	}
}
