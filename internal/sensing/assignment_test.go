package sensing

import (
	"errors"
	"testing"

	"femtocr/internal/rng"
)

func TestAssignRoundRobinCoverage(t *testing.T) {
	const m = 8
	counts := make([]int, m)
	for slot := 0; slot < m; slot++ {
		a, err := Assign(RoundRobin, 3, m, slot, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range a {
			if ch < 1 || ch > m {
				t.Fatalf("channel %d out of range", ch)
			}
			counts[ch-1]++
		}
	}
	// Over M slots, round-robin visits each channel the same number of times.
	for ch, c := range counts {
		if c != 3 {
			t.Fatalf("channel %d sensed %d times over %d slots, want 3", ch+1, c, m)
		}
	}
}

func TestAssignRoundRobinRotates(t *testing.T) {
	a0, _ := Assign(RoundRobin, 2, 4, 0, nil)
	a1, _ := Assign(RoundRobin, 2, 4, 1, nil)
	if a0[0] == a1[0] {
		t.Fatalf("round-robin did not rotate with slot: %v vs %v", a0, a1)
	}
}

func TestAssignRandomInRange(t *testing.T) {
	s := rng.New(1)
	a, err := Assign(RandomAssign, 100, 5, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range a {
		if ch < 1 || ch > 5 {
			t.Fatalf("channel %d out of range", ch)
		}
	}
}

func TestAssignStratifiedEven(t *testing.T) {
	s := rng.New(2)
	const m, k = 4, 10
	a, err := Assign(Stratified, k, m, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m)
	for _, ch := range a {
		counts[ch-1]++
	}
	// 10 sensors over 4 channels: counts must be 3,3,2,2 in some order.
	lo, hi := k/m, (k+m-1)/m
	for ch, c := range counts {
		if c < lo || c > hi {
			t.Fatalf("stratified channel %d got %d sensors, want %d..%d", ch+1, c, lo, hi)
		}
	}
}

func TestAssignErrors(t *testing.T) {
	if _, err := Assign(RoundRobin, -1, 4, 0, nil); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("negative sensors err = %v", err)
	}
	if _, err := Assign(RoundRobin, 3, 0, 0, nil); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("zero channels err = %v", err)
	}
	if _, err := Assign(RandomAssign, 3, 4, 0, nil); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("random without stream err = %v", err)
	}
	if _, err := Assign(Stratified, 3, 4, 0, nil); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("stratified without stream err = %v", err)
	}
	if _, err := Assign(AssignmentPolicy(0), 3, 4, 0, nil); !errors.Is(err, ErrBadAssignment) {
		t.Fatalf("unknown policy err = %v", err)
	}
}

func TestAssignZeroSensors(t *testing.T) {
	a, err := Assign(RoundRobin, 0, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 0 {
		t.Fatalf("len = %d, want 0", len(a))
	}
}

func TestPerChannel(t *testing.T) {
	assignment := []int{1, 2, 1, 3}
	pc := PerChannel(assignment, 3)
	if len(pc) != 3 {
		t.Fatalf("len = %d, want 3", len(pc))
	}
	if len(pc[0]) != 2 || pc[0][0] != 0 || pc[0][1] != 2 {
		t.Fatalf("channel 1 sensors = %v, want [0 2]", pc[0])
	}
	if len(pc[1]) != 1 || pc[1][0] != 1 {
		t.Fatalf("channel 2 sensors = %v, want [1]", pc[1])
	}
	if len(pc[2]) != 1 || pc[2][0] != 3 {
		t.Fatalf("channel 3 sensors = %v, want [3]", pc[2])
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" ||
		RandomAssign.String() != "random" ||
		Stratified.String() != "stratified" {
		t.Fatal("policy strings wrong")
	}
	if AssignmentPolicy(9).String() != "AssignmentPolicy(9)" {
		t.Fatalf("unknown policy string = %q", AssignmentPolicy(9).String())
	}
}

func TestAssignByUncertainty(t *testing.T) {
	busy := []float64{0.9, 0.5, 0.1, 0.45}
	// Uncertainty order: ch2 (0.5), ch4 (0.45), ch1 (0.9) vs ch3 (0.1)
	// tie at distance 0.4 broken by index (stable): ch1 then ch3.
	a, err := AssignByUncertainty(4, busy)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 1, 3}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("assignment %v, want %v", a, want)
		}
	}
	// More sensors than channels wrap around the ranking.
	a, err = AssignByUncertainty(6, busy)
	if err != nil {
		t.Fatal(err)
	}
	if a[4] != 2 || a[5] != 4 {
		t.Fatalf("wrap-around wrong: %v", a)
	}
}

func TestAssignByUncertaintyErrors(t *testing.T) {
	if _, err := AssignByUncertainty(2, nil); !errors.Is(err, ErrBadAssignment) {
		t.Fatal("empty beliefs accepted")
	}
	if _, err := AssignByUncertainty(-1, []float64{0.5}); !errors.Is(err, ErrBadAssignment) {
		t.Fatal("negative sensors accepted")
	}
}

func TestUncertaintyPolicyFallsBackToRoundRobin(t *testing.T) {
	a, err := Assign(UncertaintyDriven, 3, 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Assign(RoundRobin, 3, 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != rr[i] {
			t.Fatal("fallback differs from round-robin")
		}
	}
	if UncertaintyDriven.String() != "uncertainty-driven" {
		t.Fatal("name wrong")
	}
}
