package sim

// Failure-injection tests: the engine must behave gracefully at the edges
// of the parameter space — spectrum nearly always busy, collision budget
// zero, hopeless links, near-blind sensors — degrading quality without
// crashing, NaNs, or constraint violations.

import (
	"math"
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/video"
)

func runOK(t *testing.T, cfg netmodel.Config, opts Options) *Result {
	t.Helper()
	net, err := netmodel.PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range res.PerUserPSNR {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("user %d PSNR %v", j, p)
		}
	}
	if math.IsNaN(res.MeanPSNR) || res.CollisionRate < 0 || res.CollisionRate > 1 {
		t.Fatalf("degenerate result: %+v", res)
	}
	return res
}

// TestNearSaturatedSpectrum: primary users occupy ~90% of every channel;
// almost everything must flow through the common channel.
func TestNearSaturatedSpectrum(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	cfg.P10 = 0.05
	cfg.P01 = 0.45 // eta = 0.9
	res := runOK(t, cfg, Options{Seed: 1, GOPs: 20})
	base := runOK(t, netmodel.DefaultConfig(), Options{Seed: 1, GOPs: 20})
	if res.MeanPSNR >= base.MeanPSNR {
		t.Fatalf("saturated spectrum %v not worse than default %v", res.MeanPSNR, base.MeanPSNR)
	}
	if res.MeanExpectedChannels >= base.MeanExpectedChannels {
		t.Fatalf("expected channels %v not below default %v",
			res.MeanExpectedChannels, base.MeanExpectedChannels)
	}
}

// TestZeroCollisionBudget: gamma = 0 forbids any risk; only channels whose
// posterior certainty is absolute may be accessed, so licensed throughput
// collapses but the run completes and protection is perfect.
func TestZeroCollisionBudget(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	cfg.Gamma = 0
	res := runOK(t, cfg, Options{Seed: 1, GOPs: 30})
	if res.CollisionRate != 0 {
		t.Fatalf("gamma=0 but collision rate %v", res.CollisionRate)
	}
	// With epsilon, delta > 0 no posterior reaches certainty, so no licensed
	// channel is ever accessed.
	if res.MeanExpectedChannels != 0 {
		t.Fatalf("gamma=0 accessed %v expected channels", res.MeanExpectedChannels)
	}
	// The common channel still delivers something.
	base := 0.0
	for _, u := range mustNet(t, cfg).Users {
		base += u.Seq.RD.Alpha
	}
	base /= 3
	if res.MeanPSNR <= base {
		t.Fatalf("common channel delivered nothing: %v <= %v", res.MeanPSNR, base)
	}
}

func mustNet(t *testing.T, cfg netmodel.Config) *netmodel.Network {
	t.Helper()
	net, err := netmodel.PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestFullCollisionBudget: gamma = 1 allows accessing everything; quality
// is the best of the sweep and collisions approach the channel busy rate.
func TestFullCollisionBudget(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	cfg.Gamma = 1
	res := runOK(t, cfg, Options{Seed: 1, GOPs: 30})
	limited := runOK(t, netmodel.DefaultConfig(), Options{Seed: 1, GOPs: 30})
	if res.MeanPSNR < limited.MeanPSNR {
		t.Fatalf("unlimited budget %v below gamma=0.2 %v", res.MeanPSNR, limited.MeanPSNR)
	}
	// Every channel always accessed: collision rate ~ eta.
	if res.CollisionRate < 0.45 {
		t.Fatalf("gamma=1 collision rate %v suspiciously low (eta=0.571)", res.CollisionRate)
	}
}

// TestHopelessLinks: a decoding threshold far above every link's SINR means
// nothing ever decodes; quality stays exactly at the base layer.
func TestHopelessLinks(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	cfg.ThresholdDB = 60
	net := mustNet(t, cfg)
	res, err := Run(net, Options{Seed: 1, GOPs: 10})
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range res.PerUserPSNR {
		if math.Abs(p-net.Users[j].Seq.RD.Alpha) > 0.2 {
			t.Fatalf("user %d got %v despite hopeless links (alpha %v)",
				j, p, net.Users[j].Seq.RD.Alpha)
		}
	}
}

// TestNearBlindSensors: epsilon = delta = 0.49 makes sensing almost
// uninformative; the posterior stays near the prior and the system still
// respects the collision budget.
func TestNearBlindSensors(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	cfg.Eps, cfg.Delta = 0.49, 0.49
	res := runOK(t, cfg, Options{Seed: 2, GOPs: 100})
	if res.CollisionRate > cfg.Gamma+0.05 {
		t.Fatalf("blind sensing broke protection: %v", res.CollisionRate)
	}
	informed := runOK(t, netmodel.DefaultConfig(), Options{Seed: 2, GOPs: 100})
	if res.MeanPSNR > informed.MeanPSNR+0.2 {
		t.Fatalf("blind sensing %v beats informed %v", res.MeanPSNR, informed.MeanPSNR)
	}
}

// TestSingleUserNetwork: the smallest possible network runs under every
// scheme.
func TestSingleUserNetwork(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	bus := mustNet(t, cfg).Users[0].Seq
	net, err := netmodel.SingleFBS(cfg, []video.Sequence{bus})
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []Scheme{Proposed, Heuristic1, Heuristic2} {
		res, err := Run(net, Options{Seed: 1, GOPs: 5, Scheme: sch})
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		if res.MeanPSNR < bus.RD.Alpha-1e-9 {
			t.Fatalf("%v: PSNR %v below alpha", sch, res.MeanPSNR)
		}
	}
}

// TestTinyGOPDeadline: T=1 means a single slot per GOP — every boundary
// condition in the engine fires each slot.
func TestTinyGOPDeadline(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	cfg.T = 1
	res := runOK(t, cfg, Options{Seed: 3, GOPs: 30})
	if res.GOPs != 30 || res.Slots != 30 {
		t.Fatalf("accounting with T=1: %+v", res)
	}
}

// TestHeterogeneousChannelsPreferIdle: with one nearly-free and one
// nearly-saturated channel, the access rule should deliver more expected
// availability than the same band with both channels at the average.
func TestHeterogeneousChannelsPreferIdle(t *testing.T) {
	het := netmodel.DefaultConfig()
	het.HeterogeneousEta = []float64{0.1, 0.1, 0.7, 0.7}
	resHet := runOK(t, het, Options{Seed: 4, GOPs: 30})

	hom := netmodel.DefaultConfig()
	hom.HeterogeneousEta = []float64{0.4, 0.4, 0.4, 0.4}
	resHom := runOK(t, hom, Options{Seed: 4, GOPs: 30})

	// Expected availability: idle channels are easy to confirm idle, busy
	// ones are protected away, so the mixed band yields at least as much
	// usable spectrum as the homogeneous one.
	if resHet.MeanExpectedChannels < resHom.MeanExpectedChannels-0.3 {
		t.Fatalf("heterogeneous G %v well below homogeneous %v",
			resHet.MeanExpectedChannels, resHom.MeanExpectedChannels)
	}
}
