package sim

// The workspace/pooling rework must be invisible in the outputs: a run is a
// pure function of (network, options), no matter how many other runs have
// churned the shared solver workspace pool before or during it. This test
// replays the same seed while concurrent runs with different seeds hammer
// the pool from other goroutines; every replay must equal the quiescent
// result field for field. Under -race it also proves the pooled workspaces
// are never shared between live solves.

import (
	"reflect"
	"sync"
	"testing"
)

func TestRunBitIdenticalUnderPoolChurn(t *testing.T) {
	cases := []struct {
		name        string
		interfering bool
		opts        Options
	}{
		{"single-proposed", false, Options{Scheme: Proposed, Seed: 11, GOPs: 2}},
		{"single-proposed-dual", false, Options{Scheme: Proposed, UseDualSolver: true, Seed: 11, GOPs: 2}},
		{"interfering-proposed-bound", true, Options{Scheme: Proposed, Seed: 11, GOPs: 1, TrackBound: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := benchNet(t, tc.interfering)
			want, err := Run(net, tc.opts)
			if err != nil {
				t.Fatal(err)
			}

			const replays, churners = 3, 3
			var wg sync.WaitGroup
			got := make([]*Result, replays)
			errs := make([]error, replays)
			for i := 0; i < replays; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], errs[i] = Run(net, tc.opts)
				}(i)
			}
			for i := 0; i < churners; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					opts := tc.opts
					opts.Seed = uint64(100 + i)
					if _, err := Run(net, opts); err != nil {
						t.Errorf("churn run: %v", err)
					}
				}(i)
			}
			wg.Wait()

			for i := 0; i < replays; i++ {
				if errs[i] != nil {
					t.Fatalf("replay %d: %v", i, errs[i])
				}
				if !reflect.DeepEqual(got[i], want) {
					t.Errorf("replay %d diverged from the quiescent run:\n got %+v\nwant %+v", i, got[i], want)
				}
			}
		})
	}
}
