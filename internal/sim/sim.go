// Package sim drives the end-to-end slot simulation of the paper's §V: per
// time slot it evolves primary-user occupancy, senses every licensed channel
// with errors, fuses the results into availability posteriors, makes the
// collision-bounded access decision, runs a resource-allocation scheme, and
// realizes packet losses over block-fading links, accumulating per-GOP video
// quality exactly as the W-recursion of problem (10) prescribes.
package sim

import (
	"errors"
	"fmt"
	"math"

	"femtocr/internal/core"
	"femtocr/internal/netmodel"
	"femtocr/internal/par"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
	"femtocr/internal/spectrum"
	"femtocr/internal/stats"
	"femtocr/internal/trace"
	"femtocr/internal/video"
)

// Scheme selects the resource-allocation scheme under test.
type Scheme int

// The three schemes compared throughout §V.
const (
	// Proposed is the paper's algorithm: the optimum-achieving solver for
	// non-interfering deployments and the greedy channel allocation of
	// Table III on interfering ones.
	Proposed Scheme = iota + 1
	// Heuristic1 is equal time allocation with local channel choice.
	Heuristic1
	// Heuristic2 is multiuser diversity: whole slots to the best users.
	Heuristic2
	// RoundRobin is an extension baseline: plain TDMA rotation with no
	// channel-state information (below both of the paper's heuristics).
	RoundRobin
	// MaxThroughput is an extension baseline at the opposite pole from
	// proportional fairness: maximize the expected quality sum with no
	// balance concern.
	MaxThroughput
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Proposed:
		return "Proposed"
	case Heuristic1:
		return "Heuristic 1"
	case Heuristic2:
		return "Heuristic 2"
	case RoundRobin:
		return "Round robin"
	case MaxThroughput:
		return "Max throughput"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ErrBadOptions is returned for invalid run options.
var ErrBadOptions = errors.New("sim: invalid options")

// Options configures one simulation run.
type Options struct {
	// Seed drives all stochastic processes of the run (channel occupancy,
	// sensing errors, access decisions, fading). Runs with different seeds
	// are the independent replications averaged in the figures.
	Seed uint64
	// GOPs is the number of GOPs to simulate per user. Default 20.
	GOPs int
	// Scheme selects the allocation scheme. Default Proposed.
	Scheme Scheme
	// SensorPolicy assigns user sensors to channels. Default RoundRobin.
	SensorPolicy sensing.AssignmentPolicy
	// TrackBound also tracks the eq. (23) upper-bound quality trajectory
	// (only meaningful for Proposed on interfering deployments).
	TrackBound bool
	// CaptureDualTrace runs the paper's distributed dual algorithm
	// (Table I/II) on the first slot and records its price trajectory
	// (Fig. 4(a)). Ignored for heuristic schemes.
	CaptureDualTrace bool
	// DualIterations caps the traced dual iterations. Default 800.
	DualIterations int
	// UseDualSolver makes Proposed use the distributed subgradient solver
	// for every slot instead of the faster price-equilibrium solver. The
	// two produce near-identical allocations; the default favors speed.
	UseDualSolver bool
	// DisableLazyGreedy forces the greedy allocator to re-evaluate every
	// user's marginal gain on every iteration — the literal Table III loop.
	// The zero value (lazy evaluation on) produces identical allocations
	// with fewer Q evaluations; set this only to cross-check the lazy
	// optimization or to time the unoptimized loop.
	DisableLazyGreedy bool
	// TrackBeliefs replaces the stationary fusion prior with the Bayesian
	// occupancy filter (extension; see internal/belief).
	TrackBeliefs bool
	// EstimateUtilization learns each channel's eta online from the FBS's
	// own sensing reports instead of assuming it known (extension; ignored
	// when TrackBeliefs is set).
	EstimateUtilization bool
	// WarmStart seeds each slot's solve from the previous slot's converged
	// dual state (core.SolverSession): channel occupancy is Markov, so
	// consecutive slots are strongly correlated and the warm seed converges
	// in a fraction of the cold iterations. Only the Proposed scheme's
	// slot-level solves are affected (the greedy channel explorer keeps its
	// own cold solves), and the repaired allocations are identical to the
	// cold path's — the default false is bit-identical to not having the
	// feature at all.
	WarmStart bool
	// SolveStats collects per-slot solver iteration statistics (cold or
	// warm, matching WarmStart) into Result.Warm. Off the allocation-free
	// fast path; costs one histogram per session.
	SolveStats bool
	// Recorder, when non-nil, receives slot-by-slot events for post-hoc
	// analysis (see internal/trace).
	Recorder *trace.Recorder
	// Parallel bundles the worker/shard knobs for RunSharded (see
	// par.Parallelism). Run itself is single-goroutine and ignores it.
	Parallel Parallelism
}

// Parallelism is the unified parallel-execution knob bundle shared with the
// experiment layer; see par.Parallelism.
type Parallelism = par.Parallelism

func (o *Options) withDefaults() Options {
	out := *o
	if out.GOPs == 0 {
		out.GOPs = 20
	}
	if out.Scheme == 0 {
		out.Scheme = Proposed
	}
	if out.SensorPolicy == 0 {
		out.SensorPolicy = sensing.RoundRobin
	}
	if out.DualIterations == 0 {
		out.DualIterations = 800
	}
	return out
}

// Result aggregates one run.
type Result struct {
	// PerUserPSNR is the mean end-of-GOP Y-PSNR of each user, dB.
	PerUserPSNR []float64
	// MeanPSNR averages PerUserPSNR over users.
	MeanPSNR float64
	// BoundPSNR is the mean upper-bound quality (eq. (23) converted to dB),
	// zero unless TrackBound was set.
	BoundPSNR float64
	// PerUserBound is each user's mean upper-bound quality, nil unless
	// TrackBound was set. BoundPSNR is its mean; the sharded engine re-sums
	// it in user order to fold bounds across shards bitwise.
	PerUserBound []float64
	// MinUserPSNR is the worst per-user mean quality — the user experience
	// floor, which proportional fairness is supposed to protect.
	MinUserPSNR float64
	// FairnessIndex is Jain's index over the users' quality gains
	// (PSNR above the base layer): 1 is perfectly even, 1/K fully
	// monopolized. This quantifies the paper's fairness claim for Fig. 3.
	FairnessIndex float64
	// CollisionRate is the worst per-channel conditional primary-user
	// collision rate observed — collisions divided by truly-busy slots, the
	// quantity eq. (6) bounds — which the access rule must keep near or
	// below gamma.
	CollisionRate float64
	// MeanExpectedChannels averages G_t over slots (diagnostic).
	MeanExpectedChannels float64
	// DualTrace is the per-iteration price trajectory of the first slot's
	// distributed solve, when CaptureDualTrace was set.
	DualTrace [][]float64
	// Warm reports the per-slot solver iteration statistics, nil unless
	// SolveStats was set. It is diagnostic metadata: exclude it from
	// determinism comparisons of allocations/quality (which do not depend
	// on it).
	Warm *WarmStartReport `json:",omitempty"`
	// GOPs is the number of completed GOPs per user.
	GOPs int
	// Slots is the number of simulated slots.
	Slots int
}

// Run simulates the network under the chosen scheme and returns the
// aggregated quality metrics.
func Run(net *netmodel.Network, opts Options) (*Result, error) {
	if net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrBadOptions)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.GOPs < 1 {
		return nil, fmt.Errorf("%w: GOPs=%d", ErrBadOptions, opts.GOPs)
	}

	e, err := newEngine(net, opts)
	if err != nil {
		return nil, err
	}
	totalSlots := opts.GOPs * net.T
	for slot := 0; slot < totalSlots; slot++ {
		if err := e.step(slot); err != nil {
			return nil, fmt.Errorf("slot %d: %w", slot, err)
		}
	}
	return e.result(), nil
}

// engine holds the per-run state.
type engine struct {
	net  *netmodel.Network
	opts Options

	front    *Frontend
	progress []*video.Progress
	bound    []*video.Progress

	fadeStream *rng.Stream

	solver      core.Solver
	greedy      *core.GreedyAllocator
	interfering bool

	// Static per-user constants of problem (10).
	r0, r1, ps0, ps1, wmax []float64
	fbsOf                  []int

	// Static channel split for the heuristic schemes on interfering
	// deployments (greedy-coloring frequency plan).
	colorOf   []int
	numColors int

	// Reusable per-slot state: the instance snapshot (instW/instG are its
	// backing arrays), the shallow view handed out by withG, the channel
	// vectors, the static assignment lists, the realized gains, and the
	// allocations written by SolveInto. All are owned by this engine and
	// overwritten every slot; the engine is single-goroutine by design.
	inst       core.Instance
	instView   core.Instance
	instW      []float64
	instG      []float64
	gVec       []float64
	relaxG     []float64
	assigned   [][]int
	gains      []float64
	alloc      *core.Allocation
	relaxAlloc *core.Allocation
	inflate    *core.Allocation
	chanProb   core.ChannelProblem
	intoSolver core.IntoSolver // non-nil when solver supports SolveInto

	// Warm-start plumbing: non-nil only when WarmStart or SolveStats is
	// requested and the scheme's solver supports sessions. The slot solves
	// and the TrackBound relaxation solves carry separate sessions — they
	// are different problem families, and seeding one from the other would
	// thrash both trackers. Sessions are engine-owned and single-goroutine
	// like everything else here; RunSharded gets per-shard sessions for
	// free because every shard builds its own engine.
	warmSolver   core.WarmSolver
	session      *core.SolverSession
	relaxSession *core.SolverSession

	dualTrace [][]float64
	sumG      float64
	slots     int
}

func newEngine(net *netmodel.Network, opts Options) (*engine, error) {
	root := rng.New(opts.Seed)
	front, err := NewFrontend(net, root, opts.SensorPolicy)
	if err != nil {
		return nil, err
	}
	if opts.TrackBeliefs {
		front.EnableBeliefTracking()
	} else if opts.EstimateUtilization {
		if err := front.EnableUtilizationEstimation(); err != nil {
			return nil, err
		}
	}
	e := &engine{
		net:        net,
		opts:       opts,
		front:      front,
		fadeStream: root.Split("fading"),
	}

	k := net.K()
	e.progress = make([]*video.Progress, k)
	e.r0 = make([]float64, k)
	e.r1 = make([]float64, k)
	e.ps0 = make([]float64, k)
	e.ps1 = make([]float64, k)
	e.wmax = make([]float64, k)
	e.fbsOf = make([]int, k)
	for j, u := range net.Users {
		e.progress[j] = video.NewProgress(u.Seq)
		e.r0[j] = u.Seq.RD.Beta * net.Band.B0() / float64(net.T)
		e.r1[j] = u.Seq.RD.Beta * net.Band.B1() / float64(net.T)
		e.ps0[j] = u.MBSLink.SuccessProbability()
		e.ps1[j] = u.FBSLink.SuccessProbability()
		e.wmax[j] = u.Seq.MaxPSNR()
		e.fbsOf[j] = u.FBS
	}
	if opts.TrackBound {
		e.bound = make([]*video.Progress, k)
		for j, u := range net.Users {
			e.bound[j] = video.NewProgress(u.Seq)
		}
	}

	e.interfering = net.Graph.NumEdges() > 0
	switch opts.Scheme {
	case Proposed:
		if opts.UseDualSolver {
			e.solver = core.NewDualSolver()
		} else {
			e.solver = &core.EquilibriumSolver{}
		}
		if e.interfering {
			var gopts []core.GreedyOption
			if !opts.DisableLazyGreedy {
				gopts = append(gopts, core.WithLazyEvaluation())
			}
			e.greedy = core.NewGreedyAllocator(e.solver, gopts...)
		}
	case Heuristic1:
		e.solver = core.Heuristic1{}
	case Heuristic2:
		e.solver = core.Heuristic2{}
	case RoundRobin:
		e.solver = &core.RoundRobin{}
	case MaxThroughput:
		e.solver = core.MaxThroughput{}
	default:
		return nil, fmt.Errorf("%w: unknown scheme %d", ErrBadOptions, int(opts.Scheme))
	}

	// Static frequency plan for schemes without per-slot channel
	// coordination: color the interference graph and let channel m serve
	// the FBSs of color (m mod numColors). Adjacent FBSs never share.
	e.colorOf, e.numColors = net.Graph.GreedyColoring()

	// Preallocate the per-slot buffers once.
	e.instW = make([]float64, k)
	e.instG = make([]float64, net.NumFBS)
	e.inst = core.Instance{
		W: e.instW, R0: e.r0, R1: e.r1, PS0: e.ps0, PS1: e.ps1,
		FBS: e.fbsOf, G: e.instG, WMax: e.wmax,
	}
	e.gVec = make([]float64, net.NumFBS)
	e.relaxG = make([]float64, net.NumFBS)
	e.assigned = make([][]int, net.NumFBS)
	e.gains = make([]float64, k)
	e.alloc = core.NewAllocation(k)
	e.relaxAlloc = core.NewAllocation(k)
	if opts.TrackBound {
		e.inflate = core.NewAllocation(k)
	}
	e.intoSolver, _ = e.solver.(core.IntoSolver)
	if ws, ok := e.solver.(core.WarmSolver); ok && (opts.WarmStart || opts.SolveStats) {
		e.warmSolver = ws
		if opts.WarmStart {
			e.session = core.NewSolverSession()
			e.relaxSession = core.NewSolverSession()
		} else {
			// Stats without warm starts: record the cold baseline through
			// seeding-disabled sessions, same instrumentation, same solves.
			e.session = core.NewColdProbeSession()
			e.relaxSession = core.NewColdProbeSession()
		}
		if opts.SolveStats {
			e.session.EnableStats()
		}
	}
	return e, nil
}

// withG returns the slot instance with a different expected-channel vector,
// on the engine's reusable shallow view. Each use ends before the next: the
// returned pointer must not be kept across withG calls.
func (e *engine) withG(g []float64) *core.Instance {
	e.instView = e.inst
	e.instView.G = g
	return &e.instView
}

// step simulates one time slot.
//
//femtovet:hotpath
func (e *engine) step(slot int) error {
	net := e.net

	// Sensing and access phases (shared front half).
	st, err := e.front.Step(slot)
	if err != nil {
		return err
	}
	truth := st.Truth
	decision := st.Decision
	accessed := st.Accessed
	accessedPA := st.AccessedPA

	// Build the slot's problem instance.
	inst := e.instance()

	// Channel allocation: which FBS may use which accessed channel.
	var alloc *core.Allocation
	var gVec []float64
	var bound float64
	switch {
	case e.opts.Scheme == Proposed && e.interfering:
		e.chanProb = core.ChannelProblem{
			Base:       inst,
			Graph:      net.Graph,
			Channels:   accessed,
			Posteriors: accessedPA,
		}
		res, err := e.greedy.Allocate(&e.chanProb)
		if err != nil {
			return err
		}
		alloc = res.Alloc
		gVec = res.G
		bound = res.UpperBound
		if e.opts.TrackBound {
			// Intersect the eq. (23) bound with the interference-relaxation
			// bound: giving every FBS every accessed channel enlarges the
			// feasible set, so its optimum also caps the true optimum.
			totalPA := 0.0
			for _, pa := range accessedPA {
				totalPA += pa
			}
			relaxG := e.relaxG
			for i := range relaxG {
				relaxG[i] = totalPA
			}
			relaxed := e.withG(relaxG)
			relaxAlloc := e.relaxAlloc
			if e.warmSolver != nil {
				err = e.warmSolver.SolveWarmInto(relaxed, relaxAlloc, e.relaxSession)
			} else if e.intoSolver != nil {
				err = e.intoSolver.SolveInto(relaxed, relaxAlloc)
			} else {
				relaxAlloc, err = e.solver.Solve(relaxed)
			}
			if err != nil {
				return err
			}
			if v := relaxAlloc.Objective(relaxed); v < bound {
				bound = v
			}
		}
		// Transmission realization needs the channel->FBS map.
		gains := e.realize(e.withG(gVec), alloc, res.Assigned, truth)
		e.record(slot, st, alloc, gains)
		if e.opts.TrackBound {
			e.trackBound(e.withG(gVec), alloc, res.Value, bound, res.Assigned, truth)
		}
	default:
		// Non-interfering (or heuristic frequency plan): channel m serves
		// the FBSs its color class allows.
		assigned := e.staticAssignment(accessed)
		gVec = e.gVec
		for i := range gVec {
			gVec[i] = 0
		}
		for i := range assigned {
			for _, ch := range assigned[i] {
				gVec[i] += decision.Channels[ch-1].Posterior
			}
		}
		withG := e.withG(gVec)
		if e.warmSolver != nil {
			alloc = e.alloc
			err = e.warmSolver.SolveWarmInto(withG, alloc, e.session)
		} else if e.intoSolver != nil {
			alloc = e.alloc
			err = e.intoSolver.SolveInto(withG, alloc)
		} else {
			alloc, err = e.solver.Solve(withG)
		}
		if err != nil {
			return err
		}
		gains := e.realize(withG, alloc, assigned, truth)
		e.record(slot, st, alloc, gains)
	}
	e.sumG += decision.ExpectedAvailable()
	e.slots++

	// Dual-trace capture on the very first slot (Fig. 4(a)).
	if e.opts.CaptureDualTrace && slot == 0 && e.opts.Scheme == Proposed {
		if err := e.captureDualTrace(gVec); err != nil {
			return err
		}
	}

	// GOP boundary: record final PSNR and reset, per the delivery deadline.
	if (slot+1)%net.T == 0 {
		for _, p := range e.progress {
			p.EndGOP()
		}
		for _, p := range e.bound {
			p.EndGOP()
		}
	}
	return nil
}

// captureDualTrace runs the paper's literal constant-step subgradient with a
// small step on the first slot's problem, which exhibits the long Fig. 4(a)
// trajectory (the default diminishing schedule converges within tens of
// iterations), and records the price trajectory.
//
//femtovet:coldpath -- first-slot-only diagnostic; builds a fresh traced solver and keeps the escaping price trajectory
func (e *engine) captureDualTrace(gVec []float64) error {
	tracer := core.NewDualSolver(
		core.WithTrace(),
		core.WithMaxIter(e.opts.DualIterations),
		core.WithPhi(-1), // never terminate early: full-horizon trace
		core.WithConstantStep(),
		core.WithStepScale(0.01),
	)
	g := gVec
	if g == nil {
		g = make([]float64, e.net.NumFBS)
	}
	_, report, err := tracer.SolveDetailed(e.withG(g))
	if err != nil {
		return err
	}
	e.dualTrace = report.Trace
	return nil
}

// record forwards the slot's events to the configured trace recorder.
func (e *engine) record(slot int, st *SlotState, alloc *core.Allocation, gains []float64) {
	rec := e.opts.Recorder
	if rec == nil {
		return
	}
	collisions := 0
	for _, ch := range st.Accessed {
		if !st.Truth.Idle(ch) {
			collisions++
		}
	}
	// Recording errors cannot occur for engine-generated events; ignore the
	// returns to keep the hot path simple.
	_ = rec.RecordSlot(trace.SlotEvent{
		Slot:         slot,
		IdleChannels: st.Truth.NumIdle(),
		Accessed:     len(st.Accessed),
		ExpectedG:    st.Decision.ExpectedAvailable(),
		Collisions:   collisions,
	})
	gopDone := (slot+1)%e.net.T == 0
	for j := range gains {
		share := alloc.Rho1[j]
		if alloc.MBS[j] {
			share = alloc.Rho0[j]
		}
		_ = rec.RecordUser(trace.UserEvent{
			Slot:    slot,
			User:    j,
			OnMBS:   alloc.MBS[j],
			Share:   share,
			GainDB:  gains[j],
			PSNR:    e.progress[j].PSNR(),
			GOPDone: gopDone,
		})
	}
}

// staticAssignment maps accessed channels to FBSs without per-slot
// coordination. With no interference every FBS reuses every channel; with
// interference, channel m serves the color class (m mod numColors) of the
// greedy-coloring frequency plan.
func (e *engine) staticAssignment(accessed []int) [][]int {
	n := e.net.NumFBS
	assigned := e.assigned
	for i := range assigned {
		assigned[i] = assigned[i][:0]
	}
	if !e.interfering {
		for i := 0; i < n; i++ {
			assigned[i] = append(assigned[i], accessed...)
		}
		return assigned
	}
	for idx, ch := range accessed {
		class := idx % e.numColors
		for i := 0; i < n; i++ {
			if e.colorOf[i] == class {
				assigned[i] = append(assigned[i], ch)
			}
		}
	}
	return assigned
}

// instance refreshes the slot's user problem on the engine's reusable
// snapshot: only W changes between slots; G is the zero vector until a
// channel allocation assigns one via withG.
func (e *engine) instance() *core.Instance {
	for j := range e.instW {
		e.instW[j] = e.progress[j].PSNR()
	}
	for i := range e.instG {
		e.instG[i] = 0
	}
	return &e.inst
}

// realize draws the slot's packet-loss outcomes and credits delivered video
// quality: an MBS user succeeds iff its macro link decodes; an FBS user's
// delivered rate scales with the channels, among those assigned to its FBS,
// that are truly idle (transmissions on busy channels collide and are
// lost). It returns the realized per-user quality increments.
func (e *engine) realize(in *core.Instance, alloc *core.Allocation, assigned [][]int, truth spectrum.Occupancy) []float64 {
	gains := e.gains
	for j := range gains {
		gains[j] = 0
	}
	for j := 0; j < in.K(); j++ {
		if alloc.MBS[j] {
			if alloc.Rho0[j] > 0 && !e.net.Users[j].MBSLink.Lost(e.fadeStream) {
				gains[j] = alloc.Rho0[j] * e.r0[j]
			}
		} else if alloc.Rho1[j] > 0 {
			idle := 0
			for _, ch := range assigned[in.FBS[j]-1] {
				if truth.Idle(ch) {
					idle++
				}
			}
			if idle > 0 && !e.net.Users[j].FBSLink.Lost(e.fadeStream) {
				gains[j] = alloc.Rho1[j] * float64(idle) * e.r1[j]
			}
		}
		e.progress[j].AddPSNR(gains[j])
	}
	return gains
}

// trackBound advances the upper-bound quality trajectory: the eq. (23)
// objective bound is converted to per-user quality by inflating every
// user's expected gain by the common factor theta >= 1 that makes the
// objective meet the bound, then applying the same realization discipline.
func (e *engine) trackBound(in *core.Instance, alloc *core.Allocation, value, upper float64, assigned [][]int, truth spectrum.Occupancy) {
	theta := gainInflation(in, alloc, value, upper, e.inflate)
	for j := 0; j < in.K(); j++ {
		gain := 0.0
		if alloc.MBS[j] {
			if alloc.Rho0[j] > 0 && !e.net.Users[j].MBSLink.Lost(e.fadeStream) {
				gain = alloc.Rho0[j] * e.r0[j]
			}
		} else if alloc.Rho1[j] > 0 {
			idle := 0
			for _, ch := range assigned[in.FBS[j]-1] {
				if truth.Idle(ch) {
					idle++
				}
			}
			if idle > 0 && !e.net.Users[j].FBSLink.Lost(e.fadeStream) {
				gain = alloc.Rho1[j] * float64(idle) * e.r1[j]
			}
		}
		e.bound[j].AddPSNR(theta * gain)
	}
}

// gainInflation finds theta >= 1 such that inflating every user's allocated
// quality increment by theta lifts the slot objective from value to upper.
// scratch, when non-nil, is a k-sized allocation reused across the ~100
// bisection evaluations; every entry is overwritten before being read.
func gainInflation(in *core.Instance, alloc *core.Allocation, value, upper float64, scratch *core.Allocation) float64 {
	if upper <= value {
		return 1
	}
	if scratch == nil {
		scratch = core.NewAllocation(in.K())
	}
	obj := func(theta float64) float64 {
		cp := scratch
		copy(cp.MBS, alloc.MBS)
		for j := range cp.Rho0 {
			cp.Rho0[j] = alloc.Rho0[j] * theta
			cp.Rho1[j] = alloc.Rho1[j] * theta
		}
		return cp.Objective(in)
	}
	lo, hi := 1.0, 2.0
	for i := 0; i < 40 && obj(hi) < upper; i++ {
		hi *= 2
		if hi > 1e6 {
			break
		}
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if obj(mid) < upper {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// result finalizes the run metrics.
func (e *engine) result() *Result {
	k := e.net.K()
	res := &Result{
		PerUserPSNR: make([]float64, k),
		GOPs:        e.progress[0].CompletedGOPs(),
		Slots:       e.slots,
		DualTrace:   e.dualTrace,
		Warm:        e.warmReport(),
	}
	sum := 0.0
	gains := make([]float64, k)
	res.MinUserPSNR = math.Inf(1)
	for j, p := range e.progress {
		res.PerUserPSNR[j] = p.MeanPSNR()
		sum += p.MeanPSNR()
		gains[j] = p.MeanPSNR() - e.net.Users[j].Seq.RD.Alpha
		if p.MeanPSNR() < res.MinUserPSNR {
			res.MinUserPSNR = p.MeanPSNR()
		}
	}
	res.MeanPSNR = sum / float64(k)
	res.FairnessIndex = stats.JainIndex(gains)
	if e.bound != nil {
		res.PerUserBound = make([]float64, k)
		bsum := 0.0
		for j, p := range e.bound {
			res.PerUserBound[j] = p.MeanPSNR()
			bsum += p.MeanPSNR()
		}
		res.BoundPSNR = bsum / float64(k)
	}
	res.CollisionRate = e.front.CollisionRate()
	if e.slots > 0 {
		res.MeanExpectedChannels = e.sumG / float64(e.slots)
	}
	return res
}
