package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/video"
)

// compareShardedToRun checks every quality field the two engines share for
// exact (bitwise) equality.
func compareShardedToRun(t *testing.T, label string, sh *ShardedResult, ref *Result) {
	t.Helper()
	type pair struct {
		name      string
		got, want float64
	}
	for _, p := range []pair{
		{"MeanPSNR", sh.MeanPSNR, ref.MeanPSNR},
		{"BoundPSNR", sh.BoundPSNR, ref.BoundPSNR},
		{"MinUserPSNR", sh.MinUserPSNR, ref.MinUserPSNR},
		{"FairnessIndex", sh.FairnessIndex, ref.FairnessIndex},
		{"CollisionRate", sh.CollisionRate, ref.CollisionRate},
		{"MeanExpectedChannels", sh.MeanExpectedChannels, ref.MeanExpectedChannels},
	} {
		if p.got != p.want {
			t.Errorf("%s: %s = %v, want %v (bitwise)", label, p.name, p.got, p.want)
		}
	}
	if sh.GOPs != ref.GOPs || sh.Slots != ref.Slots {
		t.Errorf("%s: horizon %d GOPs/%d slots, want %d/%d", label, sh.GOPs, sh.Slots, ref.GOPs, ref.Slots)
	}
}

// TestShardedMatchesUnshardedPaperScale is the golden byte-identical check
// of the redesign: on the paper's connected topologies the sharded engine
// must reproduce the unsharded engine exactly, for every Shards and Workers
// setting (run under -race by the tier-1 gate).
func TestShardedMatchesUnshardedPaperScale(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	builds := []struct {
		name       string
		build      func() (*netmodel.Network, error)
		trackBound bool
	}{
		{"single", func() (*netmodel.Network, error) { return netmodel.PaperSingleFBS(cfg) }, false},
		{"interfering", func() (*netmodel.Network, error) { return netmodel.PaperInterfering(cfg) }, true},
	}
	for _, b := range builds {
		net, err := b.build()
		if err != nil {
			t.Fatal(err)
		}
		base := Options{Seed: 1000, GOPs: 20, Scheme: Proposed, TrackBound: b.trackBound}
		ref, err := Run(net, base)
		if err != nil {
			t.Fatal(err)
		}
		// The paper topologies are connected: N-components = 1, so the
		// required shard grid {1, 2, N-components} exercises both the exact
		// setting and the clamp.
		for _, shardsOpt := range []int{1, 2} {
			for _, workers := range []int{1, 4} {
				opts := base
				opts.Parallel = Parallelism{Workers: workers, Shards: shardsOpt}
				sh, err := RunSharded(net, opts)
				if err != nil {
					t.Fatal(err)
				}
				label := b.name
				if sh.Shards != 1 || sh.Groups != 1 {
					t.Fatalf("%s: %d shards in %d groups for a connected network", label, sh.Shards, sh.Groups)
				}
				compareShardedToRun(t, label, sh, ref)
				if !reflect.DeepEqual(sh.PerShard[0].MeanPSNR, ref.MeanPSNR) {
					t.Errorf("%s: shard summary mean %v, want %v", label, sh.PerShard[0].MeanPSNR, ref.MeanPSNR)
				}
				if sh.PerShard[0].Seed != base.Seed {
					t.Errorf("%s: shard 0 seed %d, want the base seed %d", label, sh.PerShard[0].Seed, base.Seed)
				}
			}
		}
	}
}

// TestShardedInvariantAcrossShardsAndWorkers pins the determinism contract
// on a multi-component network: shards ∈ {1, 2, N-components} and any
// worker count must fold to bitwise-identical results, and each shard must
// equal an independent unsharded run of its sub-network under its derived
// seed.
func TestShardedInvariantAcrossShardsAndWorkers(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	trio := video.PaperTrio()
	net, err := netmodel.NonInterfering(cfg, [][]video.Sequence{trio[:], trio[:], trio[:]})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 1000, GOPs: 20, Scheme: Proposed}

	var ref *ShardedResult
	for _, shardsOpt := range []int{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			opts := base
			opts.Parallel = Parallelism{Workers: workers, Shards: shardsOpt}
			got, err := RunSharded(net, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Shards != 3 {
				t.Fatalf("shards=%d, want 3 components", got.Shards)
			}
			if got.Groups != shardsOpt {
				t.Fatalf("groups=%d, want %d", got.Groups, shardsOpt)
			}
			got.Timing = nil // the only schedule-dependent field
			got.Groups = 0
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("shards=%d workers=%d: result differs from the first fold\n got: %+v\nwant: %+v",
					shardsOpt, workers, got, ref)
			}
		}
	}

	// Every shard summary must match a standalone unsharded run of the
	// shard's sub-network at the derived seed ("byte-identical to the
	// unsharded engine wherever both can run").
	shards, err := net.Partition()
	if err != nil {
		t.Fatal(err)
	}
	for c := range shards {
		sub, err := net.Subnetwork(&shards[c])
		if err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.Seed = ShardSeed(base.Seed, c)
		res, err := Run(sub, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := ref.PerShard[c]
		if s.MeanPSNR != res.MeanPSNR || s.MinUserPSNR != res.MinUserPSNR ||
			s.FairnessIndex != res.FairnessIndex || s.CollisionRate != res.CollisionRate ||
			s.MeanExpectedChannels != res.MeanExpectedChannels {
			t.Fatalf("shard %d summary diverges from its standalone run:\n summary: %+v\n run: %+v", c, s, res)
		}
		if s.Users != len(res.PerUserPSNR) || s.FBSs != sub.NumFBS {
			t.Fatalf("shard %d sizes: users=%d fbss=%d", c, s.Users, s.FBSs)
		}
	}
	if ref.PSNR.N != net.K() {
		t.Fatalf("streamed PSNR distribution over %d users, want %d", ref.PSNR.N, net.K())
	}
}

func TestShardSeed(t *testing.T) {
	if ShardSeed(42, 0) != 42 {
		t.Fatal("shard 0 must keep the base seed (single-component bitwise reduction)")
	}
	seen := map[uint64]bool{}
	for c := 0; c < 64; c++ {
		s := ShardSeed(1000, c)
		if seen[s] {
			t.Fatalf("duplicate shard seed at component %d", c)
		}
		seen[s] = true
	}
}

func TestRunShardedRejectsDiagnostics(t *testing.T) {
	net, err := netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSharded(net, Options{Seed: 1, GOPs: 1, CaptureDualTrace: true}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("CaptureDualTrace: err=%v, want ErrBadOptions", err)
	}
	if _, err := RunSharded(nil, Options{Seed: 1, GOPs: 1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("nil network: err=%v, want ErrBadOptions", err)
	}
}

// TestRunShardedSurfacesShardError mirrors parallel_test.go's failure
// injection through the runShard seam: a failing shard must surface its
// component index and FBS list, for any worker count.
func TestRunShardedSurfacesShardError(t *testing.T) {
	net, err := netmodel.NonInterfering(netmodel.DefaultConfig(),
		func() [][]video.Sequence {
			trio := video.PaperTrio()
			return [][]video.Sequence{trio[:], trio[:], trio[:]}
		}())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	orig := runShard
	defer func() { runShard = orig }()
	runShard = func(n *netmodel.Network, o Options) (*Result, error) {
		if o.Seed == ShardSeed(7, 1) {
			return nil, boom
		}
		return orig(n, o)
	}
	for _, workers := range []int{1, 4} {
		_, err := RunSharded(net, Options{Seed: 7, GOPs: 1, Parallel: Parallelism{Workers: workers}})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "FBSs [2]") {
			t.Fatalf("workers=%d: error %q does not name shard 1 / FBS 2", workers, err)
		}
	}
}

// TestRunShardedRecoversShardPanic is the shard-fold panic-recovery
// regression: a panicking shard engine must come back as a "task N
// panicked" error through par.RunGrid's recovery, not crash the run.
func TestRunShardedRecoversShardPanic(t *testing.T) {
	net, err := netmodel.NonInterfering(netmodel.DefaultConfig(),
		func() [][]video.Sequence {
			trio := video.PaperTrio()
			return [][]video.Sequence{trio[:], trio[:], trio[:]}
		}())
	if err != nil {
		t.Fatal(err)
	}
	orig := runShard
	defer func() { runShard = orig }()
	runShard = func(n *netmodel.Network, o Options) (*Result, error) {
		if o.Seed == ShardSeed(7, 2) {
			panic("shard engine blew up")
		}
		return orig(n, o)
	}
	for _, workers := range []int{1, 4} {
		_, err := RunSharded(net, Options{Seed: 7, GOPs: 1, Parallel: Parallelism{Workers: workers}})
		if err == nil {
			t.Fatalf("workers=%d: want recovered panic error", workers)
		}
		// With one task per component, the panicking component is task 2.
		if !strings.Contains(err.Error(), "task 2 panicked") ||
			!strings.Contains(err.Error(), "shard engine blew up") {
			t.Fatalf("workers=%d: error %q does not carry the recovered panic", workers, err)
		}
	}
}
