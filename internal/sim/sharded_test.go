package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/video"
)

// compareShardedToRun checks every quality field the two engines share for
// exact (bitwise) equality.
func compareShardedToRun(t *testing.T, label string, sh *ShardedResult, ref *Result) {
	t.Helper()
	type pair struct {
		name      string
		got, want float64
	}
	for _, p := range []pair{
		{"MeanPSNR", sh.MeanPSNR, ref.MeanPSNR},
		{"BoundPSNR", sh.BoundPSNR, ref.BoundPSNR},
		{"MinUserPSNR", sh.MinUserPSNR, ref.MinUserPSNR},
		{"FairnessIndex", sh.FairnessIndex, ref.FairnessIndex},
		{"CollisionRate", sh.CollisionRate, ref.CollisionRate},
		{"MeanExpectedChannels", sh.MeanExpectedChannels, ref.MeanExpectedChannels},
	} {
		if p.got != p.want {
			t.Errorf("%s: %s = %v, want %v (bitwise)", label, p.name, p.got, p.want)
		}
	}
	if sh.GOPs != ref.GOPs || sh.Slots != ref.Slots {
		t.Errorf("%s: horizon %d GOPs/%d slots, want %d/%d", label, sh.GOPs, sh.Slots, ref.GOPs, ref.Slots)
	}
}

// TestShardedMatchesUnshardedPaperScale is the golden byte-identical check
// of the redesign: on the paper's connected topologies the sharded engine
// must reproduce the unsharded engine exactly, for every Shards and Workers
// setting (run under -race by the tier-1 gate).
func TestShardedMatchesUnshardedPaperScale(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	builds := []struct {
		name       string
		build      func() (*netmodel.Network, error)
		trackBound bool
	}{
		{"single", func() (*netmodel.Network, error) { return netmodel.PaperSingleFBS(cfg) }, false},
		{"interfering", func() (*netmodel.Network, error) { return netmodel.PaperInterfering(cfg) }, true},
	}
	for _, b := range builds {
		net, err := b.build()
		if err != nil {
			t.Fatal(err)
		}
		base := Options{Seed: 1000, GOPs: 20, Scheme: Proposed, TrackBound: b.trackBound}
		ref, err := Run(net, base)
		if err != nil {
			t.Fatal(err)
		}
		// The paper topologies are connected: N-components = 1, so the
		// required shard grid {1, 2, N-components} exercises both the exact
		// setting and the clamp.
		for _, shardsOpt := range []int{1, 2} {
			for _, workers := range []int{1, 4} {
				opts := base
				opts.Parallel = Parallelism{Workers: workers, Shards: shardsOpt}
				sh, err := RunSharded(net, opts)
				if err != nil {
					t.Fatal(err)
				}
				label := b.name
				if sh.Shards != 1 || sh.Groups != 1 {
					t.Fatalf("%s: %d shards in %d groups for a connected network", label, sh.Shards, sh.Groups)
				}
				compareShardedToRun(t, label, sh, ref)
				if !reflect.DeepEqual(sh.PerShard[0].MeanPSNR, ref.MeanPSNR) {
					t.Errorf("%s: shard summary mean %v, want %v", label, sh.PerShard[0].MeanPSNR, ref.MeanPSNR)
				}
				if sh.PerShard[0].Seed != base.Seed {
					t.Errorf("%s: shard 0 seed %d, want the base seed %d", label, sh.PerShard[0].Seed, base.Seed)
				}
			}
		}
	}
}

// TestShardedInvariantAcrossShardsAndWorkers pins the determinism contract
// on a multi-component network: shards ∈ {1, 2, N-components} and any
// worker count must fold to bitwise-identical results, and each shard must
// equal an independent unsharded run of its sub-network under its derived
// seed.
func TestShardedInvariantAcrossShardsAndWorkers(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	trio := video.PaperTrio()
	net, err := netmodel.NonInterfering(cfg, [][]video.Sequence{trio[:], trio[:], trio[:]})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 1000, GOPs: 20, Scheme: Proposed}

	var ref *ShardedResult
	for _, shardsOpt := range []int{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			opts := base
			opts.Parallel = Parallelism{Workers: workers, Shards: shardsOpt}
			got, err := RunSharded(net, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Shards != 3 {
				t.Fatalf("shards=%d, want 3 components", got.Shards)
			}
			if got.Groups != shardsOpt {
				t.Fatalf("groups=%d, want %d", got.Groups, shardsOpt)
			}
			got.Timing = nil // the only schedule-dependent field
			got.Groups = 0
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("shards=%d workers=%d: result differs from the first fold\n got: %+v\nwant: %+v",
					shardsOpt, workers, got, ref)
			}
		}
	}

	// Every shard summary must match a standalone unsharded run of the
	// shard's sub-network at the derived seed ("byte-identical to the
	// unsharded engine wherever both can run").
	shards, err := net.Partition()
	if err != nil {
		t.Fatal(err)
	}
	for c := range shards {
		sub, err := net.Subnetwork(&shards[c])
		if err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.Seed = ShardSeed(base.Seed, c)
		res, err := Run(sub, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := ref.PerShard[c]
		if s.MeanPSNR != res.MeanPSNR || s.MinUserPSNR != res.MinUserPSNR ||
			s.FairnessIndex != res.FairnessIndex || s.CollisionRate != res.CollisionRate ||
			s.MeanExpectedChannels != res.MeanExpectedChannels {
			t.Fatalf("shard %d summary diverges from its standalone run:\n summary: %+v\n run: %+v", c, s, res)
		}
		if s.Users != len(res.PerUserPSNR) || s.FBSs != sub.NumFBS {
			t.Fatalf("shard %d sizes: users=%d fbss=%d", c, s.Users, s.FBSs)
		}
	}
	if ref.PSNR.N != net.K() {
		t.Fatalf("streamed PSNR distribution over %d users, want %d", ref.PSNR.N, net.K())
	}
}

// equalCountBounds is the grouping rule shardBounds replaced, kept here as
// the regression reference: contiguous ranges balanced by component count,
// blind to how many users each component holds.
func equalCountBounds(n, groups int) []int {
	bounds := make([]int, groups+1)
	for g := 0; g <= groups; g++ {
		bounds[g] = g * n / groups
	}
	return bounds
}

// maxRangeWeight returns the heaviest contiguous range's total weight under
// a grouping — the critical path of that grouping for the given per-shard
// costs.
func maxRangeWeight(weights []int64, bounds []int) int64 {
	var worst int64
	for g := 0; g+1 < len(bounds); g++ {
		var w int64
		for c := bounds[g]; c < bounds[g+1]; c++ {
			w += weights[c]
		}
		if w > worst {
			worst = w
		}
	}
	return worst
}

// TestShardBoundsBalanceUserWeight pins the shard-imbalance fix: grouping
// must weight contiguous component ranges by user count, not component
// count. On a skewed population the heaviest task's user load must never
// exceed the equal-count grouping's, and on the canonical metro skew (one
// dense downtown component among light suburbs) it must strictly improve.
// Structural invariants: bounds strictly increase (every task nonempty,
// possible since groups <= components) and cover every component exactly.
func TestShardBoundsBalanceUserWeight(t *testing.T) {
	mkShards := func(counts []int) []netmodel.Shard {
		shards := make([]netmodel.Shard, len(counts))
		for c, k := range counts {
			shards[c] = netmodel.Shard{Component: c, Users: make([]int, k)}
		}
		return shards
	}
	weightsOf := func(counts []int) []int64 {
		w := make([]int64, len(counts))
		for i, k := range counts {
			w[i] = int64(k)
		}
		return w
	}
	populations := [][]int{
		{9, 1, 1, 1, 1},          // dense downtown, light suburbs
		{1, 1, 1, 9, 1, 1, 1, 8}, // heavy components mid- and tail-range
		{3, 3, 3, 3, 3, 3},       // uniform: weighted must not do worse
		{1, 30, 1},               // one giant component dominates everything
		{5},                      // single component
	}
	for _, counts := range populations {
		shards := mkShards(counts)
		weights := weightsOf(counts)
		for groups := 1; groups <= len(counts); groups++ {
			bounds := shardBounds(shards, groups)
			if len(bounds) != groups+1 || bounds[0] != 0 || bounds[groups] != len(counts) {
				t.Fatalf("counts=%v groups=%d: bounds %v do not cover [0,%d)", counts, groups, bounds, len(counts))
			}
			for g := 0; g < groups; g++ {
				if bounds[g+1] <= bounds[g] {
					t.Fatalf("counts=%v groups=%d: empty task %d in bounds %v", counts, groups, g, bounds)
				}
			}
			got := maxRangeWeight(weights, bounds)
			ref := maxRangeWeight(weights, equalCountBounds(len(counts), groups))
			if got > ref {
				t.Errorf("counts=%v groups=%d: weighted max task load %d exceeds equal-count %d (bounds %v)",
					counts, groups, got, ref, bounds)
			}
		}
	}
	// The canonical skew must strictly improve: equal-count at 2 groups
	// packs the 9-user component with a suburb (10 vs 3); weighted isolates
	// it (9 vs 4).
	skew := []int{9, 1, 1, 1, 1}
	got := maxRangeWeight(weightsOf(skew), shardBounds(mkShards(skew), 2))
	ref := maxRangeWeight(weightsOf(skew), equalCountBounds(len(skew), 2))
	if got >= ref {
		t.Fatalf("skewed grid: weighted max task load %d, want strictly below equal-count %d", got, ref)
	}
}

// TestShardedTimingImprovedBySkewAwareGrouping runs a genuinely skewed
// non-interfering network — one FBS streaming nine videos beside four
// single-video FBSs — and checks, from the measured per-shard times, that
// the grouping's critical path (the max per-task share ShardTiming reports)
// is no worse than the equal-count grouping would have produced on the very
// same measurements. The quality fold must stay bitwise-identical to the
// one-group run, re-proving grouping only affects scheduling.
func TestShardedTimingImprovedBySkewAwareGrouping(t *testing.T) {
	trio := video.PaperTrio()
	nine := make([]video.Sequence, 0, 9)
	for i := 0; i < 3; i++ {
		nine = append(nine, trio[:]...)
	}
	groupsOfVideos := [][]video.Sequence{nine, trio[:1], trio[1:2], trio[2:3], trio[:1]}
	net, err := netmodel.NonInterfering(netmodel.DefaultConfig(), groupsOfVideos)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 4000, GOPs: 6, Scheme: Proposed, Parallel: Parallelism{Workers: 1, Shards: 2}}
	got, err := RunSharded(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 5 || got.Groups != 2 {
		t.Fatalf("shards=%d groups=%d, want 5 components in 2 groups", got.Shards, got.Groups)
	}
	if got.Timing == nil || len(got.Timing.TaskNS) != 2 || len(got.Timing.ShardNS) != 5 {
		t.Fatalf("timing = %+v, want 2 task and 5 shard entries", got.Timing)
	}
	// Recompute both groupings' critical paths from the same measured
	// per-shard times: the dense component costs far more than the four
	// light ones combined, so isolating it must not lengthen the max task.
	shards, err := net.Partition()
	if err != nil {
		t.Fatal(err)
	}
	weighted := maxRangeWeight(got.Timing.ShardNS, shardBounds(shards, 2))
	equal := maxRangeWeight(got.Timing.ShardNS, equalCountBounds(5, 2))
	if weighted > equal {
		t.Errorf("weighted grouping critical path %dns exceeds equal-count %dns (shardNS %v)",
			weighted, equal, got.Timing.ShardNS)
	}
	// Grouping must not touch the folded quality results.
	ref, err := RunSharded(net, Options{Seed: 4000, GOPs: 6, Scheme: Proposed, Parallel: Parallelism{Workers: 1, Shards: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got.Timing, ref.Timing = nil, nil
	got.Groups, ref.Groups = 0, 0
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("grouping changed the folded result:\n got: %+v\nwant: %+v", got, ref)
	}
}

func TestShardSeed(t *testing.T) {
	if ShardSeed(42, 0) != 42 {
		t.Fatal("shard 0 must keep the base seed (single-component bitwise reduction)")
	}
	seen := map[uint64]bool{}
	for c := 0; c < 64; c++ {
		s := ShardSeed(1000, c)
		if seen[s] {
			t.Fatalf("duplicate shard seed at component %d", c)
		}
		seen[s] = true
	}
}

func TestRunShardedRejectsDiagnostics(t *testing.T) {
	net, err := netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSharded(net, Options{Seed: 1, GOPs: 1, CaptureDualTrace: true}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("CaptureDualTrace: err=%v, want ErrBadOptions", err)
	}
	if _, err := RunSharded(nil, Options{Seed: 1, GOPs: 1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("nil network: err=%v, want ErrBadOptions", err)
	}
}

// TestRunShardedSurfacesShardError mirrors parallel_test.go's failure
// injection through the runShard seam: a failing shard must surface its
// component index and FBS list, for any worker count.
func TestRunShardedSurfacesShardError(t *testing.T) {
	net, err := netmodel.NonInterfering(netmodel.DefaultConfig(),
		func() [][]video.Sequence {
			trio := video.PaperTrio()
			return [][]video.Sequence{trio[:], trio[:], trio[:]}
		}())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	orig := runShard
	defer func() { runShard = orig }()
	runShard = func(n *netmodel.Network, o Options) (*Result, error) {
		if o.Seed == ShardSeed(7, 1) {
			return nil, boom
		}
		return orig(n, o)
	}
	for _, workers := range []int{1, 4} {
		_, err := RunSharded(net, Options{Seed: 7, GOPs: 1, Parallel: Parallelism{Workers: workers}})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "FBSs [2]") {
			t.Fatalf("workers=%d: error %q does not name shard 1 / FBS 2", workers, err)
		}
	}
}

// TestRunShardedRecoversShardPanic is the shard-fold panic-recovery
// regression: a panicking shard engine must come back as a "task N
// panicked" error through par.RunGrid's recovery, not crash the run.
func TestRunShardedRecoversShardPanic(t *testing.T) {
	net, err := netmodel.NonInterfering(netmodel.DefaultConfig(),
		func() [][]video.Sequence {
			trio := video.PaperTrio()
			return [][]video.Sequence{trio[:], trio[:], trio[:]}
		}())
	if err != nil {
		t.Fatal(err)
	}
	orig := runShard
	defer func() { runShard = orig }()
	runShard = func(n *netmodel.Network, o Options) (*Result, error) {
		if o.Seed == ShardSeed(7, 2) {
			panic("shard engine blew up")
		}
		return orig(n, o)
	}
	for _, workers := range []int{1, 4} {
		_, err := RunSharded(net, Options{Seed: 7, GOPs: 1, Parallel: Parallelism{Workers: workers}})
		if err == nil {
			t.Fatalf("workers=%d: want recovered panic error", workers)
		}
		// With one task per component, the panicking component is task 2.
		if !strings.Contains(err.Error(), "task 2 panicked") ||
			!strings.Contains(err.Error(), "shard engine blew up") {
			t.Fatalf("workers=%d: error %q does not carry the recovered panic", workers, err)
		}
	}
}
