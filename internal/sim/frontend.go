package sim

import (
	"femtocr/internal/access"
	"femtocr/internal/belief"
	"femtocr/internal/netmodel"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
	"femtocr/internal/spectrum"
)

// Frontend bundles the physical- and MAC-layer front half of one slot —
// primary-user occupancy, spectrum sensing, posterior fusion, and the
// collision-bounded access decision — shared by the rate-based engine here
// and the packet-level engine in internal/packetsim.
type Frontend struct {
	net     *netmodel.Network
	policy  access.Policy
	tracker *access.CollisionTracker

	specSim      *spectrum.Simulator
	senseStream  *rng.Stream
	accessStream *rng.Stream
	assignStream *rng.Stream
	sensorPolicy sensing.AssignmentPolicy
	beliefs      *belief.Tracker
	estimators   []*sensing.UtilizationEstimator

	// Per-slot scratch, sized once at construction so the steady-state Step
	// is allocation-free. The SlotState handed out aliases these buffers and
	// is valid only until the next Step.
	priors     []float64       //femtovet:index channel
	posteriors []float64       //femtovet:index channel
	fusers     []sensing.Fuser //femtovet:index channel
	assignment []int
	busy       []float64 //femtovet:index channel
	uncOrder   []int     //femtovet:index channel
	accessed   []int
	accessedPA []float64
	decision   access.SlotDecision
	state      SlotState
}

// NewFrontend builds the front half from a validated network and the run's
// root stream. sensorPolicy zero defaults to round-robin.
func NewFrontend(net *netmodel.Network, root *rng.Stream, sensorPolicy sensing.AssignmentPolicy) (*Frontend, error) {
	pol, err := access.NewPolicy(net.Gamma)
	if err != nil {
		return nil, err
	}
	if sensorPolicy == 0 {
		sensorPolicy = sensing.RoundRobin
	}
	m := net.Band.M()
	return &Frontend{
		net:          net,
		policy:       pol,
		tracker:      access.NewCollisionTracker(m),
		specSim:      spectrum.NewSimulator(net.Band, root.Split("occupancy")),
		senseStream:  root.Split("sensing"),
		accessStream: root.Split("access"),
		assignStream: root.Split("assignment"),
		sensorPolicy: sensorPolicy,
		priors:       make([]float64, m),
		posteriors:   make([]float64, m),
		fusers:       make([]sensing.Fuser, m),
		assignment:   make([]int, net.K()),
		busy:         make([]float64, m),
		uncOrder:     make([]int, m),
		accessed:     make([]int, 0, m),
		accessedPA:   make([]float64, 0, m),
	}, nil
}

// EnableBeliefTracking switches the fusion prior from the per-slot
// stationary utilization (the paper's eq. (2)) to a Bayesian filter that
// carries the previous slot's posterior through the Markov kernel. Call
// before the first Step.
func (f *Frontend) EnableBeliefTracking() {
	f.beliefs = belief.NewTracker(f.net.Band)
}

// EnableUtilizationEstimation makes the frontend learn each channel's
// utilization online from its own noisy sensing reports (bias-corrected
// method of moments) instead of assuming eta is known — the realistic
// deployment where the primary network publishes nothing. Before enough
// observations accumulate the prior falls back to the uninformative 1/2.
// Ignored when belief tracking is enabled (the filter subsumes it).
func (f *Frontend) EnableUtilizationEstimation() error {
	f.estimators = make([]*sensing.UtilizationEstimator, f.net.Band.M())
	for ch := range f.estimators {
		est, err := sensing.NewUtilizationEstimator(f.net.Detector)
		if err != nil {
			return err
		}
		f.estimators[ch] = est
	}
	return nil
}

// SlotState is the front half's output for one slot. Instances returned by
// Step alias the frontend's reusable buffers: consume them within the slot,
// before the next Step overwrites them.
type SlotState struct {
	// Truth is the realized occupancy of the licensed channels.
	Truth spectrum.Occupancy
	// Decision is the per-channel access outcome.
	Decision access.SlotDecision
	// Accessed is A(t), the accessed channel ids (1-based).
	Accessed []int
	// AccessedPA holds the availability posterior of each accessed channel,
	// parallel to Accessed.
	AccessedPA []float64
}

// Step advances occupancy one slot, senses every channel (all FBS antennas
// plus one channel per user), fuses the results, and draws the access
// decision. The returned SlotState and every slice it holds alias the
// frontend's reusable buffers and are valid only until the next Step.
//
//femtovet:hotpath
func (f *Frontend) Step(slot int) (*SlotState, error) {
	net := f.net
	m := net.Band.M()
	truth := f.specSim.StepInPlace()

	if f.beliefs != nil {
		f.beliefs.Predict()
	}
	priors := f.priors
	posteriors := f.posteriors
	fusers := f.fusers
	for ch := 1; ch <= m; ch++ {
		prior := net.Band.Utilization(ch)
		switch {
		case f.beliefs != nil:
			var err error
			prior, err = f.beliefs.PriorBusy(ch)
			if err != nil {
				return nil, err
			}
		case f.estimators != nil:
			// Learned prior once enough reports exist; 1/2 until then.
			prior = 0.5
			if est := f.estimators[ch-1]; est.Observations() >= 20 {
				var err error
				prior, err = est.Estimate()
				if err != nil {
					return nil, err
				}
				if prior >= 1 {
					prior = 1 - 1e-9 // keep the fusion prior valid
				}
			}
		}
		priors[ch-1] = prior
		if err := fusers[ch-1].Reset(prior); err != nil {
			return nil, err
		}
	}
	// FBS sensing: each FBS points its antennas at a rotating window of
	// channels (all of them at the paper's default of M antennas).
	antennas := net.AntennasPerFBS()
	for i := 0; i < net.NumFBS; i++ {
		for a := 0; a < antennas; a++ {
			ch := (slot*antennas+a+i)%m + 1
			obs := net.Detector.Sense(truth[ch-1], f.senseStream)
			fusers[ch-1].Update(obs)
			if f.estimators != nil {
				f.estimators[ch-1].Record(obs)
			}
		}
	}
	assignment := f.assignment
	var err error
	if f.sensorPolicy == sensing.UncertaintyDriven && f.beliefs != nil {
		busy := f.busy
		for ch := 1; ch <= m; ch++ {
			if busy[ch-1], err = f.beliefs.PriorBusy(ch); err != nil {
				return nil, err
			}
		}
		if err := sensing.AssignByUncertaintyInto(assignment, f.uncOrder, busy); err != nil {
			return nil, err
		}
	} else {
		if err := sensing.AssignInto(assignment, f.sensorPolicy, m, slot, f.assignStream); err != nil {
			return nil, err
		}
	}
	for _, ch := range assignment {
		fusers[ch-1].Update(net.Detector.Sense(truth[ch-1], f.senseStream))
	}
	for ch := 1; ch <= m; ch++ {
		posteriors[ch-1] = fusers[ch-1].Posterior()
		if f.beliefs != nil {
			if err := f.beliefs.Observe(ch, posteriors[ch-1]); err != nil {
				return nil, err
			}
		}
	}

	f.policy.DecideInto(priors, posteriors, f.accessStream, &f.decision)
	f.tracker.Record(f.decision, truth)
	f.accessed = f.decision.AppendAvailable(f.accessed[:0])
	accessed := f.accessed
	f.accessedPA = f.accessedPA[:0]
	for _, ch := range accessed {
		f.accessedPA = append(f.accessedPA, f.decision.Channels[ch-1].Posterior)
	}
	f.state = SlotState{
		Truth:      truth,
		Decision:   f.decision,
		Accessed:   accessed,
		AccessedPA: f.accessedPA,
	}
	return &f.state, nil
}

// CollisionRate returns the worst realized per-channel conditional collision
// rate — collisions divided by truly-busy slots, the quantity eq. (6) bounds
// by gamma.
func (f *Frontend) CollisionRate() float64 { return f.tracker.MaxConditionalRate() }
