package sim

import (
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
)

func frontendFor(t *testing.T, seed uint64, policy sensing.AssignmentPolicy, beliefs bool) *Frontend {
	t.Helper()
	net, err := netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFrontend(net, rng.New(seed), policy)
	if err != nil {
		t.Fatal(err)
	}
	if beliefs {
		f.EnableBeliefTracking()
	}
	return f
}

func TestFrontendStepInvariants(t *testing.T) {
	f := frontendFor(t, 1, 0, false)
	for slot := 0; slot < 200; slot++ {
		st, err := f.Step(slot)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Truth) != 8 {
			t.Fatalf("truth has %d channels", len(st.Truth))
		}
		if len(st.Accessed) != len(st.AccessedPA) {
			t.Fatal("accessed/posterior length mismatch")
		}
		for i, ch := range st.Accessed {
			if ch < 1 || ch > 8 {
				t.Fatalf("accessed channel %d out of range", ch)
			}
			if pa := st.AccessedPA[i]; pa < 0 || pa > 1 {
				t.Fatalf("posterior %v out of range", pa)
			}
			if st.Decision.Channels[ch-1].Posterior != st.AccessedPA[i] {
				t.Fatal("AccessedPA does not mirror the decision posteriors")
			}
		}
		// The eq. (6) bound holds for every channel every slot.
		if b := st.Decision.CollisionBound(); b > 0.2+1e-9 {
			t.Fatalf("slot %d: collision bound %v above gamma", slot, b)
		}
	}
	if f.CollisionRate() < 0 || f.CollisionRate() > 1 {
		t.Fatalf("collision rate %v", f.CollisionRate())
	}
}

func TestFrontendDeterminism(t *testing.T) {
	a := frontendFor(t, 7, 0, false)
	b := frontendFor(t, 7, 0, false)
	for slot := 0; slot < 50; slot++ {
		sa, err := a.Step(slot)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Step(slot)
		if err != nil {
			t.Fatal(err)
		}
		if len(sa.Accessed) != len(sb.Accessed) {
			t.Fatalf("slot %d diverged", slot)
		}
		for i := range sa.Accessed {
			if sa.Accessed[i] != sb.Accessed[i] || sa.AccessedPA[i] != sb.AccessedPA[i] {
				t.Fatalf("slot %d accessed sets diverged", slot)
			}
		}
	}
}

// TestFrontendBeliefsChangePosteriors: belief tracking must actually alter
// the fusion priors after the first slot.
func TestFrontendBeliefsChangePosteriors(t *testing.T) {
	plain := frontendFor(t, 3, 0, false)
	filtered := frontendFor(t, 3, 0, true)
	diverged := false
	for slot := 0; slot < 20; slot++ {
		sp, err := plain.Step(slot)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := filtered.Step(slot)
		if err != nil {
			t.Fatal(err)
		}
		if slot == 0 {
			continue // identical priors on the first slot
		}
		for ch := range sp.Decision.Channels {
			if sp.Decision.Channels[ch].Posterior != sf.Decision.Channels[ch].Posterior {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("belief tracking never changed a posterior")
	}
}

// TestFrontendUncertaintyPolicy: with beliefs enabled the uncertainty-driven
// assignment runs and keeps the collision bound intact.
func TestFrontendUncertaintyPolicy(t *testing.T) {
	f := frontendFor(t, 5, sensing.UncertaintyDriven, true)
	for slot := 0; slot < 100; slot++ {
		st, err := f.Step(slot)
		if err != nil {
			t.Fatal(err)
		}
		if b := st.Decision.CollisionBound(); b > 0.2+1e-9 {
			t.Fatalf("slot %d: bound %v", slot, b)
		}
	}
}

// TestFrontendUncertaintyWithoutBeliefs: the policy degrades to round-robin
// without a filter rather than failing.
func TestFrontendUncertaintyWithoutBeliefs(t *testing.T) {
	f := frontendFor(t, 5, sensing.UncertaintyDriven, false)
	if _, err := f.Step(0); err != nil {
		t.Fatal(err)
	}
}
