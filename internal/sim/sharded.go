package sim

import (
	"fmt"
	"math"
	"time"

	"femtocr/internal/netmodel"
	"femtocr/internal/par"
	"femtocr/internal/stats"
)

// ShardSeedStride separates consecutive shards' seed spaces by the 64-bit
// golden-ratio constant, so a metro run's shards draw decorrelated
// randomness while shard 0 keeps the base seed exactly — which is what
// makes a connected (single-component) sharded run reduce bit for bit to
// the unsharded engine. Replication loops step seeds by +1, so the stride
// also keeps shard streams clear of neighboring replications.
const ShardSeedStride uint64 = 0x9E3779B97F4A7C15

// ShardSeed returns the seed shard (component) c derives all its randomness
// from: base for c=0, then base + c*ShardSeedStride.
func ShardSeed(base uint64, c int) uint64 {
	return base + uint64(c)*ShardSeedStride
}

// ShardSummary is the fixed-size reduction of one shard's simulation — the
// only per-shard state the fold retains, which is what keeps RunSharded's
// result memory O(shards) instead of O(users).
type ShardSummary struct {
	// Component is the interference-graph component index of the shard.
	Component int
	// FBSs and Users are the shard's sizes.
	FBSs  int
	Users int
	// Seed is the shard's derived base seed (ShardSeed of the run seed).
	Seed uint64

	// MeanPSNR, MinUserPSNR, FairnessIndex, CollisionRate and
	// MeanExpectedChannels mirror the shard run's Result fields.
	MeanPSNR             float64
	MinUserPSNR          float64
	FairnessIndex        float64
	CollisionRate        float64
	MeanExpectedChannels float64
	// GOPs and Slots are the shard run's horizon.
	GOPs  int
	Slots int

	// SumPSNR and SumBound re-sum the shard's per-user (bound) quality in
	// ascending user order — the exact partial sums the engine's own mean
	// computation accumulates, so the cross-shard fold reproduces the
	// unsharded arithmetic bitwise on a single shard.
	SumPSNR  float64
	SumBound float64
	// Gains carries the sufficient statistics of Jain's index over the
	// shard's per-user quality gains.
	Gains stats.JainAccumulator
	// PSNR accumulates the shard's per-user PSNR distribution; the fold
	// merges these in ascending component order. Per-shard wall time lives
	// in ShardTiming, not here, so PerShard stays schedule-independent.
	PSNR stats.Running

	// Warm carries the shard's solver iteration statistics, nil unless
	// Options.SolveStats was set. The histogram behind the quantiles is a
	// fixed-size array, so the summary stays O(1) per shard.
	Warm *WarmStartReport `json:",omitempty"`
}

// ShardTiming is the per-task nanosecond accounting of one sharded run.
// Wall-clock speedup is hardware-capped (a 1-CPU container pins it at ~1.0
// regardless of workers), so scaling claims are made from this bookkeeping
// instead: SumTaskNS is the serialized work, MaxTaskNS the critical path,
// and their ratio the speedup a perfectly parallel machine would reach at
// this grouping.
type ShardTiming struct {
	// WallNS is the end-to-end wall time of the sharded run.
	WallNS int64
	// TaskNS is the per-grid-task (shard group) wall time, indexed by task.
	TaskNS []int64
	// ShardNS is the per-shard engine wall time, indexed by component.
	ShardNS []int64
	// SumTaskNS and MaxTaskNS summarize TaskNS.
	SumTaskNS int64
	MaxTaskNS int64
}

// IdealSpeedup returns SumTaskNS/MaxTaskNS: the speedup of this grouping on
// enough CPUs, independent of the wall clock of the machine that ran it.
func (t *ShardTiming) IdealSpeedup() float64 {
	if t == nil || t.MaxTaskNS <= 0 {
		return 0
	}
	return float64(t.SumTaskNS) / float64(t.MaxTaskNS)
}

// ShardedResult aggregates a sharded run. All quality fields are folded in
// ascending component order from fixed-size shard summaries, so they are
// bitwise-deterministic for any Workers/Shards setting; Timing is the only
// schedule-dependent field.
type ShardedResult struct {
	// MeanPSNR is the user-population mean quality, folded as
	// sum(per-shard user sums)/K — bitwise-equal to Run's MeanPSNR on a
	// connected network.
	MeanPSNR float64
	// BoundPSNR is the mean eq. (23) upper bound (TrackBound runs only).
	BoundPSNR float64
	// MinUserPSNR is the worst per-user mean quality across every shard.
	MinUserPSNR float64
	// FairnessIndex is Jain's index over all users' quality gains, folded
	// from per-shard sufficient statistics.
	FairnessIndex float64
	// CollisionRate is the worst per-channel conditional collision rate
	// observed in any shard.
	CollisionRate float64
	// MeanExpectedChannels averages the shards' per-slot expected available
	// channels (each shard senses the full band independently).
	MeanExpectedChannels float64
	// GOPs and Slots are the common simulation horizon.
	GOPs  int
	Slots int

	// Users, FBSs, Shards and Groups describe the decomposition: Shards is
	// the interference-component count, Groups how many grid tasks the
	// components were folded through.
	Users  int
	FBSs   int
	Shards int
	Groups int

	// PSNR summarizes the per-user quality distribution streamed through
	// stats.Running.Merge in ascending component order (N = Users).
	PSNR stats.Summary

	// Warm folds the shards' solver iteration statistics (counters add,
	// histograms merge, quantiles recomputed from the merged histogram),
	// nil unless Options.SolveStats was set.
	Warm *WarmStartReport `json:",omitempty"`

	// PerShard holds every shard's fixed-size summary, ascending by
	// component.
	PerShard []ShardSummary

	// Timing is the per-task ns accounting (nil-able, schedule-dependent;
	// exclude it from determinism comparisons).
	Timing *ShardTiming `json:",omitempty"`
}

// runShard is the per-shard engine entry point — a seam so tests can inject
// shard failures and panics without crafting a degenerate network.
var runShard = Run

// RunSharded simulates the network by decomposing its interference graph
// into connected components (shards) and running the unsharded engine on
// each independently: every shard gets its own MBS capacity slice, sensing
// fusion domain, and seed stream (ShardSeed). Shards are grouped into
// opts.Parallel.Shards grid tasks — contiguous component ranges weighted by
// user count (shardBounds) — executed over opts.Parallel.Workers
// workers via par.RunGrid; each task reduces its shards to fixed-size
// summaries in place, and after the join the summaries fold in ascending
// component order, so the result is bitwise-identical for any Workers and
// Shards setting. On a connected network the decomposition is trivial and
// every quality field matches Run exactly, bit for bit.
//
// Run and RunSharded agree only when the components truly are independent
// coordination domains: on a multi-component network the unsharded engine
// couples components through the shared MBS budget and network-wide
// sensing fusion, so the two engines answer slightly different questions
// (one macro sector vs one per cluster) and only the connected case is
// comparable.
//
// Recorder and CaptureDualTrace are per-engine diagnostics that cannot be
// folded and are rejected.
func RunSharded(net *netmodel.Network, opts Options) (*ShardedResult, error) {
	if opts.Recorder != nil {
		return nil, fmt.Errorf("%w: Recorder is not supported by RunSharded (trace one shard with Run instead)", ErrBadOptions)
	}
	if opts.CaptureDualTrace {
		return nil, fmt.Errorf("%w: CaptureDualTrace is not supported by RunSharded (trace one shard with Run instead)", ErrBadOptions)
	}
	if net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrBadOptions)
	}
	shards, err := net.Partition()
	if err != nil {
		return nil, err
	}
	numShards := len(shards)
	groups := opts.Parallel.EffectiveShards(numShards)
	if groups < 1 {
		return nil, fmt.Errorf("%w: no shards to run", ErrBadOptions)
	}

	start := time.Now() //femtovet:ignore randsource -- ShardTiming is profiling metadata; no simulated quantity reads the wall clock
	perShard := make([]ShardSummary, numShards)
	taskNS := make([]int64, groups)
	shardNS := make([]int64, numShards)
	bounds := shardBounds(shards, groups)
	gridErr := par.RunGrid(groups, opts.Parallel.Workers, func(g int) error {
		t0 := time.Now() //femtovet:ignore randsource -- per-task ns accounting (ShardTiming.TaskNS), not simulation state
		// Task g owns the contiguous component range [lo, hi): summaries
		// land in the task's own slots, keyed by component index.
		lo, hi := bounds[g], bounds[g+1]
		for c := lo; c < hi; c++ {
			sub, err := net.Subnetwork(&shards[c])
			if err != nil {
				return fmt.Errorf("shard %d (FBSs %v): %w", c, shards[c].FBSs, err)
			}
			shardOpts := opts
			shardOpts.Seed = ShardSeed(opts.Seed, c)
			shardOpts.Parallel = Parallelism{}
			s0 := time.Now() //femtovet:ignore randsource -- per-shard ns accounting (ShardTiming.ShardNS), not simulation state
			res, err := runShard(sub, shardOpts)
			if err != nil {
				return fmt.Errorf("shard %d (FBSs %v): %w", c, shards[c].FBSs, err)
			}
			perShard[c] = reduceShard(c, shardOpts.Seed, sub, res)
			shardNS[c] = time.Since(s0).Nanoseconds()
		}
		taskNS[g] = time.Since(t0).Nanoseconds()
		return nil
	})
	if gridErr != nil {
		return nil, gridErr
	}
	out := foldShards(net, perShard)
	out.Groups = groups
	timing := &ShardTiming{WallNS: time.Since(start).Nanoseconds(), TaskNS: taskNS, ShardNS: shardNS}
	for _, ns := range taskNS {
		timing.SumTaskNS += ns
		if ns > timing.MaxTaskNS {
			timing.MaxTaskNS = ns
		}
	}
	out.Timing = timing
	return out, nil
}

// shardBounds splits the components into groups contiguous ranges
// [bounds[g], bounds[g+1]) balanced by user count rather than component
// count. The previous equal-count ranges packed skewed components
// arbitrarily: one task could own every heavy component while its siblings
// drew the light ones, and MaxTaskNS — the critical path IdealSpeedup
// divides by — grew to match. This is the classic minimax contiguous
// partition (painter's problem), solved exactly: binary search on the
// heaviest-task cap with a greedy feasibility count, then a greedy packing
// under the minimal cap. Integer arithmetic throughout, one call per run —
// nowhere near the hot path. The cap never sits below the heaviest single
// component, so the tail clamp (each remaining task takes one component)
// cannot push a task over it; EffectiveShards guarantees groups never
// exceeds the component count, making every task nonempty. Only the
// grouping changes: summaries still land in component-indexed slots and
// fold in ascending component order, so the quality results stay
// bitwise-identical for any grouping, as before.
func shardBounds(shards []netmodel.Shard, groups int) []int {
	n := len(shards)
	weights := make([]int64, n)
	var total, heaviest int64
	for c := range shards {
		w := int64(len(shards[c].Users))
		weights[c] = w
		total += w
		if w > heaviest {
			heaviest = w
		}
	}
	// tasksAt counts how many greedy ranges a heaviest-task cap requires.
	tasksAt := func(limit int64) int {
		tasks, w := 1, int64(0)
		for _, x := range weights {
			if w+x > limit {
				tasks++
				w = x
			} else {
				w += x
			}
		}
		return tasks
	}
	lo, hi := heaviest, total
	for lo < hi {
		mid := lo + (hi-lo)/2
		if tasksAt(mid) <= groups {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bounds := make([]int, groups+1)
	c := 0
	for g := 0; g < groups; g++ {
		last := n - (groups - 1 - g) // leave one component per remaining task
		w := weights[c]
		c++
		for c < last && w+weights[c] <= lo {
			w += weights[c]
			c++
		}
		bounds[g+1] = c
	}
	return bounds
}

// reduceShard compresses one shard's full Result into the fixed-size
// summary the fold keeps. Per-user slices are re-summed in ascending user
// order — the same order and arithmetic the engine itself used — before
// being dropped.
func reduceShard(component int, seed uint64, sub *netmodel.Network, res *Result) ShardSummary {
	s := ShardSummary{
		Component:            component,
		FBSs:                 sub.NumFBS,
		Users:                len(res.PerUserPSNR),
		Seed:                 seed,
		MeanPSNR:             res.MeanPSNR,
		MinUserPSNR:          res.MinUserPSNR,
		FairnessIndex:        res.FairnessIndex,
		CollisionRate:        res.CollisionRate,
		MeanExpectedChannels: res.MeanExpectedChannels,
		GOPs:                 res.GOPs,
		Slots:                res.Slots,
		Warm:                 res.Warm,
	}
	for j, v := range res.PerUserPSNR {
		s.SumPSNR += v
		s.PSNR.Add(v)
		s.Gains.Add(v - sub.Users[j].Seq.RD.Alpha)
	}
	for _, v := range res.PerUserBound {
		s.SumBound += v
	}
	return s
}

// foldShards aggregates the per-shard summaries in ascending component
// order. The fold arithmetic deliberately mirrors the unsharded engine's
// result() so a single-component fold is a bitwise no-op: the PSNR sum
// starts at zero and ends divided by K, the Jain statistics merge into an
// empty accumulator (an exact copy), min/max folds compare against
// identities, and the G average divides by the shard count (x/1 exact).
func foldShards(net *netmodel.Network, perShard []ShardSummary) *ShardedResult {
	out := &ShardedResult{
		Users:       net.K(),
		FBSs:        net.NumFBS,
		Shards:      len(perShard),
		GOPs:        perShard[0].GOPs,
		Slots:       perShard[0].Slots,
		MinUserPSNR: math.Inf(1),
		PerShard:    perShard,
	}
	var psnrAcc stats.Running
	var gains stats.JainAccumulator
	sum, boundSum, gSum := 0.0, 0.0, 0.0
	trackBound := false
	for c := range perShard {
		s := &perShard[c]
		sum += s.SumPSNR
		if s.SumBound != 0 {
			trackBound = true
		}
		boundSum += s.SumBound
		if s.MinUserPSNR < out.MinUserPSNR {
			out.MinUserPSNR = s.MinUserPSNR
		}
		if s.CollisionRate > out.CollisionRate {
			out.CollisionRate = s.CollisionRate
		}
		gSum += s.MeanExpectedChannels
		psnrAcc.Merge(&s.PSNR)
		gains.Merge(&s.Gains)
		if s.Warm != nil {
			if out.Warm == nil {
				out.Warm = &WarmStartReport{}
			}
			out.Warm.mergeWarm(s.Warm)
		}
	}
	k := float64(out.Users)
	out.MeanPSNR = sum / k
	if trackBound {
		out.BoundPSNR = boundSum / k
	}
	out.FairnessIndex = gains.Index()
	out.MeanExpectedChannels = gSum / float64(len(perShard))
	// Summary errors only on an empty accumulator; Partition guarantees at
	// least one user per shard.
	out.PSNR, _ = psnrAcc.Summary()
	return out
}
