package sim

// Metamorphic tests: random valid configurations must always produce sane
// results — PSNRs inside [alpha, ceiling], collision rates bounded by the
// budget plus sampling noise, determinism per seed — across the whole
// parameter space, not just the paper's operating point.

import (
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/netmodel"
	"femtocr/internal/rng"
)

// randomConfig draws a valid random configuration.
func randomConfig(s *rng.Stream) netmodel.Config {
	cfg := netmodel.DefaultConfig()
	cfg.M = 2 + s.IntN(10)
	cfg.B0 = 0.1 + 0.5*s.Float64()
	cfg.B1 = 0.1 + 0.5*s.Float64()
	cfg.P10 = 0.05 + 0.5*s.Float64()
	// eta in [0.1, 0.8], feasible for the drawn P10 by construction below.
	eta := 0.1 + 0.7*s.Float64()
	p01 := eta * cfg.P10 / (1 - eta)
	if p01 > 1 {
		p01 = 1
	}
	cfg.P01 = p01
	cfg.Gamma = 0.05 + 0.4*s.Float64()
	cfg.Eps = 0.05 + 0.4*s.Float64()
	cfg.Delta = 0.05 + 0.4*s.Float64()
	cfg.T = 2 + s.IntN(15)
	cfg.Seed = s.Uint64()
	return cfg
}

func TestRandomConfigsInvariants(t *testing.T) {
	root := rng.New(2027)
	err := quick.Check(func(trial uint16) bool {
		s := root.SplitIndex("cfg", int(trial%64))
		cfg := randomConfig(s)
		net, err := netmodel.PaperSingleFBS(cfg)
		if err != nil {
			t.Logf("config rejected (acceptable): %v", err)
			return true
		}
		scheme := []Scheme{Proposed, Heuristic1, Heuristic2, RoundRobin}[s.IntN(4)]
		res, err := Run(net, Options{Seed: s.Uint64(), GOPs: 3, Scheme: scheme})
		if err != nil {
			t.Logf("run failed for %+v: %v", cfg, err)
			return false
		}
		for j, p := range res.PerUserPSNR {
			lo := net.Users[j].Seq.RD.Alpha
			hi := net.Users[j].Seq.MaxPSNR()
			if math.IsNaN(p) || p < lo-1e-9 || p > hi+1e-9 {
				t.Logf("user %d PSNR %v outside [%v, %v]", j, p, lo, hi)
				return false
			}
		}
		if res.CollisionRate < 0 || res.CollisionRate > 1 {
			return false
		}
		if res.FairnessIndex < 0 || res.FairnessIndex > 1+1e-9 {
			return false
		}
		if res.MinUserPSNR > res.MeanPSNR+1e-9 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 24})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRandomConfigsCollisionBudget: over a longer horizon, random configs
// keep realized collisions near their gamma.
func TestRandomConfigsCollisionBudget(t *testing.T) {
	root := rng.New(2028)
	for trial := 0; trial < 6; trial++ {
		s := root.SplitIndex("cfg", trial)
		cfg := randomConfig(s)
		net, err := netmodel.PaperSingleFBS(cfg)
		if err != nil {
			continue
		}
		res, err := Run(net, Options{Seed: 1, GOPs: 600 / cfg.T, Scheme: Heuristic1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Max over M channels of a ~600-slot estimate: allow generous noise.
		if res.CollisionRate > cfg.Gamma+0.08 {
			t.Fatalf("trial %d: collision %v far above gamma %v (cfg %+v)",
				trial, res.CollisionRate, cfg.Gamma, cfg)
		}
	}
}
