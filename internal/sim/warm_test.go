package sim

// Warm-start equivalence gates at the simulation layer. The cross-slot
// solver sessions change only how many subgradient iterations each slot
// burns; every simulated quantity — allocations, realized losses, PSNR
// trajectories — must be identical with WarmStart on and off, across the
// full config grid and the sharded runner. Any config where they differ is
// a bug in the warm path, not tolerance noise, because the discrete repair
// step is required to absorb converged-multiplier differences exactly.

import (
	"reflect"
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/video"
)

// warmConfigs is the 16-config snapshot grid: every scheme-relevant
// combination of deployment, solver, bound tracking, fusion prior, and
// seed that exercises a distinct slot-solve path.
func warmConfigs(t *testing.T) []struct {
	name string
	net  *netmodel.Network
	opts Options
} {
	t.Helper()
	cfg := netmodel.DefaultConfig()
	single, err := netmodel.PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	interf, err := netmodel.PaperInterfering(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trio := video.PaperTrio()
	noninterf, err := netmodel.NonInterfering(cfg, [][]video.Sequence{trio[:], trio[:]})
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		net  *netmodel.Network
		opts Options
	}{
		{"single-eq-s1", single, Options{Seed: 1, GOPs: 4, Scheme: Proposed}},
		{"single-eq-s2", single, Options{Seed: 2, GOPs: 4, Scheme: Proposed}},
		{"single-dual-s1", single, Options{Seed: 1, GOPs: 4, Scheme: Proposed, UseDualSolver: true}},
		{"single-dual-s2", single, Options{Seed: 2, GOPs: 4, Scheme: Proposed, UseDualSolver: true}},
		{"single-eq-beliefs", single, Options{Seed: 3, GOPs: 4, Scheme: Proposed, TrackBeliefs: true}},
		{"single-dual-beliefs", single, Options{Seed: 3, GOPs: 4, Scheme: Proposed, UseDualSolver: true, TrackBeliefs: true}},
		{"single-eq-estimate", single, Options{Seed: 4, GOPs: 4, Scheme: Proposed, EstimateUtilization: true}},
		{"single-dual-estimate", single, Options{Seed: 4, GOPs: 4, Scheme: Proposed, UseDualSolver: true, EstimateUtilization: true}},
		{"noninterf-eq-s1", noninterf, Options{Seed: 1, GOPs: 4, Scheme: Proposed}},
		{"noninterf-eq-s2", noninterf, Options{Seed: 2, GOPs: 4, Scheme: Proposed}},
		{"noninterf-dual-s1", noninterf, Options{Seed: 1, GOPs: 4, Scheme: Proposed, UseDualSolver: true}},
		{"noninterf-dual-s2", noninterf, Options{Seed: 2, GOPs: 4, Scheme: Proposed, UseDualSolver: true}},
		{"interf-eq", interf, Options{Seed: 1, GOPs: 2, Scheme: Proposed}},
		{"interf-dual", interf, Options{Seed: 1, GOPs: 2, Scheme: Proposed, UseDualSolver: true}},
		{"interf-eq-bound", interf, Options{Seed: 1, GOPs: 2, Scheme: Proposed, TrackBound: true}},
		{"interf-dual-bound", interf, Options{Seed: 1, GOPs: 2, Scheme: Proposed, UseDualSolver: true, TrackBound: true}},
	}
}

// TestWarmStartMatchesColdAcrossConfigs is the snapshot-diff gate of the
// warm-start tentpole: over the 16 sim configs, a WarmStart run must equal
// the cold run field for field (Warm is instrumentation metadata and is
// cleared before the comparison).
func TestWarmStartMatchesColdAcrossConfigs(t *testing.T) {
	for _, tc := range warmConfigs(t) {
		t.Run(tc.name, func(t *testing.T) {
			cold, err := Run(tc.net, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			warmOpts := tc.opts
			warmOpts.WarmStart = true
			warmOpts.SolveStats = true
			warm, err := Run(tc.net, warmOpts)
			if err != nil {
				t.Fatal(err)
			}
			warm.Warm = nil
			if !reflect.DeepEqual(warm, cold) {
				t.Errorf("warm run diverged from cold:\n warm %+v\n cold %+v", warm, cold)
			}
		})
	}
}

// TestWarmStartDefaultOffIsLegacyPath pins that the zero-value options
// never construct sessions: the engine keeps the exact legacy SolveInto
// wiring and reports no warm metadata.
func TestWarmStartDefaultOffIsLegacyPath(t *testing.T) {
	net := benchNet(t, false)
	opts := Options{Seed: 1, GOPs: 1, Scheme: Proposed}
	e, err := newEngine(net, opts.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if e.warmSolver != nil || e.session != nil || e.relaxSession != nil {
		t.Fatal("sessions constructed without WarmStart/SolveStats")
	}
	res, err := Run(net, Options{Seed: 1, GOPs: 1, Scheme: Proposed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm != nil {
		t.Fatal("Result.Warm populated without SolveStats")
	}
}

// TestWarmReportStats checks the instrumentation itself: modes, solve
// counts (one slot solve per slot on the single-FBS path), and quantile
// ordering, warm against cold-probe.
func TestWarmReportStats(t *testing.T) {
	net := benchNet(t, false)
	base := Options{Seed: 1, GOPs: 4, Scheme: Proposed, UseDualSolver: true, SolveStats: true}
	cold, err := Run(net, base)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := base
	warmOpts.WarmStart = true
	warm, err := Run(net, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		name string
		res  *Result
		mode string
	}{{"cold", cold, "cold"}, {"warm", warm, "warm"}} {
		w := probe.res.Warm
		if w == nil {
			t.Fatalf("%s: Result.Warm is nil with SolveStats set", probe.name)
		}
		if w.Mode != probe.mode {
			t.Errorf("%s: Mode = %q", probe.name, w.Mode)
		}
		if w.Stats.Solves != probe.res.Slots {
			t.Errorf("%s: %d solves over %d slots", probe.name, w.Stats.Solves, probe.res.Slots)
		}
		if !(w.IterP50 <= w.IterP90 && w.IterP90 <= w.IterP99 && w.IterP99 <= w.IterMax) {
			t.Errorf("%s: quantiles out of order: p50=%d p90=%d p99=%d max=%d",
				probe.name, w.IterP50, w.IterP90, w.IterP99, w.IterMax)
		}
		if w.IterMean <= 0 {
			t.Errorf("%s: IterMean = %v", probe.name, w.IterMean)
		}
	}
	if cold.Warm.Stats.WarmSolves != 0 {
		t.Errorf("cold probe recorded %d warm solves", cold.Warm.Stats.WarmSolves)
	}
	if warm.Warm.Stats.WarmSolves == 0 {
		t.Error("warm run recorded no warm solves")
	}
	// The budget claim of the tentpole, pinned directly at the paper's
	// Markov parameters: at least 2x fewer median subgradient iterations.
	if 2*warm.Warm.IterP50 > cold.Warm.IterP50 {
		t.Errorf("warm median %d not >=2x below cold median %d", warm.Warm.IterP50, cold.Warm.IterP50)
	}
}

// TestShardedWarmMatchesUnsharded extends the sharded bitwise contract to
// warm runs: per-shard sessions must reproduce the unsharded warm engine
// exactly on a connected network, for any grouping, and the folded warm
// report must account for every shard's solves.
func TestShardedWarmMatchesUnsharded(t *testing.T) {
	net := benchNet(t, false)
	base := Options{Seed: 1000, GOPs: 4, Scheme: Proposed, WarmStart: true, SolveStats: true}
	ref, err := Run(net, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := base
		opts.Parallel = Parallelism{Workers: workers, Shards: 2}
		sh, err := RunSharded(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		compareShardedToRun(t, "warm-sharded", sh, ref)
		if sh.Warm == nil {
			t.Fatal("sharded warm report missing")
		}
		if !reflect.DeepEqual(sh.Warm, ref.Warm) {
			t.Errorf("folded warm report %+v, want %+v", sh.Warm, ref.Warm)
		}
	}

	// Multi-component fold: solves must add across shards.
	cfg := netmodel.DefaultConfig()
	trio := video.PaperTrio()
	multi, err := netmodel.NonInterfering(cfg, [][]video.Sequence{trio[:], trio[:], trio[:]})
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.Parallel = Parallelism{Workers: 2}
	sh, err := RunSharded(multi, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards != 3 || sh.Warm == nil {
		t.Fatalf("shards=%d warm=%v", sh.Shards, sh.Warm)
	}
	total := 0
	for _, s := range sh.PerShard {
		if s.Warm == nil {
			t.Fatal("shard missing warm summary")
		}
		total += s.Warm.Stats.Solves
	}
	if sh.Warm.Stats.Solves != total {
		t.Errorf("folded solves %d, shards sum to %d", sh.Warm.Stats.Solves, total)
	}
}
