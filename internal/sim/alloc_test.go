package sim

// Allocation-regression pins for the per-slot hot path. After the engine
// is constructed, stepping slots must stay within a small constant
// allocation budget: the single-FBS path is fully allocation-free apart
// from the amortized per-GOP PSNR bookkeeping, and the interfering path
// pays only for the escaping greedy result. A regression here is exactly
// the GC pressure that flattened the parallel replication speedup.

import "testing"

func TestSlotStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cases := []struct {
		name        string
		interfering bool
		opts        Options
		budget      float64 // average allocations per slot
	}{
		// Budget 1 absorbs the per-GOP EndGOP appends and rare pool misses;
		// the per-slot steady state is zero.
		{"proposed-single", false, Options{Scheme: Proposed}, 1},
		{"proposed-single-dual", false, Options{Scheme: Proposed, UseDualSolver: true}, 1},
		// Warm-started sessions must not add a single allocation to the
		// steady-state slot: seeds are written into pooled workspaces and
		// carried multipliers live in session-owned slices.
		{"proposed-single-warm", false, Options{Scheme: Proposed, WarmStart: true}, 1},
		{"proposed-single-dual-warm", false, Options{Scheme: Proposed, UseDualSolver: true, WarmStart: true}, 1},
		// The greedy channel allocation returns a fresh result per slot
		// (~17 allocs observed); anything near the pre-rework ~5900 means
		// per-evaluation scratch is being rebuilt again.
		{"proposed-interfering", true, Options{Scheme: Proposed}, 30},
		{"heuristic2-interfering", true, Options{Scheme: Heuristic2}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := benchNet(t, tc.interfering)
			tc.opts.Seed = 1
			tc.opts.GOPs = 1
			e, err := newEngine(net, tc.opts.withDefaults())
			if err != nil {
				t.Fatal(err)
			}
			slot := 0
			for ; slot < net.T; slot++ { // warm one full GOP
				if err := e.step(slot); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(2*net.T, func() {
				if err := e.step(slot); err != nil {
					t.Fatal(err)
				}
				slot++
			})
			if avg > tc.budget {
				t.Errorf("step allocates %.2f/slot in steady state, budget %g", avg, tc.budget)
			}
		})
	}
}
