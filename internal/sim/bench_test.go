package sim

// Slot-engine benchmarks: the cost of one simulated GOP per scheme and
// deployment, the driver of every figure's wall-clock time.

import (
	"testing"

	"femtocr/internal/netmodel"
)

func benchNet(b testing.TB, interfering bool) *netmodel.Network {
	b.Helper()
	var (
		net *netmodel.Network
		err error
	)
	if interfering {
		net, err = netmodel.PaperInterfering(netmodel.DefaultConfig())
	} else {
		net, err = netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	}
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func benchRun(b *testing.B, net *netmodel.Network, opts Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i) + 1
		opts.GOPs = 1
		if _, err := Run(net, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSlotStep measures the steady-state cost of one simulated slot: the
// engine is built once outside the timer, then stepped b.N slots. This is
// the hot path BENCH_hotpath.json tracks for allocation regressions — after
// engine construction the per-slot loop should be allocation-free.
func benchSlotStep(b *testing.B, interfering bool, opts Options) {
	b.Helper()
	net := benchNet(b, interfering)
	opts.Seed = 1
	opts.GOPs = 1
	e, err := newEngine(net, opts.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.step(i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlotStepProposedSingle(b *testing.B) {
	benchSlotStep(b, false, Options{Scheme: Proposed})
}

func BenchmarkSlotStepProposedSingleDualSolver(b *testing.B) {
	benchSlotStep(b, false, Options{Scheme: Proposed, UseDualSolver: true})
}

func BenchmarkSlotStepProposedInterfering(b *testing.B) {
	benchSlotStep(b, true, Options{Scheme: Proposed})
}

func BenchmarkGOPProposedSingle(b *testing.B) {
	benchRun(b, benchNet(b, false), Options{Scheme: Proposed})
}

func BenchmarkGOPProposedSingleDualSolver(b *testing.B) {
	benchRun(b, benchNet(b, false), Options{Scheme: Proposed, UseDualSolver: true})
}

func BenchmarkGOPProposedInterfering(b *testing.B) {
	benchRun(b, benchNet(b, true), Options{Scheme: Proposed})
}

func BenchmarkGOPProposedInterferingEagerGreedy(b *testing.B) {
	benchRun(b, benchNet(b, true), Options{Scheme: Proposed, DisableLazyGreedy: true})
}

func BenchmarkGOPProposedInterferingWithBound(b *testing.B) {
	benchRun(b, benchNet(b, true), Options{Scheme: Proposed, TrackBound: true})
}

func BenchmarkGOPHeuristic1Interfering(b *testing.B) {
	benchRun(b, benchNet(b, true), Options{Scheme: Heuristic1})
}

func BenchmarkGOPHeuristic2Interfering(b *testing.B) {
	benchRun(b, benchNet(b, true), Options{Scheme: Heuristic2})
}
