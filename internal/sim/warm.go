package sim

import "femtocr/internal/core"

// WarmStartReport summarizes the per-slot solver iteration statistics of one
// run (Result.Warm, populated when Options.SolveStats is set). For the
// DualSolver the iteration unit is subgradient iterations; for the
// EquilibriumSolver it is outer demand probes. Either way cold and warm runs
// of the same seed report the same solve count, so the cold/warm iteration
// ratio is the warm-start speedup BENCH_warmstart gates on.
type WarmStartReport struct {
	// Mode is "warm" when the run seeded solves across slots and "cold"
	// when it only recorded the baseline.
	Mode string
	// Stats carries the session counters of the slot-level solves.
	Stats core.SessionStats
	// RelaxStats carries the counters of the TrackBound relaxation solves,
	// which run through their own session (a different problem family must
	// not thrash the slot session's carried state); nil unless TrackBound.
	RelaxStats *core.SessionStats `json:",omitempty"`
	// IterMean and the quantiles summarize iterations per slot solve.
	IterMean float64
	IterP50  int
	IterP90  int
	IterP99  int
	IterMax  int
	// Hist is the per-solve iteration histogram backing the quantiles
	// (index = iterations, capped at the last bucket). It is carried so
	// sharded runs can fold quantiles exactly, but excluded from JSON.
	Hist []int64 `json:"-"`
}

// mergeWarm folds other into w: counters add, histograms add bucket-wise,
// and the quantiles are recomputed from the merged histogram, so a fold over
// shards reports the same quantiles as one session that saw every solve.
func (w *WarmStartReport) mergeWarm(other *WarmStartReport) {
	if other == nil {
		return
	}
	w.Mode = other.Mode
	w.Stats.Merge(&other.Stats)
	if other.RelaxStats != nil {
		if w.RelaxStats == nil {
			w.RelaxStats = &core.SessionStats{}
		}
		w.RelaxStats.Merge(other.RelaxStats)
	}
	if len(w.Hist) < len(other.Hist) {
		grown := make([]int64, len(other.Hist))
		copy(grown, w.Hist)
		w.Hist = grown
	}
	for i, c := range other.Hist {
		w.Hist[i] += c
	}
	w.finalize()
}

// finalize recomputes the mean and quantiles from the counters and histogram.
func (w *WarmStartReport) finalize() {
	if w.Stats.Solves > 0 {
		w.IterMean = float64(w.Stats.TotalIters) / float64(w.Stats.Solves)
	} else {
		w.IterMean = 0
	}
	w.IterP50 = histQuantile(w.Hist, w.Stats.Solves, 0.50)
	w.IterP90 = histQuantile(w.Hist, w.Stats.Solves, 0.90)
	w.IterP99 = histQuantile(w.Hist, w.Stats.Solves, 0.99)
	w.IterMax = w.Stats.MaxIters
}

// histQuantile returns the q-quantile of the iteration histogram, or -1 when
// no solve was recorded. Same convention as core.SolverSession.
func histQuantile(hist []int64, solves int, q float64) int {
	if len(hist) == 0 || solves == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(solves))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range hist {
		cum += c
		if cum >= target {
			return i
		}
	}
	return len(hist) - 1
}

// warmReport builds the Result.Warm report from the engine's sessions, nil
// when SolveStats was not requested.
func (e *engine) warmReport() *WarmStartReport {
	if !e.opts.SolveStats || e.session == nil {
		return nil
	}
	mode := "cold"
	if e.opts.WarmStart {
		mode = "warm"
	}
	w := &WarmStartReport{
		Mode:  mode,
		Stats: e.session.Stats(),
		Hist:  e.session.HistCopy(),
	}
	if e.relaxSession != nil && e.opts.TrackBound {
		rs := e.relaxSession.Stats()
		w.RelaxStats = &rs
	}
	w.finalize()
	return w
}
