package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/sensing"
	"femtocr/internal/trace"
	"femtocr/internal/video"
)

func singleNet(t *testing.T) *netmodel.Network {
	t.Helper()
	n, err := netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func interferingNet(t *testing.T) *netmodel.Network {
	t.Helper()
	n, err := netmodel.PaperInterfering(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSchemeString(t *testing.T) {
	if Proposed.String() != "Proposed" || Heuristic1.String() != "Heuristic 1" ||
		Heuristic2.String() != "Heuristic 2" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Fatal("unknown scheme name wrong")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("nil network err = %v", err)
	}
	net := singleNet(t)
	if _, err := Run(net, Options{GOPs: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative GOPs err = %v", err)
	}
	if _, err := Run(net, Options{Scheme: Scheme(99)}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("unknown scheme err = %v", err)
	}
	broken := *net
	broken.Gamma = 2
	if _, err := Run(&broken, Options{}); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	net := singleNet(t)
	a, err := Run(net, Options{Seed: 5, GOPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, Options{Seed: 5, GOPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.PerUserPSNR {
		if a.PerUserPSNR[j] != b.PerUserPSNR[j] {
			t.Fatalf("same seed diverged: %v vs %v", a.PerUserPSNR, b.PerUserPSNR)
		}
	}
	c, err := Run(net, Options{Seed: 6, GOPs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPSNR == c.MeanPSNR {
		t.Fatal("different seeds produced identical results")
	}
}

func TestRunBasicAccounting(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 1, GOPs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.GOPs != 7 {
		t.Fatalf("GOPs = %d, want 7", res.GOPs)
	}
	if res.Slots != 7*net.T {
		t.Fatalf("Slots = %d, want %d", res.Slots, 7*net.T)
	}
	if len(res.PerUserPSNR) != net.K() {
		t.Fatalf("PerUserPSNR len %d", len(res.PerUserPSNR))
	}
	sum := 0.0
	for j, p := range res.PerUserPSNR {
		alpha := net.Users[j].Seq.RD.Alpha
		ceiling := net.Users[j].Seq.MaxPSNR()
		if p < alpha-1e-9 || p > ceiling+1e-9 {
			t.Fatalf("user %d PSNR %v outside [%v, %v]", j, p, alpha, ceiling)
		}
		sum += p
	}
	if math.Abs(res.MeanPSNR-sum/float64(net.K())) > 1e-9 {
		t.Fatalf("MeanPSNR %v inconsistent", res.MeanPSNR)
	}
}

// TestQualityImproves: with channels available, the proposed scheme must
// deliver video above the base quality.
func TestQualityImproves(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 3, GOPs: 10})
	if err != nil {
		t.Fatal(err)
	}
	baseMean := 0.0
	for _, u := range net.Users {
		baseMean += u.Seq.RD.Alpha
	}
	baseMean /= float64(net.K())
	if res.MeanPSNR < baseMean+1 {
		t.Fatalf("mean PSNR %v barely above base %v: nothing delivered", res.MeanPSNR, baseMean)
	}
}

// TestProposedBeatsHeuristicsSingle reproduces the qualitative claim of
// Fig. 3: the proposed scheme achieves the best average quality.
func TestProposedBeatsHeuristicsSingle(t *testing.T) {
	net := singleNet(t)
	means := make(map[Scheme]float64)
	for _, sch := range []Scheme{Proposed, Heuristic1, Heuristic2} {
		// Average a few seeds to suppress noise.
		sum := 0.0
		for seed := uint64(1); seed <= 5; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 10, Scheme: sch})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeanPSNR
		}
		means[sch] = sum / 5
	}
	if means[Proposed] <= means[Heuristic1] || means[Proposed] <= means[Heuristic2] {
		t.Fatalf("proposed %v not best: H1 %v, H2 %v",
			means[Proposed], means[Heuristic1], means[Heuristic2])
	}
}

// TestInterferingOrderingAndBound reproduces the qualitative claims of
// Fig. 6(a): Proposed > Heuristic 2 > Heuristic 1, and the upper bound sits
// above the proposed curve by a small margin.
func TestInterferingOrderingAndBound(t *testing.T) {
	net := interferingNet(t)
	means := make(map[Scheme]float64)
	var bound float64
	for _, sch := range []Scheme{Proposed, Heuristic1, Heuristic2} {
		sum, bsum := 0.0, 0.0
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 4, Scheme: sch, TrackBound: sch == Proposed})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeanPSNR
			bsum += res.BoundPSNR
		}
		means[sch] = sum / 3
		if sch == Proposed {
			bound = bsum / 3
		}
	}
	if means[Proposed] <= means[Heuristic1] || means[Proposed] <= means[Heuristic2] {
		t.Fatalf("proposed %v not best: H1 %v, H2 %v", means[Proposed], means[Heuristic1], means[Heuristic2])
	}
	if means[Heuristic2] <= means[Heuristic1] {
		t.Fatalf("paper ordering violated: H2 %v <= H1 %v", means[Heuristic2], means[Heuristic1])
	}
	if bound < means[Proposed] {
		t.Fatalf("upper bound %v below proposed %v", bound, means[Proposed])
	}
	if bound > means[Proposed]+3 {
		t.Fatalf("upper bound %v implausibly loose vs proposed %v", bound, means[Proposed])
	}
}

// TestCollisionProtection: over a long run the realized collision rate
// stays near the threshold gamma.
func TestCollisionProtection(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 2, GOPs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionRate > net.Gamma+0.04 {
		t.Fatalf("collision rate %v well above gamma %v", res.CollisionRate, net.Gamma)
	}
	if res.CollisionRate == 0 {
		t.Fatal("zero collisions: access rule looks inert")
	}
}

// TestDualTraceCapture: the Fig. 4(a) trace has the right shape — one
// column per resource, settling over iterations.
func TestDualTraceCapture(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 1, GOPs: 1, CaptureDualTrace: true, DualIterations: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DualTrace) < 100 {
		t.Fatalf("trace has %d rows", len(res.DualTrace))
	}
	for _, row := range res.DualTrace {
		if len(row) != 2 {
			t.Fatalf("trace row has %d entries, want 2 (lambda0, lambda1)", len(row))
		}
		for _, l := range row {
			if l < 0 || math.IsNaN(l) {
				t.Fatalf("invalid dual value %v", l)
			}
		}
	}
	// Settling: late movement much smaller than early movement.
	n := len(res.DualTrace)
	early := math.Abs(res.DualTrace[1][0]-res.DualTrace[0][0]) +
		math.Abs(res.DualTrace[1][1]-res.DualTrace[0][1])
	late := math.Abs(res.DualTrace[n-1][0]-res.DualTrace[n-2][0]) +
		math.Abs(res.DualTrace[n-1][1]-res.DualTrace[n-2][1])
	if late > early {
		t.Fatalf("dual trace not settling: early %v, late %v", early, late)
	}
}

func TestDualTraceNotCapturedForHeuristics(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 1, GOPs: 1, Scheme: Heuristic1, CaptureDualTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DualTrace != nil {
		t.Fatal("heuristic run captured a dual trace")
	}
}

// TestUseDualSolverMatchesEquilibrium: the literal distributed algorithm
// and the fast equilibrium solver give nearly identical quality.
func TestUseDualSolverMatchesEquilibrium(t *testing.T) {
	net := singleNet(t)
	a, err := Run(net, Options{Seed: 4, GOPs: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, Options{Seed: 4, GOPs: 6, UseDualSolver: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MeanPSNR-b.MeanPSNR) > 0.3 {
		t.Fatalf("equilibrium %v vs dual %v differ too much", a.MeanPSNR, b.MeanPSNR)
	}
}

// TestLazyGreedyMatchesEagerInSim: toggling lazy evaluation must not change
// simulated quality (identical allocations).
func TestLazyGreedyMatchesEagerInSim(t *testing.T) {
	net := interferingNet(t)
	a, err := Run(net, Options{Seed: 4, GOPs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, Options{Seed: 4, GOPs: 2, DisableLazyGreedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MeanPSNR-b.MeanPSNR) > 1e-9 {
		t.Fatalf("lazy %v vs eager %v differ", a.MeanPSNR, b.MeanPSNR)
	}
}

// TestMoreChannelsHelp: the Fig. 4(b) trend — quality grows with M.
func TestMoreChannelsHelp(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	mean := func(m int) float64 {
		cfg.M = m
		net, err := netmodel.PaperSingleFBS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for seed := uint64(1); seed <= 4; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 8})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeanPSNR
		}
		return sum / 4
	}
	if lo, hi := mean(4), mean(12); lo >= hi {
		t.Fatalf("M=4 gives %v >= M=12 gives %v; more channels must help", lo, hi)
	}
}

// TestLowerUtilizationHelps: the Fig. 4(c)/6(a) trend — quality falls as
// primary-user utilization rises.
func TestLowerUtilizationHelps(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	mean := func(eta float64) float64 {
		c2, err := cfg.WithUtilization(eta)
		if err != nil {
			t.Fatal(err)
		}
		net, err := netmodel.PaperSingleFBS(c2)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for seed := uint64(1); seed <= 4; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 8})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeanPSNR
		}
		return sum / 4
	}
	if lo, hi := mean(0.7), mean(0.3); lo >= hi {
		t.Fatalf("eta=0.7 gives %v >= eta=0.3 gives %v; lower utilization must help", lo, hi)
	}
}

// TestSensorPolicies: all assignment policies run and give sane results.
func TestSensorPolicies(t *testing.T) {
	net := singleNet(t)
	for _, pol := range []sensing.AssignmentPolicy{
		sensing.RoundRobin, sensing.RandomAssign, sensing.Stratified,
	} {
		res, err := Run(net, Options{Seed: 1, GOPs: 3, SensorPolicy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.MeanPSNR <= 0 {
			t.Fatalf("%v: mean PSNR %v", pol, res.MeanPSNR)
		}
	}
}

// TestNonInterferingMultiFBS: the Table II case runs and every FBS's users
// get served.
func TestNonInterferingMultiFBS(t *testing.T) {
	trio := video.PaperTrio()
	net, err := netmodel.NonInterfering(netmodel.DefaultConfig(), [][]video.Sequence{trio[:], trio[:]})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, Options{Seed: 1, GOPs: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Both femtocells should deliver: per-FBS mean above base.
	for i := 1; i <= 2; i++ {
		base, got, cnt := 0.0, 0.0, 0
		for j, u := range net.Users {
			if u.FBS == i {
				base += u.Seq.RD.Alpha
				got += res.PerUserPSNR[j]
				cnt++
			}
		}
		if got <= base {
			t.Fatalf("FBS %d users received nothing: %v <= %v", i, got/float64(cnt), base/float64(cnt))
		}
	}
}

// TestExpectedChannelsDiagnostic: G_t averages within (0, M].
func TestExpectedChannelsDiagnostic(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 1, GOPs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanExpectedChannels <= 0 || res.MeanExpectedChannels > float64(net.Band.M()) {
		t.Fatalf("mean expected channels %v outside (0, %d]", res.MeanExpectedChannels, net.Band.M())
	}
}

// TestTraceRecording: the optional recorder captures every slot and user
// event with consistent accounting.
func TestTraceRecording(t *testing.T) {
	net := singleNet(t)
	var rec trace.Recorder
	res, err := Run(net, Options{Seed: 1, GOPs: 3, Recorder: &rec})
	if err != nil {
		t.Fatal(err)
	}
	slots := rec.Slots()
	users := rec.Users()
	if len(slots) != res.Slots {
		t.Fatalf("recorded %d slot events for %d slots", len(slots), res.Slots)
	}
	if len(users) != res.Slots*net.K() {
		t.Fatalf("recorded %d user events, want %d", len(users), res.Slots*net.K())
	}
	summary := rec.Summarize()
	if summary.Slots != res.Slots {
		t.Fatalf("summary slots %d", summary.Slots)
	}
	// GOP boundaries marked every T slots.
	gopDone := 0
	for _, e := range users {
		if e.GOPDone {
			gopDone++
		}
	}
	if gopDone != 3*net.K() {
		t.Fatalf("gop-done events %d, want %d", gopDone, 3*net.K())
	}
	// CSV output includes all rows.
	if got := strings.Count(rec.UserCSV(), "\n"); got != len(users)+1 {
		t.Fatalf("user CSV rows %d", got)
	}
}

// TestEstimatedUtilizationConverges: learning eta online costs little
// quality versus knowing it, and protection still holds over a long run.
func TestEstimatedUtilizationConverges(t *testing.T) {
	net := singleNet(t)
	var known, learned, coll float64
	const runs = 4
	for seed := uint64(1); seed <= runs; seed++ {
		a, err := Run(net, Options{Seed: seed, GOPs: 50})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(net, Options{Seed: seed, GOPs: 50, EstimateUtilization: true})
		if err != nil {
			t.Fatal(err)
		}
		known += a.MeanPSNR
		learned += b.MeanPSNR
		coll += b.CollisionRate
	}
	known /= runs
	learned /= runs
	coll /= runs
	if known-learned > 0.5 {
		t.Fatalf("learning eta costs %v dB (known %v, learned %v)", known-learned, known, learned)
	}
	if coll > net.Gamma+0.06 {
		t.Fatalf("estimated prior broke protection: %v", coll)
	}
}

// TestAntennaDiversity: fewer FBS antennas mean fewer sensing results per
// channel, weaker posteriors, and no better quality than full sensing.
func TestAntennaDiversity(t *testing.T) {
	mean := func(antennas int) float64 {
		cfg := netmodel.DefaultConfig()
		cfg.FBSAntennas = antennas
		net, err := netmodel.PaperSingleFBS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for seed := uint64(1); seed <= 4; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 15})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeanPSNR
		}
		return sum / 4
	}
	one := mean(1)
	full := mean(0) // 0 = all M antennas
	if one > full+0.3 {
		t.Fatalf("1 antenna (%v dB) beats full sensing (%v dB)", one, full)
	}
	// Validation: antenna counts beyond M are rejected.
	cfg := netmodel.DefaultConfig()
	cfg.FBSAntennas = cfg.M + 1
	if _, err := netmodel.PaperSingleFBS(cfg); err == nil {
		t.Fatal("antennas > M accepted")
	}
}

// TestFairnessClaim: the paper's Fig. 3 discussion — the proposed scheme
// distributes quality gains more evenly than Heuristic 2, whose
// multiuser-diversity grants starve the weakest user.
func TestFairnessClaim(t *testing.T) {
	net := singleNet(t)
	fairness := func(sch Scheme) float64 {
		sum := 0.0
		for seed := uint64(1); seed <= 5; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 15, Scheme: sch})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.FairnessIndex
		}
		return sum / 5
	}
	prop := fairness(Proposed)
	h2 := fairness(Heuristic2)
	if prop <= h2 {
		t.Fatalf("proposed fairness %v not above Heuristic 2's %v", prop, h2)
	}
	if prop < 1.0/3 || prop > 1 {
		t.Fatalf("fairness index %v outside [1/K, 1]", prop)
	}
}

// TestOFDMScenarioRuns: the frequency-selective PHY drives the full
// pipeline; diversity should not hurt quality at the same calibration.
func TestOFDMScenarioRuns(t *testing.T) {
	cfg := netmodel.DefaultConfig()
	cfg.OFDMSubcarriers = 16
	net, err := netmodel.PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, Options{Seed: 1, GOPs: 10})
	if err != nil {
		t.Fatal(err)
	}
	flatNet, err := netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Run(flatNet, Options{Seed: 1, GOPs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSNR < flat.MeanPSNR-0.5 {
		t.Fatalf("OFDM %v clearly below flat Rayleigh %v", res.MeanPSNR, flat.MeanPSNR)
	}
}

// TestSchemeFrontier: the fairness-efficiency frontier end to end —
// max-throughput posts the best mean, proportional fairness the best
// fairness, round robin trails on mean.
func TestSchemeFrontier(t *testing.T) {
	net := singleNet(t)
	type point struct{ mean, fair float64 }
	measure := func(sch Scheme) point {
		var p point
		for seed := uint64(1); seed <= 5; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 15, Scheme: sch})
			if err != nil {
				t.Fatal(err)
			}
			p.mean += res.MeanPSNR / 5
			p.fair += res.FairnessIndex / 5
		}
		return p
	}
	pf := measure(Proposed)
	mt := measure(MaxThroughput)
	rr := measure(RoundRobin)
	if pf.fair <= mt.fair {
		t.Fatalf("proportional fairness index %v not above max-throughput %v", pf.fair, mt.fair)
	}
	if rr.mean > pf.mean && rr.mean > mt.mean {
		t.Fatalf("blind round robin beats both informed schemes: %v", rr.mean)
	}
	t.Logf("mean/fairness: PF %.2f/%.3f, MaxTP %.2f/%.3f, RR %.2f/%.3f",
		pf.mean, pf.fair, mt.mean, mt.fair, rr.mean, rr.fair)
}
