package netmodel

import (
	"errors"
	"reflect"
	"testing"

	"femtocr/internal/video"
)

// TestNewNetworkReproducesLegacyConstructors pins the redesign contract:
// the spec-driven entry point must build byte-identical networks to the
// constructors it replaces, so deprecated wrappers change nothing.
func TestNewNetworkReproducesLegacyConstructors(t *testing.T) {
	cfg := DefaultConfig()
	trio := video.PaperTrio()

	legacySingle, err := PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specSingle, err := NewNetwork(cfg, PaperSingleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacySingle, specSingle) {
		t.Fatal("PaperSingleSpec network differs from PaperSingleFBS")
	}

	legacyPath, err := PaperInterfering(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specPath, err := NewNetwork(cfg, PaperInterferingSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyPath, specPath) {
		t.Fatal("PaperInterferingSpec network differs from PaperInterfering")
	}

	groups := [][]video.Sequence{trio[:], trio[:]}
	legacyNon, err := NonInterfering(cfg, groups)
	if err != nil {
		t.Fatal(err)
	}
	specNon, err := NewNetwork(cfg, NonInterferingSpec(groups))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyNon, specNon) {
		t.Fatal("NonInterferingSpec network differs from NonInterfering")
	}
}

func TestMetroGridDecomposesIntoBlocks(t *testing.T) {
	cfg := DefaultConfig()
	spec := MetroGridSpec(2, 3, 2) // 6 blocks of 3 FBSs, 2 users each
	net, err := NewNetwork(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumFBS != 18 {
		t.Fatalf("NumFBS=%d, want 18", net.NumFBS)
	}
	if net.K() != 36 {
		t.Fatalf("K=%d, want 36", net.K())
	}
	comps := net.Graph.Components()
	if len(comps) != 6 {
		t.Fatalf("%d components, want 6 blocks", len(comps))
	}
	for ci, comp := range comps {
		if len(comp) != 3 {
			t.Fatalf("block %d has %d FBSs, want 3", ci, len(comp))
		}
	}
	// Each block is the paper's path: 2 edges per 3-FBS block, no more.
	if got, want := net.Graph.NumEdges(), 6*2; got != want {
		t.Fatalf("%d edges, want %d (a path per block)", got, want)
	}
}

func TestMetroPoissonDeterministicAndSized(t *testing.T) {
	cfg := DefaultConfig()
	spec := MetroPoissonSpec(40, 2)
	a, err := NewNetwork(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetwork(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("metro poisson network is not reproducible from the seed")
	}
	if a.NumFBS != 40 || a.K() != 80 {
		t.Fatalf("NumFBS=%d K=%d, want 40/80", a.NumFBS, a.K())
	}

	// A different seed moves the layout.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c, err := NewNetwork(cfg2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Users[0].Pos, c.Users[0].Pos) {
		t.Fatal("seed change did not move the Poisson layout")
	}
}

func TestGeneratedLoadRotatesPool(t *testing.T) {
	cfg := DefaultConfig()
	pool := video.PaperTrio()
	spec := TopologySpec{Kind: KindMetroGrid, Rows: 1, Cols: 2, FBSPerBlock: 1,
		UsersPerFBS: 2, VideoPool: pool[:]}
	net, err := NewNetwork(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{pool[0].Name, pool[1].Name, pool[2].Name, pool[0].Name}
	for j, u := range net.Users {
		if u.Seq.Name != wantNames[j] {
			t.Fatalf("user %d streams %s, want %s", j, u.Seq.Name, wantNames[j])
		}
	}
}

func TestTopologySpecErrors(t *testing.T) {
	cfg := DefaultConfig()
	cases := []TopologySpec{
		{},                          // no kind
		{Kind: KindMetroGrid},       // no grid dims
		{Kind: KindMetroPoisson},    // no FBS count
		{Kind: KindInterferingPath}, // neither Videos nor FBSs
		{Kind: KindMetroPoisson, FBSs: 2, Videos: make([][]video.Sequence, 3)}, // mismatched load
	}
	for i, spec := range cases {
		if _, err := NewNetwork(cfg, spec); !errors.Is(err, ErrBadNetwork) {
			t.Errorf("case %d: err=%v, want ErrBadNetwork", i, err)
		}
	}
}

func TestTopologyKindString(t *testing.T) {
	kinds := []TopologyKind{KindSingle, KindNonInterferingLine, KindInterferingPath,
		KindMetroGrid, KindMetroPoisson, TopologyKind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
}
