package netmodel

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/video"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.M != 8 || cfg.P01 != 0.4 || cfg.P10 != 0.3 || cfg.Gamma != 0.2 ||
		cfg.Eps != 0.3 || cfg.Delta != 0.3 || cfg.T != 10 || cfg.GOP != 16 {
		t.Fatalf("defaults deviate from §V: %+v", cfg)
	}
	if got := cfg.Utilization(); math.Abs(got-0.4/0.7) > 1e-12 {
		t.Fatalf("eta = %v, want 4/7", got)
	}
}

func TestWithUtilization(t *testing.T) {
	cfg := DefaultConfig()
	for _, eta := range []float64{0.3, 0.5, 0.7} {
		c2, err := cfg.WithUtilization(eta)
		if err != nil {
			t.Fatal(err)
		}
		if got := c2.Utilization(); math.Abs(got-eta) > 1e-12 {
			t.Fatalf("eta = %v, want %v", got, eta)
		}
		if c2.P10 != cfg.P10 {
			t.Fatal("P10 must stay fixed")
		}
	}
	if _, err := cfg.WithUtilization(0.99); err == nil {
		t.Fatal("infeasible eta accepted")
	}
}

func TestPaperSingleFBS(t *testing.T) {
	n, err := PaperSingleFBS(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n.NumFBS != 1 || n.K() != 3 {
		t.Fatalf("N=%d K=%d, want 1 and 3", n.NumFBS, n.K())
	}
	if n.Graph.NumEdges() != 0 {
		t.Fatal("single FBS cannot interfere")
	}
	wantSeqs := []string{"Bus", "Mobile", "Harbor"}
	for i, u := range n.Users {
		if u.Seq.Name != wantSeqs[i] {
			t.Fatalf("user %d streams %q, want %q", i, u.Seq.Name, wantSeqs[i])
		}
		if u.FBS != 1 {
			t.Fatalf("user %d served by FBS %d", i, u.FBS)
		}
	}
}

// TestLinkQualityOrdering: on average femto links must be clearly stronger
// than the macro link — the premise of femtocell deployment. Individual
// users can deviate because of shadowing.
func TestLinkQualityOrdering(t *testing.T) {
	cfg := DefaultConfig()
	var fbsLoss, mbsLoss float64
	count := 0
	for seed := uint64(1); seed <= 30; seed++ {
		cfg.Seed = seed
		n, err := PaperSingleFBS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range n.Users {
			fl, ml := u.FBSLink.LossProbability(), u.MBSLink.LossProbability()
			if fl < 0 || fl > 1 || ml < 0 || ml > 1 {
				t.Fatalf("user %d: degenerate losses %v, %v", u.ID, fl, ml)
			}
			fbsLoss += fl
			mbsLoss += ml
			count++
		}
	}
	fbsLoss /= float64(count)
	mbsLoss /= float64(count)
	if fbsLoss >= mbsLoss {
		t.Fatalf("mean FBS loss %v >= mean MBS loss %v", fbsLoss, mbsLoss)
	}
	if fbsLoss > 0.35 {
		t.Fatalf("mean femto loss %v too high", fbsLoss)
	}
	if mbsLoss < 0.1 || mbsLoss > 0.8 {
		t.Fatalf("mean macro loss %v outside plausible band", mbsLoss)
	}
}

func TestPaperInterfering(t *testing.T) {
	n, err := PaperInterfering(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n.NumFBS != 3 || n.K() != 9 {
		t.Fatalf("N=%d K=%d, want 3 and 9", n.NumFBS, n.K())
	}
	// Fig. 5: path graph 1-2-3.
	if !n.Graph.HasEdge(0, 1) || !n.Graph.HasEdge(1, 2) || n.Graph.HasEdge(0, 2) {
		t.Fatalf("interference graph is not the Fig. 5 path:\n%s", n.Graph)
	}
	if n.Graph.MaxDegree() != 2 {
		t.Fatalf("Dmax = %d, want 2", n.Graph.MaxDegree())
	}
	for i := 1; i <= 3; i++ {
		if got := len(n.UsersOf(i)); got != 3 {
			t.Fatalf("FBS %d serves %d users, want 3", i, got)
		}
	}
}

func TestNonInterfering(t *testing.T) {
	trio := video.PaperTrio()
	n, err := NonInterfering(DefaultConfig(), [][]video.Sequence{trio[:], trio[:]})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumFBS != 2 || n.Graph.NumEdges() != 0 {
		t.Fatalf("non-interfering deployment has %d edges", n.Graph.NumEdges())
	}
}

func TestPlacementDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a, err := PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Users {
		if a.Users[i].Pos != b.Users[i].Pos {
			t.Fatalf("user %d placed differently across builds with same seed", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, err := PaperSingleFBS(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Users {
		if a.Users[i].Pos == c.Users[i].Pos {
			same++
		}
	}
	if same == len(a.Users) {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestValidateRejectsBadNetworks(t *testing.T) {
	n, err := PaperSingleFBS(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mod  func(*Network)
	}{
		{"nil band", func(n *Network) { n.Band = nil }},
		{"zero fbs", func(n *Network) { n.NumFBS = 0 }},
		{"graph mismatch", func(n *Network) { n.NumFBS = 2 }},
		{"no users", func(n *Network) { n.Users = nil }},
		{"bad gamma", func(n *Network) { n.Gamma = 1.5 }},
		{"bad T", func(n *Network) { n.T = 0 }},
		{"bad GOP", func(n *Network) { n.GOPSize = 0 }},
		{"user bad fbs", func(n *Network) { n.Users[0].FBS = 5 }},
		{"user bad video", func(n *Network) { n.Users[0].Seq.RD.Beta = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cp := *n
			cp.Users = append([]User(nil), n.Users...)
			c.mod(&cp)
			if err := cp.Validate(); err == nil {
				t.Fatal("invalid network accepted")
			}
		})
	}
}

func TestBuildRejectsMismatchedGroups(t *testing.T) {
	trio := video.PaperTrio()
	_, err := InterferingPath(DefaultConfig(), [][]video.Sequence{trio[:]})
	if err != nil {
		t.Fatal(err) // one group is fine
	}
	cfg := DefaultConfig()
	cfg.M = 0
	if _, err := PaperSingleFBS(cfg); err == nil {
		t.Fatal("M=0 accepted")
	}
	cfg = DefaultConfig()
	cfg.Eps = 1.0
	if _, err := PaperSingleFBS(cfg); err == nil {
		t.Fatal("epsilon=1 accepted")
	}
	cfg = DefaultConfig()
	cfg.P01 = -1
	if _, err := PaperSingleFBS(cfg); err == nil {
		t.Fatal("bad Markov chain accepted")
	}
}

func TestUsersInsideCoverage(t *testing.T) {
	n, err := PaperInterfering(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, u := range n.Users {
		// Users are placed inside their femtocell, so the FBS distance is
		// at most the coverage radius.
		center := 1.5 * cfg.FemtoRadius * float64(u.FBS-1)
		d := math.Hypot(u.Pos.X-center, u.Pos.Y)
		if d > cfg.FemtoRadius+1e-9 {
			t.Fatalf("user %d at distance %v from its FBS (radius %v)", u.ID, d, cfg.FemtoRadius)
		}
	}
}

func TestErrBadNetworkWrapped(t *testing.T) {
	n, err := PaperSingleFBS(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.Gamma = -1
	if err := n.Validate(); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("err = %v, want ErrBadNetwork", err)
	}
}

func TestHeterogeneousEta(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeterogeneousEta = []float64{0.2, 0.4, 0.6}
	n, err := PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Band.M() != 3 {
		t.Fatalf("M = %d, want 3 from HeterogeneousEta", n.Band.M())
	}
	for i, want := range cfg.HeterogeneousEta {
		if got := n.Band.Utilization(i + 1); math.Abs(got-want) > 1e-12 {
			t.Fatalf("channel %d eta %v, want %v", i+1, got, want)
		}
	}
	// Infeasible utilization for the fixed P10.
	cfg.HeterogeneousEta = []float64{0.95}
	if _, err := PaperSingleFBS(cfg); err == nil {
		t.Fatal("infeasible heterogeneous eta accepted")
	}
}

func TestOFDMLinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OFDMSubcarriers = 16
	n, err := PaperSingleFBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range n.Users {
		if u.FBSLink.Model().Name() == "rayleigh" {
			t.Fatal("OFDM config still built Rayleigh links")
		}
		p := u.FBSLink.LossProbability()
		if p < 0 || p > 1 {
			t.Fatalf("OFDM loss probability %v", p)
		}
	}
	// Frequency diversity: at the same calibration, femto links should be
	// at least as reliable as under flat Rayleigh on average.
	flat, err := PaperSingleFBS(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ofdmLoss, flatLoss float64
	for j := range n.Users {
		ofdmLoss += n.Users[j].FBSLink.LossProbability()
		flatLoss += flat.Users[j].FBSLink.LossProbability()
	}
	if ofdmLoss > flatLoss {
		t.Fatalf("OFDM mean femto loss %v above flat %v: no diversity gain", ofdmLoss/3, flatLoss/3)
	}
	if _, err := PaperSingleFBS(func() Config { c := DefaultConfig(); c.OFDMSubcarriers = 8; c.OFDMCorrelation = -1; return c }()); err == nil {
		t.Fatal("bad OFDM correlation accepted")
	}
}
