// Package netmodel assembles the paper's femtocell CR network (§III-A,
// Fig. 1): one MBS on the common channel, N FBSs opportunistically using M
// licensed channels, and K CR users each associated with the nearest FBS and
// streaming one MGS video. It provides the deployment scenarios used in the
// evaluation (§V): a single FBS, multiple non-interfering FBSs, and the
// three-FBS interfering path of Fig. 5.
package netmodel

import (
	"errors"
	"fmt"
	"math"

	"femtocr/internal/fading"
	"femtocr/internal/geometry"
	"femtocr/internal/igraph"
	"femtocr/internal/markov"
	"femtocr/internal/ofdm"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
	"femtocr/internal/spectrum"
	"femtocr/internal/video"
)

// ErrBadNetwork is returned when a network fails validation.
var ErrBadNetwork = errors.New("netmodel: invalid network")

// User is one CR subscriber: a position, a serving FBS, a video stream, and
// the two wireless links it can receive on.
type User struct {
	ID      int // global index, 0-based
	FBS     int // serving femtocell, 1-based
	Pos     geometry.Point
	Seq     video.Sequence
	MBSLink fading.Link // downlink from the MBS on the common channel
	FBSLink fading.Link // downlink from the serving FBS on licensed channels
}

// Network is a fully specified femtocell CR network scenario.
type Network struct {
	Band     *spectrum.Band
	NumFBS   int
	Graph    *igraph.Graph // interference graph over the FBSs
	Users    []User
	Gamma    float64          // collision threshold of eq. (6)
	Detector sensing.Detector // sensing error model shared by sensors
	T        int              // GOP delivery deadline in slots
	GOPSize  int              // frames per GOP (16 in the paper)
	// FBSAntennas is how many licensed channels each FBS can sense per
	// slot. The paper equips FBSs with M antennas (sense everything);
	// values below M rotate coverage across slots. 0 means M.
	FBSAntennas int
}

// Validate checks structural consistency.
func (n *Network) Validate() error {
	if n.Band == nil {
		return fmt.Errorf("%w: nil band", ErrBadNetwork)
	}
	if n.NumFBS < 1 {
		return fmt.Errorf("%w: %d FBSs", ErrBadNetwork, n.NumFBS)
	}
	if n.Graph == nil || n.Graph.N() != n.NumFBS {
		return fmt.Errorf("%w: interference graph does not match %d FBSs", ErrBadNetwork, n.NumFBS)
	}
	if len(n.Users) == 0 {
		return fmt.Errorf("%w: no users", ErrBadNetwork)
	}
	for _, u := range n.Users {
		if u.FBS < 1 || u.FBS > n.NumFBS {
			return fmt.Errorf("%w: user %d served by FBS %d of %d", ErrBadNetwork, u.ID, u.FBS, n.NumFBS)
		}
		if err := u.Seq.RD.Validate(); err != nil {
			return fmt.Errorf("user %d: %w", u.ID, err)
		}
	}
	if n.Gamma < 0 || n.Gamma > 1 {
		return fmt.Errorf("%w: gamma=%v", ErrBadNetwork, n.Gamma)
	}
	if n.T < 1 {
		return fmt.Errorf("%w: deadline T=%d", ErrBadNetwork, n.T)
	}
	if n.GOPSize < 1 {
		return fmt.Errorf("%w: GOP size %d", ErrBadNetwork, n.GOPSize)
	}
	if n.FBSAntennas < 0 || n.FBSAntennas > n.Band.M() {
		return fmt.Errorf("%w: %d FBS antennas for %d channels", ErrBadNetwork, n.FBSAntennas, n.Band.M())
	}
	return nil
}

// AntennasPerFBS returns the effective per-FBS antenna count (M when the
// field is zero).
func (n *Network) AntennasPerFBS() int {
	if n.FBSAntennas == 0 {
		return n.Band.M()
	}
	return n.FBSAntennas
}

// K returns the number of users.
func (n *Network) K() int { return len(n.Users) }

// UsersOf returns the users served by FBS i (1-based).
func (n *Network) UsersOf(i int) []User {
	var out []User
	for _, u := range n.Users {
		if u.FBS == i {
			out = append(out, u)
		}
	}
	return out
}

// Config collects the scenario parameters of §V with the paper's defaults.
type Config struct {
	M     int     // licensed channels
	B0    float64 // common-channel capacity, Mbps
	B1    float64 // licensed-channel capacity, Mbps
	P01   float64 // idle-to-busy transition probability
	P10   float64 // busy-to-idle transition probability
	Gamma float64 // collision threshold
	Eps   float64 // sensing false-alarm probability
	Delta float64 // sensing miss-detection probability
	T     int     // GOP delivery deadline, slots
	GOP   int     // GOP size, frames

	// Radio model. Links are calibrated by the mean SINR a user sees at
	// the nominal distance, then adjusted per user by log-distance path
	// loss relative to that nominal distance and by log-normal shadowing.
	MBSMeanSINRdB float64 // macro link SINR at the cluster distance
	FBSMeanSINRdB float64 // femto link SINR at 0.7x the coverage radius
	ThresholdDB   float64 // SINR decoding threshold H of eq. (8)
	ShadowStdDB   float64 // per-link log-normal shadowing, dB
	PathLossExp   float64 // log-distance path-loss exponent
	FemtoRadius   float64 // femtocell coverage radius, meters
	MBSDistance   float64 // distance from the MBS to the femtocell cluster, m

	// FBSAntennas is how many licensed channels each FBS senses per slot;
	// 0 means all M (the paper's assumption).
	FBSAntennas int

	// OFDMSubcarriers, when positive, replaces flat Rayleigh links with the
	// frequency-selective OFDM model of internal/ofdm: that many correlated
	// subcarriers per channel, packet success by EESM effective SINR.
	OFDMSubcarriers int
	// OFDMCorrelation is the adjacent-subcarrier amplitude correlation
	// (default 0.5 when OFDM is on).
	OFDMCorrelation float64
	// OFDMBetaDB is the EESM calibration factor (default 5 dB).
	OFDMBetaDB float64

	// HeterogeneousEta optionally gives each licensed channel its own
	// utilization (overriding P01 while keeping P10); its length then
	// defines M. Nil means all channels share the P01/P10 chain.
	HeterogeneousEta []float64

	// Seed controls user placement; channel and fading randomness comes
	// from the per-run stream instead, so positions stay fixed across runs.
	Seed uint64
}

// DefaultConfig returns the paper's §V defaults: M=8, P01=0.4, P10=0.3,
// gamma=0.2, epsilon=delta=0.3, T=10, GOP=16, B0=B1=0.3 Mbps, plus radio
// parameters giving femto links a clear SINR advantage over the macro link.
func DefaultConfig() Config {
	return Config{
		M:     8,
		B0:    0.3,
		B1:    0.3,
		P01:   0.4,
		P10:   0.3,
		Gamma: 0.2,
		Eps:   0.3,
		Delta: 0.3,
		T:     10,
		GOP:   16,

		MBSMeanSINRdB: 10, // distant macro downlink
		FBSMeanSINRdB: 16, // short femto downlink
		ThresholdDB:   5,
		ShadowStdDB:   6,
		PathLossExp:   3,
		FemtoRadius:   12,
		MBSDistance:   800,

		Seed: 1,
	}
}

// Utilization returns the licensed-channel utilization eta implied by the
// config, eq. (1).
func (c Config) Utilization() float64 { return c.P01 / (c.P01 + c.P10) }

// WithUtilization returns a copy of the config retuned to the target eta,
// keeping P10 fixed (the Fig. 4(c)/6(a) sweep).
func (c Config) WithUtilization(eta float64) (Config, error) {
	chain, err := markov.FromUtilization(eta, c.P10)
	if err != nil {
		return c, err
	}
	c.P01 = chain.P01()
	return c, nil
}

// build assembles a network from a list of femtocell coverage disks and the
// per-FBS video lists.
func build(cfg Config, disks []geometry.Disk, videosPerFBS [][]video.Sequence) (*Network, error) {
	if len(disks) != len(videosPerFBS) {
		return nil, fmt.Errorf("%w: %d femtocells but %d video groups", ErrBadNetwork, len(disks), len(videosPerFBS))
	}
	var band *spectrum.Band
	if len(cfg.HeterogeneousEta) > 0 {
		chains := make([]markov.Chain, len(cfg.HeterogeneousEta))
		for i, eta := range cfg.HeterogeneousEta {
			c, err := markov.FromUtilization(eta, cfg.P10)
			if err != nil {
				return nil, fmt.Errorf("channel %d: %w", i+1, err)
			}
			chains[i] = c
		}
		var err error
		band, err = spectrum.NewHeterogeneousBand(cfg.B0, cfg.B1, chains)
		if err != nil {
			return nil, err
		}
	} else {
		chain, err := markov.NewChain(cfg.P01, cfg.P10)
		if err != nil {
			return nil, err
		}
		band, err = spectrum.NewBand(cfg.M, cfg.B0, cfg.B1, chain)
		if err != nil {
			return nil, err
		}
	}
	det, err := sensing.NewDetector(cfg.Eps, cfg.Delta)
	if err != nil {
		return nil, err
	}

	placement := rng.New(cfg.Seed).Split("netmodel/placement")
	mbsPos := geometry.Point{X: -cfg.MBSDistance, Y: 0}

	// Per-user mean SINR: the configured nominal SINR, corrected by
	// log-distance path loss relative to the nominal distance, plus
	// log-normal shadowing. Shadowing is drawn from the placement stream so
	// it is fixed per scenario and varies only with the seed.
	meanSINR := func(nominal, nominalDist, dist, shadow float64) float64 {
		if dist < 1 {
			dist = 1
		}
		return nominal - 10*cfg.PathLossExp*math.Log10(dist/nominalDist) + shadow
	}

	// Optional frequency-selective PHY: one shared OFDM channel profile;
	// per-link gain models are built at the link's operating SINR.
	var ofdmChannel *ofdm.Channel
	if cfg.OFDMSubcarriers > 0 {
		corr := cfg.OFDMCorrelation
		if corr == 0 {
			corr = 0.5
		}
		beta := cfg.OFDMBetaDB
		if beta == 0 {
			beta = 5
		}
		var err error
		ofdmChannel, err = ofdm.NewChannel(cfg.OFDMSubcarriers, corr, beta)
		if err != nil {
			return nil, err
		}
	}
	makeLink := func(sinrDB float64, stream *rng.Stream) (fading.Link, error) {
		if ofdmChannel == nil {
			return fading.NewLink(sinrDB, cfg.ThresholdDB, fading.Rayleigh{})
		}
		model, err := ofdm.NewGainModel(ofdmChannel, sinrDB, 4000, stream)
		if err != nil {
			return fading.Link{}, err
		}
		return fading.NewLink(sinrDB, cfg.ThresholdDB, model)
	}

	var users []User
	id := 0
	for i, disk := range disks {
		stream := placement.SplitIndex("fbs", i)
		for _, seq := range videosPerFBS[i] {
			pos := disk.RandomInside(stream)
			mbsSINR := meanSINR(cfg.MBSMeanSINRdB, cfg.MBSDistance, pos.Dist(mbsPos),
				stream.Normal(0, cfg.ShadowStdDB))
			fbsSINR := meanSINR(cfg.FBSMeanSINRdB, 0.7*cfg.FemtoRadius, pos.Dist(disk.Center),
				stream.Normal(0, cfg.ShadowStdDB))
			mbsLink, err := makeLink(mbsSINR, stream.SplitIndex("ofdm-mbs", id))
			if err != nil {
				return nil, err
			}
			fbsLink, err := makeLink(fbsSINR, stream.SplitIndex("ofdm-fbs", id))
			if err != nil {
				return nil, err
			}
			users = append(users, User{
				ID:      id,
				FBS:     i + 1,
				Pos:     pos,
				Seq:     seq,
				MBSLink: mbsLink,
				FBSLink: fbsLink,
			})
			id++
		}
	}

	n := &Network{
		Band:        band,
		NumFBS:      len(disks),
		Graph:       igraph.FromCoverage(disks),
		Users:       users,
		Gamma:       cfg.Gamma,
		Detector:    det,
		T:           cfg.T,
		GOPSize:     cfg.GOP,
		FBSAntennas: cfg.FBSAntennas,
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// SingleFBS builds the paper's first scenario: one FBS streaming one video
// per user (Bus, Mobile, Harbor to three users by default). Equivalent to
// NewNetwork with SingleSpec.
func SingleFBS(cfg Config, videos []video.Sequence) (*Network, error) {
	return NewNetwork(cfg, SingleSpec(videos))
}

// NonInterfering builds N femtocells spaced far apart (no coverage overlap),
// the Table II case: the interference graph is edgeless. Equivalent to
// NewNetwork with NonInterferingSpec.
func NonInterfering(cfg Config, videosPerFBS [][]video.Sequence) (*Network, error) {
	return NewNetwork(cfg, NonInterferingSpec(videosPerFBS))
}

// InterferingPath builds the §V-B scenario: N femtocells on a line with
// adjacent coverage overlap, so the interference graph is the path of
// Fig. 5 (FBS 1 - FBS 2 - FBS 3 for N=3). Equivalent to NewNetwork with
// InterferingPathSpec.
func InterferingPath(cfg Config, videosPerFBS [][]video.Sequence) (*Network, error) {
	return NewNetwork(cfg, InterferingPathSpec(videosPerFBS))
}

// PaperSingleFBS is the exact single-FBS scenario of §V-A: three users
// receiving Bus, Mobile and Harbor.
func PaperSingleFBS(cfg Config) (*Network, error) {
	return NewNetwork(cfg, PaperSingleSpec())
}

// PaperInterfering is the exact interfering scenario of §V-B: three FBSs in
// a path, three users each, each FBS streaming three different videos.
func PaperInterfering(cfg Config) (*Network, error) {
	return NewNetwork(cfg, PaperInterferingSpec())
}
