package netmodel

import "fmt"

// Shard is one independent coordination domain of a deployment: a connected
// component of the interference graph together with the users its FBSs
// serve. Components never share licensed-channel interference, and the
// sharded engine gives each its own MBS capacity slice and sensing-fusion
// domain, so shards simulate independently (see sim.RunSharded).
type Shard struct {
	// Component is the index of this shard in Graph.Components() order
	// (ascending by smallest FBS member).
	Component int
	// FBSs lists the original 1-based FBS ids of the component, ascending.
	FBSs []int
	// Users lists the original indices into Network.Users served by those
	// FBSs, ascending.
	Users []int

	// net is the prebuilt sub-network for the trivial single-component
	// partition, where the shard IS the parent network.
	net *Network
}

// Partition decomposes the network into shards, one per connected component
// of the interference graph, ordered as Graph.Components() orders them.
// The sub-networks themselves are materialized lazily by Subnetwork, so a
// metro-scale partition costs O(N + K) ints up front, not a copy of every
// user. A connected network yields a single shard whose Subnetwork is the
// network itself.
func (n *Network) Partition() ([]Shard, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	comps := n.Graph.Components()
	shards := make([]Shard, len(comps))
	if len(comps) == 1 {
		shards[0] = Shard{Component: 0, FBSs: fbsIDs(comps[0]), Users: userIndices(n.K()), net: n}
		return shards, nil
	}
	// compOf maps each 0-based FBS vertex to its component index.
	compOf := make([]int, n.NumFBS)
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	for ci, comp := range comps {
		shards[ci] = Shard{Component: ci, FBSs: fbsIDs(comp)}
	}
	// One pass over the users keeps partitioning O(K) instead of the
	// O(components*K) of repeated UsersOf scans; ascending user order is
	// preserved within every shard.
	for j := range n.Users {
		ci := compOf[n.Users[j].FBS-1]
		shards[ci].Users = append(shards[ci].Users, j)
	}
	for ci := range shards {
		if len(shards[ci].Users) == 0 {
			return nil, fmt.Errorf("%w: component %d (FBSs %v) serves no users", ErrBadNetwork, ci, shards[ci].FBSs)
		}
	}
	return shards, nil
}

// fbsIDs converts 0-based sorted component vertices to 1-based FBS ids.
func fbsIDs(comp []int) []int {
	out := make([]int, len(comp))
	for i, v := range comp {
		out[i] = v + 1
	}
	return out
}

// userIndices returns 0..k-1.
func userIndices(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// Subnetwork materializes the shard as a standalone Network: FBS ids are
// renumbered 1..len(FBSs) in ascending original order, users are renumbered
// 0..k-1 in ascending original order, and the interference graph is the
// induced component subgraph. Band and Detector are shared with the parent
// (both are read-only during simulation, safe for concurrent engines). For
// the single-component partition the parent network itself is returned.
func (n *Network) Subnetwork(s *Shard) (*Network, error) {
	if s.net != nil {
		return s.net, nil
	}
	// newFBS maps original 0-based vertices to the shard's 1-based ids.
	newFBS := make([]int, n.NumFBS)
	vertices := make([]int, len(s.FBSs))
	for i, f := range s.FBSs {
		if f < 1 || f > n.NumFBS {
			return nil, fmt.Errorf("%w: shard FBS %d of %d", ErrBadNetwork, f, n.NumFBS)
		}
		newFBS[f-1] = i + 1
		vertices[i] = f - 1
	}
	sub, err := n.Graph.Subgraph(vertices)
	if err != nil {
		return nil, err
	}
	users := make([]User, len(s.Users))
	for localID, j := range s.Users {
		if j < 0 || j >= len(n.Users) {
			return nil, fmt.Errorf("%w: shard user %d of %d", ErrBadNetwork, j, len(n.Users))
		}
		u := n.Users[j]
		u.ID = localID
		u.FBS = newFBS[u.FBS-1]
		if u.FBS == 0 {
			return nil, fmt.Errorf("%w: user %d served by FBS outside the shard", ErrBadNetwork, j)
		}
		users[localID] = u
	}
	return &Network{
		Band:        n.Band,
		NumFBS:      len(s.FBSs),
		Graph:       sub,
		Users:       users,
		Gamma:       n.Gamma,
		Detector:    n.Detector,
		T:           n.T,
		GOPSize:     n.GOPSize,
		FBSAntennas: n.FBSAntennas,
	}, nil
}
