package netmodel

import (
	"reflect"
	"testing"

	"femtocr/internal/video"
)

func TestPartitionConnectedIsIdentity(t *testing.T) {
	net, err := PaperInterfering(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	shards, err := net.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 {
		t.Fatalf("%d shards for a connected network, want 1", len(shards))
	}
	sub, err := net.Subnetwork(&shards[0])
	if err != nil {
		t.Fatal(err)
	}
	if sub != net {
		t.Fatal("single-component Subnetwork must return the parent network itself")
	}
	if !reflect.DeepEqual(shards[0].FBSs, []int{1, 2, 3}) {
		t.Fatalf("shard FBSs %v", shards[0].FBSs)
	}
	if len(shards[0].Users) != net.K() {
		t.Fatalf("shard users %d, want %d", len(shards[0].Users), net.K())
	}
}

func TestPartitionNonInterfering(t *testing.T) {
	trio := video.PaperTrio()
	net, err := NonInterfering(DefaultConfig(), [][]video.Sequence{trio[:], trio[:1], trio[1:]})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := net.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("%d shards, want 3 isolated FBSs", len(shards))
	}
	wantUsers := []int{3, 1, 2}
	for ci, s := range shards {
		if s.Component != ci {
			t.Fatalf("shard %d has Component=%d", ci, s.Component)
		}
		if !reflect.DeepEqual(s.FBSs, []int{ci + 1}) {
			t.Fatalf("shard %d FBSs %v", ci, s.FBSs)
		}
		if len(s.Users) != wantUsers[ci] {
			t.Fatalf("shard %d has %d users, want %d", ci, len(s.Users), wantUsers[ci])
		}
		sub, err := net.Subnetwork(&s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("shard %d sub-network invalid: %v", ci, err)
		}
		if sub.NumFBS != 1 || sub.Graph.N() != 1 || sub.Graph.NumEdges() != 0 {
			t.Fatalf("shard %d sub-network shape: FBSs=%d edges=%d", ci, sub.NumFBS, sub.Graph.NumEdges())
		}
		for localID, j := range s.Users {
			got := sub.Users[localID]
			orig := net.Users[j]
			if got.ID != localID || got.FBS != 1 {
				t.Fatalf("shard %d user %d remap: ID=%d FBS=%d", ci, localID, got.ID, got.FBS)
			}
			if got.Pos != orig.Pos || got.Seq.Name != orig.Seq.Name {
				t.Fatalf("shard %d user %d lost identity", ci, localID)
			}
		}
		if sub.Band != net.Band {
			t.Fatalf("shard %d does not share the parent band", ci)
		}
	}
}

func TestPartitionMetroCoversEveryUserOnce(t *testing.T) {
	net, err := NewNetwork(DefaultConfig(), MetroPoissonSpec(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := net.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) < 2 {
		t.Fatalf("metro poisson collapsed to %d component(s); layout density is off", len(shards))
	}
	seenUser := make([]bool, net.K())
	seenFBS := make([]bool, net.NumFBS+1)
	for _, s := range shards {
		for _, j := range s.Users {
			if seenUser[j] {
				t.Fatalf("user %d in two shards", j)
			}
			seenUser[j] = true
		}
		for _, f := range s.FBSs {
			if seenFBS[f] {
				t.Fatalf("FBS %d in two shards", f)
			}
			seenFBS[f] = true
		}
	}
	for j, ok := range seenUser {
		if !ok {
			t.Fatalf("user %d in no shard", j)
		}
	}
}

func TestPartitionPreservesInducedEdges(t *testing.T) {
	// A 1x2 metro grid with 3-FBS blocks: components {1,2,3} and {4,5,6},
	// each an induced path.
	net, err := NewNetwork(DefaultConfig(), MetroGridSpec(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := net.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("%d shards, want 2 blocks", len(shards))
	}
	for ci := range shards {
		sub, err := net.Subnetwork(&shards[ci])
		if err != nil {
			t.Fatal(err)
		}
		if sub.Graph.N() != 3 || sub.Graph.NumEdges() != 2 ||
			!sub.Graph.HasEdge(0, 1) || !sub.Graph.HasEdge(1, 2) || sub.Graph.HasEdge(0, 2) {
			t.Fatalf("shard %d induced graph is not the 3-path: %v", ci, sub.Graph.Edges())
		}
	}
}
