package netmodel

import (
	"fmt"
	"math"

	"femtocr/internal/geometry"
	"femtocr/internal/rng"
	"femtocr/internal/video"
)

// TopologyKind selects a deployment layout for NewNetwork.
type TopologyKind int

const (
	// KindSingle is the paper's §V-A scenario: one FBS at the origin.
	KindSingle TopologyKind = iota + 1
	// KindNonInterferingLine places FBSs on a line spaced 4R apart, so no
	// coverage overlaps and the interference graph is edgeless (Table II).
	KindNonInterferingLine
	// KindInterferingPath places FBSs on a line spaced 1.5R apart, so
	// adjacent coverage overlaps and the interference graph is the path of
	// Fig. 5.
	KindInterferingPath
	// KindMetroGrid tiles a city with Rows x Cols blocks. Each block holds
	// FBSPerBlock femtocells in a 1.5R-spaced row (the paper's interfering
	// path), and blocks are separated by streets wide enough that coverage
	// never crosses a block boundary: the interference graph decomposes
	// into exactly Rows*Cols path components.
	KindMetroGrid
	// KindMetroPoisson scatters FBSs centers uniformly at random over a
	// Width x Height area. Interference clusters — the connected components
	// of the coverage-overlap graph — emerge from the spatial density.
	KindMetroPoisson
)

// String names the kind for diagnostics.
func (k TopologyKind) String() string {
	switch k {
	case KindSingle:
		return "single"
	case KindNonInterferingLine:
		return "noninterfering-line"
	case KindInterferingPath:
		return "interfering-path"
	case KindMetroGrid:
		return "metro-grid"
	case KindMetroPoisson:
		return "metro-poisson"
	default:
		return fmt.Sprintf("TopologyKind(%d)", int(k))
	}
}

// DefaultUsersPerFBS is the generated per-FBS video load when a metro spec
// leaves UsersPerFBS zero — three streams per cell, matching the paper's
// per-FBS load in §V.
const DefaultUsersPerFBS = 3

// defaultPoissonAreaPerFBS is the square meters of city allotted to each
// FBS when a Poisson spec leaves Width/Height zero. At the paper's 12 m
// coverage radius this density (~555 FBS/km^2) sits near the percolation
// point of the overlap graph, producing a realistic mix of isolated cells
// and small interference clusters.
const defaultPoissonAreaPerFBS = 1800.0

// TopologySpec declares a deployment for NewNetwork: a layout kind plus
// either an explicit per-FBS video list or a generated per-FBS load.
// The zero value is invalid; use the *Spec constructors for common cases.
type TopologySpec struct {
	// Kind selects the layout.
	Kind TopologyKind

	// Videos, when non-nil, explicitly lists the sequences streamed by each
	// FBS (one inner slice per FBS, one user per sequence). Its length then
	// fixes the FBS count for the line kinds; the metro kinds require the
	// length to match their generated cell count.
	Videos [][]video.Sequence

	// UsersPerFBS is the generated load when Videos is nil: that many users
	// per FBS, each streaming the next sequence of VideoPool in rotation.
	// Zero means DefaultUsersPerFBS.
	UsersPerFBS int
	// VideoPool is the sequence rotation for generated load; nil means the
	// standard six CIF presets.
	VideoPool []video.Sequence

	// FBSs is the cell count for KindMetroPoisson, and for the line kinds
	// when Videos is nil.
	FBSs int
	// Rows and Cols are the city-block grid dimensions for KindMetroGrid.
	Rows, Cols int
	// FBSPerBlock is the femtocells per city block for KindMetroGrid; zero
	// means 3 (the paper's Fig. 5 path replicated per block).
	FBSPerBlock int
	// Width and Height bound the KindMetroPoisson area in meters; zero
	// means an automatic area of defaultPoissonAreaPerFBS per FBS.
	Width, Height float64
	// Radius overrides the coverage radius in meters; zero means the
	// config's FemtoRadius.
	Radius float64
}

// SingleSpec declares the single-FBS layout streaming the given sequences.
func SingleSpec(videos []video.Sequence) TopologySpec {
	return TopologySpec{Kind: KindSingle, Videos: [][]video.Sequence{videos}}
}

// PaperSingleSpec declares the exact §V-A scenario: one FBS streaming Bus,
// Mobile and Harbor to three users.
func PaperSingleSpec() TopologySpec {
	trio := video.PaperTrio()
	return SingleSpec(trio[:])
}

// NonInterferingSpec declares disjoint-coverage femtocells, one video group
// per FBS.
func NonInterferingSpec(videosPerFBS [][]video.Sequence) TopologySpec {
	return TopologySpec{Kind: KindNonInterferingLine, Videos: videosPerFBS}
}

// InterferingPathSpec declares the §V-B path layout, one video group per
// FBS.
func InterferingPathSpec(videosPerFBS [][]video.Sequence) TopologySpec {
	return TopologySpec{Kind: KindInterferingPath, Videos: videosPerFBS}
}

// PaperInterferingSpec declares the exact §V-B scenario: three FBSs on the
// Fig. 5 path, each streaming the Bus/Mobile/Harbor trio.
func PaperInterferingSpec() TopologySpec {
	trio := video.PaperTrio()
	return InterferingPathSpec([][]video.Sequence{trio[:], trio[:], trio[:]})
}

// MetroGridSpec declares a rows x cols city-block grid with the default
// three-FBS block and usersPerFBS generated streams per cell (0 means the
// default load).
func MetroGridSpec(rows, cols, usersPerFBS int) TopologySpec {
	return TopologySpec{Kind: KindMetroGrid, Rows: rows, Cols: cols, UsersPerFBS: usersPerFBS}
}

// MetroPoissonSpec declares fbss femtocells scattered uniformly over an
// automatically sized area, with usersPerFBS generated streams per cell
// (0 means the default load).
func MetroPoissonSpec(fbss, usersPerFBS int) TopologySpec {
	return TopologySpec{Kind: KindMetroPoisson, FBSs: fbss, UsersPerFBS: usersPerFBS}
}

// NumFBS returns the number of femtocells the spec deploys, or an error
// for inconsistent specs.
func (s TopologySpec) NumFBS() (int, error) {
	switch s.Kind {
	case KindSingle:
		if s.Videos != nil && len(s.Videos) != 1 {
			return 0, fmt.Errorf("%w: single-FBS spec with %d video groups", ErrBadNetwork, len(s.Videos))
		}
		return 1, nil
	case KindNonInterferingLine, KindInterferingPath:
		if s.Videos != nil {
			return len(s.Videos), nil
		}
		if s.FBSs < 1 {
			return 0, fmt.Errorf("%w: %s spec needs Videos or FBSs >= 1", ErrBadNetwork, s.Kind)
		}
		return s.FBSs, nil
	case KindMetroGrid:
		if s.Rows < 1 || s.Cols < 1 {
			return 0, fmt.Errorf("%w: metro grid %dx%d blocks", ErrBadNetwork, s.Rows, s.Cols)
		}
		return s.Rows * s.Cols * s.blockSize(), nil
	case KindMetroPoisson:
		if s.FBSs < 1 {
			return 0, fmt.Errorf("%w: metro poisson with %d FBSs", ErrBadNetwork, s.FBSs)
		}
		return s.FBSs, nil
	default:
		return 0, fmt.Errorf("%w: unknown topology kind %d", ErrBadNetwork, int(s.Kind))
	}
}

// blockSize returns the per-block FBS count with its default applied.
func (s TopologySpec) blockSize() int {
	if s.FBSPerBlock > 0 {
		return s.FBSPerBlock
	}
	return 3
}

// radius resolves the coverage radius against the config default.
func (s TopologySpec) radius(cfg Config) float64 {
	if s.Radius > 0 {
		return s.Radius
	}
	return cfg.FemtoRadius
}

// videoLoad resolves the per-FBS video lists for n femtocells: the explicit
// Videos when given (validated against n), else UsersPerFBS sequences per
// FBS drawn from VideoPool in rotation. The rotation offset advances with
// the FBS index so neighboring cells carry different mixes.
func (s TopologySpec) videoLoad(n int) ([][]video.Sequence, error) {
	if s.Videos != nil {
		if len(s.Videos) != n {
			return nil, fmt.Errorf("%w: %d video groups for %d femtocells", ErrBadNetwork, len(s.Videos), n)
		}
		return s.Videos, nil
	}
	perFBS := s.UsersPerFBS
	if perFBS <= 0 {
		perFBS = DefaultUsersPerFBS
	}
	pool := s.VideoPool
	if len(pool) == 0 {
		pool = video.StandardSequences()
	}
	out := make([][]video.Sequence, n)
	for i := 0; i < n; i++ {
		group := make([]video.Sequence, perFBS)
		for u := 0; u < perFBS; u++ {
			group[u] = pool[(i*perFBS+u)%len(pool)]
		}
		out[i] = group
	}
	return out, nil
}

// disks lays out the spec's coverage disks. Poisson centers are drawn from
// the dedicated "netmodel/topology" stream of the config seed, so layout
// randomness never perturbs the per-FBS placement streams users are drawn
// from — a generated metro scenario stays reproducible from Config.Seed
// alone.
func (s TopologySpec) disks(cfg Config, n int) ([]geometry.Disk, error) {
	r := s.radius(cfg)
	switch s.Kind {
	case KindSingle:
		d, err := geometry.NewDisk(geometry.Point{}, r)
		if err != nil {
			return nil, err
		}
		return []geometry.Disk{d}, nil
	case KindNonInterferingLine:
		return geometry.LineDeployment(geometry.Point{}, n, 4*r, r)
	case KindInterferingPath:
		return geometry.LineDeployment(geometry.Point{}, n, 1.5*r, r)
	case KindMetroGrid:
		block := s.blockSize()
		// Streets must keep adjacent blocks' nearest disks > 2R apart in
		// both axes so coverage never crosses a block boundary.
		blockWidth := float64(block-1) * 1.5 * r
		pitchX := blockWidth + 4*r
		pitchY := 4 * r
		disks := make([]geometry.Disk, 0, n)
		for row := 0; row < s.Rows; row++ {
			for col := 0; col < s.Cols; col++ {
				origin := geometry.Point{X: float64(col) * pitchX, Y: float64(row) * pitchY}
				blockDisks, err := geometry.LineDeployment(origin, block, 1.5*r, r)
				if err != nil {
					return nil, err
				}
				disks = append(disks, blockDisks...)
			}
		}
		return disks, nil
	case KindMetroPoisson:
		w, h := s.Width, s.Height
		if w <= 0 && h <= 0 {
			side := poissonSide(n)
			w, h = side, side
		}
		if w <= 0 || h <= 0 {
			return nil, fmt.Errorf("%w: metro poisson area %vx%v m", ErrBadNetwork, w, h)
		}
		topo := rng.New(cfg.Seed).Split("netmodel/topology")
		disks := make([]geometry.Disk, 0, n)
		for i := 0; i < n; i++ {
			center := geometry.Point{X: w * topo.Float64(), Y: h * topo.Float64()}
			d, err := geometry.NewDisk(center, r)
			if err != nil {
				return nil, err
			}
			disks = append(disks, d)
		}
		return disks, nil
	default:
		return nil, fmt.Errorf("%w: unknown topology kind %d", ErrBadNetwork, int(s.Kind))
	}
}

// poissonSide returns the side of the automatic square area for n FBSs.
func poissonSide(n int) float64 {
	return math.Sqrt(float64(n) * defaultPoissonAreaPerFBS)
}

// NewNetwork assembles a network from a configuration and a topology
// specification. It is the single entry point behind every deployment
// scenario: the paper's single-FBS and Fig. 5 layouts, disjoint-coverage
// lines, and the generated metro-scale grids and Poisson scatters whose
// interference graphs decompose into shards for sim.RunSharded.
func NewNetwork(cfg Config, spec TopologySpec) (*Network, error) {
	n, err := spec.NumFBS()
	if err != nil {
		return nil, err
	}
	videos, err := spec.videoLoad(n)
	if err != nil {
		return nil, err
	}
	disks, err := spec.disks(cfg, n)
	if err != nil {
		return nil, err
	}
	return build(cfg, disks, videos)
}
