package par

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestEffectiveWorkers(t *testing.T) {
	if got := (Parallelism{Workers: 3}).EffectiveWorkers(); got != 3 {
		t.Fatalf("Workers=3: got %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := (Parallelism{}).EffectiveWorkers(); got != want {
		t.Fatalf("zero value: got %d, want GOMAXPROCS %d", got, want)
	}
	if got := (Parallelism{Workers: -1}).EffectiveWorkers(); got != want {
		t.Fatalf("negative: got %d, want GOMAXPROCS %d", got, want)
	}
}

func TestEffectiveShards(t *testing.T) {
	cases := []struct {
		shards, n, want int
	}{
		{0, 7, 7},   // auto: one group per unit
		{-2, 7, 7},  // negative: auto
		{3, 7, 3},   // explicit cap
		{7, 7, 7},   // exact
		{100, 7, 7}, // clamped to the unit count
		{1, 7, 1},   // single group
		{4, 0, 0},   // no units
		{4, -1, 0},  // degenerate
	}
	for _, c := range cases {
		if got := (Parallelism{Shards: c.shards}).EffectiveShards(c.n); got != c.want {
			t.Errorf("Shards=%d n=%d: got %d, want %d", c.shards, c.n, got, c.want)
		}
	}
}

func TestRunGridRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 37
		var counts [n]atomic.Int64
		err := RunGrid(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunGridRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := RunGrid(12, workers, func(i int) error {
			if i == 5 {
				panic("shard blew up")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want panic converted to error", workers)
		}
		if !strings.Contains(err.Error(), "task 5 panicked") ||
			!strings.Contains(err.Error(), "shard blew up") {
			t.Fatalf("workers=%d: error %q does not name task 5 and the panic value", workers, err)
		}
	}
}

func TestRunGridReturnsTaskError(t *testing.T) {
	boom := errors.New("boom")
	err := RunGrid(8, 4, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}
