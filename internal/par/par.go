// Package par provides the deterministic parallel-execution primitives
// shared by the simulation and experiment layers: a single Parallelism
// knob bundle (workers and shard groups) and the RunGrid worker pool whose
// results are bitwise-identical for any worker count. It sits below both
// internal/sim and internal/experiments so the two can share one contract
// without an import cycle.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism bundles the parallel-execution knobs threaded through the
// simulation and experiment APIs. The zero value means "auto": one worker
// per available CPU and one shard group per interference component. Both
// knobs only change the wall-clock schedule — every result folded through
// RunGrid is bitwise-identical for any setting.
type Parallelism struct {
	// Workers caps the number of concurrently executing tasks; zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// Shards caps how many grid tasks a sharded simulation groups its
	// interference components into (see sim.RunSharded). Zero or negative
	// means one task per component; values above the component count are
	// clamped. Grouping only affects scheduling granularity and the
	// per-task ns accounting — never the folded results.
	Shards int
}

// EffectiveWorkers resolves the worker count: Workers when positive, else
// one per available CPU.
func (p Parallelism) EffectiveWorkers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveShards resolves the shard-group count for n independent units of
// work: Shards clamped to [1, n], with zero or negative meaning n (one task
// per unit). n must be positive for the result to be meaningful.
func (p Parallelism) EffectiveShards(n int) int {
	if n < 1 {
		return 0
	}
	if p.Shards <= 0 || p.Shards > n {
		return n
	}
	return p.Shards
}

// RunGrid executes n independent tasks over a pool of workers, calling
// do(i) exactly once for every index not skipped by cancellation. Each task
// must write its output into its own preallocated slot, and all aggregation
// must happen after RunGrid returns, in index order — then the results are
// identical, bit for bit, for any worker count; only the wall-clock
// schedule changes. On the first task error the remaining undispatched
// tasks are cancelled, and the lowest-index recorded error is returned
// (indices are dispatched in ascending order, so this is the error a
// sequential loop would have hit first among those that ran). A task panic
// is recovered into an error naming the task's index.
func RunGrid(n, workers int, do func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := runTask(do, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	//femtovet:shared -- the atomic dispatch counter hands each index to exactly one worker, so errs[i] has a single writer
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if err := runTask(do, i); err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTask invokes do(i), converting a panic into an error that names the
// failing task, so one bad grid point reports its index instead of taking
// down the whole sweep with a bare stack trace.
func runTask(do func(i int) error, i int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("task %d panicked: %v", i, p)
		}
	}()
	return do(i)
}
