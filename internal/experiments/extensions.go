package experiments

import (
	"fmt"
	"time"

	"femtocr/internal/netmodel"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
	"femtocr/internal/video"
)

// Extension experiments beyond the paper's figures: the collision-budget
// trade-off (the paper fixes gamma = 0.2) and scalability in the number of
// interfering femtocells (the paper stops at N = 3).

// GammaTradeoff sweeps the collision threshold gamma and reports both the
// achieved video quality and the realized worst-channel collision rate,
// validating primary-user protection end to end: the realized rate must
// track min(gamma, rate at full access) while quality grows with gamma.
func GammaTradeoff(p Params) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure("Extension — collision budget vs quality and protection",
		"Collision threshold (gamma)", "Y-PSNR (dB) / collision rate")
	psnr := stats.NewSeries("Proposed Y-PSNR (dB)")
	coll := stats.NewSeries("Realized collision rate")
	fig.Add(psnr)
	fig.Add(coll)
	gammas := []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	nets := make([]*netmodel.Network, len(gammas))
	for i, gamma := range gammas {
		cfg := p.Config
		cfg.Gamma = gamma
		var err error
		if nets[i], err = netmodel.PaperSingleFBS(cfg); err != nil {
			return nil, err
		}
	}
	type cell struct{ psnr, coll float64 }
	slots := make([]cell, len(gammas)*p.Runs)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		gi, r := i/p.Runs, i%p.Runs
		res, err := sim.Run(nets[gi], sim.Options{Seed: p.BaseSeed + uint64(r), GOPs: p.GOPs, WarmStart: p.WarmStart})
		if err != nil {
			return fmt.Errorf("gamma=%v run %d: %w", gammas[gi], r, err)
		}
		slots[i] = cell{psnr: res.MeanPSNR, coll: res.CollisionRate}
		return nil
	})
	if err != nil {
		return nil, err
	}
	quals := make([]float64, p.Runs)
	colls := make([]float64, p.Runs)
	for gi, gamma := range gammas {
		for r := 0; r < p.Runs; r++ {
			quals[r] = slots[gi*p.Runs+r].psnr
			colls[r] = slots[gi*p.Runs+r].coll
		}
		qs, err := mergeSummary(quals)
		if err != nil {
			return nil, err
		}
		cs, err := mergeSummary(colls)
		if err != nil {
			return nil, err
		}
		psnr.Append(gamma, qs)
		coll.Append(gamma, cs)
	}
	return fig, nil
}

// ScalePoint is one row of the scalability study.
type ScalePoint struct {
	NumFBS   int
	Users    int
	Proposed stats.Summary
	H1       stats.Summary
	H2       stats.Summary
	// BoundGapDB is the mean eq. (23) bound minus the proposed quality.
	BoundGapDB float64
	// Elapsed is the wall time of the proposed runs.
	Elapsed time.Duration
}

// Scalability grows the interfering deployment along a line (path
// interference graph, three users per femtocell) and measures quality per
// scheme, the eq. (23) bound gap, and the proposed scheme's cost. The paper
// evaluates N = 3; this probes how the greedy algorithm and its bound
// behave as the conflict graph grows.
func Scalability(p Params, sizes []int) ([]ScalePoint, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = []int{2, 3, 4, 6}
	}
	trio := video.PaperTrio()
	var out []ScalePoint
	for _, n := range sizes {
		groups := make([][]video.Sequence, n)
		for i := range groups {
			groups[i] = trio[:]
		}
		net, err := netmodel.InterferingPath(p.Config, groups)
		if err != nil {
			return nil, err
		}
		pt := ScalePoint{NumFBS: n, Users: net.K()}

		prop := make([]float64, p.Runs)
		bound := make([]float64, p.Runs)
		h1 := make([]float64, p.Runs)
		h2 := make([]float64, p.Runs)
		start := time.Now()
		err = runGrid(p.Runs, p.workers(), func(r int) error {
			res, err := sim.Run(net, sim.Options{
				Seed:       p.BaseSeed + uint64(r),
				GOPs:       p.GOPs,
				TrackBound: true,
				WarmStart:  p.WarmStart,
			})
			if err != nil {
				return fmt.Errorf("N=%d run %d: %w", n, r, err)
			}
			prop[r] = res.MeanPSNR
			bound[r] = res.BoundPSNR
			return nil
		})
		if err != nil {
			return nil, err
		}
		pt.Elapsed = time.Since(start)
		err = runGrid(2*p.Runs, p.workers(), func(i int) error {
			sch, r := sim.Heuristic1, i
			if i >= p.Runs {
				sch, r = sim.Heuristic2, i-p.Runs
			}
			res, err := sim.Run(net, sim.Options{
				Seed: p.BaseSeed + uint64(r), GOPs: p.GOPs, Scheme: sch,
				WarmStart: p.WarmStart,
			})
			if err != nil {
				return fmt.Errorf("N=%d scheme=%v run %d: %w", n, sch, r, err)
			}
			if sch == sim.Heuristic1 {
				h1[r] = res.MeanPSNR
			} else {
				h2[r] = res.MeanPSNR
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if pt.Proposed, err = mergeSummary(prop); err != nil {
			return nil, err
		}
		if pt.H1, err = mergeSummary(h1); err != nil {
			return nil, err
		}
		if pt.H2, err = mergeSummary(h2); err != nil {
			return nil, err
		}
		pt.BoundGapDB = stats.MeanOf(bound) - pt.Proposed.Mean
		out = append(out, pt)
	}
	return out, nil
}

// DeadlineSweep varies the delivery deadline T (slots per GOP) at a fixed
// GOP playout time. Larger T means finer-grained scheduling within the same
// wall-clock budget: more allocation decisions per GOP and more chances to
// ride good channel states, at the cost of more sensing overhead per frame
// in a real system. The paper fixes T = 10; this measures what that choice
// buys.
func DeadlineSweep(p Params) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure("Extension — delivery deadline granularity",
		"Slots per GOP deadline (T)", "Y-PSNR (dB)")
	series := stats.NewSeries("Proposed")
	fig.Add(series)
	deadlines := []int{2, 5, 10, 20}
	nets := make([]*netmodel.Network, len(deadlines))
	for i, tSlots := range deadlines {
		cfg := p.Config
		cfg.T = tSlots
		var err error
		if nets[i], err = netmodel.PaperSingleFBS(cfg); err != nil {
			return nil, err
		}
	}
	slots := make([]float64, len(deadlines)*p.Runs)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		ti, r := i/p.Runs, i%p.Runs
		res, err := sim.Run(nets[ti], sim.Options{Seed: p.BaseSeed + uint64(r), GOPs: p.GOPs, WarmStart: p.WarmStart})
		if err != nil {
			return fmt.Errorf("T=%d run %d: %w", deadlines[ti], r, err)
		}
		slots[i] = res.MeanPSNR
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ti, tSlots := range deadlines {
		s, err := mergeSummary(slots[ti*p.Runs : (ti+1)*p.Runs])
		if err != nil {
			return nil, err
		}
		series.Append(float64(tSlots), s)
	}
	return fig, nil
}

// UserCapacity answers the provisioning question a femtocell operator asks:
// how many video users can one femtocell CR cell carry at a target quality?
// It grows the user population of the single-FBS scenario (cycling through
// the sequence presets) and reports the mean quality at each size; the
// capacity at a target is the largest population whose mean stays above it.
func UserCapacity(p Params, sizes []int) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = []int{1, 2, 3, 4, 6, 8}
	}
	presets := video.StandardSequences()
	fig := stats.NewFigure("Extension — users per femtocell vs quality",
		"Users (K)", "Y-PSNR (dB)")
	mean := stats.NewSeries("Proposed mean")
	worst := stats.NewSeries("Proposed worst user")
	fig.Add(mean)
	fig.Add(worst)
	nets := make([]*netmodel.Network, len(sizes))
	for i, k := range sizes {
		if k < 1 {
			return nil, fmt.Errorf("%w: K=%d", ErrBadParams, k)
		}
		videos := make([]video.Sequence, k)
		for j := range videos {
			videos[j] = presets[j%len(presets)]
		}
		var err error
		if nets[i], err = netmodel.SingleFBS(p.Config, videos); err != nil {
			return nil, err
		}
	}
	type cell struct{ mean, worst float64 }
	slots := make([]cell, len(sizes)*p.Runs)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		ki, r := i/p.Runs, i%p.Runs
		res, err := sim.Run(nets[ki], sim.Options{Seed: p.BaseSeed + uint64(r), GOPs: p.GOPs, WarmStart: p.WarmStart})
		if err != nil {
			return fmt.Errorf("K=%d run %d: %w", sizes[ki], r, err)
		}
		slots[i] = cell{mean: res.MeanPSNR, worst: res.MinUserPSNR}
		return nil
	})
	if err != nil {
		return nil, err
	}
	means := make([]float64, p.Runs)
	worsts := make([]float64, p.Runs)
	for ki, k := range sizes {
		for r := 0; r < p.Runs; r++ {
			means[r] = slots[ki*p.Runs+r].mean
			worsts[r] = slots[ki*p.Runs+r].worst
		}
		ms, err := mergeSummary(means)
		if err != nil {
			return nil, err
		}
		ws, err := mergeSummary(worsts)
		if err != nil {
			return nil, err
		}
		mean.Append(float64(k), ms)
		worst.Append(float64(k), ws)
	}
	return fig, nil
}

// SchemeFrontier measures every scheduler on the single-FBS workload along
// two axes at once — mean quality and Jain fairness of the quality gains —
// tracing the fairness-efficiency frontier: proportional fairness (the
// paper), pure throughput maximization, the two paper heuristics, and
// blind TDMA. The x-axis is the scheme index in sim.Scheme order.
func SchemeFrontier(p Params) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	net, err := netmodel.PaperSingleFBS(p.Config)
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure("Extension — fairness-efficiency frontier",
		"Scheme (1=Proposed 2=H1 3=H2 4=RoundRobin 5=MaxThroughput)",
		"Y-PSNR (dB) / Jain index")
	mean := stats.NewSeries("Mean Y-PSNR (dB)")
	fair := stats.NewSeries("Jain fairness of gains")
	fig.Add(mean)
	fig.Add(fair)
	schs := []sim.Scheme{
		sim.Proposed, sim.Heuristic1, sim.Heuristic2, sim.RoundRobin, sim.MaxThroughput,
	}
	type cell struct{ psnr, fair float64 }
	slots := make([]cell, len(schs)*p.Runs)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		sch := schs[i/p.Runs]
		r := i % p.Runs
		res, err := sim.Run(net, sim.Options{Seed: p.BaseSeed + uint64(r), GOPs: p.GOPs, Scheme: sch, WarmStart: p.WarmStart})
		if err != nil {
			return fmt.Errorf("scheme=%v run %d: %w", sch, r, err)
		}
		slots[i] = cell{psnr: res.MeanPSNR, fair: res.FairnessIndex}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ms := make([]float64, p.Runs)
	fs := make([]float64, p.Runs)
	for si, sch := range schs {
		for r := 0; r < p.Runs; r++ {
			ms[r] = slots[si*p.Runs+r].psnr
			fs[r] = slots[si*p.Runs+r].fair
		}
		msum, err := mergeSummary(ms)
		if err != nil {
			return nil, err
		}
		fsum, err := mergeSummary(fs)
		if err != nil {
			return nil, err
		}
		mean.Append(float64(sch), msum)
		fair.Append(float64(sch), fsum)
	}
	return fig, nil
}
