package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"femtocr/internal/sim"
	"femtocr/internal/stats"
)

func TestParamsValidation(t *testing.T) {
	if _, err := Fig3(Params{Runs: 0, GOPs: 3}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("runs=0 err = %v", err)
	}
	if _, err := Fig4b(Params{Runs: 2, GOPs: 0}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("gops=0 err = %v", err)
	}
	if _, _, err := Fig4a(QuickParams(), 1, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("iterations=1 err = %v", err)
	}
}

func TestFig3Shape(t *testing.T) {
	fig, err := Fig3(QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("%d curves, want 3 schemes", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		if c.Len() != 3 {
			t.Fatalf("curve %q has %d points, want 3 users", c.Name, c.Len())
		}
		for i := 0; i < c.Len(); i++ {
			x, pt := c.At(i)
			if x != float64(i+1) {
				t.Fatalf("curve %q x[%d] = %v", c.Name, i, x)
			}
			if pt.Mean < 20 || pt.Mean > 50 {
				t.Fatalf("curve %q PSNR %v implausible", c.Name, pt.Mean)
			}
			if pt.N != 2 {
				t.Fatalf("curve %q N = %d, want 2 runs", c.Name, pt.N)
			}
		}
	}
	out := fig.Render()
	for _, want := range []string{"Proposed", "Heuristic 1", "Heuristic 2", "User index"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFig4aShape(t *testing.T) {
	fig, trace, err := Fig4a(QuickParams(), 120, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 100 {
		t.Fatalf("trace rows = %d", len(trace))
	}
	if len(fig.Curves) != 2 {
		t.Fatalf("curves = %d, want lambda_0 and lambda_1", len(fig.Curves))
	}
	// Subsampled: roughly iterations/stride points.
	if fig.Curves[0].Len() < 10 || fig.Curves[0].Len() > 15 {
		t.Fatalf("subsampled points = %d", fig.Curves[0].Len())
	}
}

func TestFig4bShape(t *testing.T) {
	fig, err := Fig4b(QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		if c.Len() != 5 {
			t.Fatalf("curve %q points = %d, want M in {4,6,8,10,12}", c.Name, c.Len())
		}
	}
	if x, _ := fig.Curves[0].At(0); x != 4 {
		t.Fatalf("first M = %v", x)
	}
}

func TestFig6aIncludesBound(t *testing.T) {
	p := QuickParams()
	p.GOPs = 2
	fig, err := Fig6a(p)
	if err != nil {
		t.Fatal(err)
	}
	bound := fig.Curve("Upper bound")
	prop := fig.Curve("Proposed")
	if bound == nil || prop == nil {
		t.Fatal("missing curves")
	}
	if bound.Len() != prop.Len() {
		t.Fatalf("bound has %d points, proposed %d", bound.Len(), prop.Len())
	}
	for i := 0; i < bound.Len(); i++ {
		_, b := bound.At(i)
		_, v := prop.At(i)
		if b.Mean < v.Mean {
			t.Fatalf("point %d: bound %v below proposed %v", i, b.Mean, v.Mean)
		}
	}
}

func TestFig6bUsesErrorPairs(t *testing.T) {
	p := QuickParams()
	p.GOPs = 2
	fig, err := Fig6b(p)
	if err != nil {
		t.Fatal(err)
	}
	c := fig.Curve(sim.Proposed.String())
	if c.Len() != len(SensingErrorPairs) {
		t.Fatalf("points = %d, want %d", c.Len(), len(SensingErrorPairs))
	}
	for i, pair := range SensingErrorPairs {
		if x, _ := c.At(i); x != pair[0] {
			t.Fatalf("x[%d] = %v, want epsilon %v", i, x, pair[0])
		}
	}
}

func TestFig6cSweepsB0(t *testing.T) {
	p := QuickParams()
	p.GOPs = 2
	fig, err := Fig6c(p)
	if err != nil {
		t.Fatal(err)
	}
	c := fig.Curve(sim.Proposed.String())
	if c.Len() != 5 {
		t.Fatalf("points = %d", c.Len())
	}
	if x, _ := c.At(0); x != 0.1 {
		t.Fatalf("first B0 = %v", x)
	}
	if x, _ := c.At(4); x != 0.5 {
		t.Fatalf("last B0 = %v", x)
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.Runs != 10 || p.GOPs != 20 {
		t.Fatalf("paper scale = %d runs x %d GOPs, want 10 x 20", p.Runs, p.GOPs)
	}
}

func TestWarmStartGridMatchesCold(t *testing.T) {
	// Params.WarmStart is a pure speed knob: every figure row must be
	// bitwise-identical to the cold grid. Fig5 covers the bound-tracking
	// relax solves as well as the slot solves.
	for _, driver := range []struct {
		name string
		run  func(Params) (*stats.Figure, error)
	}{{"Fig3", Fig3}, {"Fig5", Fig5}} {
		cold, err := driver.run(QuickParams())
		if err != nil {
			t.Fatal(err)
		}
		p := QuickParams()
		p.WarmStart = true
		warm, err := driver.run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Errorf("%s: warm-started grid differs from cold", driver.name)
		}
	}
}
