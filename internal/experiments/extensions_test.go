package experiments

import "testing"

func TestGammaTradeoffShape(t *testing.T) {
	p := QuickParams()
	p.Runs = 3
	p.GOPs = 20
	fig, err := GammaTradeoff(p)
	if err != nil {
		t.Fatal(err)
	}
	psnr := fig.Curve("Proposed Y-PSNR (dB)")
	coll := fig.Curve("Realized collision rate")
	if psnr == nil || coll == nil || psnr.Len() != 5 {
		t.Fatal("curves malformed")
	}
	// Quality must grow with the collision budget.
	_, lo := psnr.At(0)
	_, hi := psnr.At(psnr.Len() - 1)
	if hi.Mean <= lo.Mean {
		t.Fatalf("quality did not grow with gamma: %v -> %v", lo.Mean, hi.Mean)
	}
	// Realized collisions must respect the budget (with sampling slack) and
	// grow with it.
	for i := 0; i < coll.Len(); i++ {
		gamma, c := coll.At(i)
		if c.Mean > gamma+0.08 {
			t.Fatalf("gamma=%v: realized collision %v far above budget", gamma, c.Mean)
		}
	}
	_, cLo := coll.At(0)
	_, cHi := coll.At(coll.Len() - 1)
	if cHi.Mean <= cLo.Mean {
		t.Fatalf("collision rate did not grow with gamma: %v -> %v", cLo.Mean, cHi.Mean)
	}
}

func TestScalabilityGrows(t *testing.T) {
	p := QuickParams()
	p.Runs = 2
	p.GOPs = 2
	pts, err := Scalability(p, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].NumFBS != 2 || pts[0].Users != 6 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[1].Users != 12 {
		t.Fatalf("second point users = %d", pts[1].Users)
	}
	for _, pt := range pts {
		if pt.Proposed.Mean < 25 || pt.Proposed.Mean > 45 {
			t.Fatalf("N=%d proposed %v implausible", pt.NumFBS, pt.Proposed.Mean)
		}
		if pt.BoundGapDB < -0.2 {
			t.Fatalf("N=%d bound below proposed by %v", pt.NumFBS, pt.BoundGapDB)
		}
		if pt.Elapsed <= 0 {
			t.Fatal("elapsed not recorded")
		}
	}
}

func TestExtensionsValidation(t *testing.T) {
	bad := Params{}
	if _, err := GammaTradeoff(bad); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := Scalability(bad, nil); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestEngineComparisonTracks(t *testing.T) {
	p := QuickParams()
	p.Runs = 3
	p.GOPs = 8
	fig, err := EngineComparison(p)
	if err != nil {
		t.Fatal(err)
	}
	rate := fig.Curve("Rate-based engine")
	pkt := fig.Curve("Packet-level engine")
	if rate == nil || pkt == nil || rate.Len() != 3 || pkt.Len() != 3 {
		t.Fatal("curves malformed")
	}
	for i := 0; i < 3; i++ {
		_, r := rate.At(i)
		_, k := pkt.At(i)
		gap := r.Mean - k.Mean
		if gap < 0 {
			gap = -gap
		}
		if gap > 2.5 {
			t.Fatalf("scheme %d: engines diverge by %v dB", i+1, gap)
		}
	}
}

func TestDeadlineSweepShape(t *testing.T) {
	p := QuickParams()
	p.Runs = 3
	p.GOPs = 10
	fig, err := DeadlineSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	c := fig.Curve("Proposed")
	if c == nil || c.Len() != 4 {
		t.Fatal("curve malformed")
	}
	// Finer scheduling (larger T) must not hurt: the T=20 point should be at
	// least as good as T=2 (more decisions per GOP average out bad slots).
	_, coarse := c.At(0)
	_, fine := c.At(c.Len() - 1)
	if fine.Mean < coarse.Mean-0.3 {
		t.Fatalf("finer deadline %v clearly below coarser %v", fine.Mean, coarse.Mean)
	}
}

func TestUserCapacityShape(t *testing.T) {
	p := QuickParams()
	p.Runs = 2
	p.GOPs = 8
	fig, err := UserCapacity(p, []int{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	mean := fig.Curve("Proposed mean")
	worst := fig.Curve("Proposed worst user")
	if mean == nil || worst == nil || mean.Len() != 3 {
		t.Fatal("curves malformed")
	}
	// More users sharing the same spectrum: mean quality must not rise.
	_, one := mean.At(0)
	_, six := mean.At(2)
	if six.Mean > one.Mean+0.2 {
		t.Fatalf("quality rose with load: K=1 %v -> K=6 %v", one.Mean, six.Mean)
	}
	// Worst user never exceeds the mean.
	for i := 0; i < mean.Len(); i++ {
		_, m := mean.At(i)
		_, w := worst.At(i)
		if w.Mean > m.Mean+1e-9 {
			t.Fatalf("point %d: worst %v above mean %v", i, w.Mean, m.Mean)
		}
	}
	if _, err := UserCapacity(p, []int{0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestSchemeFrontierShape(t *testing.T) {
	p := QuickParams()
	p.Runs = 2
	p.GOPs = 6
	fig, err := SchemeFrontier(p)
	if err != nil {
		t.Fatal(err)
	}
	mean := fig.Curve("Mean Y-PSNR (dB)")
	fair := fig.Curve("Jain fairness of gains")
	if mean == nil || fair == nil || mean.Len() != 5 || fair.Len() != 5 {
		t.Fatal("curves malformed")
	}
	for i := 0; i < fair.Len(); i++ {
		if _, f := fair.At(i); f.Mean < 0 || f.Mean > 1+1e-9 {
			t.Fatalf("fairness %v out of range", f.Mean)
		}
	}
}
