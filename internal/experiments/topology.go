package experiments

import (
	"fmt"
	"math"

	"femtocr/internal/core"
	"femtocr/internal/igraph"
	"femtocr/internal/rng"
)

// TopologyPoint measures the greedy channel allocation against the
// exhaustive optimum on one interference-graph family.
type TopologyPoint struct {
	Name string
	// Dmax is the maximum vertex degree; Theorem 2 guarantees
	// greedy/optimal >= 1/(1+Dmax).
	Dmax int
	// GuaranteedRatio is Theorem 2's worst-case floor 1/(1+Dmax).
	GuaranteedRatio float64
	// WorstRatio is the smallest measured greedy/optimal ratio.
	WorstRatio float64
	// MeanRatio averages greedy/optimal over the sampled instances.
	MeanRatio float64
	// MeanBoundRatio averages optimal/upper-bound: 1 means the eq. (23)
	// bound is tight.
	MeanBoundRatio float64
	// Instances is the number of random slot problems sampled.
	Instances int
}

// TopologyStudy samples random per-slot problems on several canonical
// interference-graph families and measures how far the greedy allocation
// of Table III actually sits from the exhaustively-enumerated optimum,
// compared with Theorem 2's 1/(1+Dmax) floor and the eq. (23) bound.
//
// The study runs at the solver level (no slot simulation): each instance
// draws user qualities, link reliabilities, and channel posteriors at the
// paper's scales, with three users per femtocell and `channels` accessed
// channels. Exhaustive enumeration costs O(I(G)^channels) solver calls,
// where I(G) counts independent sets, so keep channels small. Trials fan
// out over `workers` goroutines (non-positive: one per CPU); each trial's
// stream is split from the family stream before dispatch, so results are
// identical for any worker count.
func TopologyStudy(seed uint64, instances, channels, workers int) ([]TopologyPoint, error) {
	if instances < 1 || channels < 1 {
		return nil, fmt.Errorf("%w: instances=%d channels=%d", ErrBadParams, instances, channels)
	}
	star := igraph.New(4) // center 0, leaves 1..3: Dmax = 3
	for leaf := 1; leaf < 4; leaf++ {
		if err := star.AddEdge(0, leaf); err != nil {
			return nil, err
		}
	}
	cycle := igraph.Path(4)
	if err := cycle.AddEdge(0, 3); err != nil {
		return nil, err
	}
	families := []struct {
		name  string
		graph *igraph.Graph
	}{
		{"isolated (Table II)", igraph.New(3)},
		{"path (Fig. 5)", igraph.Path(3)},
		{"cycle-4", cycle},
		{"star-4", star},
		{"complete-4", igraph.Complete(4)},
	}

	solver := &core.EquilibriumSolver{}
	greedy := core.NewGreedyAllocator(solver, core.WithLazyEvaluation())
	root := rng.New(seed)

	var out []TopologyPoint
	for _, fam := range families {
		n := fam.graph.N()
		pt := TopologyPoint{
			Name:            fam.name,
			Dmax:            fam.graph.MaxDegree(),
			GuaranteedRatio: 1 / (1 + float64(fam.graph.MaxDegree())),
			WorstRatio:      math.Inf(1),
			Instances:       instances,
		}
		stream := root.Split("topology/" + fam.name)
		// Split every trial's stream before fanning out: SplitIndex is a
		// pure function of the parent seeds, but the parent stream itself
		// is not concurrency-safe.
		streams := make([]*rng.Stream, instances)
		for trial := range streams {
			streams[trial] = stream.SplitIndex("t", trial)
		}
		type cell struct{ ratio, boundRatio float64 }
		slots := make([]cell, instances)
		err := runGrid(instances, workers, func(trial int) error {
			problem, err := randomChannelProblem(streams[trial], n, channels)
			if err != nil {
				return err
			}
			problem.Graph = fam.graph
			res, err := greedy.Allocate(problem)
			if err != nil {
				return fmt.Errorf("family=%q trial %d: %w", fam.name, trial, err)
			}
			opt, err := core.ExhaustiveChannelOptimum(problem, solver)
			if err != nil {
				return fmt.Errorf("family=%q trial %d: %w", fam.name, trial, err)
			}
			ratio := res.Value / opt
			if ratio > 1 {
				ratio = 1 // solver tolerance can put greedy a hair above
			}
			slots[trial] = cell{ratio: ratio, boundRatio: opt / res.UpperBound}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range slots {
			pt.MeanRatio += c.ratio
			if c.ratio < pt.WorstRatio {
				pt.WorstRatio = c.ratio
			}
			pt.MeanBoundRatio += c.boundRatio
		}
		pt.MeanRatio /= float64(instances)
		pt.MeanBoundRatio /= float64(instances)
		out = append(out, pt)
	}
	return out, nil
}

// randomChannelProblem draws a per-slot problem at the paper's scales:
// three users per FBS, qualities near the base layers, posteriors in
// (0.5, 1].
func randomChannelProblem(s *rng.Stream, n, channels int) (*core.ChannelProblem, error) {
	k := 3 * n
	in := &core.Instance{
		W:   make([]float64, k),
		R0:  make([]float64, k),
		R1:  make([]float64, k),
		PS0: make([]float64, k),
		PS1: make([]float64, k),
		FBS: make([]int, k),
		G:   make([]float64, n),
	}
	for j := 0; j < k; j++ {
		in.W[j] = 26 + 6*s.Float64()
		in.R0[j] = 0.3 + 0.3*s.Float64()
		in.R1[j] = 0.3 + 0.3*s.Float64()
		in.PS0[j] = 0.4 + 0.5*s.Float64()
		in.PS1[j] = 0.7 + 0.3*s.Float64()
		in.FBS[j] = j/3 + 1
	}
	chs := make([]int, channels)
	pas := make([]float64, channels)
	for c := range chs {
		chs[c] = c + 1
		pas[c] = 0.5 + 0.5*s.Float64()
	}
	p := &core.ChannelProblem{Base: in, Channels: chs, Posteriors: pas}
	return p, nil
}

// String renders one topology row.
func (p TopologyPoint) String() string {
	return fmt.Sprintf("%-20s Dmax=%d floor=%.3f worst=%.4f mean=%.4f bound-tightness=%.4f",
		p.Name, p.Dmax, p.GuaranteedRatio, p.WorstRatio, p.MeanRatio, p.MeanBoundRatio)
}
