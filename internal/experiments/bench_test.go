package experiments

import (
	"fmt"
	"testing"
)

// BenchmarkFig5Quick measures the replication engine on the heaviest
// per-user figure (three interfering FBSs, nine users) at quick scale,
// sequential versus parallel. scripts/bench_parallel.sh turns the two
// sub-benchmarks into BENCH_parallel.json; on a multi-core machine the
// workers=4 case should run at least twice as fast as workers=1. The
// outputs are bitwise-identical either way — only the schedule differs.
func BenchmarkFig5Quick(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := QuickParams()
			p.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Fig5(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGammaTradeoffQuick covers the widest grid (5 gamma points x
// schemes x runs), where the flattened index layout has the most slots to
// keep the pool busy.
func BenchmarkGammaTradeoffQuick(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := QuickParams()
			p.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := GammaTradeoff(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
