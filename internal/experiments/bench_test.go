package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// benchParams returns the grid the worker-scaling benchmarks run on. The
// original QuickParams grid (2 runs x 3 schemes = 6 tasks) was too small
// for the workers=1 vs workers=4 comparison to mean anything: 6 tasks of
// very different cost (Proposed dominates the heuristics) over 4 workers
// leave two workers idle for most of the wall clock, so the measured
// "speedup" was mostly scheduling noise. 4 runs x 3 schemes = 12 tasks is
// divisible by 4 and — because runGrid dispatches in ascending index order,
// scheme-major — each wave of 4 same-scheme tasks has uniform cost, so an
// idle-free schedule exists and the sweep measures hardware scaling rather
// than load imbalance.
func benchParams() Params {
	p := QuickParams()
	p.Runs = 4
	return p
}

// BenchmarkFig5Quick measures the replication engine on the heaviest
// per-user figure (three interfering FBSs, nine users) at quick scale,
// sequential versus parallel. scripts/bench_parallel.sh turns the two
// sub-benchmarks into BENCH_parallel.json; with at least 4 CPUs available
// the workers=4 case should run at least twice as fast as workers=1 (on
// fewer CPUs the ratio is capped by the hardware — the recorded "cpus"
// field in the JSON says which regime a result came from). The outputs are
// bitwise-identical either way — only the schedule differs.
func BenchmarkFig5Quick(b *testing.B) {
	b.Logf("NumCPU=%d GOMAXPROCS=%d", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := benchParams()
			p.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Fig5(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGammaTradeoffQuick covers the widest grid (5 gamma points x
// schemes x runs), where the flattened index layout has the most slots to
// keep the pool busy.
func BenchmarkGammaTradeoffQuick(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := benchParams()
			p.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := GammaTradeoff(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
