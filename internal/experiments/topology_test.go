package experiments

import (
	"strings"
	"testing"
)

func TestTopologyStudyValidatesTheorem2(t *testing.T) {
	points, err := TopologyStudy(11, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("families = %d", len(points))
	}
	byName := make(map[string]TopologyPoint)
	for _, p := range points {
		byName[p.Name] = p
		// Theorem 2: measured ratio never below the floor.
		if p.WorstRatio < p.GuaranteedRatio-1e-9 {
			t.Fatalf("%s: worst ratio %v below Theorem 2 floor %v",
				p.Name, p.WorstRatio, p.GuaranteedRatio)
		}
		if p.MeanRatio < p.WorstRatio-1e-12 || p.MeanRatio > 1+1e-9 {
			t.Fatalf("%s: mean ratio %v inconsistent", p.Name, p.MeanRatio)
		}
		// eq. (23): the optimum never exceeds the bound.
		if p.MeanBoundRatio > 1+1e-9 {
			t.Fatalf("%s: optimum above the eq. (23) bound (ratio %v)", p.Name, p.MeanBoundRatio)
		}
	}
	// The isolated family is provably optimal: ratio exactly 1, tight bound.
	iso := byName["isolated (Table II)"]
	if iso.Dmax != 0 || iso.WorstRatio < 1-1e-6 {
		t.Fatalf("isolated family not optimal: %+v", iso)
	}
	// Dmax ordering across families.
	if byName["path (Fig. 5)"].Dmax != 2 || byName["star-4"].Dmax != 3 ||
		byName["complete-4"].Dmax != 3 || byName["cycle-4"].Dmax != 2 {
		t.Fatal("family degrees wrong")
	}
	if !strings.Contains(iso.String(), "Dmax=0") {
		t.Fatalf("String() malformed: %s", iso.String())
	}
}

func TestTopologyStudyValidation(t *testing.T) {
	if _, err := TopologyStudy(1, 0, 2, 0); err == nil {
		t.Fatal("zero instances accepted")
	}
	if _, err := TopologyStudy(1, 1, 0, 0); err == nil {
		t.Fatal("zero channels accepted")
	}
}
