package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAblationBeliefShape(t *testing.T) {
	p := QuickParams()
	p.Runs = 3
	p.GOPs = 6
	fig, err := AblationBelief(p)
	if err != nil {
		t.Fatal(err)
	}
	st := fig.Curve("Stationary prior (paper)")
	fl := fig.Curve("Belief filter")
	if st == nil || fl == nil || st.Len() != 4 || fl.Len() != 4 {
		t.Fatalf("curves malformed: %v", fig.Curves)
	}
	// At the slowest mixing point the filter should not be worse.
	_, sSlow := st.At(0)
	_, fSlow := fl.At(0)
	if fSlow.Mean < sSlow.Mean-0.3 {
		t.Fatalf("filter %v clearly worse than stationary %v at slow mixing",
			fSlow.Mean, sSlow.Mean)
	}
}

func TestAblationSensorPolicyShape(t *testing.T) {
	p := QuickParams()
	fig, err := AblationSensorPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	c := fig.Curve("Proposed")
	if c == nil || c.Len() != 3 {
		t.Fatalf("curve malformed")
	}
	for i := 0; i < c.Len(); i++ {
		_, pt := c.At(i)
		if pt.Mean < 25 || pt.Mean > 45 {
			t.Fatalf("policy %d PSNR %v implausible", i+1, pt.Mean)
		}
	}
}

func TestAblationSolverAgreement(t *testing.T) {
	p := QuickParams()
	p.GOPs = 5
	cmp, err := AblationSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.EquilibriumPSNR.Mean-cmp.DualPSNR.Mean) > 0.5 {
		t.Fatalf("solvers disagree: %v vs %v", cmp.EquilibriumPSNR.Mean, cmp.DualPSNR.Mean)
	}
	if cmp.EquilibriumElapsed <= 0 || cmp.DualElapsed <= 0 {
		t.Fatal("elapsed times not recorded")
	}
	out := cmp.String()
	for _, want := range []string{"price equilibrium", "dual subgradient"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestAblationValidation(t *testing.T) {
	bad := Params{Runs: 0, GOPs: 1}
	if _, err := AblationBelief(bad); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := AblationSensorPolicy(bad); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := AblationSolver(bad); err == nil {
		t.Fatal("bad params accepted")
	}
}
