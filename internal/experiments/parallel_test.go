package experiments

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/stats"
)

// TestParallelDeterminism is the tentpole regression: the worker pool must
// produce byte-identical figures for any worker count, because every run
// derives all randomness from its own seed and aggregation happens strictly
// after the join, in task-index order. Run under -race this also proves the
// grid is data-race-free.
func TestParallelDeterminism(t *testing.T) {
	drivers := []struct {
		name string
		run  func(Params) (*stats.Figure, error)
	}{
		{"Fig3", Fig3},
		{"Fig5", Fig5},
		{"GammaTradeoff", GammaTradeoff},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			var baseline string
			for _, w := range workerCounts {
				p := QuickParams()
				p.Workers = w
				fig, err := d.run(p)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				csv := fig.CSV()
				if w == workerCounts[0] {
					baseline = csv
					continue
				}
				if csv != baseline {
					t.Fatalf("workers=%d CSV differs from workers=%d:\n%s\nvs\n%s",
						w, workerCounts[0], csv, baseline)
				}
			}
		})
	}
}

// TestWorkersPrecedence pins the resolution order of the two worker knobs:
// any nonzero Parallel.Workers — including negative, meaning "use every
// CPU" — beats the deprecated Params.Workers field, which is consulted only
// when Parallel.Workers is exactly zero. The negative case is the historical
// bug: the old `Parallel.Workers <= 0` guard let a positive deprecated field
// override an explicit Parallel.Workers = -1.
func TestWorkersPrecedence(t *testing.T) {
	nCPU := runtime.GOMAXPROCS(0)
	cases := []struct {
		name               string
		parallel, deprecat int
		want               int
	}{
		{"parallel wins over deprecated", 3, 7, 3},
		{"deprecated honored when parallel unset", 0, 7, 7},
		{"negative parallel beats deprecated", -1, 7, nCPU},
		{"both unset falls back to CPUs", 0, 0, nCPU},
		{"negative deprecated ignored", 0, -5, nCPU},
	}
	for _, c := range cases {
		p := QuickParams()
		p.Parallel.Workers = c.parallel
		p.Workers = c.deprecat
		if got := p.workers(); got != c.want {
			t.Errorf("%s: workers() = %d, want %d (Parallel.Workers=%d, Workers=%d)",
				c.name, got, c.want, c.parallel, c.deprecat)
		}
	}
}

// TestTopologyStudyDeterminism covers the solver-level driver, whose
// randomness flows through pre-split per-trial streams rather than sim
// seeds.
func TestTopologyStudyDeterminism(t *testing.T) {
	base, err := TopologyStudy(42, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := TopologyStudy(42, 6, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(par) {
		t.Fatalf("point counts differ: %d vs %d", len(base), len(par))
	}
	for i := range base {
		if base[i] != par[i] {
			t.Fatalf("point %d differs:\nworkers=1: %+v\nworkers=4: %+v", i, base[i], par[i])
		}
	}
}

// TestRunGridRunsEveryTaskOnce checks the dispatch accounting: every index
// exactly once, any worker count.
func TestRunGridRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 50
		counts := make([]atomic.Int32, n)
		if err := runGrid(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestRunGridCancelsOnError checks the failure path: after the first task
// error the remaining undispatched tasks are skipped, and the lowest-index
// recorded error is surfaced.
func TestRunGridCancelsOnError(t *testing.T) {
	const n = 200
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var executed atomic.Int32
		err := runGrid(n, workers, func(i int) error {
			executed.Add(1)
			if i == 5 {
				return fmt.Errorf("task %d: %w", i, boom)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if got := executed.Load(); got >= n {
			t.Fatalf("workers=%d: all %d tasks ran despite the error at index 5", workers, got)
		}
		if workers == 1 && executed.Load() != 6 {
			t.Fatalf("sequential path ran %d tasks, want exactly 6", executed.Load())
		}
	}
}

// TestRunGridReturnsLowestIndexError: when several tasks fail, the error a
// sequential loop would have hit first (among those that ran) is the one
// surfaced.
func TestRunGridReturnsLowestIndexError(t *testing.T) {
	err := runGrid(8, 4, func(i int) error {
		return fmt.Errorf("task %d failed", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "task 0 failed") &&
		!strings.Contains(err.Error(), "task 1 failed") &&
		!strings.Contains(err.Error(), "task 2 failed") &&
		!strings.Contains(err.Error(), "task 3 failed") {
		t.Fatalf("err = %v, want one of the first dispatched tasks", err)
	}
}

// TestSweepSurfacesPointContext injects a mid-grid failure — a network that
// passes the builder but fails sim.Run's validation — and checks the error
// carries its sweep point and scheme context and unwraps to the cause.
func TestSweepSurfacesPointContext(t *testing.T) {
	p := QuickParams()
	p.Workers = 4
	xs := []float64{1, 2, 3}
	fig, err := sweep(p, "failure injection", "x", xs,
		func(p Params, x float64) (*netmodel.Network, error) {
			net, err := netmodel.PaperSingleFBS(p.Config)
			if err != nil {
				return nil, err
			}
			if x == 2 { //femtovet:ignore floateq -- grid-key comparison, exact by design
				net.Gamma = 1.5 // passes the builder, fails sim.Run validation
			}
			return net, nil
		}, false)
	if err == nil {
		t.Fatalf("expected a mid-grid error, got figure %v", fig)
	}
	if !errors.Is(err, netmodel.ErrBadNetwork) {
		t.Fatalf("err = %v, want wrapped netmodel.ErrBadNetwork", err)
	}
	if !strings.Contains(err.Error(), "x=2") {
		t.Fatalf("err %q lacks the sweep-point context", err)
	}
	if !strings.Contains(err.Error(), "scheme=") {
		t.Fatalf("err %q lacks the scheme context", err)
	}
}

// TestMergeSummaryMatchesSummarize: the index-ordered Running.Merge fold
// used by the parallel aggregation must agree with the direct summary on
// the statistics the figures report.
func TestMergeSummaryMatchesSummarize(t *testing.T) {
	xs := []float64{31.2, 29.8, 33.1, 30.5, 28.9}
	merged, err := mergeSummary(xs)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := stats.Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if merged.N != direct.N {
		t.Fatalf("N %d vs %d", merged.N, direct.N)
	}
	if diff := merged.Mean - direct.Mean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("mean %v vs %v", merged.Mean, direct.Mean)
	}
	if diff := merged.HalfWidth - direct.HalfWidth; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("half-width %v vs %v", merged.HalfWidth, direct.HalfWidth)
	}
	if _, err := mergeSummary(nil); !errors.Is(err, stats.ErrNoData) {
		t.Fatalf("empty merge err = %v, want ErrNoData", err)
	}
}

// TestRunGridRecoversPanic: a panicking task must come back as an error
// naming the failing index — on both the sequential and pooled paths — not
// as a process-killing stack trace. Run under -race this also proves the
// recovery path itself is race-free.
func TestRunGridRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var executed atomic.Int32
		err := runGrid(40, workers, func(i int) error {
			executed.Add(1)
			if i == 7 {
				panic("bad grid point")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		if !strings.Contains(err.Error(), "task 7 panicked") ||
			!strings.Contains(err.Error(), "bad grid point") {
			t.Fatalf("workers=%d: err = %v, want the panicking task's index and value", workers, err)
		}
		if got := executed.Load(); got >= 40 {
			t.Fatalf("workers=%d: all %d tasks ran despite the panic at index 7", workers, got)
		}
	}
	// A non-string panic value must survive the conversion too.
	err := runGrid(3, 1, func(i int) error {
		if i == 2 {
			panic(errors.New("wrapped cause"))
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 2 panicked: wrapped cause") {
		t.Fatalf("err = %v, want task 2's panic value formatted in", err)
	}
}

// TestMergeSummaryBitwiseSequential pins mergeSummary to its reference: a
// plain sequential stats.Running accumulation over the same xs, folding one
// single-observation accumulator per element in index order. Equality is
// bitwise (struct ==, no tolerance): if mergeSummary is ever rewritten as a
// chunked or tree-shaped merge — tempting at metro scale — the fold order
// changes, the float rounding changes, and replication output silently
// shifts; this test turns that into a hard failure. Lengths 0 and 1 cover
// the no-data error and the degenerate single-observation summary.
func TestMergeSummaryBitwiseSequential(t *testing.T) {
	base := []float64{31.2, 29.8, 33.1, 30.5, 28.9, 1e-9, 7, math.Pi,
		-4.25, 1e9, 0.1, 2.2, -31.7, 0, 55.5, 1e-300, 42}
	for _, n := range []int{0, 1, 2, 5, len(base)} {
		xs := base[:n]
		var acc stats.Running
		for _, x := range xs { // the reference: sequential, index order
			var one stats.Running
			one.Add(x)
			acc.Merge(&one)
		}
		want, werr := acc.Summary()
		got, gerr := mergeSummary(xs)
		if n == 0 {
			if !errors.Is(gerr, stats.ErrNoData) || !errors.Is(werr, stats.ErrNoData) {
				t.Fatalf("n=0: errs = (%v, %v), want ErrNoData from both", gerr, werr)
			}
			continue
		}
		if gerr != nil || werr != nil {
			t.Fatalf("n=%d: errs = (%v, %v)", n, gerr, werr)
		}
		if got != want {
			t.Fatalf("n=%d: mergeSummary %+v differs bitwise from the sequential fold %+v", n, got, want)
		}
	}
}

// TestRunGridErrorAtLastIndex: an error at the final dispatched index has no
// undispatched tasks left to cancel; it must still be recorded and surfaced
// after the join rather than lost to an already-drained queue.
func TestRunGridErrorAtLastIndex(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 4} {
		err := runGrid(n, workers, func(i int) error {
			if i == n-1 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("task %d failed", n-1)) {
			t.Fatalf("workers=%d: err = %v, want the last index's error", workers, err)
		}
	}
}

// TestRunGridConcurrentErrorsLowestWins forces two workers to fail at the
// same instant — both tasks rendezvous at a barrier before erroring, so
// neither failure can cancel the other — and checks the join still reports
// the lowest-index error, exactly what a sequential loop would have hit.
func TestRunGridConcurrentErrorsLowestWins(t *testing.T) {
	var barrier sync.WaitGroup
	barrier.Add(2)
	err := runGrid(2, 2, func(i int) error {
		barrier.Done()
		barrier.Wait() // both tasks are now committed to failing
		return fmt.Errorf("task %d failed", i)
	})
	if err == nil || !strings.Contains(err.Error(), "task 0 failed") {
		t.Fatalf("err = %v, want task 0's error to win deterministically", err)
	}
}

// TestGammaTradeoffProtectsPrimaryUsers is the end-to-end acceptance check
// for the collision-accounting fix: across the gamma sweep, the realized
// worst-channel conditional collision rate must stay within sampling noise
// of the threshold (mean <= gamma + 3 standard errors).
func TestGammaTradeoffProtectsPrimaryUsers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-gamma sweep at confidence scale")
	}
	// Result.CollisionRate is the max over M channels of a per-channel
	// proportion, so its expectation sits above gamma by an order-statistic
	// bias that shrinks as 1/sqrt(busy slots). GOPs=200 (2000 slots per run,
	// matching sim's long-run collision test) keeps that bias inside the
	// 0.02 slack below.
	p := Params{Runs: 3, GOPs: 200, BaseSeed: 1000}
	fig, err := GammaTradeoff(p)
	if err != nil {
		t.Fatal(err)
	}
	coll := fig.Curve("Realized collision rate")
	if coll == nil || coll.Len() == 0 {
		t.Fatal("collision curve missing")
	}
	for i := 0; i < coll.Len(); i++ {
		gamma, s := coll.At(i)
		stderr := s.StdDev / math.Sqrt(float64(s.N))
		if s.Mean > gamma+3*stderr+0.02 {
			t.Errorf("gamma=%v: realized conditional rate %.4f exceeds gamma + 3*stderr (+slack), stderr=%.4f",
				gamma, s.Mean, stderr)
		}
		if s.Mean == 0 {
			t.Errorf("gamma=%v: zero realized collision rate; access rule looks inert", gamma)
		}
	}
}
