package experiments

import (
	"fmt"

	"femtocr/internal/netmodel"
	"femtocr/internal/packetsim"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
)

// EngineComparison cross-validates the two simulation engines: the
// rate-based engine of internal/sim (expected-quality accounting, the
// paper's model) and the packet-level engine of internal/packetsim
// (explicit NAL queues, ARQ, deadlines). One curve per engine per scheme,
// indexed by scheme number; the curves should track each other closely.
func EngineComparison(p Params) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	net, err := netmodel.PaperSingleFBS(p.Config)
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure("Validation — rate-based vs packet-level engines",
		"Scheme (1=Proposed, 2=Heuristic 1, 3=Heuristic 2)", "Y-PSNR (dB)")
	rate := stats.NewSeries("Rate-based engine")
	pkt := stats.NewSeries("Packet-level engine")
	fig.Add(rate)
	fig.Add(pkt)

	schs := schemes()
	type cell struct{ rate, pkt float64 }
	slots := make([]cell, len(schs)*p.Runs)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		sch := schs[i/p.Runs]
		r := i % p.Runs
		seed := p.BaseSeed + uint64(r)
		rr, err := sim.Run(net, sim.Options{Seed: seed, GOPs: p.GOPs, Scheme: sch, WarmStart: p.WarmStart})
		if err != nil {
			return fmt.Errorf("rate engine scheme=%v run %d: %w", sch, r, err)
		}
		pr, err := packetsim.Run(net, packetsim.Options{Seed: seed, GOPs: p.GOPs, Scheme: sch})
		if err != nil {
			return fmt.Errorf("packet engine scheme=%v run %d: %w", sch, r, err)
		}
		slots[i] = cell{rate: rr.MeanPSNR, pkt: pr.MeanPSNR}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rateVals := make([]float64, p.Runs)
	pktVals := make([]float64, p.Runs)
	for si, sch := range schs {
		for r := 0; r < p.Runs; r++ {
			rateVals[r] = slots[si*p.Runs+r].rate
			pktVals[r] = slots[si*p.Runs+r].pkt
		}
		rs, err := mergeSummary(rateVals)
		if err != nil {
			return nil, err
		}
		ps, err := mergeSummary(pktVals)
		if err != nil {
			return nil, err
		}
		rate.Append(float64(sch), rs)
		pkt.Append(float64(sch), ps)
	}
	return fig, nil
}
