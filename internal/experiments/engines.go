package experiments

import (
	"femtocr/internal/netmodel"
	"femtocr/internal/packetsim"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
)

// EngineComparison cross-validates the two simulation engines: the
// rate-based engine of internal/sim (expected-quality accounting, the
// paper's model) and the packet-level engine of internal/packetsim
// (explicit NAL queues, ARQ, deadlines). One curve per engine per scheme,
// indexed by scheme number; the curves should track each other closely.
func EngineComparison(p Params) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	net, err := netmodel.PaperSingleFBS(p.Config)
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure("Validation — rate-based vs packet-level engines",
		"Scheme (1=Proposed, 2=Heuristic 1, 3=Heuristic 2)", "Y-PSNR (dB)")
	rate := stats.NewSeries("Rate-based engine")
	pkt := stats.NewSeries("Packet-level engine")
	fig.Add(rate)
	fig.Add(pkt)

	for _, sch := range schemes() {
		var rateVals, pktVals []float64
		for r := 0; r < p.Runs; r++ {
			seed := p.BaseSeed + uint64(r)
			rr, err := sim.Run(net, sim.Options{Seed: seed, GOPs: p.GOPs, Scheme: sch})
			if err != nil {
				return nil, err
			}
			pr, err := packetsim.Run(net, packetsim.Options{Seed: seed, GOPs: p.GOPs, Scheme: sch})
			if err != nil {
				return nil, err
			}
			rateVals = append(rateVals, rr.MeanPSNR)
			pktVals = append(pktVals, pr.MeanPSNR)
		}
		rs, err := stats.Summarize(rateVals)
		if err != nil {
			return nil, err
		}
		ps, err := stats.Summarize(pktVals)
		if err != nil {
			return nil, err
		}
		rate.Append(float64(sch), rs)
		pkt.Append(float64(sch), ps)
	}
	return fig, nil
}
