// Package experiments regenerates every figure of the paper's evaluation
// section (§V). Each driver sweeps the figure's parameter, runs the three
// schemes (plus the eq. (23) upper bound where the paper plots it) over
// independent replications, and returns the mean Y-PSNR series with 95%
// confidence intervals — the same rows the paper's figures report.
package experiments

import (
	"errors"
	"fmt"

	"femtocr/internal/netmodel"
	"femtocr/internal/par"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
)

// ErrBadParams is returned for invalid experiment parameters.
var ErrBadParams = errors.New("experiments: invalid parameters")

// Params controls an experiment's scale.
type Params struct {
	// Runs is the number of independent replications per point (the paper
	// uses 10).
	Runs int
	// GOPs simulated per run.
	GOPs int
	// BaseSeed: replication r of point p uses seed BaseSeed + r.
	BaseSeed uint64
	// Workers caps the number of concurrent simulation runs; 0 (or any
	// non-positive value) uses runtime.GOMAXPROCS(0). Every run derives all
	// randomness from its own seed, so results are bitwise-identical for
	// any worker count.
	//
	// Deprecated: set Parallel.Workers instead. This field is consulted
	// only when Parallel.Workers is exactly zero (unset), so existing
	// callers keep working; any nonzero Parallel.Workers — including
	// negative values meaning "use every CPU" — takes precedence.
	Workers int
	// Parallel bundles the parallel-execution knobs shared with
	// sim.Options: Workers caps concurrent runs (same contract as the
	// deprecated Workers field, which it supersedes) and Shards is
	// forwarded to sharded simulations.
	Parallel par.Parallelism
	// Config is the scenario configuration; zero value means the paper's
	// defaults.
	Config netmodel.Config
	// WarmStart forwards sim.Options.WarmStart to every replication, so
	// each run's engine carries dual multipliers across consecutive slots.
	// Figure data is identical either way — the sim layer guarantees
	// warm-started runs reproduce cold allocations exactly — so this is
	// purely a wall-clock knob for large sweeps.
	WarmStart bool
}

// PaperParams returns the evaluation scale of §V: 10 runs, 20 GOPs each,
// default configuration.
func PaperParams() Params {
	return Params{Runs: 10, GOPs: 20, BaseSeed: 1000, Config: netmodel.DefaultConfig()}
}

// QuickParams returns a reduced scale for smoke tests and CI.
func QuickParams() Params {
	return Params{Runs: 2, GOPs: 3, BaseSeed: 1000, Config: netmodel.DefaultConfig()}
}

func (p Params) validate() error {
	if p.Runs < 1 {
		return fmt.Errorf("%w: runs=%d", ErrBadParams, p.Runs)
	}
	if p.GOPs < 1 {
		return fmt.Errorf("%w: GOPs=%d", ErrBadParams, p.GOPs)
	}
	return nil
}

// normalize validates p and substitutes the paper's default configuration
// when Config was left zero.
func (p Params) normalize() (Params, error) {
	if err := p.validate(); err != nil {
		return p, err
	}
	if p.Config.M == 0 {
		p.Config = netmodel.DefaultConfig()
	}
	return p, nil
}

// schemes lists the three compared schemes in the paper's legend order.
func schemes() []sim.Scheme {
	return []sim.Scheme{sim.Proposed, sim.Heuristic1, sim.Heuristic2}
}

// replicate runs one (network, scheme) point across p.Runs seeds over the
// worker pool and summarizes the mean PSNR, and the bound PSNR when tracked.
func replicate(p Params, net *netmodel.Network, scheme sim.Scheme, trackBound bool) (mean, bound stats.Summary, err error) {
	track := trackBound && scheme == sim.Proposed
	psnrs := make([]float64, p.Runs)
	bounds := make([]float64, p.Runs)
	err = runGrid(p.Runs, p.workers(), func(r int) error {
		res, err := sim.Run(net, sim.Options{
			Seed:       p.BaseSeed + uint64(r),
			GOPs:       p.GOPs,
			Scheme:     scheme,
			TrackBound: track,
			WarmStart:  p.WarmStart,
		})
		if err != nil {
			return fmt.Errorf("scheme=%v run %d: %w", scheme, r, err)
		}
		psnrs[r] = res.MeanPSNR
		if track {
			bounds[r] = res.BoundPSNR
		}
		return nil
	})
	if err != nil {
		return stats.Summary{}, stats.Summary{}, err
	}
	mean, err = mergeSummary(psnrs)
	if err != nil {
		return stats.Summary{}, stats.Summary{}, err
	}
	if track {
		bound, err = mergeSummary(bounds)
		if err != nil {
			return stats.Summary{}, stats.Summary{}, err
		}
	}
	return mean, bound, nil
}

// sweep evaluates all schemes over a parameter sweep, building one curve per
// scheme plus an optional "Upper bound" curve. The whole
// (sweep point, scheme, run) grid fans out over the worker pool at once, so
// a slow point does not serialize the rest of the sweep.
func sweep(p Params, title, xLabel string, xs []float64,
	build func(p Params, x float64) (*netmodel.Network, error), trackBound bool) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure(title, xLabel, "Y-PSNR (dB)")
	var boundSeries *stats.Series
	if trackBound {
		boundSeries = stats.NewSeries("Upper bound")
		fig.Add(boundSeries)
	}
	schs := schemes()
	curves := make(map[sim.Scheme]*stats.Series)
	for _, sch := range schs {
		curves[sch] = stats.NewSeries(sch.String())
		fig.Add(curves[sch])
	}
	nets := make([]*netmodel.Network, len(xs))
	for i, x := range xs {
		if nets[i], err = build(p, x); err != nil {
			return nil, fmt.Errorf("x=%v: %w", x, err)
		}
	}
	type cell struct{ psnr, bound float64 }
	perScheme := p.Runs
	perPoint := len(schs) * perScheme
	slots := make([]cell, len(xs)*perPoint)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		xi := i / perPoint
		si := (i % perPoint) / perScheme
		r := i % perScheme
		sch := schs[si]
		track := trackBound && sch == sim.Proposed
		res, err := sim.Run(nets[xi], sim.Options{
			Seed:       p.BaseSeed + uint64(r),
			GOPs:       p.GOPs,
			Scheme:     sch,
			TrackBound: track,
			WarmStart:  p.WarmStart,
		})
		if err != nil {
			return fmt.Errorf("x=%v scheme=%v run %d: %w", xs[xi], sch, r, err)
		}
		slots[i] = cell{psnr: res.MeanPSNR, bound: res.BoundPSNR}
		return nil
	})
	if err != nil {
		return nil, err
	}
	scratch := make([]float64, perScheme)
	for xi, x := range xs {
		for si, sch := range schs {
			base := xi*perPoint + si*perScheme
			for r := 0; r < perScheme; r++ {
				scratch[r] = slots[base+r].psnr
			}
			mean, err := mergeSummary(scratch)
			if err != nil {
				return nil, err
			}
			curves[sch].Append(x, mean)
			if trackBound && sch == sim.Proposed {
				for r := 0; r < perScheme; r++ {
					scratch[r] = slots[base+r].bound
				}
				bound, err := mergeSummary(scratch)
				if err != nil {
					return nil, err
				}
				boundSeries.Append(x, bound)
			}
		}
	}
	return fig, nil
}
