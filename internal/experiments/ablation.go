package experiments

import (
	"fmt"
	"time"

	"femtocr/internal/netmodel"
	"femtocr/internal/sensing"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
)

// Ablation experiments for the design choices called out in DESIGN.md.
// These go beyond the paper's figures: each isolates one component of the
// system and quantifies its contribution under the paper's workload.

// AblationBelief compares the paper's per-slot stationary fusion prior with
// the Bayesian occupancy filter (internal/belief) across channel-mixing
// speeds. The x-axis scales both Markov transition probabilities by the
// given factor while keeping utilization fixed at the paper's eta, so x = 1
// is the paper's fast-mixing channel and smaller x means slower primary
// traffic where history is informative.
func AblationBelief(p Params) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure("Ablation — fusion prior: stationary vs Bayesian filter",
		"Markov mixing-speed factor", "Y-PSNR (dB)")
	stationary := stats.NewSeries("Stationary prior (paper)")
	filtered := stats.NewSeries("Belief filter")
	fig.Add(stationary)
	fig.Add(filtered)

	factors := []float64{0.125, 0.25, 0.5, 1.0}
	nets := make([]*netmodel.Network, len(factors))
	for i, factor := range factors {
		cfg := p.Config
		cfg.P01 *= factor
		cfg.P10 *= factor
		var err error
		if nets[i], err = netmodel.PaperSingleFBS(cfg); err != nil {
			return nil, err
		}
	}
	perFactor := 2 * p.Runs // stationary runs, then belief-filter runs
	slots := make([]float64, len(factors)*perFactor)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		fi := i / perFactor
		track := (i%perFactor)/p.Runs == 1
		r := i % p.Runs
		res, err := sim.Run(nets[fi], sim.Options{
			Seed:         p.BaseSeed + uint64(r),
			GOPs:         p.GOPs,
			TrackBeliefs: track,
			WarmStart:    p.WarmStart,
		})
		if err != nil {
			return fmt.Errorf("factor=%v beliefs=%v run %d: %w", factors[fi], track, r, err)
		}
		slots[i] = res.MeanPSNR
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi, factor := range factors {
		base := fi * perFactor
		s, err := mergeSummary(slots[base : base+p.Runs])
		if err != nil {
			return nil, err
		}
		stationary.Append(factor, s)
		if s, err = mergeSummary(slots[base+p.Runs : base+perFactor]); err != nil {
			return nil, err
		}
		filtered.Append(factor, s)
	}
	return fig, nil
}

// AblationSensorPolicy compares the user-sensor assignment policies of
// internal/sensing on the single-FBS workload.
func AblationSensorPolicy(p Params) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	net, err := netmodel.PaperSingleFBS(p.Config)
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure("Ablation — sensor-to-channel assignment policy",
		"Policy (1=round-robin, 2=random, 3=stratified)", "Y-PSNR (dB)")
	series := stats.NewSeries("Proposed")
	fig.Add(series)
	policies := []sensing.AssignmentPolicy{
		sensing.RoundRobin, sensing.RandomAssign, sensing.Stratified,
	}
	slots := make([]float64, len(policies)*p.Runs)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		pol := policies[i/p.Runs]
		r := i % p.Runs
		res, err := sim.Run(net, sim.Options{
			Seed:         p.BaseSeed + uint64(r),
			GOPs:         p.GOPs,
			SensorPolicy: pol,
			WarmStart:    p.WarmStart,
		})
		if err != nil {
			return fmt.Errorf("policy=%v run %d: %w", pol, r, err)
		}
		slots[i] = res.MeanPSNR
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pol := range policies {
		s, err := mergeSummary(slots[pi*p.Runs : (pi+1)*p.Runs])
		if err != nil {
			return nil, err
		}
		series.Append(float64(pol), s)
	}
	return fig, nil
}

// SolverComparison quantifies the quality-vs-cost trade between the
// distributed subgradient solver (the paper's Tables I/II) and the
// price-equilibrium solver used as the fast default.
type SolverComparison struct {
	EquilibriumPSNR    stats.Summary
	DualPSNR           stats.Summary
	EquilibriumElapsed time.Duration
	DualElapsed        time.Duration
}

// AblationSolver runs the single-FBS workload under both solvers.
func AblationSolver(p Params) (*SolverComparison, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	net, err := netmodel.PaperSingleFBS(p.Config)
	if err != nil {
		return nil, err
	}
	out := &SolverComparison{}
	for _, useDual := range []bool{false, true} {
		vals := make([]float64, p.Runs)
		start := time.Now()
		err = runGrid(p.Runs, p.workers(), func(r int) error {
			res, err := sim.Run(net, sim.Options{
				Seed:          p.BaseSeed + uint64(r),
				GOPs:          p.GOPs,
				UseDualSolver: useDual,
				WarmStart:     p.WarmStart,
			})
			if err != nil {
				return fmt.Errorf("dual=%v run %d: %w", useDual, r, err)
			}
			vals[r] = res.MeanPSNR
			return nil
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		s, err := mergeSummary(vals)
		if err != nil {
			return nil, err
		}
		if useDual {
			out.DualPSNR = s
			out.DualElapsed = elapsed
		} else {
			out.EquilibriumPSNR = s
			out.EquilibriumElapsed = elapsed
		}
	}
	return out, nil
}

// String renders the comparison.
func (s *SolverComparison) String() string {
	return fmt.Sprintf(
		"solver comparison over identical seeds:\n"+
			"  price equilibrium: %.3f dB ±%.3f in %v\n"+
			"  dual subgradient:  %.3f dB ±%.3f in %v\n",
		s.EquilibriumPSNR.Mean, s.EquilibriumPSNR.HalfWidth, s.EquilibriumElapsed,
		s.DualPSNR.Mean, s.DualPSNR.HalfWidth, s.DualElapsed)
}
