package experiments

import (
	"fmt"

	"femtocr/internal/netmodel"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
)

// Fig3 reproduces Fig. 3: received video quality of the three CR users in
// the single-FBS scenario (Bus, Mobile, Harbor), one bar group per user and
// one curve per scheme. The x-axis is the user index (1..3).
func Fig3(p Params) (*stats.Figure, error) {
	return perUserFigure(p, "Fig. 3 — Single FBS: per-user video quality", netmodel.PaperSingleFBS)
}

// Fig5 reports the per-user video quality of the paper's §V-B interfering
// deployment (the Fig. 5 path topology: three FBSs sharing the licensed
// band, three users each) — the multi-cell analogue of Fig. 3. The x-axis
// is the user index (1..9).
func Fig5(p Params) (*stats.Figure, error) {
	return perUserFigure(p, "Fig. 5 — Interfering FBSs: per-user video quality", netmodel.PaperInterfering)
}

// perUserFigure runs every (scheme, run) cell of a per-user quality figure
// over the worker pool and summarizes each user's PSNR per scheme.
func perUserFigure(p Params, title string, build func(netmodel.Config) (*netmodel.Network, error)) (*stats.Figure, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, err
	}
	net, err := build(p.Config)
	if err != nil {
		return nil, err
	}
	fig := stats.NewFigure(title, "User index", "Y-PSNR (dB)")
	schs := schemes()
	slots := make([][]float64, len(schs)*p.Runs)
	err = runGrid(len(slots), p.workers(), func(i int) error {
		sch := schs[i/p.Runs]
		r := i % p.Runs
		res, err := sim.Run(net, sim.Options{
			Seed:      p.BaseSeed + uint64(r),
			GOPs:      p.GOPs,
			Scheme:    sch,
			WarmStart: p.WarmStart,
		})
		if err != nil {
			return fmt.Errorf("scheme=%v run %d: %w", sch, r, err)
		}
		slots[i] = res.PerUserPSNR
		return nil
	})
	if err != nil {
		return nil, err
	}
	scratch := make([]float64, p.Runs)
	for si, sch := range schs {
		series := stats.NewSeries(sch.String())
		for j := 0; j < net.K(); j++ {
			for r := 0; r < p.Runs; r++ {
				scratch[r] = slots[si*p.Runs+r][j]
			}
			s, err := mergeSummary(scratch)
			if err != nil {
				return nil, err
			}
			series.Append(float64(j+1), s)
		}
		fig.Add(series)
	}
	return fig, nil
}

// Fig4a reproduces Fig. 4(a): convergence of the two dual variables
// lambda_0 (common channel) and lambda_1 (FBS band) over the subgradient
// iterations of the distributed algorithm, on the first slot of the
// single-FBS scenario. Iterations is the trace length (the paper shows
// ~800). Stride subsamples the rendered figure; the returned trace itself
// is complete.
func Fig4a(p Params, iterations, stride int) (*stats.Figure, [][]float64, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, nil, err
	}
	if iterations < 2 {
		return nil, nil, fmt.Errorf("%w: iterations=%d", ErrBadParams, iterations)
	}
	if stride < 1 {
		stride = 1
	}
	net, err := netmodel.PaperSingleFBS(p.Config)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run(net, sim.Options{
		Seed:             p.BaseSeed,
		GOPs:             1,
		CaptureDualTrace: true,
		DualIterations:   iterations,
	})
	if err != nil {
		return nil, nil, err
	}
	fig := stats.NewFigure("Fig. 4(a) — Convergence of the dual variables", "Iteration", "Dual variable value")
	l0 := stats.NewSeries("lambda_0")
	l1 := stats.NewSeries("lambda_1")
	for i, row := range res.DualTrace {
		if i%stride != 0 && i != len(res.DualTrace)-1 {
			continue
		}
		l0.Append(float64(i), stats.Summary{N: 1, Mean: row[0]})
		l1.Append(float64(i), stats.Summary{N: 1, Mean: row[1]})
	}
	fig.Add(l0)
	fig.Add(l1)
	return fig, res.DualTrace, nil
}

// Fig4b reproduces Fig. 4(b): single-FBS average quality versus the number
// of licensed channels M = 4..12 step 2.
func Fig4b(p Params) (*stats.Figure, error) {
	xs := []float64{4, 6, 8, 10, 12}
	return sweep(p, "Fig. 4(b) — Video quality vs number of channels", "Number of channels (M)", xs,
		func(p Params, x float64) (*netmodel.Network, error) {
			cfg := p.Config
			cfg.M = int(x)
			return netmodel.PaperSingleFBS(cfg)
		}, false)
}

// Fig4c reproduces Fig. 4(c): single-FBS average quality versus channel
// utilization eta = 0.3..0.7, holding P10 fixed.
func Fig4c(p Params) (*stats.Figure, error) {
	xs := []float64{0.3, 0.4, 0.5, 0.6, 0.7}
	return sweep(p, "Fig. 4(c) — Video quality vs channel utilization", "Channel utilization (eta)", xs,
		func(p Params, x float64) (*netmodel.Network, error) {
			cfg, err := p.Config.WithUtilization(x)
			if err != nil {
				return nil, err
			}
			return netmodel.PaperSingleFBS(cfg)
		}, false)
}

// Fig6a reproduces Fig. 6(a): interfering-FBS average quality versus
// channel utilization, including the eq. (23) upper bound.
func Fig6a(p Params) (*stats.Figure, error) {
	xs := []float64{0.3, 0.4, 0.5, 0.6, 0.7}
	return sweep(p, "Fig. 6(a) — Interfering FBSs: video quality vs channel utilization",
		"Channel utilization (eta)", xs,
		func(p Params, x float64) (*netmodel.Network, error) {
			cfg, err := p.Config.WithUtilization(x)
			if err != nil {
				return nil, err
			}
			return netmodel.PaperInterfering(cfg)
		}, true)
}

// SensingErrorPairs are the five {epsilon, delta} operating points of
// Fig. 6(b).
var SensingErrorPairs = [][2]float64{
	{0.2, 0.48}, {0.24, 0.38}, {0.3, 0.3}, {0.38, 0.24}, {0.48, 0.2},
}

// Fig6b reproduces Fig. 6(b): interfering-FBS average quality across the
// five sensing-error operating points, plotted against the false-alarm
// probability epsilon.
func Fig6b(p Params) (*stats.Figure, error) {
	xs := make([]float64, len(SensingErrorPairs))
	deltaOf := make(map[float64]float64, len(SensingErrorPairs))
	for i, pair := range SensingErrorPairs {
		xs[i] = pair[0]
		deltaOf[pair[0]] = pair[1]
	}
	return sweep(p, "Fig. 6(b) — Interfering FBSs: video quality vs sensing error",
		"Probability of false alarm (epsilon)", xs,
		func(p Params, x float64) (*netmodel.Network, error) {
			cfg := p.Config
			cfg.Eps = x
			cfg.Delta = deltaOf[x]
			return netmodel.PaperInterfering(cfg)
		}, true)
}

// Fig6c reproduces Fig. 6(c): interfering-FBS average quality versus the
// common-channel bandwidth B0 = 0.1..0.5 Mbps with B1 fixed at 0.3 Mbps.
func Fig6c(p Params) (*stats.Figure, error) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	return sweep(p, "Fig. 6(c) — Interfering FBSs: video quality vs common-channel bandwidth",
		"Bandwidth of the common channel (Mbps)", xs,
		func(p Params, x float64) (*netmodel.Network, error) {
			cfg := p.Config
			cfg.B0 = x
			cfg.B1 = 0.3
			return netmodel.PaperInterfering(cfg)
		}, true)
}

// All runs every figure at the given scale and returns them keyed by id in
// presentation order.
func All(p Params) ([]Named, error) {
	var out []Named
	fig3, err := Fig3(p)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	out = append(out, Named{ID: "fig3", Figure: fig3})
	fig4a, _, err := Fig4a(p, 600, 25)
	if err != nil {
		return nil, fmt.Errorf("fig4a: %w", err)
	}
	out = append(out, Named{ID: "fig4a", Figure: fig4a})
	for _, f := range []struct {
		id  string
		run func(Params) (*stats.Figure, error)
	}{
		{"fig4b", Fig4b}, {"fig4c", Fig4c}, {"fig5", Fig5},
		{"fig6a", Fig6a}, {"fig6b", Fig6b}, {"fig6c", Fig6c},
	} {
		fig, err := f.run(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.id, err)
		}
		out = append(out, Named{ID: f.id, Figure: fig})
	}
	return out, nil
}

// Named pairs a figure with its identifier.
type Named struct {
	ID     string
	Figure *stats.Figure
}
