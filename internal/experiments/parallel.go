package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"femtocr/internal/stats"
)

// workers resolves the effective worker count for this experiment: the
// explicit Params.Workers when positive, else one worker per available CPU.
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runGrid executes n independent tasks over a pool of workers, calling
// do(i) exactly once for every index not skipped by cancellation. Each task
// must write its output into its own preallocated slot, so the results are
// identical — bit for bit — for any worker count; only the wall-clock
// schedule changes. On the first task error the remaining undispatched
// tasks are cancelled, and the lowest-index recorded error is returned
// (indices are dispatched in ascending order, so this is the error a
// sequential loop would have hit first among those that ran).
func runGrid(n, workers int, do func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := runTask(do, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	//femtovet:shared -- the atomic dispatch counter hands each index to exactly one worker, so errs[i] has a single writer
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if err := runTask(do, i); err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTask invokes do(i), converting a panic into an error that names the
// failing task, so one bad grid point reports its index instead of taking
// down the whole sweep with a bare stack trace.
func runTask(do func(i int) error, i int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("task %d panicked: %v", i, p)
		}
	}()
	return do(i)
}

// RunGrid exposes the deterministic worker pool to callers outside the
// package (the CLI replication loops). See runGrid for the contract: do(i)
// must write only into task i's own preallocated slot, and all aggregation
// must happen after RunGrid returns, in index order.
func RunGrid(n, workers int, do func(i int) error) error {
	return runGrid(n, workers, do)
}

// mergeSummary folds per-task observations into a Summary by merging
// single-observation accumulators in task-index order. Because the fold
// order is fixed by the slot layout — never by goroutine scheduling — the
// result is bitwise-deterministic for any worker count.
func mergeSummary(xs []float64) (stats.Summary, error) {
	var acc stats.Running
	for _, x := range xs {
		var one stats.Running
		one.Add(x)
		acc.Merge(&one)
	}
	return acc.Summary()
}
