package experiments

import (
	"femtocr/internal/par"
	"femtocr/internal/stats"
)

// workers resolves the effective worker count for this experiment.
// Parallel.Workers always wins when set to anything nonzero — including
// negative values, which EffectiveWorkers treats as "use every CPU" — and
// the deprecated Params.Workers field is consulted only when Parallel is
// left at its zero value. (A previous version let a positive deprecated
// field override an explicitly negative Parallel.Workers.)
func (p Params) workers() int {
	if p.Parallel.Workers == 0 && p.Workers > 0 {
		return p.Workers
	}
	return p.Parallel.EffectiveWorkers()
}

// runGrid executes n independent tasks over a pool of workers; see
// par.RunGrid for the determinism contract (per-task slots, post-join
// index-order aggregation, lowest-index error, panic recovery).
func runGrid(n, workers int, do func(i int) error) error {
	return par.RunGrid(n, workers, do)
}

// RunGrid exposes the deterministic worker pool to callers outside the
// package (the CLI replication loops). See par.RunGrid for the contract:
// do(i) must write only into task i's own preallocated slot, and all
// aggregation must happen after RunGrid returns, in index order.
func RunGrid(n, workers int, do func(i int) error) error {
	return par.RunGrid(n, workers, do)
}

// mergeSummary folds per-task observations into a Summary by merging
// single-observation accumulators in task-index order. Because the fold
// order is fixed by the slot layout — never by goroutine scheduling — the
// result is bitwise-deterministic for any worker count.
func mergeSummary(xs []float64) (stats.Summary, error) {
	var acc stats.Running
	for _, x := range xs {
		var one stats.Running
		one.Add(x)
		acc.Merge(&one)
	}
	return acc.Summary()
}
