package core

// Allocation-regression pins for the solver hot path. Every solver's
// SolveInto must be allocation-free in steady state (all scratch comes from
// the pooled workspace, all output goes into the caller's Allocation), and
// greedy channel allocation must stay within a small constant budget per
// Allocate (only the escaping GreedyResult allocates). These tests fail if
// a future change reintroduces per-solve makes, maps, or sort closures.
//
// Since femtovet v3 the same contract is checked statically: the hotpath
// analyzer flags allocation-causing constructs reachable from the
// //femtovet:hotpath roots at vet time, and scripts/escape_check.sh diffs
// the compiler's -gcflags=-m output. These AllocsPerRun pins remain the
// runtime backstop for whatever escape analysis the static checks cannot
// see (interface dispatch, closure escapes the flow tracker misses).

import (
	"testing"

	"femtocr/internal/rng"
)

// solveIntoBudget is the average allocations permitted per SolveInto. The
// expected value is zero; the headroom absorbs the occasional sync.Pool
// miss after a GC, which replaces the whole workspace at once.
const solveIntoBudget = 2

func TestSolveIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	in := randomInstance(rng.New(3), 9, 3)
	cases := []struct {
		name   string
		solver Solver
	}{
		{"dual", NewDualSolver()},
		{"equilibrium", &EquilibriumSolver{}},
		{"bruteforce", &BruteForceSolver{}},
		{"heuristic1", Heuristic1{}},
		{"heuristic2", Heuristic2{}},
		{"maxthroughput", MaxThroughput{}},
		{"roundrobin", &RoundRobin{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			is, ok := tc.solver.(IntoSolver)
			if !ok {
				t.Fatalf("%T does not implement IntoSolver", tc.solver)
			}
			out := NewAllocation(in.K())
			if err := is.SolveInto(in, out); err != nil { // warm the pool
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(50, func() {
				if err := is.SolveInto(in, out); err != nil {
					t.Fatal(err)
				}
			})
			if avg > solveIntoBudget {
				t.Errorf("SolveInto allocates %.2f/op in steady state, budget %d", avg, solveIntoBudget)
			}
		})
	}
}

func TestGreedyAllocateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	// The budget covers only the escaping result (GreedyResult, its
	// allocation, gain vector, and step log) — the pre-rework figure was
	// ~7400 allocs per Allocate from per-Q-evaluation instance rebuilds.
	const budget = 48
	p := interferingProblem(rng.New(7), 4)
	for _, tc := range []struct {
		name string
		g    *GreedyAllocator
	}{
		{"eager", NewGreedyAllocator(&EquilibriumSolver{})},
		{"lazy", NewGreedyAllocator(&EquilibriumSolver{}, WithLazyEvaluation())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.g.Allocate(p); err != nil { // warm the pool
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				if _, err := tc.g.Allocate(p); err != nil {
					t.Fatal(err)
				}
			})
			if avg > budget {
				t.Errorf("Allocate allocates %.2f/op in steady state, budget %d", avg, budget)
			}
		})
	}
}
