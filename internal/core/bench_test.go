package core

// Ablation benchmarks for the design choices called out in DESIGN.md:
// solver choice (distributed subgradient vs price equilibrium vs brute
// force), greedy evaluation strategy (eager vs lazy), and the dual step
// schedule (diminishing vs constant).

import (
	"testing"

	"femtocr/internal/rng"
)

func benchInstance(k, n int) *Instance {
	return randomInstance(rng.New(42), k, n)
}

func BenchmarkWaterfill(b *testing.B) {
	users := make([]waterfillUser, 9)
	s := rng.New(1)
	for i := range users {
		users[i] = waterfillUser{ps: 0.3 + 0.7*s.Float64(), w: 25 + 10*s.Float64(), r: 0.1 + 0.4*s.Float64(), cap: -1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		waterfill(users, 1)
	}
}

func BenchmarkDualSolver(b *testing.B) {
	in := benchInstance(9, 3)
	solver := NewDualSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDualSolverConstantStep(b *testing.B) {
	in := benchInstance(9, 3)
	solver := NewDualSolver(WithConstantStep(), WithStep(1e-3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquilibriumSolver(b *testing.B) {
	in := benchInstance(9, 3)
	solver := &EquilibriumSolver{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForceSolver(b *testing.B) {
	in := benchInstance(9, 3)
	solver := &BruteForceSolver{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristic1(b *testing.B) {
	in := benchInstance(9, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Heuristic1{}).Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristic2(b *testing.B) {
	in := benchInstance(9, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Heuristic2{}).Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyEager(b *testing.B) {
	p := interferingProblemBench(5)
	g := NewGreedyAllocator(&EquilibriumSolver{})
	b.ReportAllocs()
	b.ResetTimer()
	evals := 0
	for i := 0; i < b.N; i++ {
		res, err := g.Allocate(p)
		if err != nil {
			b.Fatal(err)
		}
		evals = res.Evaluations
	}
	b.ReportMetric(float64(evals), "Q_evals")
}

func BenchmarkGreedyLazy(b *testing.B) {
	p := interferingProblemBench(5)
	g := NewGreedyAllocator(&EquilibriumSolver{}, WithLazyEvaluation())
	b.ReportAllocs()
	b.ResetTimer()
	evals := 0
	for i := 0; i < b.N; i++ {
		res, err := g.Allocate(p)
		if err != nil {
			b.Fatal(err)
		}
		evals = res.Evaluations
	}
	b.ReportMetric(float64(evals), "Q_evals")
}

// interferingProblemBench mirrors the test helper at benchmark scale.
func interferingProblemBench(numChannels int) *ChannelProblem {
	return interferingProblem(rng.New(7), numChannels)
}
