package core

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/rng"
)

// allSolvers returns every scheme that must produce feasible allocations.
func allSolvers() []Solver {
	return []Solver{
		NewDualSolver(),
		&EquilibriumSolver{},
		&BruteForceSolver{},
		Heuristic1{},
		Heuristic2{},
	}
}

func TestSolversProduceFeasibleAllocations(t *testing.T) {
	root := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		s := root.SplitIndex("trial", trial)
		k := 1 + s.IntN(8)
		n := 1 + s.IntN(3)
		in := randomInstance(s, k, n)
		for _, solver := range allSolvers() {
			alloc, err := solver.Solve(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, solver.Name(), err)
			}
			if err := alloc.Feasible(in, 1e-9); err != nil {
				t.Fatalf("trial %d %s infeasible: %v", trial, solver.Name(), err)
			}
		}
	}
}

func TestSolversRejectInvalidInstance(t *testing.T) {
	bad := paperishInstance()
	bad.W[0] = -1
	for _, solver := range allSolvers() {
		if _, err := solver.Solve(bad); !errors.Is(err, ErrBadInstance) {
			t.Errorf("%s accepted invalid instance: %v", solver.Name(), err)
		}
	}
}

// TestEquilibriumMatchesBruteForce: the polynomial-time price-equilibrium
// solver must match the exponential reference within a small tolerance on
// random instances.
func TestEquilibriumMatchesBruteForce(t *testing.T) {
	root := rng.New(7)
	brute := &BruteForceSolver{}
	eq := &EquilibriumSolver{}
	worst := 0.0
	for trial := 0; trial < 60; trial++ {
		s := root.SplitIndex("trial", trial)
		k := 1 + s.IntN(7)
		n := 1 + s.IntN(3)
		in := randomInstance(s, k, n)
		ba, err := brute.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		ea, err := eq.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		bv, ev := ba.Objective(in), ea.Objective(in)
		if ev > bv+1e-9 {
			t.Fatalf("trial %d: equilibrium %v beats brute force %v", trial, ev, bv)
		}
		gap := bv - ev
		if gap > worst {
			worst = gap
		}
		if gap > 5e-3 {
			t.Fatalf("trial %d: equilibrium gap %v too large (brute %v, eq %v)", trial, gap, bv, ev)
		}
	}
	t.Logf("worst equilibrium-vs-brute gap over 60 trials: %.2e", worst)
}

// TestDualNearOptimal: the paper's distributed algorithm converges to the
// optimum of the convex per-slot problem (it is provably optimum-achieving);
// verify against brute force on random instances.
func TestDualNearOptimal(t *testing.T) {
	root := rng.New(9)
	brute := &BruteForceSolver{}
	dual := NewDualSolver()
	for trial := 0; trial < 40; trial++ {
		s := root.SplitIndex("trial", trial)
		k := 1 + s.IntN(6)
		n := 1 + s.IntN(2)
		in := randomInstance(s, k, n)
		ba, err := brute.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		da, err := dual.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		bv, dv := ba.Objective(in), da.Objective(in)
		if dv > bv+1e-9 {
			t.Fatalf("trial %d: dual %v beats brute force %v", trial, dv, bv)
		}
		if bv-dv > 2e-2 {
			t.Fatalf("trial %d: dual gap %v too large (brute %v, dual %v)", trial, bv-dv, bv, dv)
		}
	}
}

// TestDualConvergenceTrace: with tracing enabled, the dual variables settle
// (Fig. 4(a)): late-iteration movement is far smaller than early movement.
func TestDualConvergenceTrace(t *testing.T) {
	in := paperishInstance()
	solver := NewDualSolver(WithTrace(), WithMaxIter(1500))
	_, report, err := solver.SolveDetailed(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Trace) < 10 {
		t.Fatalf("trace has %d entries", len(report.Trace))
	}
	if len(report.Lambda) != 2 {
		t.Fatalf("lambda dim %d, want 2 (common + 1 FBS)", len(report.Lambda))
	}
	move := func(a, b []float64) float64 {
		sum := 0.0
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	early := move(report.Trace[0], report.Trace[1])
	n := len(report.Trace)
	late := move(report.Trace[n-2], report.Trace[n-1])
	if late > early/10 {
		t.Fatalf("dual variables not settling: early move %v, late move %v", early, late)
	}
}

func TestDualReportWithoutTrace(t *testing.T) {
	in := paperishInstance()
	_, report, err := NewDualSolver().SolveDetailed(in)
	if err != nil {
		t.Fatal(err)
	}
	if report.Trace != nil {
		t.Fatal("trace recorded without WithTrace")
	}
	if report.Iterations == 0 {
		t.Fatal("no iterations reported")
	}
}

// TestDualConstantStepStillFeasible: the paper's plain constant-step variant
// must still yield feasible allocations (via the repair step) even if it
// oscillates.
func TestDualConstantStepStillFeasible(t *testing.T) {
	in := paperishInstance()
	solver := NewDualSolver(WithConstantStep(), WithStep(1e-3), WithMaxIter(500))
	alloc, err := solver.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Feasible(in, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1BinaryAssociation: optimal allocations never split a user
// across base stations within a slot.
func TestTheorem1BinaryAssociation(t *testing.T) {
	root := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		s := root.SplitIndex("trial", trial)
		in := randomInstance(s, 1+s.IntN(6), 1+s.IntN(2))
		for _, solver := range allSolvers() {
			alloc, err := solver.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < in.K(); j++ {
				if alloc.Rho0[j] > 1e-12 && alloc.Rho1[j] > 1e-12 {
					t.Fatalf("%s: user %d holds shares on both base stations", solver.Name(), j)
				}
			}
		}
	}
}

// TestProposedBeatsHeuristics: on the paper-like instance the optimal
// schemes dominate both heuristics in objective value.
func TestProposedBeatsHeuristics(t *testing.T) {
	root := rng.New(13)
	for trial := 0; trial < 30; trial++ {
		s := root.SplitIndex("trial", trial)
		in := randomInstance(s, 2+s.IntN(6), 1+s.IntN(2))
		brute := &BruteForceSolver{}
		opt, err := brute.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		optV := opt.Objective(in)
		for _, h := range []Solver{Heuristic1{}, Heuristic2{}} {
			a, err := h.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if v := a.Objective(in); v > optV+1e-9 {
				t.Fatalf("trial %d: %s objective %v beats optimum %v", trial, h.Name(), v, optV)
			}
		}
	}
}

func TestHeuristic1EqualSplit(t *testing.T) {
	in := paperishInstance()
	// FBS link strictly better for everyone in this instance.
	a, err := Heuristic1{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if a.MBS[j] {
			t.Fatalf("user %d picked MBS despite better FBS rate", j)
		}
		if math.Abs(a.Rho1[j]-1.0/3) > 1e-12 {
			t.Fatalf("user %d share %v, want 1/3", j, a.Rho1[j])
		}
	}
}

func TestHeuristic1PrefersMBSWhenBetter(t *testing.T) {
	in := paperishInstance()
	in.G[0] = 0.1 // licensed band nearly useless this slot
	a, err := Heuristic1{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if !a.MBS[j] {
			t.Fatalf("user %d stayed on FBS with G=0.1", j)
		}
	}
	if math.Abs(a.Rho0[0]-1.0/3) > 1e-12 {
		t.Fatal("equal split on common channel violated")
	}
}

func TestHeuristic2PicksBestUsers(t *testing.T) {
	in := paperishInstance() // PS1 best is user 2 (0.95), PS0 best is user 2 too
	a, err := Heuristic2{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rho1[2] != 1 {
		t.Fatalf("FBS should grant its slot to user 2: %+v", a)
	}
	// MBS picks the best of the remaining users 0, 1 by PS0: user 0 (0.70).
	if !a.MBS[0] || a.Rho0[0] != 1 {
		t.Fatalf("MBS should grant its slot to user 0: %+v", a)
	}
	if a.MBS[1] || a.Rho0[1] != 0 || a.Rho1[1] != 0 {
		t.Fatalf("user 1 should idle: %+v", a)
	}
}

func TestHeuristic2SingleUser(t *testing.T) {
	in := paperishInstance()
	one := &Instance{
		W: in.W[:1], R0: in.R0[:1], R1: in.R1[:1],
		PS0: in.PS0[:1], PS1: in.PS1[:1], FBS: in.FBS[:1], G: in.G,
	}
	a, err := Heuristic2{}.Solve(one)
	if err != nil {
		t.Fatal(err)
	}
	// The single user is taken by the FBS; the MBS has nobody left.
	if a.Rho1[0] != 1 || a.MBS[0] {
		t.Fatalf("single user allocation %+v", a)
	}
}

func TestBruteForceLimit(t *testing.T) {
	s := rng.New(5)
	in := randomInstance(s, 6, 1)
	b := &BruteForceSolver{MaxUsers: 4}
	if _, err := b.Solve(in); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

// TestSolverZeroG: with no licensed channels available anywhere, every
// scheme must fall back to the common channel or idle, staying feasible.
func TestSolverZeroG(t *testing.T) {
	in := paperishInstance()
	in.G[0] = 0
	for _, solver := range allSolvers() {
		alloc, err := solver.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", solver.Name(), err)
		}
		if err := alloc.Feasible(in, 1e-9); err != nil {
			t.Fatalf("%s: %v", solver.Name(), err)
		}
	}
	// The optimum should serve everyone from the MBS.
	opt, err := (&BruteForceSolver{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for j := 0; j < 3; j++ {
		sum += opt.Rho0[j]
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("common channel underused with G=0: sum rho0 = %v", sum)
	}
}

// TestObjectiveMonotoneInG: more available channels never hurt the optimum.
func TestObjectiveMonotoneInG(t *testing.T) {
	root := rng.New(17)
	brute := &BruteForceSolver{}
	for trial := 0; trial < 15; trial++ {
		s := root.SplitIndex("trial", trial)
		in := randomInstance(s, 1+s.IntN(5), 1+s.IntN(2))
		a1, err := brute.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		v1 := a1.Objective(in)
		g2 := append([]float64(nil), in.G...)
		for i := range g2 {
			g2[i] += 1
		}
		in2 := in.WithG(g2)
		a2, err := brute.Solve(in2)
		if err != nil {
			t.Fatal(err)
		}
		if v2 := a2.Objective(in2); v2 < v1-1e-9 {
			t.Fatalf("trial %d: objective fell from %v to %v when G grew", trial, v1, v2)
		}
	}
}

func TestRoundRobinRotation(t *testing.T) {
	in := paperishInstance()
	rr := &RoundRobin{}
	served := make(map[int]int)
	for slot := 0; slot < 9; slot++ {
		alloc, err := rr.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := alloc.Feasible(in, 1e-9); err != nil {
			t.Fatal(err)
		}
		fbsServed := -1
		for j := 0; j < 3; j++ {
			if alloc.Rho1[j] == 1 {
				if fbsServed >= 0 {
					t.Fatal("two users hold the FBS band")
				}
				fbsServed = j
				served[j]++
			}
		}
		if fbsServed < 0 {
			t.Fatal("nobody holds the FBS band")
		}
	}
	// Over 9 slots each of the 3 users is served exactly 3 times.
	for j := 0; j < 3; j++ {
		if served[j] != 3 {
			t.Fatalf("user %d served %d times, want 3", j, served[j])
		}
	}
}

// TestRoundRobinBelowHeuristics: the blind baseline must not beat the
// optimal scheme and should generally trail the informed heuristics.
func TestRoundRobinBelowHeuristics(t *testing.T) {
	root := rng.New(31)
	for trial := 0; trial < 15; trial++ {
		s := root.SplitIndex("t", trial)
		in := randomInstance(s, 2+s.IntN(5), 1+s.IntN(2))
		opt, err := (&BruteForceSolver{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := (&RoundRobin{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Objective(in) > opt.Objective(in)+1e-9 {
			t.Fatalf("trial %d: round robin beats the optimum", trial)
		}
	}
}

func TestMaxThroughputGreedyFill(t *testing.T) {
	in := paperishInstance()
	in.WMax = []float64{in.W[0] + 0.5, in.W[1] + 10, in.W[2] + 10}
	a, err := MaxThroughput{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Feasible(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	// All three prefer the FBS side here; the best PS1*G*R1 user is user 1
	// (0.90*3.4*0.312=0.955 vs user 2 0.95*3.4*0.243=0.785 vs user 0
	// 0.92*3.4*0.288=0.901), so user 1 is filled first up to its (large)
	// ceiling: it takes the entire slot.
	if a.Rho1[1] < 0.99 {
		t.Fatalf("best user share %v, want ~1 (winner takes all)", a.Rho1[1])
	}
}

func TestMaxThroughputRespectsCeilings(t *testing.T) {
	in := paperishInstance()
	// Tiny ceilings: the fill must spill over to the next users.
	in.WMax = []float64{in.W[0] + 0.3, in.W[1] + 0.3, in.W[2] + 0.3}
	a, err := MaxThroughput{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for j := 0; j < 3; j++ {
		gain := a.Rho1[j] * in.effR1(j)
		if a.MBS[j] {
			gain = a.Rho0[j] * in.R0[j]
		}
		if gain > 0.3+1e-9 {
			t.Fatalf("user %d gain %v exceeds headroom", j, gain)
		}
		if gain > 1e-9 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("ceilinged fill served only %d users", served)
	}
}

// TestFairnessEfficiencyFrontier: max-throughput must achieve at least the
// proportional-fair objective's total expected gain, while the
// proportional-fair optimum wins on the log objective.
func TestFairnessEfficiencyFrontier(t *testing.T) {
	root := rng.New(41)
	for trial := 0; trial < 15; trial++ {
		s := root.SplitIndex("t", trial)
		in := randomInstance(s, 2+s.IntN(5), 1)
		pf, err := (&BruteForceSolver{}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		mt, err := MaxThroughput{}.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		totalGain := func(a *Allocation) float64 {
			sum := 0.0
			for j := 0; j < in.K(); j++ {
				sum += a.ExpectedGain(in, j)
			}
			return sum
		}
		if totalGain(mt) < totalGain(pf)-1e-9 {
			t.Fatalf("trial %d: max-throughput gain %v below proportional-fair %v",
				trial, totalGain(mt), totalGain(pf))
		}
		if mt.Objective(in) > pf.Objective(in)+1e-9 {
			t.Fatalf("trial %d: max-throughput beats the log optimum", trial)
		}
	}
}
