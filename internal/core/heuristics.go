package core

// Heuristic1 is the paper's first baseline: each CR user locally picks the
// better channel mode — the common channel or its FBS's licensed band —
// from its own channel conditions, and every resource's time slot is split
// equally among the users that chose it. Decisions are local: no
// coordination across users.
type Heuristic1 struct{}

var (
	_ Solver     = Heuristic1{}
	_ IntoSolver = Heuristic1{}
)

// Name identifies the scheme.
func (Heuristic1) Name() string { return "Heuristic 1" }

// Solve splits each resource equally among the users that selected it.
func (h Heuristic1) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := NewAllocation(in.K())
	h.solveInto(in, alloc)
	return alloc, nil
}

// SolveInto solves into a caller-owned allocation.
//
//femtovet:hotpath
//femtovet:borrows in, out
func (h Heuristic1) SolveInto(in *Instance, out *Allocation) error {
	if err := in.Validate(); err != nil {
		return err
	}
	h.solveInto(in, out)
	return nil
}

func (Heuristic1) solveInto(in *Instance, alloc *Allocation) {
	k := in.K()
	alloc.resize(k)
	// Each user compares the expected per-unit-time quality rate of the two
	// modes: success probability times the PSNR increment rate.
	for j := 0; j < k; j++ {
		mbsRate := in.PS0[j] * in.R0[j]
		fbsRate := in.PS1[j] * in.effR1(j)
		alloc.MBS[j] = mbsRate > fbsRate
	}
	// Equal split per resource.
	ws := getWorkspace()
	defer putWorkspace(ws)
	fbsCount := growI(ws.wfIdx, in.N())
	ws.wfIdx = fbsCount
	for i := range fbsCount {
		fbsCount[i] = 0
	}
	mbsCount := 0
	for j := 0; j < k; j++ {
		if alloc.MBS[j] {
			mbsCount++
		} else {
			fbsCount[in.FBS[j]-1]++
		}
	}
	for j := 0; j < k; j++ {
		if alloc.MBS[j] {
			alloc.Rho0[j] = 1 / float64(mbsCount)
		} else {
			alloc.Rho1[j] = 1 / float64(fbsCount[in.FBS[j]-1])
		}
	}
}

// Heuristic2 is the paper's second baseline, exploiting multiuser
// diversity: each FBS grants its entire slot to the served user with the
// best channel condition, and the MBS grants its slot to the
// best-conditioned user not already selected by an FBS. Decisions are made
// globally by the base stations rather than locally by users.
type Heuristic2 struct{}

var (
	_ Solver     = Heuristic2{}
	_ IntoSolver = Heuristic2{}
)

// Name identifies the scheme.
func (Heuristic2) Name() string { return "Heuristic 2" }

// Solve grants whole slots to the best-channel users.
func (h Heuristic2) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := NewAllocation(in.K())
	h.solveInto(in, alloc)
	return alloc, nil
}

// SolveInto solves into a caller-owned allocation.
//
//femtovet:hotpath
//femtovet:borrows in, out
func (h Heuristic2) SolveInto(in *Instance, out *Allocation) error {
	if err := in.Validate(); err != nil {
		return err
	}
	h.solveInto(in, out)
	return nil
}

func (Heuristic2) solveInto(in *Instance, alloc *Allocation) {
	k := in.K()
	alloc.resize(k)
	ws := getWorkspace()
	defer putWorkspace(ws)
	taken := growB(ws.alive, k)
	ws.alive = taken
	for j := range taken {
		taken[j] = false
	}
	byFBS := ws.groupByFBS(in)

	// Each FBS picks its user with the highest packet-success probability
	// (ties to the lowest index, making runs reproducible).
	for i := 1; i <= in.N(); i++ {
		best := -1
		for _, j := range byFBS[i] {
			if best == -1 || in.PS1[j] > in.PS1[best] {
				best = j
			}
		}
		if best >= 0 {
			alloc.MBS[best] = false
			alloc.Rho1[best] = 1
			taken[best] = true
		}
	}
	// The MBS picks the best remaining user; a single-transceiver user
	// cannot listen to two base stations in one slot.
	best := -1
	for j := 0; j < k; j++ {
		if taken[j] {
			continue
		}
		if best == -1 || in.PS0[j] > in.PS0[best] {
			best = j
		}
	}
	if best >= 0 {
		alloc.MBS[best] = true
		alloc.Rho0[best] = 1
	}
}
