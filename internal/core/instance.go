// Package core implements the paper's contribution: the per-slot resource
// allocation problems (12), (17) and (21), the optimum-achieving distributed
// dual-decomposition algorithm of Tables I and II, the greedy
// channel-allocation algorithm of Table III with its Theorem 2 lower bound
// and eq. (23) upper bound, and the two heuristic baselines of §V.
package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadInstance is returned when a problem instance fails validation.
var ErrBadInstance = errors.New("core: invalid problem instance")

// ErrNoSolution is returned when a solver cannot produce an allocation.
var ErrNoSolution = errors.New("core: no solution")

// Instance is one slot's resource-allocation problem over K users and N
// FBSs plus the MBS common channel.
//
// Per user j (0-based): W[j] is the current video quality W^{t-1}_j in dB;
// R0[j] = beta_j*B0/T and R1[j] = beta_j*B1/T are the PSNR-increment
// constants of problem (10); PS0[j] and PS1[j] are the packet-success
// probabilities \bar{P}^F_{0,j} (from the MBS) and \bar{P}^F_{i,j} (from the
// user's serving FBS); FBS[j] in 1..N is the serving femtocell.
//
// Per FBS i (1-based): G[i-1] is the expected number of available licensed
// channels G^t_i allocated to that FBS this slot.
type Instance struct {
	//femtovet:unit dB
	//femtovet:index user
	W []float64
	//femtovet:unit dB
	//femtovet:index user
	R0 []float64
	//femtovet:unit dB
	//femtovet:index user
	R1 []float64
	//femtovet:unit prob
	//femtovet:index user
	PS0 []float64
	//femtovet:unit prob
	//femtovet:index user
	PS1 []float64
	//femtovet:index user
	FBS []int
	//femtovet:index fbs
	G []float64
	// WMax optionally holds each user's encoding quality ceiling (the PSNR
	// of the MGS encoding at its saturation rate). When present, solvers
	// never allocate share beyond the ceiling — extra rate past it cannot
	// improve the reconstructed video. Nil means unbounded.
	//femtovet:unit dB
	//femtovet:index user
	WMax []float64
}

// K returns the number of users.
//
//femtovet:index user
func (in *Instance) K() int { return len(in.W) }

// N returns the number of FBSs.
//
//femtovet:index fbs
func (in *Instance) N() int { return len(in.G) }

// Validate checks structural and numeric sanity.
func (in *Instance) Validate() error {
	k := in.K()
	if k == 0 {
		return fmt.Errorf("%w: no users", ErrBadInstance)
	}
	if len(in.R0) != k || len(in.R1) != k || len(in.PS0) != k ||
		len(in.PS1) != k || len(in.FBS) != k {
		return fmt.Errorf("%w: per-user slice lengths disagree (K=%d)", ErrBadInstance, k)
	}
	if in.N() == 0 {
		return fmt.Errorf("%w: no FBSs", ErrBadInstance)
	}
	for j := 0; j < k; j++ {
		if in.W[j] <= 0 || math.IsNaN(in.W[j]) || math.IsInf(in.W[j], 0) {
			return fmt.Errorf("%w: W[%d]=%v must be positive finite", ErrBadInstance, j, in.W[j])
		}
		if in.R0[j] < 0 || in.R1[j] < 0 || math.IsNaN(in.R0[j]) || math.IsNaN(in.R1[j]) {
			return fmt.Errorf("%w: R0[%d]=%v R1[%d]=%v", ErrBadInstance, j, in.R0[j], j, in.R1[j])
		}
		if in.PS0[j] < 0 || in.PS0[j] > 1 || in.PS1[j] < 0 || in.PS1[j] > 1 {
			return fmt.Errorf("%w: success probs PS0[%d]=%v PS1[%d]=%v", ErrBadInstance, j, in.PS0[j], j, in.PS1[j])
		}
		if in.FBS[j] < 1 || in.FBS[j] > in.N() {
			return fmt.Errorf("%w: FBS[%d]=%d out of 1..%d", ErrBadInstance, j, in.FBS[j], in.N())
		}
	}
	for i, g := range in.G {
		if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			return fmt.Errorf("%w: G[%d]=%v", ErrBadInstance, i, g)
		}
	}
	if in.WMax != nil {
		if len(in.WMax) != k {
			return fmt.Errorf("%w: WMax has %d entries for %d users", ErrBadInstance, len(in.WMax), k)
		}
		for j, wm := range in.WMax {
			if math.IsNaN(wm) || wm <= 0 {
				return fmt.Errorf("%w: WMax[%d]=%v", ErrBadInstance, j, wm)
			}
		}
	}
	return nil
}

// capFor returns the share ceiling (WMax-W)/r for user j on a resource with
// per-unit-rho increment r, or -1 when unbounded.
func (in *Instance) capFor(j int, r float64) float64 {
	if in.WMax == nil || r <= 0 {
		return -1
	}
	c := (in.WMax[j] - in.W[j]) / r
	if c < 0 {
		return 0
	}
	return c
}

// user0 builds user j's water-filling view of the common channel.
func (in *Instance) user0(j int) waterfillUser {
	return waterfillUser{ps: in.PS0[j], w: in.W[j], r: in.R0[j], cap: in.capFor(j, in.R0[j])}
}

// user1 builds user j's water-filling view of its FBS band.
func (in *Instance) user1(j int) waterfillUser {
	r := in.effR1(j)
	return waterfillUser{ps: in.PS1[j], w: in.W[j], r: r, cap: in.capFor(j, r)}
}

// UsersOf returns the 0-based indices of users served by FBS i (1-based),
// the set U_i of problem (17).
func (in *Instance) UsersOf(i int) []int {
	var out []int
	for j, f := range in.FBS {
		if f == i {
			out = append(out, j)
		}
	}
	return out
}

// effR1 returns the effective per-unit-rho PSNR increment of user j on its
// FBS band: G_i * R1_j.
func (in *Instance) effR1(j int) float64 {
	return in.G[in.FBS[j]-1] * in.R1[j]
}

// WithG returns a shallow copy of the instance with a different per-FBS
// expected-channel vector, used by the greedy allocator to evaluate Q(c)
// for candidate channel allocations.
func (in *Instance) WithG(g []float64) *Instance {
	cp := *in
	cp.G = g
	return &cp
}

// Allocation is a feasible solution to the per-slot problem: MBS[j] reports
// whether user j is served by the MBS this slot (p_j = 1) or by its FBS
// (q_j = 1); Rho0 and Rho1 are the time shares on the common channel and on
// the serving FBS's licensed band.
type Allocation struct {
	MBS  []bool
	Rho0 []float64
	Rho1 []float64
}

// NewAllocation returns an all-zero allocation for k users.
//
//femtovet:coldpath -- allocates the escaping per-run Allocation; per-slot solves reuse it through SolveInto
func NewAllocation(k int) *Allocation {
	return &Allocation{
		MBS:  make([]bool, k),
		Rho0: make([]float64, k),
		Rho1: make([]float64, k),
	}
}

// Feasible checks the allocation against the constraints of problem (17):
// nonnegative shares, per-resource sums at most 1 (within tol), and shares
// only on the chosen side (Theorem 1 structure).
func (a *Allocation) Feasible(in *Instance, tol float64) error {
	k := in.K()
	if len(a.MBS) != k || len(a.Rho0) != k || len(a.Rho1) != k {
		return fmt.Errorf("%w: allocation sized for %d users, instance has %d", ErrBadInstance, len(a.MBS), k)
	}
	sum0 := 0.0
	sumI := make([]float64, in.N())
	for j := 0; j < k; j++ {
		if a.Rho0[j] < -tol || a.Rho1[j] < -tol {
			return fmt.Errorf("%w: negative share for user %d", ErrBadInstance, j)
		}
		if a.MBS[j] && a.Rho1[j] > tol {
			return fmt.Errorf("%w: user %d on MBS holds FBS share %v", ErrBadInstance, j, a.Rho1[j])
		}
		if !a.MBS[j] && a.Rho0[j] > tol {
			return fmt.Errorf("%w: user %d on FBS holds MBS share %v", ErrBadInstance, j, a.Rho0[j])
		}
		sum0 += a.Rho0[j]
		sumI[in.FBS[j]-1] += a.Rho1[j]
	}
	if sum0 > 1+tol {
		return fmt.Errorf("%w: common-channel shares sum to %v", ErrBadInstance, sum0)
	}
	for i, s := range sumI {
		if s > 1+tol {
			return fmt.Errorf("%w: FBS %d shares sum to %v", ErrBadInstance, i+1, s)
		}
	}
	return nil
}

// Objective evaluates the expected log-quality objective of problem (17)
// for this allocation. Each user contributes the exact conditional
// expectation of log(W^t) on its chosen branch:
// PS*log(W + rho*R_eff) + (1-PS)*log(W), i.e. the success branch where the
// quality grows plus the loss branch where it stays at W. (The paper's
// printed eq. (12) drops the loss term; keeping it makes the MBS-vs-FBS
// comparison depend on the expected log-gain rather than on the bare
// success-probability weights, which is what the stochastic program (11)
// specifies.)
func (a *Allocation) Objective(in *Instance) float64 {
	total := 0.0
	for j := 0; j < in.K(); j++ {
		logW := math.Log(in.W[j])
		if a.MBS[j] {
			gain := a.Rho0[j] * in.R0[j]
			total += in.PS0[j]*math.Log(in.W[j]+in.clampGain(j, gain)) + (1-in.PS0[j])*logW
		} else {
			gain := a.Rho1[j] * in.effR1(j)
			total += in.PS1[j]*math.Log(in.W[j]+in.clampGain(j, gain)) + (1-in.PS1[j])*logW
		}
	}
	return total
}

// clampGain caps a quality increment at the user's encoding ceiling.
func (in *Instance) clampGain(j int, gain float64) float64 {
	if in.WMax == nil {
		return gain
	}
	if room := in.WMax[j] - in.W[j]; gain > room {
		if room < 0 {
			return 0
		}
		return room
	}
	return gain
}

// ExpectedGain returns the expected PSNR increment of user j under this
// allocation: success probability times the deterministic quality increase,
// the per-user term the simulator credits in expectation-tracking mode.
func (a *Allocation) ExpectedGain(in *Instance, j int) float64 {
	if a.MBS[j] {
		return in.PS0[j] * a.Rho0[j] * in.R0[j]
	}
	return in.PS1[j] * a.Rho1[j] * in.effR1(j)
}

// Solver computes an allocation for one slot's problem.
type Solver interface {
	// Solve returns a feasible allocation. Implementations must not retain
	// or mutate the instance.
	Solve(in *Instance) (*Allocation, error)
	// Name identifies the scheme in experiment output.
	Name() string
}
