package core

import (
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/rng"
)

// wfu builds an uncapped water-filling user for tests.
func wfu(ps, w, r float64) waterfillUser {
	return waterfillUser{ps: ps, w: w, r: r, cap: -1}
}

func TestWaterfillSaturatesBudget(t *testing.T) {
	users := []waterfillUser{
		wfu(0.9, 30, 0.3),
		wfu(0.7, 28, 0.25),
		wfu(0.8, 26, 0.35),
	}
	rho, lambda := waterfill(users, 1)
	total := 0.0
	for _, r := range rho {
		if r < 0 {
			t.Fatalf("negative share %v", r)
		}
		total += r
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
	if lambda <= 0 {
		t.Fatalf("supporting price %v, want positive", lambda)
	}
}

// TestWaterfillKKT: at the solution, every user with a positive share has
// marginal utility ps*r/(w+rho*r) equal to the price, and users at zero have
// marginal utility at most the price.
func TestWaterfillKKT(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		s := rng.New(seed)
		n := int(nRaw%6) + 1
		users := make([]waterfillUser, n)
		for i := range users {
			users[i] = wfu(0.3+0.7*s.Float64(), 20+20*s.Float64(), 0.05+0.5*s.Float64())
		}
		rho, lambda := waterfill(users, 1)
		if lambda <= 0 {
			return false
		}
		for i, u := range users {
			marginal := u.ps * u.r / (u.w + rho[i]*u.r)
			if rho[i] > 1e-9 {
				if math.Abs(marginal-lambda)/lambda > 1e-5 {
					return false
				}
			} else if marginal > lambda*(1+1e-6) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaterfillOptimality: the water-filling solution beats random feasible
// allocations of the same budget.
func TestWaterfillOptimality(t *testing.T) {
	s := rng.New(7)
	users := []waterfillUser{
		wfu(0.9, 30, 0.3),
		wfu(0.5, 25, 0.4),
		wfu(0.8, 35, 0.2),
	}
	value := func(rho []float64) float64 {
		v := 0.0
		for i, u := range users {
			v += u.ps * math.Log(u.w+rho[i]*u.r)
		}
		return v
	}
	rho, _ := waterfill(users, 1)
	best := value(rho)
	for trial := 0; trial < 2000; trial++ {
		// Random point on the simplex.
		a, b := s.Float64(), s.Float64()
		if a > b {
			a, b = b, a
		}
		cand := []float64{a, b - a, 1 - b}
		if v := value(cand); v > best+1e-9 {
			t.Fatalf("random allocation %v beats water-filling: %v > %v", cand, v, best)
		}
	}
}

func TestWaterfillDegenerate(t *testing.T) {
	// No users.
	rho, lambda := waterfill(nil, 1)
	if len(rho) != 0 || lambda != 0 {
		t.Fatal("empty waterfill should be zeros")
	}
	// Zero budget.
	rho, _ = waterfill([]waterfillUser{wfu(0.5, 30, 0.3)}, 0)
	if rho[0] != 0 {
		t.Fatal("zero budget must give zero shares")
	}
	// All users ineffective (zero rate or zero success probability).
	rho, lambda = waterfill([]waterfillUser{
		wfu(0, 30, 0.3),
		wfu(0.5, 30, 0),
	}, 1)
	if rho[0] != 0 || rho[1] != 0 || lambda != 0 {
		t.Fatal("ineffective users must get nothing")
	}
}

func TestWaterfillSingleUserTakesAll(t *testing.T) {
	rho, _ := waterfill([]waterfillUser{wfu(0.8, 30, 0.3)}, 1)
	if math.Abs(rho[0]-1) > 1e-9 {
		t.Fatalf("single user share %v, want 1", rho[0])
	}
}

func TestWaterfillFavorsBetterUsers(t *testing.T) {
	// Same quality, same rate, different success probability: the more
	// reliable user gets the larger share.
	users := []waterfillUser{
		wfu(0.9, 30, 0.3),
		wfu(0.5, 30, 0.3),
	}
	rho, _ := waterfill(users, 1)
	if rho[0] <= rho[1] {
		t.Fatalf("shares %v: reliable user should get more", rho)
	}
	// Same success, lower current quality gets more (log utility).
	users = []waterfillUser{
		wfu(0.8, 35, 0.3),
		wfu(0.8, 25, 0.3),
	}
	rho, _ = waterfill(users, 1)
	if rho[1] <= rho[0] {
		t.Fatalf("shares %v: lower-quality user should get more", rho)
	}
}

func TestBranchValueMatchesDefinition(t *testing.T) {
	u := wfu(0.8, 30, 0.3)
	lambda := 0.004
	rho := u.rhoAt(lambda)
	want := u.ps*math.Log(u.w+rho*u.r) + (1-u.ps)*math.Log(u.w) - lambda*rho
	if got := u.branchValue(lambda); math.Abs(got-want) > 1e-12 {
		t.Fatalf("branchValue = %v, want %v", got, want)
	}
	// At a very high price the user demands nothing and the value is the
	// idle utility log(w) (both expectation branches coincide).
	if got := u.branchValue(1e9); math.Abs(got-math.Log(u.w)) > 1e-12 {
		t.Fatalf("idle branch value = %v", got)
	}
}

func TestRhoAtClosedForm(t *testing.T) {
	u := wfu(0.8, 30, 0.3)
	lambda := 0.004
	want := u.ps/lambda - u.w/u.r
	if got := u.rhoAt(lambda); math.Abs(got-want) > 1e-9 {
		t.Fatalf("rhoAt = %v, want %v (Table I step 3)", got, want)
	}
	// Price high enough that the bracket goes negative: share is zero.
	if got := u.rhoAt(1); got != 0 {
		t.Fatalf("rhoAt(1) = %v, want 0", got)
	}
	// Degenerate users demand nothing.
	if (wfu(0, 30, 0.3)).rhoAt(0.01) != 0 {
		t.Fatal("zero-ps user demanded")
	}
	if (wfu(0.5, 30, 0)).rhoAt(0.01) != 0 {
		t.Fatal("zero-rate user demanded")
	}
}
