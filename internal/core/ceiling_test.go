package core

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/rng"
)

// cappedInstance returns a paper-like instance with encoding ceilings.
func cappedInstance() *Instance {
	in := paperishInstance()
	in.WMax = []float64{in.W[0] + 1.2, in.W[1] + 0.4, in.W[2] + 2.0}
	return in
}

func TestWMaxValidation(t *testing.T) {
	in := cappedInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	in.WMax = in.WMax[:2]
	if err := in.Validate(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("short WMax accepted")
	}
	in = cappedInstance()
	in.WMax[0] = math.NaN()
	if err := in.Validate(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("NaN WMax accepted")
	}
	in = cappedInstance()
	in.WMax[1] = 0
	if err := in.Validate(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("zero WMax accepted")
	}
}

// TestCapsRespectedByAllSolvers: no solver allocates a share whose full
// increment would push a user past its encoding ceiling (within the share
// that actually matters: rho * R_eff <= WMax - W + tol).
func TestCapsRespectedByAllSolvers(t *testing.T) {
	root := rng.New(21)
	for trial := 0; trial < 20; trial++ {
		s := root.SplitIndex("t", trial)
		in := randomInstance(s, 1+s.IntN(6), 1+s.IntN(2))
		in.WMax = make([]float64, in.K())
		for j := range in.WMax {
			in.WMax[j] = in.W[j] + 3*s.Float64()
		}
		for _, solver := range []Solver{NewDualSolver(), &EquilibriumSolver{}, &BruteForceSolver{}} {
			alloc, err := solver.Solve(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, solver.Name(), err)
			}
			for j := 0; j < in.K(); j++ {
				room := in.WMax[j] - in.W[j]
				var gain float64
				if alloc.MBS[j] {
					gain = alloc.Rho0[j] * in.R0[j]
				} else {
					gain = alloc.Rho1[j] * in.effR1(j)
				}
				if gain > room+1e-6 {
					t.Fatalf("trial %d %s: user %d gain %v exceeds headroom %v",
						trial, solver.Name(), j, gain, room)
				}
			}
		}
	}
}

// TestCappedEquilibriumMatchesBrute: the fast solver still matches the
// exhaustive reference when ceilings bind.
func TestCappedEquilibriumMatchesBrute(t *testing.T) {
	root := rng.New(22)
	brute := &BruteForceSolver{}
	eq := &EquilibriumSolver{}
	for trial := 0; trial < 40; trial++ {
		s := root.SplitIndex("t", trial)
		in := randomInstance(s, 1+s.IntN(6), 1+s.IntN(2))
		in.WMax = make([]float64, in.K())
		for j := range in.WMax {
			in.WMax[j] = in.W[j] + 2*s.Float64() // often binding
		}
		ba, err := brute.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		ea, err := eq.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		bv, ev := ba.Objective(in), ea.Objective(in)
		if ev > bv+1e-9 {
			t.Fatalf("trial %d: equilibrium %v beats brute %v", trial, ev, bv)
		}
		if bv-ev > 5e-3 {
			t.Fatalf("trial %d: capped gap %v too large", trial, bv-ev)
		}
	}
}

// TestSaturatedUserYieldsToOthers: a user with no quality headroom must
// receive nothing, freeing the budget for the rest.
func TestSaturatedUserYieldsToOthers(t *testing.T) {
	in := cappedInstance()
	in.WMax[0] = in.W[0] // user 0 is at its ceiling
	alloc, err := (&BruteForceSolver{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Rho0[0] > 1e-9 || alloc.Rho1[0] > 1e-9 {
		t.Fatalf("saturated user still allocated: %+v", alloc)
	}
	// The others split the FBS band fully.
	if sum := alloc.Rho1[1] + alloc.Rho1[2] + alloc.Rho0[1] + alloc.Rho0[2]; sum < 0.99 {
		t.Fatalf("remaining users underuse resources: %v", sum)
	}
}

// TestCapImprovesRealizedObjective: with binding ceilings, the ceiling-aware
// optimum must beat a cap-oblivious allocation evaluated under the capped
// objective.
func TestCapImprovesRealizedObjective(t *testing.T) {
	in := cappedInstance()
	withCaps, err := (&BruteForceSolver{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	uncapped := &Instance{
		W: in.W, R0: in.R0, R1: in.R1, PS0: in.PS0, PS1: in.PS1,
		FBS: in.FBS, G: in.G,
	}
	oblivious, err := (&BruteForceSolver{}).Solve(uncapped)
	if err != nil {
		t.Fatal(err)
	}
	vAware := withCaps.Objective(in)
	vOblivious := oblivious.Objective(in) // evaluated under the true caps
	if vAware < vOblivious-1e-9 {
		t.Fatalf("cap-aware %v worse than cap-oblivious %v", vAware, vOblivious)
	}
}

func TestRhoAtHonorsCap(t *testing.T) {
	u := waterfillUser{ps: 0.8, w: 30, r: 0.3, cap: 0.25}
	if got := u.rhoAt(1e-6); got != 0.25 {
		t.Fatalf("rhoAt tiny price = %v, want cap 0.25", got)
	}
	atCeiling := waterfillUser{ps: 0.8, w: 30, r: 0.3, cap: 0}
	if got := atCeiling.rhoAt(1e-6); got != 0 {
		t.Fatalf("at-ceiling user demanded %v", got)
	}
}

// TestWaterfillWithCapsSlackBudget: when every user saturates below the
// budget, the leftover stays unallocated rather than overflowing caps.
func TestWaterfillWithCapsSlackBudget(t *testing.T) {
	users := []waterfillUser{
		{ps: 0.9, w: 30, r: 0.3, cap: 0.2},
		{ps: 0.7, w: 28, r: 0.25, cap: 0.3},
	}
	rho, _ := waterfill(users, 1)
	if rho[0] > 0.2+1e-9 || rho[1] > 0.3+1e-9 {
		t.Fatalf("caps overflowed: %v", rho)
	}
	if rho[0] < 0.2-1e-6 || rho[1] < 0.3-1e-6 {
		t.Fatalf("caps not reached despite slack budget: %v", rho)
	}
}
