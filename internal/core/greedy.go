package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"femtocr/internal/igraph"
)

// ErrBadChannelProblem is returned when a greedy channel-allocation problem
// is malformed.
var ErrBadChannelProblem = errors.New("core: invalid channel-allocation problem")

// fbsChannel identifies one candidate pair {i, m} of Table III.
type fbsChannel struct {
	fbs   int // 0-based FBS index
	chIdx int // index into ChannelProblem.Channels
}

// ChannelProblem is the input to the greedy algorithm of Table III: the
// slot's user problem (with G to be determined), the interference graph over
// the FBSs, and the accessed licensed channels A(t) with their availability
// posteriors P_A.
type ChannelProblem struct {
	Base       *Instance     // per-user data; Base.G supplies N and is ignored otherwise
	Graph      *igraph.Graph // vertices 0..N-1 are FBSs 1..N
	Channels   []int         // 1-based ids of the accessed channels A(t)
	Posteriors []float64     // P_A of each accessed channel, parallel to Channels
}

// Validate checks the problem.
func (p *ChannelProblem) Validate() error {
	if p.Base == nil {
		return fmt.Errorf("%w: nil base instance", ErrBadChannelProblem)
	}
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if p.Graph == nil {
		return fmt.Errorf("%w: nil interference graph", ErrBadChannelProblem)
	}
	if p.Graph.N() != p.Base.N() {
		return fmt.Errorf("%w: graph has %d vertices, instance %d FBSs", ErrBadChannelProblem, p.Graph.N(), p.Base.N())
	}
	if len(p.Channels) != len(p.Posteriors) {
		return fmt.Errorf("%w: %d channels vs %d posteriors", ErrBadChannelProblem, len(p.Channels), len(p.Posteriors))
	}
	for i, pa := range p.Posteriors {
		if pa < 0 || pa > 1 || math.IsNaN(pa) {
			return fmt.Errorf("%w: posterior[%d]=%v", ErrBadChannelProblem, i, pa)
		}
	}
	return nil
}

// GreedyStep records one iteration of Table III.
type GreedyStep struct {
	FBS     int     // 0-based FBS index chosen
	Channel int     // 1-based channel id chosen
	Gain    float64 // Delta_l = Q(pi_l) - Q(pi_{l-1})
	Degree  int     // D(l): interference-graph degree of the chosen FBS
	// LiveDegree counts only the neighbors whose pair with this channel was
	// still in the candidate set when the step was taken. The conflict sets
	// omega_l of Lemma 5 exclude pairs conflicting with earlier allocations,
	// so |omega_l| <= LiveDegree <= D(l), giving a tighter valid bound.
	LiveDegree int
}

// GreedyResult is the outcome of the greedy channel allocation.
type GreedyResult struct {
	// Assigned[i] lists the channel ids allocated to FBS i+1, sorted.
	Assigned [][]int
	// G is the resulting expected-available-channel vector.
	G []float64
	// Alloc is the user allocation solved on the final G.
	Alloc *Allocation
	// Value is Q(pi_L), the objective achieved by the greedy allocation.
	Value float64
	// UpperBound is the tightened eq. (23) bound on the global optimum:
	// Q(pi_L) + sum_l LiveDegree(l)*Delta_l. Valid because the conflict set
	// omega_l only holds optimal pairs not conflicting with earlier steps.
	UpperBound float64
	// PaperUpperBound is the literal eq. (23) bound with the full vertex
	// degree D(l): Q(pi_L) + sum_l D(l)*Delta_l. Always >= UpperBound.
	PaperUpperBound float64
	// LowerBoundFactor is Theorem 2's guarantee 1/(1+Dmax): the greedy
	// value is at least this fraction of the optimum.
	LowerBoundFactor float64
	// Steps traces the allocation sequence.
	Steps []GreedyStep
	// Evaluations counts Q(.) solves, the algorithm's cost driver.
	Evaluations int
}

// GreedyAllocator implements Table III: repeatedly allocate the FBS-channel
// pair with the largest objective increase, removing the pair and its
// interference-graph conflicts from the candidate set.
type GreedyAllocator struct {
	solver Solver
	lazy   bool
}

// GreedyOption configures a GreedyAllocator.
type GreedyOption func(*GreedyAllocator)

// WithLazyEvaluation enables lazy re-evaluation of candidate gains: gains
// are submodular (the paper's Property 1), so a cached gain that is still
// the largest after re-evaluation is guaranteed optimal. Reduces Q(.)
// evaluations substantially with identical results.
func WithLazyEvaluation() GreedyOption { return func(g *GreedyAllocator) { g.lazy = true } }

// NewGreedyAllocator builds the allocator with the given Q(c) evaluator; a
// nil solver defaults to the EquilibriumSolver.
func NewGreedyAllocator(solver Solver, opts ...GreedyOption) *GreedyAllocator {
	if solver == nil {
		solver = &EquilibriumSolver{}
	}
	g := &GreedyAllocator{solver: solver}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Name identifies the scheme.
func (g *GreedyAllocator) Name() string { return "Proposed" }

// Allocate runs Table III and solves the user problem on the resulting
// channel allocation.
func (g *GreedyAllocator) Allocate(p *ChannelProblem) (*GreedyResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Base.N()
	res := &GreedyResult{
		Assigned:         make([][]int, n),
		G:                make([]float64, n),
		LowerBoundFactor: 1 / (1 + float64(p.Graph.MaxDegree())),
	}

	// Q evaluates the user problem for an expected-channel vector.
	q := func(gvec []float64) (float64, error) {
		res.Evaluations++
		alloc, err := g.solver.Solve(p.Base.WithG(gvec))
		if err != nil {
			return 0, err
		}
		return alloc.Objective(p.Base.WithG(gvec)), nil
	}

	cur, err := q(res.G)
	if err != nil {
		return nil, err
	}

	candidates := make(map[fbsChannel]bool, n*len(p.Channels))
	for i := 0; i < n; i++ {
		for c := range p.Channels {
			candidates[fbsChannel{i, c}] = true
		}
	}

	gainOf := func(pr fbsChannel) (float64, error) {
		trial := append([]float64(nil), res.G...)
		trial[pr.fbs] += p.Posteriors[pr.chIdx]
		v, err := q(trial)
		if err != nil {
			return 0, err
		}
		return v - cur, nil
	}

	var slack boundSlack
	if g.lazy {
		if err := g.runLazy(p, candidates, gainOf, &cur, res, &slack); err != nil {
			return nil, err
		}
	} else {
		if err := g.runEager(p, candidates, gainOf, &cur, res, &slack); err != nil {
			return nil, err
		}
	}

	for i := range res.Assigned {
		sort.Ints(res.Assigned[i])
	}
	res.Value = cur
	res.UpperBound = cur + slack.live
	res.PaperUpperBound = cur + slack.full
	alloc, err := g.solver.Solve(p.Base.WithG(res.G))
	if err != nil {
		return nil, err
	}
	res.Alloc = alloc
	return res, nil
}

// boundSlack accumulates the degree-weighted gain sums of the two eq. (23)
// variants.
type boundSlack struct {
	live float64 // sum of LiveDegree(l) * Delta_l
	full float64 // sum of D(l) * Delta_l
}

// take applies a chosen pair: update state, record the step, and remove the
// pair plus its interference conflicts from the candidate set. liveGain
// returns the current marginal gain of a still-live conflicting pair; by
// Lemma 6 it never exceeds the chosen gain, and summing the actual values
// instead of Delta_l tightens the eq. (23) bound further.
func (g *GreedyAllocator) take(p *ChannelProblem, candidates map[fbsChannel]bool,
	best fbsChannel, gain float64, cur *float64, res *GreedyResult, slack *boundSlack,
	liveGain func(fbsChannel) (float64, error)) error {
	deg := p.Graph.Degree(best.fbs)
	live := 0
	for _, nb := range p.Graph.Neighbors(best.fbs) {
		pr := fbsChannel{nb, best.chIdx}
		if !candidates[pr] {
			continue
		}
		live++
		lg, err := liveGain(pr)
		if err != nil {
			return err
		}
		if lg > gain {
			lg = gain // Lemma 6 guarantees this; guard against solver noise
		}
		if lg > 0 {
			slack.live += lg
		}
	}
	res.G[best.fbs] += p.Posteriors[best.chIdx]
	res.Assigned[best.fbs] = append(res.Assigned[best.fbs], p.Channels[best.chIdx])
	res.Steps = append(res.Steps, GreedyStep{
		FBS:        best.fbs,
		Channel:    p.Channels[best.chIdx],
		Gain:       gain,
		Degree:     deg,
		LiveDegree: live,
	})
	*cur += gain
	slack.full += float64(deg) * gain
	delete(candidates, best)
	for _, nb := range p.Graph.Neighbors(best.fbs) {
		delete(candidates, fbsChannel{nb, best.chIdx})
	}
	return nil
}

// runEager is the literal Table III loop: re-evaluate every remaining
// candidate each round and take the best.
func (g *GreedyAllocator) runEager(p *ChannelProblem, candidates map[fbsChannel]bool,
	gainOf func(fbsChannel) (float64, error), cur *float64,
	res *GreedyResult, slack *boundSlack) error {
	for len(candidates) > 0 {
		bestGain := math.Inf(-1)
		var best fbsChannel
		// Deterministic iteration order for reproducibility.
		keys := make([]fbsChannel, 0, len(candidates))
		for pr := range candidates {
			keys = append(keys, pr)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].fbs != keys[b].fbs {
				return keys[a].fbs < keys[b].fbs
			}
			return keys[a].chIdx < keys[b].chIdx
		})
		roundGains := make(map[fbsChannel]float64, len(keys))
		for _, pr := range keys {
			gain, err := gainOf(pr)
			if err != nil {
				return err
			}
			roundGains[pr] = gain
			if gain > bestGain {
				bestGain = gain
				best = pr
			}
		}
		lookup := func(pr fbsChannel) (float64, error) { return roundGains[pr], nil }
		if err := g.take(p, candidates, best, bestGain, cur, res, slack, lookup); err != nil {
			return err
		}
	}
	return nil
}

// runLazy exploits submodularity: cached gains only shrink as the
// allocation grows, so the best stale gain, once refreshed and still on
// top, is the true maximum.
func (g *GreedyAllocator) runLazy(p *ChannelProblem, candidates map[fbsChannel]bool,
	gainOf func(fbsChannel) (float64, error), cur *float64,
	res *GreedyResult, slack *boundSlack) error {
	type entry struct {
		pr    fbsChannel
		gain  float64
		round int
	}
	var heap []entry
	push := func(e entry) {
		heap = append(heap, e)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].gain >= heap[i].gain {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() entry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < len(heap) && heap[l].gain > heap[largest].gain {
				largest = l
			}
			if r < len(heap) && heap[r].gain > heap[largest].gain {
				largest = r
			}
			if largest == i {
				break
			}
			heap[i], heap[largest] = heap[largest], heap[i]
			i = largest
		}
		return top
	}

	// Deterministic initial order.
	keys := make([]fbsChannel, 0, len(candidates))
	for pr := range candidates {
		keys = append(keys, pr)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].fbs != keys[b].fbs {
			return keys[a].fbs < keys[b].fbs
		}
		return keys[a].chIdx < keys[b].chIdx
	})
	for _, pr := range keys {
		gain, err := gainOf(pr)
		if err != nil {
			return err
		}
		push(entry{pr: pr, gain: gain, round: 0})
	}

	round := 0
	for len(heap) > 0 {
		top := pop()
		if !candidates[top.pr] {
			continue // removed by an interference conflict
		}
		if top.round != round {
			gain, err := gainOf(top.pr)
			if err != nil {
				return err
			}
			push(entry{pr: top.pr, gain: gain, round: round})
			continue
		}
		if err := g.take(p, candidates, top.pr, top.gain, cur, res, slack, gainOf); err != nil {
			return err
		}
		round++
	}
	return nil
}

// ExhaustiveChannelOptimum enumerates every interference-feasible channel
// allocation — each channel independently goes to any independent set of
// the graph — and returns the best objective value found. The cost is
// O(I(G)^len(Channels)) solver calls, where I(G) counts the graph's
// independent sets, so this is a ground-truth reference for small
// instances (tests, the topology study, bound validation), not a
// production path.
func ExhaustiveChannelOptimum(p *ChannelProblem, solver Solver) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if solver == nil {
		solver = &EquilibriumSolver{}
	}
	n := p.Base.N()
	var indep [][]int
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		if p.Graph.IsIndependent(set) {
			indep = append(indep, set)
		}
	}
	best := math.Inf(-1)
	var rec func(c int, g []float64) error
	rec = func(c int, g []float64) error {
		if c == len(p.Channels) {
			withG := p.Base.WithG(g)
			alloc, err := solver.Solve(withG)
			if err != nil {
				return err
			}
			if v := alloc.Objective(withG); v > best {
				best = v
			}
			return nil
		}
		for _, set := range indep {
			g2 := append([]float64(nil), g...)
			for _, i := range set {
				g2[i] += p.Posteriors[c]
			}
			if err := rec(c+1, g2); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, make([]float64, n)); err != nil {
		return 0, err
	}
	return best, nil
}
