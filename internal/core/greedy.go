package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"femtocr/internal/igraph"
)

// ErrBadChannelProblem is returned when a greedy channel-allocation problem
// is malformed.
var ErrBadChannelProblem = errors.New("core: invalid channel-allocation problem")

// Candidate pairs {i, m} of Table III are keyed by the flat index
// pairIdx = fbs*len(Channels) + chIdx, so the candidate set is a reusable
// []bool in the workspace rather than a map whose deterministic traversal
// needed a rebuilt-and-sorted key slice every round (the old mapiter
// pressure). Ascending pairIdx order is exactly the old sorted
// (fbs, chIdx) order, so evaluation sequences — and therefore results —
// are unchanged.

// lazyEntry is one cached candidate gain on the lazy-evaluation max-heap.
type lazyEntry struct {
	idx   int // pairIdx of the candidate
	gain  float64
	round int // allocation round the gain was computed in
}

// ChannelProblem is the input to the greedy algorithm of Table III: the
// slot's user problem (with G to be determined), the interference graph over
// the FBSs, and the accessed licensed channels A(t) with their availability
// posteriors P_A.
type ChannelProblem struct {
	Base       *Instance     // per-user data; Base.G supplies N and is ignored otherwise
	Graph      *igraph.Graph // vertices 0..N-1 are FBSs 1..N
	Channels   []int         // 1-based ids of the accessed channels A(t)
	Posteriors []float64     // P_A of each accessed channel, parallel to Channels
}

// Validate checks the problem.
func (p *ChannelProblem) Validate() error {
	if p.Base == nil {
		return fmt.Errorf("%w: nil base instance", ErrBadChannelProblem)
	}
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if p.Graph == nil {
		return fmt.Errorf("%w: nil interference graph", ErrBadChannelProblem)
	}
	if p.Graph.N() != p.Base.N() {
		return fmt.Errorf("%w: graph has %d vertices, instance %d FBSs", ErrBadChannelProblem, p.Graph.N(), p.Base.N())
	}
	if len(p.Channels) != len(p.Posteriors) {
		return fmt.Errorf("%w: %d channels vs %d posteriors", ErrBadChannelProblem, len(p.Channels), len(p.Posteriors))
	}
	for i, pa := range p.Posteriors {
		if pa < 0 || pa > 1 || math.IsNaN(pa) {
			return fmt.Errorf("%w: posterior[%d]=%v", ErrBadChannelProblem, i, pa)
		}
	}
	return nil
}

// GreedyStep records one iteration of Table III.
type GreedyStep struct {
	FBS     int     // 0-based FBS index chosen
	Channel int     // 1-based channel id chosen
	Gain    float64 // Delta_l = Q(pi_l) - Q(pi_{l-1})
	Degree  int     // D(l): interference-graph degree of the chosen FBS
	// LiveDegree counts only the neighbors whose pair with this channel was
	// still in the candidate set when the step was taken. The conflict sets
	// omega_l of Lemma 5 exclude pairs conflicting with earlier allocations,
	// so |omega_l| <= LiveDegree <= D(l), giving a tighter valid bound.
	LiveDegree int
}

// GreedyResult is the outcome of the greedy channel allocation.
type GreedyResult struct {
	// Assigned[i] lists the channel ids allocated to FBS i+1, sorted.
	Assigned [][]int
	// G is the resulting expected-available-channel vector.
	G []float64
	// Alloc is the user allocation solved on the final G.
	Alloc *Allocation
	// Value is Q(pi_L), the objective achieved by the greedy allocation.
	Value float64
	// UpperBound is the tightened eq. (23) bound on the global optimum:
	// Q(pi_L) + sum_l LiveDegree(l)*Delta_l. Valid because the conflict set
	// omega_l only holds optimal pairs not conflicting with earlier steps.
	UpperBound float64
	// PaperUpperBound is the literal eq. (23) bound with the full vertex
	// degree D(l): Q(pi_L) + sum_l D(l)*Delta_l. Always >= UpperBound.
	PaperUpperBound float64
	// LowerBoundFactor is Theorem 2's guarantee 1/(1+Dmax): the greedy
	// value is at least this fraction of the optimum.
	LowerBoundFactor float64
	// Steps traces the allocation sequence.
	Steps []GreedyStep
	// Evaluations counts Q(.) solves, the algorithm's cost driver.
	Evaluations int
}

// GreedyAllocator implements Table III: repeatedly allocate the FBS-channel
// pair with the largest objective increase, removing the pair and its
// interference-graph conflicts from the candidate set.
type GreedyAllocator struct {
	solver Solver
	lazy   bool
}

// GreedyOption configures a GreedyAllocator.
type GreedyOption func(*GreedyAllocator)

// WithLazyEvaluation enables lazy re-evaluation of candidate gains: gains
// are submodular (the paper's Property 1), so a cached gain that is still
// the largest after re-evaluation is guaranteed optimal. Reduces Q(.)
// evaluations substantially with identical results.
func WithLazyEvaluation() GreedyOption { return func(g *GreedyAllocator) { g.lazy = true } }

// NewGreedyAllocator builds the allocator with the given Q(c) evaluator; a
// nil solver defaults to the EquilibriumSolver.
func NewGreedyAllocator(solver Solver, opts ...GreedyOption) *GreedyAllocator {
	if solver == nil {
		solver = &EquilibriumSolver{}
	}
	g := &GreedyAllocator{solver: solver}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Name identifies the scheme.
func (g *GreedyAllocator) Name() string { return "Proposed" }

// greedyRun bundles one Allocate call's state: the problem, the candidate
// set keyed by pairIdx over the workspace's alive buffer, and the running
// objective. Everything scratch lives on the pooled workspace; everything
// that escapes lives on res.
type greedyRun struct {
	p          *ChannelProblem
	nCh        int
	ws         *solveWorkspace
	eq         *EquilibriumSolver // non-nil: Q solves share ws (equilibrium memo)
	alive      []bool             // candidate liveness, indexed by pairIdx
	aliveCount int
	cur        float64 // Q of the current partial allocation
	round      int     // allocation rounds completed (gain-cache tag)
	res        *GreedyResult
	slack      boundSlack
}

// newGreedyResult builds the escaping result shell of one Allocate call.
//
//femtovet:coldpath -- constructs the per-call escaping result once per Allocate, outside the Q-evaluation loop
func newGreedyResult(n, maxDegree int) *GreedyResult {
	return &GreedyResult{
		Assigned:         make([][]int, n),
		G:                make([]float64, n),
		LowerBoundFactor: 1 / (1 + float64(maxDegree)),
	}
}

// Allocate runs Table III and solves the user problem on the resulting
// channel allocation.
//
//femtovet:hotpath
func (g *GreedyAllocator) Allocate(p *ChannelProblem) (*GreedyResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Base.N()
	res := newGreedyResult(n, p.Graph.MaxDegree())

	ws := getWorkspace()
	defer putWorkspace(ws)
	// The cached log(W) terms depend only on Base.W, which every Q
	// evaluation shares regardless of its trial G vector.
	ws.prepareUsers(p.Base)
	// Equilibrium Q solves run on this same workspace so their per-FBS
	// memo persists across evaluations; one epoch per base instance.
	ws.bumpEqEpoch()

	r := &greedyRun{p: p, nCh: len(p.Channels), ws: ws, res: res}
	r.eq, _ = g.solver.(*EquilibriumSolver)
	nPairs := n * r.nCh
	r.alive = growB(ws.alive, nPairs)
	ws.alive = r.alive
	for i := range r.alive {
		r.alive[i] = true
	}
	r.aliveCount = nPairs
	ws.gains = growF(ws.gains, nPairs)
	ws.gainRound = growI(ws.gainRound, nPairs)
	for i := range ws.gainRound {
		ws.gainRound[i] = -1
	}

	var err error
	if r.cur, err = g.q(r, res.G); err != nil {
		return nil, err
	}

	if g.lazy {
		err = g.runLazy(r)
	} else {
		err = g.runEager(r)
	}
	if err != nil {
		return nil, err
	}

	for i := range res.Assigned {
		sort.Ints(res.Assigned[i])
	}
	res.Value = r.cur
	res.UpperBound = r.cur + r.slack.live
	res.PaperUpperBound = r.cur + r.slack.full
	// The final allocation escapes to the caller, so it gets fresh memory
	// rather than workspace scratch.
	final := NewAllocation(p.Base.K())
	inst := &ws.qInstance
	*inst = *p.Base
	inst.G = res.G
	if r.eq != nil {
		err = r.eq.solveIntoWS(inst, final, ws)
	} else if is, ok := g.solver.(IntoSolver); ok {
		err = is.SolveInto(inst, final)
	} else {
		final, err = g.solver.Solve(inst)
	}
	if err != nil {
		return nil, err
	}
	res.Alloc = final
	ws.qInstance = Instance{} // drop aliases into caller data before pooling
	return res, nil
}

// q evaluates the user problem Q(c) for an expected-channel vector, solving
// into workspace scratch. gvec may alias workspace memory; it is only read
// during the solve. The default equilibrium solver runs directly on the
// run's workspace — already validated and epoch-bumped by Allocate — so its
// per-FBS memo carries over between evaluations.
func (g *GreedyAllocator) q(r *greedyRun, gvec []float64) (float64, error) {
	r.res.Evaluations++
	inst := &r.ws.qInstance
	*inst = *r.p.Base
	inst.G = gvec
	if r.eq != nil {
		if err := r.eq.solveIntoWS(inst, &r.ws.qAlloc, r.ws); err != nil {
			return 0, err
		}
		return objectiveCached(inst, &r.ws.qAlloc, r.ws.logW), nil
	}
	if is, ok := g.solver.(IntoSolver); ok {
		if err := is.SolveInto(inst, &r.ws.qAlloc); err != nil {
			return 0, err
		}
		return objectiveCached(inst, &r.ws.qAlloc, r.ws.logW), nil
	}
	alloc, err := g.solver.Solve(inst)
	if err != nil {
		return 0, err
	}
	return objectiveCached(inst, alloc, r.ws.logW), nil
}

// gainOf returns the marginal gain of allocating candidate idx on top of the
// current partial allocation, on the workspace trial buffer, and records it
// in the round-tagged gain cache: the partial allocation (and therefore the
// gain) only changes when a pair is accepted, so a gain computed earlier in
// the same round is the exact float a recomputation would produce.
func (g *GreedyAllocator) gainOf(r *greedyRun, idx int) (float64, error) {
	trial := growF(r.ws.trial, len(r.res.G))
	r.ws.trial = trial
	copy(trial, r.res.G)
	trial[idx/r.nCh] += r.p.Posteriors[idx%r.nCh]
	v, err := g.q(r, trial)
	if err != nil {
		return 0, err
	}
	gain := v - r.cur
	r.ws.gains[idx] = gain
	r.ws.gainRound[idx] = r.round
	return gain, nil
}

// cachedGainOf is gainOf short-circuited by the same-round cache.
func (g *GreedyAllocator) cachedGainOf(r *greedyRun, idx int) (float64, error) {
	if r.ws.gainRound[idx] == r.round {
		return r.ws.gains[idx], nil
	}
	return g.gainOf(r, idx)
}

// boundSlack accumulates the degree-weighted gain sums of the two eq. (23)
// variants.
type boundSlack struct {
	live float64 // sum of LiveDegree(l) * Delta_l
	full float64 // sum of D(l) * Delta_l
}

// take applies a chosen pair: update state, record the step, and remove the
// pair plus its interference conflicts from the candidate set. The eq. (23)
// bound terms use the current marginal gain of each still-live conflicting
// pair, served from the same-round gain cache when the pair was already
// evaluated this round (the cached float is exactly what a recomputation
// against the unchanged partial allocation would return); by Lemma 6 the
// live gain never exceeds the chosen gain, and summing the actual values
// instead of Delta_l tightens the bound further.
func (g *GreedyAllocator) take(r *greedyRun, best int, gain float64) error {
	fbs, chIdx := best/r.nCh, best%r.nCh
	deg := r.p.Graph.Degree(fbs)
	live := 0
	for _, nb := range r.p.Graph.Neighbors(fbs) {
		idx := nb*r.nCh + chIdx
		if !r.alive[idx] {
			continue
		}
		live++
		lg, err := g.cachedGainOf(r, idx)
		if err != nil {
			return err
		}
		if lg > gain {
			lg = gain // Lemma 6 guarantees this; guard against solver noise
		}
		if lg > 0 {
			r.slack.live += lg
		}
	}
	r.res.G[fbs] += r.p.Posteriors[chIdx]
	r.res.Assigned[fbs] = append(r.res.Assigned[fbs], r.p.Channels[chIdx])
	r.res.Steps = append(r.res.Steps, GreedyStep{
		FBS:        fbs,
		Channel:    r.p.Channels[chIdx],
		Gain:       gain,
		Degree:     deg,
		LiveDegree: live,
	})
	r.cur += gain
	r.slack.full += float64(deg) * gain
	r.kill(best)
	for _, nb := range r.p.Graph.Neighbors(fbs) {
		r.kill(nb*r.nCh + chIdx)
	}
	r.round++ // the partial allocation changed: cached gains are now stale
	return nil
}

// kill removes candidate idx from the set if still present.
func (r *greedyRun) kill(idx int) {
	if r.alive[idx] {
		r.alive[idx] = false
		r.aliveCount--
	}
}

// runEager is the literal Table III loop: re-evaluate every remaining
// candidate each round and take the best. Candidates are scanned in
// ascending pairIdx order, the same deterministic (fbs, chIdx) order the
// sorted map keys used to give.
func (g *GreedyAllocator) runEager(r *greedyRun) error {
	for r.aliveCount > 0 {
		bestGain := math.Inf(-1)
		best := -1
		for idx := range r.alive {
			if !r.alive[idx] {
				continue
			}
			gain, err := g.gainOf(r, idx)
			if err != nil {
				return err
			}
			if gain > bestGain {
				bestGain = gain
				best = idx
			}
		}
		if err := g.take(r, best, bestGain); err != nil {
			return err
		}
	}
	return nil
}

// runLazy exploits submodularity: cached gains only shrink as the
// allocation grows, so the best stale gain, once refreshed and still on
// top, is the true maximum. The max-heap lives on workspace scratch.
func (g *GreedyAllocator) runLazy(r *greedyRun) error {
	heap := r.ws.heap[:0]
	defer func() { r.ws.heap = heap[:0] }()
	push := func(e lazyEntry) {
		heap = append(heap, e)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].gain >= heap[i].gain {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() lazyEntry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, rr := 2*i+1, 2*i+2
			largest := i
			if l < len(heap) && heap[l].gain > heap[largest].gain {
				largest = l
			}
			if rr < len(heap) && heap[rr].gain > heap[largest].gain {
				largest = rr
			}
			if largest == i {
				break
			}
			heap[i], heap[largest] = heap[largest], heap[i]
			i = largest
		}
		return top
	}

	// Deterministic initial order: ascending pairIdx.
	for idx := range r.alive {
		gain, err := g.gainOf(r, idx)
		if err != nil {
			return err
		}
		push(lazyEntry{idx: idx, gain: gain, round: 0})
	}

	for len(heap) > 0 {
		top := pop()
		if !r.alive[top.idx] {
			continue // removed by an interference conflict
		}
		if top.round != r.round {
			gain, err := g.gainOf(r, top.idx)
			if err != nil {
				return err
			}
			push(lazyEntry{idx: top.idx, gain: gain, round: r.round})
			continue
		}
		if err := g.take(r, top.idx, top.gain); err != nil {
			return err
		}
	}
	return nil
}

// ExhaustiveChannelOptimum enumerates every interference-feasible channel
// allocation — each channel independently goes to any independent set of
// the graph — and returns the best objective value found. The cost is
// O(I(G)^len(Channels)) solver calls, where I(G) counts the graph's
// independent sets, so this is a ground-truth reference for small
// instances (tests, the topology study, bound validation), not a
// production path.
func ExhaustiveChannelOptimum(p *ChannelProblem, solver Solver) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if solver == nil {
		solver = &EquilibriumSolver{}
	}
	n := p.Base.N()
	var indep [][]int
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		if p.Graph.IsIndependent(set) {
			indep = append(indep, set)
		}
	}
	best := math.Inf(-1)
	var rec func(c int, g []float64) error
	rec = func(c int, g []float64) error {
		if c == len(p.Channels) {
			withG := p.Base.WithG(g)
			alloc, err := solver.Solve(withG)
			if err != nil {
				return err
			}
			if v := alloc.Objective(withG); v > best {
				best = v
			}
			return nil
		}
		for _, set := range indep {
			g2 := append([]float64(nil), g...)
			for _, i := range set {
				g2[i] += p.Posteriors[c]
			}
			if err := rec(c+1, g2); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, make([]float64, n)); err != nil {
		return 0, err
	}
	return best, nil
}
