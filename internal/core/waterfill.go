package core

import "math"

// waterfillUser is one user competing for a single time-shared resource.
type waterfillUser struct {
	ps  float64 // packet-success probability (objective weight)
	w   float64 // current quality W^{t-1}
	r   float64 // per-unit-rho quality increment (R0 or G_i*R1)
	cap float64 // share ceiling (Wmax-W)/r from the encoding ceiling; < 0 = unbounded
}

// rhoAt returns the closed-form share of Table I step 3 at price lambda,
// rho = [ps/lambda - w/r]+, clamped to the user's demand ceiling: beyond it
// the encoding saturates and extra share is worthless.
func (u waterfillUser) rhoAt(lambda float64) float64 {
	if u.r <= 0 || u.ps <= 0 {
		return 0
	}
	rho := u.ps/lambda - u.w/u.r
	if rho < 0 {
		return 0
	}
	if u.cap >= 0 && rho > u.cap {
		return u.cap
	}
	return rho
}

// branchValue returns the user's Lagrangian contribution at price lambda
// with its optimal share: ps*log(w + rho*r) + (1-ps)*log(w) - lambda*rho.
// This is the quantity compared in Table I step 4 to pick the serving base
// station. The (1-ps)*log(w) term is the loss branch of the conditional
// expectation E[log W^t]: when the packet is lost the quality stays at w.
// (The paper's printed eq. (12) omits it, which would let a user prefer an
// idle association purely for its larger success-probability weight; the
// expectation form used here restores the intended comparison.)
func (u waterfillUser) branchValue(lambda float64) float64 {
	return u.branchValueLog(lambda, math.Log(u.w))
}

// branchValueLog is branchValue with the caller-cached log(w) term. The
// solvers evaluate branch values thousands of times per solve at prices
// that mostly leave rho at zero, where the whole expression collapses to
// terms of log(w); caching it removes the dominant math.Log cost. The
// result is bit-identical to branchValue: when rho is zero the original
// computed math.Log(w + 0*r) = log(w), the exact value cached here, and
// when rho is nonzero the same math.Log call runs on the same argument.
func (u waterfillUser) branchValueLog(lambda, logW float64) float64 {
	bv, _ := u.branchAndRho(lambda, logW)
	return bv
}

// branchAndRho returns branchValueLog together with the optimal share it
// was evaluated at. The demand loops of every solver previously computed
// the share twice — once inside the branch value, once to accumulate the
// demand total — and fusing the two halves the rhoAt cost of the inner
// bisections with bit-identical results (same call, same argument).
func (u waterfillUser) branchAndRho(lambda, logW float64) (float64, float64) {
	rho := u.rhoAt(lambda)
	logWG := logW
	if rho != 0 {
		logWG = math.Log(u.w + rho*u.r)
	}
	return u.ps*logWG + (1-u.ps)*logW - lambda*rho, rho
}

// rhoAtWR is rhoAt with the w/r ratio hoisted out by the caller: wr must be
// the exact quotient u.w/u.r (prepareUsers performs that division once per
// solve), making the result bit-identical while dropping one division from
// every price probe of the bisections.
func (u waterfillUser) rhoAtWR(lambda, wr float64) float64 {
	if u.r <= 0 || u.ps <= 0 {
		return 0
	}
	rho := u.ps/lambda - wr
	if rho < 0 {
		return 0
	}
	if u.cap >= 0 && rho > u.cap {
		return u.cap
	}
	return rho
}

// branchAndRhoWR is branchAndRho with two caller-hoisted terms: wr is the
// exact w/r quotient and bl the exact value of ps*logW + (1-ps)*logW
// (prepareUsers computes both once per solve with the same operations).
// When the share is zero the full expression collapses to bl - lambda*0;
// IEEE subtraction of a positive zero returns the other operand bit for
// bit, so returning bl directly is bitwise-identical to the long form while
// skipping two multiplies and two adds on the price-too-high path the
// bisections spend most probes in.
func (u waterfillUser) branchAndRhoWR(lambda, logW, wr, bl float64) (float64, float64) {
	rho := u.rhoAtWR(lambda, wr)
	if rho == 0 {
		return bl, 0
	}
	return u.ps*math.Log(u.w+rho*u.r) + (1-u.ps)*logW - lambda*rho, rho
}

// waterfill maximizes sum_j ps_j*log(w_j + rho_j*r_j) subject to
// sum rho_j <= budget, rho_j >= 0, by bisection on the price lambda (the
// KKT conditions make total demand strictly decreasing in lambda). It
// returns the shares and the supporting price. With no effective users the
// shares are zero and the price 0.
func waterfill(users []waterfillUser, budget float64) ([]float64, float64) {
	rho := make([]float64, len(users))
	lambda := waterfillInto(rho, users, budget)
	return rho, lambda
}

// waterfillInto is waterfill writing the shares into the caller-owned rho
// buffer (len(rho) must equal len(users)), returning the supporting price.
// It is the retained scalar reference implementation: the hot path now runs
// waterfillColumns over flat effective-user columns (see fillCommon and
// fillFBS), and the property tests in waterfill_prop_test.go pin the two
// bit-identical on random and degenerate instances.
//
//femtovet:hotpath
//femtovet:borrows rho, users
func waterfillInto(rho []float64, users []waterfillUser, budget float64) float64 {
	for j := range rho {
		rho[j] = 0
	}
	if budget <= 0 {
		return 0
	}
	demand := func(lambda float64) float64 {
		total := 0.0
		for _, u := range users {
			total += u.rhoAt(lambda)
		}
		return total
	}

	// Price upper bound: at lambda = sum(ps)/budget every rho <= ps/lambda,
	// so total demand <= budget.
	sumPS := 0.0
	effective := 0
	for _, u := range users {
		if u.ps > 0 && u.r > 0 {
			sumPS += u.ps
			effective++
		}
	}
	if effective == 0 {
		return 0
	}
	hi := sumPS / budget
	if demand(hi) > budget {
		// Guard against rounding; expand until demand fits.
		for i := 0; i < 64 && demand(hi) > budget; i++ {
			hi *= 2
		}
	}
	// If even a vanishing price cannot fill the budget the constraint is
	// slack; that cannot happen here since demand -> +inf as lambda -> 0+
	// for any effective user, but keep a defensive check.
	const tiny = 1e-18
	lo := tiny
	if demand(lo) <= budget {
		for j, u := range users {
			rho[j] = u.rhoAt(lo)
		}
		return 0
	}
	for iter := 0; iter < 100; iter++ {
		mid := 0.5 * (lo + hi)
		if demand(mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*hi {
			break
		}
	}
	lambda := hi // feasible side
	total := 0.0
	for j, u := range users {
		rho[j] = u.rhoAt(lambda)
		total += rho[j]
	}
	// Distribute any residual slack caused by tolerance to keep the budget
	// exactly saturated (scale up is safe: the objective is increasing in
	// rho), without pushing anyone past their demand ceiling.
	if total > 0 && total < budget {
		scale := budget / total
		for j := range rho {
			scaled := rho[j] * scale
			if c := users[j].cap; c >= 0 && scaled > c {
				scaled = c
			}
			rho[j] = scaled
		}
	}
	return lambda
}

// waterfillColumns is waterfillInto restructured over flat float64 columns
// holding only the effective users (ps > 0 and r > 0): ps, wr (the hoisted
// w/r quotient) and caps are parallel to rho, and the caller maps the
// resulting shares back to user indices while zeroing everyone it filtered
// out. The contiguous branch-light demand loop replaces the per-user struct
// walk with its method calls and effectiveness re-checks on every price
// probe — the shape the bisection spends its time in.
//
// Outputs are bit-identical to the scalar reference: every retained user
// contributes the exact ps/lambda - w/r clamp sequence of rhoAt in the same
// ascending order (wr is the same quotient, divided once), users filtered
// out contributed an exact 0.0 the nonnegative partial sums never depended
// on, and demand totals are only ever compared against the budget, so the
// accumulation can exit as soon as the partial sum crosses it — the
// remaining nonnegative terms cannot bring it back below.
//
//femtovet:hotpath
//femtovet:borrows rho, ps, wr, caps
func waterfillColumns(rho, ps, wr, caps []float64, budget float64) float64 {
	ne := len(ps)
	for i := range rho {
		rho[i] = 0
	}
	if budget <= 0 || ne == 0 {
		return 0
	}
	wr = wr[:ne]
	caps = caps[:ne]
	rho = rho[:ne]
	sumPS := 0.0
	for _, p := range ps {
		sumPS += p
	}
	demand := func(lambda float64) float64 {
		total := 0.0
		for i, p := range ps {
			r := p/lambda - wr[i]
			if r < 0 {
				r = 0
			} else if c := caps[i]; c >= 0 && r > c {
				r = c
			}
			total += r
			if total > budget {
				return total
			}
		}
		return total
	}

	// Price upper bound: at lambda = sum(ps)/budget every rho <= ps/lambda,
	// so total demand <= budget.
	hi := sumPS / budget
	if demand(hi) > budget {
		// Guard against rounding; expand until demand fits.
		for i := 0; i < 64 && demand(hi) > budget; i++ {
			hi *= 2
		}
	}
	// Mirror of the scalar reference's defensive slack check.
	const tiny = 1e-18
	lo := tiny
	if demand(lo) <= budget {
		for i, p := range ps {
			r := p/lo - wr[i]
			if r < 0 {
				r = 0
			} else if c := caps[i]; c >= 0 && r > c {
				r = c
			}
			rho[i] = r
		}
		return 0
	}
	for iter := 0; iter < 100; iter++ {
		mid := 0.5 * (lo + hi)
		if demand(mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*hi {
			break
		}
	}
	lambda := hi // feasible side
	total := 0.0
	for i, p := range ps {
		r := p/lambda - wr[i]
		if r < 0 {
			r = 0
		} else if c := caps[i]; c >= 0 && r > c {
			r = c
		}
		rho[i] = r
		total += r
	}
	// Distribute any residual slack caused by tolerance to keep the budget
	// exactly saturated, without pushing anyone past their demand ceiling.
	if total > 0 && total < budget {
		scale := budget / total
		for i := range rho {
			scaled := rho[i] * scale
			if c := caps[i]; c >= 0 && scaled > c {
				scaled = c
			}
			rho[i] = scaled
		}
	}
	return lambda
}
