package core

// RoundRobin is an extension baseline below both of the paper's heuristics:
// plain TDMA. Each slot, every FBS grants its whole band to the next of its
// users in rotation, and the MBS grants the common channel to the next user
// overall that its FBS did not pick. No channel-state information is used
// at all, which makes it the natural "no optimization" anchor for the
// comparisons.
//
// The scheduler is stateful (the rotation counter advances per Solve call)
// and not safe for concurrent use.
type RoundRobin struct {
	counter int
}

var (
	_ Solver     = (*RoundRobin)(nil)
	_ IntoSolver = (*RoundRobin)(nil)
)

// Name identifies the scheme.
func (r *RoundRobin) Name() string { return "Round robin" }

// Solve grants whole slots in rotation.
func (r *RoundRobin) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := NewAllocation(in.K())
	r.solveInto(in, alloc)
	return alloc, nil
}

// SolveInto solves into a caller-owned allocation, advancing the rotation.
//
//femtovet:hotpath
//femtovet:borrows in, out
func (r *RoundRobin) SolveInto(in *Instance, out *Allocation) error {
	if err := in.Validate(); err != nil {
		return err
	}
	r.solveInto(in, out)
	return nil
}

func (r *RoundRobin) solveInto(in *Instance, alloc *Allocation) {
	k := in.K()
	alloc.resize(k)
	ws := getWorkspace()
	defer putWorkspace(ws)
	taken := growB(ws.alive, k)
	ws.alive = taken
	for j := range taken {
		taken[j] = false
	}
	byFBS := ws.groupByFBS(in)
	for i := 1; i <= in.N(); i++ {
		users := byFBS[i]
		if len(users) == 0 {
			continue
		}
		j := users[r.counter%len(users)]
		alloc.Rho1[j] = 1
		taken[j] = true
	}
	// The MBS serves the next not-yet-served user in global rotation.
	for off := 0; off < k; off++ {
		j := (r.counter + off) % k
		if !taken[j] {
			alloc.MBS[j] = true
			alloc.Rho0[j] = 1
			break
		}
	}
	r.counter++
}
