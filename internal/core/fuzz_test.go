package core

import (
	"math"
	"testing"
)

// FuzzWaterfill hunts for inputs where the bisection produces negative
// shares, blows the budget, overflows a cap, or returns NaN.
func FuzzWaterfill(f *testing.F) {
	f.Add(0.9, 30.0, 0.3, -1.0, 0.5, 25.0, 0.2, 0.4, 1.0)
	f.Add(0.0, 30.0, 0.0, 0.0, 1.0, 20.0, 0.5, -1.0, 0.5)
	f.Fuzz(func(t *testing.T, ps1, w1, r1, cap1, ps2, w2, r2, cap2, budget float64) {
		for _, v := range []float64{ps1, w1, r1, cap1, ps2, w2, r2, cap2, budget} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		clampPS := func(p float64) float64 {
			if p < 0 {
				return 0
			}
			if p > 1 {
				return 1
			}
			return p
		}
		clampPos := func(v, lo, hi float64) float64 {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		users := []waterfillUser{
			{ps: clampPS(ps1), w: clampPos(w1, 1, 100), r: clampPos(r1, 0, 10), cap: clampPos(cap1, -1, 100)},
			{ps: clampPS(ps2), w: clampPos(w2, 1, 100), r: clampPos(r2, 0, 10), cap: clampPos(cap2, -1, 100)},
		}
		b := clampPos(budget, 0, 10)
		rho, lambda := waterfill(users, b)
		if math.IsNaN(lambda) || lambda < 0 {
			t.Fatalf("lambda = %v", lambda)
		}
		total := 0.0
		for i, r := range rho {
			if math.IsNaN(r) || r < 0 {
				t.Fatalf("rho[%d] = %v", i, r)
			}
			if c := users[i].cap; c >= 0 && r > c+1e-9 {
				t.Fatalf("rho[%d] = %v exceeds cap %v", i, r, c)
			}
			total += r
		}
		if total > b+1e-6 {
			t.Fatalf("total %v exceeds budget %v", total, b)
		}
	})
}
