package core

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/igraph"
	"femtocr/internal/rng"
)

// FuzzWaterfill hunts for inputs where the bisection produces negative
// shares, blows the budget, overflows a cap, or returns NaN.
func FuzzWaterfill(f *testing.F) {
	f.Add(0.9, 30.0, 0.3, -1.0, 0.5, 25.0, 0.2, 0.4, 1.0)
	f.Add(0.0, 30.0, 0.0, 0.0, 1.0, 20.0, 0.5, -1.0, 0.5)
	// Degenerate corners: all-busy channels (every success probability 0),
	// perfect sensing (probabilities pinned to exactly 0 or 1, the PFA=PMD=0
	// posterior values), and a zero budget.
	f.Add(0.0, 30.0, 0.3, -1.0, 0.0, 25.0, 0.2, 0.4, 1.0)
	f.Add(1.0, 30.0, 0.3, 10.0, 0.0, 25.0, 0.2, 0.4, 2.0)
	f.Add(0.9, 30.0, 0.3, -1.0, 0.5, 25.0, 0.2, 0.4, 0.0)
	f.Fuzz(func(t *testing.T, ps1, w1, r1, cap1, ps2, w2, r2, cap2, budget float64) {
		for _, v := range []float64{ps1, w1, r1, cap1, ps2, w2, r2, cap2, budget} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		clampPS := func(p float64) float64 {
			if p < 0 {
				return 0
			}
			if p > 1 {
				return 1
			}
			return p
		}
		clampPos := func(v, lo, hi float64) float64 {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		users := []waterfillUser{
			{ps: clampPS(ps1), w: clampPos(w1, 1, 100), r: clampPos(r1, 0, 10), cap: clampPos(cap1, -1, 100)},
			{ps: clampPS(ps2), w: clampPos(w2, 1, 100), r: clampPos(r2, 0, 10), cap: clampPos(cap2, -1, 100)},
		}
		b := clampPos(budget, 0, 10)
		rho, lambda := waterfill(users, b)
		if math.IsNaN(lambda) || lambda < 0 {
			t.Fatalf("lambda = %v", lambda)
		}
		total := 0.0
		for i, r := range rho {
			if math.IsNaN(r) || r < 0 {
				t.Fatalf("rho[%d] = %v", i, r)
			}
			if c := users[i].cap; c >= 0 && r > c+1e-9 {
				t.Fatalf("rho[%d] = %v exceeds cap %v", i, r, c)
			}
			total += r
		}
		if total > b+1e-6 {
			t.Fatalf("total %v exceeds budget %v", total, b)
		}
	})
}

// FuzzGreedyChannels throws degenerate channel-allocation problems at Table
// III: zero users (must fail validation, never panic), all-busy channels
// (every posterior 0), perfect-sensing posteriors pinned to 0 or 1 (the
// PFA=PMD=0 fusion output), and arbitrary small graphs. For valid instances
// it checks the eq. (23) bound ordering, interference feasibility of the
// assignment, and NaN-freedom.
func FuzzGreedyChannels(f *testing.F) {
	// seed, usersPerFBS, nFBS, channels, posterior override (-1: random),
	// complete graph (vs path), lazy evaluation.
	f.Add(uint64(1), 1, 3, 2, -1.0, false, false)
	f.Add(uint64(2), 0, 2, 2, 0.5, false, false) // zero users
	f.Add(uint64(3), 2, 2, 3, 0.0, false, true)  // all channels busy
	f.Add(uint64(4), 2, 3, 2, 1.0, true, true)   // perfect sensing, clique
	f.Add(uint64(5), 1, 1, 4, 0.25, false, false)
	f.Fuzz(func(t *testing.T, seed uint64, usersPerFBS, nFBS, channels int, post float64, clique, lazy bool) {
		if nFBS < 1 || nFBS > 3 || usersPerFBS < 0 || usersPerFBS > 2 || channels < 0 || channels > 3 {
			return
		}
		if math.IsNaN(post) || post > 1 {
			return
		}
		s := rng.New(seed)
		k := nFBS * usersPerFBS
		in := randomInstance(s, k, nFBS)
		in.G = make([]float64, nFBS) // greedy determines G
		for j := 0; j < k; j++ {
			in.FBS[j] = j/max(usersPerFBS, 1) + 1
		}
		graph := igraph.Path(nFBS)
		if clique {
			graph = igraph.Complete(nFBS)
		}
		chs := make([]int, channels)
		posts := make([]float64, channels)
		for c := range chs {
			chs[c] = c + 1
			if post < 0 {
				posts[c] = s.Float64()
			} else {
				posts[c] = post
			}
		}
		p := &ChannelProblem{Base: in, Graph: graph, Channels: chs, Posteriors: posts}

		g := NewGreedyAllocator(nil)
		if lazy {
			g = NewGreedyAllocator(nil, WithLazyEvaluation())
		}
		res, err := g.Allocate(p)
		if k == 0 {
			if !errors.Is(err, ErrBadInstance) {
				t.Fatalf("zero users: err = %v, want ErrBadInstance", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if math.IsNaN(res.Value) || math.IsNaN(res.UpperBound) || math.IsNaN(res.PaperUpperBound) {
			t.Fatalf("NaN in results: %+v", res)
		}
		const tol = 1e-6
		if res.Value > res.UpperBound+tol {
			t.Fatalf("value %v exceeds tightened bound %v", res.Value, res.UpperBound)
		}
		if res.UpperBound > res.PaperUpperBound+tol {
			t.Fatalf("tightened bound %v exceeds eq. (23) bound %v", res.UpperBound, res.PaperUpperBound)
		}
		for i, g := range res.G {
			if g < 0 || math.IsNaN(g) {
				t.Fatalf("G[%d] = %v", i, g)
			}
		}
		// Interference feasibility: adjacent FBSs never share a channel.
		holders := make(map[int][]int)
		for i, chans := range res.Assigned {
			for _, ch := range chans {
				holders[ch] = append(holders[ch], i)
			}
		}
		for ch, fbss := range holders {
			if !graph.IsIndependent(fbss) {
				t.Fatalf("channel %d assigned to adjacent FBSs %v", ch, fbss)
			}
		}
	})
}
