package core

import (
	"testing"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

// markovTrace drives in.G through the paper's two-state Markov chain: each
// FBS senses 5 licensed channels whose occupancy evolves independently, and
// G_i is the slot's idle count — the correlated per-slot drift the warm
// start exploits.
type markovTrace struct {
	chain  markov.Chain
	states [][]markov.State
	stream *rng.Stream
}

func newMarkovTrace(s *rng.Stream, fbss int) *markovTrace {
	chain, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		panic(err)
	}
	tr := &markovTrace{chain: chain, stream: s}
	tr.states = make([][]markov.State, fbss)
	for i := range tr.states {
		tr.states[i] = make([]markov.State, 5)
		for c := range tr.states[i] {
			tr.states[i][c] = chain.SampleStationary(s)
		}
	}
	return tr
}

func (tr *markovTrace) step(g []float64) {
	for i := range tr.states {
		idle := 0
		for c := range tr.states[i] {
			tr.states[i][c] = tr.chain.Next(tr.states[i][c], tr.stream)
			if tr.states[i][c] == markov.Idle {
				idle++
			}
		}
		g[i] = float64(idle)
	}
}

// trivialInstance is feasible even if every user claims its full share on
// both stations at once: the W ceilings cap each user's useful share at
// (WMax-W)/r = 0.04, so aggregate demand stays below every budget and all
// equilibrium prices are exactly zero.
func trivialInstance() *Instance {
	return &Instance{
		W:    []float64{30, 30},
		WMax: []float64{30.02, 30.02},
		R0:   []float64{0.5, 0.5},
		R1:   []float64{0.5, 0.5},
		PS0:  []float64{0.6, 0.6},
		PS1:  []float64{0.6, 0.6},
		FBS:  []int{1, 1},
		G:    []float64{1},
	}
}

func sameAllocation(a, b *Allocation) bool {
	for j := range a.MBS {
		if a.MBS[j] != b.MBS[j] || a.Rho0[j] != b.Rho0[j] || a.Rho1[j] != b.Rho1[j] {
			return false
		}
	}
	return true
}

// TestWarmMatchesColdAllocations is the warm-start correctness gate at the
// core layer: across Markov-correlated traces, every warm solve's repaired
// allocation must be byte-identical to the session-less cold solve of the
// same instance, for both warm-capable solvers. The multipliers may differ
// within the convergence tolerance; the discrete repair must absorb that.
func TestWarmMatchesColdAllocations(t *testing.T) {
	solvers := []struct {
		name   string
		solver WarmSolver
	}{
		{"dual", NewDualSolver()},
		{"equilibrium", &EquilibriumSolver{}},
	}
	for _, tc := range solvers {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				s := rng.New(seed)
				in := randomInstance(s, 9, 3)
				tr := newMarkovTrace(s, 3)
				sess := NewSolverSession()
				warm := NewAllocation(in.K())
				cold := NewAllocation(in.K())
				for slot := 0; slot < 40; slot++ {
					tr.step(in.G)
					if err := tc.solver.SolveWarmInto(in, warm, sess); err != nil {
						t.Fatal(err)
					}
					if err := tc.solver.SolveInto(in, cold); err != nil {
						t.Fatal(err)
					}
					if !sameAllocation(warm, cold) {
						t.Fatalf("seed %d slot %d: warm and cold allocations differ", seed, slot)
					}
				}
				st := sess.Stats()
				if st.Solves != 40 {
					t.Fatalf("seed %d: recorded %d solves, want 40", seed, st.Solves)
				}
				if st.WarmSolves == 0 {
					t.Fatalf("seed %d: no warm solve happened; the test is vacuous", seed)
				}
			}
		})
	}
}

// TestWarmMatchesColdTrivialSlots covers the trivial-feasibility
// short-circuit: warm sessions skip the subgradient loop entirely on slots
// whose demand fits every budget at the price floor, and the zero-price
// repair must equal the legacy cold dynamics (which walk the prices to
// exactly zero).
func TestWarmMatchesColdTrivialSlots(t *testing.T) {
	in := trivialInstance()
	for _, tc := range []struct {
		name   string
		solver WarmSolver
	}{
		{"dual", NewDualSolver()},
		{"equilibrium", &EquilibriumSolver{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sess := NewSolverSession()
			warm := NewAllocation(in.K())
			cold := NewAllocation(in.K())
			for slot := 0; slot < 3; slot++ {
				if err := tc.solver.SolveWarmInto(in, warm, sess); err != nil {
					t.Fatal(err)
				}
				if err := tc.solver.SolveInto(in, cold); err != nil {
					t.Fatal(err)
				}
				if !sameAllocation(warm, cold) {
					t.Fatalf("slot %d: trivial warm and cold allocations differ", slot)
				}
			}
			st := sess.Stats()
			if st.TrivialSolves != 3 {
				t.Fatalf("TrivialSolves = %d, want 3", st.TrivialSolves)
			}
			if st.TotalIters != 0 {
				t.Fatalf("TotalIters = %d, want 0", st.TotalIters)
			}
		})
	}
}

// TestDualReportIterations pins the Iterations semantics: performed
// iterations on a normal solve, exactly the cap when termination never
// fires, at most the cap with a tight budget, and 0 on the trivial
// short-circuit (cold-probe and warm sessions alike).
func TestDualReportIterations(t *testing.T) {
	// paperishInstance is oscillation-bound (a knife-edge association user
	// keeps the movement above phi for the full 2000-iteration budget), so
	// the converging cases use a random instance that terminates normally.
	in := randomInstance(rng.New(7), 9, 3)

	t.Run("performed", func(t *testing.T) {
		d := NewDualSolver(WithTrace())
		_, rep, err := d.SolveDetailed(in)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Iterations < 1 || !rep.Converged {
			t.Fatalf("Iterations = %d, Converged = %v; want >= 1 and converged", rep.Iterations, rep.Converged)
		}
		// The trace holds the initial prices plus one snapshot per
		// performed iteration.
		if got, want := len(rep.Trace), rep.Iterations+1; got != want {
			t.Fatalf("len(Trace) = %d, want %d", got, want)
		}
	})

	t.Run("exactly the cap when never terminating", func(t *testing.T) {
		d := NewDualSolver(WithMaxIter(7), WithPhi(-1))
		_, rep, err := d.SolveDetailed(in)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Iterations != 7 || rep.Converged {
			t.Fatalf("Iterations = %d, Converged = %v; want 7, not converged", rep.Iterations, rep.Converged)
		}
	})

	t.Run("capped", func(t *testing.T) {
		d := NewDualSolver(WithMaxIter(3))
		_, rep, err := d.SolveDetailed(in)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Iterations > 3 {
			t.Fatalf("Iterations = %d beyond the 3-iteration cap", rep.Iterations)
		}
	})

	t.Run("trivial is zero, cold and warm", func(t *testing.T) {
		tin := trivialInstance()
		d := NewDualSolver()
		for _, sess := range []*SolverSession{NewColdProbeSession(), NewSolverSession()} {
			for solve := 0; solve < 2; solve++ { // second NewSolverSession solve would be warm
				_, rep, err := d.SolveWarmDetailed(tin, sess)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Iterations != 0 || !rep.Converged {
					t.Fatalf("seeding=%v solve %d: Iterations = %d, Converged = %v; want 0, converged",
						sess.Seeding(), solve, rep.Iterations, rep.Converged)
				}
			}
		}
	})
}

// TestSessionShapeChangeColdStarts pins the re-cold-start trigger: carried
// state is keyed to the instance shape, so a differently-shaped instance
// must drop it and cold-start instead of warm-seeding garbage.
func TestSessionShapeChangeColdStarts(t *testing.T) {
	s := rng.New(11)
	inA := randomInstance(s, 9, 3)
	inB := randomInstance(s, 6, 2) // different user and FBS count
	inC := randomInstance(s, 9, 3) // same shape as A only if memberships match
	copy(inC.FBS, inA.FBS)

	d := NewDualSolver()
	sess := NewSolverSession()
	out := NewAllocation(9)
	outB := NewAllocation(6)
	for _, step := range []struct {
		in  *Instance
		out *Allocation
	}{{inA, out}, {inB, outB}, {inC, out}} {
		if err := d.SolveWarmInto(step.in, step.out, sess); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.ColdStarts != 3 || st.WarmSolves != 0 {
		t.Fatalf("stats = %+v; want 3 cold starts and 0 warm solves across shape changes", st)
	}

	// Same shape again: now the carried state applies.
	if err := d.SolveWarmInto(inC, out, sess); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.WarmSolves != 1 {
		t.Fatalf("stats = %+v; want 1 warm solve on the repeated shape", st)
	}
}

// TestWarmDivergenceGuardRestartsCold forces a warm seed that cannot
// converge within a tiny iteration budget and checks the guard: the solve
// re-runs cold in the same call, the restart is counted, and the carried
// state is invalidated so the next solve cold-starts rather than re-seeding
// from the failure.
func TestWarmDivergenceGuardRestartsCold(t *testing.T) {
	in := randomInstance(rng.New(7), 9, 3) // converges cold, so the session stores a seed
	sess := NewSolverSession()
	out := NewAllocation(in.K())
	if err := NewDualSolver().SolveWarmInto(in, out, sess); err != nil {
		t.Fatal(err)
	}
	if !sess.haveLambda {
		t.Fatal("first solve did not store multipliers")
	}
	// Sabotage the carried multipliers: a seed far above the equilibrium
	// descends at the capped rate and cannot converge within 6 iterations.
	for i := range sess.lambda {
		sess.lambda[i] *= 1e6
	}
	d := NewDualSolver(WithMaxIter(6))
	if err := d.SolveWarmInto(in, out, sess); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", st.Restarts)
	}
	// Both the warm attempt and the cold rerun spent the full budget.
	if sess.LastIterations() != 12 {
		t.Fatalf("LastIterations = %d, want 12 (6 warm + 6 cold)", sess.LastIterations())
	}
	// The cold rerun did not converge either, so the next solve must not
	// warm-start from it.
	if sess.haveLambda {
		t.Fatal("non-converged multipliers were kept as a seed")
	}
	if err := d.SolveWarmInto(in, out, sess); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.WarmSolves != 1 {
		t.Fatalf("WarmSolves = %d after guard trip, want 1 (only the failed attempt)", st.WarmSolves)
	}
}

// TestSessionStats covers the bookkeeping: counters, mean, histogram
// quantiles, last-solve access, and Reset.
func TestSessionStats(t *testing.T) {
	in := randomInstance(rng.New(7), 9, 3)
	d := NewDualSolver()
	sess := NewSolverSession()
	sess.EnableStats()
	out := NewAllocation(in.K())
	for i := 0; i < 5; i++ {
		if err := d.SolveWarmInto(in, out, sess); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.Solves != 5 || st.ColdStarts != 1 || st.WarmSolves != 4 {
		t.Fatalf("stats = %+v; want 5 solves, 1 cold, 4 warm", st)
	}
	if st.TotalIters <= 0 || st.MaxIters <= 0 {
		t.Fatalf("stats = %+v; want positive iteration totals", st)
	}
	if sess.IterationMean() <= 0 {
		t.Fatalf("IterationMean = %v, want > 0", sess.IterationMean())
	}
	p50, p100 := sess.IterationQuantile(0.5), sess.IterationQuantile(1)
	if p50 < 0 || p100 < p50 || p100 != st.MaxIters {
		t.Fatalf("quantiles p50=%d p100=%d max=%d inconsistent", p50, p100, st.MaxIters)
	}
	if sess.LastIterations() <= 0 {
		t.Fatalf("LastIterations = %d, want > 0", sess.LastIterations())
	}
	hist := sess.HistCopy()
	var histSolves int64
	for _, c := range hist {
		histSolves += c
	}
	if histSolves != int64(st.Solves) {
		t.Fatalf("histogram records %d solves, stats %d", histSolves, st.Solves)
	}

	sess.Reset()
	if st := sess.Stats(); st != (SessionStats{}) {
		t.Fatalf("stats after Reset = %+v, want zero", st)
	}
	if sess.IterationQuantile(0.5) != -1 {
		t.Fatal("IterationQuantile after Reset should be -1")
	}
	// After Reset the next solve is a cold start again.
	if err := d.SolveWarmInto(in, out, sess); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.ColdStarts != 1 || st.WarmSolves != 0 {
		t.Fatalf("stats after Reset+solve = %+v; want 1 cold start", st)
	}
}

// TestSessionStatsMerge pins the fold arithmetic used by the sharded
// runner's warm-report aggregation.
func TestSessionStatsMerge(t *testing.T) {
	a := SessionStats{Solves: 3, WarmSolves: 2, ColdStarts: 1, Restarts: 1, TrivialSolves: 1, TotalIters: 100, MaxIters: 60}
	b := SessionStats{Solves: 2, WarmSolves: 1, ColdStarts: 1, TotalIters: 50, MaxIters: 40}
	a.Merge(&b)
	want := SessionStats{Solves: 5, WarmSolves: 3, ColdStarts: 2, Restarts: 1, TrivialSolves: 1, TotalIters: 150, MaxIters: 60}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
}

// TestColdProbeSessionNeverSeeds pins the cold-baseline instrumentation
// mode: the solves stay bit-identical to the session-less path while the
// statistics are still recorded.
func TestColdProbeSessionNeverSeeds(t *testing.T) {
	s := rng.New(5)
	in := randomInstance(s, 9, 3)
	tr := newMarkovTrace(s, 3)
	d := NewDualSolver()
	sess := NewColdProbeSession()
	probe := NewAllocation(in.K())
	plain := NewAllocation(in.K())
	for slot := 0; slot < 10; slot++ {
		tr.step(in.G)
		_, prep, err := d.SolveWarmDetailed(in, sess)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.SolveInto(in, plain); err != nil {
			t.Fatal(err)
		}
		_, crep, err := d.SolveDetailed(in)
		if err != nil {
			t.Fatal(err)
		}
		_ = probe
		// Same iterations as the legacy path except on trivially-feasible
		// slots, where the session short-circuits to zero prices.
		trivial := prep.Iterations == 0 && crep.Iterations != 0
		if !trivial && prep.Iterations != crep.Iterations {
			t.Fatalf("slot %d: cold-probe took %d iterations, legacy %d", slot, prep.Iterations, crep.Iterations)
		}
	}
	st := sess.Stats()
	if st.WarmSolves != 0 || st.ColdStarts != 10 {
		t.Fatalf("stats = %+v; want all cold", st)
	}
}
