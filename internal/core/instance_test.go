package core

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/rng"
)

// randomInstance generates a valid random instance with k users spread over
// n FBSs, for property tests.
func randomInstance(s *rng.Stream, k, n int) *Instance {
	in := &Instance{
		W:   make([]float64, k),
		R0:  make([]float64, k),
		R1:  make([]float64, k),
		PS0: make([]float64, k),
		PS1: make([]float64, k),
		FBS: make([]int, k),
		G:   make([]float64, n),
	}
	for j := 0; j < k; j++ {
		in.W[j] = 25 + 15*s.Float64()
		in.R0[j] = 0.05 + 0.45*s.Float64()
		in.R1[j] = 0.05 + 0.45*s.Float64()
		in.PS0[j] = 0.3 + 0.7*s.Float64()
		in.PS1[j] = 0.3 + 0.7*s.Float64()
		in.FBS[j] = 1 + s.IntN(n)
	}
	for i := 0; i < n; i++ {
		in.G[i] = 5 * s.Float64()
	}
	return in
}

// paperishInstance builds a deterministic 3-user single-FBS instance with
// paper-like magnitudes.
func paperishInstance() *Instance {
	return &Instance{
		W:   []float64{28.2, 25.9, 27.1},
		R0:  []float64{0.288, 0.312, 0.243}, // beta * B0 / T
		R1:  []float64{0.288, 0.312, 0.243},
		PS0: []float64{0.70, 0.65, 0.72},
		PS1: []float64{0.92, 0.90, 0.95},
		FBS: []int{1, 1, 1},
		G:   []float64{3.4},
	}
}

func TestInstanceValidateOK(t *testing.T) {
	if err := paperishInstance().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	mutations := []struct {
		name string
		mod  func(*Instance)
	}{
		{"no users", func(in *Instance) { in.W = nil }},
		{"length mismatch", func(in *Instance) { in.R0 = in.R0[:1] }},
		{"no fbs", func(in *Instance) { in.G = nil }},
		{"zero W", func(in *Instance) { in.W[0] = 0 }},
		{"NaN W", func(in *Instance) { in.W[1] = math.NaN() }},
		{"negative R0", func(in *Instance) { in.R0[0] = -1 }},
		{"PS0 above 1", func(in *Instance) { in.PS0[0] = 1.2 }},
		{"PS1 below 0", func(in *Instance) { in.PS1[2] = -0.1 }},
		{"FBS zero", func(in *Instance) { in.FBS[0] = 0 }},
		{"FBS out of range", func(in *Instance) { in.FBS[1] = 2 }},
		{"negative G", func(in *Instance) { in.G[0] = -0.5 }},
		{"NaN G", func(in *Instance) { in.G[0] = math.NaN() }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			in := paperishInstance()
			m.mod(in)
			if err := in.Validate(); !errors.Is(err, ErrBadInstance) {
				t.Fatalf("err = %v, want ErrBadInstance", err)
			}
		})
	}
}

func TestUsersOf(t *testing.T) {
	in := randomInstance(rng.New(1), 9, 3)
	seen := make(map[int]bool)
	for i := 1; i <= 3; i++ {
		for _, j := range in.UsersOf(i) {
			if in.FBS[j] != i {
				t.Fatalf("UsersOf(%d) includes user %d of FBS %d", i, j, in.FBS[j])
			}
			if seen[j] {
				t.Fatalf("user %d in two groups", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != 9 {
		t.Fatalf("groups cover %d users, want 9", len(seen))
	}
}

func TestWithGDoesNotMutate(t *testing.T) {
	in := paperishInstance()
	cp := in.WithG([]float64{7})
	if in.G[0] == 7 {
		t.Fatal("WithG mutated the original")
	}
	if cp.G[0] != 7 || cp.K() != in.K() {
		t.Fatal("WithG copy wrong")
	}
}

func TestAllocationFeasible(t *testing.T) {
	in := paperishInstance()
	a := NewAllocation(3)
	a.MBS[0] = true
	a.Rho0[0] = 0.5
	a.Rho1[1] = 0.6
	a.Rho1[2] = 0.4
	if err := a.Feasible(in, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationInfeasibleCases(t *testing.T) {
	in := paperishInstance()
	cases := []struct {
		name string
		mod  func(*Allocation)
	}{
		{"negative share", func(a *Allocation) { a.Rho0[0] = -0.1 }},
		{"over budget common", func(a *Allocation) { a.MBS[0], a.MBS[1] = true, true; a.Rho0[0], a.Rho0[1] = 0.7, 0.7 }},
		{"over budget fbs", func(a *Allocation) { a.Rho1[0], a.Rho1[1] = 0.7, 0.7 }},
		{"share on wrong side", func(a *Allocation) { a.MBS[0] = true; a.Rho1[0] = 0.2 }},
		{"mbs share while on fbs", func(a *Allocation) { a.Rho0[0] = 0.2 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewAllocation(3)
			c.mod(a)
			if err := a.Feasible(in, 1e-9); !errors.Is(err, ErrBadInstance) {
				t.Fatalf("err = %v, want ErrBadInstance", err)
			}
		})
	}
	short := NewAllocation(2)
	if err := short.Feasible(in, 1e-9); !errors.Is(err, ErrBadInstance) {
		t.Fatal("size mismatch accepted")
	}
}

func TestObjectiveComputation(t *testing.T) {
	in := paperishInstance()
	a := NewAllocation(3)
	a.MBS[0] = true
	a.Rho0[0] = 1
	a.Rho1[1] = 0.5
	// user 2 idle on FBS side.
	want := in.PS0[0]*math.Log(in.W[0]+1*in.R0[0]) + (1-in.PS0[0])*math.Log(in.W[0]) +
		in.PS1[1]*math.Log(in.W[1]+0.5*in.G[0]*in.R1[1]) + (1-in.PS1[1])*math.Log(in.W[1]) +
		math.Log(in.W[2]) // idle user: success and loss branches coincide
	if got := a.Objective(in); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Objective = %v, want %v", got, want)
	}
}

func TestExpectedGain(t *testing.T) {
	in := paperishInstance()
	a := NewAllocation(3)
	a.MBS[0] = true
	a.Rho0[0] = 0.5
	a.Rho1[1] = 0.25
	if got, want := a.ExpectedGain(in, 0), in.PS0[0]*0.5*in.R0[0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("gain(0) = %v, want %v", got, want)
	}
	if got, want := a.ExpectedGain(in, 1), in.PS1[1]*0.25*in.G[0]*in.R1[1]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("gain(1) = %v, want %v", got, want)
	}
	if got := a.ExpectedGain(in, 2); got != 0 {
		t.Fatalf("gain(2) = %v, want 0", got)
	}
}
