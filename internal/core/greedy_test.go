package core

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/igraph"
	"femtocr/internal/rng"
)

// interferingProblem builds a paper-like interfering scenario: 3 FBSs on a
// path graph (Fig. 5), 3 users each, a set of accessed channels.
func interferingProblem(s *rng.Stream, numChannels int) *ChannelProblem {
	in := randomInstance(s, 9, 3)
	for j := 0; j < 9; j++ {
		in.FBS[j] = j/3 + 1 // users 0-2 on FBS 1, 3-5 on FBS 2, 6-8 on FBS 3
	}
	channels := make([]int, numChannels)
	posteriors := make([]float64, numChannels)
	for c := 0; c < numChannels; c++ {
		channels[c] = c + 1
		posteriors[c] = 0.5 + 0.5*s.Float64()
	}
	return &ChannelProblem{
		Base:       in,
		Graph:      igraph.Path(3),
		Channels:   channels,
		Posteriors: posteriors,
	}
}

// exhaustiveChannelOpt wraps the exported ground-truth enumerator.
func exhaustiveChannelOpt(t *testing.T, p *ChannelProblem, solver Solver) float64 {
	t.Helper()
	best, err := ExhaustiveChannelOptimum(p, solver)
	if err != nil {
		t.Fatal(err)
	}
	return best
}

func TestGreedyValidation(t *testing.T) {
	s := rng.New(1)
	p := interferingProblem(s, 3)
	g := NewGreedyAllocator(nil)

	bad := *p
	bad.Base = nil
	if _, err := g.Allocate(&bad); !errors.Is(err, ErrBadChannelProblem) {
		t.Fatalf("nil base err = %v", err)
	}
	bad = *p
	bad.Graph = nil
	if _, err := g.Allocate(&bad); !errors.Is(err, ErrBadChannelProblem) {
		t.Fatalf("nil graph err = %v", err)
	}
	bad = *p
	bad.Graph = igraph.Path(2)
	if _, err := g.Allocate(&bad); !errors.Is(err, ErrBadChannelProblem) {
		t.Fatalf("graph size mismatch err = %v", err)
	}
	bad = *p
	bad.Posteriors = bad.Posteriors[:1]
	if _, err := g.Allocate(&bad); !errors.Is(err, ErrBadChannelProblem) {
		t.Fatalf("posterior length err = %v", err)
	}
	bad = *p
	bad.Posteriors = append([]float64(nil), p.Posteriors...)
	bad.Posteriors[0] = 1.5
	if _, err := g.Allocate(&bad); !errors.Is(err, ErrBadChannelProblem) {
		t.Fatalf("posterior range err = %v", err)
	}
}

// TestGreedyInterferenceConstraint: adjacent FBSs never share a channel
// (Lemma 4), and non-adjacent ones may.
func TestGreedyInterferenceConstraint(t *testing.T) {
	root := rng.New(2)
	g := NewGreedyAllocator(nil)
	for trial := 0; trial < 10; trial++ {
		p := interferingProblem(root.SplitIndex("t", trial), 4)
		res, err := g.Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		has := func(fbs, ch int) bool {
			for _, c := range res.Assigned[fbs] {
				if c == ch {
					return true
				}
			}
			return false
		}
		for _, ch := range p.Channels {
			for u := 0; u < 3; u++ {
				for v := u + 1; v < 3; v++ {
					if p.Graph.HasEdge(u, v) && has(u, ch) && has(v, ch) {
						t.Fatalf("adjacent FBSs %d,%d share channel %d", u+1, v+1, ch)
					}
				}
			}
		}
	}
}

// TestGreedyChannelsFullyUsed: with positive gains everywhere, every channel
// ends up allocated to a maximal independent set; in particular the path
// graph lets FBS 1 and FBS 3 reuse the same channel.
func TestGreedySpatialReuse(t *testing.T) {
	s := rng.New(3)
	p := interferingProblem(s, 2)
	res, err := NewGreedyAllocator(nil).Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every channel is used by at least one FBS.
	used := make(map[int]int)
	for _, chans := range res.Assigned {
		for _, c := range chans {
			used[c]++
		}
	}
	for _, ch := range p.Channels {
		if used[ch] == 0 {
			t.Fatalf("channel %d unallocated", ch)
		}
	}
	// Spatial reuse must occur: with 2 channels and the path graph, the
	// greedy exhausts the candidate set, so total assignments exceed the
	// channel count (FBS 1 and 3 can share).
	total := 0
	for _, cnt := range used {
		total += cnt
	}
	if total <= len(p.Channels) {
		t.Fatalf("no spatial reuse: %d assignments for %d channels", total, len(p.Channels))
	}
}

// TestGreedyBounds: the exhaustive channel-allocation optimum lies between
// the Theorem 2 lower bound and the eq. (23) upper bound.
func TestGreedyBounds(t *testing.T) {
	root := rng.New(4)
	solver := &EquilibriumSolver{}
	g := NewGreedyAllocator(solver)
	for trial := 0; trial < 6; trial++ {
		p := interferingProblem(root.SplitIndex("t", trial), 3)
		res, err := g.Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		opt := exhaustiveChannelOpt(t, p, solver)
		if res.Value > opt+1e-6 {
			t.Fatalf("trial %d: greedy %v beats exhaustive optimum %v", trial, res.Value, opt)
		}
		if opt > res.UpperBound+1e-6 {
			t.Fatalf("trial %d: optimum %v exceeds tightened eq.(23) bound %v", trial, opt, res.UpperBound)
		}
		if res.UpperBound > res.PaperUpperBound+1e-9 {
			t.Fatalf("trial %d: tightened bound %v exceeds paper bound %v", trial, res.UpperBound, res.PaperUpperBound)
		}
		if opt > res.PaperUpperBound+1e-6 {
			t.Fatalf("trial %d: optimum %v exceeds paper eq.(23) bound %v", trial, opt, res.PaperUpperBound)
		}
		if res.LowerBoundFactor != 1.0/3 {
			t.Fatalf("path graph Dmax=2 should give factor 1/3, got %v", res.LowerBoundFactor)
		}
		// Greedy should in practice be very close to optimal.
		if opt-res.Value > 0.05*math.Abs(opt) {
			t.Fatalf("trial %d: greedy %v too far from optimum %v", trial, res.Value, opt)
		}
	}
}

// TestGreedyNoInterferenceGetsEverything: with an edgeless graph every FBS
// receives every channel (the Table II case), and the eq. (23) bound is
// tight: Dmax = 0 so greedy is optimal.
func TestGreedyNoInterferenceGetsEverything(t *testing.T) {
	s := rng.New(5)
	p := interferingProblem(s, 3)
	p.Graph = igraph.New(3) // no edges
	res, err := NewGreedyAllocator(nil).Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if len(res.Assigned[i]) != 3 {
			t.Fatalf("FBS %d got %v, want all 3 channels", i+1, res.Assigned[i])
		}
	}
	if res.UpperBound != res.Value || res.PaperUpperBound != res.Value {
		t.Fatalf("Dmax=0: bounds %v/%v should equal value %v", res.UpperBound, res.PaperUpperBound, res.Value)
	}
	if res.LowerBoundFactor != 1 {
		t.Fatalf("Dmax=0: factor %v, want 1", res.LowerBoundFactor)
	}
	wantG := 0.0
	for _, pa := range p.Posteriors {
		wantG += pa
	}
	for i, gv := range res.G {
		if math.Abs(gv-wantG) > 1e-12 {
			t.Fatalf("G[%d] = %v, want %v", i, gv, wantG)
		}
	}
}

// TestGreedyLazyMatchesEager: lazy evaluation must reproduce the eager
// result exactly while evaluating Q fewer times.
func TestGreedyLazyMatchesEager(t *testing.T) {
	root := rng.New(6)
	for trial := 0; trial < 6; trial++ {
		p := interferingProblem(root.SplitIndex("t", trial), 4)
		eager, err := NewGreedyAllocator(&EquilibriumSolver{}).Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := NewGreedyAllocator(&EquilibriumSolver{}, WithLazyEvaluation()).Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(eager.Value-lazy.Value) > 1e-9 {
			t.Fatalf("trial %d: eager %v != lazy %v", trial, eager.Value, lazy.Value)
		}
		for i := range eager.Assigned {
			if len(eager.Assigned[i]) != len(lazy.Assigned[i]) {
				t.Fatalf("trial %d FBS %d: eager %v vs lazy %v", trial, i+1, eager.Assigned[i], lazy.Assigned[i])
			}
			for c := range eager.Assigned[i] {
				if eager.Assigned[i][c] != lazy.Assigned[i][c] {
					t.Fatalf("trial %d FBS %d: eager %v vs lazy %v", trial, i+1, eager.Assigned[i], lazy.Assigned[i])
				}
			}
		}
		if lazy.Evaluations > eager.Evaluations {
			t.Fatalf("trial %d: lazy used %d evaluations, eager %d", trial, lazy.Evaluations, eager.Evaluations)
		}
	}
}

// TestGreedyGainsSubmodular: the recorded step gains are non-increasing —
// the empirical signature of Property 1 that justifies both the eq. (23)
// bound and lazy evaluation.
func TestGreedyGainsSubmodular(t *testing.T) {
	root := rng.New(8)
	for trial := 0; trial < 5; trial++ {
		p := interferingProblem(root.SplitIndex("t", trial), 4)
		res, err := NewGreedyAllocator(&EquilibriumSolver{}).Allocate(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Steps); i++ {
			if res.Steps[i].Gain > res.Steps[i-1].Gain+1e-6 {
				t.Fatalf("trial %d: gain increased at step %d: %v -> %v",
					trial, i, res.Steps[i-1].Gain, res.Steps[i].Gain)
			}
		}
	}
}

// TestGreedyEmptyChannelSet: with no accessed channels the greedy returns
// the MBS-only allocation.
func TestGreedyEmptyChannelSet(t *testing.T) {
	s := rng.New(9)
	p := interferingProblem(s, 0)
	res, err := NewGreedyAllocator(nil).Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("steps = %v, want none", res.Steps)
	}
	if res.UpperBound != res.Value {
		t.Fatal("no steps: bound must equal value")
	}
	if err := res.Alloc.Feasible(p.Base.WithG(res.G), 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyStepDegreeRecorded: each step's Degree is the chosen FBS's
// degree in the interference graph (Lemma 8).
func TestGreedyStepDegreeRecorded(t *testing.T) {
	s := rng.New(10)
	p := interferingProblem(s, 2)
	res, err := NewGreedyAllocator(nil).Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Steps {
		if st.Degree != p.Graph.Degree(st.FBS) {
			t.Fatalf("step %+v records degree %d, graph says %d", st, st.Degree, p.Graph.Degree(st.FBS))
		}
	}
}

// TestGreedySingleFBSOptimal: with one FBS (Dmax = 0) greedy gives it every
// channel and Theorem 2 says the result is optimal.
func TestGreedySingleFBSOptimal(t *testing.T) {
	s := rng.New(11)
	in := randomInstance(s, 3, 1)
	p := &ChannelProblem{
		Base:       in,
		Graph:      igraph.New(1),
		Channels:   []int{1, 2, 3},
		Posteriors: []float64{0.9, 0.8, 0.7},
	}
	res, err := NewGreedyAllocator(nil).Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.G[0]-2.4) > 1e-12 {
		t.Fatalf("G = %v, want 2.4", res.G[0])
	}
	if res.LowerBoundFactor != 1 || res.UpperBound != res.Value {
		t.Fatal("single FBS must be provably optimal")
	}
}
