package core

import (
	"math"
	"testing"

	"femtocr/internal/rng"
)

// columnsOf gathers the effective users (ps > 0, r > 0) of a scalar
// instance into the flat columns waterfillColumns consumes — the same
// gather fillCommon and fillFBS perform — returning the column arrays and
// the original index of each retained user.
func columnsOf(users []waterfillUser) (idx []int, ps, wr, caps []float64) {
	for j, u := range users {
		if u.ps > 0 && u.r > 0 {
			idx = append(idx, j)
			ps = append(ps, u.ps)
			wr = append(wr, u.w/u.r)
			caps = append(caps, u.cap)
		}
	}
	return idx, ps, wr, caps
}

// checkColumnsMatchScalar runs both water-filling implementations on the
// same instance and demands bitwise agreement: the supporting price and
// every per-user share, including the exact zeros of filtered-out users.
func checkColumnsMatchScalar(t *testing.T, label string, users []waterfillUser, budget float64) {
	t.Helper()
	refRho := make([]float64, len(users))
	refLambda := waterfillInto(refRho, users, budget)

	idx, ps, wr, caps := columnsOf(users)
	colRho := make([]float64, len(idx))
	colLambda := waterfillColumns(colRho, ps, wr, caps, budget)

	if math.Float64bits(colLambda) != math.Float64bits(refLambda) {
		t.Fatalf("%s: lambda %x (columns) vs %x (scalar)", label, colLambda, refLambda)
	}
	scattered := make([]float64, len(users))
	for t2, j := range idx {
		scattered[j] = colRho[t2]
	}
	for j := range users {
		if math.Float64bits(scattered[j]) != math.Float64bits(refRho[j]) {
			t.Fatalf("%s: rho[%d] = %x (columns) vs %x (scalar); users=%+v budget=%v",
				label, j, scattered[j], refRho[j], users, budget)
		}
	}
}

// TestWaterfillColumnsDegenerate pins the vectorized path to the scalar
// reference on every boundary shape the solvers actually produce: zero and
// negative budgets, saturated-at-zero ceilings, no effective users, a
// single user, and mixtures of effective and inert users.
func TestWaterfillColumnsDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		users  []waterfillUser
		budget float64
	}{
		{"empty", nil, 1},
		{"zero budget", []waterfillUser{{ps: 0.9, w: 100, r: 50, cap: -1}}, 0},
		{"negative budget", []waterfillUser{{ps: 0.9, w: 100, r: 50, cap: -1}}, -1},
		{"single unbounded user", []waterfillUser{{ps: 0.9, w: 100, r: 50, cap: -1}}, 1},
		{"single capped user", []waterfillUser{{ps: 0.9, w: 100, r: 50, cap: 0.3}}, 1},
		{"cap exactly zero", []waterfillUser{{ps: 0.9, w: 100, r: 50, cap: 0}}, 1},
		{"all ps zero", []waterfillUser{
			{ps: 0, w: 100, r: 50, cap: -1},
			{ps: 0, w: 80, r: 20, cap: 0.5},
		}, 1},
		{"all r zero", []waterfillUser{
			{ps: 0.9, w: 100, r: 0, cap: -1},
			{ps: 0.5, w: 80, r: 0, cap: 0.5},
		}, 1},
		{"mixed inert and effective", []waterfillUser{
			{ps: 0.9, w: 100, r: 50, cap: -1},
			{ps: 0, w: 80, r: 20, cap: -1},
			{ps: 0.5, w: 60, r: 0, cap: -1},
			{ps: 0.7, w: 120, r: 30, cap: 0.2},
		}, 1},
		{"all caps zero", []waterfillUser{
			{ps: 0.9, w: 100, r: 50, cap: 0},
			{ps: 0.5, w: 80, r: 20, cap: 0},
		}, 1},
		{"slack constraint via tiny ps", []waterfillUser{
			{ps: 1e-17, w: 100, r: 50, cap: 0.1},
		}, 1},
	}
	for _, c := range cases {
		checkColumnsMatchScalar(t, c.name, c.users, c.budget)
	}
}

// TestWaterfillColumnsRandomized fuzzes both paths with the instance
// distribution the solvers draw from — mixed effective/inert users, a
// spread of caps including unbounded and zero, budgets spanning scarce to
// ample — and demands bitwise agreement on every trial.
func TestWaterfillColumnsRandomized(t *testing.T) {
	s := rng.New(20260808)
	for trial := 0; trial < 500; trial++ {
		k := 1 + int(s.Uint64()%9)
		users := make([]waterfillUser, k)
		for j := range users {
			u := waterfillUser{
				ps: s.Float64(),
				w:  20 + 200*s.Float64(),
				r:  10 + 100*s.Float64(),
			}
			switch s.Uint64() % 5 {
			case 0:
				u.ps = 0 // inert: no success probability
			case 1:
				u.r = 0 // inert: no rate
			}
			switch s.Uint64() % 4 {
			case 0:
				u.cap = -1 // unbounded
			case 1:
				u.cap = 0 // saturated encoding
			default:
				u.cap = s.Float64()
			}
			users[j] = u
		}
		budget := 0.0
		switch s.Uint64() % 8 {
		case 0: // zero budget
		case 1:
			budget = 3 * s.Float64() // occasionally ample
		default:
			budget = 1 // the unit slot budget of the solvers
		}
		checkColumnsMatchScalar(t, "random", users, budget)
	}
}
