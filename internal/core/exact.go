package core

import (
	"fmt"
	"math"
)

// BruteForceSolver finds the global optimum of the per-slot problem by
// enumerating all binary base-station associations (optimal by Theorem 1)
// and exactly water-filling every resource for each association. It is
// exponential in the number of users and intended as the ground-truth
// reference for tests, small scenarios, and the optimality-gap experiments.
type BruteForceSolver struct {
	// MaxUsers guards against accidental exponential blow-ups; Solve
	// returns an error beyond it. Zero means the default of 20.
	MaxUsers int
}

var (
	_ Solver     = (*BruteForceSolver)(nil)
	_ IntoSolver = (*BruteForceSolver)(nil)
)

// Name identifies the scheme.
func (b *BruteForceSolver) Name() string { return "Optimal" }

// Solve enumerates associations and returns the best allocation.
func (b *BruteForceSolver) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	best := NewAllocation(in.K())
	if err := b.solveInto(in, best); err != nil {
		return nil, err
	}
	return best, nil
}

// SolveInto enumerates associations into a caller-owned allocation.
//
//femtovet:hotpath
//femtovet:borrows in, out
func (b *BruteForceSolver) SolveInto(in *Instance, out *Allocation) error {
	if err := in.Validate(); err != nil {
		return err
	}
	return b.solveInto(in, out)
}

func (b *BruteForceSolver) solveInto(in *Instance, best *Allocation) error {
	limit := b.MaxUsers
	if limit == 0 {
		limit = 20
	}
	k := in.K()
	if k > limit {
		return fmt.Errorf("%w: %d users exceeds brute-force limit %d", ErrNoSolution, k, limit)
	}
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.prepareUsers(in)
	bestVal := math.Inf(-1)
	best.resize(k)
	alloc := &ws.qAlloc
	alloc.resize(k)
	for mask := 0; mask < 1<<k; mask++ {
		for j := 0; j < k; j++ {
			alloc.MBS[j] = mask&(1<<j) != 0
			alloc.Rho0[j] = 0
			alloc.Rho1[j] = 0
		}
		fillResources(in, alloc, ws)
		if v := objectiveCached(in, alloc, ws.logW); v > bestVal {
			bestVal = v
			copy(best.MBS, alloc.MBS)
			copy(best.Rho0, alloc.Rho0)
			copy(best.Rho1, alloc.Rho1)
		}
	}
	return nil
}

// EquilibriumSolver computes a near-exact solution in polynomial time by a
// nested price search: an outer bisection on the common-channel price
// lambda_0 and, for each candidate, an inner bisection per FBS on its band
// price lambda_i. Users pick the base station with the better Lagrangian
// branch value at the prices (Theorem 1), demands are monotone in each
// price, and the final association is repaired by exact water-filling.
//
// It is the default Q(c) evaluator inside the greedy channel allocator,
// where the brute-force reference would be exponential.
type EquilibriumSolver struct {
	// Iters controls both bisection depths. Zero means the default of 60.
	Iters int
}

var (
	_ Solver     = (*EquilibriumSolver)(nil)
	_ IntoSolver = (*EquilibriumSolver)(nil)
	_ WarmSolver = (*EquilibriumSolver)(nil)
)

// Name identifies the scheme.
func (e *EquilibriumSolver) Name() string { return "Proposed" }

// Solve returns a feasible near-optimal allocation.
func (e *EquilibriumSolver) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := NewAllocation(in.K())
	if err := e.solveInto(in, alloc); err != nil {
		return nil, err
	}
	return alloc, nil
}

// SolveInto solves the slot's problem into a caller-owned allocation.
//
//femtovet:hotpath
//femtovet:borrows in, out
func (e *EquilibriumSolver) SolveInto(in *Instance, out *Allocation) error {
	if err := in.Validate(); err != nil {
		return err
	}
	return e.solveInto(in, out)
}

// SolveWarmInto is SolveInto seeded from a cross-slot session: when sess
// carries the previous slot's outer common price for an instance of the
// same shape, the outer bisection brackets around it ([l0/2, 2*l0], grown
// outward as needed) at roughly half the cold bisection depth, instead of
// expanding from the global [floor, sum(ps)] bracket. A nil session or a
// seeding-disabled session degrades to the cold path; shape changes and a
// runaway bracket expansion re-cold-start automatically. See SolverSession.
//
//femtovet:hotpath
//femtovet:borrows in, out, sess
func (e *EquilibriumSolver) SolveWarmInto(in *Instance, out *Allocation, sess *SolverSession) error {
	if err := in.Validate(); err != nil {
		return err
	}
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.bumpEqEpoch()
	return e.solveSessionWS(in, out, ws, sess)
}

func (e *EquilibriumSolver) solveInto(in *Instance, alloc *Allocation) error {
	ws := getWorkspace()
	defer putWorkspace(ws)
	// A pooled workspace may carry another instance's equilibrium memo;
	// start a fresh epoch so no stale entry can hit.
	ws.bumpEqEpoch()
	return e.solveIntoWS(in, alloc, ws)
}

// solveIntoWS is solveInto on a caller-held workspace. The greedy channel
// allocator calls it directly with its own workspace so the per-FBS
// equilibrium memo survives across its many Q evaluations of the same base
// instance; the caller is responsible for bumpEqEpoch whenever the base
// instance (anything but G) changes.
//
//femtovet:hotpath
//femtovet:borrows in, alloc, ws
func (e *EquilibriumSolver) solveIntoWS(in *Instance, alloc *Allocation, ws *solveWorkspace) error {
	return e.solveSessionWS(in, alloc, ws, nil)
}

// solveSessionWS is the full equilibrium solve on a caller-held workspace
// with an optional cross-slot session; sess == nil is the legacy cold path,
// bit-identical to the pre-session solver.
//
//femtovet:hotpath
//femtovet:borrows in, alloc, ws, sess
func (e *EquilibriumSolver) solveSessionWS(in *Instance, alloc *Allocation, ws *solveWorkspace, sess *SolverSession) error {
	iters := e.Iters
	if iters == 0 {
		iters = 45
	}
	k := in.K()

	ws.prepareUsers(in)
	u0, u1, logW := ws.u0, ws.u1, ws.logW
	wr0, wr1 := ws.wr0, ws.wr1
	sum0PS := 0.0
	for j := 0; j < k; j++ {
		if in.R0[j] > 0 {
			sum0PS += in.PS0[j]
		}
	}
	byFBS := ws.groupByFBS(in)

	const lambdaFloor = 1e-15

	// equilibriumFBS returns the price of FBS i's band clearing its unit
	// budget given the common-channel price, along with each member's
	// final choice as a bitmask (bit b set = member b prefers the MBS at
	// the returned price). Demand is non-increasing in the band price:
	// shares shrink and users defect to the MBS as it rises. The MBS
	// branch values depend only on l0, so they are computed once per call.
	//
	// The (price, mask) pair is a pure function of (i, l0, G_i) for a fixed
	// base instance, so results are memoized in the workspace: the greedy
	// allocator's Q evaluations perturb G at a single FBS per candidate,
	// leaving every other FBS's inner bisection — the dominant cost of the
	// solve — to be answered from the memo. Demand totals are only ever
	// compared against the unit budget, so the accumulation loops exit as
	// soon as the (nonnegative) partial sum crosses it: the remaining terms
	// cannot bring it back, making the early exit decision-identical.
	equilibriumFBS := func(i int, l0 float64) (float64, uint64) {
		members := byFBS[i]
		gi := in.G[i-1]
		memoable := len(members) <= 64
		if memoable {
			if li, mask, ok := ws.eqMemoGet(i, l0, gi); ok {
				return li, mask
			}
		}
		// Gather the members' columns once per miss: the ~2*iters demand
		// probes below then walk contiguous copies instead of chasing
		// member indices through the per-user columns. Same values, same
		// member order, same operations — bit-identical.
		m := len(members)
		ws.gU = growU(ws.gU, m)
		ws.gLogW = growF(ws.gLogW, m)
		ws.gWR = growF(ws.gWR, m)
		ws.gBL = growF(ws.gBL, m)
		ws.gV0 = growF(ws.gV0, m)
		gU, gLogW, gWR, gBL, gV0 := ws.gU, ws.gLogW, ws.gWR, ws.gBL, ws.gV0
		for b, j := range members {
			gU[b] = u1[j]
			gLogW[b] = logW[j]
			gWR[b] = wr1[j]
			gBL[b] = ws.bl1[j]
			gV0[b], _ = u0[j].branchAndRhoWR(l0, logW[j], wr0[j], ws.bl0[j])
		}
		demand := func(li float64) float64 {
			total := 0.0
			for b := range gU {
				bv, rho := gU[b].branchAndRhoWR(li, gLogW[b], gWR[b], gBL[b])
				if bv >= gV0[b] {
					total += rho
					if total > 1 {
						return total
					}
				}
			}
			return total
		}
		li := lambdaFloor
		if demand(li) > 1 {
			hi := 0.0
			for b := range gU {
				hi += gU[b].ps
			}
			if hi > li {
				for demand(hi) > 1 {
					hi *= 2
				}
				lo := li
				for it := 0; it < iters; it++ {
					mid := 0.5 * (lo + hi)
					if demand(mid) > 1 {
						lo = mid
					} else {
						hi = mid
					}
				}
				li = hi
			}
		}
		var mask uint64
		for b := range gU {
			bv, _ := gU[b].branchAndRhoWR(li, gLogW[b], gWR[b], gBL[b])
			if gV0[b] > bv {
				mask |= 1 << uint(b)
			}
		}
		if memoable {
			ws.eqMemoPut(i, l0, gi, li, mask)
		}
		return li, mask
	}

	// Outer bisection on lambda_0: MBS demand is non-increasing in it.
	// outerProbes counts the demand0 evaluations of one solve — each one
	// walks every FBS's inner equilibrium — and is the "iterations" a
	// session records for this solver.
	outerProbes := 0
	demand0 := func(l0 float64) float64 {
		outerProbes++
		total := 0.0
		for i := 1; i <= in.N(); i++ {
			_, mask := equilibriumFBS(i, l0)
			for b, j := range byFBS[i] {
				if mask&(1<<uint(b)) != 0 {
					total += u0[j].rhoAtWR(l0, wr0[j])
					if total > 1 {
						return total
					}
				}
			}
		}
		return total
	}

	warm := false
	if sess != nil {
		sess.observe(in)
		warm = sess.seeding && sess.haveL0
	}
	lo := lambdaFloor
	l0 := lo
	trivial := true
	if demand0(lo) > 1 {
		trivial = false
		solved := false
		if warm {
			// Warm bracket around the previous slot's clearing price: under
			// the Markov channel correlation it rarely moves by more than
			// 2x per slot, so [l0/2, 2*l0] usually brackets and half the
			// cold depth resolves it to comparable relative precision. The
			// expansion guard trips when the carried price is far off
			// (correlation assumption failed) and falls back to the cold
			// global bracket.
			wlo := 0.5 * sess.l0
			if wlo < lambdaFloor {
				wlo = lambdaFloor
			}
			whi := 2 * sess.l0
			if whi <= wlo {
				whi = 1
			}
			ok := true
			for guard := 0; demand0(whi) > 1; guard++ {
				if guard >= 60 {
					ok = false
					break
				}
				wlo = whi
				whi *= 2
			}
			if ok {
				for wlo > lambdaFloor && demand0(wlo) <= 1 {
					whi = wlo
					wlo *= 0.5
				}
				// Invariant: demand0(wlo) > 1 >= demand0(whi), like the
				// cold bracket before its bisection.
				warmIters := iters/2 + 4
				for it := 0; it < warmIters; it++ {
					mid := 0.5 * (wlo + whi)
					if demand0(mid) > 1 {
						wlo = mid
					} else {
						whi = mid
					}
				}
				l0 = whi
				solved = true
			} else {
				sess.stats.Restarts++
			}
		}
		if !solved {
			hi := sum0PS
			if hi <= lo {
				hi = 1
			}
			for demand0(hi) > 1 {
				hi *= 2
			}
			for it := 0; it < iters; it++ {
				mid := 0.5 * (lo + hi)
				if demand0(mid) > 1 {
					lo = mid
				} else {
					hi = mid
				}
			}
			l0 = hi
		}
	}
	if sess != nil {
		if trivial {
			// A slack slot: keep the carried price — it is still the best
			// guess for the next contended slot.
			sess.note(0, false, true)
		} else {
			sess.l0 = l0
			sess.haveL0 = true
			sess.note(outerProbes, warm, false)
		}
	}

	// Fix the association at the equilibrium prices, then water-fill.
	alloc.resize(k)
	for i := 1; i <= in.N(); i++ {
		_, mask := equilibriumFBS(i, l0)
		for b, j := range byFBS[i] {
			alloc.MBS[j] = mask&(1<<uint(b)) != 0
		}
	}
	fillResources(in, alloc, ws)
	polishAssociation(in, alloc, 4, ws)
	if err := feasibleCached(in, alloc, ws, 1e-9); err != nil {
		return fmt.Errorf("equilibrium solver produced infeasible allocation: %w", err)
	}
	return nil
}
