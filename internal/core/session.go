package core

// SolverSession carries warm-start state across the consecutive per-slot
// solves of one cell. Channel occupancy is a two-state Markov chain
// (internal/markov), so consecutive slots' problems are strongly correlated
// and slot t-1's converged dual multipliers are an excellent seed for slot
// t's subgradient iteration; the session owns that carried state so the
// solvers themselves stay stateless and shareable.
//
// A session belongs to exactly one engine (one cell, one goroutine): it is
// NOT safe for concurrent use. The sharded runner gets per-shard sessions
// for free because every shard constructs its own engine.
//
// Lifetime and re-cold-start triggers: the carried state is keyed to the
// instance shape (user count, FBS count, and the user->FBS membership).
// A solve against a differently-shaped instance silently drops the carried
// state and cold-starts; so does the divergence guard inside each solver
// (a warm attempt that fails to converge within the iteration budget
// restarts cold in the same call). Only the expected-channel vector G and
// the qualities W may drift between warm solves — which is exactly the
// Markov temporal coherence the warm start exploits.
//
// The zero value is NOT ready for use; construct with NewSolverSession or
// NewColdProbeSession.
type SolverSession struct {
	seeding bool // warm seeding enabled; false = cold-probe (record-only)

	// Shape signature of the instance the carried state belongs to.
	users, fbss int
	fbsSig      uint64

	// Dual-subgradient state: the previous solve's converged multipliers
	// (session-owned copy, length N+1) and the diminishing-schedule
	// position the most recent cold start converged at. Warm solves resume
	// the schedule at that fixed position — steps stay at the magnitude
	// that terminated the cold solve, so the tracker neither freezes (the
	// position does not accumulate across slots) nor overshoots.
	lambda     []float64
	scaleRef   []float64
	tau        int
	haveLambda bool

	// Equilibrium-solver state: the previous solve's outer common price.
	l0     float64
	haveL0 bool

	stats SessionStats
	last  int
	hist  []int64 // per-solve iteration histogram; nil until EnableStats
}

// SessionStats counts the solves recorded through a session.
type SessionStats struct {
	// Solves is the total number of solves recorded.
	Solves int
	// WarmSolves counts solves seeded from carried multipliers.
	WarmSolves int
	// ColdStarts counts solves that started cold: the first solve, any
	// solve after a shape change or Reset, and every cold-probe solve.
	ColdStarts int
	// Restarts counts divergence-guard trips: warm attempts that failed to
	// converge within the iteration budget and re-ran cold.
	Restarts int
	// TrivialSolves counts trivially-feasible instances short-circuited at
	// zero prices with zero iterations.
	TrivialSolves int
	// TotalIters sums the iterations of every solve, including the failed
	// warm attempt of a divergence restart.
	TotalIters int64
	// MaxIters is the largest per-solve iteration count observed.
	MaxIters int
}

// Merge adds other's counters into s (for folding per-shard sessions).
func (s *SessionStats) Merge(other *SessionStats) {
	s.Solves += other.Solves
	s.WarmSolves += other.WarmSolves
	s.ColdStarts += other.ColdStarts
	s.Restarts += other.Restarts
	s.TrivialSolves += other.TrivialSolves
	s.TotalIters += other.TotalIters
	if other.MaxIters > s.MaxIters {
		s.MaxIters = other.MaxIters
	}
}

// sessionHistSize caps the iteration histogram; solves beyond it land in
// the final bucket. It comfortably covers the default 2000-iteration cap.
const sessionHistSize = 4096

// NewSolverSession returns a session with warm seeding enabled.
func NewSolverSession() *SolverSession {
	return &SolverSession{seeding: true}
}

// NewColdProbeSession returns a record-only session: every solve through it
// cold-starts exactly like the session-less path, but iteration statistics
// are still collected. This is how the warm-start benchmarks measure the
// cold baseline with the same instrumentation.
func NewColdProbeSession() *SolverSession {
	return &SolverSession{seeding: false}
}

// EnableStats allocates the per-solve iteration histogram that backs
// IterationQuantile. Call once at construction time (it allocates); the
// per-solve recording itself is allocation-free.
func (s *SolverSession) EnableStats() {
	if s.hist == nil {
		s.hist = make([]int64, sessionHistSize)
	}
}

// Reset drops all carried state (the next solve cold-starts) and clears the
// recorded statistics.
func (s *SolverSession) Reset() {
	s.users, s.fbss, s.fbsSig = 0, 0, 0
	s.haveLambda, s.haveL0 = false, false
	s.tau = 0
	s.stats = SessionStats{}
	s.last = 0
	for i := range s.hist {
		s.hist[i] = 0
	}
}

// Seeding reports whether warm seeding is enabled.
func (s *SolverSession) Seeding() bool { return s.seeding }

// Stats returns a snapshot of the recorded counters.
func (s *SolverSession) Stats() SessionStats { return s.stats }

// LastIterations returns the iteration count of the most recent solve.
func (s *SolverSession) LastIterations() int { return s.last }

// IterationMean returns the mean iterations per solve, or 0 before any
// solve.
func (s *SolverSession) IterationMean() float64 {
	if s.stats.Solves == 0 {
		return 0
	}
	return float64(s.stats.TotalIters) / float64(s.stats.Solves)
}

// IterationQuantile returns the q-quantile (0 <= q <= 1) of the per-solve
// iteration counts, or -1 when EnableStats was not called or no solve has
// been recorded.
func (s *SolverSession) IterationQuantile(q float64) int {
	if s.hist == nil || s.stats.Solves == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(s.stats.Solves))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.hist {
		cum += c
		if cum >= target {
			return i
		}
	}
	return sessionHistSize - 1
}

// HistCopy returns a copy of the per-solve iteration histogram (index =
// iterations, last bucket open-ended), or nil when EnableStats was not
// called. Callers fold copies across sessions to compute exact aggregate
// quantiles.
func (s *SolverSession) HistCopy() []int64 {
	if s.hist == nil {
		return nil
	}
	return append([]int64(nil), s.hist...)
}

// fbsSignature hashes the user->FBS membership (FNV-1a over the indices),
// the cheap shape fingerprint behind the re-cold-start trigger.
func fbsSignature(fbs []int) uint64 {
	h := uint64(1469598103934665603)
	for _, f := range fbs {
		h ^= uint64(f)
		h *= 1099511628211
	}
	return h
}

// observe checks the instance shape against the carried state, dropping the
// state on a mismatch, and reports whether the carried multipliers may seed
// this solve.
//
//femtovet:hotpath
//femtovet:borrows in
func (s *SolverSession) observe(in *Instance) {
	k, n := in.K(), in.N()
	sig := fbsSignature(in.FBS)
	if k != s.users || n != s.fbss || sig != s.fbsSig {
		s.users, s.fbss, s.fbsSig = k, n, sig
		s.haveLambda, s.haveL0 = false, false
		s.tau = 0
	}
}

// note records one solve's iteration count.
//
//femtovet:hotpath
func (s *SolverSession) note(iters int, warm, trivial bool) {
	s.stats.Solves++
	if warm {
		s.stats.WarmSolves++
	} else {
		s.stats.ColdStarts++
	}
	if trivial {
		s.stats.TrivialSolves++
	}
	s.stats.TotalIters += int64(iters)
	if iters > s.stats.MaxIters {
		s.stats.MaxIters = iters
	}
	s.last = iters
	if s.hist != nil {
		i := iters
		if i >= sessionHistSize {
			i = sessionHistSize - 1
		}
		s.hist[i]++
	}
}

// storeLambda copies the converged multipliers into the session-owned
// buffer. Nothing aliases the solver workspace: the session outlives the
// solve, the workspace does not.
//
//femtovet:hotpath
//femtovet:borrows lambda
func (s *SolverSession) storeLambda(lambda, scale []float64, tau int, coldStart bool) {
	s.lambda = growF(s.lambda, len(lambda))
	copy(s.lambda, lambda)
	s.scaleRef = growF(s.scaleRef, len(scale))
	copy(s.scaleRef, scale)
	s.haveLambda = true
	if coldStart {
		// Warm solves resume at the position the last cold start converged
		// at; only a cold start moves it.
		s.tau = tau
	}
}

// WarmSolver is implemented by solvers whose per-slot solves can be seeded
// from a SolverSession carried across consecutive slots. A nil session (or
// one whose seeding is disabled) degrades to the cold SolveInto path with
// statistics recording.
type WarmSolver interface {
	IntoSolver
	SolveWarmInto(in *Instance, out *Allocation, sess *SolverSession) error
}
