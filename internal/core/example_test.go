package core_test

import (
	"fmt"

	"femtocr/internal/core"
	"femtocr/internal/igraph"
)

// exampleInstance is a paper-like single-FBS slot problem: three users,
// base-layer qualities around 27-29 dB, a reliable femto link and a lossier
// macro link, and G = 3.4 expected available channels.
func exampleInstance() *core.Instance {
	return &core.Instance{
		W:   []float64{28.6, 26.8, 27.9},
		R0:  []float64{0.47, 0.52, 0.41}, // beta * B0 / T
		R1:  []float64{0.47, 0.52, 0.41},
		PS0: []float64{0.60, 0.55, 0.65},
		PS1: []float64{0.92, 0.90, 0.95},
		FBS: []int{1, 1, 1},
		G:   []float64{3.4},
	}
}

// The distributed dual-decomposition algorithm of Table I: each user solves
// its closed-form subproblem at the broadcast prices, the MBS updates the
// prices by projected subgradient, and the final association is binary
// (Theorem 1).
func ExampleDualSolver() {
	solver := core.NewDualSolver()
	alloc, err := solver.Solve(exampleInstance())
	if err != nil {
		panic(err)
	}
	onMBS := 0
	split := false
	for j := range alloc.MBS {
		if alloc.MBS[j] {
			onMBS++
		}
		if alloc.Rho0[j] > 0 && alloc.Rho1[j] > 0 {
			split = true
		}
	}
	fmt.Printf("users on MBS: %d, on FBS: %d\n", onMBS, 3-onMBS)
	fmt.Printf("any user split across base stations: %v (Theorem 1)\n", split)
	fmt.Printf("feasible: %v\n", alloc.Feasible(exampleInstance(), 1e-9) == nil)
	// Output:
	// users on MBS: 1, on FBS: 2
	// any user split across base stations: false (Theorem 1)
	// feasible: true
}

// The greedy channel allocation of Table III on the paper's Fig. 5 path
// graph: adjacent femtocells never share a channel, non-adjacent ones
// reuse it, and the result carries both performance bounds.
func ExampleGreedyAllocator() {
	in := exampleInstance()
	// Nine users across three femtocells on a path.
	in.W = []float64{28.6, 26.8, 27.9, 28.6, 26.8, 27.9, 28.6, 26.8, 27.9}
	in.R0 = repeat(0.47, 9)
	in.R1 = repeat(0.47, 9)
	in.PS0 = repeat(0.6, 9)
	in.PS1 = repeat(0.9, 9)
	in.FBS = []int{1, 1, 1, 2, 2, 2, 3, 3, 3}
	in.G = make([]float64, 3)

	greedy := core.NewGreedyAllocator(nil)
	res, err := greedy.Allocate(&core.ChannelProblem{
		Base:       in,
		Graph:      igraph.Path(3),
		Channels:   []int{1, 2},
		Posteriors: []float64{0.9, 0.8},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Theorem 2 floor: 1/%d of the optimum\n", int(1/res.LowerBoundFactor))
	fmt.Printf("value within bound: %v\n", res.Value <= res.UpperBound)
	// FBS 1 and FBS 3 may reuse the same channels; FBS 2 conflicts with both.
	reuse := len(res.Assigned[0]) + len(res.Assigned[2])
	fmt.Printf("channels at the path ends: %d (spatial reuse)\n", reuse)
	// Output:
	// Theorem 2 floor: 1/3 of the optimum
	// value within bound: true
	// channels at the path ends: 4 (spatial reuse)
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
