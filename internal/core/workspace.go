package core

import (
	"fmt"
	"math"
	"sync"
)

// solveWorkspace holds every scratch buffer one per-slot solve needs, so the
// steady-state hot path — one solve per slot per engine, thousands of slots
// per run — reuses the same memory instead of rebuilding ~15 slices each
// call. Workspaces are pooled rather than stored on the solver structs:
// solver values stay stateless (and therefore safe to share across engines
// and goroutines), while a Get/Put pair per solve costs nanoseconds and is
// race-free by construction.
//
// Ownership rule: a workspace is held for the duration of exactly one
// Solve/SolveInto/Allocate call and released before returning. Nothing that
// escapes to the caller (the returned Allocation, reports, traces) may alias
// workspace memory.
type solveWorkspace struct {
	// Per-user water-filling views and the cached log(W_j) terms shared by
	// every branch-value and objective evaluation of the solve.
	u0, u1 []waterfillUser
	logW   []float64
	v0     []float64 // MBS branch values at the current common price

	// User index lists grouped by serving FBS (index 0 unused).
	byFBS [][]int

	// Dual-subgradient state, sized nRes = N+1.
	scale, sumPS, sumWR []float64
	lambda, next, sums  []float64

	// Water-filling scratch shared by fillCommon/fillFBS (never nested).
	wfUsers []waterfillUser
	wfIdx   []int
	wfRho   []float64

	// Greedy channel-allocation scratch (see greedy.go). qAlloc doubles as
	// the brute-force solver's enumeration allocation.
	alive     []bool
	gains     []float64
	trial     []float64
	heap      []lazyEntry
	qAlloc    Allocation
	qInstance Instance
}

// workspacePool shares workspaces across all solver instances. sync.Pool
// keeps one workspace per P in steady state; a GC may drop pooled entries,
// after which the next solve regrows them once.
var workspacePool = sync.Pool{New: func() any { return new(solveWorkspace) }}

func getWorkspace() *solveWorkspace   { return workspacePool.Get().(*solveWorkspace) }
func putWorkspace(ws *solveWorkspace) { workspacePool.Put(ws) }

// growF returns a float64 slice of length n, reusing buf's backing array
// when it is large enough. Contents are unspecified.
func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// growU is growF for waterfillUser slices.
func growU(buf []waterfillUser, n int) []waterfillUser {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]waterfillUser, n)
}

// growI is growF for int slices.
func growI(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

// growB is growF for bool slices.
func growB(buf []bool, n int) []bool {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]bool, n)
}

// prepareUsers fills the per-user views u0/u1 and the cached log(W) terms
// for one solve. The cached values are bit-identical to what the previous
// per-call math.Log computations produced: same function, same inputs.
func (ws *solveWorkspace) prepareUsers(in *Instance) {
	k := in.K()
	ws.u0 = growU(ws.u0, k)
	ws.u1 = growU(ws.u1, k)
	ws.logW = growF(ws.logW, k)
	for j := 0; j < k; j++ {
		ws.u0[j] = in.user0(j)
		ws.u1[j] = in.user1(j)
		ws.logW[j] = math.Log(in.W[j])
	}
}

// groupByFBS rebuilds the per-FBS member lists, reusing the backing arrays.
func (ws *solveWorkspace) groupByFBS(in *Instance) [][]int {
	n := in.N()
	if cap(ws.byFBS) < n+1 {
		ws.byFBS = make([][]int, n+1)
	} else {
		ws.byFBS = ws.byFBS[:n+1]
	}
	for i := range ws.byFBS {
		ws.byFBS[i] = ws.byFBS[i][:0]
	}
	for j, f := range in.FBS {
		ws.byFBS[f] = append(ws.byFBS[f], j)
	}
	return ws.byFBS
}

// resize makes the allocation hold k users, reusing backing arrays and
// zeroing every entry.
func (a *Allocation) resize(k int) {
	a.MBS = growB(a.MBS, k)
	a.Rho0 = growF(a.Rho0, k)
	a.Rho1 = growF(a.Rho1, k)
	for j := 0; j < k; j++ {
		a.MBS[j] = false
		a.Rho0[j] = 0
		a.Rho1[j] = 0
	}
}

// objectiveCached is Allocation.Objective with the per-user log(W) terms
// precomputed. It is bit-identical to Objective: a zero gain reuses the
// cached log(W) exactly as math.Log(W+0) would, and a nonzero gain performs
// the same math.Log call on the same argument.
func objectiveCached(in *Instance, a *Allocation, logW []float64) float64 {
	total := 0.0
	for j := 0; j < in.K(); j++ {
		lw := logW[j]
		var ps, gain float64
		if a.MBS[j] {
			ps = in.PS0[j]
			gain = in.clampGain(j, a.Rho0[j]*in.R0[j])
		} else {
			ps = in.PS1[j]
			gain = in.clampGain(j, a.Rho1[j]*in.effR1(j))
		}
		lwg := lw
		if gain != 0 {
			lwg = math.Log(in.W[j] + gain)
		}
		total += ps*lwg + (1-ps)*lw
	}
	return total
}

// feasibleCached is Allocation.Feasible on workspace scratch: identical
// checks without the per-call slice allocation.
func feasibleCached(in *Instance, a *Allocation, ws *solveWorkspace, tol float64) error {
	k := in.K()
	if len(a.MBS) != k || len(a.Rho0) != k || len(a.Rho1) != k {
		return fmt.Errorf("%w: allocation sized for %d users, instance has %d", ErrBadInstance, len(a.MBS), k)
	}
	sum0 := 0.0
	ws.sums = growF(ws.sums, in.N())
	sumI := ws.sums
	for i := range sumI {
		sumI[i] = 0
	}
	for j := 0; j < k; j++ {
		if a.Rho0[j] < -tol || a.Rho1[j] < -tol {
			return fmt.Errorf("%w: negative share for user %d", ErrBadInstance, j)
		}
		if a.MBS[j] && a.Rho1[j] > tol {
			return fmt.Errorf("%w: user %d on MBS holds FBS share %v", ErrBadInstance, j, a.Rho1[j])
		}
		if !a.MBS[j] && a.Rho0[j] > tol {
			return fmt.Errorf("%w: user %d on FBS holds MBS share %v", ErrBadInstance, j, a.Rho0[j])
		}
		sum0 += a.Rho0[j]
		sumI[in.FBS[j]-1] += a.Rho1[j]
	}
	if sum0 > 1+tol {
		return fmt.Errorf("%w: common-channel shares sum to %v", ErrBadInstance, sum0)
	}
	for i, s := range sumI {
		if s > 1+tol {
			return fmt.Errorf("%w: FBS %d shares sum to %v", ErrBadInstance, i+1, s)
		}
	}
	return nil
}

// IntoSolver is implemented by solvers that can write the allocation into a
// caller-owned buffer, letting per-slot callers (the simulation engine, the
// greedy allocator's Q evaluations) reuse one Allocation instead of
// allocating a fresh one per solve. The buffer is resized and zeroed; any
// previous contents are discarded.
type IntoSolver interface {
	Solver
	SolveInto(in *Instance, out *Allocation) error
}
