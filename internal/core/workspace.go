package core

import (
	"fmt"
	"math"
	"sync"
)

// solveWorkspace holds every scratch buffer one per-slot solve needs, so the
// steady-state hot path — one solve per slot per engine, thousands of slots
// per run — reuses the same memory instead of rebuilding ~15 slices each
// call. Workspaces are pooled rather than stored on the solver structs:
// solver values stay stateless (and therefore safe to share across engines
// and goroutines), while a Get/Put pair per solve costs nanoseconds and is
// race-free by construction.
//
// Ownership rule: a workspace is held for the duration of exactly one
// Solve/SolveInto/Allocate call and released before returning. Nothing that
// escapes to the caller (the returned Allocation, reports, traces) may alias
// workspace memory.
type solveWorkspace struct {
	// Per-user water-filling views and the cached log(W_j) terms shared by
	// every branch-value and objective evaluation of the solve. wr0/wr1
	// hoist the w/r quotient of each view (zero where r <= 0, which rhoAtWR
	// never reads) so the bisection probes skip one division per call.
	u0, u1   []waterfillUser
	logW     []float64
	wr0, wr1 []float64
	bl0, bl1 []float64 // zero-share branch values ps*logW + (1-ps)*logW

	// Gathered member columns for one FBS's inner bisection (see
	// equilibriumFBS): the ~2*iters demand probes of a bisection walk
	// these contiguous copies instead of chasing member indices through
	// the per-user columns above. gV0 holds each member's MBS branch
	// value at the current common price.
	gU                   []waterfillUser
	gLogW, gWR, gBL, gV0 []float64

	// User index lists grouped by serving FBS (index 0 unused).
	byFBS [][]int

	// Dual-subgradient state, sized nRes = N+1.
	scale, sumPS, sumWR []float64
	lambda, next, sums  []float64

	// Water-filling scratch shared by fillCommon/fillFBS (never nested):
	// the gathered user indices plus the flat effective-user columns
	// waterfillColumns bisects over.
	wfIdx             []int
	wfRho             []float64
	wfPS, wfWR, wfCap []float64

	// Greedy channel-allocation scratch (see greedy.go). qAlloc doubles as
	// the brute-force solver's enumeration allocation. gainRound tags each
	// cached candidate gain in gains with the allocation round it was
	// computed in, so take() can reuse same-round gains exactly.
	alive     []bool
	gains     []float64
	gainRound []int
	trial     []float64
	heap      []lazyEntry
	qAlloc    Allocation
	qInstance Instance

	// Per-FBS equilibrium memo (see exact.go solveIntoWS): open-addressed
	// cache of (fbs, lambda_0, G_i) -> (lambda_i, association mask),
	// epoch-tagged so invalidation on a new base instance is O(1). The
	// greedy allocator holds one epoch across all Q evaluations of an
	// Allocate call; the pooled solver entry points bump the epoch per
	// solve so a recycled workspace can never leak another instance's
	// equilibria.
	eqMemo  []eqMemoEntry
	eqEpoch uint32

	// polishRho0/polishRho1 snapshot an allocation's shares so a rejected
	// association flip restores them instead of re-water-filling.
	polishRho0, polishRho1 []float64
}

// eqMemoEntry is one cached inner-bisection result, keyed by the raw float
// bits of the common price and the FBS's expected-channel count.
type eqMemoEntry struct {
	l0, g uint64  // math.Float64bits of lambda_0 and G_i
	li    float64 // equilibrium band price
	mask  uint64  // bit b set = byFBS member b prefers the MBS at li
	fbs   int32
	epoch uint32
}

const (
	eqMemoSize  = 2048 // power of two
	eqMemoProbe = 8
)

// eqMemoHash mixes the key triple splitmix-style into a table index.
func eqMemoHash(fbs int32, l0, g uint64) uint64 {
	h := l0 ^ g*0x9E3779B97F4A7C15 ^ uint64(uint32(fbs))<<32
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// bumpEqEpoch starts a fresh memo epoch, invalidating every cached
// equilibrium in O(1). Callers must bump whenever the base instance behind
// the memoized solves changes (the greedy allocator once per Allocate, the
// pooled solver wrappers once per solve).
func (ws *solveWorkspace) bumpEqEpoch() {
	ws.eqEpoch++
	if ws.eqEpoch == 0 { // uint32 wraparound: flush so old tags cannot match
		for i := range ws.eqMemo {
			ws.eqMemo[i] = eqMemoEntry{}
		}
		ws.eqEpoch = 1
	}
}

// eqMemoGet looks up the memoized equilibrium of FBS fbs at common price
// l0f with expected channels gf.
func (ws *solveWorkspace) eqMemoGet(fbs int, l0f, gf float64) (float64, uint64, bool) {
	if len(ws.eqMemo) == 0 || ws.eqEpoch == 0 {
		return 0, 0, false
	}
	l0 := math.Float64bits(l0f)
	g := math.Float64bits(gf)
	h := eqMemoHash(int32(fbs), l0, g)
	for p := uint64(0); p < eqMemoProbe; p++ {
		e := &ws.eqMemo[(h+p)&(eqMemoSize-1)]
		if e.epoch == ws.eqEpoch && e.fbs == int32(fbs) && e.l0 == l0 && e.g == g {
			return e.li, e.mask, true
		}
	}
	return 0, 0, false
}

// eqMemoPut records an equilibrium under the current epoch, preferring
// stale slots along the probe window and overwriting the home slot when
// the window is full of live entries (it is a cache, not a map).
func (ws *solveWorkspace) eqMemoPut(fbs int, l0f, gf float64, li float64, mask uint64) {
	if ws.eqEpoch == 0 {
		return
	}
	if cap(ws.eqMemo) < eqMemoSize {
		ws.eqMemo = make([]eqMemoEntry, eqMemoSize)
	}
	ws.eqMemo = ws.eqMemo[:eqMemoSize]
	l0 := math.Float64bits(l0f)
	g := math.Float64bits(gf)
	h := eqMemoHash(int32(fbs), l0, g)
	slot := &ws.eqMemo[h&(eqMemoSize-1)]
	for p := uint64(0); p < eqMemoProbe; p++ {
		e := &ws.eqMemo[(h+p)&(eqMemoSize-1)]
		if e.epoch != ws.eqEpoch {
			slot = e
			break
		}
		if e.fbs == int32(fbs) && e.l0 == l0 && e.g == g {
			return // already cached this epoch
		}
	}
	*slot = eqMemoEntry{l0: l0, g: g, li: li, mask: mask, fbs: int32(fbs), epoch: ws.eqEpoch}
}

// workspacePool shares workspaces across all solver instances. sync.Pool
// keeps one workspace per P in steady state; a GC may drop pooled entries,
// after which the next solve regrows them once.
var workspacePool = sync.Pool{New: func() any { return new(solveWorkspace) }}

func getWorkspace() *solveWorkspace   { return workspacePool.Get().(*solveWorkspace) }
func putWorkspace(ws *solveWorkspace) { workspacePool.Put(ws) }

// growF returns a float64 slice of length n, reusing buf's backing array
// when it is large enough. Contents are unspecified.
func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// growU is growF for waterfillUser slices.
func growU(buf []waterfillUser, n int) []waterfillUser {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]waterfillUser, n)
}

// growI is growF for int slices.
func growI(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

// growB is growF for bool slices.
func growB(buf []bool, n int) []bool {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]bool, n)
}

// prepareUsers fills the per-user views u0/u1 and the cached log(W) terms
// for one solve. The cached values are bit-identical to what the previous
// per-call math.Log computations produced: same function, same inputs.
func (ws *solveWorkspace) prepareUsers(in *Instance) {
	k := in.K()
	ws.u0 = growU(ws.u0, k)
	ws.u1 = growU(ws.u1, k)
	ws.logW = growF(ws.logW, k)
	ws.wr0 = growF(ws.wr0, k)
	ws.wr1 = growF(ws.wr1, k)
	ws.bl0 = growF(ws.bl0, k)
	ws.bl1 = growF(ws.bl1, k)
	for j := 0; j < k; j++ {
		ws.u0[j] = in.user0(j)
		ws.u1[j] = in.user1(j)
		lw := math.Log(in.W[j])
		ws.logW[j] = lw
		ws.wr0[j], ws.wr1[j] = 0, 0
		if r := ws.u0[j].r; r > 0 {
			ws.wr0[j] = in.W[j] / r
		}
		if r := ws.u1[j].r; r > 0 {
			ws.wr1[j] = in.W[j] / r
		}
		ws.bl0[j] = ws.u0[j].ps*lw + (1-ws.u0[j].ps)*lw
		ws.bl1[j] = ws.u1[j].ps*lw + (1-ws.u1[j].ps)*lw
	}
}

// groupByFBS rebuilds the per-FBS member lists, reusing the backing arrays.
func (ws *solveWorkspace) groupByFBS(in *Instance) [][]int {
	n := in.N()
	if cap(ws.byFBS) < n+1 {
		ws.byFBS = make([][]int, n+1)
	} else {
		ws.byFBS = ws.byFBS[:n+1]
	}
	for i := range ws.byFBS {
		ws.byFBS[i] = ws.byFBS[i][:0]
	}
	for j, f := range in.FBS {
		ws.byFBS[f] = append(ws.byFBS[f], j)
	}
	return ws.byFBS
}

// resize makes the allocation hold k users, reusing backing arrays and
// zeroing every entry.
func (a *Allocation) resize(k int) {
	a.MBS = growB(a.MBS, k)
	a.Rho0 = growF(a.Rho0, k)
	a.Rho1 = growF(a.Rho1, k)
	for j := 0; j < k; j++ {
		a.MBS[j] = false
		a.Rho0[j] = 0
		a.Rho1[j] = 0
	}
}

// objectiveCached is Allocation.Objective with the per-user log(W) terms
// precomputed. It is bit-identical to Objective: a zero gain reuses the
// cached log(W) exactly as math.Log(W+0) would, and a nonzero gain performs
// the same math.Log call on the same argument.
func objectiveCached(in *Instance, a *Allocation, logW []float64) float64 {
	total := 0.0
	for j := 0; j < in.K(); j++ {
		lw := logW[j]
		var ps, gain float64
		if a.MBS[j] {
			ps = in.PS0[j]
			gain = in.clampGain(j, a.Rho0[j]*in.R0[j])
		} else {
			ps = in.PS1[j]
			gain = in.clampGain(j, a.Rho1[j]*in.effR1(j))
		}
		lwg := lw
		if gain != 0 {
			lwg = math.Log(in.W[j] + gain)
		}
		total += ps*lwg + (1-ps)*lw
	}
	return total
}

// feasibleCached is Allocation.Feasible on workspace scratch: identical
// checks without the per-call slice allocation.
func feasibleCached(in *Instance, a *Allocation, ws *solveWorkspace, tol float64) error {
	k := in.K()
	if len(a.MBS) != k || len(a.Rho0) != k || len(a.Rho1) != k {
		return fmt.Errorf("%w: allocation sized for %d users, instance has %d", ErrBadInstance, len(a.MBS), k)
	}
	sum0 := 0.0
	ws.sums = growF(ws.sums, in.N())
	sumI := ws.sums
	for i := range sumI {
		sumI[i] = 0
	}
	for j := 0; j < k; j++ {
		if a.Rho0[j] < -tol || a.Rho1[j] < -tol {
			return fmt.Errorf("%w: negative share for user %d", ErrBadInstance, j)
		}
		if a.MBS[j] && a.Rho1[j] > tol {
			return fmt.Errorf("%w: user %d on MBS holds FBS share %v", ErrBadInstance, j, a.Rho1[j])
		}
		if !a.MBS[j] && a.Rho0[j] > tol {
			return fmt.Errorf("%w: user %d on FBS holds MBS share %v", ErrBadInstance, j, a.Rho0[j])
		}
		sum0 += a.Rho0[j]
		sumI[in.FBS[j]-1] += a.Rho1[j]
	}
	if sum0 > 1+tol {
		return fmt.Errorf("%w: common-channel shares sum to %v", ErrBadInstance, sum0)
	}
	for i, s := range sumI {
		if s > 1+tol {
			return fmt.Errorf("%w: FBS %d shares sum to %v", ErrBadInstance, i+1, s)
		}
	}
	return nil
}

// IntoSolver is implemented by solvers that can write the allocation into a
// caller-owned buffer, letting per-slot callers (the simulation engine, the
// greedy allocator's Q evaluations) reuse one Allocation instead of
// allocating a fresh one per solve. The buffer is resized and zeroed; any
// previous contents are discarded.
type IntoSolver interface {
	Solver
	SolveInto(in *Instance, out *Allocation) error
}
