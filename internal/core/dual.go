package core

import (
	"fmt"
	"math"
)

// DualSolver implements the paper's distributed dual-decomposition algorithm
// (Table I for one FBS, Table II for several): each CR user solves its local
// subproblem (14) in closed form for the current prices, picks the better
// base station (Theorem 1 makes the optimal association binary), and the MBS
// updates the dual variables by projected subgradient, eqs. (16), (18)-(19).
//
// After the dual loop, the solver fixes the association from the final
// prices and water-fills each resource exactly, which guarantees a feasible
// allocation even when the subgradient iteration was stopped early.
type DualSolver struct {
	step        float64 // base step size s; 0 means auto-scaled per resource
	stepScale   float64 // auto-step fraction of the price scale
	phi         float64 // termination threshold on squared dual movement
	maxIter     int
	diminishing bool // s_tau = s/sqrt(1+tau)
	trace       bool // record per-iteration dual values
	lambdaMin   float64
}

var (
	_ Solver     = (*DualSolver)(nil)
	_ IntoSolver = (*DualSolver)(nil)
	_ WarmSolver = (*DualSolver)(nil)
)

// Warm-start tuning constants.
//
// warmUndershoot deliberately seeds below the rescaled carried multipliers:
// the clipped subgradient (g in [-10, 1]) climbs prices up to 10x faster than
// it walks them down, so converting the cross-slot prediction error into a
// short climb is far cheaper than risking a long descent from above.
//
// warmRelTol is the warm-only extra termination test: stop once every price
// moved by at most warmRelTol of its resource's price scale in one
// iteration. Because the step is s = stepScale*scale/sqrt(1+tau), the test
// is equivalent to a per-resource subgradient-residual bound
// |g| <= warmRelTol*sqrt(1+tau)/stepScale (~1e-3 at the resumed schedule
// position): it detects proximity to the fixed point through the demand
// residual, so a seed stuck far from equilibrium (large |g|) can never
// fake convergence. At paper scale the resulting multiplier accuracy is
// about two decades tighter than the error the discrete repair step is
// measured to absorb; the warm-vs-cold equivalence tests gate it.
const (
	warmUndershoot = 0.85
	warmRelTol     = 3e-5
)

// DualOption configures a DualSolver.
type DualOption func(*DualSolver)

// WithStep sets a fixed base step size s (Table I step 9). The default 0
// auto-scales the step to each resource's price magnitude.
func WithStep(s float64) DualOption { return func(d *DualSolver) { d.step = s } }

// WithStepScale sets the auto-scaled step as a fraction of each resource's
// estimated price magnitude (default 0.1). Smaller fractions converge more
// slowly but trace the paper's long Fig. 4(a) trajectories.
func WithStepScale(f float64) DualOption { return func(d *DualSolver) { d.stepScale = f } }

// WithPhi sets the termination threshold phi of Table I step 11.
func WithPhi(phi float64) DualOption { return func(d *DualSolver) { d.phi = phi } }

// WithMaxIter caps the subgradient iterations.
func WithMaxIter(n int) DualOption { return func(d *DualSolver) { d.maxIter = n } }

// WithConstantStep disables the diminishing step-size schedule, running the
// plain constant-step subgradient of the paper.
func WithConstantStep() DualOption { return func(d *DualSolver) { d.diminishing = false } }

// WithTrace records the dual-variable trajectory (Fig. 4(a)).
func WithTrace() DualOption { return func(d *DualSolver) { d.trace = true } }

// NewDualSolver builds the solver with sensible defaults: auto step,
// phi = 1e-14, 2000 iteration cap, diminishing steps.
func NewDualSolver(opts ...DualOption) *DualSolver {
	d := &DualSolver{
		stepScale:   0.1,
		phi:         1e-14,
		maxIter:     2000,
		diminishing: true,
		lambdaMin:   1e-12,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Name identifies the scheme.
func (d *DualSolver) Name() string { return "Proposed" }

// DualReport carries diagnostics of one solve: the final prices
// [lambda_0, lambda_1..lambda_N], the number of subgradient iterations, and
// (when tracing) the per-iteration price trajectory.
type DualReport struct {
	Lambda     []float64
	Iterations int
	Converged  bool
	Trace      [][]float64
}

// captureTrace appends a snapshot of the current prices to the trajectory.
//
//femtovet:coldpath -- diagnostic price-trajectory capture, only reached under WithTrace; the snapshot must escape into the report
func (r *DualReport) captureTrace(lambda []float64) {
	r.Trace = append(r.Trace, append([]float64(nil), lambda...))
}

// captureLambda copies the final prices into the report.
//
//femtovet:coldpath -- diagnostic, once per SolveDetailed; the price copy must escape into the report
func (r *DualReport) captureLambda(lambda []float64) {
	r.Lambda = append([]float64(nil), lambda...)
}

// Solve returns a feasible allocation for the slot's problem.
func (d *DualSolver) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := NewAllocation(in.K())
	if err := d.solveInto(in, alloc, nil, nil); err != nil {
		return nil, err
	}
	return alloc, nil
}

// SolveInto solves the slot's problem into a caller-owned allocation.
//
//femtovet:hotpath
//femtovet:borrows in, out
func (d *DualSolver) SolveInto(in *Instance, out *Allocation) error {
	if err := in.Validate(); err != nil {
		return err
	}
	return d.solveInto(in, out, nil, nil)
}

// SolveWarmInto is SolveInto seeded from a cross-slot session: when sess
// carries converged multipliers for an instance of the same shape, the
// subgradient iteration starts from them (at the step-size schedule position
// the last cold start converged at) instead of the cold 2*scale heuristic.
// A nil session, a seeding-disabled session, or a negative phi (the
// never-terminate tracing mode) degrades to the cold path; shape changes and
// the divergence guard re-cold-start automatically. See SolverSession.
//
//femtovet:hotpath
//femtovet:borrows in, out, sess
func (d *DualSolver) SolveWarmInto(in *Instance, out *Allocation, sess *SolverSession) error {
	if err := in.Validate(); err != nil {
		return err
	}
	return d.solveInto(in, out, nil, sess)
}

// SolveDetailed additionally returns the dual-iteration diagnostics.
func (d *DualSolver) SolveDetailed(in *Instance) (*Allocation, *DualReport, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	alloc := NewAllocation(in.K())
	report := &DualReport{}
	if err := d.solveInto(in, alloc, report, nil); err != nil {
		return nil, nil, err
	}
	return alloc, report, nil
}

// SolveWarmDetailed is SolveWarmInto with the dual-iteration diagnostics,
// for tests and instrumentation of the warm path.
func (d *DualSolver) SolveWarmDetailed(in *Instance, sess *SolverSession) (*Allocation, *DualReport, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	alloc := NewAllocation(in.K())
	report := &DualReport{}
	if err := d.solveInto(in, alloc, report, sess); err != nil {
		return nil, nil, err
	}
	return alloc, report, nil
}

// solveInto runs the dual iteration on pooled workspace scratch, writing
// the repaired allocation into out and, when report is non-nil, the
// diagnostics into report. A non-nil sess records iteration statistics and,
// when its seeding is enabled, warm-starts the iteration; sess == nil is the
// legacy cold path, bit-identical to the pre-session solver.
func (d *DualSolver) solveInto(in *Instance, out *Allocation, report *DualReport, sess *SolverSession) error {
	ws := getWorkspace()
	defer putWorkspace(ws)

	k, n := in.K(), in.N()
	nRes := n + 1 // resource 0 is the common channel, 1..N the FBS bands
	ws.prepareUsers(in)

	// Per-resource price scale estimates used for auto step sizing and
	// initialization: lambda* ~ sum(ps) / (1 + sum(w/r)) from the
	// water-filling KKT conditions.
	scale := growF(ws.scale, nRes)
	ws.scale = scale
	{
		sumPS := growF(ws.sumPS, nRes)
		ws.sumPS = sumPS
		sumWR := growF(ws.sumWR, nRes)
		ws.sumWR = sumWR
		for i := 0; i < nRes; i++ {
			sumPS[i] = 0
			sumWR[i] = 0
		}
		for j := 0; j < k; j++ {
			if in.R0[j] > 0 {
				sumPS[0] += in.PS0[j]
				sumWR[0] += in.W[j] / in.R0[j]
			}
			if r := in.effR1(j); r > 0 {
				i := in.FBS[j]
				sumPS[i] += in.PS1[j]
				sumWR[i] += in.W[j] / r
			}
		}
		for i := range scale {
			if sumPS[i] > 0 {
				scale[i] = sumPS[i] / (1 + sumWR[i])
			} else {
				scale[i] = 1
			}
		}
	}

	lambda := growF(ws.lambda, nRes)
	ws.lambda = lambda
	sums := growF(ws.sums, nRes)
	ws.sums = sums
	next := growF(ws.next, nRes)
	ws.next = next

	// Session path only (phi >= 0 keeps the tracing never-terminate mode
	// out): a trivially-feasible instance — every resource can absorb the
	// full both-branch demand even at the price floor — drives every price
	// to exactly zero under the cold dynamics, so skip the loop and repair
	// at zero prices directly. The carried multipliers are left untouched:
	// a quiet slot must not wipe the tracker.
	if sess != nil && d.phi >= 0 {
		sess.observe(in)
		if d.triviallyFeasible(in, ws, sums) {
			for i := range lambda {
				lambda[i] = 0
			}
			if report != nil {
				report.Iterations = 0
				report.Converged = true
				if d.trace {
					report.captureTrace(lambda)
				}
				report.captureLambda(lambda)
			}
			sess.note(0, false, true)
			d.repair(in, out, lambda, ws)
			if err := feasibleCached(in, out, ws, 1e-9); err != nil {
				return fmt.Errorf("dual solver produced infeasible allocation: %w", err)
			}
			return nil
		}
	}

	warm := sess != nil && d.phi >= 0 && sess.seeding &&
		sess.haveLambda && len(sess.lambda) == nRes
	tauStart := 0
	relTol := 0.0
	if warm {
		// Seed from the carried multipliers, rescaled by the per-resource
		// price-scale drift (the KKT estimate tracks lambda* as G and W move
		// between slots) and deliberately undershot: the clipped subgradient
		// climbs prices up to 10x faster than it walks them down, so turning
		// the prediction error into a short climb is far cheaper than risking
		// a slow descent from above. Resources with zero aggregate demand
		// price at exactly zero, so seed them there directly.
		for i := range lambda {
			if ws.sumPS[i] == 0 {
				lambda[i] = 0
				continue
			}
			li := sess.lambda[i]
			if ref := sess.scaleRef[i]; ref != scale[i] && ref > 0 { //femtovet:ignore floateq -- bit-equal scale means the carried multiplier is exact; any drift takes the rescale path
				li *= warmUndershoot * scale[i] / ref
			}
			lambda[i] = li
		}
		tauStart = sess.tau
		relTol = warmRelTol
	} else {
		for i := range lambda {
			lambda[i] = 2 * scale[i] // start above the target, as in Fig. 4(a)
		}
	}
	if report != nil {
		report.Iterations = 0
		if d.trace {
			report.captureTrace(lambda)
		}
	}

	final, performed, converged := d.iterate(in, ws, lambda, next, sums, scale, tauStart, relTol, report)
	totalIters := performed
	coldStart := !warm
	if warm && !converged {
		// Divergence guard: the carried multipliers did not lead to
		// convergence within the iteration budget (the correlation
		// assumption failed for this slot), so re-run cold in the same
		// call. The report describes the attempt that produced the final
		// prices; the failed attempt's cost shows up in SessionStats.
		for i := range lambda {
			lambda[i] = 2 * scale[i]
		}
		if report != nil {
			report.Iterations = 0
			report.Converged = false
			if d.trace {
				report.captureTrace(lambda)
			}
		}
		final, performed, converged = d.iterate(in, ws, lambda, next, sums, scale, 0, 0, report)
		totalIters += performed
		coldStart = true
		sess.stats.Restarts++
	}
	if report != nil {
		report.captureLambda(final)
	}
	if sess != nil && d.phi >= 0 {
		if converged {
			tau := tauStart + performed - 1
			if coldStart {
				tau = performed - 1
			}
			if tau < 0 {
				tau = 0
			}
			sess.storeLambda(final, scale, tau, coldStart)
		} else {
			// Not even the cold budget converged: these multipliers are
			// not a trustworthy seed, so the next slot starts cold too.
			sess.haveLambda = false
		}
		sess.note(totalIters, warm, false)
	}

	// Repair: freeze the association from the final prices and water-fill
	// each resource exactly so the allocation is feasible and supported by
	// consistent prices.
	d.repair(in, out, final, ws)
	if err := feasibleCached(in, out, ws, 1e-9); err != nil {
		return fmt.Errorf("dual solver produced infeasible allocation: %w", err)
	}
	return nil
}

// iterate runs the projected-subgradient loop (Table I steps 3-11) from the
// given step-size schedule position, alternating between the lambda and next
// buffers instead of copying — each iteration fully rewrites the target
// buffer, so the swap is bit-identical to the copy it replaces. It returns
// the buffer holding the final prices, the number of iterations performed,
// and whether the movement test passed.
//
// relTol > 0 enables the warm-only movement termination: stop once every
// price moved by at most relTol of its resource's price scale in one
// iteration (a per-resource demand-residual test; see warmRelTol). The
// cold/legacy path always passes 0, keeping its termination (and hence its
// iterates) bit-identical to the session-less solver.
//
//femtovet:hotpath
//femtovet:owns lambda, next
//femtovet:borrows in, ws, sums, scale, report
func (d *DualSolver) iterate(in *Instance, ws *solveWorkspace, lambda, next, sums, scale []float64, tauStart int, relTol float64, report *DualReport) ([]float64, int, bool) {
	k := in.K()
	performed := 0
	converged := false
	for it := 0; it < d.maxIter; it++ {
		tau := tauStart + it
		// Steps 3-8: each user solves its subproblem at the current prices.
		for i := range sums {
			sums[i] = 0
		}
		for j := 0; j < k; j++ {
			i := in.FBS[j]
			l0 := math.Max(lambda[0], d.lambdaMin)
			l1 := math.Max(lambda[i], d.lambdaMin)
			bv0, rho0 := ws.u0[j].branchAndRhoWR(l0, ws.logW[j], ws.wr0[j], ws.bl0[j])
			bv1, rho1 := ws.u1[j].branchAndRhoWR(l1, ws.logW[j], ws.wr1[j], ws.bl1[j])
			if bv0 > bv1 {
				sums[0] += rho0
			} else {
				sums[i] += rho1
			}
		}

		// Step 9: projected subgradient update, eqs. (18)-(19).
		move := 0.0
		relOK := relTol > 0
		for i := range lambda {
			g := 1 - sums[i] // subgradient of the dual in lambda_i
			if g < -10 {
				g = -10 // clip runaway demand when a price hits zero
			}
			s := d.step
			if s <= 0 {
				s = d.stepScale * scale[i]
			}
			if d.diminishing {
				s /= math.Sqrt(1 + float64(tau))
			}
			next[i] = lambda[i] - s*g
			if next[i] < 0 {
				next[i] = 0
			}
			delta := next[i] - lambda[i]
			move += delta * delta
			if relOK && math.Abs(delta) > relTol*scale[i] {
				relOK = false
			}
		}
		lambda, next = next, lambda
		performed = it + 1
		if report != nil {
			report.Iterations = performed
			if d.trace {
				report.captureTrace(lambda)
			}
		}
		if move <= d.phi || relOK {
			converged = true
			if report != nil {
				report.Converged = true
			}
			break
		}
	}
	return lambda, performed, converged
}

// triviallyFeasible reports whether every resource can absorb the full
// both-branch demand of its users at the price floor — the pessimistic
// over-count where every user claims its share on the MBS and its FBS
// simultaneously. When it holds, demand stays strictly below every budget at
// any price, the subgradient is strictly positive, and the cold dynamics
// drive all prices to exactly zero. The strict-inequality early exit keeps
// the check ~one user deep on the saturated instances of the paper scale.
//
//femtovet:hotpath
//femtovet:borrows in, ws, sums
func (d *DualSolver) triviallyFeasible(in *Instance, ws *solveWorkspace, sums []float64) bool {
	k := in.K()
	for i := range sums {
		sums[i] = 0
	}
	for j := 0; j < k; j++ {
		i := in.FBS[j]
		sums[0] += ws.u0[j].rhoAtWR(d.lambdaMin, ws.wr0[j])
		sums[i] += ws.u1[j].rhoAtWR(d.lambdaMin, ws.wr1[j])
		if sums[0] >= 1 || sums[i] >= 1 {
			return false
		}
	}
	return true
}

// repair builds the final feasible allocation: users keep the base station
// chosen at the final prices; each resource is then water-filled among its
// users.
func (d *DualSolver) repair(in *Instance, alloc *Allocation, lambda []float64, ws *solveWorkspace) {
	k := in.K()
	alloc.resize(k)
	for j := 0; j < k; j++ {
		i := in.FBS[j]
		l0 := math.Max(lambda[0], d.lambdaMin)
		l1 := math.Max(lambda[i], d.lambdaMin)
		alloc.MBS[j] = ws.u0[j].branchValueLog(l0, ws.logW[j]) > ws.u1[j].branchValueLog(l1, ws.logW[j])
	}
	fillResources(in, alloc, ws)
	polishAssociation(in, alloc, 4, ws)
}

// polishAssociation runs best-improvement coordinate search over the binary
// base-station association: flip one user at a time, re-water-fill the two
// affected resources, keep strict improvements. It repairs mis-associations
// left by a truncated dual iteration; at most maxRounds passes over the
// users. The workspace must have prepareUsers already applied for this
// instance (it supplies the water-filling views and cached log(W) terms).
//
// A rejected flip restores the snapshotted shares instead of re-running the
// two water-fills: the fills are deterministic functions of the (restored)
// association, and the invariant that the current shares always equal the
// fills' output for the current association makes the copy byte-identical
// to the recomputation — at half the cost, since most flips are rejected.
func polishAssociation(in *Instance, alloc *Allocation, maxRounds int, ws *solveWorkspace) {
	k := in.K()
	cur := objectiveCached(in, alloc, ws.logW)
	save0 := growF(ws.polishRho0, k)
	ws.polishRho0 = save0
	save1 := growF(ws.polishRho1, k)
	ws.polishRho1 = save1
	for round := 0; round < maxRounds; round++ {
		improved := false
		for j := 0; j < k; j++ {
			// Flipping user j only perturbs the common channel and its own
			// FBS band; every other resource's water-filling is unchanged.
			copy(save0, alloc.Rho0)
			copy(save1, alloc.Rho1)
			alloc.MBS[j] = !alloc.MBS[j]
			fillCommon(in, alloc, ws)
			fillFBS(in, alloc, in.FBS[j], ws)
			if v := objectiveCached(in, alloc, ws.logW); v > cur+1e-12 {
				cur = v
				improved = true
			} else {
				alloc.MBS[j] = !alloc.MBS[j]
				copy(alloc.Rho0, save0)
				copy(alloc.Rho1, save1)
			}
		}
		if !improved {
			return
		}
	}
}

// fillResources water-fills the common channel among MBS users and each FBS
// band among its users, given a fixed association in alloc.MBS.
func fillResources(in *Instance, alloc *Allocation, ws *solveWorkspace) {
	fillCommon(in, alloc, ws)
	for i := 1; i <= in.N(); i++ {
		fillFBS(in, alloc, i, ws)
	}
}

// fillCommon water-fills the common channel among the users associated with
// the MBS, on workspace scratch. The effective users are gathered straight
// into the flat waterfillColumns views, reusing the w/r quotients
// prepareUsers hoisted; users filtered out here are exactly those the
// scalar reference zeroed, so their shares are set to zero up front.
func fillCommon(in *Instance, alloc *Allocation, ws *solveWorkspace) {
	k := in.K()
	idx := ws.wfIdx[:0]
	ps := ws.wfPS[:0]
	wr := ws.wfWR[:0]
	caps := ws.wfCap[:0]
	for j := 0; j < k; j++ {
		if !alloc.MBS[j] {
			continue
		}
		alloc.Rho0[j] = 0
		alloc.Rho1[j] = 0
		u := ws.u0[j]
		if u.ps > 0 && u.r > 0 {
			idx = append(idx, j)
			ps = append(ps, u.ps)
			wr = append(wr, ws.wr0[j])
			caps = append(caps, u.cap)
		}
	}
	ws.wfIdx, ws.wfPS, ws.wfWR, ws.wfCap = idx, ps, wr, caps
	rho := growF(ws.wfRho, len(idx))
	ws.wfRho = rho
	waterfillColumns(rho, ps, wr, caps, 1)
	for t, j := range idx {
		alloc.Rho0[j] = rho[t]
	}
}

// fillFBS water-fills FBS i's licensed band among its associated users, on
// workspace scratch, gathering the effective users into the flat
// waterfillColumns views like fillCommon.
func fillFBS(in *Instance, alloc *Allocation, i int, ws *solveWorkspace) {
	k := in.K()
	idx := ws.wfIdx[:0]
	ps := ws.wfPS[:0]
	wr := ws.wfWR[:0]
	caps := ws.wfCap[:0]
	for j := 0; j < k; j++ {
		if alloc.MBS[j] || in.FBS[j] != i {
			continue
		}
		alloc.Rho0[j] = 0
		alloc.Rho1[j] = 0
		u := ws.u1[j]
		if u.ps > 0 && u.r > 0 {
			idx = append(idx, j)
			ps = append(ps, u.ps)
			wr = append(wr, ws.wr1[j])
			caps = append(caps, u.cap)
		}
	}
	ws.wfIdx, ws.wfPS, ws.wfWR, ws.wfCap = idx, ps, wr, caps
	rhoI := growF(ws.wfRho, len(idx))
	ws.wfRho = rhoI
	waterfillColumns(rhoI, ps, wr, caps, 1)
	for t, j := range idx {
		alloc.Rho1[j] = rhoI[t]
	}
}
