//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector. Allocation-count pins are skipped under it: sync.Pool
// deliberately drops cached items in race mode, so steady-state counts are
// not meaningful there.
const raceEnabled = true
