package core

// MaxThroughput is an extension baseline at the opposite pole from the
// paper's proportional fairness: it maximizes the sum of expected quality
// increments sum_j PS_j * rho_j * R_j with no concern for balance. For a
// linear objective with per-user demand ceilings, the optimum per resource
// is a greedy fill: serve users in decreasing PS*R_eff order, each up to
// its encoding ceiling, until the slot is exhausted. Without ceilings it
// degenerates to winner-takes-all, essentially Heuristic 2 with exact
// shares.
type MaxThroughput struct{}

var (
	_ Solver     = MaxThroughput{}
	_ IntoSolver = MaxThroughput{}
)

// Name identifies the scheme.
func (MaxThroughput) Name() string { return "Max throughput" }

// Solve assigns each user to its higher-rate side, greedily fills each
// resource in rate order, then polishes the association by coordinate
// flips: moving one user to the other base station can raise the total
// when it leaves an otherwise-idle resource busy.
func (m MaxThroughput) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := NewAllocation(in.K())
	m.solveInto(in, alloc)
	return alloc, nil
}

// SolveInto solves into a caller-owned allocation.
//
//femtovet:hotpath
//femtovet:borrows in, out
func (m MaxThroughput) SolveInto(in *Instance, out *Allocation) error {
	if err := in.Validate(); err != nil {
		return err
	}
	m.solveInto(in, out)
	return nil
}

func (MaxThroughput) solveInto(in *Instance, alloc *Allocation) {
	k := in.K()
	alloc.resize(k)
	ws := getWorkspace()
	defer putWorkspace(ws)
	for j := 0; j < k; j++ {
		alloc.MBS[j] = in.PS0[j]*in.R0[j] > in.PS1[j]*in.effR1(j)
	}
	fillLinear(in, alloc, ws)
	cur := totalExpectedGain(in, alloc)
	for round := 0; round < 4; round++ {
		improved := false
		for j := 0; j < k; j++ {
			alloc.MBS[j] = !alloc.MBS[j]
			fillLinear(in, alloc, ws)
			if v := totalExpectedGain(in, alloc); v > cur+1e-12 {
				cur = v
				improved = true
			} else {
				alloc.MBS[j] = !alloc.MBS[j]
				fillLinear(in, alloc, ws)
			}
		}
		if !improved {
			break
		}
	}
}

// totalExpectedGain sums the expected quality increments of an allocation.
func totalExpectedGain(in *Instance, a *Allocation) float64 {
	sum := 0.0
	for j := 0; j < in.K(); j++ {
		sum += a.ExpectedGain(in, j)
	}
	return sum
}

// fillLinear greedily fills every resource in decreasing PS*R_eff order up
// to each user's demand ceiling — the exact optimum of the linear
// per-resource problem. All scratch (the association groups and per-user
// rates) lives on the workspace: byFBS slot 0, unused by the 1-based FBS
// numbering, holds the MBS-associated users.
func fillLinear(in *Instance, alloc *Allocation, ws *solveWorkspace) {
	k, n := in.K(), in.N()
	if cap(ws.byFBS) < n+1 {
		ws.byFBS = make([][]int, n+1)
	} else {
		ws.byFBS = ws.byFBS[:n+1]
	}
	groups := ws.byFBS
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	rates := growF(ws.gains, k)
	ws.gains = rates
	for j := 0; j < k; j++ {
		alloc.Rho0[j] = 0
		alloc.Rho1[j] = 0
		if alloc.MBS[j] {
			groups[0] = append(groups[0], j)
			rates[j] = in.PS0[j] * in.R0[j]
		} else {
			groups[in.FBS[j]] = append(groups[in.FBS[j]], j)
			rates[j] = in.PS1[j] * in.effR1(j)
		}
	}
	fillGroup(in, alloc, groups[0], rates, true)
	for i := 1; i <= n; i++ {
		fillGroup(in, alloc, groups[i], rates, false)
	}
}

// fillGroup pours the unit budget over one resource's users, selecting the
// next-best user on demand instead of pre-sorting the whole group: the fill
// usually exhausts the budget after one or two users, so the quadratic sort
// the association-polish loop re-ran on every flip collapses to a couple of
// linear scans. Selection by (rate descending, index ascending) is a strict
// total order and reproduces the unique sequence the previous stable
// descending sort presented — ties included — so the shares are
// bit-identical.
func fillGroup(in *Instance, alloc *Allocation, order []int, rates []float64, mbs bool) {
	budget := 1.0
	for t := 0; t < len(order); t++ {
		if budget <= 0 {
			break
		}
		best := t
		for s := t + 1; s < len(order); s++ {
			if cand, cur := order[s], order[best]; rates[cand] > rates[cur] ||
				(rates[cand] == rates[cur] && cand < cur) { //femtovet:ignore floateq -- exact tie-break reproduces the former stable sort's order bitwise
				best = s
			}
		}
		order[t], order[best] = order[best], order[t]
		j := order[t]
		if rates[j] <= 0 {
			break
		}
		share := budget
		var c float64
		if mbs {
			c = in.capFor(j, in.R0[j])
		} else {
			c = in.capFor(j, in.effR1(j))
		}
		if c >= 0 && share > c {
			share = c
		}
		if mbs {
			alloc.Rho0[j] = share
		} else {
			alloc.Rho1[j] = share
		}
		budget -= share
	}
}
