package core

import "sort"

// MaxThroughput is an extension baseline at the opposite pole from the
// paper's proportional fairness: it maximizes the sum of expected quality
// increments sum_j PS_j * rho_j * R_j with no concern for balance. For a
// linear objective with per-user demand ceilings, the optimum per resource
// is a greedy fill: serve users in decreasing PS*R_eff order, each up to
// its encoding ceiling, until the slot is exhausted. Without ceilings it
// degenerates to winner-takes-all, essentially Heuristic 2 with exact
// shares.
type MaxThroughput struct{}

var _ Solver = MaxThroughput{}

// Name identifies the scheme.
func (MaxThroughput) Name() string { return "Max throughput" }

// Solve assigns each user to its higher-rate side, greedily fills each
// resource in rate order, then polishes the association by coordinate
// flips: moving one user to the other base station can raise the total
// when it leaves an otherwise-idle resource busy.
func (MaxThroughput) Solve(in *Instance) (*Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	k := in.K()
	alloc := NewAllocation(k)
	for j := 0; j < k; j++ {
		alloc.MBS[j] = in.PS0[j]*in.R0[j] > in.PS1[j]*in.effR1(j)
	}
	fillLinear(in, alloc)
	cur := totalExpectedGain(in, alloc)
	for round := 0; round < 4; round++ {
		improved := false
		for j := 0; j < k; j++ {
			alloc.MBS[j] = !alloc.MBS[j]
			fillLinear(in, alloc)
			if v := totalExpectedGain(in, alloc); v > cur+1e-12 {
				cur = v
				improved = true
			} else {
				alloc.MBS[j] = !alloc.MBS[j]
				fillLinear(in, alloc)
			}
		}
		if !improved {
			break
		}
	}
	return alloc, nil
}

// totalExpectedGain sums the expected quality increments of an allocation.
func totalExpectedGain(in *Instance, a *Allocation) float64 {
	sum := 0.0
	for j := 0; j < in.K(); j++ {
		sum += a.ExpectedGain(in, j)
	}
	return sum
}

// fillLinear greedily fills every resource in decreasing PS*R_eff order up
// to each user's demand ceiling — the exact optimum of the linear
// per-resource problem.
func fillLinear(in *Instance, alloc *Allocation) {
	k := in.K()
	fill := func(users []int, rate func(int) float64, cap func(int) float64, set func(int, float64)) {
		order := append([]int(nil), users...)
		sort.SliceStable(order, func(a, b int) bool { return rate(order[a]) > rate(order[b]) })
		budget := 1.0
		for _, j := range order {
			if budget <= 0 || rate(j) <= 0 {
				break
			}
			share := budget
			if c := cap(j); c >= 0 && share > c {
				share = c
			}
			set(j, share)
			budget -= share
		}
	}
	var mbsUsers []int
	byFBS := make([][]int, in.N()+1)
	for j := 0; j < k; j++ {
		alloc.Rho0[j] = 0
		alloc.Rho1[j] = 0
		if alloc.MBS[j] {
			mbsUsers = append(mbsUsers, j)
		} else {
			byFBS[in.FBS[j]] = append(byFBS[in.FBS[j]], j)
		}
	}
	fill(mbsUsers,
		func(j int) float64 { return in.PS0[j] * in.R0[j] },
		func(j int) float64 { return in.capFor(j, in.R0[j]) },
		func(j int, rho float64) { alloc.Rho0[j] = rho })
	for i := 1; i <= in.N(); i++ {
		fill(byFBS[i],
			func(j int) float64 { return in.PS1[j] * in.effR1(j) },
			func(j int) float64 { return in.capFor(j, in.effR1(j)) },
			func(j int, rho float64) { alloc.Rho1[j] = rho })
	}
}
