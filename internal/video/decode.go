package video

// Dependency-aware decoding. The queues of internal/packet deliver units in
// significance order, so prefix-based accounting suffices there; this file
// models the general case — an arbitrary subset of units arrived — honoring
// the two dependency rules of hierarchical MGS coding:
//
//  1. Within a frame, MGS layer l decodes only if layers 0..l-1 of the same
//     frame decoded (quality refinement order).
//  2. A frame's base layer decodes only if its reference anchors decoded:
//     the GOP's I frame for everything, plus the nearest preceding anchor
//     (I or P) for P frames, and the surrounding anchors for B frames.

// DecodableBytes returns the payload of g that a decoder can actually use
// when exactly the units for which received returns true have arrived.
func (g GOP) DecodableBytes(received func(NALUnit) bool) int {
	if len(g.Units) == 0 {
		return 0
	}
	frames := 0
	for _, u := range g.Units {
		if u.Frame+1 > frames {
			frames = u.Frame + 1
		}
	}
	// Collect per-frame units by layer.
	byFrame := make([]map[int]NALUnit, frames)
	types := make([]FrameType, frames)
	for i := range byFrame {
		byFrame[i] = make(map[int]NALUnit)
	}
	for _, u := range g.Units {
		byFrame[u.Frame][u.Layer] = u
		types[u.Frame] = u.Type
	}

	// baseOK[f]: the base layer of frame f arrived AND its references
	// decode. Evaluate in display order: anchors only reference earlier
	// anchors, B frames reference surrounding anchors.
	baseOK := make([]bool, frames)
	prevAnchorOK := false
	anchorOf := make([]int, frames) // nearest preceding anchor index
	lastAnchor := -1
	for f := 0; f < frames; f++ {
		if types[f] == IFrame || types[f] == PFrame {
			anchorOf[f] = lastAnchor
			lastAnchor = f
		} else {
			anchorOf[f] = lastAnchor
		}
	}
	nextAnchor := make([]int, frames)
	next := -1
	for f := frames - 1; f >= 0; f-- {
		nextAnchor[f] = next
		if types[f] == IFrame || types[f] == PFrame {
			next = f
		}
	}

	has := func(f, layer int) bool {
		u, ok := byFrame[f][layer]
		return ok && received(u)
	}
	for f := 0; f < frames; f++ {
		switch types[f] {
		case IFrame:
			baseOK[f] = has(f, 0)
			prevAnchorOK = baseOK[f]
		case PFrame:
			baseOK[f] = has(f, 0) && prevAnchorOK
			prevAnchorOK = baseOK[f]
		default: // B frame: needs the preceding anchor; the following one
			// too when it exists inside the GOP.
			ok := has(f, 0)
			if a := anchorOf[f]; a < 0 || !baseOK[a] {
				ok = false
			}
			if a := nextAnchor[f]; a >= 0 {
				// The following anchor decodes iff its own chain does;
				// conservatively require its base unit to have arrived
				// along with every anchor before it.
				if !anchorChainOK(types, byFrame, received, a) {
					ok = false
				}
			}
			baseOK[f] = ok
		}
	}

	total := 0
	for f := 0; f < frames; f++ {
		if !baseOK[f] {
			continue
		}
		total += byFrame[f][0].SizeBytes
		for l := 1; ; l++ {
			if !has(f, l) {
				break
			}
			total += byFrame[f][l].SizeBytes
		}
	}
	return total
}

// anchorChainOK reports whether anchor frame a and every anchor before it
// have their base layers delivered.
func anchorChainOK(types []FrameType, byFrame []map[int]NALUnit,
	received func(NALUnit) bool, a int) bool {
	for f := 0; f <= a; f++ {
		if types[f] != IFrame && types[f] != PFrame {
			continue
		}
		u, ok := byFrame[f][0]
		if !ok || !received(u) {
			return false
		}
	}
	return true
}

// DecodablePSNRFromSet maps DecodableBytes through the rate-quality law of
// eq. (9): the received decodable fraction of the GOP's rate determines the
// reconstructed quality, capped at the encoding ceiling.
func (g GOP) DecodablePSNRFromSet(received func(NALUnit) bool) float64 {
	total := g.TotalBytes()
	if total == 0 {
		return g.Sequence.RD.Alpha
	}
	rate := g.RateMbps() * float64(g.DecodableBytes(received)) / float64(total)
	psnr := g.Sequence.RD.PSNR(rate)
	if max := g.Sequence.MaxPSNR(); psnr > max {
		return max
	}
	return psnr
}
