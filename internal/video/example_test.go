package video_test

import (
	"fmt"

	"femtocr/internal/video"
)

// The rate-quality law of eq. (9) for the Bus sequence.
func ExampleRDModel_PSNR() {
	bus, err := video.SequenceByName("Bus")
	if err != nil {
		panic(err)
	}
	for _, rate := range []float64{0.0, 0.2, 0.4} {
		fmt.Printf("%.1f Mbps -> %.2f dB\n", rate, bus.RD.PSNR(rate))
	}
	// Output:
	// 0.0 Mbps -> 28.60 dB
	// 0.2 Mbps -> 31.76 dB
	// 0.4 Mbps -> 34.92 dB
}

// The per-GOP W-recursion of problem (10): quality accumulates from the
// base layer as video is delivered, and resets at each GOP boundary.
func ExampleProgress() {
	bus, _ := video.SequenceByName("Bus")
	p := video.NewProgress(bus)
	p.DeliverRate(0.1) // 0.1 Mbps worth of enhancement
	p.DeliverRate(0.1)
	fmt.Printf("mid-GOP W = %.2f dB\n", p.PSNR())
	final := p.EndGOP()
	fmt.Printf("GOP closed at %.2f dB, reset to %.2f dB\n", final, p.PSNR())
	// Output:
	// mid-GOP W = 31.76 dB
	// GOP closed at 31.76 dB, reset to 28.60 dB
}
