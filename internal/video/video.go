// Package video models H.264/SVC medium grain scalable (MGS) video streams
// as used in the paper's §III-E.
//
// The paper reduces reconstructed video quality to the affine rate-quality
// model of eq. (9): W(R) = alpha + beta*R, where W is the average luma PSNR
// in dB and R the received rate in Mbps, with (alpha, beta) fitted per
// sequence and codec. This package provides that model, presets calibrated
// to published JSVM R-D results for the standard CIF sequences the paper
// streams (Bus, Mobile, Harbor), the per-GOP delivery-deadline accounting
// that the optimization's W-recursion implements, and a synthetic GOP/NAL
// packetization layer for the packet-level examples.
package video

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnknownSequence is returned by SequenceByName for unknown names.
var ErrUnknownSequence = errors.New("video: unknown sequence")

// ErrBadModel is returned for invalid rate-distortion parameters.
var ErrBadModel = errors.New("video: invalid rate-distortion model")

// RDModel is the paper's eq. (9): PSNR(R) = Alpha + Beta*R with R in Mbps.
// Alpha is the base-layer quality and Beta the MGS enhancement efficiency in
// dB per Mbps.
type RDModel struct {
	Alpha float64
	Beta  float64
}

// Validate checks the model is usable: finite Alpha, positive finite Beta.
func (m RDModel) Validate() error {
	if math.IsNaN(m.Alpha) || math.IsInf(m.Alpha, 0) {
		return fmt.Errorf("%w: alpha=%v", ErrBadModel, m.Alpha)
	}
	if math.IsNaN(m.Beta) || math.IsInf(m.Beta, 0) || m.Beta <= 0 {
		return fmt.Errorf("%w: beta=%v", ErrBadModel, m.Beta)
	}
	return nil
}

// PSNR returns W(R) for a received rate in Mbps.
func (m RDModel) PSNR(rateMbps float64) float64 {
	if rateMbps < 0 {
		rateMbps = 0
	}
	return m.Alpha + m.Beta*rateMbps
}

// RateFor inverts eq. (9): the rate in Mbps needed for a target PSNR.
// Targets at or below Alpha need no enhancement rate.
func (m RDModel) RateFor(psnr float64) float64 {
	if psnr <= m.Alpha {
		return 0
	}
	return (psnr - m.Alpha) / m.Beta
}

// Sequence describes one MGS-encoded test sequence.
type Sequence struct {
	Name        string
	Width       int
	Height      int
	FPS         float64
	RD          RDModel
	MaxRateMbps float64 // rate at which the MGS enhancement saturates
}

// MaxPSNR returns the PSNR at the saturation rate, the quality ceiling of
// the encoding.
func (s Sequence) MaxPSNR() float64 { return s.RD.PSNR(s.MaxRateMbps) }

// Standard CIF test sequences with (alpha, beta) fitted over the low-rate
// operating region the paper's channels provide (roughly 0.1-0.8 Mbps),
// where the MGS rate-distortion curve is steepest. The anchors follow
// published H.264/SVC MGS results (Wien, Schwarz & Oelbaum 2007, and the
// JSVM reference software): high-motion sequences (Bus, Mobile) have a
// lower intercept and a steeper slope than low-complexity ones.
var standardSequences = []Sequence{
	{Name: "Bus", Width: 352, Height: 288, FPS: 30, RD: RDModel{Alpha: 28.6, Beta: 15.8}, MaxRateMbps: 0.55},
	{Name: "Mobile", Width: 352, Height: 288, FPS: 30, RD: RDModel{Alpha: 26.8, Beta: 17.2}, MaxRateMbps: 0.60},
	{Name: "Harbor", Width: 352, Height: 288, FPS: 30, RD: RDModel{Alpha: 27.9, Beta: 13.6}, MaxRateMbps: 0.65},
	{Name: "Foreman", Width: 352, Height: 288, FPS: 30, RD: RDModel{Alpha: 31.2, Beta: 14.9}, MaxRateMbps: 0.45},
	{Name: "Crew", Width: 352, Height: 288, FPS: 30, RD: RDModel{Alpha: 29.8, Beta: 12.8}, MaxRateMbps: 0.55},
	{Name: "City", Width: 352, Height: 288, FPS: 30, RD: RDModel{Alpha: 29.1, Beta: 13.9}, MaxRateMbps: 0.50},
}

// StandardSequences returns the built-in sequence presets. The slice is a
// copy; callers may modify it freely.
func StandardSequences() []Sequence {
	out := make([]Sequence, len(standardSequences))
	copy(out, standardSequences)
	return out
}

// SequenceByName looks up a preset by case-sensitive name.
func SequenceByName(name string) (Sequence, error) {
	for _, s := range standardSequences {
		if s.Name == name {
			return s, nil
		}
	}
	return Sequence{}, fmt.Errorf("%w: %q", ErrUnknownSequence, name)
}

// PaperTrio returns the three sequences streamed in the paper's single-FBS
// scenario, in user order: Bus to user 1, Mobile to user 2, Harbor to user 3.
func PaperTrio() [3]Sequence {
	bus, _ := SequenceByName("Bus")
	mobile, _ := SequenceByName("Mobile")
	harbor, _ := SequenceByName("Harbor")
	return [3]Sequence{bus, mobile, harbor}
}

// Progress tracks the quality of one user's video over a GOP, implementing
// the paper's W-recursion: W^0 = alpha and W^t = W^{t-1} + delivered PSNR
// increments. Quality is capped at the sequence's saturation ceiling.
type Progress struct {
	seq  Sequence
	psnr float64
	gops int
	sum  float64
}

// NewProgress starts tracking a sequence at its base quality.
func NewProgress(seq Sequence) *Progress {
	return &Progress{seq: seq, psnr: seq.RD.Alpha}
}

// Sequence returns the tracked sequence.
func (p *Progress) Sequence() Sequence { return p.seq }

// PSNR returns the current W^t.
func (p *Progress) PSNR() float64 { return p.psnr }

// AddPSNR adds a quality increment (beta * delivered rate), saturating at
// the encoding ceiling. Negative increments are ignored: receiving data
// never hurts quality under eq. (9).
func (p *Progress) AddPSNR(inc float64) {
	if inc <= 0 {
		return
	}
	p.psnr += inc
	if max := p.seq.MaxPSNR(); p.psnr > max {
		p.psnr = max
	}
}

// DeliverRate adds the PSNR increment for rateMbps of received video.
func (p *Progress) DeliverRate(rateMbps float64) {
	p.AddPSNR(p.seq.RD.Beta * rateMbps)
}

// EndGOP records the finished GOP's final PSNR (the W^T sample the paper
// averages) and resets W to alpha for the next GOP.
func (p *Progress) EndGOP() float64 {
	final := p.psnr
	p.gops++
	p.sum += final
	p.psnr = p.seq.RD.Alpha
	return final
}

// CompletedGOPs returns the number of finished GOPs.
func (p *Progress) CompletedGOPs() int { return p.gops }

// MeanPSNR returns the average final PSNR over completed GOPs, or the base
// quality when none has completed.
func (p *Progress) MeanPSNR() float64 {
	if p.gops == 0 {
		return p.seq.RD.Alpha
	}
	return p.sum / float64(p.gops)
}
