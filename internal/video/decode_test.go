package video

import (
	"testing"

	"femtocr/internal/rng"
)

func buildTestGOP(t *testing.T) GOP {
	t.Helper()
	seq, err := SequenceByName("Bus")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGOP(seq, 16, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func all(NALUnit) bool  { return true }
func none(NALUnit) bool { return false }

func TestDecodableBytesEndpoints(t *testing.T) {
	g := buildTestGOP(t)
	if got := g.DecodableBytes(all); got != g.TotalBytes() {
		t.Fatalf("full set decodes %d of %d bytes", got, g.TotalBytes())
	}
	if got := g.DecodableBytes(none); got != 0 {
		t.Fatalf("empty set decodes %d bytes", got)
	}
	var empty GOP
	if empty.DecodableBytes(all) != 0 {
		t.Fatal("empty GOP decodes bytes")
	}
}

// TestMissingIFrameKillsGOP: without the I frame's base layer nothing in
// the GOP decodes.
func TestMissingIFrameKillsGOP(t *testing.T) {
	g := buildTestGOP(t)
	got := g.DecodableBytes(func(u NALUnit) bool {
		return !(u.Frame == 0 && u.Layer == 0)
	})
	if got != 0 {
		t.Fatalf("GOP decodes %d bytes without its I frame", got)
	}
}

// TestMissingPFrameBreaksChain: losing an anchor's base layer kills that
// anchor, every later anchor, and the B frames that reference them — but
// frames before the break still decode.
func TestMissingPFrameBreaksChain(t *testing.T) {
	g := buildTestGOP(t)
	// Drop the base layer of the P frame at display index 8.
	received := func(u NALUnit) bool {
		return !(u.Frame == 8 && u.Layer == 0)
	}
	got := g.DecodableBytes(received)
	if got == 0 {
		t.Fatal("everything died; early frames should survive")
	}
	if got >= g.TotalBytes() {
		t.Fatal("nothing was lost")
	}
	// Frames 0..3 (I plus Bs before the frame-4 anchor... note B frames 1-3
	// reference the frame-4 P, which still decodes) should survive, while
	// frames 8..15 are dead. Compare against the explicit survivor set.
	expected := 0
	for _, u := range g.Units {
		switch {
		case u.Frame < 8 && u.Frame != 0 && u.Type == BFrame:
			// B frames 5..7 reference the dead frame-8 anchor.
			if u.Frame >= 5 {
				continue
			}
			expected += u.SizeBytes
		case u.Frame < 8:
			expected += u.SizeBytes
		}
	}
	if got != expected {
		t.Fatalf("decodable %d, expected %d from the survivor set", got, expected)
	}
}

// TestEnhancementNeedsLowerLayers: an MGS layer without its lower layer is
// useless.
func TestEnhancementNeedsLowerLayers(t *testing.T) {
	g := buildTestGOP(t)
	// Receive everything except frame 0 layer 1; layer 2 of frame 0 then
	// contributes nothing.
	withHole := g.DecodableBytes(func(u NALUnit) bool {
		return !(u.Frame == 0 && u.Layer == 1)
	})
	withoutBoth := g.DecodableBytes(func(u NALUnit) bool {
		return !(u.Frame == 0 && u.Layer >= 1)
	})
	if withHole != withoutBoth {
		t.Fatalf("orphaned layer 2 counted: hole %d vs both-missing %d", withHole, withoutBoth)
	}
}

// TestDecodableMonotoneProperty: receiving a superset never decodes less.
func TestDecodableMonotoneProperty(t *testing.T) {
	g := buildTestGOP(t)
	s := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		inSmall := make(map[int]bool)
		inBig := make(map[int]bool)
		for i := range g.Units {
			if s.Bernoulli(0.5) {
				inSmall[i] = true
				inBig[i] = true
			} else if s.Bernoulli(0.5) {
				inBig[i] = true
			}
		}
		idx := func(set map[int]bool) func(NALUnit) bool {
			return func(u NALUnit) bool {
				for i, v := range g.Units {
					if v == u {
						return set[i]
					}
				}
				return false
			}
		}
		small := g.DecodableBytes(idx(inSmall))
		big := g.DecodableBytes(idx(inBig))
		if small > big {
			t.Fatalf("trial %d: subset decodes %d > superset %d", trial, small, big)
		}
	}
}

// TestSignificancePrefixMatchesTransmissionAccounting: receiving the first
// n units in transmission order decodes exactly those units — the paper's
// significance order respects every dependency, so nothing is orphaned.
func TestSignificancePrefixMatchesTransmissionAccounting(t *testing.T) {
	g := buildTestGOP(t)
	order := g.TransmissionOrder()
	for n := 0; n <= len(order); n += 7 {
		got := make(map[NALUnit]bool, n)
		want := 0
		for i := 0; i < n; i++ {
			got[order[i]] = true
			want += order[i].SizeBytes
		}
		dec := g.DecodableBytes(func(u NALUnit) bool { return got[u] })
		if dec != want {
			t.Fatalf("prefix %d: decodable %d != delivered %d (significance order orphaned a unit)", n, dec, want)
		}
	}
}

func TestDecodablePSNRFromSet(t *testing.T) {
	g := buildTestGOP(t)
	full := g.DecodablePSNRFromSet(all)
	if fullPrefix := g.DecodablePSNR(len(g.Units)); full != fullPrefix {
		t.Fatalf("set-based %v != prefix-based %v on full delivery", full, fullPrefix)
	}
	if got := g.DecodablePSNRFromSet(none); got != g.Sequence.RD.Alpha {
		t.Fatalf("empty set PSNR %v, want alpha", got)
	}
}
