package video

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadGOP is returned for invalid GOP parameters.
var ErrBadGOP = errors.New("video: invalid GOP parameters")

// FrameType classifies a frame within the hierarchical GOP.
type FrameType int

// Frame types in coding order of importance.
const (
	IFrame FrameType = iota + 1
	PFrame
	BFrame
)

// String names the frame type.
func (f FrameType) String() string {
	switch f {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	case BFrame:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", int(f))
	}
}

// NALUnit is one network-abstraction-layer unit of an MGS stream: the unit
// of granularity at which MGS can truncate the enhancement (the paper notes
// MGS has NAL-unit-based granularity, unlike bit-level FGS).
type NALUnit struct {
	Frame        int       // display index within the GOP
	Type         FrameType // frame the unit belongs to
	Layer        int       // 0 = base layer, 1.. = MGS enhancement layers
	SizeBytes    int
	Significance float64 // larger = more valuable to reconstruction
}

// GOP is one group of pictures: the delivery unit with a deadline of T time
// slots in the paper's model.
type GOP struct {
	Sequence Sequence
	Units    []NALUnit
}

// BuildGOP synthesizes the NAL-unit layout of one GOP at the target rate.
//
// The layout follows a standard hierarchical structure: one I frame, P
// frames every 4th picture, B frames elsewhere, with relative base-layer
// sizes I:P:B of 6:3:1 and the remaining rate split across mgsLayers MGS
// enhancement layers per frame (diminishing size per layer). Significance
// decreases with layer first (base before enhancement) and follows decoding
// order within a layer (anchors before the B frames that reference them).
func BuildGOP(seq Sequence, gopSize, mgsLayers int, targetRateMbps float64) (GOP, error) {
	if gopSize < 1 {
		return GOP{}, fmt.Errorf("%w: gopSize=%d", ErrBadGOP, gopSize)
	}
	if mgsLayers < 0 {
		return GOP{}, fmt.Errorf("%w: mgsLayers=%d", ErrBadGOP, mgsLayers)
	}
	if targetRateMbps <= 0 {
		return GOP{}, fmt.Errorf("%w: targetRate=%v Mbps", ErrBadGOP, targetRateMbps)
	}
	if seq.FPS <= 0 {
		return GOP{}, fmt.Errorf("%w: sequence fps=%v", ErrBadGOP, seq.FPS)
	}

	// Total bytes available for the GOP at the target rate.
	gopSeconds := float64(gopSize) / seq.FPS
	totalBytes := targetRateMbps * 1e6 / 8 * gopSeconds

	// Weight per frame for the base layer.
	types := make([]FrameType, gopSize)
	weights := make([]float64, gopSize)
	weightSum := 0.0
	for i := 0; i < gopSize; i++ {
		switch {
		case i == 0:
			types[i] = IFrame
			weights[i] = 6
		case i%4 == 0:
			types[i] = PFrame
			weights[i] = 3
		default:
			types[i] = BFrame
			weights[i] = 1
		}
		weightSum += weights[i]
	}

	// Split the budget: base layer gets ~40%, the MGS layers share the rest
	// with geometrically decreasing sizes (each layer 70% of the previous).
	baseShare := 0.4
	if mgsLayers == 0 {
		baseShare = 1.0
	}
	baseBytes := totalBytes * baseShare
	enhBytes := totalBytes - baseBytes
	layerShare := make([]float64, mgsLayers)
	if mgsLayers > 0 {
		geoSum := 0.0
		w := 1.0
		for l := 0; l < mgsLayers; l++ {
			layerShare[l] = w
			geoSum += w
			w *= 0.7
		}
		for l := range layerShare {
			layerShare[l] = layerShare[l] / geoSum * enhBytes
		}
	}

	units := make([]NALUnit, 0, gopSize*(1+mgsLayers))
	for i := 0; i < gopSize; i++ {
		frac := weights[i] / weightSum
		units = append(units, NALUnit{
			Frame:        i,
			Type:         types[i],
			Layer:        0,
			SizeBytes:    int(baseBytes * frac),
			Significance: significance(0, i, types[i], gopSize),
		})
		for l := 1; l <= mgsLayers; l++ {
			units = append(units, NALUnit{
				Frame:        i,
				Type:         types[i],
				Layer:        l,
				SizeBytes:    int(layerShare[l-1] * frac),
				Significance: significance(l, i, types[i], gopSize),
			})
		}
	}
	return GOP{Sequence: seq, Units: units}, nil
}

// significance orders units layer-major (base layer first) and, within a
// layer, in decoding order: anchor frames (I and P) ahead of the B frames
// that reference them, each group by display order. This guarantees the
// significance-first transmission of §III-E never orphans a unit: by the
// time a B frame's data arrives, both of its reference anchors have
// already been sent. Values are normalized to (0, 1].
func significance(layer, frame int, typ FrameType, gopSize int) float64 {
	numAnchors := (gopSize + 3) / 4 // frames 0, 4, 8, ...
	var rank int
	if typ == IFrame || typ == PFrame {
		rank = frame / 4
	} else {
		rank = numAnchors + frame - frame/4 - 1
	}
	return 1 / (1 + float64(layer)*float64(gopSize) + float64(rank))
}

// TotalBytes returns the byte size of the GOP.
func (g GOP) TotalBytes() int {
	total := 0
	for _, u := range g.Units {
		total += u.SizeBytes
	}
	return total
}

// RateMbps returns the GOP's bit rate given the sequence frame rate.
func (g GOP) RateMbps() float64 {
	if g.Sequence.FPS <= 0 || len(g.Units) == 0 {
		return 0
	}
	frames := 0
	for _, u := range g.Units {
		if u.Frame+1 > frames {
			frames = u.Frame + 1
		}
	}
	seconds := float64(frames) / g.Sequence.FPS
	return float64(g.TotalBytes()) * 8 / 1e6 / seconds
}

// TransmissionOrder returns the units sorted by decreasing significance —
// the order in which the paper transmits video packets so the most valuable
// data goes first and overdue low-significance packets are the ones dropped.
// The returned slice is a copy.
func (g GOP) TransmissionOrder() []NALUnit {
	out := make([]NALUnit, len(g.Units))
	copy(out, g.Units)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Significance > out[j].Significance
	})
	return out
}

// DecodablePSNR returns the reconstructed quality under eq. (9) when only
// the first `received` units in transmission order arrive by the deadline:
// the received rate is the delivered fraction of the GOP's total rate.
func (g GOP) DecodablePSNR(received int) float64 {
	order := g.TransmissionOrder()
	if received > len(order) {
		received = len(order)
	}
	if received < 0 {
		received = 0
	}
	got := 0
	for _, u := range order[:received] {
		got += u.SizeBytes
	}
	total := g.TotalBytes()
	if total == 0 {
		return g.Sequence.RD.Alpha
	}
	rate := g.RateMbps() * float64(got) / float64(total)
	psnr := g.Sequence.RD.PSNR(rate)
	if max := g.Sequence.MaxPSNR(); psnr > max {
		return max
	}
	return psnr
}
