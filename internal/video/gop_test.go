package video

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func testSeq(t *testing.T) Sequence {
	t.Helper()
	s, err := SequenceByName("Bus")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildGOPValidation(t *testing.T) {
	seq := testSeq(t)
	cases := []struct {
		gop, layers int
		rate        float64
	}{
		{0, 2, 0.5},
		{16, -1, 0.5},
		{16, 2, 0},
		{16, 2, -1},
	}
	for _, c := range cases {
		if _, err := BuildGOP(seq, c.gop, c.layers, c.rate); !errors.Is(err, ErrBadGOP) {
			t.Errorf("BuildGOP(%d, %d, %v) err = %v, want ErrBadGOP", c.gop, c.layers, c.rate, err)
		}
	}
	badSeq := seq
	badSeq.FPS = 0
	if _, err := BuildGOP(badSeq, 16, 2, 0.5); !errors.Is(err, ErrBadGOP) {
		t.Fatal("zero fps accepted")
	}
}

func TestBuildGOPStructure(t *testing.T) {
	seq := testSeq(t)
	g, err := BuildGOP(seq, 16, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Units) != 16*3 {
		t.Fatalf("units = %d, want 48 (16 frames x 3 layers)", len(g.Units))
	}
	// Frame 0 is I, frames 4/8/12 are P, the rest B.
	for _, u := range g.Units {
		want := BFrame
		switch {
		case u.Frame == 0:
			want = IFrame
		case u.Frame%4 == 0:
			want = PFrame
		}
		if u.Type != want {
			t.Fatalf("frame %d type %v, want %v", u.Frame, u.Type, want)
		}
		if u.SizeBytes < 0 {
			t.Fatalf("negative unit size %d", u.SizeBytes)
		}
	}
}

func TestBuildGOPRateAccuracy(t *testing.T) {
	seq := testSeq(t)
	const target = 0.6
	g, err := BuildGOP(seq, 16, 3, target)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.RateMbps(); math.Abs(got-target)/target > 0.02 {
		t.Fatalf("GOP rate %v Mbps, want ~%v (within 2%%)", got, target)
	}
}

func TestBuildGOPNoEnhancement(t *testing.T) {
	seq := testSeq(t)
	g, err := BuildGOP(seq, 8, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Units) != 8 {
		t.Fatalf("units = %d, want 8 base-layer units", len(g.Units))
	}
	for _, u := range g.Units {
		if u.Layer != 0 {
			t.Fatal("found enhancement unit with mgsLayers=0")
		}
	}
}

// TestTransmissionOrderBaseFirst: all base-layer units must precede all
// enhancement units; within a layer, anchors (I/P) come before the B frames
// that reference them, each group in display order — the decoding order the
// paper's significance-first transmission needs.
func TestTransmissionOrderBaseFirst(t *testing.T) {
	seq := testSeq(t)
	g, err := BuildGOP(seq, 16, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	order := g.TransmissionOrder()
	if len(order) != len(g.Units) {
		t.Fatal("order lost units")
	}
	isAnchor := func(u NALUnit) bool { return u.Type == IFrame || u.Type == PFrame }
	lastLayer := 0
	seenB := false
	lastFrame := -1
	for i, u := range order {
		if u.Layer < lastLayer {
			t.Fatalf("unit %d: layer %d after layer %d", i, u.Layer, lastLayer)
		}
		if u.Layer > lastLayer {
			lastLayer, seenB, lastFrame = u.Layer, false, -1
		}
		if isAnchor(u) && seenB {
			t.Fatalf("unit %d: anchor frame %d after a B frame within layer %d", i, u.Frame, u.Layer)
		}
		if !isAnchor(u) {
			if !seenB {
				lastFrame = -1 // group boundary: anchors -> Bs
			}
			seenB = true
		}
		if u.Frame <= lastFrame {
			t.Fatalf("unit %d: frame %d after frame %d within its group", i, u.Frame, lastFrame)
		}
		lastFrame = u.Frame
	}
}

func TestTransmissionOrderDoesNotMutate(t *testing.T) {
	seq := testSeq(t)
	g, _ := BuildGOP(seq, 8, 1, 0.4)
	first := g.Units[0]
	_ = g.TransmissionOrder()
	if g.Units[0] != first {
		t.Fatal("TransmissionOrder mutated GOP")
	}
}

// TestDecodablePSNRMonotone: receiving more units never lowers quality, and
// the endpoints are alpha (nothing) and the near-target PSNR (everything).
func TestDecodablePSNRMonotone(t *testing.T) {
	seq := testSeq(t)
	g, err := BuildGOP(seq, 16, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.DecodablePSNR(0); got != seq.RD.Alpha {
		t.Fatalf("PSNR with nothing received = %v, want alpha", got)
	}
	prev := 0.0
	for n := 0; n <= len(g.Units); n++ {
		cur := g.DecodablePSNR(n)
		if cur+1e-9 < prev {
			t.Fatalf("PSNR decreased at %d units: %v < %v", n, cur, prev)
		}
		prev = cur
	}
	full := g.DecodablePSNR(len(g.Units))
	want := seq.RD.PSNR(g.RateMbps())
	if math.Abs(full-want) > 0.2 {
		t.Fatalf("full PSNR %v, want ~%v", full, want)
	}
	// Out-of-range arguments clamp.
	if g.DecodablePSNR(len(g.Units)+10) != full {
		t.Fatal("over-received should clamp")
	}
	if g.DecodablePSNR(-3) != seq.RD.Alpha {
		t.Fatal("negative received should clamp")
	}
}

func TestFrameTypeString(t *testing.T) {
	if IFrame.String() != "I" || PFrame.String() != "P" || BFrame.String() != "B" {
		t.Fatal("frame type strings wrong")
	}
	if FrameType(9).String() != "FrameType(9)" {
		t.Fatal("unknown frame type string wrong")
	}
}

// TestGOPBudgetConservation: total unit bytes stay within the target budget
// (integer truncation only loses < one byte per unit).
func TestGOPBudgetConservation(t *testing.T) {
	seq := testSeq(t)
	err := quick.Check(func(gopRaw, layersRaw uint8, rateCenti uint16) bool {
		gop := int(gopRaw%32) + 1
		layers := int(layersRaw % 4)
		rate := float64(rateCenti%200+10) / 100
		g, err := BuildGOP(seq, gop, layers, rate)
		if err != nil {
			return false
		}
		budget := rate * 1e6 / 8 * float64(gop) / seq.FPS
		total := float64(g.TotalBytes())
		return total <= budget+1 && total >= budget-float64(len(g.Units))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
