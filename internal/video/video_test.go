package video

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRDModelEquation9(t *testing.T) {
	m := RDModel{Alpha: 28.2, Beta: 9.6}
	if got := m.PSNR(0); got != 28.2 {
		t.Fatalf("PSNR(0) = %v, want alpha", got)
	}
	if got := m.PSNR(1); math.Abs(got-37.8) > 1e-12 {
		t.Fatalf("PSNR(1) = %v, want 37.8", got)
	}
	if got := m.PSNR(-1); got != 28.2 {
		t.Fatalf("PSNR(-1) = %v, negative rates must clamp", got)
	}
}

func TestRDModelInverse(t *testing.T) {
	m := RDModel{Alpha: 28, Beta: 8}
	if got := m.RateFor(36); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RateFor(36) = %v, want 1", got)
	}
	if got := m.RateFor(20); got != 0 {
		t.Fatalf("RateFor below alpha = %v, want 0", got)
	}
	// Round trip property.
	err := quick.Check(func(rateCenti uint16) bool {
		r := float64(rateCenti%300) / 100
		return math.Abs(m.RateFor(m.PSNR(r))-r) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRDModelValidate(t *testing.T) {
	if err := (RDModel{Alpha: 28, Beta: 8}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RDModel{
		{Alpha: math.NaN(), Beta: 8},
		{Alpha: 28, Beta: 0},
		{Alpha: 28, Beta: -1},
		{Alpha: math.Inf(1), Beta: 8},
		{Alpha: 28, Beta: math.NaN()},
	}
	for _, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadModel) {
			t.Errorf("Validate(%+v) = %v, want ErrBadModel", m, err)
		}
	}
}

func TestStandardSequences(t *testing.T) {
	seqs := StandardSequences()
	if len(seqs) < 3 {
		t.Fatalf("only %d presets", len(seqs))
	}
	names := make(map[string]bool)
	for _, s := range seqs {
		if names[s.Name] {
			t.Fatalf("duplicate preset %q", s.Name)
		}
		names[s.Name] = true
		if err := s.RD.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", s.Name, err)
		}
		if s.Width != 352 || s.Height != 288 {
			t.Fatalf("preset %q is not CIF", s.Name)
		}
		if s.MaxRateMbps <= 0 {
			t.Fatalf("preset %q has no saturation rate", s.Name)
		}
		// Plausible PSNR ranges for CIF MGS encodings.
		if s.RD.Alpha < 20 || s.RD.Alpha > 35 {
			t.Fatalf("preset %q alpha %v implausible", s.Name, s.RD.Alpha)
		}
		if s.MaxPSNR() < s.RD.Alpha || s.MaxPSNR() > 50 {
			t.Fatalf("preset %q ceiling %v implausible", s.Name, s.MaxPSNR())
		}
	}
	for _, want := range []string{"Bus", "Mobile", "Harbor"} {
		if !names[want] {
			t.Fatalf("missing paper sequence %q", want)
		}
	}
}

func TestStandardSequencesReturnsCopy(t *testing.T) {
	a := StandardSequences()
	a[0].Name = "mutated"
	b := StandardSequences()
	if b[0].Name == "mutated" {
		t.Fatal("StandardSequences aliases internal state")
	}
}

func TestSequenceByName(t *testing.T) {
	s, err := SequenceByName("Mobile")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "Mobile" {
		t.Fatalf("got %q", s.Name)
	}
	if _, err := SequenceByName("nosuch"); !errors.Is(err, ErrUnknownSequence) {
		t.Fatalf("err = %v, want ErrUnknownSequence", err)
	}
}

func TestPaperTrio(t *testing.T) {
	trio := PaperTrio()
	if trio[0].Name != "Bus" || trio[1].Name != "Mobile" || trio[2].Name != "Harbor" {
		t.Fatalf("trio = %v, %v, %v", trio[0].Name, trio[1].Name, trio[2].Name)
	}
	// High-motion Mobile should have the lowest base quality of the trio,
	// matching the R-D ordering in the SVC literature.
	if !(trio[1].RD.Alpha < trio[0].RD.Alpha && trio[1].RD.Alpha < trio[2].RD.Alpha) {
		t.Fatal("Mobile must have the lowest alpha")
	}
}

func TestProgressRecursion(t *testing.T) {
	seq, _ := SequenceByName("Bus")
	p := NewProgress(seq)
	if p.PSNR() != seq.RD.Alpha {
		t.Fatalf("W^0 = %v, want alpha", p.PSNR())
	}
	p.AddPSNR(2.5)
	p.AddPSNR(1.5)
	if got := p.PSNR(); math.Abs(got-(seq.RD.Alpha+4)) > 1e-12 {
		t.Fatalf("W = %v, want alpha+4", got)
	}
	p.AddPSNR(-3) // ignored
	if got := p.PSNR(); math.Abs(got-(seq.RD.Alpha+4)) > 1e-12 {
		t.Fatal("negative increment changed PSNR")
	}
}

func TestProgressDeliverRate(t *testing.T) {
	seq, _ := SequenceByName("Harbor")
	p := NewProgress(seq)
	p.DeliverRate(0.5)
	want := seq.RD.Alpha + seq.RD.Beta*0.5
	if math.Abs(p.PSNR()-want) > 1e-12 {
		t.Fatalf("PSNR = %v, want %v", p.PSNR(), want)
	}
}

func TestProgressSaturation(t *testing.T) {
	seq, _ := SequenceByName("Bus")
	p := NewProgress(seq)
	p.AddPSNR(1000)
	if got := p.PSNR(); got != seq.MaxPSNR() {
		t.Fatalf("PSNR = %v, want ceiling %v", got, seq.MaxPSNR())
	}
}

func TestProgressGOPAccounting(t *testing.T) {
	seq, _ := SequenceByName("Bus")
	p := NewProgress(seq)
	p.AddPSNR(4)
	first := p.EndGOP()
	if math.Abs(first-(seq.RD.Alpha+4)) > 1e-12 {
		t.Fatalf("first GOP PSNR = %v", first)
	}
	if p.PSNR() != seq.RD.Alpha {
		t.Fatal("EndGOP must reset W to alpha")
	}
	p.AddPSNR(2)
	p.EndGOP()
	if p.CompletedGOPs() != 2 {
		t.Fatalf("CompletedGOPs = %d", p.CompletedGOPs())
	}
	wantMean := (seq.RD.Alpha + 4 + seq.RD.Alpha + 2) / 2
	if math.Abs(p.MeanPSNR()-wantMean) > 1e-12 {
		t.Fatalf("MeanPSNR = %v, want %v", p.MeanPSNR(), wantMean)
	}
}

func TestProgressMeanWithoutGOPs(t *testing.T) {
	seq, _ := SequenceByName("Bus")
	p := NewProgress(seq)
	if p.MeanPSNR() != seq.RD.Alpha {
		t.Fatal("MeanPSNR with no GOPs should be alpha")
	}
}
