// Package safeio provides a sticky-error writer for command-line and report
// output.
//
// The cmd tools emit dozens of fmt.Fprintf calls per report; checking every
// individual error buries the code in noise while checking none silently
// truncates results files. Writer records the first underlying write error
// and suppresses all subsequent writes, so callers funnel output through it
// and check Err exactly once at the end. The errdrop analyzer in
// internal/analysis recognizes this type and exempts fmt.Fprint* calls
// whose destination is a *safeio.Writer.
package safeio

import "io"

// Writer wraps an io.Writer, remembering the first write error.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps w. If w is already a *Writer it is returned unchanged, so
// helpers can re-wrap defensively without losing the shared error state.
func NewWriter(w io.Writer) *Writer {
	if sw, ok := w.(*Writer); ok {
		return sw
	}
	return &Writer{w: w}
}

// Write forwards to the underlying writer unless an earlier write failed,
// in which case it returns the recorded error without writing.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}

// Err returns the first error recorded by Write, or nil.
func (w *Writer) Err() error { return w.err }
