package safeio

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	f.n--
	return len(p), nil
}

func TestWriterPassthrough(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	fmt.Fprintf(w, "hello %d", 7)
	if w.Err() != nil {
		t.Fatalf("unexpected error: %v", w.Err())
	}
	if b.String() != "hello 7" {
		t.Fatalf("wrote %q", b.String())
	}
}

func TestWriterSticky(t *testing.T) {
	boom := errors.New("disk full")
	w := NewWriter(&failAfter{n: 1, err: boom})
	fmt.Fprintln(w, "first")
	fmt.Fprintln(w, "second")
	fmt.Fprintln(w, "third")
	if !errors.Is(w.Err(), boom) {
		t.Fatalf("Err = %v, want %v", w.Err(), boom)
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, boom) {
		t.Fatalf("write after failure: n=%d err=%v", n, err)
	}
}

func TestNewWriterIdempotent(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	if NewWriter(w) != w {
		t.Fatal("re-wrapping created a new Writer; error state would fork")
	}
}
