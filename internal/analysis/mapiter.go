package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `for range` over a map whose body accumulates into an outer
// slice without a subsequent deterministic sort, or writes output directly —
// the classic sources of run-to-run nondeterminism, since Go randomizes map
// iteration order on every run.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration that appends to a slice without a later sort, or writes output, leaking randomized order",
	Run:  runMapIter,
}

// sortCalls are the calls accepted as restoring a deterministic order after
// a map-order append.
var sortCalls = map[string]bool{
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"sort.Ints":             true,
	"sort.Strings":          true,
	"sort.Float64s":         true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

func runMapIter(pass *Pass) {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if rs, ok := n.(*ast.RangeStmt); ok && isMapType(pass.Info.TypeOf(rs.X)) {
				checkMapRange(pass, rs, enclosingBody(stack))
			}
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingBody returns the body of the innermost function on the ancestor
// stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects the body of one map-range statement for
// order-sensitive sinks.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target, ok := appendTarget(pass.Info, call, rs); ok {
			if !sortedAfter(pass, fnBody, rs, target) {
				pass.ReportFixf(call.Pos(), sortFix(pass, call, rs, target),
					"append to %s inside map iteration without a subsequent deterministic sort; map order is randomized per run", target.Name())
			}
			return true
		}
		if name, ok := outputWrite(pass.Info, call, rs); ok {
			pass.Reportf(call.Pos(), "%s inside map iteration writes output in randomized map order; collect and sort first", name)
		}
		return true
	})
}

// appendTarget reports whether call is `append(x, ...)` where x is rooted at
// a variable declared outside the range statement, returning that variable.
func appendTarget(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) (types.Object, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	root := rootIdent(call.Args[0])
	if root == nil {
		return nil, false
	}
	obj := info.ObjectOf(root)
	if obj == nil || obj.Pos() == 0 {
		return nil, false
	}
	// Declared inside the loop: per-iteration slice, order-safe.
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil, false
	}
	return obj, true
}

// sortedAfter reports whether the enclosing function body contains, after
// the range statement, a recognized sort call whose arguments reference the
// append target.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || !sortCalls[qualifiedName(fn)] {
			return true
		}
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.ObjectOf(id) == target {
					refs = true
					return false
				}
				return true
			})
			if refs {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// outputWrite reports whether call writes output: any fmt print/fprint, or a
// Write*/Print* method whose receiver lives outside the loop (a builder or
// writer created per iteration is order-safe).
func outputWrite(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	full := fn.FullName()
	if strings.HasPrefix(full, "fmt.Print") || strings.HasPrefix(full, "fmt.Fprint") {
		return full, true
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Write") && !strings.HasPrefix(name, "Print") {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if root := rootIdent(sel.X); root != nil {
			if obj := info.ObjectOf(root); obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
				return "", false
			}
		}
	}
	return qualifiedName(fn), true
}

// sortFix builds the mechanical rewrite inserting a deterministic sort of
// the append target right after the map range, when that is unambiguous:
// the target is appended to by plain name, its element type has a dedicated
// sort helper (ints, strings, float64s), and the file already imports
// package sort without renaming it.
func sortFix(pass *Pass, call *ast.CallExpr, rs *ast.RangeStmt, target types.Object) *Fix {
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || pass.Info.ObjectOf(id) != target {
		return nil
	}
	slice, ok := target.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var helper string
	switch basic.Kind() {
	case types.Int:
		helper = "sort.Ints"
	case types.String:
		helper = "sort.Strings"
	case types.Float64:
		helper = "sort.Float64s"
	default:
		return nil
	}
	if !importsSortPlain(fileAt(pass, rs.Pos())) {
		return nil
	}
	stmt := "\n" + helper + "(" + target.Name() + ")"
	return &Fix{
		Message: "insert " + helper + " after the loop",
		Edits:   []TextEdit{{Pos: rs.End(), End: rs.End(), NewText: stmt}},
	}
}

// fileAt returns the pass file containing pos.
func fileAt(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// importsSortPlain reports whether file imports "sort" under its own name.
func importsSortPlain(file *ast.File) bool {
	if file == nil {
		return false
	}
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "sort" {
			return imp.Name == nil
		}
	}
	return false
}

// qualifiedName renders pkg.Func for package functions and Type.Method for
// methods, without pointer or package-path noise.
func qualifiedName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// rootIdent unwraps selectors, indexes, stars, and parens to the base
// identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
