package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statement-level calls whose error result vanishes without
// the explicit `_ =` acknowledgment. A swallowed write error means a
// truncated results file that looks like a finished experiment.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "calls discarding an error result without handling or explicit _ = acknowledgment",
	Run:  runErrDrop,
}

// errDropExemptPrefixes are callees whose dropped error is conventionally
// acceptable: fmt printing to stdout, and the in-memory writers documented
// to never return an error.
var errDropExemptPrefixes = []string{
	"fmt.Print",           // fmt.Print, Printf, Println to stdout
	"(*strings.Builder).", // documented to always return nil errors
	"(*bytes.Buffer).",    // documented to panic rather than error
}

// stickyWriterTypes are writer types whose errors are captured internally
// and surfaced once via an Err method, so per-call checks are redundant.
// femtocr's cmd writers funnel output through safeio.Writer for exactly
// this reason.
var stickyWriterTypes = map[string]bool{
	"*strings.Builder":                true,
	"*bytes.Buffer":                   true,
	"*femtocr/internal/safeio.Writer": true,
}

func runErrDrop(pass *Pass) {
	errorType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[call]
			if !ok || !returnsError(tv.Type, errorType) {
				return true
			}
			name := "call"
			if fn := calleeFunc(pass.Info, call); fn != nil {
				name = qualifiedName(fn)
				if errDropExempt(pass, fn, call) {
					return true
				}
			}
			pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or acknowledge with _ =", name)
			return true
		})
	}
}

// returnsError reports whether t is error or a tuple containing error.
func returnsError(t types.Type, errorType types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

func errDropExempt(pass *Pass, fn *types.Func, call *ast.CallExpr) bool {
	full := fn.FullName()
	for _, prefix := range errDropExemptPrefixes {
		if strings.HasPrefix(full, prefix) {
			return true
		}
	}
	// fmt.Fprint* is exempt when the destination is a sticky or in-memory
	// writer, or the process's own stdout/stderr.
	if strings.HasPrefix(full, "fmt.Fprint") && len(call.Args) > 0 {
		dst := call.Args[0]
		if tv, ok := pass.Info.Types[dst]; ok && tv.Type != nil && stickyWriterTypes[tv.Type.String()] {
			return true
		}
		if sel, ok := ast.Unparen(dst).(*ast.SelectorExpr); ok {
			if obj, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return true
			}
		}
	}
	// Methods on sticky writers themselves.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && stickyWriterTypes[recv.Type().String()] {
		return true
	}
	return false
}
