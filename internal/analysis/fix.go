package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// FixResult describes one -fix run: the rewritten files and how many
// suggested fixes were applied or skipped (because their edits overlapped an
// already-applied rewrite).
type FixResult struct {
	Files   map[string][]byte // filename -> gofmt-formatted rewritten content
	Applied int
	Skipped int
}

// ApplyFixes applies the suggested fixes carried by diags to the source
// files they touch, working on byte offsets resolved through fset and
// re-formatting each rewritten file with go/format. Files are read from
// disk, not written: the caller decides where the output goes. Fixes whose
// edits would overlap an edit already accepted on the same file are skipped
// whole, so the result always formats.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (*FixResult, error) {
	type edit struct {
		start, end int
		text       string
	}
	perFile := make(map[string][]edit)
	res := &FixResult{Files: make(map[string][]byte)}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		var edits []edit
		file := ""
		valid := true
		for _, te := range d.Fix.Edits {
			pos, end := fset.Position(te.Pos), fset.Position(te.End)
			if pos.Filename == "" || (file != "" && pos.Filename != file) || end.Offset < pos.Offset {
				valid = false
				break
			}
			file = pos.Filename
			edits = append(edits, edit{start: pos.Offset, end: end.Offset, text: te.NewText})
		}
		if !valid {
			res.Skipped++
			continue
		}
		overlaps := false
		for _, e := range edits {
			for _, prev := range perFile[file] {
				if e.start < prev.end && prev.start < e.end {
					overlaps = true
					break
				}
				// Two pure insertions at the same offset are order-ambiguous.
				if e.start == e.end && prev.start == prev.end && e.start == prev.start {
					overlaps = true
					break
				}
			}
			if overlaps {
				break
			}
		}
		if overlaps {
			res.Skipped++
			continue
		}
		perFile[file] = append(perFile[file], edits...)
		res.Applied++
	}

	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("analysis: fix: %w", err)
		}
		// Apply back to front so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.end > len(src) {
				return nil, fmt.Errorf("analysis: fix: edit past end of %s", file)
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return nil, fmt.Errorf("analysis: fix: %s does not format after rewrite: %w", file, err)
		}
		res.Files[file] = formatted
	}
	return res, nil
}
