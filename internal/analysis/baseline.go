package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the checked-in inventory of known findings. CI compares the
// current run against it and fails only on findings not already recorded, so
// a newly tightened analyzer can land before every legacy finding is fixed.
// Entries are keyed by analyzer, module-relative file, and message — not by
// line — so unrelated edits that shift a finding up or down a file do not
// break the build.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry records that Count findings with this analyzer, file, and
// message are known and tolerated.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineVersion is the current schema version.
const baselineVersion = 1

type baselineKey struct {
	analyzer, file, message string
}

// BaselineOf builds the baseline covering diags. rel maps an absolute
// filename to its module-relative form.
func BaselineOf(diags []Diagnostic, rel func(string) string) *Baseline {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		k := baselineKey{d.Analyzer, rel(d.Pos.Filename), d.Message}
		counts[k]++
	}
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// ReadBaselineFile loads and validates a baseline file.
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Encode renders the baseline as indented JSON with a trailing newline, the
// form kept in version control.
func (b *Baseline) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Stale returns how many baselined findings no longer occur: the leftover
// entry budget after every current diagnostic has absorbed its match. A
// positive count means the baseline over-approves — the recorded findings
// were fixed and the entries should be pruned before they mask a
// regression with the same message.
func (b *Baseline) Stale(diags []Diagnostic, rel func(string) string) int {
	budget := make(map[baselineKey]int)
	for _, e := range b.Findings {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, rel(d.Pos.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
		}
	}
	stale := 0
	//femtovet:commutative -- leftover budgets are exact integer counts; their sum is the same in any iteration order
	for _, n := range budget {
		stale += n
	}
	return stale
}

// Filter returns the findings not covered by the baseline, preserving order.
// Each entry absorbs up to Count matching findings; the surplus is new.
func (b *Baseline) Filter(diags []Diagnostic, rel func(string) string) []Diagnostic {
	budget := make(map[baselineKey]int)
	for _, e := range b.Findings {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	var kept []Diagnostic
	for _, d := range diags {
		k := baselineKey{d.Analyzer, rel(d.Pos.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
