package analysis

import (
	"go/parser"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"

	"femtocr/internal/analysis/flow"
)

// The fixture harness: each testdata file is parsed and type-checked as a
// standalone package (imports resolve through the loaded module, so fixtures
// may import both stdlib and femtocr packages), one analyzer runs over it,
// and its diagnostics are matched line-by-line against `// want "regexp"`
// comments. A fixture with no want comments asserts the analyzer stays
// silent.
//
// An optional first-line directive `//femtovet:fixturepath <import path>`
// sets the package path the analyzer sees, which the path-scoped randsource
// policy keys off.

var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		moduleVal, moduleErr = LoadModule(".")
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return moduleVal
}

var (
	wantRx        = regexp.MustCompile(`// want "([^"]*)"`)
	fixturePathRx = regexp.MustCompile(`//femtovet:fixturepath (\S+)`)
)

func runFixture(t *testing.T, a *Analyzer, filename string) {
	t.Helper()
	m := loadTestModule(t)

	src, err := readFixture(filename)
	if err != nil {
		t.Fatalf("read %s: %v", filename, err)
	}
	path := "femtocr/fixture"
	if match := fixturePathRx.FindStringSubmatch(src); match != nil {
		path = match[1]
	}

	file, err := parser.ParseFile(m.Fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", filename, err)
	}
	pkg, err := m.CheckFile(path, file)
	if err != nil {
		t.Fatalf("typecheck %s: %v", filename, err)
	}

	// The fixture sees a flow index holding the whole module plus itself,
	// so module-wide unit/index annotations and interprocedural freshness
	// resolve exactly as they do in a real run.
	ix := flow.NewIndex()
	for _, p := range m.Packages {
		ix.Add(p.Path, p.Files, p.Info)
	}
	ix.Add(path, pkg.Files, pkg.Info)

	pass := &Pass{
		Analyzer: a,
		Module:   m.Path,
		Path:     path,
		Fset:     m.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		Index:    ix,
	}
	pass.collectIgnores()
	a.Run(pass)

	wants := make(map[int]*regexp.Regexp)
	for i, line := range strings.Split(src, "\n") {
		if match := wantRx.FindStringSubmatch(line); match != nil {
			rx, err := regexp.Compile(match[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, match[1], err)
			}
			wants[i+1] = rx
		}
	}

	matched := make(map[int]bool)
	for _, d := range pass.diags {
		rx, ok := wants[d.Pos.Line]
		switch {
		case !ok:
			t.Errorf("%s:%d: unexpected diagnostic: %s", filename, d.Pos.Line, d.Message)
		case !rx.MatchString(d.Message):
			t.Errorf("%s:%d: diagnostic %q does not match want %q", filename, d.Pos.Line, d.Message, rx)
		default:
			matched[d.Pos.Line] = true
		}
	}
	for line, rx := range wants {
		if !matched[line] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filename, line, rx)
		}
	}
}

func TestRandSourceFixtures(t *testing.T) {
	runFixture(t, RandSource, "testdata/randsource_flag.go")
	runFixture(t, RandSource, "testdata/randsource_clean.go")
}

func TestMapIterFixtures(t *testing.T) {
	runFixture(t, MapIter, "testdata/mapiter_flag.go")
	runFixture(t, MapIter, "testdata/mapiter_clean.go")
}

func TestFloatEqFixtures(t *testing.T) {
	runFixture(t, FloatEq, "testdata/floateq_flag.go")
	runFixture(t, FloatEq, "testdata/floateq_clean.go")
}

func TestProbRangeFixtures(t *testing.T) {
	runFixture(t, ProbRange, "testdata/probrange_flag.go")
	runFixture(t, ProbRange, "testdata/probrange_clean.go")
}

func TestErrDropFixtures(t *testing.T) {
	runFixture(t, ErrDrop, "testdata/errdrop_flag.go")
	runFixture(t, ErrDrop, "testdata/errdrop_clean.go")
}

func TestUnitCheckFixtures(t *testing.T) {
	runFixture(t, UnitCheck, "testdata/unitcheck_flag.go")
	runFixture(t, UnitCheck, "testdata/unitcheck_clean.go")
}

func TestSeedFlowFixtures(t *testing.T) {
	runFixture(t, SeedFlow, "testdata/seedflow_flag.go")
	runFixture(t, SeedFlow, "testdata/seedflow_clean.go")
}

func TestIdxDomainFixtures(t *testing.T) {
	runFixture(t, IdxDomain, "testdata/idxdomain_flag.go")
	runFixture(t, IdxDomain, "testdata/idxdomain_clean.go")
}

func TestHotPathFixtures(t *testing.T) {
	runFixture(t, HotPath, "testdata/hotpath_flag.go")
	runFixture(t, HotPath, "testdata/hotpath_clean.go")
}

func TestPoolSafeFixtures(t *testing.T) {
	runFixture(t, PoolSafe, "testdata/poolsafe_flag.go")
	runFixture(t, PoolSafe, "testdata/poolsafe_clean.go")
}

func TestAliasCheckFixtures(t *testing.T) {
	runFixture(t, AliasCheck, "testdata/aliascheck_flag.go")
	runFixture(t, AliasCheck, "testdata/aliascheck_clean.go")
}

func TestGridSlotFixtures(t *testing.T) {
	runFixture(t, GridSlot, "testdata/gridslot_flag.go")
	runFixture(t, GridSlot, "testdata/gridslot_clean.go")
}

func TestFoldOrderFixtures(t *testing.T) {
	runFixture(t, FoldOrder, "testdata/foldorder_flag.go")
	runFixture(t, FoldOrder, "testdata/foldorder_clean.go")
}

func TestSyncGuardFixtures(t *testing.T) {
	runFixture(t, SyncGuard, "testdata/syncguard_flag.go")
	runFixture(t, SyncGuard, "testdata/syncguard_clean.go")
}

func TestDirectivesFixtures(t *testing.T) {
	runFixture(t, Directives, "testdata/directives_flag.go")
}

// TestIgnoreDirective: a well-formed femtovet:ignore comment suppresses the
// named analyzer on its line and the next; a reasonless or wrongly named
// one does not.
func TestIgnoreDirective(t *testing.T) {
	runFixture(t, FloatEq, "testdata/ignore_directive.go")
}

// TestReasonlessIgnoreFlagged covers the one directives finding a fixture
// cannot express: `//femtovet:ignore floateq` with no reason at all (a want
// comment on the directive line would become part of the analyzer list).
func TestReasonlessIgnoreFlagged(t *testing.T) {
	m := loadTestModule(t)
	src := "package fixture\n\nfunc eq(a, b float64) bool {\n\treturn a == b //femtovet:ignore floateq\n}\n"
	file, err := parser.ParseFile(m.Fset, "reasonless.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := m.CheckFile("femtocr/internal/reasonless", file)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &Pass{
		Analyzer: Directives,
		Module:   m.Path,
		Path:     "femtocr/internal/reasonless",
		Fset:     m.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
	}
	pass.collectIgnores()
	Directives.Run(pass)
	if len(pass.diags) != 1 || !strings.Contains(pass.diags[0].Message, "without a reason") {
		t.Fatalf("want exactly one reasonless-ignore finding, got %v", pass.diags)
	}
}

// TestSuiteCleanOnModule is the merge gate in miniature: the analyzer suite
// must report zero findings on femtocr's own tree.
func TestSuiteCleanOnModule(t *testing.T) {
	m := loadTestModule(t)
	diags := RunAnalyzers(m, All())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
}

// suiteOnSource type-checks src as a standalone package at the given import
// path (resolving module imports) and runs the given analyzers over it with
// a full module flow index, returning the findings.
func suiteOnSource(t *testing.T, path, filename, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	m := loadTestModule(t)
	file, err := parser.ParseFile(m.Fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", filename, err)
	}
	pkg, err := m.CheckFile(path, file)
	if err != nil {
		t.Fatalf("typecheck %s: %v", filename, err)
	}
	ix := flow.NewIndex()
	for _, p := range m.Packages {
		ix.Add(p.Path, p.Files, p.Info)
	}
	ix.Add(path, pkg.Files, pkg.Info)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Module:   m.Path,
			Path:     path,
			Fset:     m.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Index:    ix,
		}
		pass.collectIgnores()
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	return diags
}

func readFixture(filename string) (string, error) {
	data, err := os.ReadFile(filename)
	return string(data), err
}
