package analysis

import (
	"go/parser"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture harness: each testdata file is parsed and type-checked as a
// standalone package (imports resolve through the loaded module, so fixtures
// may import both stdlib and femtocr packages), one analyzer runs over it,
// and its diagnostics are matched line-by-line against `// want "regexp"`
// comments. A fixture with no want comments asserts the analyzer stays
// silent.
//
// An optional first-line directive `//femtovet:fixturepath <import path>`
// sets the package path the analyzer sees, which the path-scoped randsource
// policy keys off.

var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		moduleVal, moduleErr = LoadModule(".")
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return moduleVal
}

var (
	wantRx        = regexp.MustCompile(`// want "([^"]*)"`)
	fixturePathRx = regexp.MustCompile(`//femtovet:fixturepath (\S+)`)
)

func runFixture(t *testing.T, a *Analyzer, filename string) {
	t.Helper()
	m := loadTestModule(t)

	src, err := readFixture(filename)
	if err != nil {
		t.Fatalf("read %s: %v", filename, err)
	}
	path := "femtocr/fixture"
	if match := fixturePathRx.FindStringSubmatch(src); match != nil {
		path = match[1]
	}

	file, err := parser.ParseFile(m.Fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", filename, err)
	}
	pkg, err := m.CheckFile(path, file)
	if err != nil {
		t.Fatalf("typecheck %s: %v", filename, err)
	}

	pass := &Pass{
		Analyzer: a,
		Module:   m.Path,
		Path:     path,
		Fset:     m.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
	}
	pass.collectIgnores()
	a.Run(pass)

	wants := make(map[int]*regexp.Regexp)
	for i, line := range strings.Split(src, "\n") {
		if match := wantRx.FindStringSubmatch(line); match != nil {
			rx, err := regexp.Compile(match[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, match[1], err)
			}
			wants[i+1] = rx
		}
	}

	matched := make(map[int]bool)
	for _, d := range pass.diags {
		rx, ok := wants[d.Pos.Line]
		switch {
		case !ok:
			t.Errorf("%s:%d: unexpected diagnostic: %s", filename, d.Pos.Line, d.Message)
		case !rx.MatchString(d.Message):
			t.Errorf("%s:%d: diagnostic %q does not match want %q", filename, d.Pos.Line, d.Message, rx)
		default:
			matched[d.Pos.Line] = true
		}
	}
	for line, rx := range wants {
		if !matched[line] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filename, line, rx)
		}
	}
}

func TestRandSourceFixtures(t *testing.T) {
	runFixture(t, RandSource, "testdata/randsource_flag.go")
	runFixture(t, RandSource, "testdata/randsource_clean.go")
}

func TestMapIterFixtures(t *testing.T) {
	runFixture(t, MapIter, "testdata/mapiter_flag.go")
	runFixture(t, MapIter, "testdata/mapiter_clean.go")
}

func TestFloatEqFixtures(t *testing.T) {
	runFixture(t, FloatEq, "testdata/floateq_flag.go")
	runFixture(t, FloatEq, "testdata/floateq_clean.go")
}

func TestProbRangeFixtures(t *testing.T) {
	runFixture(t, ProbRange, "testdata/probrange_flag.go")
	runFixture(t, ProbRange, "testdata/probrange_clean.go")
}

func TestErrDropFixtures(t *testing.T) {
	runFixture(t, ErrDrop, "testdata/errdrop_flag.go")
	runFixture(t, ErrDrop, "testdata/errdrop_clean.go")
}

// TestIgnoreDirective: a femtovet:ignore comment suppresses the named
// analyzer on its line and the next.
func TestIgnoreDirective(t *testing.T) {
	runFixture(t, FloatEq, "testdata/ignore_directive.go")
}

// TestSuiteCleanOnModule is the merge gate in miniature: the analyzer suite
// must report zero findings on femtocr's own tree.
func TestSuiteCleanOnModule(t *testing.T) {
	m := loadTestModule(t)
	diags := RunAnalyzers(m, All())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
}

func readFixture(filename string) (string, error) {
	data, err := os.ReadFile(filename)
	return string(data), err
}
