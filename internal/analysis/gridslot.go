package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"femtocr/internal/analysis/flow"
)

// GridSlot machine-checks the deterministic-parallelism contract of
// experiments.runGrid: a worker closure may write only into its own
// preallocated slot — an element store keyed by the task's own index — and
// must leave every shared accumulator untouched until the post-join
// barrier. The same slot-ownership rule applies to every closure launched
// with `go`, keyed by the closure's own parameters. Writes that are safe
// for an out-of-band reason (an atomic dispatch counter claiming each
// index exactly once, external locking) carry an explicit
// //femtovet:shared -- <reason> on the write or on the variable's
// declaration. Method calls on sync/atomic values and sync.WaitGroup are
// synchronization, not shared-state traffic, and pass untouched.
var GridSlot = &Analyzer{
	Name: "gridslot",
	Doc:  "deterministic-parallelism contract: grid workers and go closures must write only their own task-indexed slot; shared writes need sync/atomic or //femtovet:shared",
	Run:  runGridSlot,
}

func runGridSlot(pass *Pass) {
	shared := sharedDirectiveLines(pass)
	for _, file := range pass.Files {
		// Closures handed to runGrid/RunGrid: the task index is the
		// closure's own parameter.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := flow.Callee(pass.Info, call)
			if fn == nil || (fn.Name() != "runGrid" && fn.Name() != "RunGrid") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkWorkerClosure(pass, lit, shared, "grid worker")
				}
			}
			return true
		})
		// Closures launched with `go`, anywhere in the file (including
		// inside grid workers, which skip them in their own summaries).
		for _, lit := range flow.GoClosures(file) {
			checkWorkerClosure(pass, lit, shared, "goroutine")
		}
	}
}

// checkWorkerClosure summarizes one worker closure and reports the
// accesses that break slot ownership.
func checkWorkerClosure(pass *Pass, lit *ast.FuncLit, shared map[string]map[int]bool, kind string) {
	cs := flow.SummarizeClosure(pass.Info, lit, flow.LitParams(pass.Info, lit), true)
	for _, use := range cs.Uses {
		if isSyncVar(use.Var) {
			continue
		}
		switch {
		case use.Write && !use.ByIndex:
			if sharedExempt(pass, shared, use.Pos, use.Var) {
				continue
			}
			if isBoolVar(use.Var) {
				pass.Reportf(use.Pos,
					"%s writes captured flag %s without synchronization: a non-atomic flag races with sibling tasks; use atomic.Bool or annotate //femtovet:shared -- <reason>",
					kind, use.Var.Name())
				continue
			}
			pass.Reportf(use.Pos,
				"%s writes captured %s, which is not indexed by the task's own index: each task may write only its own slot (xs[i] = ...); annotate //femtovet:shared -- <reason> if synchronization makes this exclusive",
				kind, use.Var.Name())
		case !use.Write && !use.LenCap && cs.Written[use.Var] && !use.ByIndex:
			if sharedExempt(pass, shared, use.Pos, use.Var) {
				continue
			}
			pass.Reportf(use.Pos,
				"%s reads captured %s, which tasks also write: a cross-slot read races with sibling tasks before the post-join barrier; aggregate after the join in index order",
				kind, use.Var.Name())
		}
	}
}

// sharedDirectiveLines collects the effective //femtovet:shared directives
// (reason required) by file and line; a directive covers its own line and
// the next, like ignore.
func sharedDirectiveLines(pass *Pass) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok || d.Kind != "shared" || d.Reason == "" {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
				out[pos.Filename][pos.Line+1] = true
			}
		}
	}
	return out
}

// sharedExempt reports whether a use is covered by a shared directive on
// the access itself or on the captured variable's declaration.
func sharedExempt(pass *Pass, shared map[string]map[int]bool, usePos token.Pos, v *types.Var) bool {
	use := pass.Fset.Position(usePos)
	if lines, ok := shared[use.Filename]; ok && lines[use.Line] {
		return true
	}
	decl := pass.Fset.Position(v.Pos())
	if lines, ok := shared[decl.Filename]; ok && lines[decl.Line] {
		return true
	}
	return false
}

// isSyncVar reports whether the variable's type belongs to sync or
// sync/atomic: method traffic on those values is synchronization by
// definition, not unshielded shared state.
func isSyncVar(v *types.Var) bool {
	for _, name := range []string{"WaitGroup", "Mutex", "RWMutex", "Once"} {
		if flow.IsNamedType(v.Type(), "sync", name) {
			return true
		}
	}
	for _, name := range []string{"Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value"} {
		if flow.IsNamedType(v.Type(), "sync/atomic", name) {
			return true
		}
	}
	return false
}

// isBoolVar reports whether the variable is a plain (non-atomic) boolean.
func isBoolVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
