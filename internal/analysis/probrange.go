package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// ProbRange flags numeric constants outside [0, 1] flowing into parameters
// or struct fields whose names follow probability conventions. A single
// out-of-range posterior corrupts the Bayesian fusion (eqs. 5-7) and every
// collision-bound access decision downstream (eqs. 8-9).
var ProbRange = &Analyzer{
	Name: "probrange",
	Doc:  "numeric constants outside [0,1] passed to probability-named parameters or fields",
	Run:  runProbRange,
}

// probWords are the name segments (after camel-case and underscore
// splitting) that mark a value as a probability.
var probWords = map[string]bool{
	"prob":          true,
	"probability":   true,
	"probabilities": true,
	"pfa":           true,
	"pmd":           true,
	"posterior":     true,
	"posteriors":    true,
	"alpha":         true,
	"beta":          true,
}

func runProbRange(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkProbCall(pass, x)
			case *ast.CompositeLit:
				checkProbComposite(pass, x)
			}
			return true
		})
	}
}

func checkProbCall(pass *Pass, call *ast.CallExpr) {
	funTV, ok := pass.Info.Types[ast.Unparen(call.Fun)]
	if !ok || funTV.IsType() {
		return // type conversion, not a call
	}
	sig, ok := funTV.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= params.Len()-1 {
			idx = params.Len() - 1
		}
		if idx >= params.Len() {
			break
		}
		name := params.At(idx).Name()
		if !probName(name, false) {
			continue
		}
		if v, out := constOutOfUnit(pass.Info, arg); out {
			pass.Reportf(arg.Pos(), "constant %s passed to probability parameter %q; probabilities must lie in [0,1]", v, name)
		}
	}
}

func checkProbComposite(pass *Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !probName(key.Name, true) {
			continue
		}
		if v, out := constOutOfUnit(pass.Info, kv.Value); out {
			pass.Reportf(kv.Value.Pos(), "constant %s assigned to probability field %q; probabilities must lie in [0,1]", v, key.Name)
		}
	}
}

// probName reports whether a parameter or field name follows the
// probability conventions. The exported struct fields Alpha and Beta are
// exempt: in this codebase they are the rate-distortion model coefficients
// of eq. (9) (PSNR offsets and slopes, legitimately outside [0,1]), whereas
// lowercase alpha/beta parameters follow the probability convention.
func probName(name string, isField bool) bool {
	if isField && (name == "Alpha" || name == "Beta") {
		return false
	}
	for _, w := range splitWords(name) {
		if probWords[w] {
			return true
		}
	}
	return false
}

// splitWords lowers a camelCase, SCREAMING, or snake_case identifier into
// its word segments: "SensingPFA" -> [sensing pfa], "p_fa" -> [p fa].
func splitWords(name string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case unicode.IsUpper(r):
			// Boundary at lower->Upper, and at the last upper of an
			// acronym run followed by a lower (e.g. "PFAValue" -> PFA Value).
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]) && unicode.IsUpper(runes[i-1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

// constOutOfUnit reports whether expr is a compile-time numeric constant
// outside [0, 1], returning its rendering.
func constOutOfUnit(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return "", false
	}
	v := tv.Value
	if v.Kind() != constant.Int && v.Kind() != constant.Float {
		return "", false
	}
	if constant.Compare(v, token.LSS, constant.MakeInt64(0)) ||
		constant.Compare(v, token.GTR, constant.MakeInt64(1)) {
		// String() renders floats as short decimals (1.7), where
		// ExactString() would print the exact rational
		// (7656119366529843/4503599627370496) — useless in a diagnostic.
		return v.String(), true
	}
	return "", false
}
