package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"femtocr/internal/analysis/flow"
)

// AliasCheck machine-checks the buffer-ownership contracts of the *Into
// family that previously lived in prose: //femtovet:borrows names the
// parameters a function may only use for the duration of the call, and
// //femtovet:owns the ones whose memory it may keep or hand back (the
// AppendAvailable pattern, where the returned slice is rooted in the
// caller's buf). A borrowed parameter must not be returned, stored into a
// global or a receiver field, or passed to a callee whose flow summary
// retains it (sync.Pool.Put included). Exported functions whose name ends
// in Into are the in-place API surface and must annotate every
// reference-carrying parameter so new engines inherit the contracts by
// construction.
var AliasCheck = &Analyzer{
	Name: "aliascheck",
	Doc:  "ownership contracts on *Into parameters: borrowed buffers returned, stored, or retained; exported *Into functions without owns/borrows annotations",
	Run:  runAliasCheck,
}

func runAliasCheck(pass *Pass) {
	if pass.Index == nil {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dirs := funcDirectives(fd)
			checkIntoCoverage(pass, fd, dirs)
			if len(dirs.Borrows) > 0 {
				checkBorrows(pass, fd, dirs)
			}
		}
	}
}

// checkIntoCoverage enforces that exported *Into functions annotate every
// reference-carrying parameter.
func checkIntoCoverage(pass *Pass, fd *ast.FuncDecl, dirs funcDirs) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || !strings.HasSuffix(name, "Into") {
		return
	}
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, pname := range field.Names {
			v, ok := pass.Info.Defs[pname].(*types.Var)
			if !ok || !flow.CarriesRef(v.Type()) {
				continue
			}
			if dirs.Owns[pname.Name] || dirs.Borrows[pname.Name] {
				continue
			}
			pass.Reportf(pname.Pos(), "exported in-place API %s: parameter %q carries references but has no ownership annotation; add //femtovet:owns or //femtovet:borrows to the doc comment", name, pname.Name)
		}
	}
}

// checkBorrows tracks each borrowed parameter through the body and
// reports every way it could outlive the call.
func checkBorrows(pass *Pass, fd *ast.FuncDecl, dirs funcDirs) {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	body := pass.Index.FuncOf(obj)
	if body == nil {
		return
	}
	tr := flow.NewTracker(pass.Index.Summaries(), body)

	// Register receiver and every parameter so EvStoreParam destinations
	// resolve; only the borrowed bits are reported.
	type src struct {
		name     string
		borrowed bool
		recv     bool
	}
	var srcs []src
	var recvMask uint64
	addVar := func(name *ast.Ident, recv bool) {
		v, _ := pass.Info.Defs[name].(*types.Var)
		bit := tr.AddSourceVar(v)
		srcs = append(srcs, src{name: name.Name, borrowed: dirs.Borrows[name.Name], recv: recv})
		if recv {
			recvMask |= 1 << bit
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		addVar(fd.Recv.List[0].Names[0], true)
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, pname := range field.Names {
				addVar(pname, false)
			}
		}
	}
	tr.Solve()

	for _, ev := range tr.Events() {
		for bit, s := range srcs {
			if !s.borrowed || ev.Mask&(1<<bit) == 0 {
				continue
			}
			switch ev.Kind {
			case flow.EvReturn:
				pass.Reportf(ev.Pos, "borrowed parameter %q flows into a return value: a borrowed buffer must not outlive the call; annotate //femtovet:owns %s if ownership transfers to the caller", s.name, s.name)
			case flow.EvStoreGlobal:
				pass.Reportf(ev.Pos, "borrowed parameter %q stored into package-level state: the reference outlives the call", s.name)
			case flow.EvStoreParam:
				if ev.DestMask&recvMask != 0 {
					pass.Reportf(ev.Pos, "borrowed parameter %q stored into a receiver field: the object outlives the call; copy the data or annotate //femtovet:owns", s.name)
				}
			case flow.EvRetainCall:
				callee := "a callee"
				if ev.Callee != nil {
					callee = ev.Callee.Name()
				}
				pass.Reportf(ev.Pos, "borrowed parameter %q passed to %s, which retains its argument (pool or long-lived store)", s.name, callee)
			}
		}
	}
}
