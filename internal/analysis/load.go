package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"femtocr/internal/analysis/flow"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is a fully loaded and type-checked module. Packages are ordered
// deterministically (dependencies before dependents, ties broken by import
// path).
type Module struct {
	Root     string // absolute module root directory
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package

	byPath    map[string]*Package
	std       types.ImporterFrom
	flowIndex *flow.Index // memoized module-wide function index
}

// LoadModule locates the module containing dir, parses every non-test Go
// file outside testdata/vendor directories, and type-checks all packages in
// dependency order. The standard library is type-checked from $GOROOT source
// so the loader needs no export data, no network, and no external tooling.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	src := importer.ForCompiler(m.Fset, "source", nil)
	from, ok := src.(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	m.std = from

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	type parsed struct {
		path  string
		dir   string
		files []*ast.File
		deps  []string
	}
	byPath := make(map[string]*parsed)
	var paths []string
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(m.Fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		p := &parsed{path: path, dir: d, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.deps = append(p.deps, ip)
				}
			}
		}
		byPath[path] = p
		paths = append(paths, path)
	}
	sort.Strings(paths)

	// Topological order over module-local imports.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		p := byPath[path]
		deps := append([]string(nil), p.deps...)
		sort.Strings(deps)
		for _, dep := range deps {
			if byPath[dep] == nil {
				return fmt.Errorf("analysis: %s imports %s, which has no Go files in the module", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	for _, path := range order {
		p := byPath[path]
		pkg, info, err := m.check(path, p.dir, p.files)
		if err != nil {
			return nil, err
		}
		lp := &Package{Path: path, Dir: p.dir, Files: p.files, Pkg: pkg, Info: info}
		m.Packages = append(m.Packages, lp)
		m.byPath[path] = lp
	}
	return m, nil
}

// RelFile returns filename relative to the module root with forward
// slashes, the form used in baseline, JSON, and SARIF output so the files
// stay machine-independent. Filenames outside the root pass through
// unchanged.
func (m *Module) RelFile(filename string) string {
	rel, err := filepath.Rel(m.Root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// Import resolves an import path: module-local packages come from the loaded
// module, everything else from the standard-library source importer. Module
// satisfies types.Importer so fixture tests can type-check files that import
// module packages.
func (m *Module) Import(path string) (*types.Package, error) {
	if lp, ok := m.byPath[path]; ok {
		return lp.Pkg, nil
	}
	return m.std.ImportFrom(path, m.Root, 0)
}

// check type-checks one package's files.
func (m *Module) check(path, dir string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: m,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, m.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, fmt.Errorf("analysis: type errors in %s (dir %s): %v", path, dir, typeErrs[0])
	}
	return pkg, info, nil
}

// CheckFile type-checks a single standalone file as its own package with the
// given import path, resolving imports through the module. The analyzer
// fixture harness uses this.
func (m *Module) CheckFile(path string, file *ast.File) (*Package, error) {
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: m,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, m.Fset, []*ast.File{file}, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Files: []*ast.File{file}, Pkg: pkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// findModule ascends from dir to the enclosing go.mod and returns the module
// root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// packageDirs lists directories under root that contain non-test Go files,
// skipping testdata, vendor, and hidden or underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory in sorted filename
// order, so file sets and positions are stable run to run.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
