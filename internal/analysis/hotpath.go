package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"femtocr/internal/analysis/flow"
)

// HotPath keeps the per-slot allocation-free guarantee of the pooled
// solver workspaces checkable at vet time instead of bench time. Functions
// annotated //femtovet:hotpath — the SolveInto implementations, the greedy
// allocator, StepInPlace, DecideInto, AssignInto, SampleGainsInto, and the
// per-slot engine steps — plus everything statically reachable from them
// through the flow call graph must not allocate in steady state: no
// make/new outside the cap-growth idiom, no escaping composite literals or
// capturing closures, no appends that grow a fresh backing array every
// call, no fmt formatting, interface boxing, map iteration, or string
// concatenation. Error-construction inside return statements is exempt by
// convention (errors abort the slot), and //femtovet:coldpath marks
// constructors and diagnostics the walk must not enter. The AllocsPerRun
// pins in internal/core/alloc_test.go remain the runtime backstop for
// whatever escape analysis this check cannot see.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "allocation-causing constructs reachable from //femtovet:hotpath roots: make/new, escaping literals and closures, fresh appends, fmt, boxing, map ranges",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	ix := pass.Index
	if ix == nil {
		return
	}
	hp := &hotPath{pass: pass}
	hp.reach()
	inPass := make(map[*ast.File]bool, len(pass.Files))
	for _, f := range pass.Files {
		inPass[f] = true
	}
	for _, fn := range hp.order {
		body := ix.FuncOf(fn)
		if body == nil || !inPass[body.File] {
			continue
		}
		hp.checkFunc(fn, body)
	}
}

type hotPath struct {
	pass   *Pass
	roots  map[*types.Func]bool
	cold   map[*types.Func]bool
	rootOf map[*types.Func]*types.Func // reachable fn -> the root that discovered it
	order  []*types.Func               // reachable fns in deterministic discovery order
}

// reach collects the module-wide hotpath roots and coldpath stops, then
// walks the static call graph breadth-first. Calls through interfaces and
// func values do not resolve, which is exactly why every SolveInto
// implementation carries its own root annotation.
func (hp *hotPath) reach() {
	ix := hp.pass.Index
	hp.roots = make(map[*types.Func]bool)
	hp.cold = make(map[*types.Func]bool)
	hp.rootOf = make(map[*types.Func]*types.Func)
	for _, pkg := range ix.Packages() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				dirs := funcDirectives(fd)
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if dirs.Cold {
					hp.cold[obj] = true
				} else if dirs.Hot {
					hp.roots[obj] = true
				}
			}
		}
	}
	cg := ix.CallGraph()
	var queue []*types.Func
	for _, pkg := range ix.Packages() { // re-walk for deterministic root order
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && hp.roots[obj] {
						if _, seen := hp.rootOf[obj]; !seen {
							hp.rootOf[obj] = obj
							hp.order = append(hp.order, obj)
							queue = append(queue, obj)
						}
					}
				}
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, site := range cg.CalleesOf(fn) {
			callee := site.Callee
			if hp.cold[callee] || ix.FuncOf(callee) == nil {
				continue
			}
			if _, seen := hp.rootOf[callee]; seen {
				continue
			}
			hp.rootOf[callee] = hp.rootOf[fn]
			hp.order = append(hp.order, callee)
			queue = append(queue, callee)
		}
	}
}

// checkFunc runs the allocation checks over one hot-reachable body. A
// first pass registers the escape-gated candidates (composite literals
// and capturing closures) with a flow tracker; the second pass walks with
// an ancestor stack and reports.
func (hp *hotPath) checkFunc(fn *types.Func, body *flow.Func) {
	info := body.Info
	tr := flow.NewTracker(hp.pass.Index.Summaries(), body)
	compBit := make(map[*ast.CompositeLit]int)
	litBit := make(map[*ast.FuncLit]int)
	ast.Inspect(body.Decl, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					if _, dup := compBit[cl]; !dup {
						compBit[cl] = tr.AddSourceExpr(cl)
					}
				}
			}
		case *ast.CompositeLit:
			if isSliceOrMap(info.TypeOf(x)) && len(x.Elts) > 0 {
				if _, dup := compBit[x]; !dup {
					compBit[x] = tr.AddSourceExpr(x)
				}
			}
		case *ast.FuncLit:
			if captures(info, x) {
				litBit[x] = tr.AddSourceExpr(x)
			}
		}
		return true
	})
	tr.Solve()

	where := hp.where(fn)
	var stack []ast.Node
	ast.Inspect(body.Decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if exemptPath(info, stack) {
			stack = append(stack, n)
			return true
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			hp.checkCall(x, info, stack, where)
		case *ast.CompositeLit:
			if bit, ok := compBit[x]; ok && tr.EscapeOf(bit) {
				hp.pass.Reportf(x.Pos(), "escaping composite literal allocates on every call of %s; reuse a workspace buffer or hoist construction behind //femtovet:coldpath", where)
			}
		case *ast.FuncLit:
			if bit, ok := litBit[x]; ok && tr.EscapeOf(bit) {
				hp.pass.Reportf(x.Pos(), "escaping closure captures variables and allocates on every call of %s; call it directly or hoist it off the hot path", where)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					hp.pass.Reportf(x.Pos(), "range over map in %s: iteration order is randomized and the walk defeats the allocation-free contract; iterate a cached index slice", where)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				if tv, ok := info.Types[ast.Expr(x)]; !ok || tv.Value == nil { // constant folding is free
					hp.pass.Reportf(x.Pos(), "string concatenation allocates on every call of %s; format off the hot path", where)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// where labels a finding with the containing function and the hotpath
// root that reaches it.
func (hp *hotPath) where(fn *types.Func) string {
	root := hp.rootOf[fn]
	if root == nil || root == fn {
		return fn.Name() + " (//femtovet:hotpath)"
	}
	return fn.Name() + " (hot: reachable from " + root.Name() + ")"
}

// checkCall covers the call-shaped rules: make/new, fmt formatting, and
// implicit interface boxing of arguments.
func (hp *hotPath) checkCall(call *ast.CallExpr, info *types.Info, stack []ast.Node, where string) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				if !capGuarded(stack) {
					hp.pass.Reportf(call.Pos(), "make allocates on every call of %s; reuse a workspace buffer or guard with the cap-growth idiom (if cap(buf) >= n { return buf[:n] })", where)
				}
			case "new":
				hp.pass.Reportf(call.Pos(), "new allocates on every call of %s; take the value from a pooled workspace or a //femtovet:coldpath constructor", where)
			case "append":
				if len(call.Args) > 0 && hp.freshAppendDest(call.Args[0], info, stack) {
					hp.pass.Reportf(call.Pos(), "append to a fresh local in %s grows a new backing array every call; append into a workspace buffer or a result field", where)
				}
			}
			return
		}
	}
	fn := flow.Callee(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		hp.pass.Reportf(call.Pos(), "fmt.%s formats (and allocates) on every call of %s; hot paths return sentinel errors and format off-slot", fn.Name(), where)
		return
	}
	hp.checkBoxing(call, info, where)
}

// checkBoxing flags arguments whose concrete non-pointer value is
// implicitly converted to an interface parameter — the conversion heap-
// boxes the value on every call.
func (hp *hotPath) checkBoxing(call *ast.CallExpr, info *types.Info, where string) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if _, ellipsis := arg.(*ast.Ellipsis); ellipsis {
				continue
			}
			st, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isUntypedNil(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue // no box: already boxed, or pointer fits the word
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants convert at compile time into static descriptors
		}
		hp.pass.Reportf(arg.Pos(), "argument boxes a %s into an interface on every call of %s; pass a pointer or keep the callee concrete", at.String(), where)
	}
}

// freshAppendDest reports whether the append destination is a plain local
// whose every definition is fresh (nil, make, literal, or self-append) —
// the pattern that regrows a backing array on each invocation. Appends
// into parameters, fields, and pre-grown workspace buffers are the
// sanctioned idiom and stay silent.
func (hp *hotPath) freshAppendDest(dest ast.Expr, info *types.Info, stack []ast.Node) bool {
	e := ast.Unparen(dest)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false // selector/index destinations live in caller-owned memory
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() || isGlobalVar(v) || isParamOf(v, stack) {
		return false
	}
	fresh := true
	root := outermostFuncDecl(stack)
	if root == nil {
		return false
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				for _, lhs := range x.Lhs {
					if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.ObjectOf(lid) == v {
						fresh = false // tuple-assigned from a call: unknowable
					}
				}
				return true
			}
			for i, lhs := range x.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || info.ObjectOf(lid) != v {
					continue
				}
				if !freshDef(info, x.Rhs[i], v) {
					fresh = false
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if info.ObjectOf(name) == v && i < len(x.Values) && !freshDef(info, x.Values[i], v) {
					fresh = false
				}
			}
		case *ast.RangeStmt:
			if kid, ok := ast.Unparen(x.Key).(*ast.Ident); ok && info.ObjectOf(kid) == v {
				fresh = false
			}
			if vid, ok := ast.Unparen(x.Value).(*ast.Ident); ok && info.ObjectOf(vid) == v {
				fresh = false
			}
		}
		return true
	})
	return fresh
}

// freshDef reports whether one defining expression keeps the variable
// fresh: nil, make, a literal, or an append rooted at the variable itself.
func freshDef(info *types.Info, rhs ast.Expr, v *types.Var) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				switch id.Name {
				case "make":
					return true
				case "append":
					if len(x.Args) > 0 {
						a0 := ast.Unparen(x.Args[0])
						if sl, ok := a0.(*ast.SliceExpr); ok {
							a0 = ast.Unparen(sl.X)
						}
						if aid, ok := a0.(*ast.Ident); ok && info.ObjectOf(aid) == v {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// capGuarded reports whether the construct sits under or after a
// cap-comparison if-statement in its enclosing blocks — the sanctioned
// amortized-growth idiom (growF and the inline cap checks).
func capGuarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if condContainsCap(anc.Cond) {
				return true
			}
		case *ast.BlockStmt:
			// Scan statements preceding the one on the ancestor path.
			var child ast.Node
			if i+1 < len(stack) {
				child = stack[i+1]
			}
			for _, stmt := range anc.List {
				if stmt == child {
					break
				}
				if ifs, ok := stmt.(*ast.IfStmt); ok && condContainsCap(ifs.Cond) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // do not look past the function boundary
		}
	}
	return false
}

func condContainsCap(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// exemptPath reports whether the ancestor stack places the node on a cold
// path by convention: inside a return statement that yields a non-nil
// error, or inside a panic call.
func exemptPath(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ReturnStmt:
			for _, res := range anc.Results {
				t := info.TypeOf(res)
				if t != nil && isErrorType(t) && !isNilIdent(res) {
					return true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(anc.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if ok {
		return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	if iface, ok := t.(*types.Interface); ok {
		return iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSliceOrMap(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// captures reports whether a func literal references any variable
// declared outside itself; capture-free closures are static and free.
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !isGlobalVar(v) && !v.IsField() {
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				found = true
			}
		}
		return !found
	})
	return found
}

func isGlobalVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isParamOf reports whether v is a parameter, receiver, or named result
// of any function declaration or literal on the stack.
func isParamOf(v *types.Var, stack []ast.Node) bool {
	for _, n := range stack {
		var ft *ast.FuncType
		var recv *ast.FieldList
		switch x := n.(type) {
		case *ast.FuncDecl:
			ft, recv = x.Type, x.Recv
		case *ast.FuncLit:
			ft = x.Type
		default:
			continue
		}
		if fieldListHas(recv, v) || fieldListHas(ft.Params, v) || fieldListHas(ft.Results, v) {
			return true
		}
	}
	return false
}

func fieldListHas(fl *ast.FieldList, v *types.Var) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			if name.Pos() == v.Pos() && name.Name == v.Name() {
				return true
			}
		}
	}
	return false
}

// outermostFuncDecl returns the function declaration on the stack, even
// when the construct sits inside a nested func literal.
func outermostFuncDecl(stack []ast.Node) ast.Node {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
