//femtovet:fixturepath femtocr/internal/gridfixtureclean

// Closures that honor the deterministic-parallelism contract: writes land
// only in the task's own slot (directly or through an index-derived
// local), shared traffic goes through sync/atomic, size probes via len are
// not data reads, and out-of-band-exclusive writes carry a
// //femtovet:shared reason on the write or the declaration.
package fixture

import (
	"sync"
	"sync/atomic"
)

func runGrid(n, workers int, do func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := do(i); err != nil {
			return err
		}
	}
	return nil
}

func ownSlots(n int) []float64 {
	scale := 2.5
	xs := make([]float64, n)
	_ = runGrid(n, 2, func(i int) error {
		r := i
		if i >= len(xs) {
			return nil
		}
		xs[r] = scale * float64(i)
		return nil
	})
	return xs
}

func atomicShared(n int) int64 {
	var total atomic.Int64
	var done atomic.Bool
	xs := make([]int, n)
	_ = runGrid(n, 2, func(i int) error {
		xs[i] = i
		total.Add(int64(i))
		if i == n-1 {
			done.Store(true)
		}
		return nil
	})
	if done.Load() {
		return total.Load()
	}
	return 0
}

func sharedOnDecl(n int) int {
	//femtovet:shared -- the caller holds a lock around the whole sweep, so these writes are exclusive
	hits := 0
	xs := make([]int, n)
	_ = runGrid(n, 2, func(i int) error {
		xs[i] = i
		hits++
		return nil
	})
	return hits
}

func sharedOnWrite(n int) int {
	total := 0
	xs := make([]int, n)
	_ = runGrid(n, 2, func(i int) error {
		xs[i] = i
		total += i //femtovet:shared -- workers=1 in every caller of this helper, so the sweep is sequential
		return nil
	})
	return total
}

func waitGroupPool(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			out[j] = j
		}(j)
	}
	wg.Wait()
	return out
}
