//femtovet:fixturepath femtocr/internal/aliasfixtureclean

// Contracts the analyzer must accept: borrowed buffers used only for the
// duration of the call, an owned buffer that transfers back to the caller
// (the AppendAvailable pattern), unexported helpers outside the coverage
// rule, and exported functions that are not part of the *Into surface.
package fixture

// ScaleInto writes 2*src into dst and keeps neither.
//
//femtovet:borrows dst, src
func ScaleInto(dst, src []float64) {
	for i := range src {
		dst[i] = 2 * src[i]
	}
}

// GrowInto owns buf: the returned slice is rooted in the caller's buffer.
//
//femtovet:owns buf
func GrowInto(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// SumInto mixes value parameters (no annotation needed) with a borrowed one.
//
//femtovet:borrows out
func SumInto(out []float64, scale float64) {
	for i := range out {
		out[i] *= scale
	}
}

// fillInto is unexported: outside the coverage rule.
func fillInto(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// Checksum is exported but not an *Into function: no annotation required.
func Checksum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
