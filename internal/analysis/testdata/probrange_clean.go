//femtovet:fixturepath femtocr/internal/sensing

// Clean: in-range constants, runtime values, non-probability parameters,
// and the exported rate-distortion Alpha/Beta fields (PSNR coefficients,
// legitimately above 1) are all acceptable.
package fixture

type Detector struct {
	PFA float64
	PMD float64
}

type RateDistortion struct {
	Alpha float64
	Beta  float64
}

func setFalseAlarm(pfa float64) Detector {
	return Detector{PFA: pfa, PMD: 0.3}
}

func scale(gainDB float64) float64 {
	return gainDB * 10
}

func ok(measured float64) float64 {
	d := setFalseAlarm(0.05)
	rd := RateDistortion{Alpha: 30.5, Beta: 12.8}
	_ = setFalseAlarm(measured)
	return d.PMD + rd.Alpha + scale(40)
}
