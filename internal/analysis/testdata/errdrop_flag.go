//femtovet:fixturepath femtocr/cmd/fixture

// Seeded violations: statement-level calls whose error result vanishes.
package fixture

import (
	"fmt"
	"os"
)

func report(f *os.File, value float64) {
	fmt.Fprintf(f, "value = %v\n", value) // want "error result of fmt.Fprintf is silently discarded"
	f.Close()                             // want "error result of File.Close is silently discarded"
}

func multi(f *os.File) (int, error) {
	return f.WriteString("x")
}

func drop(f *os.File) {
	multi(f) // want "error result of fixture.multi is silently discarded"
}
