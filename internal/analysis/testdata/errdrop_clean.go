//femtovet:fixturepath femtocr/cmd/fixture

// Clean: handled errors, explicit _ = acknowledgments, stdout printing,
// in-memory writers, and the safeio sticky-error funnel.
package fixture

import (
	"fmt"
	"io"
	"os"
	"strings"

	"femtocr/internal/safeio"
)

func ok(f *os.File, sink io.Writer) error {
	if _, err := fmt.Fprintln(f, "checked"); err != nil {
		return err
	}
	_ = f.Close()

	fmt.Println("stdout is exempt")
	fmt.Fprintln(os.Stderr, "stderr too")

	var b strings.Builder
	b.WriteString("in-memory writers never fail")
	fmt.Fprintf(&b, "%d", 7)

	w := safeio.NewWriter(sink)
	fmt.Fprintln(w, b.String())
	return w.Err()
}
