//femtovet:fixturepath femtocr/internal/seedfixture

// Seeded violations: orphan streams, a hard-coded root seed in a library
// package, streams crossing into goroutines, and duplicate Split labels.
package fixture

import "femtocr/internal/rng"

type holder struct {
	s rng.Stream // want "value-typed rng.Stream field starts as an orphan zero stream"
}

func orphanVar() *rng.Stream {
	var s rng.Stream // want "orphan rng.Stream: zero-value var"
	return &s
}

func orphanLit() *rng.Stream {
	return &rng.Stream{} // want "orphan rng.Stream: zero-value construction"
}

func orphanNew() *rng.Stream {
	return new(rng.Stream) // want "orphan rng.Stream: new.rng.Stream."
}

func hardSeed() *rng.Stream {
	return rng.New(42) // want "hard-coded seed creates a second RNG root"
}

func worker(s *rng.Stream) { _ = s.Float64() }

func sharedWithGoroutine(root *rng.Stream) {
	go worker(root) // want "rng.Stream shared with a goroutine"
	go func() {
		_ = root.Float64() // want "captured by a goroutine"
	}()
}

func duplicateLabels(root *rng.Stream) (*rng.Stream, *rng.Stream) {
	a := root.Split("child")
	b := root.Split("child") // want "duplicate Split label .child."
	return a, b
}
