//femtovet:fixturepath femtocr/internal/sensing

// Seeded violations: constants outside [0,1] flowing into
// probability-named parameters and fields.
package fixture

type Detector struct {
	PFA float64
	PMD float64
}

func setFalseAlarm(pfa float64) Detector {
	return Detector{
		PFA: pfa,
		PMD: 1.5, // want "probability field .PMD."
	}
}

func fuse(posterior float64, weight float64) float64 {
	return posterior * weight
}

func bad() float64 {
	d := setFalseAlarm(-0.3) // want "probability parameter .pfa."
	return fuse(2, d.PFA)    // want "probability parameter .posterior."
}
