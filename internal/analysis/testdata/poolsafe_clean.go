//femtovet:fixturepath femtocr/internal/poolfixtureclean

// The sanctioned sync.Pool lifecycles the analyzer must stay silent on:
// Get with an immediately deferred Put (direct or through module wrappers),
// getter functions that transfer ownership by returning the value, and a
// resettable value whose first use is the Reset call.
package fixture

import "sync"

type thing struct{ x int }

var pool = sync.Pool{New: func() any { return new(thing) }}

type resettable struct{ n int }

func (r *resettable) Reset() { r.n = 0 }

var rpool = sync.Pool{New: func() any { return new(resettable) }}

var sink int

func deferred() {
	ws := pool.Get().(*thing)
	defer pool.Put(ws)
	ws.x++
	sink = ws.x
}

// getThing transfers ownership to the caller by returning the value.
func getThing() *thing {
	return pool.Get().(*thing)
}

// putThing is the matching putter wrapper.
func putThing(w *thing) {
	pool.Put(w)
}

func viaWrappers() {
	ws := getThing()
	defer putThing(ws)
	ws.x++
	sink = ws.x
}

// ownershipTransfer binds the value but hands it to the caller: exempt.
func ownershipTransfer() *thing {
	ws := pool.Get().(*thing)
	ws.x = 0
	return ws
}

func resetFirst() {
	rs := rpool.Get().(*resettable)
	defer rpool.Put(rs)
	rs.Reset()
	rs.n++
	sink = rs.n
}
