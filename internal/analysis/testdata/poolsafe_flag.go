//femtovet:fixturepath femtocr/internal/poolfixture

// sync.Pool lifecycle bugs the analyzer must flag: a Get that is never
// handed back, a Put that is not deferred (and the use after it), a pooled
// value that is still reachable when the Put runs, and a resettable value
// used before Reset.
package fixture

import "sync"

type thing struct{ x int }

var pool = sync.Pool{New: func() any { return new(thing) }}

type resettable struct{ n int }

func (r *resettable) Reset() { r.n = 0 }

var rpool = sync.Pool{New: func() any { return new(resettable) }}

var sink int

func leak() {
	ws := pool.Get().(*thing) // want "pooled ws is never returned to its pool"
	ws.x++
	sink = ws.x
}

func plainPut() {
	ws := pool.Get().(*thing)
	ws.x++
	pool.Put(ws) // want "Put of pooled ws is not deferred"
	sink = ws.x  // want "pooled ws used after Put returned it to the pool"
}

func escapes() *thing {
	ws := pool.Get().(*thing)
	defer pool.Put(ws)
	return ws // want "pooled ws is returned but also Put back"
}

func staleUse() {
	rs := rpool.Get().(*resettable)
	defer rpool.Put(rs)
	rs.n++ // want "pooled rs has a Reset method but is used before Reset"
	sink = rs.n
}
