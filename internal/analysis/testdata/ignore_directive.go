//femtovet:fixturepath femtocr/internal/core

// The suppression mechanism: a well-formed femtovet:ignore directive
// silences the named analyzer on its line and the next; naming a different
// analyzer, or omitting the reason, does not.
package fixture

func comparatorTie(a, b float64) bool {
	return a != b //femtovet:ignore floateq -- fixture: exact tie-break by design
}

func nextLine(a, b float64) bool {
	//femtovet:ignore floateq -- fixture: standalone directive covers the next line
	return a == b
}

func stillFlagged(a, b float64) bool {
	// The directive below names a different analyzer, so floateq still fires.
	return a == b //femtovet:ignore errdrop -- names the wrong analyzer // want "exact floating-point"
}

func reasonless(a, b float64) bool {
	// A reasonless directive is inert: floateq fires despite being named.
	//femtovet:ignore floateq
	return a == b // want "exact floating-point"
}
