//femtovet:fixturepath femtocr/internal/core

// The suppression mechanism: a femtovet:ignore directive silences the named
// analyzer on its line; naming a different analyzer does not.
package fixture

func comparatorTie(a, b float64) bool {
	return a != b //femtovet:ignore floateq
}

func stillFlagged(a, b float64) bool {
	// The directive below names a different analyzer, so floateq still fires.
	return a == b //femtovet:ignore errdrop // want "exact floating-point"
}
