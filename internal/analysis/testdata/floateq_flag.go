//femtovet:fixturepath femtocr/internal/core

// Seeded violations: exact float equality in convergence-style checks.
package fixture

func converged(prev, cur float64) bool {
	return prev == cur // want "exact floating-point == comparison"
}

func changed(a, b float32) bool {
	return a != b // want "exact floating-point != comparison"
}

func boundsMatch(value float64) bool {
	return value == 0.25 // want "exact floating-point == comparison"
}
