//femtovet:fixturepath femtocr/internal/idxclean

// Clean index usage: loop variables stay on the axis they were bound to,
// annotated counts line up with annotated containers, and len() bounds
// inherit the container's domain.
package fixture

type alloc struct {
	rate [][]float64 //femtovet:index user,channel
}

// numLinks is an annotated count with no naming convention behind it.
//
//femtovet:index user
func numLinks(users []float64) int { return len(users) }

func matched(users []float64, numUsers int) float64 {
	total := 0.0
	for j := 0; j < numUsers; j++ {
		total += users[j]
	}
	return total
}

func lenBound(users []float64) float64 {
	total := 0.0
	for j := 0; j < len(users); j++ {
		total += users[j]
	}
	return total
}

func rightAxes(a alloc, users []float64, numChannels int) {
	for j := 0; j < numLinks(users); j++ {
		for m := 0; m < numChannels; m++ {
			_ = a.rate[j][m]
		}
	}
}

func freeVariable(users []float64, k int) float64 {
	// k has no tracked domain, so indexing with it is not judged.
	return users[k]
}

func doubleBuffer(cur, next []float64, numUsers int) float64 {
	// A ping-pong buffer swap makes each slice's sole definition mention
	// the other; domain resolution must treat the cycle as unknown (and
	// terminate) instead of chasing definitions forever.
	total := 0.0
	for j := 0; j < numUsers; j++ {
		next[j] = cur[j] * 0.5
		cur, next = next, cur
		total += cur[j]
	}
	return total
}
