//femtovet:fixturepath femtocr/internal/syncfixture

// Sync-primitive misuse the syncguard analyzer must flag: WaitGroup.Add
// inside the spawned goroutine, Done not deferred, locks copied by value
// (parameters, assignments, declarations, range values), and Lock calls
// whose matching Unlock is skipped along an early-return path or missing
// from the block entirely.
package fixture

import "sync"

func addInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "Add inside the spawned goroutine races with Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func doneNotDeferred(xs []int) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			xs[i] *= 2
			wg.Done() // want "Done is not deferred"
		}(i)
	}
	wg.Wait()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // want "parameter of type guarded is passed by value"
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func waitByValue(wg sync.WaitGroup) { // want "parameter of type sync.WaitGroup is passed by value"
	wg.Wait()
}

func copyAssign(g *guarded) {
	mu2 := g.mu // want "assignment copies g.mu"
	mu2.Lock()
	mu2.Unlock()
}

func declCopy(g *guarded) {
	var mu2 = g.mu // want "declaration copies g.mu"
	mu2.Lock()
	mu2.Unlock()
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value g copies a sync lock each iteration"
		total += g.n
	}
	return total
}

var state = struct {
	mu sync.Mutex
	n  int
}{}

func earlyReturn(flag bool) int {
	state.mu.Lock()
	if flag {
		return 0 // want "early return between state.mu.Lock and state.mu.Unlock"
	}
	state.mu.Unlock()
	return state.n
}

func noUnlock() {
	state.mu.Lock() // want "no matching Unlock in this block"
	state.n++
}

var rw sync.RWMutex

func readEarlyReturn(flag bool) int {
	rw.RLock()
	if flag {
		return 1 // want "early return between rw.RLock and rw.RUnlock"
	}
	rw.RUnlock()
	return 0
}
