//femtovet:fixturepath femtocr/internal/hotfixtureclean

// The sanctioned hot-path idioms the analyzer must stay silent on: the
// cap-growth guard (both enclosing-if and preceding-sibling forms), appends
// into caller-owned memory, error-return and panic construction, directly
// invoked or capture-free closures, constant folding, pointer and constant
// interface arguments, and allocation behind a coldpath boundary or in
// unannotated cold code.
package fixture

import (
	"errors"
	"fmt"
)

var errBad = errors.New("bad")

// Clean is the annotated hot function.
//
//femtovet:hotpath
func Clean(n int, buf []float64, dst []int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative n %d", n) // error return is exempt by convention
	}
	buf = grow(buf, n)
	if cap(dst) < n {
		dst = make([]int, n) // guarded by the preceding cap check
	}
	dst = dst[:n]
	dst = append(dst, 1) // append into a parameter stays silent
	v := func() int { return n }()
	add := func(a, b int) int { return a + b } // capture-free closures are static
	const tag = "a" + "b"                      // constant folding is free
	box(&n)                                    // pointers fit the interface word
	box(3)                                     // constants convert at compile time
	if n > len(tag)+add(v, 0) {
		panic(fmt.Sprintf("impossible n %d", n)) // panic construction is exempt
	}
	shell := coldShell(n)
	return append(buf[:0], shell...), nil
}

// grow is the cap-growth idiom in its enclosing-if form.
func grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// coldShell allocates the escaping result behind the coldpath boundary.
//
//femtovet:coldpath -- fixture constructor; the result must escape
func coldShell(n int) []float64 {
	return make([]float64, n)
}

// notHot is unannotated and unreachable from any root: free to allocate.
func notHot(n int) []float64 {
	out := make([]float64, n)
	return append(out, float64(n))
}

func box(x any) { _ = x }
