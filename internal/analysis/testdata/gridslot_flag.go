//femtovet:fixturepath femtocr/internal/gridfixture

// Slot-ownership violations the gridslot analyzer must flag: shared
// accumulators written from grid workers, stores into a fixed slot instead
// of the task's own, non-atomic completion flags, cross-slot reads before
// the post-join barrier, and the same mistakes inside plain go closures.
package fixture

func runGrid(n, workers int, do func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := do(i); err != nil {
			return err
		}
	}
	return nil
}

func sharedWrite(n int) int {
	total := 0
	xs := make([]int, n)
	_ = runGrid(n, 2, func(i int) error {
		xs[i] = i * i
		total += i // want "grid worker writes captured total"
		return nil
	})
	return total
}

func fixedSlot(n int) []int {
	xs := make([]int, n)
	_ = runGrid(n, 2, func(i int) error {
		xs[0] = i // want "not indexed by the task's own index"
		return nil
	})
	return xs
}

func plainFlag(n int) bool {
	fail := false
	xs := make([]int, n)
	_ = runGrid(n, 2, func(i int) error {
		if i > 3 {
			fail = true // want "writes captured flag fail without synchronization"
		}
		xs[i] = i
		return nil
	})
	return fail
}

func crossSlotRead(n int) []int {
	sum := 0
	xs := make([]int, n)
	_ = runGrid(n, 2, func(i int) error {
		xs[i] = sum // want "reads captured sum, which tasks also write"
		sum += i    // want "grid worker writes captured sum"
		return nil
	})
	return xs
}

func goWorkers(n int) []int {
	out := make([]int, n)
	hits := 0
	for j := 0; j < n; j++ {
		go func(j int) {
			out[j] = j * 2
			hits++ // want "goroutine writes captured hits"
		}(j)
	}
	return out
}
