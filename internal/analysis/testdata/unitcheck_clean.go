//femtovet:fixturepath femtocr/internal/unitclean

// Clean unit usage: same-family arithmetic, sanctioned dB/linear bridges,
// unit-free constants, and multiplicative combinations across families.
package fixture

import "femtocr/internal/fading"

var noiseFloorDB float64 //femtovet:unit dB

func sameFamily(gainDB float64) float64 {
	return gainDB + noiseFloorDB // dB + dB
}

func bridged(gainDB float64) float64 {
	lin := fading.FromDB(gainDB)
	return lin * 2 // constants are unit-free
}

func backToDB(sinrLin float64) float64 {
	var sinr float64 //femtovet:unit linear
	sinr = sinrLin
	return fading.ToDB(sinr)
}

func scaleAcrossFamilies(share float64, rateBps float64) float64 {
	// Multiplication legitimately combines families (share * rate).
	return share * rateBps
}

func constantsAdoptUnits(psnr float64) float64 {
	return psnr + 0.5 // constant adopts dB
}
