//femtovet:fixturepath femtocr/internal/syncfixtureclean

// Sync usage the syncguard analyzer must accept: Add before the go
// statement with Done deferred, locks shared by pointer, straight-line
// Lock/Unlock with no return between, deferred unlocks, fresh zero-value
// locks from composite literals, and pointer-element ranges.
package fixture

import "sync"

func goodPool(xs []int) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			xs[i]++
		}(i)
	}
	wg.Wait()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func pointerParam(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func straightLine(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func pointerRange(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		g.mu.Lock()
		total += g.n
		g.mu.Unlock()
	}
	return total
}

func freshLock() *sync.Mutex {
	mu := sync.Mutex{}
	return &mu
}

var rw sync.RWMutex

func readPath(out *int) {
	rw.RLock()
	defer rw.RUnlock()
	*out++
}
