//femtovet:fixturepath femtocr/internal/seedclean

// Clean RNG provenance: streams plumbed from the caller's root, fresh
// per-goroutine splits (directly and through a helper), distinct Split
// labels, and seeds taken from configuration rather than literals.
package fixture

import "femtocr/internal/rng"

type simulator struct {
	stream *rng.Stream // pointer from a Split, not a value-typed orphan
}

func build(seed uint64) *simulator {
	root := rng.New(seed) // seed is plumbed, not hard-coded
	return &simulator{stream: root.Split("sim")}
}

func derive(root *rng.Stream) *rng.Stream {
	return root.Split("derived")
}

func consume(s *rng.Stream) { _ = s.Float64() }

func fanOut(root *rng.Stream) {
	go consume(root.Split("worker/1"))  // fresh split per goroutine
	go consume(root.SplitIndex("w", 2)) // fresh indexed split
	go consume(derive(root))            // fresh through a module helper
}

func distinctLabels(root *rng.Stream) (*rng.Stream, *rng.Stream) {
	return root.Split("alpha"), root.Split("beta")
}
