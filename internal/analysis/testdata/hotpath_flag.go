//femtovet:fixturepath femtocr/internal/hotfixture

// Allocation-causing constructs the hotpath walk must flag, both inside the
// annotated root and inside a helper reached only through the call graph.
// The coldpath constructor proves the walk stops at the annotation.
package fixture

import "fmt"

var sinkFn func() int

var sinkSlice []float64

// Root is the annotated hot function.
//
//femtovet:hotpath
func Root(n int, a, b string, m map[int]int) float64 {
	buf := make([]float64, n) // want "make allocates on every call of Root"
	p := new(float64)         // want "new allocates on every call of Root"
	var xs []float64
	xs = append(xs, 1)           // want "append to a fresh local in Root"
	s := fmt.Sprintf("%d", n)    // want "fmt.Sprintf formats .and allocates. on every call of Root"
	c := a + b                   // want "string concatenation allocates on every call of Root"
	box(n)                       // want "argument boxes a int into an interface on every call of Root"
	f := func() int { return n } // want "escaping closure captures variables and allocates on every call of Root"
	sinkFn = f
	ws := []float64{1, 2} // want "escaping composite literal allocates on every call of Root"
	sinkSlice = ws
	total := 0.0
	for _, v := range m { // want "range over map in Root"
		total += float64(v)
	}
	zs := cold(n)
	return total + buf[0] + *p + xs[0] + float64(len(s)+len(c)) + zs[0] + helper(n)
}

// helper is hot only through Root's call; the finding names the root.
func helper(n int) float64 {
	ys := make([]float64, n) // want "make allocates on every call of helper .hot: reachable from Root."
	return ys[0]
}

// cold is a constructor the walk must not enter.
//
//femtovet:coldpath -- fixture constructor; allocating here is the point
func cold(n int) []float64 {
	return make([]float64, n)
}

func box(x any) { _ = x }
