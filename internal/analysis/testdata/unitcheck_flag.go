//femtovet:fixturepath femtocr/internal/unitfixture

// Seeded violations: dB and linear quantities (and probabilities) meeting
// under +, assignment, parameter passing, field initialization, and return.
package fixture

import "femtocr/internal/fading"

//femtovet:unit linear
func sinrFloor() float64 { return 2.5 }

var thresholdLin float64 //femtovet:unit linear

type link struct {
	gain float64 //femtovet:unit linear
}

func addMix(gainDB float64) float64 {
	return gainDB + sinrFloor() // want "left operand of .\+. is dB but the right operand is linear"
}

func assignMix(psnr float64) {
	thresholdLin = psnr // want "assigning dB value to linear destination; convert with fading.FromDB/ToDB"
}

func callMix() float64 {
	return fading.FromDB(sinrFloor()) // want "linear value passed to dB parameter"
}

func fieldMix(marginDB float64) link {
	return link{gain: marginDB} // want "dB value assigned to linear field .gain."
}

func resultMixDB(x float64) float64 {
	var sinr float64 //femtovet:unit linear
	sinr = x
	return sinr // want "returning linear value from dB-result function resultMixDB"
}

func probMix(lossProb float64) {
	thresholdLin = lossProb // want "assigning prob value to linear destination"
}
