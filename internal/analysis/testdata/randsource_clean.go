//femtovet:fixturepath femtocr/internal/experiments

// Clean: wall-clock timing in an experiment harness is on the allowlist,
// and randomness drawn through internal/rng is the sanctioned funnel.
package fixture

import (
	"time"

	"femtocr/internal/rng"
)

func timed(seed uint64) (float64, time.Duration) {
	start := time.Now()
	v := rng.New(seed).Float64()
	return v, time.Since(start)
}
