//femtovet:fixturepath femtocr/internal/aliasfixture

// Ownership-contract violations the analyzer must flag: an exported *Into
// function whose reference-carrying parameters have no annotation, and
// borrowed parameters that outlive the call — returned, stashed in a
// global, stored into a receiver field, or handed to a retaining callee.
package fixture

import "sync"

var stash []float64

var pool = sync.Pool{New: func() any { return new([]float64) }}

// CopyInto has no ownership annotations at all.
func CopyInto(dst, src []float64) { // want "carries references but has no ownership annotation"
	copy(dst, src)
}

// LeakInto returns the buffer it only borrowed.
//
//femtovet:borrows dst
func LeakInto(dst []float64) []float64 {
	return dst // want "borrowed parameter .dst. flows into a return value"
}

// StashInto parks the borrowed buffer in package state.
//
//femtovet:borrows dst
func StashInto(dst []float64) {
	stash = dst // want "borrowed parameter .dst. stored into package-level state"
}

type keeper struct{ buf []float64 }

// KeepInto stores the borrowed buffer into its receiver.
//
//femtovet:borrows dst
func (k *keeper) KeepInto(dst []float64) {
	k.buf = dst // want "borrowed parameter .dst. stored into a receiver field"
}

// RetainInto hands the borrowed buffer to a pool, which recycles it.
//
//femtovet:borrows dst
func RetainInto(dst *[]float64) {
	pool.Put(dst) // want "borrowed parameter .dst. passed to Put, which retains its argument"
}
