//femtovet:fixturepath femtocr/internal/foldfixtureclean

// Deterministic folds the foldorder analyzer must accept: slice-driven
// sums, map iteration over sorted keys, exact integer folds excused with
// femtovet:commutative (on the fold line or its loop), per-key map
// transforms, per-iteration locals, and ascending-index Welford merges.
package fixture

import (
	"sort"

	"femtocr/internal/stats"
)

func sliceFold(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func commutativeCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		//femtovet:commutative -- exact integer addition commutes and never rounds
		n += v
	}
	return n
}

func commutativeLoop(m map[string]int) int {
	n := 0
	//femtovet:commutative -- exact integer count; any iteration order yields the same total
	for range m {
		n++
	}
	return n
}

func perKeyTransform(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

func perIterationLocal(m map[int][]float64, out map[int]float64) {
	for k, xs := range m {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		out[k] = s
	}
}

func mergeAscending(parts []stats.Running) (stats.Summary, error) {
	var acc stats.Running
	for i := 0; i < len(parts); i++ {
		acc.Merge(&parts[i])
	}
	return acc.Summary()
}

func mergeSliceRange(parts []stats.Running) (stats.Summary, error) {
	var acc stats.Running
	for i := range parts {
		acc.Merge(&parts[i])
	}
	return acc.Summary()
}
