//femtovet:fixturepath femtocr/internal/foldfixture

// Fold-order hazards the foldorder analyzer must flag: float and integer
// sums driven by randomized map iteration, channel-receive folds, Welford
// accumulation (stats.Running.Add/Merge) under map ranges, descending
// loops, goroutines, and grid workers, and femtovet:commutative misapplied
// to order-sensitive folds.
package fixture

import "femtocr/internal/stats"

func runGrid(n, workers int, do func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := do(i); err != nil {
			return err
		}
	}
	return nil
}

func mapFloatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "floating-point accumulation inside a map range"
	}
	return sum
}

func mapIntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // want "integer fold inside a map range"
	}
	return n
}

func mapFloatCommutative(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		//femtovet:commutative -- wrong: float rounding is order-sensitive
		sum += v // want "does not apply to floating-point accumulation"
	}
	return sum
}

func chanFold(ch chan float64) float64 {
	sum := 0.0
	for v := range ch {
		sum += v // want "floating-point accumulation inside a channel range"
	}
	return sum
}

func recvFold(ch chan float64, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += <-ch // want "channel-receive loop"
	}
	return sum
}

func addUnderMap(m map[int]float64) (stats.Summary, error) {
	var acc stats.Running
	for _, v := range m {
		acc.Add(v) // want "stats.Running accumulation driven by a map range"
	}
	return acc.Summary()
}

func mergeUnderMap(parts map[int]*stats.Running) stats.Running {
	var acc stats.Running
	for _, p := range parts {
		acc.Merge(p) // want "Merge driven by a map range"
	}
	return acc
}

func mergeDescending(parts []stats.Running) stats.Running {
	var acc stats.Running
	for i := len(parts) - 1; i >= 0; i-- {
		acc.Merge(&parts[i]) // want "Merge driven by a descending loop"
	}
	return acc
}

func mergeInGoroutine(parts []stats.Running, done chan stats.Running) {
	var acc stats.Running
	go func() {
		for i := range parts {
			acc.Merge(&parts[i]) // want "Merge inside a spawned goroutine"
		}
		done <- acc
	}()
}

func mergeInWorker(n int, parts []stats.Running) stats.Running {
	var acc stats.Running
	_ = runGrid(n, 2, func(i int) error {
		acc.Merge(&parts[i]) // want "Merge inside a grid worker"
		return nil
	})
	return acc
}

func mergeCommutative(parts []stats.Running) stats.Running {
	var acc stats.Running
	for i := 0; i < len(parts); i++ {
		//femtovet:commutative -- wrong: the Welford merge is order-sensitive
		acc.Merge(&parts[i]) // want "does not apply to stats.Running.Merge"
	}
	return acc
}
