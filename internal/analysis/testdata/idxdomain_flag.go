//femtovet:fixturepath femtocr/internal/idxfixture

// Seeded violations: length-N (user) structures indexed with M-domain
// (channel) loop variables, through naming conventions, annotations,
// make() propagation, and multi-dimensional containers.
package fixture

type alloc struct {
	rate [][]float64 //femtovet:index user,channel
}

func conventionMismatch(users []float64, numChannels int) float64 {
	total := 0.0
	for m := 0; m < numChannels; m++ {
		total += users[m] // want "user-indexed container users indexed with channel-domain variable m"
	}
	return total
}

func rangeMismatch(users []float64, channels []int) {
	for m := range channels {
		_ = users[m] // want "user-indexed container users indexed with channel-domain variable m"
	}
}

func madeMismatch(numUsers, numChannels int) {
	weights := make([]float64, numUsers)
	for m := 0; m < numChannels; m++ {
		weights[m] = 0 // want "user-indexed container weights indexed with channel-domain variable m"
	}
}

func swappedAxes(a alloc, numUsers, numChannels int) {
	for j := 0; j < numUsers; j++ {
		for m := 0; m < numChannels; m++ {
			_ = a.rate[m][j] // want "index-domain mismatch"
		}
	}
}

func offsetKeepsDomain(users []float64, numChannels int) {
	for m := 0; m < numChannels; m++ {
		_ = users[m+1] // want "user-indexed container users indexed with channel-domain variable m\+1"
	}
}
