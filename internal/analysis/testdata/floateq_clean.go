//femtovet:fixturepath femtocr/internal/core

// Clean: tolerance helpers, zero-sentinel guards, integer equality, and
// compile-time constant folds are all acceptable.
package fixture

import "math"

func approxEqual(a, b float64) bool {
	if a == b { // exact fast path inside the approved helper
		return true
	}
	return math.Abs(a-b) <= 1e-9
}

func solverDone(prev, cur float64) bool {
	return approxEqual(prev, cur)
}

func unsetSentinel(rate float64) float64 {
	if rate == 0 { // zero guard: the one exactly-representable sentinel
		return 1
	}
	return rate
}

func sameCount(a, b int) bool {
	return a == b
}
