//femtovet:fixturepath femtocr/internal/dirfixture

// Malformed directives the meta-check must flag. The want comments share
// the directive lines, so the directive arguments below deliberately absorb
// them; each stays malformed either way.
package fixture

//femtovet:ignore -- reason without analyzers // want "bare femtovet:ignore suppresses nothing"
var a = 1

//femtovet:ignore nosuch -- not a real analyzer // want "names unknown analyzer"
var b = 2

//femtovet:unit decibels // want "not a registered unit family"
var c = 3.0

//femtovet:index -- no domains given // want "needs a comma-separated list of axis domains"
var d []float64

//femtovet:index Users // want "must be a lowercase word"
var e []float64

//femtovet:fixturepath -- missing path argument // want "needs an import path argument"
var f = 4

//femtovet:frobnicate x // want "unknown femtovet directive"
var g = 5
