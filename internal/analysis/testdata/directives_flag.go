//femtovet:fixturepath femtocr/internal/dirfixture

// Malformed directives the meta-check must flag. The want comments share
// the directive lines, so the directive arguments below deliberately absorb
// them; each stays malformed either way.
package fixture

//femtovet:ignore -- reason without analyzers // want "bare femtovet:ignore suppresses nothing"
var a = 1

//femtovet:ignore nosuch -- not a real analyzer // want "names unknown analyzer"
var b = 2

//femtovet:unit decibels // want "not a registered unit family"
var c = 3.0

//femtovet:index -- no domains given // want "needs a comma-separated list of axis domains"
var d []float64

//femtovet:index Users // want "must be a lowercase word"
var e []float64

//femtovet:fixturepath -- missing path argument // want "needs an import path argument"
var f = 4

//femtovet:frobnicate x // want "unknown femtovet directive"
var g = 5

//femtovet:hotpath // want "must appear in a function's doc comment"
var h = 6

//femtovet:owns x // want "must appear in a function's doc comment"
var i = 7

//femtovet:shared // want "takes no argument|without a reason is unauditable"
var j = 8

//femtovet:commutative // want "takes no argument|without a reason is unauditable"
var k = 9

// argful takes the directive argument nobody asked for. The absorbed want
// text keeps the argument nonempty either way.
//
//femtovet:hotpath everything // want "takes no argument"
func argful() {}

// reasonless omits both the argument and the reason; the absorbed want text
// re-adds an argument, so both findings fire and the alternation matches
// each.
//
//femtovet:coldpath // want "takes no argument|without a reason is unauditable"
func reasonless() {}

// typoed names a parameter that does not exist.
//
//femtovet:owns nosuchparam // want "is not a parameter or receiver of typoed"
func typoed(buf []float64) { _ = buf }

// nameless gives owns nothing to claim; the want text hides in the reason.
//
//femtovet:owns -- // want "needs a comma-separated parameter list"
func nameless(buf []float64) { _ = buf }

// conflicted is hot and cold at once. // want "is annotated both femtovet:hotpath and femtovet:coldpath"
//
//femtovet:coldpath -- diagnostic constructor, reason present
//femtovet:hotpath
func conflicted() {}

// overlapping claims buf under both contracts. // want "claimed by both femtovet:owns and femtovet:borrows"
//
//femtovet:owns buf
//femtovet:borrows buf
func overlapping(buf []float64) { _ = buf }
