//femtovet:fixturepath femtocr/internal/sim

// Seeded violations: a simulation package importing a raw randomness source
// and reading the wall clock.
package fixture

import (
	"math/rand" // want "import of math/rand outside internal/rng"
	"time"
)

func draw() float64 {
	return rand.Float64()
}

func stamp() time.Time {
	return time.Now() // want "time.Now in simulation package"
}
