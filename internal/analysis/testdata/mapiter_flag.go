//femtovet:fixturepath femtocr/internal/core

// Seeded violations: map iteration leaking randomized order into a result
// slice and into output.
package fixture

import "fmt"

func collectKeys(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration without a subsequent deterministic sort"
	}
	return keys
}

func printAll(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v) // want "writes output in randomized map order"
	}
}
