//femtovet:fixturepath femtocr/internal/core

// Clean: the canonical collect-then-sort pattern, order-independent
// accumulation, and a per-iteration buffer are all deterministic.
package fixture

import (
	"sort"
	"strings"
)

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func labels(m map[string]int) []string {
	var out []string
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		b.WriteString("!")
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}
