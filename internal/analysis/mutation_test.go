package analysis

import (
	"os"
	"strings"
	"testing"
)

// The mutation smoke tests: seed one representative bug of each class into
// real (or realistic) code and prove the matching analyzer — and only it —
// catches it with exactly one finding. This is the sensitivity half of the
// calibration; the fixture _clean files and the empty baseline are the
// specificity half.

// mutate loads a real module source file, applies one textual replacement
// (which must change it), and returns the mutated source.
func mutate(t *testing.T, file, old, new string) string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("read %s: %v", file, err)
	}
	src := string(data)
	if !strings.Contains(src, old) {
		t.Fatalf("%s no longer contains %q; update the mutation test", file, old)
	}
	return strings.Replace(src, old, new, 1)
}

// assertSingleFinding runs the full suite and requires exactly one finding,
// from the expected analyzer, with the expected message fragment.
func assertSingleFinding(t *testing.T, diags []Diagnostic, analyzer, fragment string) {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(diags), diags)
	}
	if diags[0].Analyzer != analyzer {
		t.Fatalf("finding came from %s, want %s: %s", diags[0].Analyzer, analyzer, diags[0].Message)
	}
	if !strings.Contains(diags[0].Message, fragment) {
		t.Fatalf("finding %q does not mention %q", diags[0].Message, fragment)
	}
}

// TestMutationDroppedFromDB: deleting the fading.FromDB conversion on the
// EESM beta leaves a dB value flowing into a linear-annotated field;
// unitcheck alone must catch it.
func TestMutationDroppedFromDB(t *testing.T) {
	src := mutate(t, "../ofdm/ofdm.go",
		"beta:        fading.FromDB(betaDB),",
		"beta:        betaDB,")
	diags := suiteOnSource(t, "femtocr/internal/ofdmmut", "ofdmmut.go", src, All())
	assertSingleFinding(t, diags, "unitcheck", "dB value assigned to linear field")
}

// TestMutationOrphanStream: replacing the seeded root with new(rng.Stream)
// orphans the simulation's RNG; seedflow alone must catch it.
func TestMutationOrphanStream(t *testing.T) {
	src := mutate(t, "../packetsim/packetsim.go",
		"root := rng.New(opts.Seed)",
		"root := new(rng.Stream)")
	diags := suiteOnSource(t, "femtocr/internal/packetsimmut", "packetsimmut.go", src, All())
	assertSingleFinding(t, diags, "seedflow", "orphan rng.Stream")
}

// TestMutationSwappedBound: looping a user-indexed structure to N (the FBS
// count) instead of K (the user count) reads the wrong axis; idxdomain
// alone must catch it.
func TestMutationSwappedBound(t *testing.T) {
	clean := `package fixture

import "femtocr/internal/core"

func sumPSNR(in *core.Instance) float64 {
	total := 0.0
	for j := 0; j < in.K(); j++ {
		total += in.W[j]
	}
	return total
}
`
	if diags := suiteOnSource(t, "femtocr/internal/coremut0", "coremut0.go", clean, All()); len(diags) != 0 {
		t.Fatalf("clean variant must be silent, got %v", diags)
	}
	mutated := strings.Replace(clean, "in.K()", "in.N()", 1)
	diags := suiteOnSource(t, "femtocr/internal/coremut1", "coremut1.go", mutated, All())
	assertSingleFinding(t, diags, "idxdomain", "index-domain mismatch")
}

// The unmutated originals stay silent — the suite is already proven clean
// over the whole module by TestSuiteCleanOnModule — so each mutation above
// flips exactly one bit of analyzer output.
