package analysis

import (
	"os"
	"strings"
	"testing"
)

// The mutation smoke tests: seed one representative bug of each class into
// real (or realistic) code and prove the matching analyzer — and only it —
// catches it with exactly one finding. This is the sensitivity half of the
// calibration; the fixture _clean files and the empty baseline are the
// specificity half.

// mutate loads a real module source file, applies one textual replacement
// (which must change it), and returns the mutated source.
func mutate(t *testing.T, file, old, new string) string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("read %s: %v", file, err)
	}
	src := string(data)
	if !strings.Contains(src, old) {
		t.Fatalf("%s no longer contains %q; update the mutation test", file, old)
	}
	return strings.Replace(src, old, new, 1)
}

// assertSingleFinding runs the full suite and requires exactly one finding,
// from the expected analyzer, with the expected message fragment.
func assertSingleFinding(t *testing.T, diags []Diagnostic, analyzer, fragment string) {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(diags), diags)
	}
	if diags[0].Analyzer != analyzer {
		t.Fatalf("finding came from %s, want %s: %s", diags[0].Analyzer, analyzer, diags[0].Message)
	}
	if !strings.Contains(diags[0].Message, fragment) {
		t.Fatalf("finding %q does not mention %q", diags[0].Message, fragment)
	}
}

// TestMutationDroppedFromDB: deleting the fading.FromDB conversion on the
// EESM beta leaves a dB value flowing into a linear-annotated field;
// unitcheck alone must catch it.
func TestMutationDroppedFromDB(t *testing.T) {
	src := mutate(t, "../ofdm/ofdm.go",
		"beta:        fading.FromDB(betaDB),",
		"beta:        betaDB,")
	diags := suiteOnSource(t, "femtocr/internal/ofdmmut", "ofdmmut.go", src, All())
	assertSingleFinding(t, diags, "unitcheck", "dB value assigned to linear field")
}

// TestMutationOrphanStream: replacing the seeded root with new(rng.Stream)
// orphans the simulation's RNG; seedflow alone must catch it.
func TestMutationOrphanStream(t *testing.T) {
	src := mutate(t, "../packetsim/packetsim.go",
		"root := rng.New(opts.Seed)",
		"root := new(rng.Stream)")
	diags := suiteOnSource(t, "femtocr/internal/packetsimmut", "packetsimmut.go", src, All())
	assertSingleFinding(t, diags, "seedflow", "orphan rng.Stream")
}

// TestMutationSwappedBound: looping a user-indexed structure to N (the FBS
// count) instead of K (the user count) reads the wrong axis; idxdomain
// alone must catch it.
func TestMutationSwappedBound(t *testing.T) {
	clean := `package fixture

import "femtocr/internal/core"

func sumPSNR(in *core.Instance) float64 {
	total := 0.0
	for j := 0; j < in.K(); j++ {
		total += in.W[j]
	}
	return total
}
`
	if diags := suiteOnSource(t, "femtocr/internal/coremut0", "coremut0.go", clean, All()); len(diags) != 0 {
		t.Fatalf("clean variant must be silent, got %v", diags)
	}
	mutated := strings.Replace(clean, "in.K()", "in.N()", 1)
	diags := suiteOnSource(t, "femtocr/internal/coremut1", "coremut1.go", mutated, All())
	assertSingleFinding(t, diags, "idxdomain", "index-domain mismatch")
}

// TestMutationHotAlloc: introducing an unguarded make into waterfillInto,
// an annotated //femtovet:hotpath root, breaks the allocation-free
// contract; hotpath alone must catch it.
func TestMutationHotAlloc(t *testing.T) {
	src := mutate(t, "../core/waterfill.go",
		"	for j := range rho {\n\t\trho[j] = 0\n\t}",
		"	scratch := make([]float64, len(rho))\n\tfor j := range rho {\n\t\trho[j] = scratch[j]\n\t}")
	diags := suiteOnSource(t, "femtocr/internal/coremutalloc", "waterfillmut.go", src, All())
	assertSingleFinding(t, diags, "hotpath", "make allocates on every call of waterfillInto")
}

// TestMutationDroppedDeferPut: deleting the deferred Put after a pool Get
// leaks the workspace on every call; poolsafe alone must catch it.
func TestMutationDroppedDeferPut(t *testing.T) {
	clean := `package fixture

import "sync"

type scratch struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

func use(n int) int {
	ws := pool.Get().(*scratch)
	defer pool.Put(ws)
	if cap(ws.buf) < n {
		ws.buf = make([]float64, n)
	}
	ws.buf = ws.buf[:n]
	return len(ws.buf)
}
`
	if diags := suiteOnSource(t, "femtocr/internal/poolmut0", "poolmut0.go", clean, All()); len(diags) != 0 {
		t.Fatalf("clean variant must be silent, got %v", diags)
	}
	mutated := strings.Replace(clean, "\tdefer pool.Put(ws)\n", "", 1)
	diags := suiteOnSource(t, "femtocr/internal/poolmut1", "poolmut1.go", mutated, All())
	assertSingleFinding(t, diags, "poolsafe", "never returned to its pool")
}

// TestMutationBorrowedEscape: stashing a borrowed buffer in package state
// lets it outlive the call; aliascheck alone must catch it.
func TestMutationBorrowedEscape(t *testing.T) {
	clean := `package fixture

var stash []float64

// ScaleInto doubles src into dst and keeps neither.
//
//femtovet:borrows dst, src
func ScaleInto(dst, src []float64) {
	for i := range src {
		dst[i] = 2 * src[i]
	}
}
`
	if diags := suiteOnSource(t, "femtocr/internal/aliasmut0", "aliasmut0.go", clean, All()); len(diags) != 0 {
		t.Fatalf("clean variant must be silent, got %v", diags)
	}
	mutated := strings.Replace(clean, "for i := range src {",
		"stash = dst\n\tfor i := range src {", 1)
	diags := suiteOnSource(t, "femtocr/internal/aliasmut1", "aliasmut1.go", mutated, All())
	assertSingleFinding(t, diags, "aliascheck", "stored into package-level state")
}

// mutatePar seeds one bug into par/par.go, the shared grid primitive; the
// file is self-contained and type-checks standalone.
func mutatePar(t *testing.T, old, new string) string {
	t.Helper()
	return mutate(t, "../par/par.go", old, new)
}

// mutateParallel seeds one bug into experiments/parallel.go and grafts on
// the minimal Params shim the file needs to type-check standalone (the
// real struct lives in a sibling file of the package).
func mutateParallel(t *testing.T, old, new string) string {
	t.Helper()
	src := mutate(t, "../experiments/parallel.go", old, new)
	return src + "\ntype Params struct {\n\tWorkers  int\n\tParallel par.Parallelism\n}\n"
}

// TestMutationDroppedSharedReason: deleting the //femtovet:shared
// justification on RunGrid's error slots re-arms the slot-ownership check —
// the worker's errs[i] write is keyed by the dispatch counter, not a task
// parameter, so without the directive gridslot alone must catch it.
func TestMutationDroppedSharedReason(t *testing.T) {
	src := mutatePar(t,
		"\t//femtovet:shared -- the atomic dispatch counter hands each index to exactly one worker, so errs[i] has a single writer\n",
		"")
	diags := suiteOnSource(t, "femtocr/internal/gridmut", "gridmut.go", src, All())
	assertSingleFinding(t, diags, "gridslot", "writes captured errs")
}

// TestMutationDescendingMerge: reversing mergeSummary's fold loop breaks
// the ascending-index contract that makes the parallel Welford merge
// bitwise-deterministic; foldorder alone must catch it.
func TestMutationDescendingMerge(t *testing.T) {
	src := mutateParallel(t,
		"\tfor _, x := range xs {\n",
		"\tfor i := len(xs) - 1; i >= 0; i-- {\n\t\tx := xs[i]\n")
	diags := suiteOnSource(t, "femtocr/internal/foldmut", "foldmut.go", src, All())
	assertSingleFinding(t, diags, "foldorder", "ascending index order")
}

// TestMutationAddInsideWorker: moving the WaitGroup.Add into the spawned
// worker lets Wait return before late workers are counted; syncguard alone
// must catch it.
func TestMutationAddInsideWorker(t *testing.T) {
	src := mutatePar(t,
		"\t\twg.Add(1)\n\t\tgo func() {\n",
		"\t\tgo func() {\n\t\t\twg.Add(1)\n")
	diags := suiteOnSource(t, "femtocr/internal/syncmut", "syncmut.go", src, All())
	assertSingleFinding(t, diags, "syncguard", "Add inside the spawned goroutine")
}

// The unmutated originals stay silent — the suite is already proven clean
// over the whole module by TestSuiteCleanOnModule — so each mutation above
// flips exactly one bit of analyzer output.
