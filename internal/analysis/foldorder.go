package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"femtocr/internal/analysis/flow"
)

// FoldOrder flags floating-point folds whose result can depend on
// scheduling or on Go's randomized map iteration: += accumulation into a
// float under a map range, channel-receive folds, and stats.Running
// updates (Add) or parallel merges (Merge) not driven by an ascending
// index loop. Floating-point addition is not associative and the Welford
// merge in stats.Running is order-sensitive, so any nondeterministic fold
// order leaks into the last bits of every figure. Exact integer folds are
// genuinely order-free and may be excused with
// //femtovet:commutative -- <reason>; the escape never applies to floats.
var FoldOrder = &Analyzer{
	Name: "foldorder",
	Doc:  "fold-order determinism: no float accumulation under map ranges or channel receives; stats.Running.Merge only in ascending index order",
	Run:  runFoldOrder,
}

func runFoldOrder(pass *Pass) {
	comm := commutativeLines(pass)
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch x := n.(type) {
			case *ast.RangeStmt:
				switch rangeOperand(pass.Info, x) {
				case "map":
					checkFoldBody(pass, comm, x, "map range", "map iteration order is randomized")
				case "chan":
					checkFoldBody(pass, comm, x, "channel range", "arrival order depends on goroutine scheduling")
				}
			case *ast.AssignStmt:
				checkRecvFold(pass, comm, stack, x)
			case *ast.CallExpr:
				if recv, ok := runningMethod(pass.Info, x, "Merge"); ok {
					checkMergeContext(pass, comm, stack, x, recv)
				}
			}
			return true
		})
	}
}

// checkFoldBody flags accumulation into state declared outside a
// nondeterministically ordered range loop: augmented float/int assigns,
// ++/--, and stats.Running.Add calls.
func checkFoldBody(pass *Pass, comm map[string]map[int]bool, rng *ast.RangeStmt, loop, why string) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if !isAugAssign(x.Tok) || len(x.Lhs) != 1 {
				return true
			}
			base := unindexedBase(pass.Info, x.Lhs[0])
			if base == nil || declaredWithin(base, rng) {
				return true
			}
			reportFold(pass, comm, x.Pos(), rng.Pos(), foldType(pass.Info, x.Lhs[0]), loop, why)
		case *ast.IncDecStmt:
			base := unindexedBase(pass.Info, x.X)
			if base == nil || declaredWithin(base, rng) {
				return true
			}
			reportFold(pass, comm, x.Pos(), rng.Pos(), foldType(pass.Info, x.X), loop, why)
		case *ast.CallExpr:
			recv, ok := runningMethod(pass.Info, x, "Add")
			if !ok {
				return true
			}
			base := rootVar(pass.Info, recv)
			if base == nil || declaredWithin(base, rng) {
				return true
			}
			pass.Reportf(x.Pos(),
				"stats.Running accumulation driven by a %s: %s and Welford updates are order-sensitive; fold over sorted keys or task-indexed slots", loop, why)
		}
		return true
	})
}

// checkRecvFold flags `acc += <-ch` style folds inside any loop: the
// receive order follows the scheduler, not the data layout.
func checkRecvFold(pass *Pass, comm map[string]map[int]bool, stack []ast.Node, as *ast.AssignStmt) {
	if !isAugAssign(as.Tok) || len(as.Rhs) != 1 || !containsReceive(as.Rhs[0]) {
		return
	}
	loopPos, inLoop := enclosingLoopPos(stack)
	if !inLoop {
		return
	}
	reportFold(pass, comm, as.Pos(), loopPos, foldType(pass.Info, as.Lhs[0]),
		"channel-receive loop", "arrival order depends on goroutine scheduling")
}

// checkMergeContext enforces the fold half of the runGrid contract: a
// stats.Running.Merge must run post-join, driven by an ascending index
// loop, never under a map range, a channel, a descending loop, or inside a
// spawned goroutine or grid worker.
func checkMergeContext(pass *Pass, comm map[string]map[int]bool, stack []ast.Node, call *ast.CallExpr, recv ast.Expr) {
	flagged := false
	flag := func(pos token.Pos, format string, args ...any) {
		if !flagged {
			pass.Reportf(pos, format, args...)
			flagged = true
		}
	}
	if lines, ok := comm[pass.Fset.Position(call.Pos()).Filename]; ok && lines[pass.Fset.Position(call.Pos()).Line] {
		flag(call.Pos(), "femtovet:commutative does not apply to stats.Running.Merge: the Welford merge is order-sensitive even for commuting inputs; merge in ascending index order instead")
	}
	for i := len(stack) - 2; i >= 0 && !flagged; i-- {
		switch anc := stack[i].(type) {
		case *ast.FuncDecl:
			return // reached the function boundary with no bad driver
		case *ast.FuncLit:
			// Crossing into the closure's launch context: merging inside
			// a goroutine or a grid worker folds in schedule order.
			if parentCall, j, ok := parentCallOf(stack, i); ok {
				if ast.Unparen(parentCall.Fun) == ast.Expr(anc) && j >= 1 {
					if g, isGo := stack[j-1].(*ast.GoStmt); isGo && g.Call == parentCall {
						flag(call.Pos(), "stats.Running.Merge inside a spawned goroutine: the fold follows the schedule; write per-task slots and merge after the join in ascending index order")
						return
					}
				}
				if fn := flow.Callee(pass.Info, parentCall); fn != nil && (fn.Name() == "runGrid" || fn.Name() == "RunGrid") {
					flag(call.Pos(), "stats.Running.Merge inside a grid worker: folding during tasks follows the schedule; write per-task slots and merge after runGrid returns")
					return
				}
			}
			return // other literals (helpers, defers) end the loop search
		case *ast.RangeStmt:
			switch rangeOperand(pass.Info, anc) {
			case "map":
				flag(call.Pos(), "stats.Running.Merge driven by a map range: the parallel Welford merge is order-sensitive and map order is randomized; merge in ascending index order")
			case "chan":
				flag(call.Pos(), "stats.Running.Merge driven by a channel range: arrival order depends on goroutine scheduling; merge post-join in ascending index order")
			}
		case *ast.ForStmt:
			if isDescendingPost(anc.Post) {
				flag(call.Pos(), "stats.Running.Merge driven by a descending loop: the contract folds slots in ascending index order so any worker count matches the sequential fold bitwise")
			}
		}
	}
	_ = recv
}

// parentCallOf returns the call expression directly enclosing stack[i]
// (skipping parens) and its stack index.
func parentCallOf(stack []ast.Node, i int) (*ast.CallExpr, int, bool) {
	for j := i - 1; j >= 0; j-- {
		if _, isParen := stack[j].(*ast.ParenExpr); isParen {
			continue
		}
		c, ok := stack[j].(*ast.CallExpr)
		return c, j, ok
	}
	return nil, 0, false
}

// reportFold reports one nondeterministically ordered fold, honoring the
// //femtovet:commutative escape for exact integer folds only.
func reportFold(pass *Pass, comm map[string]map[int]bool, pos, loopPos token.Pos, kind, loop, why string) {
	excused := foldExcused(pass, comm, pos, loopPos)
	switch kind {
	case "float":
		if excused {
			pass.Reportf(pos, "femtovet:commutative does not apply to floating-point accumulation under a %s: rounding depends on fold order even when the values commute; restructure the fold", loop)
			return
		}
		pass.Reportf(pos, "floating-point accumulation inside a %s: %s, so the sum's rounding differs run to run; fold over sorted keys or task-indexed slots", loop, why)
	case "int":
		if excused {
			return
		}
		pass.Reportf(pos, "integer fold inside a %s: %s; if the fold is exact and order-free, annotate //femtovet:commutative -- <reason>, otherwise fold over sorted keys", loop, why)
	}
}

// foldExcused reports whether a commutative directive covers the fold
// statement or its driving loop.
func foldExcused(pass *Pass, comm map[string]map[int]bool, pos, loopPos token.Pos) bool {
	p := pass.Fset.Position(pos)
	if lines, ok := comm[p.Filename]; ok && lines[p.Line] {
		return true
	}
	lp := pass.Fset.Position(loopPos)
	if lines, ok := comm[lp.Filename]; ok && lines[lp.Line] {
		return true
	}
	return false
}

// commutativeLines collects the effective //femtovet:commutative
// directives (reason required) by file and line; a directive covers its
// own line and the next.
func commutativeLines(pass *Pass) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok || d.Kind != "commutative" || d.Reason == "" {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
				out[pos.Filename][pos.Line+1] = true
			}
		}
	}
	return out
}

// rangeOperand classifies what a range statement iterates.
func rangeOperand(info *types.Info, rng *ast.RangeStmt) string {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Chan:
		return "chan"
	}
	return ""
}

// foldType classifies the accumulation target: "float", "int", or "".
func foldType(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0:
		return "float"
	case b.Info()&types.IsInteger != 0:
		return "int"
	}
	return ""
}

// isAugAssign reports whether tok is an order-sensitive accumulation
// operator.
func isAugAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// unindexedBase returns the variable at the root of an unindexed lvalue
// path (x, x.f, *p), or nil when the path goes through an element index —
// per-key stores under a map range touch each key once and stay
// deterministic.
func unindexedBase(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					v, _ := info.ObjectOf(x.Sel).(*types.Var)
					return v
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootVar returns the variable at the root of any access path, indexes
// included.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether v is declared inside the range statement
// (a per-iteration local, reset each key).
func declaredWithin(v *types.Var, rng *ast.RangeStmt) bool {
	return v.Pos() >= rng.Pos() && v.Pos() < rng.End()
}

// runningMethod reports whether call invokes the named method on a
// stats.Running receiver, returning the receiver expression.
func runningMethod(info *types.Info, call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !flow.IsNamedType(tv.Type, "femtocr/internal/stats", "Running") {
		return nil, false
	}
	return sel.X, true
}

// containsReceive reports whether e contains a channel receive.
func containsReceive(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

// enclosingLoopPos returns the position of the innermost enclosing loop on
// the ancestor stack, stopping at function boundaries.
func enclosingLoopPos(stack []ast.Node) (token.Pos, bool) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return token.NoPos, false
		case *ast.ForStmt:
			return anc.Pos(), true
		case *ast.RangeStmt:
			return anc.Pos(), true
		}
	}
	return token.NoPos, false
}

// isDescendingPost reports whether a for-loop post statement steps its
// variable downward (i-- or i -= k).
func isDescendingPost(post ast.Stmt) bool {
	switch x := post.(type) {
	case *ast.IncDecStmt:
		return x.Tok == token.DEC
	case *ast.AssignStmt:
		return x.Tok == token.SUB_ASSIGN
	}
	return false
}
