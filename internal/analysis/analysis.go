// Package analysis is femtocr's domain-aware static-analysis suite.
//
// The Go compiler cannot check the properties this reproduction actually
// depends on: every stochastic draw must flow through internal/rng so runs
// are bit-reproducible, probabilities must stay in [0, 1] for the Bayesian
// fusion and collision-bound access decisions, floating-point comparisons in
// the solvers must use tolerances, and map iteration must not leak Go's
// randomized ordering into results. Each analyzer in this package enforces
// one such invariant; cmd/femtovet drives the suite over the module and
// exits nonzero on any finding so it can gate CI.
//
// The package is dependency-free by construction: it uses only the standard
// library's go/parser, go/ast, and go/types, so the module stays
// offline-buildable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Position // resolved file:line:column
	Analyzer string         // name of the reporting analyzer
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check of the suite. Run inspects a type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "randsource"
	Doc  string // one-line description of the enforced invariant
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Module   string // module path, e.g. "femtocr"
	Path     string // package import path, e.g. "femtocr/internal/core"
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags   []Diagnostic
	ignores map[string]map[int]bool // filename -> suppressed line -> present
}

// Rel returns the package path relative to the module root ("" for the root
// package). Path-scoped policies (the randsource allowlist) key off this.
func (p *Pass) Rel() string {
	if p.Path == p.Module {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.Module+"/")
}

// Reportf records a finding at pos unless a //femtovet:ignore directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.ignores[position.Filename]; ok && lines[position.Line] {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// collectIgnores scans file comments for femtovet:ignore directives. A
// directive suppresses diagnostics on its own line (trailing comment) and on
// the following line (standalone comment).
func (p *Pass) collectIgnores() {
	p.ignores = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "femtovet:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "femtovet:ignore"))
				if rest != "" && !directiveCovers(rest, p.Analyzer.Name) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if p.ignores[pos.Filename] == nil {
					p.ignores[pos.Filename] = make(map[int]bool)
				}
				p.ignores[pos.Filename][pos.Line] = true
				p.ignores[pos.Filename][pos.Line+1] = true
			}
		}
	}
}

// directiveCovers reports whether a comma-separated analyzer list names the
// given analyzer.
func directiveCovers(list, name string) bool {
	for _, part := range strings.Split(list, ",") {
		if strings.TrimSpace(part) == name {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{RandSource, MapIter, FloatEq, ProbRange, ErrDrop}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to each package and returns all
// findings sorted by file, line, column, and analyzer name.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Module:   m.Path,
				Path:     pkg.Path,
				Fset:     m.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
			}
			pass.collectIgnores()
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// funcFor returns the innermost function declaration or literal enclosing
// pos in file, preferring the most deeply nested.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			// Not an ancestor; skip its subtree entirely.
			if n.Pos() > pos {
				return false
			}
			return true
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			name = fd.Name.Name
		}
		return true
	})
	return name
}

// calleeFunc resolves the called function object of a call expression, or
// nil for builtins, type conversions, and indirect calls through values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
