// Package analysis is femtocr's domain-aware static-analysis suite.
//
// The Go compiler cannot check the properties this reproduction actually
// depends on: every stochastic draw must flow through internal/rng so runs
// are bit-reproducible, probabilities must stay in [0, 1] for the Bayesian
// fusion and collision-bound access decisions, floating-point comparisons in
// the solvers must use tolerances, and map iteration must not leak Go's
// randomized ordering into results. Each analyzer in this package enforces
// one such invariant; cmd/femtovet drives the suite over the module and
// exits nonzero on any finding so it can gate CI.
//
// The package is dependency-free by construction: it uses only the standard
// library's go/parser, go/ast, and go/types, so the module stays
// offline-buildable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"femtocr/internal/analysis/flow"
)

// TextEdit is one byte-range replacement of a suggested fix. Pos == End
// inserts NewText without removing anything.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Fix is a mechanical rewrite that resolves a finding, applied by
// `femtovet -fix` through go/format.
type Fix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Position // resolved file:line:column
	Analyzer string         // name of the reporting analyzer
	Message  string
	Fix      *Fix // optional mechanical rewrite, nil when none applies
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check of the suite. Run inspects a type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "randsource"
	Doc  string // one-line description of the enforced invariant
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Module   string // module path, e.g. "femtocr"
	Path     string // package import path, e.g. "femtocr/internal/core"
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Index    *flow.Index // module-wide function index for interprocedural analyzers

	diags   []Diagnostic
	ignores map[string]map[int]bool // filename -> suppressed line -> present
}

// Rel returns the package path relative to the module root ("" for the root
// package). Path-scoped policies (the randsource allowlist) key off this.
func (p *Pass) Rel() string {
	if p.Path == p.Module {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.Module+"/")
}

// Reportf records a finding at pos unless a //femtovet:ignore directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportFixf records a finding carrying a suggested mechanical fix.
func (p *Pass) ReportFixf(pos token.Pos, fix *Fix, format string, args ...any) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.ignores[position.Filename]; ok && lines[position.Line] {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// collectIgnores scans file comments for femtovet:ignore directives. A
// well-formed directive
//
//	//femtovet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// suppresses the named analyzers on its own line (trailing comment) and on
// the following line (standalone comment). Bare or reasonless directives
// suppress nothing; the directives meta-check flags them.
func (p *Pass) collectIgnores() {
	p.ignores = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseDirective(c.Text)
				if !ok || dir.Kind != "ignore" {
					continue
				}
				if len(dir.Names) == 0 || dir.Reason == "" || !directiveCovers(dir.Names, p.Analyzer.Name) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if p.ignores[pos.Filename] == nil {
					p.ignores[pos.Filename] = make(map[int]bool)
				}
				p.ignores[pos.Filename][pos.Line] = true
				p.ignores[pos.Filename][pos.Line+1] = true
			}
		}
	}
}

// directive is one parsed //femtovet:<kind> comment.
type directive struct {
	Kind   string   // "ignore", "unit", "index", "fixturepath", "hotpath", ...
	Arg    string   // raw argument text after the kind (reason stripped for ignore)
	Names  []string // ignore/owns/borrows: the comma-separated name list
	Reason string   // the text after " -- " (mandatory for ignore and coldpath)
}

// parseDirective recognizes femtovet directive comments. It returns ok
// false for ordinary comments. Every directive accepts an optional
// ` -- <text>` tail: for ignore it is the mandatory reason, for the other
// kinds a free-form comment.
func parseDirective(comment string) (directive, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "femtovet:")
	if !ok {
		return directive{}, false
	}
	kind, arg, _ := strings.Cut(rest, " ")
	d := directive{Kind: kind}
	head, tail, hasTail := strings.Cut(arg, "--")
	if hasTail {
		d.Reason = strings.TrimSpace(tail)
	}
	d.Arg = strings.TrimSpace(head)
	if kind == "ignore" || kind == "owns" || kind == "borrows" {
		for _, part := range strings.Split(d.Arg, ",") {
			if name := strings.TrimSpace(part); name != "" {
				d.Names = append(d.Names, name)
			}
		}
	}
	return d, true
}

// funcDirs holds the function-level femtovet directives attached to one
// declaration's doc comment: the hot/cold path markers and the ownership
// contracts of its parameters.
type funcDirs struct {
	Hot     bool
	Cold    bool
	Owns    map[string]bool
	Borrows map[string]bool
}

// funcDirectives parses the femtovet directives in fd's doc comment.
func funcDirectives(fd *ast.FuncDecl) funcDirs {
	var out funcDirs
	if fd.Doc == nil {
		return out
	}
	for _, c := range fd.Doc.List {
		d, ok := parseDirective(c.Text)
		if !ok {
			continue
		}
		switch d.Kind {
		case "hotpath":
			out.Hot = true
		case "coldpath":
			out.Cold = true
		case "owns":
			if out.Owns == nil {
				out.Owns = make(map[string]bool)
			}
			for _, n := range d.Names {
				out.Owns[n] = true
			}
		case "borrows":
			if out.Borrows == nil {
				out.Borrows = make(map[string]bool)
			}
			for _, n := range d.Names {
				out.Borrows[n] = true
			}
		}
	}
	return out
}

// directiveCovers reports whether the analyzer list names the given
// analyzer.
func directiveCovers(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		RandSource, MapIter, FloatEq, ProbRange, ErrDrop,
		UnitCheck, SeedFlow, IdxDomain, HotPath, PoolSafe,
		AliasCheck, GridSlot, FoldOrder, SyncGuard, Directives,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Index builds the module-wide flow index the interprocedural analyzers
// consult. The result is memoized on the module.
func (m *Module) Index() *flow.Index {
	if m.flowIndex == nil {
		ix := flow.NewIndex()
		for _, pkg := range m.Packages {
			ix.Add(pkg.Path, pkg.Files, pkg.Info)
		}
		m.flowIndex = ix
	}
	return m.flowIndex
}

// RunAnalyzers applies each analyzer to each package and returns all
// findings sorted by file, line, column, and analyzer name.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Diagnostic {
	ix := m.Index()
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Module:   m.Path,
				Path:     pkg.Path,
				Fset:     m.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Index:    ix,
			}
			pass.collectIgnores()
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// funcFor returns the innermost function declaration or literal enclosing
// pos in file, preferring the most deeply nested.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			// Not an ancestor; skip its subtree entirely.
			if n.Pos() > pos {
				return false
			}
			return true
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			name = fd.Name.Name
		}
		return true
	})
	return name
}

// calleeFunc resolves the called function object of a call expression, or
// nil for builtins, type conversions, and indirect calls through values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
