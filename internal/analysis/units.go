package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"femtocr/internal/analysis/flow"
)

// Unit is one unit-of-measure family tracked by the unitcheck analyzer.
// Quantities of different families must never meet under +, -, comparison,
// assignment, or parameter passing; dB and linear power ratios additionally
// have dedicated conversion functions (fading.FromDB / fading.ToDB) that
// unitcheck suggests as fixes.
type Unit string

// The unit families of the registry. They mirror the physical quantities
// the paper's equations move between: logarithmic power ratios and PSNR
// (dB), linear power ratios (SINR, channel gain), link rates (bps),
// probabilities (sensing errors, posteriors, loss rates), time-share
// fractions rho in [0, 1] of eq. (10), and slot counts.
const (
	UnitDB     Unit = "dB"
	UnitLinear Unit = "linear"
	UnitBps    Unit = "bps"
	UnitProb   Unit = "prob"
	UnitShare  Unit = "share"
	UnitSlots  Unit = "slots"
)

// knownUnits maps annotation spellings to families.
var knownUnits = map[string]Unit{
	"dB":     UnitDB,
	"db":     UnitDB,
	"linear": UnitLinear,
	"bps":    UnitBps,
	"prob":   UnitProb,
	"share":  UnitShare,
	"slots":  UnitSlots,
}

// conversionFuncs are the sanctioned unit-crossing functions, keyed by the
// suffix of types.Func.FullName so fixtures and the module itself resolve
// identically. Each entry gives the unit of the sole parameter and of the
// result.
var conversionFuncs = map[string]struct{ param, result Unit }{
	"internal/fading.FromDB": {UnitDB, UnitLinear},
	"internal/fading.ToDB":   {UnitLinear, UnitDB},
}

// unitWords maps identifier word segments (via splitWords) to families.
// The dB suffix convention is handled separately since "dB" splits
// unhelpfully.
var unitWords = map[string]Unit{
	"psnr":          UnitDB,
	"prob":          UnitProb,
	"probability":   UnitProb,
	"probabilities": UnitProb,
	"posterior":     UnitProb,
	"posteriors":    UnitProb,
	"pfa":           UnitProb,
	"pmd":           UnitProb,
	"share":         UnitShare,
	"shares":        UnitShare,
	"bps":           UnitBps,
	"kbps":          UnitBps,
	"mbps":          UnitBps,
}

// unitFromName derives a unit from an identifier by naming convention:
// a DB/Db/dB suffix marks decibels, and word segments like PSNR, Prob,
// Share, and Bps mark their families.
func unitFromName(name string) Unit {
	if strings.HasSuffix(name, "DB") || strings.HasSuffix(name, "Db") ||
		strings.HasSuffix(name, "dB") || name == "db" {
		return UnitDB
	}
	for _, w := range splitWords(name) {
		if u, ok := unitWords[w]; ok {
			return u
		}
	}
	return ""
}

// unitRegistry resolves units of objects and expressions for one analysis
// run. Annotations come from //femtovet:unit directives anywhere in the
// module (collected through the flow index); everything else falls back to
// naming conventions.
type unitRegistry struct {
	annotated map[types.Object]Unit
}

// unitRegistries memoizes one registry per flow index; analyzers run
// sequentially, so plain map access is safe.
var unitRegistries = map[*flow.Index]*unitRegistry{}

// unitsFor returns the memoized registry for the given index, building it
// on first use. A nil index yields an annotation-free registry.
func unitsFor(ix *flow.Index) *unitRegistry {
	if ix == nil {
		return &unitRegistry{annotated: map[types.Object]Unit{}}
	}
	if r, ok := unitRegistries[ix]; ok {
		return r
	}
	r := &unitRegistry{annotated: map[types.Object]Unit{}}
	for _, p := range ix.Packages() {
		for _, file := range p.Files {
			r.collectFile(file, p.Info)
		}
	}
	unitRegistries[ix] = r
	return r
}

// collectFile records every //femtovet:unit annotation of one file. The
// directive may sit on a var/const spec, a struct field, a function
// parameter or result field, or a function declaration (where it names the
// result unit).
func (r *unitRegistry) collectFile(file *ast.File, info *types.Info) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GenDecl:
			if u, ok := unitDirective(x.Doc); ok {
				for _, spec := range x.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						r.bindNames(info, vs.Names, u)
					}
				}
			}
		case *ast.ValueSpec:
			if u, ok := unitDirective(x.Doc, x.Comment); ok {
				r.bindNames(info, x.Names, u)
			}
		case *ast.Field:
			if u, ok := unitDirective(x.Doc, x.Comment); ok {
				r.bindNames(info, x.Names, u)
			}
		case *ast.FuncDecl:
			if u, ok := unitDirective(x.Doc); ok {
				if obj, isFn := info.Defs[x.Name].(*types.Func); isFn {
					r.annotated[obj] = u
				}
			}
		}
		return true
	})
}

func (r *unitRegistry) bindNames(info *types.Info, names []*ast.Ident, u Unit) {
	for _, name := range names {
		if obj := info.Defs[name]; obj != nil {
			r.annotated[obj] = u
		}
	}
}

// unitDirective extracts a //femtovet:unit annotation from the given
// comment groups.
func unitDirective(groups ...*ast.CommentGroup) (Unit, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			d, ok := parseDirective(c.Text)
			if !ok || d.Kind != "unit" {
				continue
			}
			if u, known := knownUnits[d.Arg]; known {
				return u, true
			}
		}
	}
	return "", false
}

// objUnit resolves the unit of a declared object: explicit annotation
// first, then the naming convention, restricted to numeric-valued objects
// (or containers of numerics, whose elements carry the unit).
func (r *unitRegistry) objUnit(obj types.Object) Unit {
	if obj == nil {
		return ""
	}
	if u, ok := r.annotated[obj]; ok {
		return u
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
		if !numericValued(obj.Type()) {
			return ""
		}
		return unitFromName(obj.Name())
	}
	return ""
}

// paramUnit resolves the unit expected by the i-th parameter of fn.
func (r *unitRegistry) paramUnit(fn *types.Func, i int) Unit {
	if conv, ok := conversionFuncs[convKey(fn)]; ok && i == 0 {
		return conv.param
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil || i >= sig.Params().Len() {
		return ""
	}
	return r.objUnit(sig.Params().At(i))
}

// resultUnit resolves the unit of fn's single result: the conversion
// table, an explicit annotation on the declaration, or the naming
// convention applied to the function name.
func (r *unitRegistry) resultUnit(fn *types.Func) Unit {
	if conv, ok := conversionFuncs[convKey(fn)]; ok {
		return conv.result
	}
	if u, ok := r.annotated[fn]; ok {
		return u
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results() == nil || sig.Results().Len() != 1 {
		return ""
	}
	if !numericValued(sig.Results().At(0).Type()) {
		return ""
	}
	return unitFromName(fn.Name())
}

// convKey renders the conversion-table key for fn: the tail of its full
// name starting at the last "internal/" segment, or the full name.
func convKey(fn *types.Func) string {
	full := fn.FullName()
	if i := strings.LastIndex(full, "internal/"); i >= 0 {
		return full[i:]
	}
	return full
}

// exprUnit infers the unit family of an expression, returning "" when
// unknown. Constants are unit-free: they adopt the unit of whatever they
// meet, so they never conflict.
func (r *unitRegistry) exprUnit(info *types.Info, e ast.Expr) Unit {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return "" // compile-time constant, unit-free
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return r.exprUnit(info, x.X)
	case *ast.UnaryExpr:
		return r.exprUnit(info, x.X)
	case *ast.Ident:
		return r.objUnit(info.ObjectOf(x))
	case *ast.SelectorExpr:
		obj := info.ObjectOf(x.Sel)
		if _, isFn := obj.(*types.Func); isFn {
			return "" // method value; call results are handled below
		}
		return r.objUnit(obj)
	case *ast.IndexExpr:
		// Elements of a registered container carry the container's unit.
		return r.exprUnit(info, x.X)
	case *ast.CallExpr:
		if fn := flow.Callee(info, x); fn != nil {
			return r.resultUnit(fn)
		}
		return ""
	case *ast.BinaryExpr:
		ux := r.exprUnit(info, x.X)
		uy := r.exprUnit(info, x.Y)
		switch x.Op.String() {
		case "+", "-":
			if ux == uy {
				return ux
			}
			if ux == "" {
				return uy
			}
			if uy == "" {
				return ux
			}
		}
		return ""
	}
	return ""
}

// numericValued reports whether t is a numeric basic type or an array,
// slice, or map of one, unwrapping named types.
func numericValued(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Slice:
		return numericValued(u.Elem())
	case *types.Array:
		return numericValued(u.Elem())
	case *types.Map:
		return numericValued(u.Elem())
	}
	return false
}
