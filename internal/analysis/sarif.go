package analysis

import "encoding/json"

// SARIF output, per the static-analysis results interchange format 2.1.0.
// Only the subset GitHub code scanning and editors actually consume is
// emitted: tool driver with rule metadata, and one result per finding with a
// physical location. Types mirror the spec's property names.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders the findings as a SARIF 2.1.0 log. analyzers supplies the
// rule metadata (every analyzer that ran, findings or not); rel maps
// absolute filenames to module-relative URIs. The encoding is deterministic:
// rules in suite order, results in diags order, two-space indentation.
func SARIF(analyzers []*Analyzer, diags []Diagnostic, rel func(string) string) ([]byte, error) {
	driver := sarifDriver{
		Name:  "femtovet",
		Rules: []sarifRule{},
	}
	ruleIndex := make(map[string]int)
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = len(driver.Rules)
			ruleIndex[d.Analyzer] = idx
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifMessage{Text: d.Analyzer},
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: rel(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
