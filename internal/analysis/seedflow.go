package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"femtocr/internal/analysis/flow"
)

// SeedFlow proves RNG provenance: every rng.Stream a simulation package
// touches must descend from the seeded root (rng.New) through Split /
// SplitIndex. Orphan streams (zero-value constructions) silently decouple
// a component from the root seed, hard-coded literal seeds in library
// packages create a second root the caller cannot control, and a stream
// shared with a goroutine races its PCG state — all three destroy the
// bit-reproducibility that the determinism regression tests rely on.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "rng.Stream values not derived from the seeded root: orphan streams, hard-coded root seeds, streams shared across goroutines",
	Run:  runSeedFlow,
}

// seedRootPackages are the module-relative prefixes allowed to create RNG
// roots with literal seeds: command-line entry points, runnable examples,
// and the experiment harness (whose figures fix seeds by design).
var seedRootPackages = []string{"cmd/", "examples/", "internal/experiments"}

func runSeedFlow(pass *Pass) {
	rel := pass.Rel()
	if rel == "internal/rng" {
		return // the one package allowed to construct streams
	}
	sf := &seedFlow{pass: pass, fresh: make(map[*types.Func]freshState)}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if isStreamType(pass.Info.TypeOf(x)) {
					pass.Reportf(x.Pos(), "orphan rng.Stream: zero-value construction is not derived from the seeded root; use rng.New or Split")
				}
			case *ast.CallExpr:
				sf.checkCall(x, rel)
			case *ast.ValueSpec:
				if x.Type != nil && len(x.Values) == 0 && isStreamValueType(pass.Info.TypeOf(x.Type)) {
					pass.Reportf(x.Pos(), "orphan rng.Stream: zero-value var is not derived from the seeded root; use rng.New or Split")
				}
			case *ast.StructType:
				for _, f := range x.Fields.List {
					if isStreamValueType(pass.Info.TypeOf(f.Type)) {
						pass.Reportf(f.Pos(), "value-typed rng.Stream field starts as an orphan zero stream; store *rng.Stream from a Split instead")
					}
				}
			case *ast.GoStmt:
				sf.checkGo(x)
			case *ast.FuncDecl:
				sf.checkSplitLabels(x)
			}
			return true
		})
	}
}

type seedFlow struct {
	pass  *Pass
	fresh map[*types.Func]freshState
}

type freshState int

const (
	freshUnknown freshState = iota
	freshVisiting
	freshYes
	freshNo
)

// checkCall flags new(rng.Stream) and hard-coded literal seeds to rng.New
// outside the entry-point packages.
func (sf *seedFlow) checkCall(call *ast.CallExpr, rel string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "new" && len(call.Args) == 1 {
		if _, isBuiltin := sf.pass.Info.Uses[id].(*types.Builtin); isBuiltin && isStreamValueType(sf.pass.Info.TypeOf(call.Args[0])) {
			sf.pass.Reportf(call.Pos(), "orphan rng.Stream: new(rng.Stream) is not derived from the seeded root; use rng.New or Split")
			return
		}
	}
	fn := flow.Callee(sf.pass.Info, call)
	if fn == nil || !isRNGFunc(fn, "New") || len(call.Args) != 1 {
		return
	}
	tv, ok := sf.pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return // seed is plumbed from a variable, parameter, or config
	}
	for _, allowed := range seedRootPackages {
		if rel == strings.TrimSuffix(allowed, "/") || strings.HasPrefix(rel, allowed) {
			return
		}
	}
	sf.pass.Reportf(call.Pos(), "rng.New(%s) with a hard-coded seed creates a second RNG root in library package %s; accept a *rng.Stream split from the caller's root", tv.Value, sf.pass.Path)
}

// checkGo flags streams that cross into a goroutine without a fresh
// per-goroutine Split: stream-typed call arguments that are not freshly
// derived, and stream variables captured by the goroutine's function
// literal.
func (sf *seedFlow) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if isStreamType(sf.pass.Info.TypeOf(arg)) && !sf.freshExpr(arg) {
			sf.pass.Reportf(arg.Pos(), "rng.Stream shared with a goroutine; streams are not concurrency-safe — pass stream.Split(label) instead")
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := sf.pass.Info.Uses[id].(*types.Var)
		if !ok || !isStreamType(obj.Type()) {
			return true
		}
		// Captured iff declared outside the literal.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			sf.pass.Reportf(id.Pos(), "rng.Stream %q captured by a goroutine; streams are not concurrency-safe — derive one per goroutine with Split", id.Name)
		}
		return true
	})
}

// checkSplitLabels flags two Split calls on the same receiver with the
// same constant label inside one function: the "independent" child streams
// are bit-identical, which is almost never intended.
func (sf *seedFlow) checkSplitLabels(fd *ast.FuncDecl) {
	type key struct {
		recv  types.Object
		label string
	}
	seen := make(map[key]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := flow.Callee(sf.pass.Info, call)
		if fn == nil || !isRNGFunc(fn, "Split") || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := rootIdent(sel.X)
		if recv == nil {
			return true
		}
		obj := sf.pass.Info.ObjectOf(recv)
		tv, tok := sf.pass.Info.Types[call.Args[0]]
		if obj == nil || !tok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		k := key{recv: obj, label: constant.StringVal(tv.Value)}
		if seen[k] {
			sf.pass.Reportf(call.Pos(), "duplicate Split label %q on the same stream: the derived streams are bit-identical, not independent", k.label)
		}
		seen[k] = true
		return true
	})
}

// freshExpr reports whether e yields a freshly derived stream: a direct
// New/Split/SplitIndex call, a call into a module function all of whose
// return paths are fresh (resolved interprocedurally through the flow
// index), or a local variable whose sole definition is fresh.
func (sf *seedFlow) freshExpr(e ast.Expr) bool {
	return sf.freshIn(e, sf.pass.Info, nil)
}

func (sf *seedFlow) freshIn(e ast.Expr, info *types.Info, du *flow.DefUse) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := flow.Callee(info, x)
		if fn == nil {
			return false
		}
		if isRNGFunc(fn, "New") || isRNGFunc(fn, "Split") || isRNGFunc(fn, "SplitIndex") {
			return true
		}
		return sf.freshFunc(fn)
	case *ast.Ident:
		v, ok := info.ObjectOf(x).(*types.Var)
		if !ok || du == nil {
			return false
		}
		if def := du.SoleDef(v); def != nil {
			return sf.freshIn(def, info, du)
		}
		return false
	}
	return false
}

// freshFunc reports whether every return path of a module function yields
// a fresh stream, memoized; cycles and unindexed functions are
// conservatively not fresh.
func (sf *seedFlow) freshFunc(fn *types.Func) bool {
	switch sf.fresh[fn] {
	case freshYes:
		return true
	case freshNo, freshVisiting:
		return false
	}
	ix := sf.pass.Index
	if ix == nil {
		return false
	}
	body := ix.FuncOf(fn)
	if body == nil {
		sf.fresh[fn] = freshNo
		return false
	}
	sf.fresh[fn] = freshVisiting
	du := flow.NewDefUse(body.Decl, body.Info)
	fresh := true
	returns := 0
	ast.Inspect(body.Decl, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isStreamType(body.Info.TypeOf(res)) {
				continue
			}
			returns++
			if !sf.freshIn(res, body.Info, du) {
				fresh = false
			}
		}
		return true
	})
	if returns == 0 {
		fresh = false
	}
	if fresh {
		sf.fresh[fn] = freshYes
	} else {
		sf.fresh[fn] = freshNo
	}
	return fresh
}

// isRNGFunc reports whether fn is the named function or method of the
// internal/rng package.
func isRNGFunc(fn *types.Func, name string) bool {
	return fn.Name() == name && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/rng")
}

// isStreamType reports whether t is rng.Stream or *rng.Stream.
func isStreamType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isStreamValueType(t)
}

// isStreamValueType reports whether t is the value type rng.Stream.
func isStreamValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Stream" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/rng")
}
