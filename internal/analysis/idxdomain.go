package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"femtocr/internal/analysis/flow"
)

// IdxDomain tracks index domains — which axis (user, channel, slot, fbs) a
// loop variable ranges over — and flags indexing a container of one domain
// with a variable of another. The paper's algorithms loop over N users and
// M licensed channels in adjacent lines (eqs. 10-12, Tables I-III); the
// compiler accepts `users[m]` as happily as `users[j]`, and the result is
// an in-range read of the wrong user's state.
//
// Domains come from //femtovet:index annotations on containers (their
// successive index axes, comma-separated) and on integer counts or count
// methods, plus naming conventions (NumUsers, nChannels, len(users), ...).
// A loop variable inherits the domain of its bound; make(T, n) gives the
// new container the domain of n.
var IdxDomain = &Analyzer{
	Name: "idxdomain",
	Doc:  "indexing a container of one index domain (user/channel/slot/...) with a loop variable of another",
	Run:  runIdxDomain,
}

// countNames maps normalized identifier spellings to the domain they
// count. Normalization lowercases and strips underscores, so NumUsers,
// num_users, and nusers all match.
var countNames = map[string]string{
	"numusers":     "user",
	"nusers":       "user",
	"usercount":    "user",
	"numchannels":  "channel",
	"nchannels":    "channel",
	"channelcount": "channel",
	"numslots":     "slot",
	"nslots":       "slot",
	"slotcount":    "slot",
	"numfbs":       "fbs",
	"nfbs":         "fbs",
	"fbscount":     "fbs",
}

// containerNames maps normalized container identifiers to their index
// domain.
var containerNames = map[string]string{
	"users":    "user",
	"channels": "channel",
	"chans":    "channel",
}

func runIdxDomain(pass *Pass) {
	reg := domainsFor(pass.Index)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ck := &idxChecker{
				pass:    pass,
				reg:     reg,
				du:      flow.NewDefUse(fd, pass.Info),
				loops:   make(map[types.Object]string),
				walking: make(map[walkKey]bool),
			}
			ck.run(fd)
		}
	}
}

type idxChecker struct {
	pass  *Pass
	reg   *domainRegistry
	du    *flow.DefUse
	loops map[types.Object]string // loop variable -> bound domain
	// walking guards the SoleDef-chasing recursion: a buffer swap like
	// `a, b = b, a` makes each variable's sole definition mention the
	// other, so a revisited (object, axis) must resolve as unknown
	// instead of recursing forever.
	walking map[walkKey]bool
}

// walkKey identifies one in-progress domain resolution; dim -1 marks a
// boundDomain walk (count position), dims >= 0 a container axis.
type walkKey struct {
	obj types.Object
	dim int
}

func (ck *idxChecker) run(fd *ast.FuncDecl) {
	// First pass: bind loop variables to the domain of their bounds.
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			ck.bindFor(x)
		case *ast.RangeStmt:
			ck.bindRange(x)
		}
		return true
	})
	if len(ck.loops) == 0 {
		return
	}
	// Second pass: check every index expression.
	ast.Inspect(fd, func(n ast.Node) bool {
		ie, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		want := ck.containerDomain(ie.X, 0)
		got := ck.indexDomain(ie.Index)
		if want == "" || got == "" || want == got {
			return true
		}
		ck.pass.Reportf(ie.Index.Pos(), "index-domain mismatch: %s-indexed container %s indexed with %s-domain variable %s",
			want, render(ie.X), got, render(ie.Index))
		return true
	})
}

// bindFor handles `for i := 0; i < bound; i++` (and <=) loops.
func (ck *idxChecker) bindFor(fs *ast.ForStmt) {
	init, ok := fs.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return
	}
	condID, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || ck.pass.Info.ObjectOf(condID) != ck.pass.Info.ObjectOf(id) {
		return
	}
	if dom := ck.boundDomain(cond.Y); dom != "" {
		ck.loops[ck.pass.Info.ObjectOf(id)] = dom
	}
}

// bindRange gives the key of `for i := range X` the domain of X's first
// index axis.
func (ck *idxChecker) bindRange(rs *ast.RangeStmt) {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Tok != token.DEFINE {
		return
	}
	if dom := ck.containerDomain(rs.X, 0); dom != "" {
		ck.loops[ck.pass.Info.ObjectOf(id)] = dom
	}
}

// indexDomain resolves the domain of an index expression: a tracked loop
// variable, possibly offset by a constant (i+1, i-1 preserve the axis).
func (ck *idxChecker) indexDomain(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := ck.pass.Info.ObjectOf(x); obj != nil {
			return ck.loops[obj]
		}
	case *ast.BinaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			return ""
		}
		if isConstExpr(ck.pass.Info, x.Y) {
			return ck.indexDomain(x.X)
		}
		if x.Op == token.ADD && isConstExpr(ck.pass.Info, x.X) {
			return ck.indexDomain(x.Y)
		}
	}
	return ""
}

// boundDomain resolves the domain counted by a loop bound: an annotated or
// conventionally named count, len() of a known container, a call to an
// annotated count method, or a local variable whose sole definition is one
// of these.
func (ck *idxChecker) boundDomain(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ck.pass.Info.ObjectOf(x)
		if obj == nil {
			return ""
		}
		if dom := ck.reg.countOf(obj); dom != "" {
			return dom
		}
		if v, ok := obj.(*types.Var); ok {
			if def := ck.du.SoleDef(v); def != nil {
				k := walkKey{obj, -1}
				if ck.walking[k] {
					return ""
				}
				ck.walking[k] = true
				dom := ck.boundDomain(def)
				delete(ck.walking, k)
				return dom
			}
		}
	case *ast.SelectorExpr:
		return ck.reg.countOf(ck.pass.Info.ObjectOf(x.Sel))
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "len" && len(x.Args) == 1 {
			if _, isBuiltin := ck.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return ck.containerDomain(x.Args[0], 0)
			}
		}
		if fn := flow.Callee(ck.pass.Info, x); fn != nil {
			return ck.reg.countOf(fn)
		}
	}
	return ""
}

// containerDomain resolves the domain of a container's index axis `dim`
// (0 = outermost). Nested IndexExprs shift the axis: Rate[j] views the
// channel axis of a user,channel container.
func (ck *idxChecker) containerDomain(e ast.Expr, dim int) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ck.pass.Info.ObjectOf(x)
		if obj == nil {
			return ""
		}
		if dims := ck.reg.dimsOf(obj); len(dims) > dim {
			return dims[dim]
		}
		if v, ok := obj.(*types.Var); ok {
			if def := ck.du.SoleDef(v); def != nil {
				k := walkKey{obj, dim}
				if ck.walking[k] {
					return ""
				}
				ck.walking[k] = true
				dom := ck.defDomain(def, dim)
				delete(ck.walking, k)
				return dom
			}
		}
	case *ast.SelectorExpr:
		if dims := ck.reg.dimsOf(ck.pass.Info.ObjectOf(x.Sel)); len(dims) > dim {
			return dims[dim]
		}
	case *ast.IndexExpr:
		return ck.containerDomain(x.X, dim+1)
	case *ast.CallExpr:
		if fn := flow.Callee(ck.pass.Info, x); fn != nil {
			if dims := ck.reg.dimsOf(fn); len(dims) > dim {
				return dims[dim]
			}
		}
	}
	return ""
}

// defDomain resolves the domain a defining expression confers on dim:
// make([]T, n) takes n's domain for axis 0; copying another container
// inherits its axes.
func (ck *idxChecker) defDomain(def ast.Expr, dim int) string {
	switch x := ast.Unparen(def).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" && len(x.Args) >= 2 {
			if _, isBuiltin := ck.pass.Info.Uses[id].(*types.Builtin); isBuiltin && dim == 0 {
				return ck.boundDomain(x.Args[1])
			}
			return ""
		}
		return ck.containerDomain(x, dim)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return ck.containerDomain(def, dim)
	}
	return ""
}

// domainRegistry holds //femtovet:index annotations module-wide: container
// objects map to their ordered index axes, integer counts (and count
// methods) to the single domain they measure.
type domainRegistry struct {
	dims   map[types.Object][]string
	counts map[types.Object]string
}

var domainRegistries = map[*flow.Index]*domainRegistry{}

func domainsFor(ix *flow.Index) *domainRegistry {
	if ix == nil {
		return &domainRegistry{dims: map[types.Object][]string{}, counts: map[types.Object]string{}}
	}
	if r, ok := domainRegistries[ix]; ok {
		return r
	}
	r := &domainRegistry{dims: map[types.Object][]string{}, counts: map[types.Object]string{}}
	for _, p := range ix.Packages() {
		for _, file := range p.Files {
			r.collectFile(file, p.Info)
		}
	}
	domainRegistries[ix] = r
	return r
}

func (r *domainRegistry) collectFile(file *ast.File, info *types.Info) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GenDecl:
			if dims, ok := indexDirective(x.Doc); ok {
				for _, spec := range x.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						r.bindNames(info, vs.Names, dims)
					}
				}
			}
		case *ast.ValueSpec:
			if dims, ok := indexDirective(x.Doc, x.Comment); ok {
				r.bindNames(info, x.Names, dims)
			}
		case *ast.StructType:
			for _, f := range x.Fields.List {
				if dims, ok := indexDirective(f.Doc, f.Comment); ok {
					r.bindNames(info, f.Names, dims)
				}
			}
		case *ast.FuncDecl:
			if dims, ok := indexDirective(x.Doc); ok {
				if obj, isFn := info.Defs[x.Name].(*types.Func); isFn {
					r.bind(obj, dims)
				}
			}
		}
		return true
	})
}

func (r *domainRegistry) bindNames(info *types.Info, names []*ast.Ident, dims []string) {
	for _, name := range names {
		if obj := info.Defs[name]; obj != nil {
			r.bind(obj, dims)
		}
	}
}

// bind routes an annotation by the object's type: containers get index
// axes, integer-valued objects (and methods returning one) are counts.
func (r *domainRegistry) bind(obj types.Object, dims []string) {
	t := obj.Type()
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results() == nil || sig.Results().Len() != 1 {
			return
		}
		t = sig.Results().At(0).Type()
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		r.dims[obj] = dims
	case *types.Basic:
		if len(dims) == 1 {
			r.counts[obj] = dims[0]
		}
	}
}

// countOf resolves the domain counted by an object: annotation first, then
// the naming convention.
func (r *domainRegistry) countOf(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if dom, ok := r.counts[obj]; ok {
		return dom
	}
	return countNames[normalizeName(obj.Name())]
}

// dimsOf resolves the index axes of a container object.
func (r *domainRegistry) dimsOf(obj types.Object) []string {
	if obj == nil {
		return nil
	}
	if dims, ok := r.dims[obj]; ok {
		return dims
	}
	if dom := containerNames[normalizeName(obj.Name())]; dom != "" {
		return []string{dom}
	}
	return nil
}

// indexDirective extracts a //femtovet:index annotation: a comma-separated
// list of axis domains.
func indexDirective(groups ...*ast.CommentGroup) ([]string, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			d, ok := parseDirective(c.Text)
			if !ok || d.Kind != "index" || d.Arg == "" {
				continue
			}
			var dims []string
			for _, part := range strings.Split(d.Arg, ",") {
				if p := strings.TrimSpace(part); p != "" {
					dims = append(dims, p)
				}
			}
			if len(dims) > 0 {
				return dims, true
			}
		}
	}
	return nil, false
}

// normalizeName lowercases and strips underscores for convention lookups.
func normalizeName(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "_", "")
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// render prints a compact source-ish form of simple expressions for
// messages.
func render(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return render(x.X) + "[" + render(x.Index) + "]"
	case *ast.CallExpr:
		return render(x.Fun) + "()"
	case *ast.BinaryExpr:
		return render(x.X) + x.Op.String() + render(x.Y)
	case *ast.BasicLit:
		return x.Value
	}
	return "expr"
}
