package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FloatEq flags == and != between floating-point operands outside approved
// comparison helpers and test files. Exact float equality silently breaks
// the dual/greedy convergence checks and the Theorem 2 / eq. (23) bound
// validation, where accumulated rounding makes bit-equality meaningless.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= between floating-point values outside approved tolerance helpers",
	Run:  runFloatEq,
}

// approvedHelperRx matches the names of functions whose whole purpose is
// float comparison: the exact equality inside them is the implementation of
// the tolerance check itself.
var approvedHelperRx = regexp.MustCompile(`(?i)(approx|almost|close|near|within|toleran)`)

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt := pass.Info.Types[be.X]
			yt := pass.Info.Types[be.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded at compile time; deterministic
			}
			// Comparison against exact zero is a semantically exact idiom,
			// not a rounding hazard: absorbing states (odds == 0), unset
			// config-field sentinels, and division guards all rely on the
			// one float value that arithmetic preserves exactly.
			if isZeroConst(xt) || isZeroConst(yt) {
				return true
			}
			if approvedHelperRx.MatchString(enclosingFuncName(file, be.Pos())) {
				return true
			}
			pass.Reportf(be.Pos(), "exact floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) or an approved helper", be.Op)
			return true
		})
	}
}

func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
