package analysis

import (
	"go/ast"
	"go/types"

	"femtocr/internal/analysis/flow"
)

// SyncGuard checks the three sync-primitive mistakes that turn a
// deterministic worker pool into a flaky one: WaitGroup misuse (Add inside
// the spawned goroutine races with Wait; Done not deferred hangs Wait on a
// panic or early return), locks copied by value (the copy synchronizes
// nothing), and Lock calls whose matching Unlock can be skipped along an
// early-return path. The checks are block-local by design — the runGrid
// contract keeps all synchronization within one lexical scope, and the
// analyzer enforces exactly that shape.
var SyncGuard = &Analyzer{
	Name: "syncguard",
	Doc:  "sync hygiene: WaitGroup.Add before the go statement, Done deferred, no lock copies, no Lock without a reachable Unlock",
	Run:  runSyncGuard,
}

func runSyncGuard(pass *Pass) {
	for _, file := range pass.Files {
		for _, lit := range flow.GoClosures(file) {
			checkGoroutineWG(pass, lit)
		}
		checkLockCopies(pass, file)
		checkLockRelease(pass, file)
	}
}

// checkGoroutineWG inspects one spawned closure for WaitGroup misuse on
// counters captured from outside the closure.
func checkGoroutineWG(pass *Pass, lit *ast.FuncLit) {
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		// Nested go statements get their own GoClosures entry.
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if wg, ok := wgMethod(pass.Info, call, "Add"); ok && outsideLit(wg, lit) {
			pass.Reportf(call.Pos(),
				"%s.Add inside the spawned goroutine races with Wait: if Wait runs before the goroutine is scheduled, the counter never sees the task; call Add before the go statement", wg.Name())
		}
		if wg, ok := wgMethod(pass.Info, call, "Done"); ok && outsideLit(wg, lit) && !underDefer(stack, call) {
			var fix *Fix
			if !insideLoop(stack, lit) {
				fix = &Fix{
					Message: "defer the Done so every exit path signals the WaitGroup",
					Edits:   []TextEdit{{Pos: call.Pos(), End: call.Pos(), NewText: "defer "}},
				}
			}
			pass.ReportFixf(call.Pos(), fix,
				"%s.Done is not deferred: a panic or early return in the goroutine skips it and Wait blocks forever; write `defer %s.Done()` as the goroutine's first statement", wg.Name(), wg.Name())
		}
		return true
	})
}

// checkLockCopies flags values of lock-carrying types copied by value:
// parameters and receivers, plain assignments, and range values.
func checkLockCopies(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Recv != nil {
				checkLockFields(pass, x.Recv, "receiver")
			}
			checkLockFields(pass, x.Type.Params, "parameter")
		case *ast.FuncLit:
			checkLockFields(pass, x.Type.Params, "parameter")
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				if !copiesExistingValue(rhs) {
					continue
				}
				tv, ok := pass.Info.Types[rhs]
				if !ok || !carriesLock(tv.Type) {
					continue
				}
				pass.Reportf(x.Lhs[i].Pos(),
					"assignment copies %s, which contains a sync lock: the copy and the original no longer exclude each other; share a pointer instead", types.ExprString(rhs))
			}
		case *ast.ValueSpec:
			for i, rhs := range x.Values {
				if i >= len(x.Names) || !copiesExistingValue(rhs) {
					continue
				}
				tv, ok := pass.Info.Types[rhs]
				if !ok || !carriesLock(tv.Type) {
					continue
				}
				pass.Reportf(x.Names[i].Pos(),
					"declaration copies %s, which contains a sync lock: the copy and the original no longer exclude each other; share a pointer instead", types.ExprString(rhs))
			}
		case *ast.RangeStmt:
			if x.Value == nil || !carriesLock(typeOfExpr(pass.Info, x.Value)) {
				return true
			}
			pass.Reportf(x.Value.Pos(),
				"range value %s copies a sync lock each iteration: locking the copy synchronizes nothing; iterate by index or over pointers", types.ExprString(x.Value))
		}
		return true
	})
}

// checkLockFields flags parameters or receivers of lock-carrying value
// types.
func checkLockFields(pass *Pass, fields *ast.FieldList, role string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		tv, ok := pass.Info.Types[f.Type]
		if !ok || !carriesLock(tv.Type) {
			continue
		}
		name := types.ExprString(f.Type)
		pass.Reportf(f.Pos(),
			"%s of type %s is passed by value: every call copies the sync lock, so callers and callee lock different copies; pass *%s", role, name, name)
	}
}

// checkLockRelease enforces, block-locally, that every Lock/RLock has a
// reachable matching unlock: either a deferred unlock later in the block,
// or a plain unlock with no return statement between the two.
func checkLockRelease(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			path, method, ok := lockStmt(pass.Info, stmt)
			if !ok {
				continue
			}
			want, isAcquire := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}[method]
			if !isAcquire {
				continue
			}
			resolved := false
			for j := i + 1; j < len(block.List) && !resolved; j++ {
				if d, isDefer := block.List[j].(*ast.DeferStmt); isDefer {
					if p, m, ok := lockCall(pass.Info, d.Call); ok && p == path && m == want {
						resolved = true
					}
					continue
				}
				p, m, ok := lockStmt(pass.Info, block.List[j])
				if !ok || p != path || m != want {
					continue
				}
				for _, mid := range block.List[i+1 : j] {
					reportReturnsBetween(pass, mid, path, method, want)
				}
				resolved = true
			}
			if !resolved {
				pass.Reportf(stmt.Pos(),
					"%s.%s has no matching %s in this block: some path leaves the lock held; defer %s.%s right after the %s", path, method, want, path, want, method)
			}
		}
		return true
	})
}

// reportReturnsBetween flags return statements nested in a statement that
// sits between a plain Lock and its plain Unlock.
func reportReturnsBetween(pass *Pass, stmt ast.Stmt, path, method, want string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false // a nested closure's returns exit the closure, not this frame
		case *ast.ReturnStmt:
			pass.Reportf(n.Pos(),
				"early return between %s.%s and %s.%s leaves the lock held; defer the %s right after the %s", path, method, path, want, want, method)
		}
		return true
	})
}

// lockStmt unwraps an expression statement to a mutex Lock/Unlock call.
func lockStmt(info *types.Info, stmt ast.Stmt) (path, method string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	return lockCall(info, call)
}

// lockCall recognizes Lock/Unlock/RLock/RUnlock on a sync.Mutex or
// sync.RWMutex receiver, returning the receiver's printed path so lock and
// unlock sites can be matched lexically.
func lockCall(info *types.Info, call *ast.CallExpr) (path, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, has := info.Types[sel.X]
	if !has || (!flow.IsNamedType(tv.Type, "sync", "Mutex") && !flow.IsNamedType(tv.Type, "sync", "RWMutex")) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// wgMethod recognizes a call of the named method on a sync.WaitGroup
// receiver and returns the receiver's root variable.
func wgMethod(info *types.Info, call *ast.CallExpr, name string) (*types.Var, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !flow.IsNamedType(tv.Type, "sync", "WaitGroup") {
		return nil, false
	}
	v := rootVar(info, sel.X)
	return v, v != nil
}

// outsideLit reports whether v is declared outside the closure — i.e.
// captured, so it is the counter the parent Waits on.
func outsideLit(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
}

// insideLoop reports whether the innermost statements on the stack, within
// lit, include a loop — prefixing `defer` there would change how many
// times the call runs per iteration.
func insideLoop(stack []ast.Node, lit *ast.FuncLit) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == ast.Node(lit) {
			return false
		}
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// typeOfExpr resolves an expression's type, falling back to the defined
// object for idents a range statement declares (which go/types records in
// Defs, not Types).
func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copiesExistingValue reports whether rhs denotes an existing value whose
// assignment copies it: an identifier, field, element, or dereference.
// Fresh composite literals and call results are new values, not copies of
// a lock someone else may hold.
func copiesExistingValue(rhs ast.Expr) bool {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// carriesLock reports whether copying a value of type t copies sync lock
// state: the sync types themselves, and structs or arrays containing them.
// Pointers, slices, maps, and channels share the lock instead of copying
// it.
func carriesLock(t types.Type) bool {
	return lockIn(t, make(map[types.Type]bool))
}

func lockIn(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
		return lockIn(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockIn(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return false
}
