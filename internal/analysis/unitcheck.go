package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"femtocr/internal/analysis/flow"
)

// UnitCheck enforces the units-of-measure registry: quantities of
// different families (dB vs linear power ratios, probabilities, time-share
// fractions, rates, slot counts) must not meet under +, -, comparison,
// assignment, field initialization, parameter passing, or return. The
// compiler sees only float64 everywhere; a dB value slipped into eq. (8)'s
// linear SINR threshold silently shifts every loss probability in the run.
// For dB/linear mismatches the finding carries a mechanical fix that wraps
// the value in fading.FromDB or fading.ToDB.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "arithmetic, assignments, or calls mixing unit families (dB, linear, bps, prob, share, slots)",
	Run:  runUnitCheck,
}

func runUnitCheck(pass *Pass) {
	reg := unitsFor(pass.Index)
	for _, file := range pass.Files {
		uc := &unitChecker{pass: pass, reg: reg, file: file}
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch x := n.(type) {
			case *ast.BinaryExpr:
				uc.checkBinary(x)
			case *ast.AssignStmt:
				uc.checkAssign(x)
			case *ast.CallExpr:
				uc.checkCall(x)
			case *ast.CompositeLit:
				uc.checkComposite(x)
			case *ast.ReturnStmt:
				uc.checkReturn(x, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
}

type unitChecker struct {
	pass *Pass
	reg  *unitRegistry
	file *ast.File
}

// mixableOps are the binary operators across which unit families must
// agree. Multiplication and division legitimately combine families
// (share * rate, gain * SINR), so they are exempt.
var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true,
	token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func (uc *unitChecker) checkBinary(be *ast.BinaryExpr) {
	if !mixableOps[be.Op] {
		return
	}
	ux := uc.reg.exprUnit(uc.pass.Info, be.X)
	uy := uc.reg.exprUnit(uc.pass.Info, be.Y)
	if ux == "" || uy == "" || ux == uy {
		return
	}
	uc.pass.ReportFixf(be.Pos(), uc.conversionFix(be.Y, uy, ux),
		"unit mismatch: left operand of %q is %s but the right operand is %s%s",
		be.Op, ux, uy, conversionHint(ux, uy))
}

func (uc *unitChecker) checkAssign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		ul := uc.reg.exprUnit(uc.pass.Info, lhs)
		ur := uc.reg.exprUnit(uc.pass.Info, as.Rhs[i])
		if ul == "" || ur == "" || ul == ur {
			continue
		}
		uc.pass.ReportFixf(as.Rhs[i].Pos(), uc.conversionFix(as.Rhs[i], ur, ul),
			"unit mismatch: assigning %s value to %s destination%s", ur, ul, conversionHint(ul, ur))
	}
}

func (uc *unitChecker) checkCall(call *ast.CallExpr) {
	fn := flow.Callee(uc.pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= sig.Params().Len()-1 {
			idx = sig.Params().Len() - 1
		}
		if idx >= sig.Params().Len() {
			break
		}
		want := uc.reg.paramUnit(fn, idx)
		got := uc.reg.exprUnit(uc.pass.Info, arg)
		if want == "" || got == "" || want == got {
			continue
		}
		name := sig.Params().At(idx).Name()
		if name == "" {
			name = "_"
		}
		uc.pass.ReportFixf(arg.Pos(), uc.conversionFix(arg, got, want),
			"unit mismatch: %s value passed to %s parameter %q of %s%s",
			got, want, name, qualifiedName(fn), conversionHint(want, got))
	}
}

func (uc *unitChecker) checkComposite(lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		want := uc.reg.objUnit(uc.pass.Info.ObjectOf(key))
		got := uc.reg.exprUnit(uc.pass.Info, kv.Value)
		if want == "" || got == "" || want == got {
			continue
		}
		uc.pass.ReportFixf(kv.Value.Pos(), uc.conversionFix(kv.Value, got, want),
			"unit mismatch: %s value assigned to %s field %q%s", got, want, key.Name, conversionHint(want, got))
	}
}

func (uc *unitChecker) checkReturn(ret *ast.ReturnStmt, stack []ast.Node) {
	if len(ret.Results) != 1 {
		return
	}
	fd := enclosingDecl(stack)
	if fd == nil {
		return
	}
	fn, ok := uc.pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	want := uc.reg.resultUnit(fn)
	got := uc.reg.exprUnit(uc.pass.Info, ret.Results[0])
	if want == "" || got == "" || want == got {
		return
	}
	uc.pass.ReportFixf(ret.Results[0].Pos(), uc.conversionFix(ret.Results[0], got, want),
		"unit mismatch: returning %s value from %s-result function %s%s",
		got, want, fn.Name(), conversionHint(want, got))
}

// enclosingDecl returns the innermost FuncDecl on the ancestor stack, or
// nil inside func literals (whose result units are not tracked).
func enclosingDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		switch d := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.FuncDecl:
			return d
		}
	}
	return nil
}

// conversionHint suggests the dB/linear bridge when the mismatch is
// exactly that pair.
func conversionHint(a, b Unit) string {
	if (a == UnitDB && b == UnitLinear) || (a == UnitLinear && b == UnitDB) {
		return "; convert with fading.FromDB/ToDB"
	}
	return ""
}

// conversionFix builds the mechanical rewrite wrapping expr to convert
// from got to want, when the pair is dB/linear and the conversion
// functions are reachable from the file.
func (uc *unitChecker) conversionFix(expr ast.Expr, got, want Unit) *Fix {
	var fnName string
	switch {
	case got == UnitDB && want == UnitLinear:
		fnName = "FromDB"
	case got == UnitLinear && want == UnitDB:
		fnName = "ToDB"
	default:
		return nil
	}
	qual, ok := uc.fadingQualifier()
	if !ok {
		return nil
	}
	call := qual + fnName
	return &Fix{
		Message: "wrap with " + call,
		Edits: []TextEdit{
			{Pos: expr.Pos(), End: expr.Pos(), NewText: call + "("},
			{Pos: expr.End(), End: expr.End(), NewText: ")"},
		},
	}
}

// fadingQualifier returns the prefix for calling the fading conversion
// helpers from this file: "" inside the fading package itself, the import
// name when the file imports it, and ok=false otherwise (no fix offered
// rather than an import rewrite).
func (uc *unitChecker) fadingQualifier() (string, bool) {
	if strings.HasSuffix(uc.pass.Path, "internal/fading") {
		return "", true
	}
	for _, imp := range uc.file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if !strings.HasSuffix(path, "internal/fading") {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name + ".", true
		}
		return "fading.", true
	}
	return "", false
}
