package analysis

import (
	"go/ast"
	"regexp"
	"sort"
	"strings"
)

// Directives is the meta-check over femtovet's own comment directives. An
// ignore without an analyzer name silences the whole suite, and one
// without a reason is unauditable — both defeat the point of a baseline
// that is supposed to stay empty. Malformed unit or index annotations
// silently annotate nothing, which is worse than failing loudly here. The
// function-level directives (hotpath, coldpath, owns, borrows) must sit in
// a function's doc comment and, for the ownership pair, name real
// parameters — a typo would silently drop the contract.
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "malformed femtovet directives: bare or reasonless ignores, unknown analyzers, units, or domains, misplaced function-level annotations",
	Run:  runDirectives,
}

// domainRx constrains index-domain tokens to simple lowercase words.
var domainRx = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// knownAnalyzers lists the suite's analyzer names. Kept as a literal (not
// derived from All) to avoid an initialization cycle: All references
// Directives, which runs this check.
var knownAnalyzers = map[string]bool{
	"randsource": true,
	"mapiter":    true,
	"floateq":    true,
	"probrange":  true,
	"errdrop":    true,
	"unitcheck":  true,
	"seedflow":   true,
	"idxdomain":  true,
	"hotpath":    true,
	"poolsafe":   true,
	"aliascheck": true,
	"gridslot":   true,
	"foldorder":  true,
	"syncguard":  true,
	"directives": true,
}

// directiveKinds are the recognized //femtovet:<kind> directives.
var directiveKinds = map[string]bool{
	"ignore":      true,
	"unit":        true,
	"index":       true,
	"fixturepath": true, // fixture-harness only, but legal anywhere
	"hotpath":     true,
	"coldpath":    true,
	"owns":        true,
	"borrows":     true,
	"shared":      true,
	"commutative": true,
}

// funcLevelKinds must appear in a function's doc comment.
var funcLevelKinds = map[string]bool{
	"hotpath":  true,
	"coldpath": true,
	"owns":     true,
	"borrows":  true,
}

func runDirectives(pass *Pass) {
	for _, file := range pass.Files {
		docOf := docComments(file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				checkDirective(pass, c, d, docOf[c])
			}
		}
		checkFuncDirectivePairs(pass, file)
	}
}

// docComments maps each comment that is part of a function declaration's
// doc group to the declaration it documents.
func docComments(file *ast.File) map[*ast.Comment]*ast.FuncDecl {
	out := make(map[*ast.Comment]*ast.FuncDecl)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			out[c] = fd
		}
	}
	return out
}

func checkDirective(pass *Pass, c *ast.Comment, d directive, fd *ast.FuncDecl) {
	switch d.Kind {
	case "ignore":
		if len(d.Names) == 0 {
			pass.Reportf(c.Pos(), "bare femtovet:ignore suppresses nothing; name the analyzer(s): //femtovet:ignore <analyzer> -- <reason>")
			return
		}
		for _, name := range d.Names {
			if !knownAnalyzers[name] {
				pass.Reportf(c.Pos(), "femtovet:ignore names unknown analyzer %q", name)
			}
		}
		if d.Reason == "" {
			pass.Reportf(c.Pos(), "femtovet:ignore without a reason suppresses nothing; append ` -- <reason>`")
		}
	case "unit":
		if _, known := knownUnits[d.Arg]; !known {
			pass.Reportf(c.Pos(), "femtovet:unit %q is not a registered unit family (known: dB, linear, bps, prob, share, slots)", d.Arg)
		}
	case "index":
		if d.Arg == "" {
			pass.Reportf(c.Pos(), "femtovet:index needs a comma-separated list of axis domains, e.g. //femtovet:index user,channel")
			return
		}
		for _, part := range strings.Split(d.Arg, ",") {
			if tok := strings.TrimSpace(part); !domainRx.MatchString(tok) {
				pass.Reportf(c.Pos(), "femtovet:index domain %q must be a lowercase word", tok)
			}
		}
	case "fixturepath":
		if d.Arg == "" {
			pass.Reportf(c.Pos(), "femtovet:fixturepath needs an import path argument")
		}
	case "hotpath":
		if fd == nil {
			pass.Reportf(c.Pos(), "femtovet:hotpath must appear in a function's doc comment; it marks the function as an allocation-free root")
			return
		}
		if d.Arg != "" {
			pass.Reportf(c.Pos(), "femtovet:hotpath takes no argument; the whole function is the root")
		}
	case "coldpath":
		if fd == nil {
			pass.Reportf(c.Pos(), "femtovet:coldpath must appear in a function's doc comment; it stops the hotpath walk at that function")
			return
		}
		if d.Arg != "" {
			pass.Reportf(c.Pos(), "femtovet:coldpath takes no argument")
		}
		if d.Reason == "" {
			pass.Reportf(c.Pos(), "femtovet:coldpath without a reason is unauditable; append ` -- <why this constructor/diagnostic may allocate>`")
		}
	case "owns", "borrows":
		if fd == nil {
			pass.Reportf(c.Pos(), "femtovet:%s must appear in a function's doc comment; it names that function's parameters", d.Kind)
			return
		}
		if len(d.Names) == 0 {
			pass.Reportf(c.Pos(), "femtovet:%s needs a comma-separated parameter list, e.g. //femtovet:%s in, out", d.Kind, d.Kind)
			return
		}
		declared := declaredParamNames(fd)
		for _, name := range d.Names {
			if !declared[name] {
				pass.Reportf(c.Pos(), "femtovet:%s names %q, which is not a parameter or receiver of %s", d.Kind, name, fd.Name.Name)
			}
		}
	case "shared":
		if d.Arg != "" {
			pass.Reportf(c.Pos(), "femtovet:shared takes no argument; it marks the write or declaration on its own line")
		}
		if d.Reason == "" {
			pass.Reportf(c.Pos(), "femtovet:shared without a reason is unauditable; append ` -- <why scheduled writes to this state are exclusive>`")
		}
	case "commutative":
		if d.Arg != "" {
			pass.Reportf(c.Pos(), "femtovet:commutative takes no argument; it marks the fold statement or its loop on its own line")
		}
		if d.Reason == "" {
			pass.Reportf(c.Pos(), "femtovet:commutative without a reason is unauditable; append ` -- <why this fold is exact and order-free>`")
		}
	default:
		pass.Reportf(c.Pos(), "unknown femtovet directive %q (known: ignore, unit, index, fixturepath, hotpath, coldpath, owns, borrows, shared, commutative)", d.Kind)
	}
}

// checkFuncDirectivePairs flags contradictory combinations on one
// declaration: hotpath+coldpath, and a parameter claimed by both owns and
// borrows.
func checkFuncDirectivePairs(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		dirs := funcDirectives(fd)
		if dirs.Hot && dirs.Cold {
			pass.Reportf(fd.Doc.Pos(), "%s is annotated both femtovet:hotpath and femtovet:coldpath; pick one", fd.Name.Name)
		}
		both := make([]string, 0, len(dirs.Owns))
		for name := range dirs.Owns {
			if dirs.Borrows[name] {
				both = append(both, name)
			}
		}
		sort.Strings(both)
		for _, name := range both {
			pass.Reportf(fd.Doc.Pos(), "parameter %q of %s is claimed by both femtovet:owns and femtovet:borrows; the contracts are mutually exclusive", name, fd.Name.Name)
		}
	}
}

// declaredParamNames collects the receiver and parameter names of a
// declaration.
func declaredParamNames(fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				out[name.Name] = true
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				out[name.Name] = true
			}
		}
	}
	return out
}
