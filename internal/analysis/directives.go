package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// Directives is the meta-check over femtovet's own comment directives. An
// ignore without an analyzer name silences the whole suite, and one
// without a reason is unauditable — both defeat the point of a baseline
// that is supposed to stay empty. Malformed unit or index annotations
// silently annotate nothing, which is worse than failing loudly here.
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "malformed femtovet directives: bare or reasonless ignores, unknown analyzers, units, or domains",
	Run:  runDirectives,
}

// domainRx constrains index-domain tokens to simple lowercase words.
var domainRx = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// knownAnalyzers lists the suite's analyzer names. Kept as a literal (not
// derived from All) to avoid an initialization cycle: All references
// Directives, which runs this check.
var knownAnalyzers = map[string]bool{
	"randsource": true,
	"mapiter":    true,
	"floateq":    true,
	"probrange":  true,
	"errdrop":    true,
	"unitcheck":  true,
	"seedflow":   true,
	"idxdomain":  true,
	"directives": true,
}

// directiveKinds are the recognized //femtovet:<kind> directives.
var directiveKinds = map[string]bool{
	"ignore":      true,
	"unit":        true,
	"index":       true,
	"fixturepath": true, // fixture-harness only, but legal anywhere
}

func runDirectives(pass *Pass) {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				checkDirective(pass, c, d)
			}
		}
	}
}

func checkDirective(pass *Pass, c *ast.Comment, d directive) {
	switch d.Kind {
	case "ignore":
		if len(d.Names) == 0 {
			pass.Reportf(c.Pos(), "bare femtovet:ignore suppresses nothing; name the analyzer(s): //femtovet:ignore <analyzer> -- <reason>")
			return
		}
		for _, name := range d.Names {
			if !knownAnalyzers[name] {
				pass.Reportf(c.Pos(), "femtovet:ignore names unknown analyzer %q", name)
			}
		}
		if d.Reason == "" {
			pass.Reportf(c.Pos(), "femtovet:ignore without a reason suppresses nothing; append ` -- <reason>`")
		}
	case "unit":
		if _, known := knownUnits[d.Arg]; !known {
			pass.Reportf(c.Pos(), "femtovet:unit %q is not a registered unit family (known: dB, linear, bps, prob, share, slots)", d.Arg)
		}
	case "index":
		if d.Arg == "" {
			pass.Reportf(c.Pos(), "femtovet:index needs a comma-separated list of axis domains, e.g. //femtovet:index user,channel")
			return
		}
		for _, part := range strings.Split(d.Arg, ",") {
			if tok := strings.TrimSpace(part); !domainRx.MatchString(tok) {
				pass.Reportf(c.Pos(), "femtovet:index domain %q must be a lowercase word", tok)
			}
		}
	case "fixturepath":
		if d.Arg == "" {
			pass.Reportf(c.Pos(), "femtovet:fixturepath needs an import path argument")
		}
	default:
		pass.Reportf(c.Pos(), "unknown femtovet directive %q (known: ignore, unit, index, fixturepath)", d.Kind)
	}
}
