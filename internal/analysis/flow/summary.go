package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file adds escape/retention summaries on top of the index: for each
// indexed function, which parameters (and the receiver) can outlive the
// call — stored into a global, handed to sync.Pool.Put, or returned. The
// same intra-procedural engine (Tracker) also answers escape questions for
// arbitrary expressions (composite literals, closures) inside one body,
// which the hotpath analyzer uses to tell stack-friendly constructs from
// per-call heap allocations.
//
// The model is deliberately optimistic where the index runs out of facts:
// calls into unindexed code (standard library, interface methods, func
// values) produce EvUnknownCall events that summaries do not fold into
// Retained, and stores into a sibling parameter's memory stay visible to
// the caller rather than counting as retention. The analyzers that consume
// summaries are advisory gates backed by runtime AllocsPerRun pins, so
// under-approximating on the genuinely undecidable cases beats drowning
// the tree in false positives.

// EventKind classifies one way a tracked value can outlive the function
// call that produced or received it.
type EventKind int

const (
	// EvReturn: the value flows into a return statement or a named result.
	EvReturn EventKind = iota
	// EvStoreGlobal: the value is stored into memory reachable from a
	// package-level variable (or sent on a channel).
	EvStoreGlobal
	// EvStoreParam: the value is stored into memory reachable from another
	// parameter or the receiver (DestMask names them).
	EvStoreParam
	// EvRetainCall: the value is passed to a callee whose summary retains
	// the corresponding parameter; sync.Pool.Put counts unconditionally.
	EvRetainCall
	// EvUnknownCall: the value is passed to a call the index cannot
	// resolve (func values, interface methods, unindexed packages), so
	// retention is unknown.
	EvUnknownCall
)

// Event records one escape event and the set of tracked sources that flow
// into it.
type Event struct {
	Kind     EventKind
	Mask     uint64      // bit i set when source i flows into the event
	DestMask uint64      // EvStoreParam: sources whose memory is written
	Pos      token.Pos   // the return, store, or call argument
	Dest     *types.Var  // EvStoreGlobal/EvStoreParam: base variable, if single
	Callee   *types.Func // EvRetainCall/EvUnknownCall: resolved callee, or nil
}

// ParamFlow is the per-parameter slice of a function summary.
type ParamFlow struct {
	Retained bool // stored into a global or passed to a retaining callee
	Returned bool // flows into a return value
}

// Summary is the escape/retention summary of one indexed function.
type Summary struct {
	Recv   *ParamFlow  // nil for plain functions
	Params []ParamFlow // signature order
}

// Param returns the flow of signature parameter i, treating indexes past
// the end (variadic call sites) as the last parameter.
func (s *Summary) Param(i int) ParamFlow {
	if len(s.Params) == 0 {
		return ParamFlow{}
	}
	if i >= len(s.Params) {
		i = len(s.Params) - 1
	}
	return s.Params[i]
}

// Summaries computes and memoizes per-function summaries over the index.
type Summaries struct {
	ix       *Index
	memo     map[*types.Func]*Summary
	visiting map[*types.Func]bool
}

// Summaries returns the (memoized) summary table of the index.
func (ix *Index) Summaries() *Summaries {
	if ix.sums == nil {
		ix.sums = &Summaries{
			ix:       ix,
			memo:     make(map[*types.Func]*Summary),
			visiting: make(map[*types.Func]bool),
		}
	}
	return ix.sums
}

// Of returns the summary of fn, or nil when fn is not indexed (standard
// library, interface methods) or is part of a recursion cycle still being
// summarized (optimistically treated as neither retaining nor returning).
func (s *Summaries) Of(fn *types.Func) *Summary {
	if sum, ok := s.memo[fn]; ok {
		return sum
	}
	if s.visiting[fn] {
		return nil
	}
	f := s.ix.FuncOf(fn)
	if f == nil {
		return nil
	}
	s.visiting[fn] = true
	defer delete(s.visiting, fn)

	t := NewTracker(s, f)
	recvVar := receiverVar(f)
	recvBit := -1
	if recvVar != nil {
		recvBit = t.AddSourceVar(recvVar)
	}
	paramBits := make([]int, 0, 8)
	for _, v := range paramVars(f) {
		paramBits = append(paramBits, t.AddSourceVar(v))
	}
	t.Solve()

	sum := &Summary{Params: make([]ParamFlow, len(paramBits))}
	if recvBit >= 0 {
		pf := t.flowOf(recvBit)
		sum.Recv = &pf
	}
	for i, bit := range paramBits {
		sum.Params[i] = t.flowOf(bit)
	}
	s.memo[fn] = sum
	return sum
}

// receiverVar returns the receiver variable of a method declaration, or
// nil for plain functions and anonymous receivers.
func receiverVar(f *Func) *types.Var {
	if f.Decl.Recv == nil || len(f.Decl.Recv.List) == 0 {
		return nil
	}
	names := f.Decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	v, _ := f.Info.Defs[names[0]].(*types.Var)
	return v
}

// paramVars returns the declared parameter variables of f in signature
// order; anonymous and blank parameters yield nil entries so indexes stay
// aligned with the signature.
func paramVars(f *Func) []*types.Var {
	var out []*types.Var
	if f.Decl.Type.Params == nil {
		return out
	}
	for _, field := range f.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := f.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// Tracker computes, for a set of designated source values inside one
// function body, the escape events each can reach. Aliasing follows
// direct assignments, slicing, field selection, append, and statically
// resolved calls whose summaries return a parameter.
type Tracker struct {
	sums    *Summaries
	fn      *Func
	srcVar  map[*types.Var]int
	srcExpr map[ast.Expr]int
	nsrc    int
	results map[*types.Var]bool // named result variables: assignment = return
	taint   map[*types.Var]uint64
	events  []Event
	changed bool
}

// NewTracker prepares a tracker over fn's body. Register sources with
// AddSourceVar/AddSourceExpr, then call Solve.
func NewTracker(sums *Summaries, fn *Func) *Tracker {
	t := &Tracker{
		sums:    sums,
		fn:      fn,
		srcVar:  make(map[*types.Var]int),
		srcExpr: make(map[ast.Expr]int),
		results: make(map[*types.Var]bool),
		taint:   make(map[*types.Var]uint64),
	}
	if rt := fn.Decl.Type.Results; rt != nil {
		for _, field := range rt.List {
			for _, name := range field.Names {
				if v, ok := fn.Info.Defs[name].(*types.Var); ok {
					t.results[v] = true
				}
			}
		}
	}
	return t
}

// AddSourceVar registers a variable (typically a parameter) as a tracked
// source and returns its bit index. Nil and value-only (no reference
// payload) variables still get a bit but never produce events.
func (t *Tracker) AddSourceVar(v *types.Var) int {
	bit := t.nsrc
	t.nsrc++
	if v != nil && CarriesRef(v.Type()) {
		t.srcVar[v] = bit
	}
	return bit
}

// AddSourceExpr registers an expression node (a composite literal, &T{},
// or func literal) as a tracked source and returns its bit index.
func (t *Tracker) AddSourceExpr(e ast.Expr) int {
	bit := t.nsrc
	t.nsrc++
	t.srcExpr[e] = bit
	return bit
}

// Events returns the escape events found by Solve.
func (t *Tracker) Events() []Event { return t.events }

// MaskOf returns the source-alias mask of an expression after Solve.
func (t *Tracker) MaskOf(e ast.Expr) uint64 { return t.maskOf(e) }

// EscapeOf folds the events of one source bit: reported as escaping when
// it is returned, stored into a global or parameter memory, or passed to
// a retaining or unresolvable callee.
func (t *Tracker) EscapeOf(bit int) bool {
	m := uint64(1) << bit
	for _, ev := range t.events {
		if ev.Mask&m != 0 {
			return true
		}
	}
	return false
}

// flowOf folds events into the summary view of one source bit.
func (t *Tracker) flowOf(bit int) ParamFlow {
	m := uint64(1) << bit
	var pf ParamFlow
	for _, ev := range t.events {
		if ev.Mask&m == 0 {
			continue
		}
		switch ev.Kind {
		case EvReturn:
			pf.Returned = true
		case EvStoreGlobal, EvRetainCall:
			pf.Retained = true
		}
	}
	return pf
}

// Solve runs the taint walk to a fixpoint (alias chains in practice are
// one or two hops; eight passes bound pathological cycles) and keeps the
// events of the final pass.
func (t *Tracker) Solve() {
	for i := 0; i < 8; i++ {
		t.changed = false
		t.events = t.events[:0]
		t.walk()
		if !t.changed {
			return
		}
	}
}

func (t *Tracker) walk() {
	ast.Inspect(t.fn.Decl, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					t.assign(x.Lhs[i], t.maskOf(x.Rhs[i]), x.Pos())
				}
			} else if len(x.Rhs) == 1 {
				m := t.maskOf(x.Rhs[0])
				for _, lhs := range x.Lhs {
					t.assign(lhs, m, x.Pos())
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) {
					t.assign(name, t.maskOf(x.Values[i]), x.Pos())
				}
			}
		case *ast.RangeStmt:
			m := t.maskOf(x.X)
			if m != 0 {
				t.taintIdent(x.Key, m)
				t.taintIdent(x.Value, m)
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if m := t.maskOf(res); m != 0 {
					t.event(Event{Kind: EvReturn, Mask: m, Pos: res.Pos()})
				}
			}
		case *ast.SendStmt:
			if m := t.maskOf(x.Value); m != 0 {
				t.event(Event{Kind: EvStoreGlobal, Mask: m, Pos: x.Pos()})
			}
		case *ast.CallExpr:
			t.callEvents(x)
		}
		return true
	})
}

// assign routes one store: plain locals accumulate taint, named results
// count as returns, globals and parameter-rooted destinations produce
// store events.
func (t *Tracker) assign(lhs ast.Expr, mask uint64, pos token.Pos) {
	if mask == 0 {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		v, ok := t.fn.Info.ObjectOf(l).(*types.Var)
		if !ok {
			return
		}
		if t.results[v] {
			t.event(Event{Kind: EvReturn, Mask: mask, Pos: pos})
			return
		}
		if isGlobal(v) {
			t.event(Event{Kind: EvStoreGlobal, Mask: mask, Pos: pos, Dest: v})
			return
		}
		t.taintVar(v, mask)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		base := baseVar(t.fn.Info, lhs)
		if base == nil {
			return
		}
		if isGlobal(base) {
			t.event(Event{Kind: EvStoreGlobal, Mask: mask, Pos: pos, Dest: base})
			return
		}
		if bit, ok := t.srcVar[base]; ok {
			destMask := uint64(1) << bit
			if rest := mask &^ destMask; rest != 0 {
				t.event(Event{Kind: EvStoreParam, Mask: rest, DestMask: destMask, Pos: pos, Dest: base})
			}
			return
		}
		if dm := t.taint[base]; dm != 0 {
			// Storing into a local that aliases tracked memory.
			if rest := mask &^ dm; rest != 0 {
				t.event(Event{Kind: EvStoreParam, Mask: rest, DestMask: dm, Pos: pos, Dest: base})
			}
		}
	}
}

// callEvents reports sources passed to retaining or unresolved callees.
func (t *Tracker) callEvents(call *ast.CallExpr) {
	info := t.fn.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if isBuiltinCall(info, call) {
		return // append/copy/len/... handled by maskOf
	}
	fn := Callee(info, call)
	var sum *Summary
	if fn != nil {
		sum = t.sums.Of(fn)
	}
	// Receiver of a method call behaves like an argument.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if m := t.maskOf(sel.X); m != 0 {
			switch {
			case sum != nil && sum.Recv != nil && sum.Recv.Retained:
				t.event(Event{Kind: EvRetainCall, Mask: m, Pos: sel.X.Pos(), Callee: fn})
			case sum == nil:
				t.event(Event{Kind: EvUnknownCall, Mask: m, Pos: sel.X.Pos(), Callee: fn})
			}
		}
	}
	for i, arg := range call.Args {
		m := t.maskOf(arg)
		if m == 0 {
			continue
		}
		switch {
		case fn != nil && isPoolPut(fn):
			t.event(Event{Kind: EvRetainCall, Mask: m, Pos: arg.Pos(), Callee: fn})
		case sum != nil:
			if sum.Param(i).Retained {
				t.event(Event{Kind: EvRetainCall, Mask: m, Pos: arg.Pos(), Callee: fn})
			}
		default:
			t.event(Event{Kind: EvUnknownCall, Mask: m, Pos: arg.Pos(), Callee: fn})
		}
	}
}

// maskOf computes which sources an expression's value may alias.
func (t *Tracker) maskOf(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	var m uint64
	if bit, ok := t.srcExpr[e]; ok {
		m |= 1 << bit
	}
	info := t.fn.Info
	if typ := info.TypeOf(e); typ != nil && !CarriesRef(typ) {
		return m // value types cannot carry an alias out
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		m |= t.maskOf(x.X)
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok {
			m |= t.taint[v]
			if bit, ok := t.srcVar[v]; ok {
				m |= 1 << bit
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			m |= t.maskOf(x.X)
		}
	case *ast.StarExpr:
		m |= t.maskOf(x.X)
	case *ast.SelectorExpr:
		m |= t.maskOf(x.X)
	case *ast.IndexExpr:
		m |= t.maskOf(x.X)
	case *ast.SliceExpr:
		m |= t.maskOf(x.X)
	case *ast.TypeAssertExpr:
		m |= t.maskOf(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= t.maskOf(el)
		}
	case *ast.CallExpr:
		m |= t.callMask(x)
	case *ast.FuncLit:
		m |= t.captureMask(x)
	}
	return m
}

// callMask propagates aliases through call results: conversions and
// append pass their operands through; indexed callees pass through the
// parameters their summary marks Returned.
func (t *Tracker) callMask(call *ast.CallExpr) uint64 {
	info := t.fn.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return t.maskOf(call.Args[0])
		}
		return 0
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			if id.Name == "append" {
				var m uint64
				for _, a := range call.Args {
					m |= t.maskOf(a)
				}
				return m
			}
			return 0
		}
	}
	fn := Callee(info, call)
	if fn == nil {
		return 0
	}
	sum := t.sums.Of(fn)
	if sum == nil {
		return 0
	}
	var m uint64
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sum.Recv != nil && sum.Recv.Returned {
			m |= t.maskOf(sel.X)
		}
	}
	for i, arg := range call.Args {
		if sum.Param(i).Returned {
			m |= t.maskOf(arg)
		}
	}
	return m
}

// captureMask returns the union of aliases a func literal captures from
// its enclosing function; a closure value carries every captured
// reference with it.
func (t *Tracker) captureMask(lit *ast.FuncLit) uint64 {
	info := t.fn.Info
	var m uint64
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || isGlobal(v) {
			return true
		}
		// Captured iff declared outside the literal.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			m |= t.taint[v]
			if bit, ok := t.srcVar[v]; ok {
				m |= 1 << bit
			}
		}
		return true
	})
	return m
}

func (t *Tracker) taintIdent(e ast.Expr, mask uint64) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if v, ok := t.fn.Info.ObjectOf(id).(*types.Var); ok && CarriesRef(v.Type()) {
		t.taintVar(v, mask)
	}
}

func (t *Tracker) taintVar(v *types.Var, mask uint64) {
	if old := t.taint[v]; old|mask != old {
		t.taint[v] = old | mask
		t.changed = true
	}
}

func (t *Tracker) event(ev Event) {
	t.events = append(t.events, ev)
}

// baseVar walks a selector/index/star chain to the variable whose memory
// the expression designates, or nil when the base is not a variable.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isGlobal reports whether v is a package-level variable.
func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isBuiltinCall reports whether the call invokes a language builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// isPoolPut reports whether fn is (*sync.Pool).Put.
func isPoolPut(fn *types.Func) bool {
	return fn.Name() == "Put" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		recvIsSyncPool(fn)
}

// isPoolGet reports whether fn is (*sync.Pool).Get.
func isPoolGet(fn *types.Func) bool {
	return fn.Name() == "Get" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		recvIsSyncPool(fn)
}

// IsPoolPut reports whether fn is (*sync.Pool).Put.
func IsPoolPut(fn *types.Func) bool { return fn != nil && isPoolPut(fn) }

// IsPoolGet reports whether fn is (*sync.Pool).Get.
func IsPoolGet(fn *types.Func) bool { return fn != nil && isPoolGet(fn) }

func recvIsSyncPool(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync"
}

// CarriesRef reports whether values of t can carry a reference to shared
// memory: pointers, slices, maps, channels, funcs, interfaces, and
// aggregates containing any. Strings are immutable and excluded.
func CarriesRef(t types.Type) bool {
	return carriesRef(t, make(map[types.Type]bool))
}

func carriesRef(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return carriesRef(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		return true
	}
}
