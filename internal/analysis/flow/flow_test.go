package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const src = `package p

func leaf() int { return 1 }

func caller() int {
	x := leaf()
	y := x + 1
	return y
}

var pkgInit = leaf()

func multi() (int, int) { return 1, 2 }

func tangled() int {
	a, b := multi()
	c := a
	c = b
	d := a
	return c + d
}
`

func load(t *testing.T) (*token.FileSet, *ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info, pkg
}

func funcNamed(t *testing.T, pkg *types.Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s", name)
	}
	return fn
}

func TestIndexAndCallGraph(t *testing.T) {
	_, file, info, pkg := load(t)
	ix := NewIndex()
	ix.Add("p", []*ast.File{file}, info)

	leaf := funcNamed(t, pkg, "leaf")
	caller := funcNamed(t, pkg, "caller")

	if ix.FuncOf(leaf) == nil || ix.FuncOf(leaf).Decl.Name.Name != "leaf" {
		t.Fatalf("FuncOf(leaf) did not resolve to its declaration")
	}
	if ix.FuncOf(nil) != nil {
		t.Fatalf("FuncOf(nil) must be nil")
	}

	g := ix.CallGraph()
	var fromCaller, fromInit int
	for _, site := range g.CallersOf(leaf) {
		switch site.Caller {
		case caller:
			fromCaller++
		case nil: // the package-level initializer of pkgInit
			fromInit++
		default:
			t.Errorf("unexpected caller %v", site.Caller)
		}
	}
	if fromCaller != 1 || fromInit != 1 {
		t.Fatalf("CallersOf(leaf): got %d from caller, %d from init; want 1 and 1", fromCaller, fromInit)
	}
	if len(g.CalleesOf(caller)) != 1 || g.CalleesOf(caller)[0].Callee != leaf {
		t.Fatalf("CalleesOf(caller) = %v, want one call to leaf", g.CalleesOf(caller))
	}
	if g2 := ix.CallGraph(); g2 != g {
		t.Fatalf("CallGraph not memoized")
	}
}

func TestDefUseSoleDef(t *testing.T) {
	_, file, info, pkg := load(t)
	ix := NewIndex()
	ix.Add("p", []*ast.File{file}, info)

	tangled := ix.FuncOf(funcNamed(t, pkg, "tangled"))
	du := NewDefUse(tangled.Decl, tangled.Info)

	scope := pkg.Scope().Lookup("tangled").(*types.Func).Scope()
	lookup := func(name string) *types.Var {
		_, obj := scope.Innermost(tangled.Decl.Body.Pos()).LookupParent(name, tangled.Decl.Body.End())
		v, ok := obj.(*types.Var)
		if !ok {
			t.Fatalf("no local %s", name)
		}
		return v
	}

	// a and b come from a tuple assignment: unknown, no sole def.
	if du.SoleDef(lookup("a")) != nil {
		t.Errorf("a has a tuple def; SoleDef must be nil")
	}
	// c is assigned twice: no sole def.
	if du.SoleDef(lookup("c")) != nil {
		t.Errorf("c has two defs; SoleDef must be nil")
	}
	if got := len(du.Defs(lookup("c"))); got != 2 {
		t.Errorf("Defs(c) = %d defs, want 2", got)
	}
	// d has exactly one tracked def: the identifier a.
	def := du.SoleDef(lookup("d"))
	id, ok := def.(*ast.Ident)
	if !ok || id.Name != "a" {
		t.Errorf("SoleDef(d) = %v, want identifier a", def)
	}
}
