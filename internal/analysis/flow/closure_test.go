package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const closureSrc = `package q

import "sync"

var global int

func worker(n int) {
	xs := make([]float64, n)
	total := 0
	flag := false
	var wg sync.WaitGroup
	run(n, func(i int) error {
		j := i
		k := j * 2
		xs[k] = float64(i)  // derived-index slot store
		xs[0] = 1           // fixed-index store
		total += i          // shared write
		global = i          // package-level write
		flag = true         // flag write
		if i < len(xs) {    // len probe
			_ = n
		}
		return nil
	})
	wg.Wait()
	_ = total
	_ = flag
}

func run(n int, do func(int) error) {
	for i := 0; i < n; i++ {
		_ = do(i)
	}
}

func launcher(n int) []int {
	out := make([]int, n)
	seen := 0
	for j := 0; j < n; j++ {
		go func(j int) {
			out[j] = j
			seen++
			go func() {
				seen += 2 // nested launch: excluded when skipGo
			}()
		}(j)
	}
	return out
}
`

func loadClosure(t *testing.T) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "q.go", closureSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("q", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info
}

// litsIn returns every func literal under root in source order.
func litsIn(root ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// usesOf filters a summary's uses down to one variable name.
func usesOf(cs *ClosureSummary, name string) []CaptureUse {
	var out []CaptureUse
	for _, u := range cs.Uses {
		if u.Var.Name() == name {
			out = append(out, u)
		}
	}
	return out
}

// TestSummarizeClosure: the worker closure's capture summary classifies a
// derived-index slot store, a fixed-index store, a shared accumulator
// write, a package-level write, and a len probe exactly as the gridslot
// contract needs them.
func TestSummarizeClosure(t *testing.T) {
	_, file, info := loadClosure(t)
	lits := litsIn(file)
	if len(lits) == 0 {
		t.Fatal("no closures found")
	}
	lit := lits[0]
	cs := SummarizeClosure(info, lit, LitParams(info, lit), true)

	xs := usesOf(cs, "xs")
	if len(xs) != 3 {
		t.Fatalf("want 3 uses of xs, got %d: %+v", len(xs), xs)
	}
	// xs[k] = ...: k derives from j derives from the index param i.
	if u := xs[0]; !u.Write || !u.Indexed || !u.ByIndex {
		t.Errorf("xs[k] store misclassified: %+v", u)
	}
	// xs[0] = 1: indexed, but not by anything derived from the index.
	if u := xs[1]; !u.Write || !u.Indexed || u.ByIndex {
		t.Errorf("xs[0] store misclassified: %+v", u)
	}
	// len(xs): a size probe, not a data read.
	if u := xs[2]; u.Write || !u.LenCap {
		t.Errorf("len(xs) misclassified: %+v", u)
	}

	if u := usesOf(cs, "total"); len(u) != 1 || !u[0].Write || u[0].ByIndex {
		t.Errorf("total += i misclassified: %+v", u)
	}
	if u := usesOf(cs, "global"); len(u) != 1 || !u[0].Write {
		t.Errorf("package-level write misclassified: %+v", u)
	}
	if u := usesOf(cs, "flag"); len(u) != 1 || !u[0].Write {
		t.Errorf("flag write misclassified: %+v", u)
	}
	if !cs.Written[xs[0].Var] || !cs.Written[usesOf(cs, "total")[0].Var] {
		t.Errorf("Written set incomplete: %+v", cs.Written)
	}
	// n is read (through _ = n) but never written.
	for _, u := range usesOf(cs, "n") {
		if u.Write {
			t.Errorf("read of n misclassified as write: %+v", u)
		}
	}
}

// TestGoClosuresAndSkip: GoClosures enumerates launched literals
// (including nested ones), and a summary built with skipGo excludes the
// nested launch's statements.
func TestGoClosuresAndSkip(t *testing.T) {
	_, file, info := loadClosure(t)
	gos := GoClosures(file)
	if len(gos) != 2 {
		t.Fatalf("want 2 go closures, got %d", len(gos))
	}
	outer := gos[0]
	cs := SummarizeClosure(info, outer, LitParams(info, outer), true)

	if u := usesOf(cs, "out"); len(u) != 1 || !u[0].ByIndex {
		t.Errorf("out[j] store with param root misclassified: %+v", u)
	}
	// Only the outer seen++ is visible; the nested goroutine's += 2 is its
	// own summary's problem.
	if u := usesOf(cs, "seen"); len(u) != 1 || !u[0].Write {
		t.Errorf("want exactly the outer seen++ with skipGo, got: %+v", u)
	}
	inner := gos[1]
	ics := SummarizeClosure(info, inner, LitParams(info, inner), true)
	if u := usesOf(ics, "seen"); len(u) != 1 || !u[0].Write || u[0].ByIndex {
		t.Errorf("nested closure's seen += 2 misclassified: %+v", u)
	}
}

// TestIsNamedType: the matcher resolves sync types through pointers and
// rejects lookalikes.
func TestIsNamedType(t *testing.T) {
	_, file, info := loadClosure(t)
	var wgType types.Type
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && id.Name == "wg" {
			if obj := info.ObjectOf(id); obj != nil {
				wgType = obj.Type()
			}
		}
		return true
	})
	if wgType == nil {
		t.Fatal("wg not found")
	}
	if !IsNamedType(wgType, "sync", "WaitGroup") {
		t.Errorf("IsNamedType(wg, sync.WaitGroup) = false")
	}
	if IsNamedType(wgType, "sync", "Mutex") {
		t.Errorf("IsNamedType(wg, sync.Mutex) = true")
	}
	if !IsNamedType(types.NewPointer(wgType), "sync", "WaitGroup") {
		t.Errorf("IsNamedType(*wg, sync.WaitGroup) = false")
	}
}
