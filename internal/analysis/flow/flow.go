// Package flow is the dataflow core under femtocr's interprocedural
// analyzers: a module-wide function index, a static call graph, and a
// per-function def-use map. It deliberately stays small — no SSA, no
// pointer analysis — because the properties the analyzers prove (unit
// families, RNG provenance, index domains) only need to follow values
// through direct assignments, returns, and statically resolved calls.
//
// Like the rest of the analysis suite, the package is stdlib-only (go/ast
// and go/types), so the module remains offline-buildable.
package flow

import (
	"go/ast"
	"go/types"
)

// Package is one type-checked package registered with an Index.
type Package struct {
	Path  string // import path
	Files []*ast.File
	Info  *types.Info
}

// Func is one function or method body known to the Index.
type Func struct {
	Obj  *types.Func   // the declared function object
	Decl *ast.FuncDecl // its body, never nil
	File *ast.File     // the file containing the declaration
	Info *types.Info   // type info of the declaring package
	Path string        // import path of the declaring package
}

// Index maps function objects to their declarations across every package
// of the module, so analyzers can follow a call from one package into the
// body it resolves to in another.
type Index struct {
	pkgs  []*Package
	funcs map[*types.Func]*Func
	cg    *CallGraph
	sums  *Summaries
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{funcs: make(map[*types.Func]*Func)}
}

// Add registers one type-checked package. Function declarations without
// bodies (assembly or external linkage) are skipped.
func (ix *Index) Add(path string, files []*ast.File, info *types.Info) {
	p := &Package{Path: path, Files: files, Info: info}
	ix.pkgs = append(ix.pkgs, p)
	ix.cg = nil // invalidate any memoized graph
	ix.sums = nil
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ix.funcs[obj] = &Func{Obj: obj, Decl: fd, File: file, Info: info, Path: path}
		}
	}
}

// Packages returns the registered packages in registration order.
func (ix *Index) Packages() []*Package { return ix.pkgs }

// FuncOf returns the indexed body of obj, or nil when the function is
// declared outside the registered packages (standard library, interface
// methods, func-typed values).
func (ix *Index) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return ix.funcs[obj]
}

// Callee statically resolves a call expression to the function object it
// invokes, or nil for builtins, type conversions, and calls through
// func-typed values. Interface method calls resolve to the interface
// method object, which FuncOf will not find — callers treat that as an
// unresolved call.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// CallSite is one statically resolved call edge.
type CallSite struct {
	Caller *types.Func // enclosing function, nil for package-level initializers
	Callee *types.Func
	Call   *ast.CallExpr
}

// CallGraph holds the statically resolvable call edges of every indexed
// package, in both directions.
type CallGraph struct {
	out map[*types.Func][]*CallSite
	in  map[*types.Func][]*CallSite
}

// CallGraph builds (once, memoized) the static call graph over all
// registered packages.
func (ix *Index) CallGraph() *CallGraph {
	if ix.cg != nil {
		return ix.cg
	}
	g := &CallGraph{
		out: make(map[*types.Func][]*CallSite),
		in:  make(map[*types.Func][]*CallSite),
	}
	for _, p := range ix.pkgs {
		for _, file := range p.Files {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := Callee(p.Info, call); callee != nil {
						caller := enclosingFunc(p.Info, stack)
						site := &CallSite{Caller: caller, Callee: callee, Call: call}
						g.out[caller] = append(g.out[caller], site)
						g.in[callee] = append(g.in[callee], site)
					}
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	ix.cg = g
	return g
}

// enclosingFunc returns the object of the innermost FuncDecl on the
// ancestor stack; calls inside func literals attribute to the declaring
// function, and calls in package-level initializers to nil.
func enclosingFunc(info *types.Info, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				return obj
			}
			return nil
		}
	}
	return nil
}

// CalleesOf returns the call sites made from fn (nil for package-level
// initializer expressions).
func (g *CallGraph) CalleesOf(fn *types.Func) []*CallSite { return g.out[fn] }

// CallersOf returns the call sites that invoke fn.
func (g *CallGraph) CallersOf(fn *types.Func) []*CallSite { return g.in[fn] }

// DefUse records, for one function body, every expression assigned to each
// local variable: plain and short assignments, var-spec initializers, and
// range bindings (recorded as unknown, since the bound value is implicit).
type DefUse struct {
	defs    map[*types.Var][]ast.Expr
	unknown map[*types.Var]bool // has at least one def with no tracked expr
}

// NewDefUse scans root (typically a *ast.FuncDecl) and records definitions.
func NewDefUse(root ast.Node, info *types.Info) *DefUse {
	d := &DefUse{
		defs:    make(map[*types.Var][]ast.Expr),
		unknown: make(map[*types.Var]bool),
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					d.record(info, lhs, x.Rhs[i])
				}
			} else {
				// Tuple assignment: the per-variable value is a component
				// of a multi-result call, not an expression of its own.
				for _, lhs := range x.Lhs {
					d.record(info, lhs, nil)
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) {
					d.recordIdent(info, name, x.Values[i])
				} else if len(x.Values) > 0 {
					d.recordIdent(info, name, nil)
				}
				// A spec with no values is the zero value; leave the
				// variable with no defs so callers can see it is unset.
			}
		case *ast.RangeStmt:
			d.record(info, x.Key, nil)
			d.record(info, x.Value, nil)
		case *ast.IncDecStmt:
			d.record(info, x.X, nil)
		}
		return true
	})
	return d
}

func (d *DefUse) record(info *types.Info, lhs ast.Expr, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	d.recordIdent(info, id, rhs)
}

func (d *DefUse) recordIdent(info *types.Info, id *ast.Ident, rhs ast.Expr) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if rhs == nil {
		d.unknown[v] = true
		return
	}
	d.defs[v] = append(d.defs[v], rhs)
}

// Defs returns every tracked defining expression of v, in source order of
// the recording walk.
func (d *DefUse) Defs(v *types.Var) []ast.Expr { return d.defs[v] }

// SoleDef returns the unique defining expression of v, or nil when v has
// zero defs, several defs, or any untracked def (tuple assignment, range
// binding, increment).
func (d *DefUse) SoleDef(v *types.Var) ast.Expr {
	if d.unknown[v] || len(d.defs[v]) != 1 {
		return nil
	}
	return d.defs[v][0]
}
