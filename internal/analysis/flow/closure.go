package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file extends the dataflow layer with goroutine-launch and
// closure-capture summaries: which variables a worker closure captures from
// its enclosing scope (or from package level), whether each access is a
// read or a write, and whether a write is an element store keyed by the
// task's own index. The gridslot analyzer turns these summaries into the
// deterministic-parallelism contract of experiments.runGrid; foldorder and
// syncguard reuse the launch enumeration.

// CaptureUse is one access a closure makes to a variable it captured from
// an enclosing scope (package-level variables included).
type CaptureUse struct {
	Var     *types.Var // the captured base variable
	Pos     token.Pos  // position of the access
	Write   bool       // assignment, augmented assignment, or ++/--
	Indexed bool       // the access path goes through an element index
	ByIndex bool       // some index expression derives from an index root
	LenCap  bool       // the use is a len/cap argument (size probe, not data)
}

// ClosureSummary records how one closure body touches captured state and
// which of its locals derive from the designated task-index roots.
type ClosureSummary struct {
	Lit     *ast.FuncLit
	Uses    []CaptureUse
	Written map[*types.Var]bool // captured vars with at least one write

	derived map[types.Object]bool
}

// DerivedFromIndex reports whether obj — a parameter or local of the
// closure — is data-derived from one of the index roots the summary was
// built with.
func (cs *ClosureSummary) DerivedFromIndex(obj types.Object) bool {
	return obj != nil && cs.derived[obj]
}

// SummarizeClosure computes the capture summary of lit. roots are the
// task-index variables, typically the closure's own parameters. A local
// counts as index-derived when some definition of it references a root (or
// another derived local), so slot stores like xs[i%k] = v resolve the same
// way xs[i] = v does. When skipGo is true, statements under nested `go`
// launches are excluded — each launched closure gets its own summary with
// its own roots.
func SummarizeClosure(info *types.Info, lit *ast.FuncLit, roots []*types.Var, skipGo bool) *ClosureSummary {
	cs := &ClosureSummary{
		Lit:     lit,
		Written: make(map[*types.Var]bool),
		derived: make(map[types.Object]bool),
	}
	for _, r := range roots {
		if r != nil {
			cs.derived[r] = true
		}
	}
	cs.solveDerived(info, skipGo)
	cs.collectUses(info, skipGo)
	return cs
}

// solveDerived runs the index-derivation fixpoint over the closure body:
// an assignment whose right-hand side references a derived variable makes
// its closure-local target derived too.
func (cs *ClosureSummary) solveDerived(info *types.Info, skipGo bool) {
	for changed := true; changed; {
		changed = false
		cs.inspect(skipGo, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for k, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || cs.derived[obj] || !cs.within(obj.Pos()) {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(st.Rhs) == len(st.Lhs):
					rhs = st.Rhs[k]
				case len(st.Rhs) == 1:
					rhs = st.Rhs[0]
				}
				if rhs != nil && cs.refsDerived(info, rhs) {
					cs.derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// collectUses walks the body and records one CaptureUse per access path
// rooted at a captured variable.
func (cs *ClosureSummary) collectUses(info *types.Info, skipGo bool) {
	var stack []ast.Node
	ast.Inspect(cs.Lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if skipGo {
			if _, isGo := n.(*ast.GoStmt); isGo {
				return false
			}
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || cs.within(v.Pos()) {
			return true
		}
		// Only classify the base of an access path: an ident that is the
		// .Sel of a selector was already covered by its base walk — except
		// for a qualified package-level variable (pkg.Var), whose base
		// resolves to the package name, not the variable.
		qualified := false
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == id {
				base, isIdent := ast.Unparen(sel.X).(*ast.Ident)
				if !isIdent {
					return true
				}
				if _, isPkg := info.ObjectOf(base).(*types.PkgName); !isPkg {
					return true
				}
				qualified = true
			}
		}
		use := cs.classify(info, stack, id, v, qualified)
		cs.Uses = append(cs.Uses, use)
		if use.Write {
			cs.Written[v] = true
		}
		return true
	})
	if len(stack) != 0 { // inspect always balances; keep the invariant loud
		panic("flow: unbalanced closure walk")
	}
}

// classify resolves the access path above the captured ident: how far the
// selector/index chain extends, whether the topmost node sits in write
// position, and whether any index along the path derives from a root.
func (cs *ClosureSummary) classify(info *types.Info, stack []ast.Node, id *ast.Ident, v *types.Var, qualified bool) CaptureUse {
	use := CaptureUse{Var: v, Pos: id.Pos()}
	top := ast.Node(id)
	i := len(stack) - 2
	if qualified {
		top = stack[i] // the pkg.Var selector is the real path base
		i--
	}
	for ; i >= 0; i-- {
		ext := false
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			ext = true
		case *ast.SelectorExpr:
			ext = p.X == top
		case *ast.StarExpr:
			ext = p.X == top
		case *ast.IndexExpr:
			if p.X == top {
				ext = true
				use.Indexed = true
				if cs.refsDerived(info, p.Index) {
					use.ByIndex = true
				}
			}
		case *ast.SliceExpr:
			ext = p.X == top
		}
		if !ext {
			break
		}
		top = stack[i]
	}
	if i >= 0 {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == top {
					use.Write = true
				}
			}
		case *ast.IncDecStmt:
			if p.X == top {
				use.Write = true
			}
		case *ast.CallExpr:
			if fn, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && len(p.Args) > 0 && p.Args[0] == top {
				if fn.Name == "len" || fn.Name == "cap" {
					if _, isBuiltin := info.ObjectOf(fn).(*types.Builtin); isBuiltin {
						use.LenCap = true
					}
				}
			}
		}
	}
	return use
}

// refsDerived reports whether e references any index-derived variable.
func (cs *ClosureSummary) refsDerived(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && cs.derived[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// within reports whether pos falls inside the summarized closure literal.
func (cs *ClosureSummary) within(pos token.Pos) bool {
	return cs.Lit.Pos() <= pos && pos < cs.Lit.End()
}

// inspect walks the closure body, optionally skipping nested go launches.
func (cs *ClosureSummary) inspect(skipGo bool, fn func(ast.Node) bool) {
	ast.Inspect(cs.Lit.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if skipGo {
			if _, isGo := n.(*ast.GoStmt); isGo {
				return false
			}
		}
		return fn(n)
	})
}

// GoClosures returns the func literals launched by `go` statements under
// root, in source order, paired with their launch positions.
func GoClosures(root ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, lit)
			}
		}
		return true
	})
	return out
}

// LitParams returns the declared parameter variables of a func literal in
// signature order.
func LitParams(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// IsNamedType reports whether t — after stripping pointers — is the named
// type pkgPath.name (e.g. "sync", "WaitGroup").
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
