package analysis

import (
	"go/ast"
	"strings"
)

// rngPackage is the only package allowed to import a randomness source
// directly; every other package must draw from its split streams.
const rngPackage = "internal/rng"

// bannedRandImports are the randomness sources that must not appear outside
// internal/rng. crypto/rand is included deliberately: it is unseedable, so
// any draw from it destroys bit-reproducibility.
var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// wallClockAllowed lists the module-relative package prefixes where calling
// time.Now is legitimate: experiment harnesses timing wall-clock cost and
// command-line entry points. Simulation packages must model time with slot
// counters, never the host clock.
var wallClockAllowed = []string{
	"internal/experiments",
	"internal/analysis",
	"cmd/",
	"examples/",
}

// RandSource enforces the determinism funnel: all pseudo-randomness flows
// through internal/rng, and hot simulation packages never read the wall
// clock.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc:  "imports of math/rand, math/rand/v2, or crypto/rand outside internal/rng; time.Now in simulation packages",
	Run:  runRandSource,
}

func runRandSource(pass *Pass) {
	rel := pass.Rel()
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if bannedRandImports[path] && rel != rngPackage {
				pass.Reportf(imp.Pos(), "import of %s outside %s breaks seeded reproducibility; draw from an rng.Stream instead", path, rngPackage)
			}
		}
	}
	if wallClockOK(rel) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); fn != nil && fn.FullName() == "time.Now" {
				pass.Reportf(call.Pos(), "time.Now in simulation package %s: model time with slot counters; wall clock is allowed only under %s", pass.Path, strings.Join(wallClockAllowed, ", "))
			}
			return true
		})
	}
}

func wallClockOK(rel string) bool {
	for _, allowed := range wallClockAllowed {
		if rel == strings.TrimSuffix(allowed, "/") || strings.HasPrefix(rel, allowed) {
			return true
		}
	}
	return false
}
