package analysis

import (
	"go/ast"
	"go/types"

	"femtocr/internal/analysis/flow"
)

// PoolSafe checks the sync.Pool workspace lifecycle the zero-allocation
// hot path depends on: every value taken from a pool (directly or through
// a module wrapper like getWorkspace) must be handed back on every exit
// path, which in this tree means a deferred Put immediately after the Get
// — a plain Put leaks on panics and early error returns. A value must not
// be used after a non-deferred Put, and a value that is still reachable
// when Put runs (returned, stored into a global or a parameter's memory)
// will be recycled under the caller's feet. Getter functions that return
// the pooled value transfer ownership and are exempt by construction.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool lifecycle: Get without deferred Put, Put not deferred, use after Put, Put of a still-reachable value, missing Reset",
	Run:  runPoolSafe,
}

func runPoolSafe(pass *Pass) {
	if pass.Index == nil {
		return
	}
	ps := &poolSafe{
		pass:    pass,
		getters: make(map[*types.Func]getterResult),
		putters: make(map[*types.Func]putterInfo),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				ps.checkFunc(fd)
			}
		}
	}
}

// putterInfo describes a module function that returns its argument to a
// pool: which parameter, and which pool variable it reaches.
type putterInfo struct {
	param int
	pool  *types.Var
	valid bool
}

// getterResult memoizes whether a function is a pool-getter wrapper.
type getterResult struct {
	pool *types.Var
	ok   bool
}

type poolSafe struct {
	pass    *Pass
	getters map[*types.Func]getterResult
	putters map[*types.Func]putterInfo
}

// binding is one `v := <pool get>` statement found in a function body.
type binding struct {
	v    *types.Var
	id   *ast.Ident
	stmt *ast.AssignStmt
	pool *types.Var
}

func (ps *poolSafe) checkFunc(fd *ast.FuncDecl) {
	info := ps.pass.Info
	var binds []binding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok {
			return true
		}
		pool, ok := ps.getRoot(as.Rhs[0], info, nil)
		if !ok {
			return true
		}
		binds = append(binds, binding{v: v, id: id, stmt: as, pool: pool})
		return true
	})
	for _, b := range binds {
		ps.checkBinding(fd, b)
	}
}

func (ps *poolSafe) checkBinding(fd *ast.FuncDecl, b binding) {
	info := ps.pass.Info
	var deferredPuts, plainPuts []*ast.CallExpr
	returned := false

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if arg := ps.putArgOf(x, info); arg != nil {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == b.v {
					if underDefer(stack, x) {
						deferredPuts = append(deferredPuts, x)
					} else {
						plainPuts = append(plainPuts, x)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && info.ObjectOf(id) == b.v {
					returned = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})

	name := b.v.Name()
	switch {
	case len(deferredPuts) == 0 && len(plainPuts) == 0:
		if !returned {
			fix := ps.deferPutFix(b)
			ps.pass.ReportFixf(b.stmt.Pos(), fix,
				"pooled %s is never returned to its pool: add `defer <put>(%s)` right after the Get, or return it to transfer ownership", name, name)
		}
	case len(plainPuts) > 0:
		for _, put := range plainPuts {
			ps.pass.ReportFixf(put.Pos(), &Fix{
				Message: "defer the Put so panics and early returns still recycle the value",
				Edits:   []TextEdit{{Pos: put.Pos(), End: put.Pos(), NewText: "defer "}},
			}, "Put of pooled %s is not deferred: a panic or early error return leaks it; write `defer` in front of the Put", name)
		}
		ps.checkUseAfterPut(fd, b, plainPuts)
	}

	if len(deferredPuts) > 0 || len(plainPuts) > 0 {
		ps.checkEscapeBeforePut(fd, b, returned)
		ps.checkResetBeforeUse(fd, b)
	}
}

// checkUseAfterPut flags statements in the same block that touch the value
// after a non-deferred Put returned it to the pool.
func (ps *poolSafe) checkUseAfterPut(fd *ast.FuncDecl, b binding, puts []*ast.CallExpr) {
	info := ps.pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		putDone := false
		for _, stmt := range block.List {
			if putDone {
				stmt := stmt
				ast.Inspect(stmt, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == b.v {
						ps.pass.Reportf(id.Pos(), "pooled %s used after Put returned it to the pool; another goroutine may already own it", b.v.Name())
					}
					return true
				})
				continue
			}
			for _, put := range puts {
				if put.Pos() >= stmt.Pos() && put.End() <= stmt.End() {
					if _, isDefer := stmt.(*ast.DeferStmt); !isDefer {
						putDone = true
					}
				}
			}
		}
		return true
	})
}

// checkEscapeBeforePut flags pooled values that are still reachable when
// the Put runs: returned from the function or stored into a global or a
// parameter's memory.
func (ps *poolSafe) checkEscapeBeforePut(fd *ast.FuncDecl, b binding, returned bool) {
	obj, ok := ps.pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	body := ps.pass.Index.FuncOf(obj)
	if body == nil {
		return
	}
	tr := flow.NewTracker(ps.pass.Index.Summaries(), body)
	bit := tr.AddSourceVar(b.v)
	tr.Solve()
	m := uint64(1) << bit
	for _, ev := range tr.Events() {
		if ev.Mask&m == 0 {
			continue
		}
		switch ev.Kind {
		case flow.EvReturn:
			ps.pass.Reportf(ev.Pos, "pooled %s is returned but also Put back: the caller's reference and the pool now share the value", b.v.Name())
		case flow.EvStoreGlobal:
			ps.pass.Reportf(ev.Pos, "pooled %s stored into package-level state before Put: the reference outlives the recycle", b.v.Name())
		case flow.EvStoreParam:
			ps.pass.Reportf(ev.Pos, "pooled %s stored into caller-visible memory before Put: the reference outlives the recycle", b.v.Name())
		}
	}
	_ = returned
}

// checkResetBeforeUse: when the pooled concrete type has a Reset method,
// the first real use after Get (deferred Puts do not count) must be the
// Reset call — stale state from the previous user leaks otherwise.
func (ps *poolSafe) checkResetBeforeUse(fd *ast.FuncDecl, b binding) {
	if !hasResetMethod(b.v.Type()) {
		return
	}
	info := ps.pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		seenBind := false
		for _, stmt := range block.List {
			if stmt == ast.Stmt(b.stmt) {
				seenBind = true
				continue
			}
			if !seenBind {
				continue
			}
			if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
				continue // defer put(v) runs last; not a use
			}
			if !stmtUses(info, stmt, b.v) {
				continue
			}
			if !isResetCall(info, stmt, b.v) {
				ps.pass.Reportf(stmt.Pos(), "pooled %s has a Reset method but is used before Reset: stale state from the previous user leaks through", b.v.Name())
			}
			return false // only the first use matters
		}
		return true
	})
}

func stmtUses(info *types.Info, stmt ast.Stmt, v *types.Var) bool {
	used := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
			used = true
		}
		return !used
	})
	return used
}

func isResetCall(info *types.Info, stmt ast.Stmt, v *types.Var) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reset" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.ObjectOf(id) == v
}

func hasResetMethod(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Reset" {
			return true
		}
	}
	return false
}

// deferPutFix builds the `defer <put>(v)` insertion when the package has
// exactly one putter wrapper for the same pool.
func (ps *poolSafe) deferPutFix(b binding) *Fix {
	if b.pool == nil {
		return nil
	}
	var name string
	for _, file := range ps.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := ps.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if pi := ps.putterOf(obj); pi.valid && pi.pool == b.pool {
				if name != "" {
					return nil // ambiguous
				}
				name = fd.Name.Name
			}
		}
	}
	if name == "" {
		return nil
	}
	return &Fix{
		Message: "insert the deferred Put right after the Get",
		Edits: []TextEdit{{
			Pos:     b.stmt.End(),
			End:     b.stmt.End(),
			NewText: "\ndefer " + name + "(" + b.v.Name() + ")",
		}},
	}
}

// getRoot reports whether e evaluates to a freshly fetched pool value,
// following parens, type assertions, local sole definitions, and module
// getter wrappers; it returns the pool variable when identifiable.
func (ps *poolSafe) getRoot(e ast.Expr, info *types.Info, du *flow.DefUse) (*types.Var, bool) {
	return ps.getRootIn(e, info, du)
}

// getterOf reports whether fn is a pool-getter wrapper: some return path
// yields a pool Get result.
func (ps *poolSafe) getterOf(fn *types.Func) (*types.Var, bool) {
	if r, seen := ps.getters[fn]; seen {
		return r.pool, r.ok
	}
	ps.getters[fn] = getterResult{} // visiting guard: cycles are not getters
	body := ps.pass.Index.FuncOf(fn)
	if body == nil {
		return nil, false
	}
	du := flow.NewDefUse(body.Decl, body.Info)
	var pool *types.Var
	found := false
	ast.Inspect(body.Decl, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if p, ok := ps.getRootIn(res, body.Info, du); ok {
				pool, found = p, true
			}
		}
		return true
	})
	ps.getters[fn] = getterResult{pool: pool, ok: found}
	return pool, found
}

// getRootIn is getRoot evaluated in a specific body's type info.
func (ps *poolSafe) getRootIn(e ast.Expr, info *types.Info, du *flow.DefUse) (*types.Var, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return ps.getRootIn(x.X, info, du)
	case *ast.CallExpr:
		fn := flow.Callee(info, x)
		if fn == nil {
			return nil, false
		}
		if flow.IsPoolGet(fn) {
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				return globalBase(info, sel.X), true
			}
			return nil, true
		}
		return ps.getterOf(fn)
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok && du != nil {
			if def := du.SoleDef(v); def != nil {
				return ps.getRootIn(def, info, du)
			}
		}
	}
	return nil, false
}

// putterOf reports whether fn passes one of its parameters to a pool Put
// (directly or through another putter).
func (ps *poolSafe) putterOf(fn *types.Func) putterInfo {
	if pi, seen := ps.putters[fn]; seen {
		return pi
	}
	ps.putters[fn] = putterInfo{} // visiting guard
	body := ps.pass.Index.FuncOf(fn)
	if body == nil {
		return putterInfo{}
	}
	params := paramVarSet(body)
	var out putterInfo
	ast.Inspect(body.Decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := flow.Callee(body.Info, call)
		if callee == nil || len(call.Args) == 0 {
			return true
		}
		var pool *types.Var
		argIdx := -1
		if flow.IsPoolPut(callee) {
			argIdx = 0
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				pool = globalBase(body.Info, sel.X)
			}
		} else if pi := ps.putterOf(callee); pi.valid {
			argIdx = pi.param
			pool = pi.pool
		}
		if argIdx < 0 || argIdx >= len(call.Args) {
			return true
		}
		if id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident); ok {
			if v, ok := body.Info.ObjectOf(id).(*types.Var); ok {
				if idx, isParam := params[v]; isParam {
					out = putterInfo{param: idx, pool: pool, valid: true}
				}
			}
		}
		return true
	})
	ps.putters[fn] = out
	return out
}

// putArgOf returns the argument a call hands to a pool Put, or nil.
func (ps *poolSafe) putArgOf(call *ast.CallExpr, info *types.Info) ast.Expr {
	fn := flow.Callee(info, call)
	if fn == nil || len(call.Args) == 0 {
		return nil
	}
	if flow.IsPoolPut(fn) {
		return call.Args[0]
	}
	if pi := ps.putterOf(fn); pi.valid && pi.param < len(call.Args) {
		return call.Args[pi.param]
	}
	return nil
}

// underDefer reports whether the call on the stack is the deferred call
// itself (defer put(v) or defer func() { ...put(v)... }()).
func underDefer(stack []ast.Node, call *ast.CallExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// globalBase resolves the package-level variable an expression designates
// (&pool, pool, pkg.pool), or nil.
func globalBase(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.ObjectOf(x).(*types.Var); ok && isGlobalVar(v) {
				return v
			}
			return nil
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					if v, ok := info.ObjectOf(x.Sel).(*types.Var); ok && isGlobalVar(v) {
						return v
					}
					return nil
				}
			}
			e = x.X
		default:
			return nil
		}
	}
}

// paramVarSet maps each parameter (and receiver) variable of a body to
// its signature index (receiver excluded from indexing).
func paramVarSet(body *flow.Func) map[*types.Var]int {
	out := make(map[*types.Var]int)
	idx := 0
	if body.Decl.Type.Params != nil {
		for _, field := range body.Decl.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := body.Info.Defs[name].(*types.Var); ok {
					out[v] = idx
				}
				idx++
			}
		}
	}
	return out
}
