package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/core/instance.go", Line: 10, Column: 3},
			Analyzer: "unitcheck",
			Message:  "unit mismatch: assigning dB value to linear destination",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/core/instance.go", Line: 10, Column: 3},
			Analyzer: "unitcheck",
			Message:  "unit mismatch: assigning dB value to linear destination",
		},
		{
			Pos:      token.Position{Filename: "/mod/cmd/run/main.go", Line: 4, Column: 1},
			Analyzer: "seedflow",
			Message:  "orphan rng.Stream: zero-value construction is not derived from the seeded root; use rng.New or Split",
		},
	}
}

func sampleRel(filename string) string {
	return strings.TrimPrefix(filename, "/mod/")
}

// TestSARIFGolden pins the exact SARIF rendering: rule metadata for the full
// suite, one result per finding with module-relative URIs, stable order.
func TestSARIFGolden(t *testing.T) {
	got, err := SARIF(All(), sampleDiags(), sampleRel)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	want, err := os.ReadFile("testdata/golden.sarif")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("SARIF output drifted from testdata/golden.sarif:\n%s", got)
	}
}

// TestSARIFEmptyResults: a clean run still renders a complete log with the
// rule table and an empty results array.
func TestSARIFEmptyResults(t *testing.T) {
	got, err := SARIF(All(), nil, sampleRel)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	for _, must := range []string{`"version": "2.1.0"`, `"results": []`, `"id": "unitcheck"`} {
		if !strings.Contains(string(got), must) {
			t.Errorf("empty SARIF missing %s:\n%s", must, got)
		}
	}
}

// TestBaselineRoundTrip: BaselineOf -> Encode -> ReadBaselineFile -> Filter
// suppresses exactly the recorded findings, counts included.
func TestBaselineRoundTrip(t *testing.T) {
	diags := sampleDiags()
	b := BaselineOf(diags, sampleRel)
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatalf("ReadBaselineFile: %v", err)
	}

	if kept := loaded.Filter(diags, sampleRel); len(kept) != 0 {
		t.Errorf("baselined findings leaked through Filter: %v", kept)
	}

	// A brand-new finding passes through...
	fresh := Diagnostic{
		Pos:      token.Position{Filename: "/mod/internal/ofdm/ofdm.go", Line: 55, Column: 9},
		Analyzer: "unitcheck",
		Message:  "unit mismatch: dB value assigned to linear field",
	}
	if kept := loaded.Filter(append(diags, fresh), sampleRel); len(kept) != 1 || kept[0].Message != fresh.Message {
		t.Errorf("Filter(with new finding) = %v, want exactly the new finding", kept)
	}

	// ...and so does a surplus duplicate beyond the recorded count.
	surplus := append(diags, diags[0])
	if kept := loaded.Filter(surplus, sampleRel); len(kept) != 1 {
		t.Errorf("Filter(surplus duplicate) kept %d, want 1", len(kept))
	}
}

// TestBaselineNewKinds: findings from the v3 analyzers (hotpath, poolsafe,
// aliascheck) round-trip through the baseline like any other kind — filtered
// when recorded, passed through when fresh.
func TestBaselineNewKinds(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/core/dual.go", Line: 20, Column: 2},
			Analyzer: "hotpath",
			Message:  "make allocates on every call of SolveInto (//femtovet:hotpath); reuse a workspace buffer or guard with the cap-growth idiom (if cap(buf) >= n { return buf[:n] })",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/core/workspace.go", Line: 31, Column: 2},
			Analyzer: "poolsafe",
			Message:  "pooled ws is never returned to its pool: add `defer <put>(ws)` right after the Get, or return it to transfer ownership",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/sensing/assignment.go", Line: 44, Column: 17},
			Analyzer: "aliascheck",
			Message:  "borrowed parameter \"out\" flows into a return value: a borrowed buffer must not outlive the call; annotate //femtovet:owns out if ownership transfers to the caller",
		},
	}
	b := BaselineOf(diags, sampleRel)
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatalf("ReadBaselineFile: %v", err)
	}
	if kept := loaded.Filter(diags, sampleRel); len(kept) != 0 {
		t.Errorf("baselined v3 findings leaked through Filter: %v", kept)
	}
	fresh := Diagnostic{
		Pos:      token.Position{Filename: "/mod/internal/core/greedy.go", Line: 9, Column: 5},
		Analyzer: "hotpath",
		Message:  "new allocates on every call of Allocate (//femtovet:hotpath); take the value from a pooled workspace or a //femtovet:coldpath constructor",
	}
	if kept := loaded.Filter(append(diags, fresh), sampleRel); len(kept) != 1 || kept[0].Message != fresh.Message {
		t.Errorf("Filter(with fresh hotpath finding) = %v, want exactly the fresh finding", kept)
	}
}

// TestBaselineV4Kinds: findings from the v4 analyzers (gridslot, foldorder,
// syncguard) round-trip through the baseline like any other kind — filtered
// when recorded, passed through when fresh.
func TestBaselineV4Kinds(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/experiments/parallel.go", Line: 63, Column: 5},
			Analyzer: "gridslot",
			Message:  "grid worker writes captured total, which is not indexed by the task's own index: each task may write only its own slot (xs[i] = ...); annotate //femtovet:shared -- <reason> if synchronization makes this exclusive",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/experiments/trace.go", Line: 140, Column: 3},
			Analyzer: "foldorder",
			Message:  "floating-point accumulation inside a map range: map iteration order is randomized, so the sum's rounding differs run to run; fold over sorted keys or task-indexed slots",
		},
		{
			Pos:      token.Position{Filename: "/mod/internal/sim/engine.go", Line: 88, Column: 4},
			Analyzer: "syncguard",
			Message:  "wg.Done is not deferred: a panic or early return in the goroutine skips it and Wait blocks forever; write `defer wg.Done()` as the goroutine's first statement",
		},
	}
	b := BaselineOf(diags, sampleRel)
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatalf("ReadBaselineFile: %v", err)
	}
	if kept := loaded.Filter(diags, sampleRel); len(kept) != 0 {
		t.Errorf("baselined v4 findings leaked through Filter: %v", kept)
	}
	fresh := Diagnostic{
		Pos:      token.Position{Filename: "/mod/internal/experiments/extensions.go", Line: 12, Column: 7},
		Analyzer: "foldorder",
		Message:  "stats.Running.Merge driven by a map range: the parallel Welford merge is order-sensitive and map order is randomized; merge in ascending index order",
	}
	if kept := loaded.Filter(append(diags, fresh), sampleRel); len(kept) != 1 || kept[0].Message != fresh.Message {
		t.Errorf("Filter(with fresh foldorder finding) = %v, want exactly the fresh finding", kept)
	}
}

// TestBaselineStale: Stale counts exactly the leftover baseline budget —
// zero when every entry still matches a current finding, the full surplus
// when findings were fixed out from under their entries.
func TestBaselineStale(t *testing.T) {
	diags := sampleDiags() // two identical unitcheck findings + one seedflow
	b := BaselineOf(diags, sampleRel)

	if got := b.Stale(diags, sampleRel); got != 0 {
		t.Errorf("Stale(all findings present) = %d, want 0", got)
	}
	if got := b.Stale(diags[:1], sampleRel); got != 2 {
		t.Errorf("Stale(one of three remains) = %d, want 2", got)
	}
	if got := b.Stale(nil, sampleRel); got != 3 {
		t.Errorf("Stale(tree fixed) = %d, want 3", got)
	}

	// A fresh, unrecorded finding does not drive the count negative.
	fresh := Diagnostic{
		Pos:      token.Position{Filename: "/mod/internal/ofdm/ofdm.go", Line: 5, Column: 1},
		Analyzer: "floateq",
		Message:  "== on float64 operands",
	}
	if got := b.Stale(append(diags, fresh), sampleRel); got != 0 {
		t.Errorf("Stale(all present plus fresh) = %d, want 0", got)
	}
}

func TestBaselineRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := ReadBaselineFile(path); err == nil {
		t.Fatal("ReadBaselineFile accepted an unsupported version")
	}
}

// TestApplyFixUnitConversion: the unitcheck dB/linear fix rewrites the
// offending expression into a fading.FromDB call and the file still
// formats.
func TestApplyFixUnitConversion(t *testing.T) {
	src := `package fixture

import "femtocr/internal/fading"

var floorLin = fading.FromDB(3)

var thresholdLin float64 //femtovet:unit linear

func set(psnr float64) {
	thresholdLin = psnr
}
`
	fixed := applyFirstFix(t, UnitCheck, "femtocr/internal/fixapply", src)
	if !strings.Contains(fixed, "thresholdLin = fading.FromDB(psnr)") {
		t.Errorf("fix did not insert the conversion:\n%s", fixed)
	}
}

// TestApplyFixMapIterSort: the mapiter fix inserts a deterministic sort
// after the loop, and the rewritten source no longer triggers the analyzer.
func TestApplyFixMapIterSort(t *testing.T) {
	src := `package fixture

import "sort"

var _ = sort.Ints

func keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	fixed := applyFirstFix(t, MapIter, "femtocr/internal/fixsort", src)
	if !strings.Contains(fixed, "sort.Ints(out)") {
		t.Errorf("fix did not insert the sort:\n%s", fixed)
	}
	if diags := suiteOnSource(t, "femtocr/internal/fixsort2", "fixsort2.go", fixed, []*Analyzer{MapIter}); len(diags) != 0 {
		t.Errorf("mapiter still fires on the fixed source: %v", diags)
	}
}

// TestApplyFixDeferPut: the poolsafe fix prefixes a plain Put with `defer`,
// and the rewritten source no longer triggers the analyzer at all (the
// use-after-Put finding dies with the same edit).
func TestApplyFixDeferPut(t *testing.T) {
	src := `package fixture

import "sync"

type thing struct{ x int }

var pool = sync.Pool{New: func() any { return new(thing) }}

func use() int {
	ws := pool.Get().(*thing)
	ws.x++
	pool.Put(ws)
	return ws.x
}
`
	fixed := applyFirstFix(t, PoolSafe, "femtocr/internal/fixput", src)
	if !strings.Contains(fixed, "defer pool.Put(ws)") {
		t.Errorf("fix did not defer the Put:\n%s", fixed)
	}
	if diags := suiteOnSource(t, "femtocr/internal/fixput2", "fixput2.go", fixed, []*Analyzer{PoolSafe}); len(diags) != 0 {
		t.Errorf("poolsafe still fires on the fixed source: %v", diags)
	}
}

// TestApplyFixDeferDone: the syncguard fix prefixes an undeferred
// WaitGroup.Done with `defer`, and the rewritten source no longer triggers
// the analyzer.
func TestApplyFixDeferDone(t *testing.T) {
	src := `package fixture

import "sync"

func spawn(xs []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		xs[0] = 1
		wg.Done()
	}()
	wg.Wait()
}
`
	fixed := applyFirstFix(t, SyncGuard, "femtocr/internal/fixdone", src)
	if !strings.Contains(fixed, "defer wg.Done()") {
		t.Errorf("fix did not defer the Done:\n%s", fixed)
	}
	if diags := suiteOnSource(t, "femtocr/internal/fixdone2", "fixdone2.go", fixed, []*Analyzer{SyncGuard}); len(diags) != 0 {
		t.Errorf("syncguard still fires on the fixed source: %v", diags)
	}
}

// applyFirstFix writes src to a temp file, runs one analyzer over it, and
// applies the suggested fixes, returning the rewritten content.
func applyFirstFix(t *testing.T, a *Analyzer, path, src string) string {
	t.Helper()
	m := loadTestModule(t)
	filename := filepath.Join(t.TempDir(), "fix.go")
	if err := os.WriteFile(filename, []byte(src), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	diags := suiteOnSource(t, path, filename, src, []*Analyzer{a})
	if len(diags) == 0 {
		t.Fatal("analyzer reported nothing to fix")
	}
	if diags[0].Fix == nil {
		t.Fatalf("finding carries no fix: %s", diags[0].Message)
	}
	res, err := ApplyFixes(m.Fset, diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if res.Applied == 0 {
		t.Fatal("no fixes applied")
	}
	content, ok := res.Files[filename]
	if !ok {
		t.Fatalf("no rewritten content for %s (have %v)", filename, res.Files)
	}
	return string(content)
}
