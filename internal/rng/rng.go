// Package rng provides deterministic, splittable pseudo-random streams for
// reproducible simulations.
//
// Every stochastic component of the simulator (channel occupancy, sensing
// errors, fading, access decisions) draws from its own Stream, derived from a
// single root seed and a string label. Two simulation runs with the same root
// seed therefore produce identical sample paths regardless of the order in
// which components consume randomness, and changing one component's draw
// pattern does not perturb the others.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic source of pseudo-random variates.
//
// A Stream is not safe for concurrent use; derive one Stream per goroutine
// with Split.
type Stream struct {
	rand  *rand.Rand
	seed1 uint64
	seed2 uint64
}

// New returns a Stream rooted at the given seed.
func New(seed uint64) *Stream {
	return fromSeeds(seed, seed^0x9e3779b97f4a7c15)
}

// fromSeeds builds a Stream from a 128-bit seed pair using PCG.
func fromSeeds(s1, s2 uint64) *Stream {
	return &Stream{
		rand:  rand.New(rand.NewPCG(s1, s2)),
		seed1: s1,
		seed2: s2,
	}
}

// Split derives an independent child Stream identified by label. Splitting is
// a pure function of the parent's seeds and the label: it does not consume
// randomness from the parent, so sibling streams are stable under reordering.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New128a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], s.seed1)
	binary.LittleEndian.PutUint64(buf[8:16], s.seed2)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	sum := h.Sum(nil)
	return fromSeeds(
		binary.LittleEndian.Uint64(sum[0:8]),
		binary.LittleEndian.Uint64(sum[8:16]),
	)
}

// SplitIndex derives an independent child Stream identified by an integer,
// convenient for per-user or per-channel streams.
func (s *Stream) SplitIndex(label string, index int) *Stream {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(index))
	return s.Split(label + ":" + string(buf[:]))
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.rand.Float64() }

// IntN returns a uniform integer in [0, n). n must be positive.
func (s *Stream) IntN(n int) int { return s.rand.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.rand.Uint64() }

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rand.Float64() < p
}

// Exponential returns an exponential variate with the given rate parameter
// (mean 1/rate). It panics if rate is not positive, which indicates a
// programming error in the caller.
func (s *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential rate must be positive")
	}
	return s.rand.ExpFloat64() / rate
}

// Normal returns a normal variate with the given mean and standard deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rand.NormFloat64()
}

// Rayleigh returns a Rayleigh variate with scale sigma. The squared value is
// exponential with mean 2*sigma^2, the classical model for the envelope of a
// Rayleigh-fading channel.
func (s *Stream) Rayleigh(sigma float64) float64 {
	// Inverse-CDF sampling: F(x) = 1 - exp(-x^2 / (2 sigma^2)).
	u := s.rand.Float64()
	return sigma * math.Sqrt(-2*math.Log1p(-u))
}

// ExpGain returns a unit-mean exponential variate, the power gain of a
// Rayleigh-fading channel.
func (s *Stream) ExpGain() float64 { return s.rand.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rand.Perm(n) }

// PermInto fills p with a random permutation of [0, len(p)), for hot loops
// that reuse one buffer. It consumes the identical variate sequence Perm
// does — math/rand/v2's Perm is a Fisher-Yates shuffle drawing IntN(i+1)
// for i = n-1..1 — so swapping Perm(n) for PermInto on a length-n buffer
// leaves sample paths byte-identical.
//
//femtovet:hotpath
//femtovet:borrows p
func (s *Stream) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.rand.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle randomizes the order of n elements using the provided swap
// function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rand.Shuffle(n, swap) }
