package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: streams with same seed diverged: %v != %v", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestSplitIsPure(t *testing.T) {
	root := New(7)
	c1 := root.Split("child")
	// Consume randomness from the parent; a later split must be identical.
	for i := 0; i < 50; i++ {
		root.Float64()
	}
	c2 := root.Split("child")
	for i := 0; i < 100; i++ {
		if a, b := c1.Uint64(), c2.Uint64(); a != b {
			t.Fatalf("Split is not pure: draw %d differs (%d != %d)", i, a, b)
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	root := New(7)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams produced %d identical draws", same)
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	root := New(3)
	seen := make(map[uint64]int)
	for i := 0; i < 64; i++ {
		v := root.SplitIndex("user", i).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("SplitIndex %d and %d produced identical first draw", prev, i)
		}
		seen[v] = i
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	s := New(99)
	const n = 200000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical mean %v, want within 0.01", p, got)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	const n = 200000
	const rate = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exponential(%v) mean %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestRayleighMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	const sigma = 1.5
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Rayleigh(sigma)
	}
	mean := sum / n
	want := sigma * math.Sqrt(math.Pi/2)
	if math.Abs(mean-want) > 0.02 {
		t.Fatalf("Rayleigh(%v) mean %v, want ~%v", sigma, mean, want)
	}
}

func TestExpGainUnitMean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpGain()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpGain mean %v, want ~1", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Fatalf("Normal mean %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("Normal variance %v, want ~4", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRayleighNonNegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.Rayleigh(2.0) < 0 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
