package trace

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRecorderValidation(t *testing.T) {
	var r Recorder
	if err := r.RecordSlot(SlotEvent{Slot: -1}); !errors.Is(err, ErrBadEvent) {
		t.Fatal("negative slot accepted")
	}
	if err := r.RecordSlot(SlotEvent{Collisions: -1}); !errors.Is(err, ErrBadEvent) {
		t.Fatal("negative collisions accepted")
	}
	if err := r.RecordUser(UserEvent{User: -1}); !errors.Is(err, ErrBadEvent) {
		t.Fatal("negative user accepted")
	}
}

func sampleRecorder(t *testing.T) *Recorder {
	t.Helper()
	var r Recorder
	events := []SlotEvent{
		{Slot: 0, IdleChannels: 4, Accessed: 3, ExpectedG: 2.5, Collisions: 0},
		{Slot: 1, IdleChannels: 2, Accessed: 2, ExpectedG: 1.5, Collisions: 1},
	}
	for _, e := range events {
		if err := r.RecordSlot(e); err != nil {
			t.Fatal(err)
		}
	}
	userEvents := []UserEvent{
		{Slot: 0, User: 0, OnMBS: true, Share: 0.5, GainDB: 0.2, PSNR: 28.8},
		{Slot: 0, User: 1, Share: 1.0, GainDB: 0.6, PSNR: 27.4},
		{Slot: 1, User: 0, OnMBS: true, Share: 0.3, GainDB: 0, PSNR: 28.8, GOPDone: true},
		{Slot: 1, User: 1, Share: 0.8, GainDB: 0.5, PSNR: 27.9, GOPDone: true},
	}
	for _, e := range userEvents {
		if err := r.RecordUser(e); err != nil {
			t.Fatal(err)
		}
	}
	return &r
}

func TestRecorderAccessors(t *testing.T) {
	r := sampleRecorder(t)
	if len(r.Slots()) != 2 || len(r.Users()) != 4 {
		t.Fatalf("events: %d slots, %d users", len(r.Slots()), len(r.Users()))
	}
	// Returned slices are copies.
	r.Slots()[0].Slot = 99
	if r.Slots()[0].Slot == 99 {
		t.Fatal("Slots() aliases internal storage")
	}
}

func TestCSVOutputs(t *testing.T) {
	r := sampleRecorder(t)
	slotCSV := r.SlotCSV()
	if !strings.HasPrefix(slotCSV, "slot,idle_channels,accessed,expected_g,collisions\n") {
		t.Fatalf("slot CSV header wrong:\n%s", slotCSV)
	}
	if !strings.Contains(slotCSV, "1,2,2,1.5,1") {
		t.Fatalf("slot CSV row missing:\n%s", slotCSV)
	}
	userCSV := r.UserCSV()
	if !strings.Contains(userCSV, "0,0,1,0.5,0.2,28.8,0") {
		t.Fatalf("user CSV row missing:\n%s", userCSV)
	}
	if !strings.Contains(userCSV, "1,1,0,0.8,0.5,27.9,1") {
		t.Fatalf("gop-done row missing:\n%s", userCSV)
	}
}

func TestSummarize(t *testing.T) {
	r := sampleRecorder(t)
	s := r.Summarize()
	if s.Slots != 2 {
		t.Fatalf("slots %d", s.Slots)
	}
	if math.Abs(s.MeanIdle-3) > 1e-12 || math.Abs(s.MeanAccessed-2.5) > 1e-12 {
		t.Fatalf("means %v %v", s.MeanIdle, s.MeanAccessed)
	}
	if math.Abs(s.MeanExpectedG-2) > 1e-12 {
		t.Fatalf("mean G %v", s.MeanExpectedG)
	}
	if math.Abs(s.CollisionRate-0.5) > 1e-12 {
		t.Fatalf("collision rate %v", s.CollisionRate)
	}
	if math.Abs(s.UserSlotShares[0]-0.4) > 1e-12 {
		t.Fatalf("user 0 mean share %v", s.UserSlotShares[0])
	}
	if s.FinalPSNR[1] != 27.9 {
		t.Fatalf("user 1 final PSNR %v", s.FinalPSNR[1])
	}
	out := s.String()
	for _, want := range []string{"2 slots", "user 0", "user 1", "27.90 dB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var r Recorder
	s := r.Summarize()
	if s.Slots != 0 || s.MeanIdle != 0 || len(s.FinalPSNR) != 0 {
		t.Fatal("empty summary not zero")
	}
}
