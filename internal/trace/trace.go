// Package trace records slot-by-slot simulation events for debugging,
// visualization, and post-hoc analysis: channel occupancy and access
// outcomes, per-user allocations and quality trajectories, and GOP
// completions. Recorders are append-only and render to CSV.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrBadEvent is returned when recording malformed events.
var ErrBadEvent = errors.New("trace: invalid event")

// SlotEvent captures the spectrum-side outcome of one slot.
type SlotEvent struct {
	Slot         int
	IdleChannels int     // truly idle licensed channels
	Accessed     int     // |A(t)|
	ExpectedG    float64 // G_t
	Collisions   int     // accessed channels that were truly busy
}

// UserEvent captures one user's slot outcome.
type UserEvent struct {
	Slot    int
	User    int
	OnMBS   bool
	Share   float64 //femtovet:unit share -- rho on the chosen resource
	GainDB  float64 //femtovet:unit dB -- realized quality increment
	PSNR    float64 //femtovet:unit dB -- W after the slot
	GOPDone bool    // slot closed a GOP
}

// Recorder accumulates events. The zero value is ready to use.
type Recorder struct {
	slots []SlotEvent
	users []UserEvent
}

// RecordSlot appends a spectrum event.
func (r *Recorder) RecordSlot(e SlotEvent) error {
	if e.Slot < 0 || e.IdleChannels < 0 || e.Accessed < 0 || e.Collisions < 0 {
		return fmt.Errorf("%w: %+v", ErrBadEvent, e)
	}
	r.slots = append(r.slots, e)
	return nil
}

// RecordUser appends a user event.
func (r *Recorder) RecordUser(e UserEvent) error {
	if e.Slot < 0 || e.User < 0 {
		return fmt.Errorf("%w: %+v", ErrBadEvent, e)
	}
	r.users = append(r.users, e)
	return nil
}

// Slots returns the recorded spectrum events in order.
func (r *Recorder) Slots() []SlotEvent {
	out := make([]SlotEvent, len(r.slots))
	copy(out, r.slots)
	return out
}

// Users returns the recorded user events in order.
func (r *Recorder) Users() []UserEvent {
	out := make([]UserEvent, len(r.users))
	copy(out, r.users)
	return out
}

// SlotCSV renders the spectrum events.
func (r *Recorder) SlotCSV() string {
	var b strings.Builder
	b.WriteString("slot,idle_channels,accessed,expected_g,collisions\n")
	for _, e := range r.slots {
		fmt.Fprintf(&b, "%d,%d,%d,%g,%d\n", e.Slot, e.IdleChannels, e.Accessed, e.ExpectedG, e.Collisions)
	}
	return b.String()
}

// UserCSV renders the user events.
func (r *Recorder) UserCSV() string {
	var b strings.Builder
	b.WriteString("slot,user,on_mbs,share,gain_db,psnr_db,gop_done\n")
	for _, e := range r.users {
		onMBS := 0
		if e.OnMBS {
			onMBS = 1
		}
		gop := 0
		if e.GOPDone {
			gop = 1
		}
		fmt.Fprintf(&b, "%d,%d,%d,%g,%g,%g,%d\n", e.Slot, e.User, onMBS, e.Share, e.GainDB, e.PSNR, gop)
	}
	return b.String()
}

// Summary aggregates headline statistics from the recording.
type Summary struct {
	Slots          int
	MeanIdle       float64
	MeanAccessed   float64
	MeanExpectedG  float64
	CollisionRate  float64
	UserSlotShares map[int]float64 // mean share per user
	FinalPSNR      map[int]float64 // last observed PSNR per user
}

// Summarize reduces the recording.
func (r *Recorder) Summarize() Summary {
	s := Summary{
		UserSlotShares: make(map[int]float64),
		FinalPSNR:      make(map[int]float64),
	}
	s.Slots = len(r.slots)
	if s.Slots > 0 {
		var idle, acc, g, coll float64
		for _, e := range r.slots {
			idle += float64(e.IdleChannels)
			acc += float64(e.Accessed)
			g += e.ExpectedG
			coll += float64(e.Collisions)
		}
		n := float64(s.Slots)
		s.MeanIdle = idle / n
		s.MeanAccessed = acc / n
		s.MeanExpectedG = g / n
		s.CollisionRate = coll / n
	}
	counts := make(map[int]int)
	for _, e := range r.users {
		s.UserSlotShares[e.User] += e.Share
		counts[e.User]++
		s.FinalPSNR[e.User] = e.PSNR
	}
	for u, total := range s.UserSlotShares {
		s.UserSlotShares[u] = total / float64(counts[u])
	}
	return s
}

// String renders the summary.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d slots, mean idle %.2f, mean accessed %.2f, mean G %.2f, collisions/slot %.3f\n",
		s.Slots, s.MeanIdle, s.MeanAccessed, s.MeanExpectedG, s.CollisionRate)
	users := make([]int, 0, len(s.FinalPSNR))
	for u := range s.FinalPSNR {
		users = append(users, u)
	}
	sort.Ints(users)
	for _, u := range users {
		fmt.Fprintf(&b, "  user %d: mean share %.3f, final PSNR %.2f dB\n",
			u, s.UserSlotShares[u], s.FinalPSNR[u])
	}
	return b.String()
}
