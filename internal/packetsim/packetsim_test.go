package packetsim

import (
	"errors"
	"math"
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/sim"
)

func singleNet(t *testing.T) *netmodel.Network {
	t.Helper()
	n, err := netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("nil net err = %v", err)
	}
	net := singleNet(t)
	if _, err := Run(net, Options{GOPs: -2}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad GOPs err = %v", err)
	}
	if _, err := Run(net, Options{Scheme: sim.Scheme(42)}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad scheme err = %v", err)
	}
	if _, err := Run(net, Options{EncodeRateFactor: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad rate factor err = %v", err)
	}
	broken := *net
	broken.T = 0
	if _, err := Run(&broken, Options{}); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	net := singleNet(t)
	a, err := Run(net, Options{Seed: 3, GOPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, Options{Seed: 3, GOPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPSNR != b.MeanPSNR || a.DeliveredBytes != b.DeliveredBytes ||
		a.Retransmissions != b.Retransmissions {
		t.Fatal("same seed produced different packet-level results")
	}
}

func TestRunAccounting(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 1, GOPs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.GOPs != 8 {
		t.Fatalf("GOPs = %d", res.GOPs)
	}
	if len(res.PerUserPSNR) != net.K() {
		t.Fatalf("per-user len %d", len(res.PerUserPSNR))
	}
	for j, p := range res.PerUserPSNR {
		alpha := net.Users[j].Seq.RD.Alpha
		if p < alpha-1e-9 || p > net.Users[j].Seq.MaxPSNR()+1e-9 {
			t.Fatalf("user %d PSNR %v out of range", j, p)
		}
	}
	if res.DeliveredBytes <= 0 || res.SentPackets <= 0 {
		t.Fatal("nothing was transmitted")
	}
	if res.MeanPSNR <= net.Users[0].Seq.RD.Alpha {
		t.Fatal("no quality improvement: packets not reaching receivers")
	}
}

// TestRateConservation: delivered payload cannot exceed the theoretical
// channel-capacity upper bound of the run.
func TestRateConservation(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 5, GOPs: 10})
	if err != nil {
		t.Fatal(err)
	}
	slots := 10 * net.T
	slotSeconds := float64(net.GOPSize) / net.Users[0].Seq.FPS / float64(net.T)
	// Capacity bound: the common channel plus all M licensed channels at
	// full rate for every slot.
	capBytes := (net.Band.B0() + float64(net.Band.M())*net.Band.B1()) *
		1e6 / 8 * slotSeconds * float64(slots)
	if float64(res.DeliveredBytes) > capBytes {
		t.Fatalf("delivered %d bytes, capacity bound %v", res.DeliveredBytes, capBytes)
	}
}

// TestSchemesDiffer: the three schemes must produce distinct packet-level
// outcomes, with Proposed leading on quality (averaged over seeds).
func TestSchemesDiffer(t *testing.T) {
	net := singleNet(t)
	means := make(map[sim.Scheme]float64)
	for _, sch := range []sim.Scheme{sim.Proposed, sim.Heuristic1, sim.Heuristic2} {
		sum := 0.0
		for seed := uint64(1); seed <= 5; seed++ {
			res, err := Run(net, Options{Seed: seed, GOPs: 8, Scheme: sch})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeanPSNR
		}
		means[sch] = sum / 5
	}
	if means[sim.Proposed] <= means[sim.Heuristic2]-0.3 {
		t.Fatalf("proposed %v clearly below H2 %v", means[sim.Proposed], means[sim.Heuristic2])
	}
	if means[sim.Proposed] <= means[sim.Heuristic1]-0.3 {
		t.Fatalf("proposed %v clearly below H1 %v", means[sim.Proposed], means[sim.Heuristic1])
	}
}

// TestMatchesRateBasedEngine: the packet-level and rate-based engines must
// agree on quality within a couple of dB — they model the same system at
// different granularity.
func TestMatchesRateBasedEngine(t *testing.T) {
	net := singleNet(t)
	var pkSum, rateSum float64
	const runs = 5
	for seed := uint64(1); seed <= runs; seed++ {
		pk, err := Run(net, Options{Seed: seed, GOPs: 10})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sim.Run(net, sim.Options{Seed: seed, GOPs: 10})
		if err != nil {
			t.Fatal(err)
		}
		pkSum += pk.MeanPSNR
		rateSum += rt.MeanPSNR
	}
	gap := math.Abs(pkSum-rateSum) / runs
	if gap > 2.5 {
		t.Fatalf("packet-level %v vs rate-based %v: gap %v dB too large",
			pkSum/runs, rateSum/runs, gap)
	}
}

// TestInterferingPacketLevel: the interfering scenario runs with the greedy
// allocator at packet granularity.
func TestInterferingPacketLevel(t *testing.T) {
	net, err := netmodel.PaperInterfering(netmodel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, Options{Seed: 2, GOPs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSNR <= 0 || res.DeliveredBytes <= 0 {
		t.Fatal("interfering packet run produced nothing")
	}
}

// TestDropsScaleWithEncodeRate: encoding above the channel's capability
// must increase overdue drops; MGS truncation absorbs the excess.
func TestDropsScaleWithEncodeRate(t *testing.T) {
	net := singleNet(t)
	low, err := Run(net, Options{Seed: 4, GOPs: 8, EncodeRateFactor: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(net, Options{Seed: 4, GOPs: 8, EncodeRateFactor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if high.DroppedPackets <= low.DroppedPackets {
		t.Fatalf("drops: rate x1.5 %d <= rate x0.3 %d", high.DroppedPackets, low.DroppedPackets)
	}
}

// TestRetransmissionsHappen: with lossy links, ARQ must fire.
func TestRetransmissionsHappen(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 6, GOPs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Fatal("no retransmissions over 200 slots of lossy links")
	}
	if res.Retransmissions >= res.SentPackets {
		t.Fatalf("retransmissions %d >= sends %d", res.Retransmissions, res.SentPackets)
	}
}

func TestCollisionRateTracked(t *testing.T) {
	net := singleNet(t)
	res, err := Run(net, Options{Seed: 7, GOPs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionRate <= 0 || res.CollisionRate > net.Gamma+0.1 {
		t.Fatalf("collision rate %v implausible (gamma %v)", res.CollisionRate, net.Gamma)
	}
}

// TestAdaptiveRateCutsDrops: re-encoding each GOP near the delivered
// throughput slashes overdue discards without sacrificing quality.
func TestAdaptiveRateCutsDrops(t *testing.T) {
	net := singleNet(t)
	var fixedDrops, adaptDrops int
	var fixedPSNR, adaptPSNR float64
	const runs = 4
	for seed := uint64(1); seed <= runs; seed++ {
		fixed, err := Run(net, Options{Seed: seed, GOPs: 20})
		if err != nil {
			t.Fatal(err)
		}
		adapt, err := Run(net, Options{Seed: seed, GOPs: 20, AdaptiveRate: true})
		if err != nil {
			t.Fatal(err)
		}
		fixedDrops += fixed.DroppedPackets
		adaptDrops += adapt.DroppedPackets
		fixedPSNR += fixed.MeanPSNR
		adaptPSNR += adapt.MeanPSNR
	}
	if adaptDrops >= fixedDrops {
		t.Fatalf("adaptive drops %d not below fixed %d", adaptDrops, fixedDrops)
	}
	if adaptPSNR < fixedPSNR-runs*1.0 {
		t.Fatalf("adaptation cost too much quality: %v vs %v", adaptPSNR/runs, fixedPSNR/runs)
	}
	t.Logf("drops: fixed %d -> adaptive %d; PSNR %.2f -> %.2f",
		fixedDrops, adaptDrops, fixedPSNR/runs, adaptPSNR/runs)
}
