// Package packetsim is the packet-level counterpart of internal/sim: the
// same sensing/access front half and the same resource-allocation schemes,
// but with explicit NAL-unit transmission queues, ARQ retransmissions, and
// deadline discards, per the paper's §III-E delivery discipline ("video
// packets are transmitted in the decreasing order of their significances,
// with retransmissions if necessary; overdue packets will be discarded").
//
// The rate-based engine in internal/sim credits expected quality increments
// directly; this engine moves bytes. The two agree on scheme ordering and
// track each other's quality closely, which the integration tests assert.
package packetsim

import (
	"errors"
	"fmt"

	"femtocr/internal/core"
	"femtocr/internal/netmodel"
	"femtocr/internal/packet"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
	"femtocr/internal/video"
)

// ErrBadOptions is returned for invalid run options.
var ErrBadOptions = errors.New("packetsim: invalid options")

// Options configures one packet-level run.
type Options struct {
	// Seed drives all randomness, as in sim.Options.
	Seed uint64
	// GOPs simulated per user. Default 20.
	GOPs int
	// Scheme selects the allocation scheme. Default sim.Proposed.
	Scheme sim.Scheme
	// SensorPolicy assigns user sensors to channels. Default RoundRobin.
	SensorPolicy sensing.AssignmentPolicy
	// MGSLayers is the number of MGS enhancement layers per frame in the
	// synthesized encodings. Default 3.
	MGSLayers int
	// EncodeRateFactor scales each sequence's saturation rate to set the
	// encoded GOP rate (MGS truncation then adapts downward). Default 1.
	EncodeRateFactor float64
	// AdaptiveRate re-encodes each user's next GOP at an EWMA of its
	// recently delivered throughput (with 25% headroom), instead of always
	// encoding at the saturation rate. Cuts overdue discards sharply while
	// keeping quality: the sender stops queueing enhancement data the
	// channel cannot carry.
	AdaptiveRate bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.GOPs == 0 {
		out.GOPs = 20
	}
	if out.Scheme == 0 {
		out.Scheme = sim.Proposed
	}
	if out.SensorPolicy == 0 {
		out.SensorPolicy = sensing.RoundRobin
	}
	if out.MGSLayers == 0 {
		out.MGSLayers = 3
	}
	if out.EncodeRateFactor == 0 {
		out.EncodeRateFactor = 1
	}
	return out
}

// Result aggregates one packet-level run.
type Result struct {
	// PerUserPSNR is each user's mean end-of-GOP reconstructed quality.
	PerUserPSNR []float64
	// MeanPSNR averages PerUserPSNR.
	MeanPSNR float64
	// DeliveredBytes is the total acknowledged payload.
	DeliveredBytes int
	// Retransmissions counts ARQ retransmissions across users.
	Retransmissions int
	// DroppedPackets counts overdue discards across users.
	DroppedPackets int
	// SentPackets counts transmissions (including retransmissions).
	SentPackets int
	// FairnessIndex is Jain's index over per-user quality gains.
	FairnessIndex float64
	// CollisionRate is the worst realized per-channel conditional collision
	// rate (collisions over truly-busy slots, the eq. (6) quantity).
	CollisionRate float64
	// GOPs is the number of completed GOPs per user.
	GOPs int
}

// Run simulates packet-level delivery for the network under the scheme.
func Run(net *netmodel.Network, opts Options) (*Result, error) {
	if net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrBadOptions)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.GOPs < 1 {
		return nil, fmt.Errorf("%w: GOPs=%d", ErrBadOptions, opts.GOPs)
	}
	if opts.EncodeRateFactor < 0 {
		return nil, fmt.Errorf("%w: EncodeRateFactor=%v", ErrBadOptions, opts.EncodeRateFactor)
	}

	root := rng.New(opts.Seed)
	front, err := sim.NewFrontend(net, root, opts.SensorPolicy)
	if err != nil {
		return nil, err
	}
	e := &engine{
		net:        net,
		opts:       opts,
		front:      front,
		fadeStream: root.Split("fading"),
	}
	if err := e.init(); err != nil {
		return nil, err
	}
	totalSlots := opts.GOPs * net.T
	for slot := 0; slot < totalSlots; slot++ {
		if err := e.step(slot); err != nil {
			return nil, fmt.Errorf("slot %d: %w", slot, err)
		}
	}
	return e.result(), nil
}

type engine struct {
	net  *netmodel.Network
	opts Options

	front      *sim.Frontend
	fadeStream *rng.Stream

	queues    []*packet.Queue
	receivers []*packet.Receiver
	gops      []video.GOP // the (static) encoded GOP layout per user

	solver      core.Solver
	greedy      *core.GreedyAllocator
	interfering bool
	colorOf     []int
	numColors   int

	// Static per-user optimizer constants.
	r0, r1, ps0, ps1, wmax []float64
	fbsOf                  []int

	// Slot duration in seconds: GOP playout time divided by the deadline T.
	slotSeconds float64

	retrans int
	sent    int
	dBytes  int
	gopIdx  int

	// Rate adaptation state: delivered bytes in the current GOP and an EWMA
	// of per-GOP delivered rate (Mbps), per user.
	gopBytes []int
	ewmaRate []float64
}

func (e *engine) init() error {
	net := e.net
	k := net.K()
	e.queues = make([]*packet.Queue, k)
	e.receivers = make([]*packet.Receiver, k)
	e.gops = make([]video.GOP, k)
	e.r0 = make([]float64, k)
	e.r1 = make([]float64, k)
	e.ps0 = make([]float64, k)
	e.ps1 = make([]float64, k)
	e.wmax = make([]float64, k)
	e.fbsOf = make([]int, k)

	for j, u := range net.Users {
		e.queues[j] = &packet.Queue{}
		e.receivers[j] = packet.NewReceiver(u.Seq)
		g, err := video.BuildGOP(u.Seq, net.GOPSize, e.opts.MGSLayers,
			u.Seq.MaxRateMbps*e.opts.EncodeRateFactor)
		if err != nil {
			return err
		}
		e.gops[j] = g
		e.r0[j] = u.Seq.RD.Beta * net.Band.B0() / float64(net.T)
		e.r1[j] = u.Seq.RD.Beta * net.Band.B1() / float64(net.T)
		e.ps0[j] = u.MBSLink.SuccessProbability()
		e.ps1[j] = u.FBSLink.SuccessProbability()
		e.wmax[j] = u.Seq.MaxPSNR()
		e.fbsOf[j] = u.FBS
	}
	// Every user shares the slot clock; use the first sequence's timing.
	seq := net.Users[0].Seq
	e.slotSeconds = float64(net.GOPSize) / seq.FPS / float64(net.T)
	e.gopBytes = make([]int, k)
	e.ewmaRate = make([]float64, k)
	for j, u := range net.Users {
		// Start the EWMA at half the saturation rate: optimistic but
		// bounded, converging within a few GOPs.
		e.ewmaRate[j] = u.Seq.MaxRateMbps / 2
	}

	e.interfering = net.Graph.NumEdges() > 0
	switch e.opts.Scheme {
	case sim.Proposed:
		e.solver = &core.EquilibriumSolver{}
		if e.interfering {
			e.greedy = core.NewGreedyAllocator(e.solver, core.WithLazyEvaluation())
		}
	case sim.Heuristic1:
		e.solver = core.Heuristic1{}
	case sim.Heuristic2:
		e.solver = core.Heuristic2{}
	case sim.RoundRobin:
		e.solver = &core.RoundRobin{}
	case sim.MaxThroughput:
		e.solver = core.MaxThroughput{}
	default:
		return fmt.Errorf("%w: unknown scheme %d", ErrBadOptions, int(e.opts.Scheme))
	}
	e.colorOf, e.numColors = net.Graph.GreedyColoring()
	return nil
}

func (e *engine) step(slot int) error {
	net := e.net

	// GOP boundary: enqueue the next GOP with its delivery deadline.
	if slot%net.T == 0 {
		deadline := slot + net.T - 1
		for j := range e.queues {
			e.queues[j].DropOverdue(slot)
			if e.opts.AdaptiveRate && slot > 0 {
				if err := e.adaptRate(j); err != nil {
					return err
				}
			}
			if err := e.queues[j].EnqueueGOP(j, e.gopIdx, e.gops[j], deadline); err != nil {
				return err
			}
			e.receivers[j].StartGOP(e.gopIdx, e.gops[j])
		}
		e.gopIdx++
	}

	st, err := e.front.Step(slot)
	if err != nil {
		return err
	}

	// Build and solve the slot's allocation problem; W is the quality the
	// user would decode with what it has received so far.
	k := net.K()
	w := make([]float64, k)
	for j := range w {
		w[j] = e.receivers[j].CurrentPSNR()
	}
	inst := &core.Instance{
		W: w, R0: e.r0, R1: e.r1, PS0: e.ps0, PS1: e.ps1, FBS: e.fbsOf,
		G: make([]float64, net.NumFBS), WMax: e.wmax,
	}

	var alloc *core.Allocation
	var assigned [][]int
	if e.opts.Scheme == sim.Proposed && e.interfering {
		res, err := e.greedy.Allocate(&core.ChannelProblem{
			Base:       inst,
			Graph:      net.Graph,
			Channels:   st.Accessed,
			Posteriors: st.AccessedPA,
		})
		if err != nil {
			return err
		}
		alloc = res.Alloc
		assigned = res.Assigned
	} else {
		assigned = e.staticAssignment(st.Accessed)
		g := make([]float64, net.NumFBS)
		for i := range assigned {
			for _, ch := range assigned[i] {
				g[i] += st.Decision.Channels[ch-1].Posterior
			}
		}
		withG := inst.WithG(g)
		alloc, err = e.solver.Solve(withG)
		if err != nil {
			return err
		}
	}

	// Transmission + ACK phases: move bytes through each user's queue.
	for j := 0; j < k; j++ {
		var rateMbps float64
		var lost bool
		if alloc.MBS[j] {
			if alloc.Rho0[j] <= 0 {
				continue
			}
			rateMbps = alloc.Rho0[j] * net.Band.B0()
			lost = e.net.Users[j].MBSLink.Lost(e.fadeStream)
		} else {
			if alloc.Rho1[j] <= 0 {
				continue
			}
			idle := 0
			for _, ch := range assigned[e.fbsOf[j]-1] {
				if st.Truth.Idle(ch) {
					idle++
				}
			}
			if idle == 0 {
				continue
			}
			rateMbps = alloc.Rho1[j] * float64(idle) * net.Band.B1()
			lost = e.net.Users[j].FBSLink.Lost(e.fadeStream)
		}
		budget := int(rateMbps * 1e6 / 8 * e.slotSeconds)
		rep, delivered, err := packet.TransmitSlot(e.queues[j], budget, lost)
		if err != nil {
			return err
		}
		e.sent += rep.Sent
		e.retrans += rep.Retransmissions
		e.dBytes += rep.DeliveredBytes
		e.gopBytes[j] += rep.DeliveredBytes
		e.receivers[j].Accept(delivered)
	}

	// End of GOP: close out quality accounting.
	if (slot+1)%net.T == 0 {
		for j := range e.receivers {
			e.receivers[j].EndGOP()
		}
	}
	return nil
}

// adaptRate folds the finished GOP's delivered throughput into user j's
// EWMA and re-encodes the next GOP at 1.25x that estimate, clamped to
// [10%, 100%] of the sequence's saturation rate.
func (e *engine) adaptRate(j int) error {
	gopSeconds := e.slotSeconds * float64(e.net.T)
	measured := float64(e.gopBytes[j]) * 8 / 1e6 / gopSeconds
	e.gopBytes[j] = 0
	const alpha = 0.3
	e.ewmaRate[j] = (1-alpha)*e.ewmaRate[j] + alpha*measured

	seq := e.net.Users[j].Seq
	target := 1.25 * e.ewmaRate[j]
	if min := 0.1 * seq.MaxRateMbps; target < min {
		target = min
	}
	if target > seq.MaxRateMbps*e.opts.EncodeRateFactor {
		target = seq.MaxRateMbps * e.opts.EncodeRateFactor
	}
	g, err := video.BuildGOP(seq, e.net.GOPSize, e.opts.MGSLayers, target)
	if err != nil {
		return err
	}
	e.gops[j] = g
	return nil
}

// staticAssignment mirrors sim's frequency plan for uncoordinated schemes.
func (e *engine) staticAssignment(accessed []int) [][]int {
	n := e.net.NumFBS
	assigned := make([][]int, n)
	if !e.interfering {
		for i := 0; i < n; i++ {
			assigned[i] = append([]int(nil), accessed...)
		}
		return assigned
	}
	for idx, ch := range accessed {
		class := idx % e.numColors
		for i := 0; i < n; i++ {
			if e.colorOf[i] == class {
				assigned[i] = append(assigned[i], ch)
			}
		}
	}
	return assigned
}

func (e *engine) result() *Result {
	k := e.net.K()
	res := &Result{
		PerUserPSNR:     make([]float64, k),
		Retransmissions: e.retrans,
		SentPackets:     e.sent,
		DeliveredBytes:  e.dBytes,
		CollisionRate:   e.front.CollisionRate(),
		GOPs:            e.receivers[0].CompletedGOPs(),
	}
	sum := 0.0
	gains := make([]float64, k)
	for j, r := range e.receivers {
		res.PerUserPSNR[j] = r.MeanPSNR()
		sum += r.MeanPSNR()
		gains[j] = r.MeanPSNR() - e.net.Users[j].Seq.RD.Alpha
		res.DroppedPackets += e.queues[j].Dropped()
	}
	res.MeanPSNR = sum / float64(k)
	res.FairnessIndex = stats.JainIndex(gains)
	return res
}
