package packetsim

import (
	"testing"

	"femtocr/internal/netmodel"
	"femtocr/internal/sim"
)

func benchNet(b *testing.B) *netmodel.Network {
	b.Helper()
	net, err := netmodel.PaperSingleFBS(netmodel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkGOPPacketLevel measures one packet-level GOP against the
// rate-based engine's BenchmarkGOPProposedSingle.
func BenchmarkGOPPacketLevel(b *testing.B) {
	net := benchNet(b)
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, Options{Seed: uint64(i) + 1, GOPs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGOPPacketLevelHeuristic1(b *testing.B) {
	net := benchNet(b)
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, Options{Seed: uint64(i) + 1, GOPs: 1, Scheme: sim.Heuristic1}); err != nil {
			b.Fatal(err)
		}
	}
}
