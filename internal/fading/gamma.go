package fading

import (
	"math"

	"femtocr/internal/rng"
)

// RegularizedGammaP computes the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) for a > 0, x >= 0, using the series
// expansion for x < a+1 and the Lentz continued fraction for the complement
// otherwise (Numerical Recipes §6.2). Accuracy is ~1e-14 over the parameter
// range used by Nakagami fading (a in [0.5, ~50]).
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// RegularizedGammaQ computes the upper complement Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

const (
	gammaMaxIter = 500
	gammaEps     = 1e-15
)

// gammaPSeries evaluates P(a, x) by its power series, convergent for
// x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by the modified Lentz method,
// convergent for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// sampleGamma draws a Gamma(shape, scale 1) variate using the
// Marsaglia-Tsang squeeze method, with the standard boost for shape < 1.
func sampleGamma(shape float64, s *rng.Stream) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return sampleGamma(shape+1, s) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.Normal(0, 1)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
