// Package fading implements the independent block-fading channel model of
// the paper's §III-D: the channel power gain is constant within a time slot
// and independent across slots, and a packet is decoded successfully iff the
// received SINR exceeds a threshold H. The packet-loss probability from base
// station i to user j is then P_F = Pr{X <= H} = F_X(H), eq. (8).
//
// Rayleigh fading (exponential power gain) is the primary model; Nakagami-m
// is provided as a generalization, with the regularized incomplete gamma
// function implemented from scratch for its outage CDF.
package fading

import (
	"errors"
	"fmt"
	"math"

	"femtocr/internal/rng"
)

// ErrBadLink is returned for non-finite or non-positive link parameters.
var ErrBadLink = errors.New("fading: invalid link parameters")

// ErrBadModel is returned for invalid fading-model parameters.
var ErrBadModel = errors.New("fading: invalid model parameters")

// Model is a unit-mean block-fading power-gain distribution.
type Model interface {
	// PowerGain samples the channel power gain for one slot (mean 1).
	PowerGain(s *rng.Stream) float64
	// OutageCDF returns Pr{gain <= x}.
	OutageCDF(x float64) float64
	// Name identifies the model.
	Name() string
}

// Rayleigh is Rayleigh envelope fading: the power gain is exponential with
// unit mean, the model the paper's evaluation assumes.
type Rayleigh struct{}

var _ Model = Rayleigh{}

// PowerGain samples a unit-mean exponential gain.
func (Rayleigh) PowerGain(s *rng.Stream) float64 { return s.ExpGain() }

// OutageCDF returns 1 - exp(-x) for x >= 0.
func (Rayleigh) OutageCDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-x)
}

// Name returns "rayleigh".
func (Rayleigh) Name() string { return "rayleigh" }

// Nakagami is Nakagami-m fading: power gain ~ Gamma(m, 1/m), unit mean.
// m = 1 reduces to Rayleigh; larger m models milder fading (stronger
// line-of-sight), smaller m (>= 0.5) harsher fading.
type Nakagami struct {
	m float64
}

var _ Model = Nakagami{}

// NewNakagami validates the shape parameter m >= 0.5.
func NewNakagami(m float64) (Nakagami, error) {
	if math.IsNaN(m) || m < 0.5 {
		return Nakagami{}, fmt.Errorf("%w: Nakagami m=%v (need m >= 0.5)", ErrBadModel, m)
	}
	return Nakagami{m: m}, nil
}

// M returns the shape parameter.
func (n Nakagami) M() float64 { return n.m }

// PowerGain samples Gamma(m, scale 1/m), which has mean 1.
func (n Nakagami) PowerGain(s *rng.Stream) float64 {
	return sampleGamma(n.m, s) / n.m
}

// OutageCDF returns the regularized lower incomplete gamma P(m, m*x).
func (n Nakagami) OutageCDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(n.m, n.m*x)
}

// Name returns "nakagami-m".
func (n Nakagami) Name() string { return fmt.Sprintf("nakagami-%g", n.m) }

// Link is one base-station-to-user wireless link under block fading.
type Link struct {
	meanSINR  float64 //femtovet:unit linear
	threshold float64 //femtovet:unit linear
	model     Model
}

// NewLink builds a link from the mean received SINR and the decoding
// threshold H, both in dB. A nil model defaults to Rayleigh.
func NewLink(meanSINRdB, thresholdDB float64, model Model) (Link, error) {
	if math.IsNaN(meanSINRdB) || math.IsInf(meanSINRdB, 0) ||
		math.IsNaN(thresholdDB) || math.IsInf(thresholdDB, 0) {
		return Link{}, fmt.Errorf("%w: meanSINR=%vdB H=%vdB", ErrBadLink, meanSINRdB, thresholdDB)
	}
	if model == nil {
		model = Rayleigh{}
	}
	return Link{
		meanSINR:  FromDB(meanSINRdB),
		threshold: FromDB(thresholdDB),
		model:     model,
	}, nil
}

// MeanSINRdB returns the mean received SINR in dB.
func (l Link) MeanSINRdB() float64 { return ToDB(l.meanSINR) }

// ThresholdDB returns the decoding threshold H in dB.
func (l Link) ThresholdDB() float64 { return ToDB(l.threshold) }

// Model returns the fading model.
func (l Link) Model() Model { return l.model }

// LossProbability returns P_F = F_X(H) of eq. (8): the probability the
// received SINR falls below the decoding threshold in one slot.
//
//femtovet:unit prob
func (l Link) LossProbability() float64 {
	return l.model.OutageCDF(l.threshold / l.meanSINR)
}

// SuccessProbability returns 1 - P_F, the paper's \bar{P}_F.
//
//femtovet:unit prob
func (l Link) SuccessProbability() float64 { return 1 - l.LossProbability() }

// SampleSINR draws the received SINR for one slot (block fading: one draw
// per slot, constant within it).
//
//femtovet:unit linear
func (l Link) SampleSINR(s *rng.Stream) float64 {
	return l.meanSINR * l.model.PowerGain(s)
}

// Lost realizes one slot's packet-loss indicator: true iff the sampled SINR
// is at or below the threshold.
func (l Link) Lost(s *rng.Stream) bool {
	return l.SampleSINR(s) <= l.threshold
}

// PathLoss is the log-distance path-loss model: loss(d) = RefLossDB +
// 10*Exponent*log10(d/RefDist) dB for d >= RefDist.
type PathLoss struct {
	RefLossDB float64 // path loss at the reference distance, dB
	Exponent  float64 // path-loss exponent (2 free space .. 4+ indoor)
	RefDist   float64 // reference distance, meters
}

// DefaultPathLoss is a typical indoor femtocell model: 37 dB loss at 1 m
// with exponent 3.
var DefaultPathLoss = PathLoss{RefLossDB: 37, Exponent: 3, RefDist: 1}

// LossDB returns the path loss in dB at distance d meters. Distances inside
// the reference distance are clamped to it.
func (p PathLoss) LossDB(d float64) float64 {
	if d < p.RefDist {
		d = p.RefDist
	}
	return p.RefLossDB + 10*p.Exponent*math.Log10(d/p.RefDist)
}

// MeanSINRdB returns the mean received SINR in dB for a transmitter at
// txPowerDBm, noise-plus-interference floor noiseDBm, and distance d meters.
func MeanSINRdB(txPowerDBm, noiseDBm float64, pl PathLoss, d float64) float64 {
	return txPowerDBm - pl.LossDB(d) - noiseDBm
}

// LinkAt builds a Rayleigh link for a transmitter/receiver pair at distance
// d meters.
func LinkAt(txPowerDBm, noiseDBm, thresholdDB float64, pl PathLoss, d float64) (Link, error) {
	return NewLink(MeanSINRdB(txPowerDBm, noiseDBm, pl, d), thresholdDB, Rayleigh{})
}

// ToDB converts a linear power ratio to dB.
func ToDB(x float64) float64 { return 10 * math.Log10(x) }

// FromDB converts dB to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }
