package fading

import (
	"math"
	"testing"
	"testing/quick"
)

// TestRegularizedGammaKnownValues cross-checks against closed forms:
// P(1, x) = 1 - e^{-x} and P(1/2, x) = erf(sqrt(x)).
func TestRegularizedGammaKnownValues(t *testing.T) {
	for _, x := range []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 30} {
		if got, want := RegularizedGammaP(1, x), 1-math.Exp(-x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
		if got, want := RegularizedGammaP(0.5, x), math.Erf(math.Sqrt(x)); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5, %v) = %v, want %v", x, got, want)
		}
	}
}

// TestRegularizedGammaPoisson: for integer a, Q(a, x) equals the Poisson CDF
// sum_{k<a} e^{-x} x^k / k!.
func TestRegularizedGammaPoisson(t *testing.T) {
	for _, a := range []int{1, 2, 3, 5, 8} {
		for _, x := range []float64{0.5, 1, 3, 7, 12} {
			sum := 0.0
			term := math.Exp(-x)
			for k := 0; k < a; k++ {
				if k > 0 {
					term *= x / float64(k)
				}
				sum += term
			}
			if got := RegularizedGammaQ(float64(a), x); math.Abs(got-sum) > 1e-10 {
				t.Errorf("Q(%d, %v) = %v, want Poisson sum %v", a, x, got, sum)
			}
		}
	}
}

func TestRegularizedGammaEdges(t *testing.T) {
	if RegularizedGammaP(2, 0) != 0 {
		t.Fatal("P(a, 0) != 0")
	}
	if RegularizedGammaQ(2, 0) != 1 {
		t.Fatal("Q(a, 0) != 1")
	}
	if RegularizedGammaP(2, math.Inf(1)) != 1 {
		t.Fatal("P(a, inf) != 1")
	}
	if RegularizedGammaQ(2, math.Inf(1)) != 0 {
		t.Fatal("Q(a, inf) != 0")
	}
	for _, bad := range []struct{ a, x float64 }{
		{0, 1}, {-1, 1}, {1, -0.5}, {math.NaN(), 1}, {1, math.NaN()},
	} {
		if !math.IsNaN(RegularizedGammaP(bad.a, bad.x)) {
			t.Errorf("P(%v, %v) should be NaN", bad.a, bad.x)
		}
		if !math.IsNaN(RegularizedGammaQ(bad.a, bad.x)) {
			t.Errorf("Q(%v, %v) should be NaN", bad.a, bad.x)
		}
	}
}

// TestGammaPQComplement: P + Q = 1 across both evaluation branches.
func TestGammaPQComplement(t *testing.T) {
	err := quick.Check(func(aDeci, xDeci uint16) bool {
		a := float64(aDeci%400+5) / 10 // 0.5 .. 40.4
		x := float64(xDeci%1000) / 10  // 0 .. 99.9
		p := RegularizedGammaP(a, x)
		q := RegularizedGammaQ(a, x)
		return p >= 0 && p <= 1 && math.Abs(p+q-1) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestGammaPMonotoneInX: P(a, .) is a CDF, hence nondecreasing.
func TestGammaPMonotoneInX(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.3, 7, 20} {
		prev := 0.0
		for x := 0.0; x <= 60; x += 0.5 {
			cur := RegularizedGammaP(a, x)
			if cur+1e-12 < prev {
				t.Fatalf("P(%v, %v) = %v decreased from %v", a, x, cur, prev)
			}
			prev = cur
		}
	}
}

// TestGammaMedianApproximation: the median of Gamma(a, 1) is about
// a - 1/3 for large a, so P(a, a) > 1/2 > P(a, a - 1).
func TestGammaMedianApproximation(t *testing.T) {
	for _, a := range []float64{5, 10, 25} {
		if RegularizedGammaP(a, a) <= 0.5 {
			t.Errorf("P(%v, %v) should exceed 1/2", a, a)
		}
		if RegularizedGammaP(a, a-1) >= 0.5 {
			t.Errorf("P(%v, %v) should be below 1/2", a, a-1)
		}
	}
}
