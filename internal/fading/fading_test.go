package fading

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/rng"
)

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10, 20} {
		if got := ToDB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("round trip %v dB -> %v", db, got)
		}
	}
	if FromDB(0) != 1 {
		t.Fatal("0 dB must be ratio 1")
	}
	if math.Abs(FromDB(3)-1.995) > 0.01 {
		t.Fatalf("3 dB = %v, want ~2", FromDB(3))
	}
}

func TestRayleighOutageCDF(t *testing.T) {
	r := Rayleigh{}
	if r.OutageCDF(0) != 0 || r.OutageCDF(-1) != 0 {
		t.Fatal("CDF below 0 must be 0")
	}
	if got := r.OutageCDF(1); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("CDF(1) = %v", got)
	}
	if got := r.OutageCDF(100); got < 0.999999 {
		t.Fatalf("CDF(100) = %v, want ~1", got)
	}
	if r.Name() != "rayleigh" {
		t.Fatal("name")
	}
}

func TestRayleighPowerGainUnitMean(t *testing.T) {
	s := rng.New(1)
	r := Rayleigh{}
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.PowerGain(s)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean gain %v, want ~1", mean)
	}
}

func TestNakagamiValidation(t *testing.T) {
	if _, err := NewNakagami(0.4); !errors.Is(err, ErrBadModel) {
		t.Fatalf("m=0.4 err = %v, want ErrBadModel", err)
	}
	if _, err := NewNakagami(math.NaN()); !errors.Is(err, ErrBadModel) {
		t.Fatal("NaN m accepted")
	}
	n, err := NewNakagami(2)
	if err != nil {
		t.Fatal(err)
	}
	if n.M() != 2 || n.Name() != "nakagami-2" {
		t.Fatalf("M=%v Name=%q", n.M(), n.Name())
	}
}

func TestNakagami1MatchesRayleigh(t *testing.T) {
	n, err := NewNakagami(1)
	if err != nil {
		t.Fatal(err)
	}
	r := Rayleigh{}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		if got, want := n.OutageCDF(x), r.OutageCDF(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Nakagami-1 CDF(%v) = %v, Rayleigh = %v", x, got, want)
		}
	}
}

func TestNakagamiPowerGainUnitMean(t *testing.T) {
	for _, m := range []float64{0.5, 1, 2.5, 8} {
		n, err := NewNakagami(m)
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(uint64(m * 100))
		const trials = 200000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += n.PowerGain(s)
		}
		if mean := sum / trials; math.Abs(mean-1) > 0.03 {
			t.Fatalf("Nakagami-%v mean gain %v, want ~1", m, mean)
		}
	}
}

func TestNakagamiEmpiricalCDFMatchesAnalytic(t *testing.T) {
	n, err := NewNakagami(3)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(77)
	const trials = 100000
	const x = 0.7
	below := 0
	for i := 0; i < trials; i++ {
		if n.PowerGain(s) <= x {
			below++
		}
	}
	emp := float64(below) / trials
	if want := n.OutageCDF(x); math.Abs(emp-want) > 0.01 {
		t.Fatalf("empirical CDF(%v) = %v, analytic %v", x, emp, want)
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(math.NaN(), 5, nil); !errors.Is(err, ErrBadLink) {
		t.Fatal("NaN mean SINR accepted")
	}
	if _, err := NewLink(10, math.Inf(1), nil); !errors.Is(err, ErrBadLink) {
		t.Fatal("Inf threshold accepted")
	}
	l, err := NewLink(10, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Model().Name() != "rayleigh" {
		t.Fatal("nil model must default to Rayleigh")
	}
	if math.Abs(l.MeanSINRdB()-10) > 1e-9 || math.Abs(l.ThresholdDB()-5) > 1e-9 {
		t.Fatalf("accessors: %v dB, %v dB", l.MeanSINRdB(), l.ThresholdDB())
	}
}

// TestLossProbabilityEquation8: for Rayleigh, P_F = 1 - exp(-H/meanSINR).
func TestLossProbabilityEquation8(t *testing.T) {
	l, err := NewLink(10, 5, Rayleigh{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-FromDB(5)/FromDB(10))
	if got := l.LossProbability(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P_F = %v, want %v", got, want)
	}
	if got := l.SuccessProbability(); math.Abs(got-(1-want)) > 1e-12 {
		t.Fatalf("success = %v", got)
	}
}

// TestLossProbabilityMonotonicity: stronger links lose fewer packets and a
// higher threshold loses more, for any fading model.
func TestLossProbabilityMonotonicity(t *testing.T) {
	err := quick.Check(func(sinrDeci, hDeci int16) bool {
		sinr := float64(sinrDeci%300) / 10 // -30..30 dB
		h := float64(hDeci%200) / 10       // -20..20 dB
		l1, err := NewLink(sinr, h, nil)
		if err != nil {
			return false
		}
		l2, err := NewLink(sinr+3, h, nil)
		if err != nil {
			return false
		}
		l3, err := NewLink(sinr, h+3, nil)
		if err != nil {
			return false
		}
		p1, p2, p3 := l1.LossProbability(), l2.LossProbability(), l3.LossProbability()
		inRange := p1 >= 0 && p1 <= 1
		return inRange && p2 <= p1+1e-12 && p3 >= p1-1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSampleLossMatchesAnalytic: realized loss frequency matches eq. (8).
func TestSampleLossMatchesAnalytic(t *testing.T) {
	l, err := NewLink(8, 5, Rayleigh{})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	const n = 200000
	lost := 0
	for i := 0; i < n; i++ {
		if l.Lost(s) {
			lost++
		}
	}
	got := float64(lost) / n
	if want := l.LossProbability(); math.Abs(got-want) > 0.005 {
		t.Fatalf("realized loss %v, analytic %v", got, want)
	}
}

func TestPathLossModel(t *testing.T) {
	pl := PathLoss{RefLossDB: 37, Exponent: 3, RefDist: 1}
	if got := pl.LossDB(1); got != 37 {
		t.Fatalf("loss at ref distance = %v, want 37", got)
	}
	if got := pl.LossDB(10); math.Abs(got-67) > 1e-9 {
		t.Fatalf("loss at 10 m = %v, want 67", got)
	}
	// Inside the reference distance, clamp.
	if got := pl.LossDB(0.1); got != 37 {
		t.Fatalf("loss inside ref distance = %v, want clamped 37", got)
	}
	// Monotone in distance.
	if pl.LossDB(20) <= pl.LossDB(10) {
		t.Fatal("path loss must increase with distance")
	}
}

func TestMeanSINRAndLinkAt(t *testing.T) {
	pl := DefaultPathLoss
	// 10 dBm tx, -90 dBm noise floor, 10 m: SINR = 10 - 67 - (-90) = 33 dB.
	got := MeanSINRdB(10, -90, pl, 10)
	if math.Abs(got-33) > 1e-9 {
		t.Fatalf("MeanSINRdB = %v, want 33", got)
	}
	l, err := LinkAt(10, -90, 5, pl, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.MeanSINRdB()-33) > 1e-9 {
		t.Fatalf("LinkAt mean SINR = %v", l.MeanSINRdB())
	}
	// Farther receivers see higher loss probability.
	far, err := LinkAt(10, -90, 5, pl, 50)
	if err != nil {
		t.Fatal(err)
	}
	if far.LossProbability() <= l.LossProbability() {
		t.Fatal("farther link must lose more packets")
	}
}
