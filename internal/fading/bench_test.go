package fading

import (
	"testing"

	"femtocr/internal/rng"
)

func BenchmarkRegularizedGammaSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RegularizedGammaP(4, 2) // x < a+1: series branch
	}
}

func BenchmarkRegularizedGammaContinuedFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RegularizedGammaP(4, 20) // x >= a+1: continued-fraction branch
	}
}

func BenchmarkRayleighSample(b *testing.B) {
	s := rng.New(1)
	m := Rayleigh{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PowerGain(s)
	}
}

func BenchmarkNakagamiSample(b *testing.B) {
	s := rng.New(1)
	m, err := NewNakagami(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PowerGain(s)
	}
}

func BenchmarkLinkLossProbability(b *testing.B) {
	l, err := NewLink(12, 5, Rayleigh{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.LossProbability()
	}
}
