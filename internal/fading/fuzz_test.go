package fading

import (
	"math"
	"testing"
)

// FuzzRegularizedGamma hunts for parameter pairs where the two evaluation
// branches disagree, the complement identity breaks, or the result leaves
// [0, 1].
func FuzzRegularizedGamma(f *testing.F) {
	f.Add(1.0, 1.0)
	f.Add(0.5, 10.0)
	f.Add(25.0, 24.0)
	f.Add(3.0, 0.001)
	f.Fuzz(func(t *testing.T, a, x float64) {
		if math.IsNaN(a) || math.IsNaN(x) || math.IsInf(a, 0) || math.IsInf(x, 0) {
			return
		}
		if a <= 0 || a > 500 || x < 0 || x > 1e6 {
			return
		}
		p := RegularizedGammaP(a, x)
		q := RegularizedGammaQ(a, x)
		if math.IsNaN(p) || p < -1e-12 || p > 1+1e-12 {
			t.Fatalf("P(%v, %v) = %v out of range", a, x, p)
		}
		if math.Abs(p+q-1) > 1e-9 {
			t.Fatalf("P+Q = %v at (%v, %v)", p+q, a, x)
		}
		// Monotonicity in x over a small step.
		if x > 1e-6 {
			if p2 := RegularizedGammaP(a, x*1.01); p2+1e-9 < p {
				t.Fatalf("P not monotone at (%v, %v): %v -> %v", a, x, p, p2)
			}
		}
	})
}

// FuzzLink checks the packet-loss probability stays a probability for any
// finite link geometry.
func FuzzLink(f *testing.F) {
	f.Add(10.0, 5.0)
	f.Add(-20.0, 30.0)
	f.Add(60.0, -10.0)
	f.Fuzz(func(t *testing.T, sinrDB, hDB float64) {
		if math.IsNaN(sinrDB) || math.IsInf(sinrDB, 0) || math.IsNaN(hDB) || math.IsInf(hDB, 0) {
			return
		}
		if sinrDB < -100 || sinrDB > 100 || hDB < -100 || hDB > 100 {
			return
		}
		l, err := NewLink(sinrDB, hDB, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := l.LossProbability()
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("loss probability %v for SINR %v dB, H %v dB", p, sinrDB, hDB)
		}
	})
}
