package fading_test

import (
	"fmt"

	"femtocr/internal/fading"
)

// The packet-loss probability of eq. (8) for a Rayleigh link: a 10 dB mean
// SINR link decoding at a 5 dB threshold loses about 27% of its packets.
func ExampleLink_LossProbability() {
	link, err := fading.NewLink(10, 5, fading.Rayleigh{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P_F = %.3f\n", link.LossProbability())
	// A 10x stronger link is nearly lossless.
	strong, _ := fading.NewLink(20, 5, fading.Rayleigh{})
	fmt.Printf("strong P_F = %.3f\n", strong.LossProbability())
	// Output:
	// P_F = 0.271
	// strong P_F = 0.031
}

// Log-distance path loss: every decade of distance costs 10*n dB.
func ExamplePathLoss_LossDB() {
	pl := fading.PathLoss{RefLossDB: 37, Exponent: 3, RefDist: 1}
	for _, d := range []float64{1, 10, 100} {
		fmt.Printf("%5.0f m: %.0f dB\n", d, pl.LossDB(d))
	}
	// Output:
	//     1 m: 37 dB
	//    10 m: 67 dB
	//   100 m: 97 dB
}
