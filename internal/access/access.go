// Package access implements the probabilistic opportunistic channel access
// rule of the paper's §III-C.
//
// After fusing the slot's sensing results into per-channel availability
// posteriors P_A, each licensed channel is accessed (decision variable
// D_m = 0) with probability P_D = min(gamma * eta_m / (1 - P_A), 1), where
// eta_m is the channel's prior busy probability. This is the largest access
// probability that keeps the collision probability with primary users,
// conditioned on the channel actually being busy, below the threshold gamma
// (eqs. (6)-(7)): by Bayes' rule
//
//	Pr[D_m = 0 | busy] = E[P_D * Pr(busy | obs)] / Pr(busy)
//	                   = E[(1 - P_A) * P_D] / eta_m <= gamma.
//
// The set of accessed channels is A(t), and G_t = sum over A(t) of P_A is
// the expected number of truly available channels used by the
// resource-allocation problem.
package access

import (
	"errors"
	"fmt"
	"math"

	"femtocr/internal/rng"
	"femtocr/internal/spectrum"
)

// ErrBadGamma is returned when the collision threshold lies outside [0, 1].
var ErrBadGamma = errors.New("access: collision threshold gamma must be in [0, 1]")

// Policy is the access controller for the licensed band.
type Policy struct {
	gamma float64
}

// NewPolicy builds a Policy with the maximum allowable conditional collision
// probability gamma (per channel, given the channel is busy).
func NewPolicy(gamma float64) (Policy, error) {
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return Policy{}, fmt.Errorf("%w: gamma=%v", ErrBadGamma, gamma)
	}
	return Policy{gamma: gamma}, nil
}

// Gamma returns the collision threshold.
func (p Policy) Gamma() float64 { return p.gamma }

// AccessProbability returns P_D of eq. (7) for a channel with prior busy
// probability priorBusy (the channel's utilization eta_m, or the belief
// filter's predictive prior) and fused availability posterior pa: the
// probability the channel is declared idle and accessed. The per-decision
// collision budget is gamma * priorBusy, so that averaging over sensing
// outcomes bounds the conditional collision probability
// Pr[access | busy] at gamma.
func (p Policy) AccessProbability(priorBusy, pa float64) float64 {
	busy := 1 - pa
	budget := p.gamma * priorBusy
	if busy <= budget {
		// Even if the channel turns out busy, colliding is within budget.
		return 1
	}
	return budget / busy
}

// ChannelDecision records the access outcome for one licensed channel.
type ChannelDecision struct {
	Channel    int     // 1-based licensed channel index
	Prior      float64 // prior busy probability eta_m used by the rule
	Posterior  float64 // fused availability P_A
	AccessProb float64 // P_D of eq. (7)
	Accessed   bool    // D_m = 0 in the paper's encoding
}

// SlotDecision aggregates the per-channel decisions of one slot.
type SlotDecision struct {
	Channels []ChannelDecision
}

// Decide draws the access decision D_m for every licensed channel given the
// per-channel prior busy probabilities (priors[m-1] = eta of channel m) and
// the fused posteriors (posteriors[m-1] = P_A of channel m).
func (p Policy) Decide(priors, posteriors []float64, s *rng.Stream) SlotDecision {
	out := SlotDecision{}
	p.DecideInto(priors, posteriors, s, &out)
	return out
}

// DecideInto is Decide writing into a caller-owned decision, reusing its
// Channels slice, for per-slot loops that keep one SlotDecision alive.
//
//femtovet:hotpath
//femtovet:borrows priors, posteriors, s, out
func (p Policy) DecideInto(priors, posteriors []float64, s *rng.Stream, out *SlotDecision) {
	m := len(posteriors)
	if cap(out.Channels) < m {
		out.Channels = make([]ChannelDecision, m)
	} else {
		out.Channels = out.Channels[:m]
	}
	for i, pa := range posteriors {
		prior := 1.0
		if i < len(priors) {
			prior = priors[i]
		}
		pd := p.AccessProbability(prior, pa)
		out.Channels[i] = ChannelDecision{
			Channel:    i + 1,
			Prior:      prior,
			Posterior:  pa,
			AccessProb: pd,
			Accessed:   s.Bernoulli(pd),
		}
	}
}

// Available returns the accessed channel set A(t) as 1-based indices.
func (d SlotDecision) Available() []int {
	return d.AppendAvailable(nil)
}

// AppendAvailable appends the accessed channel set A(t) to buf (typically
// buf[:0] of a reused slice) and returns it.
//
//femtovet:hotpath
//femtovet:owns buf
func (d SlotDecision) AppendAvailable(buf []int) []int {
	for _, c := range d.Channels {
		if c.Accessed {
			buf = append(buf, c.Channel)
		}
	}
	return buf
}

// ExpectedAvailable returns G_t = sum over accessed channels of P_A, the
// expected number of truly idle channels among those accessed.
func (d SlotDecision) ExpectedAvailable() float64 {
	g := 0.0
	for _, c := range d.Channels {
		if c.Accessed {
			g += c.Posterior
		}
	}
	return g
}

// NumAccessed returns |A(t)|.
func (d SlotDecision) NumAccessed() int {
	n := 0
	for _, c := range d.Channels {
		if c.Accessed {
			n++
		}
	}
	return n
}

// CollisionBound returns the largest per-channel conditional collision
// probability (1 - P_A) * P_D / eta_m of this slot, the left-hand side of
// eq. (6) after conditioning on a busy channel. A correct policy keeps it
// at or below gamma. Channels with a zero prior (never busy) contribute
// nothing: they cannot collide.
func (d SlotDecision) CollisionBound() float64 {
	worst := 0.0
	for _, c := range d.Channels {
		if c.Prior <= 0 {
			continue
		}
		if v := (1 - c.Posterior) * c.AccessProb / c.Prior; v > worst {
			worst = v
		}
	}
	return worst
}

// CollisionTracker measures the realized collision rate against the true
// channel occupancy, validating primary-user protection end to end.
type CollisionTracker struct {
	slots      int
	collisions []int // per channel: slots where accessed && truly busy
	busySlots  []int // per channel: slots where truly busy
}

// NewCollisionTracker tracks m licensed channels.
func NewCollisionTracker(m int) *CollisionTracker {
	return &CollisionTracker{
		collisions: make([]int, m),
		busySlots:  make([]int, m),
	}
}

// Record accounts one slot's decision against the true occupancy.
func (c *CollisionTracker) Record(d SlotDecision, truth spectrum.Occupancy) {
	c.slots++
	for _, ch := range d.Channels {
		idx := ch.Channel - 1
		if idx < 0 || idx >= len(c.collisions) {
			continue
		}
		if !truth.Idle(ch.Channel) {
			c.busySlots[idx]++
			if ch.Accessed {
				c.collisions[idx]++
			}
		}
	}
}

// Slots returns the number of recorded slots.
func (c *CollisionTracker) Slots() int { return c.slots }

// BusySlots returns the number of recorded slots in which channel m
// (1-based) was truly occupied by a primary user.
func (c *CollisionTracker) BusySlots(m int) int { return c.busySlots[m-1] }

// Rate returns the per-slot collision probability of channel m (1-based):
// the fraction of ALL slots in which the CR network transmitted on channel m
// while a primary user occupied it. This is a diagnostic, NOT the quantity
// bounded by gamma: eq. (6) conditions on the channel being busy, so the
// per-slot ratio understates the checked quantity by the channel's
// utilization eta (Rate ≈ eta * ConditionalRate). Use ConditionalRate for
// the primary-user-protection check.
func (c *CollisionTracker) Rate(m int) float64 {
	if c.slots == 0 {
		return 0
	}
	return float64(c.collisions[m-1]) / float64(c.slots)
}

// MaxRate returns the largest per-channel per-slot collision rate (see
// Rate for why this is a diagnostic rather than the eq. (6) check).
func (c *CollisionTracker) MaxRate() float64 {
	worst := 0.0
	for m := 1; m <= len(c.collisions); m++ {
		if r := c.Rate(m); r > worst {
			worst = r
		}
	}
	return worst
}

// ConditionalRate returns the conditional collision probability of channel m
// (1-based): the fraction of truly-busy slots in which the CR network
// nevertheless transmitted on channel m. This is the quantity eq. (6)
// bounds by gamma. A channel that was never busy has no collision exposure
// and reports 0.
func (c *CollisionTracker) ConditionalRate(m int) float64 {
	if c.busySlots[m-1] == 0 {
		return 0
	}
	return float64(c.collisions[m-1]) / float64(c.busySlots[m-1])
}

// MaxConditionalRate returns the largest per-channel conditional collision
// rate, the realized left-hand side of eq. (6).
func (c *CollisionTracker) MaxConditionalRate() float64 {
	worst := 0.0
	for m := 1; m <= len(c.collisions); m++ {
		if r := c.ConditionalRate(m); r > worst {
			worst = r
		}
	}
	return worst
}
