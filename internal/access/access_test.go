package access

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
	"femtocr/internal/spectrum"
)

func policy(t *testing.T, gamma float64) Policy {
	t.Helper()
	p, err := NewPolicy(gamma)
	if err != nil {
		t.Fatalf("NewPolicy(%v): %v", gamma, err)
	}
	return p
}

func TestNewPolicyValidation(t *testing.T) {
	for _, g := range []float64{0, 0.2, 1} {
		if _, err := NewPolicy(g); err != nil {
			t.Errorf("NewPolicy(%v) unexpected err %v", g, err)
		}
	}
	for _, g := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewPolicy(g); !errors.Is(err, ErrBadGamma) {
			t.Errorf("NewPolicy(%v) err should be ErrBadGamma", g)
		}
	}
}

// TestAccessProbabilityEquation7 checks P_D = min(gamma*eta/(1-P_A), 1).
func TestAccessProbabilityEquation7(t *testing.T) {
	p := policy(t, 0.2)
	cases := []struct {
		prior float64
		pa    float64
		want  float64
	}{
		{0.6, 0.95, 1},    // 1-pa = 0.05 <= gamma*eta = 0.12: always access
		{0.6, 0.88, 1},    // boundary: 1-pa == gamma*eta
		{0.6, 0.5, 0.24},  // 0.12/0.5
		{0.6, 0.0, 0.12},  // certainly busy: access with prob gamma*eta
		{0.6, 0.75, 0.48}, // 0.12/0.25
		{0.6, 1.0, 1},     // certainly idle
		{1.0, 0.5, 0.4},   // always-busy prior reduces to gamma/(1-pa)
		{1.0, 0.8, 1},     // boundary of the prior-free rule
		{0.3, 0.5, 0.12},  // 0.06/0.5
		{0.0, 0.5, 0},     // never-busy prior: no collision budget to spend
	}
	for _, c := range cases {
		if got := p.AccessProbability(c.prior, c.pa); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AccessProbability(%v, %v) = %v, want %v", c.prior, c.pa, got, c.want)
		}
	}
}

// TestCollisionConstraintProperty: (1 - P_A) * P_D <= gamma * eta for every
// prior and posterior — dividing by the prior busy probability eta, this is
// the conditional primary-user protection constraint of eq. (6).
func TestCollisionConstraintProperty(t *testing.T) {
	err := quick.Check(func(gPct, etaPct, paPct uint16) bool {
		gamma := float64(gPct%101) / 100
		eta := float64(etaPct%1001) / 1000
		pa := float64(paPct%1001) / 1000
		p, err := NewPolicy(gamma)
		if err != nil {
			return false
		}
		pd := p.AccessProbability(eta, pa)
		return pd >= 0 && pd <= 1 && (1-pa)*pd <= gamma*eta+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGammaZeroNeverAccessesUncertain(t *testing.T) {
	p := policy(t, 0)
	if got := p.AccessProbability(0.6, 0.7); got != 0 {
		t.Fatalf("gamma=0, P_A=0.7: P_D = %v, want 0", got)
	}
	// A certainly idle channel may still be accessed.
	if got := p.AccessProbability(0.6, 1.0); got != 1 {
		t.Fatalf("gamma=0, P_A=1: P_D = %v, want 1", got)
	}
}

func TestDecideRealizesAccessProbability(t *testing.T) {
	p := policy(t, 0.2)
	s := rng.New(1)
	const n = 200000
	accessed := 0
	for i := 0; i < n; i++ {
		d := p.Decide([]float64{0.6}, []float64{0.5}, s)
		if d.Channels[0].Accessed {
			accessed++
		}
	}
	// P_D = gamma*eta/(1-pa) = 0.2*0.6/0.5 = 0.24.
	got := float64(accessed) / n
	if math.Abs(got-0.24) > 0.01 {
		t.Fatalf("empirical access rate %v, want ~0.24", got)
	}
}

// TestDecideDefaultsPriorToOne: channels beyond the priors slice fall back to
// the conservative always-busy prior, reproducing the prior-free rule
// gamma/(1-pa).
func TestDecideDefaultsPriorToOne(t *testing.T) {
	p := policy(t, 0.2)
	s := rng.New(2)
	d := p.Decide(nil, []float64{0.5}, s)
	if got := d.Channels[0].AccessProb; math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("AccessProb with missing prior = %v, want 0.4", got)
	}
	if got := d.Channels[0].Prior; got != 1 {
		t.Fatalf("Prior defaulted to %v, want 1", got)
	}
}

func TestSlotDecisionAggregates(t *testing.T) {
	d := SlotDecision{Channels: []ChannelDecision{
		{Channel: 1, Prior: 0.6, Posterior: 0.9, AccessProb: 1, Accessed: true},
		{Channel: 2, Prior: 0.6, Posterior: 0.5, AccessProb: 0.24, Accessed: false},
		{Channel: 3, Prior: 0.6, Posterior: 0.88, AccessProb: 1, Accessed: true},
	}}
	av := d.Available()
	if len(av) != 2 || av[0] != 1 || av[1] != 3 {
		t.Fatalf("Available = %v, want [1 3]", av)
	}
	if got := d.ExpectedAvailable(); math.Abs(got-1.78) > 1e-12 {
		t.Fatalf("ExpectedAvailable = %v, want 1.78", got)
	}
	if d.NumAccessed() != 2 {
		t.Fatalf("NumAccessed = %d, want 2", d.NumAccessed())
	}
	// Conditional bounds: ch1 0.1/0.6, ch2 0.5*0.24/0.6 = 0.2, ch3 0.12/0.6 = 0.2.
	if got := d.CollisionBound(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("CollisionBound = %v, want 0.2", got)
	}
}

// TestCollisionBoundSkipsZeroPrior: a channel that is never busy has no
// collision exposure and must not dominate the bound with a 0/0.
func TestCollisionBoundSkipsZeroPrior(t *testing.T) {
	d := SlotDecision{Channels: []ChannelDecision{
		{Channel: 1, Prior: 0, Posterior: 0.5, AccessProb: 0, Accessed: false},
		{Channel: 2, Prior: 0.5, Posterior: 0.9, AccessProb: 1, Accessed: true},
	}}
	if got := d.CollisionBound(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("CollisionBound = %v, want 0.2 (zero-prior channel skipped)", got)
	}
}

func TestEmptySlotDecision(t *testing.T) {
	var d SlotDecision
	if d.Available() != nil || d.ExpectedAvailable() != 0 || d.NumAccessed() != 0 || d.CollisionBound() != 0 {
		t.Fatal("empty decision aggregates should be zero")
	}
}

// TestEndToEndCollisionRate runs the full pipeline — Markov occupancy,
// noisy sensing, fusion, access — and verifies the realized conditional
// collision probability stays below gamma. This is the paper's
// primary-user-protection guarantee (eq. 6).
func TestEndToEndCollisionRate(t *testing.T) {
	const (
		m     = 8
		gamma = 0.2
		slots = 30000
	)
	chain, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	band, err := spectrum.NewBand(m, 0.3, 0.3, chain)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sensing.NewDetector(0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy(t, gamma)
	root := rng.New(12345)
	sim := spectrum.NewSimulator(band, root.Split("occupancy"))
	senseStream := root.Split("sense")
	accessStream := root.Split("access")
	tracker := NewCollisionTracker(m)
	eta := chain.Utilization()
	priors := make([]float64, m)
	for ch := range priors {
		priors[ch] = eta
	}

	for slot := 0; slot < slots; slot++ {
		truth := sim.Step()
		posteriors := make([]float64, m)
		for ch := 1; ch <= m; ch++ {
			// Three sensing results per channel, as with K=3 users + FBS.
			obs := []sensing.Observation{
				det.Sense(truth[ch-1], senseStream),
				det.Sense(truth[ch-1], senseStream),
				det.Sense(truth[ch-1], senseStream),
			}
			pa, err := sensing.Posterior(eta, obs)
			if err != nil {
				t.Fatal(err)
			}
			posteriors[ch-1] = pa
		}
		d := pol.Decide(priors, posteriors, accessStream)
		if d.CollisionBound() > gamma+1e-9 {
			t.Fatalf("slot %d: collision bound %v exceeds gamma", slot, d.CollisionBound())
		}
		tracker.Record(d, truth)
	}
	if tracker.Slots() != slots {
		t.Fatalf("tracker recorded %d slots, want %d", tracker.Slots(), slots)
	}
	// Allow small sampling slack above gamma.
	if got := tracker.MaxConditionalRate(); got > gamma+0.02 {
		t.Fatalf("realized max conditional collision rate %v exceeds gamma=%v", got, gamma)
	}
	// With imperfect sensing the system must actually be transmitting
	// sometimes on busy channels; a zero rate would mean it never accesses.
	if tracker.MaxConditionalRate() == 0 {
		t.Fatal("collision rate is exactly zero; access rule looks inert")
	}
	// The per-slot diagnostic understates the conditional rate by eta.
	if tracker.MaxRate() >= tracker.MaxConditionalRate() {
		t.Fatalf("per-slot MaxRate %v should sit below conditional %v at eta=%v",
			tracker.MaxRate(), tracker.MaxConditionalRate(), eta)
	}
}

// TestConditionalRateTracksGammaAcrossEta is the regression suite for the
// eq. (6) accounting bug: the conditional collision rate — collisions over
// truly-busy slots — must sit near gamma regardless of the channel
// utilization eta, while the per-slot ratio sits near eta*gamma. Against the
// old per-slot accounting (where the policy spent the whole gamma budget per
// slot and Rate was reported as the bounded quantity) the conditional rate at
// eta=0.3 would read ~gamma/eta = 3x gamma, so this test fails on the old
// code and passes on the fix.
func TestConditionalRateTracksGammaAcrossEta(t *testing.T) {
	const (
		m     = 8
		gamma = 0.2
		slots = 40000
	)
	for _, eta := range []float64{0.3, 0.6, 0.9} {
		eta := eta
		t.Run(trimEta(eta), func(t *testing.T) {
			chain, err := markov.FromUtilization(eta, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			band, err := spectrum.NewBand(m, 0.3, 0.3, chain)
			if err != nil {
				t.Fatal(err)
			}
			det, err := sensing.NewDetector(0.3, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			pol := policy(t, gamma)
			root := rng.New(777)
			sim := spectrum.NewSimulator(band, root.Split("occupancy"))
			senseStream := root.Split("sense")
			accessStream := root.Split("access")
			tracker := NewCollisionTracker(m)
			priors := make([]float64, m)
			for ch := range priors {
				priors[ch] = eta
			}
			for slot := 0; slot < slots; slot++ {
				truth := sim.Step()
				posteriors := make([]float64, m)
				for ch := 1; ch <= m; ch++ {
					obs := []sensing.Observation{
						det.Sense(truth[ch-1], senseStream),
						det.Sense(truth[ch-1], senseStream),
						det.Sense(truth[ch-1], senseStream),
					}
					pa, err := sensing.Posterior(eta, obs)
					if err != nil {
						t.Fatal(err)
					}
					posteriors[ch-1] = pa
				}
				tracker.Record(pol.Decide(priors, posteriors, accessStream), truth)
			}
			// Average over channels to cut sampling noise: each channel is an
			// independent replicate of the same (eta, gamma) experiment.
			var condSum, slotSum float64
			for ch := 1; ch <= m; ch++ {
				condSum += tracker.ConditionalRate(ch)
				slotSum += tracker.Rate(ch)
			}
			cond := condSum / m
			perSlot := slotSum / m
			// A calibrated policy spends most of the budget: the conditional
			// rate must sit near gamma — above the eta-diluted per-slot level
			// and at or below gamma (plus sampling slack).
			if cond > gamma+0.02 {
				t.Fatalf("eta=%v: conditional rate %v exceeds gamma=%v", eta, cond, gamma)
			}
			if cond < 0.6*gamma {
				t.Fatalf("eta=%v: conditional rate %v far below gamma=%v; policy too conservative", eta, cond, gamma)
			}
			// The per-slot diagnostic is the eta-diluted version: ~eta*gamma.
			if math.Abs(perSlot-eta*cond) > 0.02 {
				t.Fatalf("eta=%v: per-slot rate %v should approximate eta*conditional = %v",
					eta, perSlot, eta*cond)
			}
			// Guard against the old accounting: the quantity reported as the
			// gamma check must be the conditional one, which strictly exceeds
			// the per-slot ratio whenever channels idle part of the time.
			if eta < 1 && cond <= perSlot {
				t.Fatalf("eta=%v: conditional rate %v should exceed per-slot rate %v", eta, cond, perSlot)
			}
		})
	}
}

func trimEta(eta float64) string {
	switch eta {
	case 0.3:
		return "eta=0.3"
	case 0.6:
		return "eta=0.6"
	default:
		return "eta=0.9"
	}
}

func TestCollisionTrackerPerChannel(t *testing.T) {
	tr := NewCollisionTracker(2)
	busyIdle := spectrum.Occupancy{markov.Busy, markov.Idle}
	bothIdle := spectrum.Occupancy{markov.Idle, markov.Idle}
	d := SlotDecision{Channels: []ChannelDecision{
		{Channel: 1, Prior: 0.5, Posterior: 0.5, AccessProb: 0.2, Accessed: true},
		{Channel: 2, Prior: 0.5, Posterior: 0.9, AccessProb: 1, Accessed: true},
	}}
	tr.Record(d, busyIdle)
	tr.Record(d, busyIdle)
	tr.Record(d, bothIdle)
	// Channel 1: busy in 2 of 3 slots, collided in both busy slots.
	if got := tr.Rate(1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("channel 1 per-slot rate %v, want 2/3", got)
	}
	if got := tr.ConditionalRate(1); got != 1 {
		t.Fatalf("channel 1 conditional rate %v, want 1", got)
	}
	if got := tr.BusySlots(1); got != 2 {
		t.Fatalf("channel 1 busy slots %v, want 2", got)
	}
	// Channel 2: never busy, so no exposure at all.
	if tr.Rate(2) != 0 || tr.ConditionalRate(2) != 0 || tr.BusySlots(2) != 0 {
		t.Fatalf("channel 2 should report zero rates, got per-slot %v conditional %v busy %v",
			tr.Rate(2), tr.ConditionalRate(2), tr.BusySlots(2))
	}
	if tr.MaxRate() != 2.0/3.0 {
		t.Fatalf("MaxRate = %v, want 2/3", tr.MaxRate())
	}
	if tr.MaxConditionalRate() != 1 {
		t.Fatalf("MaxConditionalRate = %v, want 1", tr.MaxConditionalRate())
	}
}

func TestCollisionTrackerEmpty(t *testing.T) {
	tr := NewCollisionTracker(3)
	if tr.Rate(1) != 0 || tr.MaxRate() != 0 || tr.Slots() != 0 {
		t.Fatal("empty tracker should report zeros")
	}
	if tr.ConditionalRate(1) != 0 || tr.MaxConditionalRate() != 0 || tr.BusySlots(1) != 0 {
		t.Fatal("empty tracker should report zero conditional rates")
	}
}
