package access

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
	"femtocr/internal/spectrum"
)

func policy(t *testing.T, gamma float64) Policy {
	t.Helper()
	p, err := NewPolicy(gamma)
	if err != nil {
		t.Fatalf("NewPolicy(%v): %v", gamma, err)
	}
	return p
}

func TestNewPolicyValidation(t *testing.T) {
	for _, g := range []float64{0, 0.2, 1} {
		if _, err := NewPolicy(g); err != nil {
			t.Errorf("NewPolicy(%v) unexpected err %v", g, err)
		}
	}
	for _, g := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewPolicy(g); !errors.Is(err, ErrBadGamma) {
			t.Errorf("NewPolicy(%v) err should be ErrBadGamma", g)
		}
	}
}

// TestAccessProbabilityEquation7 checks P_D = min(gamma/(1-P_A), 1).
func TestAccessProbabilityEquation7(t *testing.T) {
	p := policy(t, 0.2)
	cases := []struct {
		pa   float64
		want float64
	}{
		{0.9, 1},    // 1-pa = 0.1 <= gamma: always access
		{0.8, 1},    // boundary: 1-pa == gamma
		{0.5, 0.4},  // 0.2/0.5
		{0.0, 0.2},  // certainly busy: access with prob gamma
		{0.75, 0.8}, // 0.2/0.25
		{1.0, 1},    // certainly idle
		{0.6, 0.5},  // 0.2/0.4
	}
	for _, c := range cases {
		if got := p.AccessProbability(c.pa); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AccessProbability(%v) = %v, want %v", c.pa, got, c.want)
		}
	}
}

// TestCollisionConstraintProperty: (1 - P_A) * P_D <= gamma for every
// posterior, the primary-user protection constraint of eq. (6).
func TestCollisionConstraintProperty(t *testing.T) {
	err := quick.Check(func(gPct, paPct uint16) bool {
		gamma := float64(gPct%101) / 100
		pa := float64(paPct%1001) / 1000
		p, err := NewPolicy(gamma)
		if err != nil {
			return false
		}
		pd := p.AccessProbability(pa)
		return pd >= 0 && pd <= 1 && (1-pa)*pd <= gamma+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGammaZeroNeverAccessesUncertain(t *testing.T) {
	p := policy(t, 0)
	if got := p.AccessProbability(0.7); got != 0 {
		t.Fatalf("gamma=0, P_A=0.7: P_D = %v, want 0", got)
	}
	// A certainly idle channel may still be accessed.
	if got := p.AccessProbability(1.0); got != 1 {
		t.Fatalf("gamma=0, P_A=1: P_D = %v, want 1", got)
	}
}

func TestDecideRealizesAccessProbability(t *testing.T) {
	p := policy(t, 0.2)
	s := rng.New(1)
	const n = 200000
	accessed := 0
	for i := 0; i < n; i++ {
		d := p.Decide([]float64{0.5}, s)
		if d.Channels[0].Accessed {
			accessed++
		}
	}
	got := float64(accessed) / n
	if math.Abs(got-0.4) > 0.01 {
		t.Fatalf("empirical access rate %v, want ~0.4", got)
	}
}

func TestSlotDecisionAggregates(t *testing.T) {
	d := SlotDecision{Channels: []ChannelDecision{
		{Channel: 1, Posterior: 0.9, AccessProb: 1, Accessed: true},
		{Channel: 2, Posterior: 0.5, AccessProb: 0.4, Accessed: false},
		{Channel: 3, Posterior: 0.8, AccessProb: 1, Accessed: true},
	}}
	av := d.Available()
	if len(av) != 2 || av[0] != 1 || av[1] != 3 {
		t.Fatalf("Available = %v, want [1 3]", av)
	}
	if got := d.ExpectedAvailable(); math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("ExpectedAvailable = %v, want 1.7", got)
	}
	if d.NumAccessed() != 2 {
		t.Fatalf("NumAccessed = %d, want 2", d.NumAccessed())
	}
	if got := d.CollisionBound(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("CollisionBound = %v, want 0.2 (channel 3)", got)
	}
}

func TestEmptySlotDecision(t *testing.T) {
	var d SlotDecision
	if d.Available() != nil || d.ExpectedAvailable() != 0 || d.NumAccessed() != 0 || d.CollisionBound() != 0 {
		t.Fatal("empty decision aggregates should be zero")
	}
}

// TestEndToEndCollisionRate runs the full pipeline — Markov occupancy,
// noisy sensing, fusion, access — and verifies the realized per-slot
// collision probability stays below gamma. This is the paper's
// primary-user-protection guarantee.
func TestEndToEndCollisionRate(t *testing.T) {
	const (
		m     = 8
		gamma = 0.2
		slots = 30000
	)
	chain, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	band, err := spectrum.NewBand(m, 0.3, 0.3, chain)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sensing.NewDetector(0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy(t, gamma)
	root := rng.New(12345)
	sim := spectrum.NewSimulator(band, root.Split("occupancy"))
	senseStream := root.Split("sense")
	accessStream := root.Split("access")
	tracker := NewCollisionTracker(m)
	eta := chain.Utilization()

	for slot := 0; slot < slots; slot++ {
		truth := sim.Step()
		posteriors := make([]float64, m)
		for ch := 1; ch <= m; ch++ {
			// Three sensing results per channel, as with K=3 users + FBS.
			obs := []sensing.Observation{
				det.Sense(truth[ch-1], senseStream),
				det.Sense(truth[ch-1], senseStream),
				det.Sense(truth[ch-1], senseStream),
			}
			pa, err := sensing.Posterior(eta, obs)
			if err != nil {
				t.Fatal(err)
			}
			posteriors[ch-1] = pa
		}
		d := pol.Decide(posteriors, accessStream)
		if d.CollisionBound() > gamma+1e-9 {
			t.Fatalf("slot %d: collision bound %v exceeds gamma", slot, d.CollisionBound())
		}
		tracker.Record(d, truth)
	}
	if tracker.Slots() != slots {
		t.Fatalf("tracker recorded %d slots, want %d", tracker.Slots(), slots)
	}
	// Allow small sampling slack above gamma.
	if got := tracker.MaxRate(); got > gamma+0.02 {
		t.Fatalf("realized max collision rate %v exceeds gamma=%v", got, gamma)
	}
	// With imperfect sensing the system must actually be transmitting
	// sometimes on busy channels; a zero rate would mean it never accesses.
	if tracker.MaxRate() == 0 {
		t.Fatal("collision rate is exactly zero; access rule looks inert")
	}
}

func TestCollisionTrackerPerChannel(t *testing.T) {
	tr := NewCollisionTracker(2)
	truth := spectrum.Occupancy{markov.Busy, markov.Idle}
	d := SlotDecision{Channels: []ChannelDecision{
		{Channel: 1, Posterior: 0.5, AccessProb: 0.4, Accessed: true},
		{Channel: 2, Posterior: 0.9, AccessProb: 1, Accessed: true},
	}}
	tr.Record(d, truth)
	tr.Record(d, truth)
	if got := tr.Rate(1); got != 1 {
		t.Fatalf("channel 1 collision rate %v, want 1", got)
	}
	if got := tr.Rate(2); got != 0 {
		t.Fatalf("channel 2 collision rate %v, want 0", got)
	}
	if tr.MaxRate() != 1 {
		t.Fatalf("MaxRate = %v, want 1", tr.MaxRate())
	}
}

func TestCollisionTrackerEmpty(t *testing.T) {
	tr := NewCollisionTracker(3)
	if tr.Rate(1) != 0 || tr.MaxRate() != 0 || tr.Slots() != 0 {
		t.Fatal("empty tracker should report zeros")
	}
}
