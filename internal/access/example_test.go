package access_test

import (
	"fmt"

	"femtocr/internal/access"
)

// The opportunistic access rule of eq. (7): the access probability is the
// largest value that keeps the collision probability with primary users,
// conditioned on the channel being busy, at or below gamma (eq. 6). With
// utilization eta = 0.6 the per-slot collision budget is gamma*eta = 0.12,
// so the conditional collision probability (1-P_A)*P_D/eta stays at 0.2.
func ExamplePolicy_AccessProbability() {
	policy, err := access.NewPolicy(0.2)
	if err != nil {
		panic(err)
	}
	const eta = 0.6
	for _, pa := range []float64{0.95, 0.88, 0.5, 0.0} {
		pd := policy.AccessProbability(eta, pa)
		fmt.Printf("P_A=%.2f -> P_D=%.2f (conditional collision %.2f)\n",
			pa, pd, (1-pa)*pd/eta)
	}
	// Output:
	// P_A=0.95 -> P_D=1.00 (conditional collision 0.08)
	// P_A=0.88 -> P_D=1.00 (conditional collision 0.20)
	// P_A=0.50 -> P_D=0.24 (conditional collision 0.20)
	// P_A=0.00 -> P_D=0.12 (conditional collision 0.20)
}
