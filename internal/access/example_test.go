package access_test

import (
	"fmt"

	"femtocr/internal/access"
)

// The opportunistic access rule of eq. (7): the access probability is the
// largest value that keeps the expected collision with primary users at or
// below gamma (eq. 6).
func ExamplePolicy_AccessProbability() {
	policy, err := access.NewPolicy(0.2)
	if err != nil {
		panic(err)
	}
	for _, pa := range []float64{0.9, 0.8, 0.5, 0.0} {
		pd := policy.AccessProbability(pa)
		fmt.Printf("P_A=%.1f -> P_D=%.2f (collision %.2f)\n", pa, pd, (1-pa)*pd)
	}
	// Output:
	// P_A=0.9 -> P_D=1.00 (collision 0.10)
	// P_A=0.8 -> P_D=1.00 (collision 0.20)
	// P_A=0.5 -> P_D=0.40 (collision 0.20)
	// P_A=0.0 -> P_D=0.20 (collision 0.20)
}
