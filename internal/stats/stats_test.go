package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Unbiased sample variance of this classic data set is 32/7.
	if want := 32.0 / 7.0; !almostEqual(r.Variance(), want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", r.Variance(), want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 || r.N() != 0 {
		t.Fatal("zero-value Running must report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Variance() != 0 {
		t.Fatalf("variance of single sample = %v, want 0", r.Variance())
	}
	if r.Min() != 3.5 || r.Max() != 3.5 {
		t.Fatal("min/max of single sample wrong")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	err := quick.Check(func(seed uint64, nA, nB uint8) bool {
		s := rng.New(seed)
		a := make([]float64, int(nA)+1)
		b := make([]float64, int(nB)+1)
		for i := range a {
			a[i] = s.Normal(10, 3)
		}
		for i := range b {
			b[i] = s.Normal(-5, 7)
		}
		var ra, rb, all Running
		ra.AddAll(a)
		rb.AddAll(b)
		all.AddAll(a)
		all.AddAll(b)
		ra.Merge(&rb)
		return ra.N() == all.N() &&
			almostEqual(ra.Mean(), all.Mean(), 1e-9) &&
			almostEqual(ra.Variance(), all.Variance(), 1e-9) &&
			ra.Min() == all.Min() && ra.Max() == all.Max()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // merging empty is a no-op
	if a != before {
		t.Fatal("merging empty accumulator changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || !almostEqual(b.Mean(), 2, 1e-12) {
		t.Fatal("merging into empty accumulator failed")
	}
}

func TestSummarizeTenRuns(t *testing.T) {
	// The paper averages 10 runs; df=9 gives t=2.262.
	xs := []float64{30, 31, 32, 33, 34, 35, 36, 37, 38, 39}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 {
		t.Fatalf("N = %d, want 10", s.N)
	}
	if !almostEqual(s.Mean, 34.5, 1e-12) {
		t.Fatalf("Mean = %v, want 34.5", s.Mean)
	}
	wantHW := 2.262 * s.StdDev / math.Sqrt(10)
	if !almostEqual(s.HalfWidth, wantHW, 1e-9) {
		t.Fatalf("HalfWidth = %v, want %v", s.HalfWidth, wantHW)
	}
	if !(s.Lo() < s.Mean && s.Mean < s.Hi()) {
		t.Fatal("confidence interval does not bracket the mean")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if s.HalfWidth != 0 {
		t.Fatalf("single-sample half-width = %v, want 0", s.HalfWidth)
	}
}

func TestTCritical(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {9, 2.262}, {30, 2.042}, {31, 1.96}, {1000, 1.96}, {0, 0},
	}
	for _, c := range cases {
		if got := tCritical95(c.df); got != c.want {
			t.Errorf("tCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		got, err := Median(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := Median(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("Median(nil) err = %v, want ErrNoData", err)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{9, 1, 5}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatalf("Median mutated its input: %v", in)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) != 0")
	}
	if got := MeanOf([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("MeanOf = %v, want 2", got)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint8) bool {
		s := rng.New(seed)
		xs := make([]float64, int(n)+2)
		for i := range xs {
			xs[i] = s.Normal(0, 1)
		}
		sum, err := Summarize(xs)
		if err != nil {
			return false
		}
		var r Running
		r.AddAll(xs)
		// The CI must always bracket the mean and lie within [min, max]
		// padded by the half-width.
		return sum.Lo() <= sum.Mean && sum.Mean <= sum.Hi() &&
			sum.Mean >= r.Min() && sum.Mean <= r.Max()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Fatal("empty index")
	}
	if JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("all-zero index")
	}
	if got := JainIndex([]float64{5, 5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("equal shares index %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("monopolized index %v, want 1/4", got)
	}
	// More balanced vectors score higher.
	if JainIndex([]float64{3, 3, 2}) <= JainIndex([]float64{6, 1, 1}) {
		t.Fatal("balance ordering violated")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Fatal("empty accepted")
	}
	// Clamping.
	if got, _ := Percentile(xs, -1); got != 1 {
		t.Fatal("p<0 not clamped")
	}
	if got, _ := Percentile(xs, 2); got != 4 {
		t.Fatal("p>1 not clamped")
	}
	// Input not mutated.
	if xs[0] != 4 {
		t.Fatal("input mutated")
	}
}
