package stats

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Series is one plotted curve: a named sequence of (x, Summary) points, the
// unit of data behind every figure in the paper's evaluation section.
type Series struct {
	Name   string
	X      []float64
	Points []Summary
}

// NewSeries returns an empty Series with the given name.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Append adds one point to the series.
func (s *Series) Append(x float64, p Summary) {
	s.X = append(s.X, x)
	s.Points = append(s.Points, p)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// At returns the i-th point.
func (s *Series) At(i int) (float64, Summary) { return s.X[i], s.Points[i] }

// Figure is a collection of curves over a shared x-axis, plus axis labels.
// It renders to the aligned text table printed by the benchmark harness and
// to CSV for external plotting.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Curves []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xLabel, yLabel string) *Figure {
	return &Figure{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// Add appends a curve to the figure.
func (f *Figure) Add(s *Series) { f.Curves = append(f.Curves, s) }

// Curve returns the curve with the given name, or nil.
func (f *Figure) Curve(name string) *Series {
	for _, c := range f.Curves {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// xValues returns the sorted union of x values across all curves.
func (f *Figure) xValues() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, c := range f.Curves {
		for _, x := range c.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Render returns an aligned text table: one row per x value, one
// "mean +/- hw" column per curve. This is the textual equivalent of the
// paper's figures.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	xs := f.xValues()

	header := make([]string, 0, len(f.Curves)+1)
	header = append(header, f.XLabel)
	for _, c := range f.Curves {
		header = append(header, c.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := make([]string, 0, len(f.Curves)+1)
		row = append(row, trimFloat(x))
		for _, c := range f.Curves {
			cell := "-"
			for i, cx := range c.X {
				// Grid-key lookup: x comes verbatim from the curves' X
				// slices, so exact match is the intended semantics.
				if cx == x { //femtovet:ignore floateq -- grid-key lookup, exact by design
					p := c.Points[i]
					if p.HalfWidth > 0 {
						cell = fmt.Sprintf("%.2f ±%.2f", p.Mean, p.HalfWidth)
					} else {
						cell = fmt.Sprintf("%.2f", p.Mean)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for _, w := range widths {
				b.WriteString(strings.Repeat("-", w) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "(%s on y-axis)\n", f.YLabel)
	return b.String()
}

// CSV returns the figure as comma-separated values with mean, lo, hi columns
// per curve, suitable for external plotting tools.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, c := range f.Curves {
		fmt.Fprintf(&b, ",%s_mean,%s_lo,%s_hi",
			csvEscape(c.Name), csvEscape(c.Name), csvEscape(c.Name))
	}
	b.WriteByte('\n')
	for _, x := range f.xValues() {
		b.WriteString(trimFloat(x))
		for _, c := range f.Curves {
			found := false
			for i, cx := range c.X {
				// Grid-key lookup, exact by design (see FormatTable).
				if cx == x { //femtovet:ignore floateq -- grid-key lookup, exact by design
					p := c.Points[i]
					fmt.Fprintf(&b, ",%g,%g,%g", p.Mean, p.Lo(), p.Hi())
					found = true
					break
				}
			}
			if !found {
				b.WriteString(",,,")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', 6, 64)
}

func csvEscape(s string) string {
	return strings.NewReplacer(",", ";", "\n", " ").Replace(s)
}
