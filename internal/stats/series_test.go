package stats

import (
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	f := NewFigure("Video quality vs utilization", "eta", "Y-PSNR (dB)")
	a := NewSeries("Proposed")
	a.Append(0.3, Summary{N: 10, Mean: 37.5, HalfWidth: 0.2})
	a.Append(0.5, Summary{N: 10, Mean: 35.1, HalfWidth: 0.3})
	b := NewSeries("Heuristic 1")
	b.Append(0.3, Summary{N: 10, Mean: 34.2, HalfWidth: 0.25})
	b.Append(0.5, Summary{N: 10, Mean: 33.0, HalfWidth: 0.15})
	f.Add(a)
	f.Add(b)
	return f
}

func TestSeriesAppendAt(t *testing.T) {
	s := NewSeries("x")
	s.Append(1, Summary{Mean: 10})
	s.Append(2, Summary{Mean: 20})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	x, p := s.At(1)
	if x != 2 || p.Mean != 20 {
		t.Fatalf("At(1) = (%v, %v), want (2, 20)", x, p.Mean)
	}
}

func TestFigureCurveLookup(t *testing.T) {
	f := sampleFigure()
	if f.Curve("Proposed") == nil {
		t.Fatal("Curve(Proposed) not found")
	}
	if f.Curve("nope") != nil {
		t.Fatal("Curve(nope) should be nil")
	}
}

func TestFigureRenderContainsAllCells(t *testing.T) {
	out := sampleFigure().Render()
	for _, want := range []string{
		"Video quality vs utilization", "eta", "Proposed", "Heuristic 1",
		"37.50", "35.10", "34.20", "33.00", "Y-PSNR (dB)", "±0.20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderMissingPoint(t *testing.T) {
	f := NewFigure("t", "x", "y")
	a := NewSeries("A")
	a.Append(1, Summary{Mean: 5})
	b := NewSeries("B")
	b.Append(2, Summary{Mean: 6})
	f.Add(a)
	f.Add(b)
	out := f.Render()
	if !strings.Contains(out, "-") {
		t.Fatalf("missing points should render as '-':\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	out := sampleFigure().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "eta,Proposed_mean,Proposed_lo,Proposed_hi") {
		t.Fatalf("bad CSV header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.3,") {
		t.Fatalf("x values not sorted first: %s", lines[1])
	}
	// lo/hi must bracket mean in every row.
	if !strings.Contains(lines[1], "37.5,37.3") {
		t.Fatalf("expected lo bound 37.3 in row: %s", lines[1])
	}
}

func TestFigureCSVEscapesCommas(t *testing.T) {
	f := NewFigure("t", "x,axis", "y")
	s := NewSeries("a,b")
	s.Append(1, Summary{Mean: 2})
	f.Add(s)
	out := f.CSV()
	header := strings.Split(out, "\n")[0]
	if got := strings.Count(header, ","); got != 3 {
		t.Fatalf("header has %d commas, want 3 (names must be escaped): %s", got, header)
	}
}

func TestFigureXValuesSortedUnion(t *testing.T) {
	f := NewFigure("t", "x", "y")
	a := NewSeries("A")
	a.Append(3, Summary{})
	a.Append(1, Summary{})
	b := NewSeries("B")
	b.Append(2, Summary{})
	b.Append(1, Summary{})
	f.Add(a)
	f.Add(b)
	xs := f.xValues()
	want := []float64{1, 2, 3}
	if len(xs) != len(want) {
		t.Fatalf("xValues = %v, want %v", xs, want)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xValues = %v, want %v", xs, want)
		}
	}
}
