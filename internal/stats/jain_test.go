package stats

import (
	"math"
	"testing"
)

func TestJainAccumulatorMatchesJainIndex(t *testing.T) {
	xs := []float64{3.5, 1.25, 0.75, 4.0, 2.125, 0.5}
	var a JainAccumulator
	for _, x := range xs {
		a.Add(x)
	}
	if got, want := a.Index(), JainIndex(xs); got != want {
		t.Fatalf("accumulated index %v != direct %v", got, want)
	}
	if a.N() != len(xs) {
		t.Fatalf("N=%d, want %d", a.N(), len(xs))
	}
}

func TestJainAccumulatorSingleShardFoldBitwise(t *testing.T) {
	// Merging one populated accumulator into a zero one must copy it
	// exactly — the single-shard reduction of the sharded engine.
	xs := []float64{0.1, 0.2, 0.3, 0.7}
	var shard JainAccumulator
	for _, x := range xs {
		shard.Add(x)
	}
	var fold JainAccumulator
	fold.Merge(&shard)
	if fold != shard {
		t.Fatalf("fold %+v != shard %+v", fold, shard)
	}
	if got, want := fold.Index(), JainIndex(xs); got != want {
		t.Fatalf("index %v != %v", got, want)
	}
}

func TestJainAccumulatorMergeOrderDeterministic(t *testing.T) {
	// The same ascending fold over shard accumulators must be reproducible
	// run to run, and equal to accumulating the concatenated stream's
	// sufficient statistics shard by shard.
	shards := [][]float64{{1, 2}, {3}, {4, 5, 6}}
	fold := func() JainAccumulator {
		var acc JainAccumulator
		for _, xs := range shards {
			var s JainAccumulator
			for _, x := range xs {
				s.Add(x)
			}
			acc.Merge(&s)
		}
		return acc
	}
	a, b := fold(), fold()
	if a != b {
		t.Fatalf("fold not reproducible: %+v vs %+v", a, b)
	}
	if a.N() != 6 {
		t.Fatalf("N=%d, want 6", a.N())
	}
	if math.Abs(a.Index()-JainIndex([]float64{1, 2, 3, 4, 5, 6})) > 1e-12 {
		t.Fatalf("fold index %v far from direct index", a.Index())
	}
}

func TestJainAccumulatorEmptyAndZero(t *testing.T) {
	var a JainAccumulator
	if a.Index() != 0 {
		t.Fatalf("empty accumulator index %v, want 0", a.Index())
	}
	a.Add(0)
	a.Add(0)
	if a.Index() != 0 {
		t.Fatalf("all-zero index %v, want 0", a.Index())
	}
	var b JainAccumulator
	b.Merge(&a) // merging all-zero observations still copies the count
	if b.N() != 2 {
		t.Fatalf("merged N=%d, want 2", b.N())
	}
	var empty JainAccumulator
	a.Merge(&empty) // merging an empty accumulator is a no-op
	if a.N() != 2 {
		t.Fatalf("N after empty merge %d, want 2", a.N())
	}
}
